(* silkroute — command-line driver.

   Materializes an XML view of a generated TPC-H database (or runs a
   built-in paper query) under a chosen evaluation strategy, printing
   either the document or diagnostics.

     silkroute run --query q1 --scale 0.5 --strategy greedy
     silkroute run --query q1 --stream          # cursor pipeline to stdout
     silkroute run --view my_view.rxl --strategy edges:37 --no-reduce
     silkroute explain --query q2
     silkroute plan --query q1 --scale 1.0

   Observability (lib/obs): --trace prints the span tree of the pipeline
   (prepare / plan / sqlgen / execute / tag, with durations and work
   attributes) to stderr, --profile the name-path profile tree plus a
   top-k hot-operator table with p50/p90/p99 columns, --metrics the
   metrics registry, and --trace-json FILE writes spans + profile +
   metrics as JSON Lines for diffing runs:

     silkroute run -q q1 --scale 0.2 --trace
     silkroute run -q q1 --profile
     silkroute run -q q1 --trace-json trace.jsonl --metrics
     silkroute plan -q q2 --trace

   Diagnostics: --trace-chrome FILE exports the span tree as Chrome
   trace-event JSON (load in Perfetto or chrome://tracing), --diagnose
   runs the plan anomaly detector (est-vs-actual q-errors, spills,
   resilience counters, GC pressure) after the run, and --skew-stats
   TABLE=FACTOR deliberately corrupts the catalog to demonstrate it:

     silkroute run -q q1 --trace-chrome trace.json
     silkroute run -q q1 --diagnose --skew-stats Supplier=64
     silkroute diagnose -q q1 --skew-stats Supplier=64 *)

module R = Relational
module S = Silkroute
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_view query view_file =
  match (query, view_file) with
  | _, Some path -> read_file path
  | Some "q1", None | Some "query1", None -> S.Queries.query1_text
  | Some "q2", None | Some "query2", None -> S.Queries.query2_text
  | Some "fragment", None -> S.Queries.fragment_text
  | Some other, None -> invalid_arg ("unknown built-in query: " ^ other)
  | None, None -> S.Queries.query1_text

let query_arg =
  let doc = "Built-in view: q1, q2 or fragment (paper Figs. 3/12/4)." in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"NAME" ~doc)

let view_arg =
  let doc = "Path to an RXL view file (overrides --query)." in
  Arg.(value & opt (some file) None & info [ "view" ] ~docv:"FILE" ~doc)

let scale_arg =
  let doc = "TPC-H scale factor for the generated database." in
  Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"SF" ~doc)

let schema_arg =
  let doc =
    "Source-description file (tables, keys, foreign keys, inclusions);      replaces the generated TPC-H database."
  in
  Arg.(value & opt (some file) None & info [ "schema" ] ~docv:"FILE" ~doc)

let data_arg =
  let doc = "Directory of <Table>.csv files to load (requires --schema)." in
  Arg.(value & opt (some dir) None & info [ "data" ] ~docv:"DIR" ~doc)

let seed_arg =
  let doc = "Generator seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let strategy_arg =
  let doc =
    "Evaluation strategy: unified, partitioned, greedy, or edges:MASK \
     (an explicit bitmask over view-tree edges)."
  in
  Arg.(value & opt string "greedy" & info [ "strategy"; "s" ] ~docv:"STRAT" ~doc)

let no_reduce_arg =
  let doc = "Disable view-tree reduction." in
  Arg.(value & flag & info [ "no-reduce" ] ~doc)

let pretty_arg =
  let doc = "Indent the XML output." in
  Arg.(value & flag & info [ "pretty" ] ~doc)

let stream_arg =
  let doc =
    "Stream the XML to stdout as it is produced: sub-query results are \
     spooled and merged through cursors, so memory stays bounded by the \
     view-tree depth instead of the result size.  Incompatible with \
     $(b,--pretty)."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let budget_arg =
  let doc =
    "Work-unit budget per sub-query (0 = unlimited), modeling the paper's \
     5-minute per-query timeout.  A stream that exhausts it fails with a \
     timeout — or, under $(b,--resilient), degrades to finer sub-queries."
  in
  Arg.(value & opt int 0 & info [ "budget" ] ~docv:"N" ~doc)

let resilient_arg =
  let doc =
    "Run every sub-query through the resilient backend: transient failures \
     are retried with exponential backoff, persistent failures degrade the \
     offending stream by splitting its fragment along view-tree edges.  The \
     XML output is byte-identical to a fault-free run.  Implies streaming \
     output."
  in
  Arg.(value & flag & info [ "resilient" ] ~doc)

let fault_rate_arg =
  let doc =
    "Probability that a physical sub-query attempt is faulted (requires \
     $(b,--resilient)); draws are deterministic for a fixed $(b,--fault-seed)."
  in
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)

let fault_seed_arg =
  let doc = "Seed for the fault-injection and backoff-jitter stream." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N" ~doc)

let retries_arg =
  let doc = "Maximum retries per sub-query after the first attempt." in
  Arg.(
    value
    & opt int R.Backend.default_retry.R.Backend.max_retries
    & info [ "retries" ] ~docv:"N" ~doc)

let parallel_arg =
  let doc =
    "Fan the plan's sub-queries out over a pool of $(docv) OCaml domains \
     (default 1 = sequential).  The merge-tagger tie-breaks by plan order, \
     so the XML and all deterministic accounting are byte-identical at any \
     domain count; on the resilient path fault draws are per-stream, so \
     the resilience counters match too."
  in
  Arg.(value & opt int 1 & info [ "parallel" ] ~docv:"N" ~doc)

let batch_arg =
  let doc =
    "Run every sub-query on the executor's vectorized batch path: operators \
     process fixed-size row chunks through selection vectors with \
     expressions compiled once per operator.  The XML output, work \
     accounting and all counters are byte-identical to the default \
     tuple-at-a-time path."
  in
  Arg.(value & flag & info [ "batch" ] ~doc)

let batch_size_arg =
  let doc =
    "Rows per batch on the vectorized path (implies $(b,--batch); default \
     256)."
  in
  Arg.(value & opt (some int) None & info [ "batch-size" ] ~docv:"N" ~doc)

let explain_flag_arg =
  let doc =
    "After executing, print each stream's SQL, logical algebra tree and \
     cost-annotated physical plan (estimated vs actual rows/work per \
     operator) to stderr."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let verbose_arg =
  let doc = "Log middleware activity (plans, streams) to stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let trace_arg =
  let doc =
    "Trace the pipeline and print the span tree (per-stage durations, work \
     units, rows) to stderr after the command finishes."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_json_arg =
  let doc =
    "Write the recorded spans and metrics as JSON Lines to $(docv) (one JSON \
     object per line; see docs/OBSERVABILITY.md for the schema)."
  in
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

let trace_chrome_arg =
  let doc =
    "Write the recorded spans, events and counters as Chrome trace-event \
     JSON to $(docv); load the file in Perfetto (ui.perfetto.dev) or \
     chrome://tracing."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-chrome" ] ~docv:"FILE" ~doc)

let diagnose_arg =
  let doc =
    "After executing, run the plan anomaly detector and print its report \
     (estimated-vs-actual q-errors per operator, spills, resilience \
     counters, event summary, GC pressure, hot paths) to stderr.  Implies \
     tracing."
  in
  Arg.(value & flag & info [ "diagnose" ] ~doc)

let skew_stats_arg =
  let doc =
    "Deliberately skew the catalog before planning: multiply TABLE's row \
     count and per-column NDVs by FACTOR (repeatable).  Models a stale \
     catalog; pair with $(b,--diagnose) to see the detector flag the \
     resulting misestimates."
  in
  Arg.(
    value & opt_all string []
    & info [ "skew-stats" ] ~docv:"TABLE=FACTOR" ~doc)

let metrics_arg =
  let doc =
    "Print the metrics registry (counters, gauges, histograms with \
     p50/p90/p99) to stderr after the command finishes."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let profile_arg =
  let doc =
    "Print a profile of the run to stderr: the span log aggregated by \
     name-path into a tree of calls / total ms / self ms / rows / work / \
     bytes, plus a top-k hot-operator table with p50/p90/p99 columns from \
     the span.ms.* histograms."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ~dst:Format.err_formatter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* Enable observability before any pipeline stage runs; emit the chosen
   sinks after everything finished. *)
let setup_obs ?(trace_chrome = None) ?(diagnose = false) ~trace ~trace_json
    ~metrics ~profile () =
  if
    trace || metrics || profile || diagnose || trace_json <> None
    || trace_chrome <> None
  then Obs.Control.set_enabled true

let report_obs ?(trace_chrome = None) ~trace ~trace_json ~metrics ~profile () =
  if trace then prerr_string (Obs.Report.render_spans ());
  if profile then prerr_string (Obs.Profile.render (Obs.Profile.capture ()));
  if metrics then prerr_string (Obs.Report.render_metrics ());
  (match trace_json with
  | Some path -> Obs.Jsonl.write_file path
  | None -> ());
  match trace_chrome with
  | Some path -> Obs.Chrometrace.write_file path
  | None -> ()

(* Corrupt the catalog on purpose (--skew-stats Table=Factor): forces the
   lazy stats and scales the named tables in place, so every later
   [Cost.annotate] sees the stale figures. *)
let apply_skew (p : S.Middleware.prepared) specs =
  if specs <> [] then begin
    let st = Lazy.force p.S.Middleware.stats in
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | None ->
            invalid_arg ("--skew-stats expects TABLE=FACTOR, got: " ^ spec)
        | Some i ->
            let table = String.sub spec 0 i in
            let factor =
              try
                float_of_string
                  (String.sub spec (i + 1) (String.length spec - i - 1))
              with Failure _ ->
                invalid_arg ("--skew-stats: bad factor in: " ^ spec)
            in
            R.Stats.scale_table st table factor)
      specs
  end

let parse_strategy s =
  match String.lowercase_ascii s with
  | "unified" -> S.Middleware.Unified
  | "partitioned" | "fully-partitioned" -> S.Middleware.Fully_partitioned
  | "greedy" -> S.Middleware.Greedy S.Planner.default_params
  | s when String.length s > 6 && String.sub s 0 6 = "edges:" ->
      S.Middleware.Edges (int_of_string (String.sub s 6 (String.length s - 6)))
  | s -> invalid_arg ("unknown strategy: " ^ s)

let setup_db scale seed schema data =
  match schema with
    | None ->
        if data <> None then
          invalid_arg "--data requires --schema";
        Tpch.Gen.generate (Tpch.Gen.config ~seed:(Int64.of_int seed) scale)
    | Some schema_file ->
        let db = R.Source_desc.load_database (read_file schema_file) in
        (match data with
        | None -> ()
        | Some dir ->
            List.iter
              (fun table ->
                let path = Filename.concat dir (table ^ ".csv") in
                if Sys.file_exists path then begin
                  let n = R.Csv.load ~source:path db table (read_file path) in
                  Printf.eprintf "[loaded %d rows into %s]\n" n table
                end)
              (R.Database.table_names db);
            match R.Database.check_integrity db with
            | [] -> ()
            | violations ->
                Printf.eprintf "[warning: %d integrity violations, e.g. %s]\n"
                  (List.length violations) (List.hd violations));
        db

let setup query view_file scale seed schema data =
  let text = load_view query view_file in
  let db = setup_db scale seed schema data in
  (db, S.Middleware.prepare_text db text)

let run_cmd query view_file scale seed schema data strategy no_reduce pretty
    stream budget resilient fault_rate fault_seed retries parallel batch
    batch_size_opt explain verbose trace trace_json metrics profile trace_chrome
    diagnose skew =
  setup_logs verbose;
  setup_obs ~trace_chrome ~diagnose ~trace ~trace_json ~metrics ~profile ();
  if (stream || resilient) && pretty then
    invalid_arg "--pretty requires the materialized path; drop --stream/--resilient";
  if fault_rate > 0.0 && not resilient then
    invalid_arg "--fault-rate requires --resilient";
  if parallel < 1 then invalid_arg "--parallel must be >= 1";
  let batch_size =
    match batch_size_opt with
    | Some n when n < 1 -> invalid_arg "--batch-size must be >= 1"
    | Some n -> Some n
    | None -> if batch then Some R.Executor.default_batch_size else None
  in
  let domains = parallel in
  let db, p = setup query view_file scale seed schema data in
  ignore db;
  apply_skew p skew;
  let diagnose_report samples =
    if diagnose then prerr_string (Obs.Diagnose.report samples)
  in
  let plan = S.Middleware.partition_of p (parse_strategy strategy) in
  if resilient then begin
    let backend =
      R.Backend.create
        ~faults:(R.Backend.faults ~seed:fault_seed fault_rate)
        ~retry:{ R.Backend.default_retry with R.Backend.max_retries = retries }
        ~budget ?batch_size p.S.Middleware.db
    in
    let r =
      S.Middleware.execute_resilient ~reduce:(not no_reduce) ~backend ~domains
        p plan
    in
    let se = r.S.Middleware.r_streaming in
    if explain then prerr_endline (S.Middleware.explain_streaming p se);
    S.Middleware.stream_to_channel p se stdout;
    print_newline ();
    let res = r.S.Middleware.r_resilience in
    Printf.eprintf
      "[%d stream(s), %d tuples, %d work units, %.1f ms transfer, resilient]\n"
      (List.length se.S.Middleware.cursors)
      se.S.Middleware.s_tuples se.S.Middleware.s_work
      se.S.Middleware.s_transfer_ms;
    Printf.eprintf
      "[resilience: %d submits, %d attempts, %d retries, %d faults, %d \
       timeouts, %d degraded, %.1f ms backoff, %d wasted work]\n"
      res.S.Middleware.r_submits res.S.Middleware.r_attempts
      res.S.Middleware.r_retries res.S.Middleware.r_faults
      res.S.Middleware.r_timeouts res.S.Middleware.r_degraded
      res.S.Middleware.r_backoff_ms res.S.Middleware.r_wasted_work;
    diagnose_report (S.Middleware.diagnose_samples_streaming p se)
  end
  else if stream then begin
    let se =
      S.Middleware.execute_streaming ~reduce:(not no_reduce) ~budget ~domains
        ?batch_size p plan
    in
    if explain then prerr_endline (S.Middleware.explain_streaming p se);
    S.Middleware.stream_to_channel p se stdout;
    print_newline ();
    Printf.eprintf
      "[%d stream(s), %d tuples, %d work units, %.1f ms transfer, streamed]\n"
      (List.length se.S.Middleware.cursors)
      se.S.Middleware.s_tuples se.S.Middleware.s_work
      se.S.Middleware.s_transfer_ms;
    diagnose_report (S.Middleware.diagnose_samples_streaming p se)
  end
  else begin
    let e =
      S.Middleware.execute ~reduce:(not no_reduce) ~budget ~domains ?batch_size
        p plan
    in
    if explain then prerr_endline (S.Middleware.explain_execution p e);
    if pretty then
      print_string
        (Xmlkit.Serialize.to_pretty_string (S.Middleware.document_of p e))
    else print_endline (S.Middleware.xml_string_of p e);
    Printf.eprintf "[%d stream(s), %d tuples, %d work units, %.1f ms transfer]\n"
      (List.length e.S.Middleware.streams)
      e.S.Middleware.tuples e.S.Middleware.work e.S.Middleware.transfer_ms;
    diagnose_report (S.Middleware.diagnose_samples p e)
  end;
  report_obs ~trace_chrome ~trace ~trace_json ~metrics ~profile ()

let explain_cmd query view_file scale seed schema data strategy no_reduce =
  let db, p = setup query view_file scale seed schema data in
  Printf.printf "view tree:\n%s\n" (S.View_tree.to_string p.S.Middleware.tree);
  Printf.printf "edge labels:\n%s\n\n"
    (S.Label.to_string p.S.Middleware.tree p.S.Middleware.labels);
  let plan = S.Middleware.partition_of p (parse_strategy strategy) in
  Printf.printf "plan: %s (%d streams)\n\n" (S.Partition.to_string plan)
    (S.Partition.stream_count plan);
  ignore db;
  print_endline (S.Middleware.explain ~reduce:(not no_reduce) p plan)

let plan_cmd query view_file scale seed schema data no_reduce trace trace_json
    metrics profile trace_chrome =
  setup_obs ~trace_chrome ~trace ~trace_json ~metrics ~profile ();
  let db, p = setup query view_file scale seed schema data in
  let oracle = R.Cost.oracle db in
  let r =
    S.Planner.gen_plan ~reduce:(not no_reduce) db oracle p.S.Middleware.tree
      p.S.Middleware.labels S.Planner.default_params
  in
  Printf.printf "%s\n" (S.Planner.to_string p.S.Middleware.tree r);
  Printf.printf "plan family: %d plans\n"
    (List.length (S.Planner.plans_of p.S.Middleware.tree r));
  let best = S.Planner.best_plan p.S.Middleware.tree r in
  Printf.printf "best plan: %s (%d streams)\n" (S.Partition.to_string best)
    (S.Partition.stream_count best);
  report_obs ~trace_chrome ~trace ~trace_json ~metrics ~profile ()

(* Run the view materialized with tracing forced on, print only the
   diagnostics report (to stdout — the report is the product here). *)
let diagnose_cmd query view_file scale seed schema data strategy no_reduce
    budget verbose skew =
  setup_logs verbose;
  Obs.Control.set_enabled true;
  let db, p = setup query view_file scale seed schema data in
  ignore db;
  apply_skew p skew;
  let plan = S.Middleware.partition_of p (parse_strategy strategy) in
  let e = S.Middleware.execute ~reduce:(not no_reduce) ~budget p plan in
  print_string (Obs.Diagnose.report (S.Middleware.diagnose_samples p e))

(* --- query server ------------------------------------------------------- *)

let socket_arg required_for =
  let doc =
    Printf.sprintf "Unix-domain socket path %s." required_for
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let statement_cache_arg =
  let doc = "Statement-cache capacity in entries (0 disables the tier)." in
  Arg.(
    value
    & opt int Server.Service.default_config.Server.Service.statement_capacity
    & info [ "statement-cache" ] ~docv:"N" ~doc)

let plan_cache_arg =
  let doc = "Plan-cache capacity in entries (0 disables the tier)." in
  Arg.(
    value
    & opt int Server.Service.default_config.Server.Service.plan_capacity
    & info [ "plan-cache" ] ~docv:"N" ~doc)

let result_cache_arg =
  let doc = "Result-cache capacity in bytes of XML (0 disables the tier)." in
  Arg.(
    value
    & opt int Server.Service.default_config.Server.Service.result_capacity
    & info [ "result-cache" ] ~docv:"BYTES" ~doc)

let admission_budget_arg =
  let doc =
    "Admission budget: maximum estimated work units in flight (0 = \
     unlimited).  Queries whose estimate alone exceeds it are rejected; \
     ones that do not fit right now wait in a bounded queue."
  in
  Arg.(value & opt int 0 & info [ "admission-budget" ] ~docv:"N" ~doc)

let max_queue_arg =
  let doc = "Waiting admissions beyond which queries are rejected." in
  Arg.(
    value
    & opt int Server.Service.default_config.Server.Service.max_queue
    & info [ "max-queue" ] ~docv:"N" ~doc)

let server_batch_size_arg =
  let doc =
    "Executor vector size for every served query (0 = tuple-at-a-time \
     path).  Results are byte-identical either way."
  in
  Arg.(value & opt int 0 & info [ "batch-size" ] ~docv:"N" ~doc)

let server_config domains statement_cache plan_cache result_cache
    admission_budget max_queue batch_size =
  if batch_size < 0 then invalid_arg "--batch-size must be >= 0";
  {
    Server.Service.default_config with
    Server.Service.domains;
    statement_capacity = statement_cache;
    plan_capacity = plan_cache;
    result_capacity = result_cache;
    admission_budget;
    max_queue;
    batch_size;
  }

(* --- serve telemetry flags ----------------------------------------------- *)

let telemetry_arg =
  let doc =
    "Enable live telemetry (spans, metrics, events) without any stderr \
     report — what the $(b,M) exposition and $(b,silkroute monitor) read.  \
     Implied by $(b,--trace) and $(b,--metrics)."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let trace_sample_arg =
  let doc =
    "Head-based trace sampling: record spans for 1 in $(docv) queries \
     (1 = every query, 0 = none).  Sampled-out queries still produce \
     metrics, events, SLO samples and slow-query records."
  in
  Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"N" ~doc)

let slow_ms_arg =
  let doc =
    "Slow-query threshold in milliseconds: slower queries raise a \
     $(b,server.slow_query) event, count in the stats report, and — with \
     $(b,--slow-log) — append a structured JSONL record.  0 disables."
  in
  Arg.(value & opt float 0.0 & info [ "slow-ms" ] ~docv:"MS" ~doc)

let slow_log_arg =
  let doc =
    "Append slow-query records (trace id, digest, per-stage profile, GC \
     deltas, cache tiers) as JSON Lines to $(docv); requires \
     $(b,--slow-ms)."
  in
  Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"FILE" ~doc)

let slo_target_arg =
  let doc =
    "Enable the rolling SLO monitor with this p99 latency target in \
     milliseconds (0 disables).  Breaching the target — or the error \
     budget — raises an $(b,slo.burn) event and shows in the exposition."
  in
  Arg.(value & opt float 0.0 & info [ "slo-target-ms" ] ~docv:"MS" ~doc)

let slo_error_budget_arg =
  let doc = "SLO error budget as a fraction of requests (default 0.01)." in
  Arg.(value & opt float 0.01 & info [ "slo-error-budget" ] ~docv:"FRAC" ~doc)

let serve_cmd scale seed schema data socket parallel statement_cache plan_cache
    result_cache admission_budget max_queue batch_size telemetry trace_sample
    slow_ms slow_log slo_target_ms slo_error_budget verbose trace metrics =
  setup_logs verbose;
  setup_obs ~trace ~trace_json:None ~metrics ~profile:false ();
  if telemetry then Obs.Control.set_enabled true;
  let socket =
    match socket with
    | Some path -> path
    | None -> invalid_arg "serve requires --socket PATH"
  in
  if trace_sample < 0 then invalid_arg "--trace-sample must be >= 0";
  if slow_log <> None && slow_ms <= 0.0 then
    invalid_arg "--slow-log requires --slow-ms";
  let db = setup_db scale seed schema data in
  let slo =
    if slo_target_ms <= 0.0 then None
    else
      Some
        {
          Obs.Slo.default_config with
          Obs.Slo.target_p99_ms = slo_target_ms;
          max_error_rate = slo_error_budget;
        }
  in
  let config =
    {
      (server_config parallel statement_cache plan_cache result_cache
         admission_budget max_queue batch_size)
      with
      Server.Service.trace_sample;
      slow_ms;
      slow_log;
      slo;
      (* a long-running server prunes each request's spans once served;
         --trace keeps them for the exit report *)
      retain_spans = trace;
    }
  in
  let server = Server.Service.create ~config db in
  Printf.eprintf "[serving on %s: %d domain(s), caches %d/%d/%dB, budget %d]\n%!"
    socket parallel statement_cache plan_cache result_cache admission_budget;
  Server.Service.serve_unix server ~socket;
  prerr_endline (Server.Service.render_stats server);
  report_obs ~trace ~trace_json:None ~metrics ~profile:false ()

let clients_arg =
  let doc = "Workload clients." in
  Arg.(
    value
    & opt int Server.Workload.default_config.Server.Workload.clients
    & info [ "clients" ] ~docv:"N" ~doc)

let requests_arg =
  let doc = "Requests per client." in
  Arg.(
    value
    & opt int Server.Workload.default_config.Server.Workload.requests_per_client
    & info [ "requests" ] ~docv:"N" ~doc)

let workload_seed_arg =
  let doc = "Workload script seed (the request mix is a pure function of it)." in
  Arg.(
    value
    & opt int Server.Workload.default_config.Server.Workload.seed
    & info [ "workload-seed" ] ~docv:"N" ~doc)

let invalidate_every_arg =
  let doc =
    "Client 0 replaces every $(docv)-th query with a stats-epoch \
     invalidation (0 disables)."
  in
  Arg.(
    value
    & opt int Server.Workload.default_config.Server.Workload.invalidate_every
    & info [ "invalidate-every" ] ~docv:"N" ~doc)

let threads_arg =
  let doc =
    "Give each in-process client its own thread (real concurrency through \
     admission and the pool) instead of the deterministic round-robin \
     replay."
  in
  Arg.(value & flag & info [ "threads" ] ~doc)

let no_verify_arg =
  let doc = "Skip the byte-identity check against the direct pipeline." in
  Arg.(value & flag & info [ "no-verify" ] ~doc)

let server_stats_arg =
  let doc = "After the replay, print the server's counter report." in
  Arg.(value & flag & info [ "server-stats" ] ~doc)

let shutdown_arg =
  let doc = "After the replay, tell the --socket server to shut down." in
  Arg.(value & flag & info [ "shutdown" ] ~doc)

let workload_cmd scale seed schema data socket parallel statement_cache
    plan_cache result_cache admission_budget max_queue batch_size clients
    requests workload_seed invalidate_every threads no_verify server_stats
    shutdown verbose =
  setup_logs verbose;
  let verify = not no_verify in
  let db = setup_db scale seed schema data in
  let views = Server.Workload.standard_views ~verify db in
  let cfg =
    {
      Server.Workload.default_config with
      Server.Workload.clients;
      requests_per_client = requests;
      seed = workload_seed;
      invalidate_every;
    }
  in
  let tally =
    match socket with
    | Some socket ->
        let tally = Server.Workload.run_socket ~verify ~socket ~views cfg in
        (if server_stats then
           match Server.Workload.request ~socket Server.Protocol.Stats with
           | Some (Server.Protocol.Info report) -> prerr_endline report
           | _ -> prerr_endline "[no stats reply]");
        if shutdown then
          ignore (Server.Workload.request ~socket Server.Protocol.Shutdown);
        tally
    | None ->
        let config =
          server_config parallel statement_cache plan_cache result_cache
            admission_budget max_queue batch_size
        in
        let server = Server.Service.create ~config db in
        let tally =
          Server.Workload.run_direct ~threads ~verify server ~views cfg
        in
        if server_stats then
          prerr_endline (Server.Service.render_stats server);
        Server.Service.shutdown server;
        tally
  in
  print_endline (Server.Workload.render tally);
  if tally.Server.Workload.mismatches <> [] then exit 1;
  if tally.Server.Workload.failed > 0 then exit 2

(* --- monitor ------------------------------------------------------------- *)

(* Top-style live view over the server's M/H telemetry endpoints: poll
   the exposition, parse it back through the same Expose module that
   rendered it, and print a compact frame.  qps comes from the
   requests_total delta between polls (whole-uptime average on the
   first frame and under --once). *)

let fetch_info socket req =
  match Server.Workload.request ~socket req with
  | Some (Server.Protocol.Info text) -> text
  | Some r ->
      invalid_arg
        ("monitor: unexpected " ^ Server.Protocol.reply_name r ^ " reply")
  | None -> invalid_arg "monitor: server closed the connection without replying"

let monitor_frame ~socket ~prev text =
  let p = Obs.Expose.parse text in
  let g ?(d = 0.0) key = Option.value ~default:d (Obs.Expose.find p key) in
  let uptime = g "silkroute_uptime_seconds" in
  let requests = g "silkroute_server_requests_total" in
  let qps =
    match prev with
    | Some (t0, r0) when uptime > t0 -> (requests -. r0) /. (uptime -. t0)
    | _ -> if uptime > 0.0 then requests /. uptime else 0.0
  in
  let ratio tier =
    100.0 *. g (Printf.sprintf "silkroute_cache_hit_ratio{tier=%S}" tier)
  in
  let quantile q =
    g (Printf.sprintf "silkroute_server_request_ms{quantile=%S}" q)
  in
  let slo_line =
    if Obs.Expose.find p "silkroute_slo_burn_rate" = None then
      "slo:      (not configured)"
    else
      Printf.sprintf
        "slo:      p99 %.2fms  burn %.2f  errors %.2f%%  breached %s"
        (g "silkroute_slo_p99_ms")
        (g "silkroute_slo_burn_rate")
        (100.0 *. g "silkroute_slo_error_rate")
        (if g "silkroute_slo_breached" > 0.0 then "YES" else "no")
  in
  let frame =
    String.concat "\n"
      [
        Printf.sprintf "silkroute monitor — %s   up %.1fs   epoch %.0f" socket
          uptime
          (g "silkroute_stats_epoch");
        Printf.sprintf
          "requests: %.0f  qps %.1f  rejected %.0f  failed %.0f  slow %.0f"
          requests qps
          (g "silkroute_server_rejected_total")
          (g "silkroute_server_failed_total")
          (g "silkroute_server_slow_queries_total");
        Printf.sprintf
          "cache:    hit%% statement %.1f  plan %.1f  result %.1f"
          (ratio "statement") (ratio "plan") (ratio "result");
        Printf.sprintf "latency:  p50 %.2fms  p90 %.2fms  p99 %.2fms"
          (quantile "0.5") (quantile "0.9") (quantile "0.99");
        slo_line;
        Printf.sprintf
          "backlog:  pool queue %.0f  in-flight work %.1f  waiting %.0f"
          (g "silkroute_pool_queue_depth")
          (g "silkroute_admission_in_flight_work")
          (g "silkroute_admission_waiting");
      ]
  in
  (frame, (uptime, requests))

let monitor_cmd socket once raw interval =
  let socket =
    match socket with
    | Some path -> path
    | None -> invalid_arg "monitor requires --socket PATH"
  in
  if interval <= 0.0 then invalid_arg "--interval must be positive";
  if raw then print_string (fetch_info socket Server.Protocol.Metrics)
  else if once then begin
    let frame, _ = monitor_frame ~socket ~prev:None (fetch_info socket Server.Protocol.Metrics) in
    print_endline frame;
    print_endline ("health:   " ^ fetch_info socket Server.Protocol.Health)
  end
  else begin
    let prev = ref None in
    let rec loop () =
      let frame, cur =
        monitor_frame ~socket ~prev:!prev (fetch_info socket Server.Protocol.Metrics)
      in
      prev := Some cur;
      (* repaint in place, top-style *)
      print_string "\027[2J\027[H";
      print_endline frame;
      print_string "\n(ctrl-c to quit)\n";
      flush stdout;
      Unix.sleepf interval;
      loop ()
    in
    try loop ()
    with Unix.Unix_error _ | Invalid_argument _ | End_of_file ->
      prerr_endline "monitor: server went away"
  end

let run_t =
  Term.(
    const run_cmd $ query_arg $ view_arg $ scale_arg $ seed_arg $ schema_arg
    $ data_arg $ strategy_arg $ no_reduce_arg $ pretty_arg $ stream_arg
    $ budget_arg $ resilient_arg $ fault_rate_arg $ fault_seed_arg
    $ retries_arg $ parallel_arg $ batch_arg $ batch_size_arg
    $ explain_flag_arg $ verbose_arg $ trace_arg
    $ trace_json_arg
    $ metrics_arg $ profile_arg $ trace_chrome_arg $ diagnose_arg
    $ skew_stats_arg)

let explain_t =
  Term.(
    const explain_cmd $ query_arg $ view_arg $ scale_arg $ seed_arg
    $ schema_arg $ data_arg $ strategy_arg $ no_reduce_arg)

let plan_t =
  Term.(
    const plan_cmd $ query_arg $ view_arg $ scale_arg $ seed_arg $ schema_arg
    $ data_arg $ no_reduce_arg $ trace_arg $ trace_json_arg $ metrics_arg
    $ profile_arg $ trace_chrome_arg)

let diagnose_t =
  Term.(
    const diagnose_cmd $ query_arg $ view_arg $ scale_arg $ seed_arg
    $ schema_arg $ data_arg $ strategy_arg $ no_reduce_arg $ budget_arg
    $ verbose_arg $ skew_stats_arg)

let serve_t =
  Term.(
    const serve_cmd $ scale_arg $ seed_arg $ schema_arg $ data_arg
    $ socket_arg "to listen on (required)"
    $ parallel_arg $ statement_cache_arg $ plan_cache_arg $ result_cache_arg
    $ admission_budget_arg $ max_queue_arg $ server_batch_size_arg
    $ telemetry_arg $ trace_sample_arg $ slow_ms_arg $ slow_log_arg
    $ slo_target_arg $ slo_error_budget_arg
    $ verbose_arg $ trace_arg $ metrics_arg)

let monitor_once_arg =
  let doc = "Print one frame (plus the health line) and exit." in
  Arg.(value & flag & info [ "once" ] ~doc)

let monitor_raw_arg =
  let doc = "Print the raw Prometheus-style exposition text and exit." in
  Arg.(value & flag & info [ "raw" ] ~doc)

let monitor_interval_arg =
  let doc = "Seconds between polls in the live view." in
  Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"S" ~doc)

let monitor_t =
  Term.(
    const monitor_cmd
    $ socket_arg "of a running server (required)"
    $ monitor_once_arg $ monitor_raw_arg $ monitor_interval_arg)

let workload_t =
  Term.(
    const workload_cmd $ scale_arg $ seed_arg $ schema_arg $ data_arg
    $ socket_arg "of a running server (default: serve in-process)"
    $ parallel_arg $ statement_cache_arg $ plan_cache_arg $ result_cache_arg
    $ admission_budget_arg $ max_queue_arg $ server_batch_size_arg
    $ clients_arg $ requests_arg
    $ workload_seed_arg $ invalidate_every_arg $ threads_arg $ no_verify_arg
    $ server_stats_arg $ shutdown_arg $ verbose_arg)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Materialize the XML view.") run_t;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run the query server: statement/plan/result caches and \
            admission control in front of the worker-domain pool, speaking \
            the length-prefixed protocol on a Unix-domain socket.")
      serve_t;
    Cmd.v
      (Cmd.info "workload"
         ~doc:
           "Replay a deterministic multi-client request mix against the \
            server (in-process, or over --socket) and verify every result \
            byte-for-byte against the direct pipeline.")
      workload_t;
    Cmd.v
      (Cmd.info "monitor"
         ~doc:
           "Poll a running server's telemetry endpoint and render a \
            top-style live view: qps, cache hit ratios, latency \
            percentiles, SLO burn and queue depth.  --once prints a \
            single frame, --raw the exposition text.")
      monitor_t;
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Show the view tree, labels, partition, and each stream's SQL, \
            logical algebra and cost-annotated physical plan.")
      explain_t;
    Cmd.v (Cmd.info "plan" ~doc:"Run the greedy plan-generation algorithm.") plan_t;
    Cmd.v
      (Cmd.info "diagnose"
         ~doc:
           "Materialize the view with tracing on and print the plan \
            diagnostics report: per-operator q-errors, spills, resilience \
            counters, event summary, GC pressure and hot paths.")
      diagnose_t;
  ]

let () =
  let info =
    Cmd.info "silkroute" ~version:"1.0"
      ~doc:"SilkRoute: efficient evaluation of XML middle-ware queries"
  in
  exit (Cmd.eval (Cmd.group info cmds))
