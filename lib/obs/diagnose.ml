(* Plan anomaly detector: the online counterpart of the offline
   calibration experiment (bench --experiment calibration).

   After execution, every physical operator carries an estimated
   (Cost.annotate) and an actual (executor) row count and cost.  The
   detector folds those into per-node q-errors

     qerr(est, act) = max(est/act, act/est)   with both clamped to >= 1

   — the standard symmetric misestimation factor (1.00 is a perfect
   estimate) — flags nodes at or above a threshold, emits one warn
   event per finding, and renders a human report: top misestimated
   operators, the retry/degradation counters, GC pressure per operator,
   and the hot-path percentile table.

   This module lives in lib/obs and therefore cannot see
   Physical.plan; callers (Physical.diagnose_samples, Middleware)
   flatten their plans into the generic [sample] records below. *)

type sample = {
  d_stream : string; (* stream label, e.g. the fragment root's Skolem name *)
  d_node : int; (* physical node id, unique within the stream's plan *)
  d_op : string; (* operator name: scan, hash-join, sort, ... *)
  d_est_rows : float; (* negative when the plan was never annotated *)
  d_act_rows : int; (* negative when the node was never executed *)
  d_est_cost : float;
  d_act_cost : int;
  d_spills : int; (* actual external-sort spill passes (sorts only) *)
}

type metric = Rows | Cost

let metric_name = function Rows -> "rows" | Cost -> "cost"

type finding = {
  f_stream : string;
  f_node : int;
  f_op : string;
  f_metric : metric;
  f_est : float;
  f_act : float;
  f_qerr : float;
}

let qerror ~est ~act =
  let e = Float.max 1.0 est and a = Float.max 1.0 act in
  Float.max (e /. a) (a /. e)

(* 4x off in either direction: past the noise of the System-R
   uniformity assumptions, squarely in wrong-plan territory (the PR 4
   union misestimate this engine once shipped was 130x). *)
let default_threshold = 4.0

let findings ?(threshold = default_threshold) (samples : sample list) :
    finding list =
  let one (s : sample) =
    let candidate metric est act =
      if est < 0.0 || act < 0 then None (* never annotated / never executed *)
      else
        let q = qerror ~est ~act:(float_of_int act) in
        if q >= threshold then
          Some
            {
              f_stream = s.d_stream;
              f_node = s.d_node;
              f_op = s.d_op;
              f_metric = metric;
              f_est = est;
              f_act = float_of_int act;
              f_qerr = q;
            }
        else None
    in
    List.filter_map
      (fun c -> c)
      [
        candidate Rows s.d_est_rows s.d_act_rows;
        candidate Cost s.d_est_cost s.d_act_cost;
      ]
  in
  List.concat_map one samples
  |> List.stable_sort (fun a b -> compare b.f_qerr a.f_qerr)

let emit_findings (fs : finding list) =
  List.iter
    (fun f ->
      Event.warn "diagnose.misestimate"
        ~attrs:
          [
            Attr.string "stream" f.f_stream;
            Attr.int "node" f.f_node;
            Attr.string "op" f.f_op;
            Attr.string "metric" (metric_name f.f_metric);
            Attr.float "est" f.f_est;
            Attr.float "act" f.f_act;
            Attr.float "qerr" f.f_qerr;
          ])
    fs

(* --- report -------------------------------------------------------------- *)

let bprintf = Printf.bprintf

let render_misestimates buf ~threshold ~top samples fs =
  let measured =
    List.filter (fun s -> s.d_est_rows >= 0.0 && s.d_act_rows >= 0) samples
  in
  bprintf buf
    "MISESTIMATES — %d operator(s) sampled, %d measured, %d finding(s) at \
     q-error >= %.1f\n"
    (List.length samples) (List.length measured) (List.length fs) threshold;
  if fs <> [] then begin
    bprintf buf "%-8s %6s %-24s %-6s %14s %14s %8s\n" "stream" "node" "op"
      "metric" "estimated" "actual" "q-error";
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    List.iter
      (fun f ->
        bprintf buf "%-8s %6d %-24s %-6s %14.1f %14.1f %8.2f\n" f.f_stream
          f.f_node f.f_op (metric_name f.f_metric) f.f_est f.f_act f.f_qerr)
      (take top fs)
  end

let counter name = Option.value ~default:0 (Metrics.counter_value name)

let render_resilience buf =
  bprintf buf
    "RESILIENCE — %d retries, %d faults, %d timeouts, %d breaker open(s), %d \
     degraded stream(s)\n"
    (counter "backend.retries") (counter "backend.faults")
    (counter "backend.timeouts")
    (counter "backend.breaker_opens")
    (counter "middleware.degraded_streams")

let render_events buf =
  let by_level l =
    List.length (List.filter (fun e -> e.Event.level = l) (Event.events ()))
  in
  bprintf buf
    "EVENTS — %d recorded (%d retained: %d debug / %d info / %d warn / %d \
     error), %d flight-recorder dump(s)\n"
    (Event.recorded ())
    (List.length (Event.events ()))
    (by_level Event.Debug) (by_level Event.Info) (by_level Event.Warn)
    (by_level Event.Error) (Event.dump_count ())

let render_gc buf ~top profile =
  let by_alloc =
    Profile.hot ~top:max_int profile
    |> List.filter (fun (n : Profile.node) -> n.Profile.minor_words > 0.0)
    |> List.stable_sort (fun (a : Profile.node) b ->
           compare b.Profile.minor_words a.Profile.minor_words)
  in
  bprintf buf "GC PRESSURE — top %d operator(s) by minor allocation\n"
    (min top (List.length by_alloc));
  bprintf buf "%-28s %6s %12s %12s %8s\n" "name" "calls" "minor(kw)"
    "major(kw)" "compact";
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  List.iter
    (fun (n : Profile.node) ->
      bprintf buf "%-28s %6d %12.1f %12.1f %8d\n" n.Profile.name
        n.Profile.calls
        (n.Profile.minor_words /. 1000.0)
        (n.Profile.major_words /. 1000.0)
        n.Profile.compactions)
    (take top by_alloc)

let render ?(threshold = default_threshold) ?(top = 10) samples =
  let fs = findings ~threshold samples in
  let buf = Buffer.create 2048 in
  bprintf buf "PLAN DIAGNOSTICS\n================\n";
  render_misestimates buf ~threshold ~top samples fs;
  Buffer.add_char buf '\n';
  let spilled = List.filter (fun s -> s.d_spills > 0) samples in
  if spilled <> [] then begin
    bprintf buf "SPILLS — %d operator(s) spilled to disk\n"
      (List.length spilled);
    List.iter
      (fun s ->
        bprintf buf "  %-8s node %d %-24s %d pass(es)\n" s.d_stream s.d_node
          s.d_op s.d_spills)
      spilled;
    Buffer.add_char buf '\n'
  end;
  render_resilience buf;
  render_events buf;
  Buffer.add_char buf '\n';
  let profile = Profile.capture () in
  render_gc buf ~top profile;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Profile.render_hot ~top profile);
  Buffer.contents buf

let report ?threshold ?top samples =
  let fs = findings ?threshold samples in
  emit_findings fs;
  render ?threshold ?top samples
