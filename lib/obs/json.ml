(* A minimal JSON value type with encoder and parser.

   The observability layer is zero-dependency, so it carries its own
   JSON support: the encoder backs the JSONL exporter, the parser backs
   round-trip tests and the trace-file validator.  Integers and floats
   are kept distinct ([1] parses as [Int], [1.0] as [Float]) so encode ∘
   parse is the identity on the values the exporter produces. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- encoding --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must stay floats through a round trip: force a '.' or exponent
   into the representation.  Non-finite values have no JSON encoding and
   become null. *)
let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    if
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s
      (* 'n' catches "nan"/"inf" defensively; handled above *)
    then s
    else s ^ ".0"

let rec encode_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          encode_to buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          encode_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode_to buf v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

type cursor = { text : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.text
    && String.sub cur.text cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 cur =
  if cur.pos + 4 > String.length cur.text then fail cur "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub cur.text cur.pos 4) in
  cur.pos <- cur.pos + 4;
  v

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let cp = hex4 cur in
                let cp =
                  (* surrogate pair *)
                  if cp >= 0xD800 && cp <= 0xDBFF then begin
                    expect cur '\\';
                    expect cur 'u';
                    let lo = hex4 cur in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      fail cur "invalid low surrogate";
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else cp
                in
                utf8_add buf cp
            | c -> fail cur (Printf.sprintf "invalid escape \\%c" c));
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek cur with Some c when is_num_char c -> true | _ -> false do
    advance cur
  done;
  let s = String.sub cur.text start (cur.pos - start) in
  if s = "" then fail cur "expected a number";
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with
    | Some x -> Float x
    | None -> fail cur ("invalid number " ^ s)
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
        (* out-of-range integer: fall back to float *)
        match float_of_string_opt s with
        | Some x -> Float x
        | None -> fail cur ("invalid number " ^ s))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "expected a value, found end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((k, v) :: acc)
          | _ -> fail cur "expected , or } in object"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected , or ] in array"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> parse_number cur

let parse s =
  let cur = { text = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* --- accessors (for tests and the trace validator) --------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
