(* JSON-Lines exporter.

   One JSON object per line, "type" discriminated: spans first (start
   order), then metrics (name order).  An optional "experiment" field
   tags every record, so bench runs can concatenate experiments into one
   file and still diff stage-level breakdowns run against run. *)

let json_of_attr_value = function
  | Attr.Int n -> Json.Int n
  | Attr.Float x -> Json.Float x
  | Attr.Bool b -> Json.Bool b
  | Attr.String s -> Json.String s

let tagged experiment fields =
  match experiment with
  | None -> fields
  | Some e -> ("experiment", Json.String e) :: fields

let span_json ?experiment (s : Span.t) =
  Json.Obj
    (tagged experiment
       [
         ("type", Json.String "span");
         ("id", Json.Int s.Span.id);
         ( "parent",
           match s.Span.parent with
           | None -> Json.Null
           | Some p -> Json.Int p );
         ("depth", Json.Int s.Span.depth);
         ("name", Json.String s.Span.name);
         ("start_ns", Json.Int (Int64.to_int s.Span.start_ns));
         ("dur_ms", Json.Float (Span.duration_ms s));
         ( "attrs",
           Json.Obj
             (List.map (fun (k, v) -> (k, json_of_attr_value v)) (Span.attrs s))
         );
       ])

let metric_json ?experiment (name, snap) =
  let payload =
    match snap with
    | Metrics.SCounter n -> [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
    | Metrics.SGauge v -> [ ("kind", Json.String "gauge"); ("value", Json.Float v) ]
    | Metrics.SHistogram h ->
        [
          ("kind", Json.String "histogram");
          ( "bounds",
            Json.List
              (Array.to_list (Array.map (fun b -> Json.Float b) h.Metrics.bounds))
          );
          ( "counts",
            Json.List
              (Array.to_list (Array.map (fun c -> Json.Int c) h.Metrics.counts))
          );
          ("sum", Json.Float h.Metrics.sum);
          ("count", Json.Int h.Metrics.n);
        ]
  in
  Json.Obj
    (tagged experiment
       (("type", Json.String "metric") :: ("name", Json.String name) :: payload))

let to_lines ?experiment () =
  List.map (fun s -> Json.to_string (span_json ?experiment s)) (Span.spans ())
  @ List.map
      (fun m -> Json.to_string (metric_json ?experiment m))
      (Metrics.snapshot ())

let write_channel ?experiment oc =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (to_lines ?experiment ())

let write_file ?experiment path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      write_channel ?experiment oc)
