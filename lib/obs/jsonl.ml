(* JSON-Lines exporter.

   One JSON object per line, "type" discriminated: spans first (start
   order), then events (emission order), then profile nodes, then
   metrics (name order).  An optional "experiment" field tags every
   record, so bench runs can concatenate experiments into one file and
   still diff stage-level breakdowns run against run.  Attr values are
   encoded by the shared Attr.to_json, the same encoder Chrometrace
   uses. *)

let tagged experiment fields =
  match experiment with
  | None -> fields
  | Some e -> ("experiment", Json.String e) :: fields

(* [start_ns] is rebased to [base_ns] (the trace's first span) so two
   runs of the same pipeline produce byte-diffable files: absolute
   monotonic readings differ on every run, offsets within a trace do
   not (exactly, under the deterministic test clock; closely enough to
   survive a textual diff of record *structure* otherwise). *)
let span_json ?experiment ?(base_ns = 0L) (s : Span.t) =
  Json.Obj
    (tagged experiment
       [
         ("type", Json.String "span");
         ("id", Json.Int s.Span.id);
         ( "parent",
           match s.Span.parent with
           | None -> Json.Null
           | Some p -> Json.Int p );
         ("depth", Json.Int s.Span.depth);
         ("name", Json.String s.Span.name);
         ("start_ns", Json.Int (Int64.to_int (Int64.sub s.Span.start_ns base_ns)));
         ("dur_ms", Json.Float (Span.duration_ms s));
         ("attrs", Attr.to_json (Span.attrs s));
       ])

(* Event timestamps are rebased like span starts (and clamped at zero in
   case an event predates the trace's first span), so two runs under the
   deterministic test clock stay byte-diffable. *)
let event_json ?experiment ?(base_ns = 0L) (e : Event.t) =
  Json.Obj
    (tagged experiment
       [
         ("type", Json.String "event");
         ("seq", Json.Int e.Event.seq);
         ( "ts_ns",
           Json.Int
             (max 0 (Int64.to_int (Int64.sub e.Event.ts_ns base_ns))) );
         ("level", Json.String (Event.level_name e.Event.level));
         ("name", Json.String e.Event.name);
         ("attrs", Attr.to_json e.Event.attrs);
       ])

let metric_json ?experiment (name, snap) =
  let payload =
    match snap with
    | Metrics.SCounter n -> [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
    | Metrics.SGauge v -> [ ("kind", Json.String "gauge"); ("value", Json.Float v) ]
    | Metrics.SHistogram h ->
        [
          ("kind", Json.String "histogram");
          ( "bounds",
            Json.List
              (Array.to_list (Array.map (fun b -> Json.Float b) h.Metrics.bounds))
          );
          ( "counts",
            Json.List
              (Array.to_list (Array.map (fun c -> Json.Int c) h.Metrics.counts))
          );
          ("sum", Json.Float h.Metrics.sum);
          ("count", Json.Int h.Metrics.n);
        ]
        @ (match Metrics.p50_90_99 h with
          | Some (p50, p90, p99) ->
              [
                ("p50", Json.Float p50);
                ("p90", Json.Float p90);
                ("p99", Json.Float p99);
              ]
          | None -> [])
  in
  Json.Obj
    (tagged experiment
       (("type", Json.String "metric") :: ("name", Json.String name) :: payload))

let profile_json ?experiment ~path (n : Profile.node) =
  Json.Obj
    (tagged experiment
       [
         ("type", Json.String "profile");
         ("path", Json.String (String.concat "/" path));
         ("name", Json.String n.Profile.name);
         ("calls", Json.Int n.Profile.calls);
         ("total_ms", Json.Float n.Profile.total_ms);
         ("self_ms", Json.Float n.Profile.self_ms);
         ("rows", Json.Int n.Profile.rows);
         ("work", Json.Int n.Profile.work);
         ("bytes", Json.Int n.Profile.bytes);
         ("minor_words", Json.Float n.Profile.minor_words);
         ("major_words", Json.Float n.Profile.major_words);
         ("compactions", Json.Int n.Profile.compactions);
       ])

let to_lines ?experiment () =
  let spans = Span.spans () in
  let events = Event.events () in
  let base_ns =
    match (spans, events) with
    | s :: _, _ -> s.Span.start_ns
    | [], e :: _ -> e.Event.ts_ns
    | [], [] -> 0L
  in
  let span_lines =
    List.map (fun s -> Json.to_string (span_json ?experiment ~base_ns s)) spans
  in
  let event_lines =
    List.map
      (fun e -> Json.to_string (event_json ?experiment ~base_ns e))
      events
  in
  let profile_lines =
    List.rev
      (Profile.fold
         (fun acc path n ->
           Json.to_string (profile_json ?experiment ~path n) :: acc)
         []
         (Profile.of_spans spans))
  in
  let metric_lines =
    List.map (fun m -> Json.to_string (metric_json ?experiment m))
      (Metrics.snapshot ())
  in
  span_lines @ event_lines @ profile_lines @ metric_lines

let write_channel ?experiment oc =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (to_lines ?experiment ())

let write_file ?experiment path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      write_channel ?experiment oc)
