(** JSON-Lines exporter: one object per line, ["type"] discriminated
    (["span"] then ["metric"]), optionally tagged with an experiment
    name so bench runs can be diffed stage by stage.  See
    docs/OBSERVABILITY.md for the schema. *)

val span_json : ?experiment:string -> Span.t -> Json.t
val metric_json : ?experiment:string -> string * Metrics.snapshot -> Json.t

val to_lines : ?experiment:string -> unit -> string list
(** Every recorded span and metric as encoded JSON lines. *)

val write_channel : ?experiment:string -> out_channel -> unit
val write_file : ?experiment:string -> string -> unit
