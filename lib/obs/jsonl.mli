(** JSON-Lines exporter: one object per line, ["type"] discriminated
    (["span"], then ["event"], then ["profile"], then ["metric"]),
    optionally tagged with an experiment name so bench runs can be
    diffed stage by stage.  Span [start_ns] and event [ts_ns] values are
    rebased to the trace's first span, so two runs of the same pipeline
    produce diffable files.  See docs/OBSERVABILITY.md for the schema. *)

val span_json : ?experiment:string -> ?base_ns:int64 -> Span.t -> Json.t
(** [base_ns] (default [0L]) is subtracted from the span's start — pass
    the trace's first start to get rebased, diff-stable offsets. *)

val event_json : ?experiment:string -> ?base_ns:int64 -> Event.t -> Json.t
(** One flight-recorder event; [ts_ns] is rebased like span starts and
    clamped at zero. *)

val metric_json : ?experiment:string -> string * Metrics.snapshot -> Json.t
(** Histogram payloads include estimated [p50]/[p90]/[p99] fields when
    the histogram is non-empty. *)

val profile_json :
  ?experiment:string -> path:string list -> Profile.node -> Json.t
(** One aggregated profile node; [path] is joined with ["/"]. *)

val to_lines : ?experiment:string -> unit -> string list
(** Every recorded span (rebased), the flight recorder's live events,
    the aggregated profile tree, and every metric, as encoded JSON
    lines. *)

val write_channel : ?experiment:string -> out_channel -> unit
val write_file : ?experiment:string -> string -> unit
