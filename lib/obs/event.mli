(** Structured event log with a bounded ring-buffer flight recorder.

    Events are leveled, timestamped records with the same typed attrs
    spans carry.  The last [capacity] events are retained in a ring; on
    a catastrophic condition (plan timeout, fatal backend error,
    circuit-breaker open) the instrumentation site calls {!dump} and the
    ring contents go to the sink — stderr by default.  Everything is
    gated on {!Control}, so emission with observability off costs one
    boolean test. *)

type level = Debug | Info | Warn | Error

val level_rank : level -> int
(** [Debug]=0 … [Error]=3. *)

val level_name : level -> string
(** ["debug"] | ["info"] | ["warn"] | ["error"] — the JSONL encoding. *)

val level_of_string : string -> level option

type t = {
  seq : int;  (** monotonic emission index; survives ring eviction *)
  ts_ns : int64;  (** {!Clock.now_ns} at emission *)
  level : level;
  name : string;
  attrs : Attr.t;
}

val emit : ?attrs:Attr.t -> level -> string -> unit
(** Records an event when observability is on and [level] is at or above
    the threshold; also bumps the ["events.<level>"] counter.  O(1); the
    oldest ring entry is evicted when full.  The calling domain's
    {!Span.base_attrs} (the request's trace id) are prepended to
    [attrs], and head sampling does not apply — a sampled-out request
    still leaves its events in the flight recorder. *)

val debug : ?attrs:Attr.t -> string -> unit
val info : ?attrs:Attr.t -> string -> unit
val warn : ?attrs:Attr.t -> string -> unit
val error : ?attrs:Attr.t -> string -> unit

val capacity : unit -> int
val set_capacity : int -> unit
(** Replaces the ring (clearing it).  Default 256. *)

val set_threshold : level -> unit
(** Minimum level recorded (default [Debug]). *)

val events : unit -> t list
(** Live ring contents, oldest first. *)

val recorded : unit -> int
(** Total events recorded, evicted ones included. *)

val dropped : unit -> int
(** How many recorded events the ring has evicted. *)

(** A flight-recorder dump: why, and the ring contents at that moment. *)
type dump = { reason : string; dumped : t list }

val render : dump -> string
(** Human-readable dump: header plus one line per event, timestamps
    relative to the oldest retained event. *)

val dump : reason:string -> unit
(** Hands the current ring contents to the sink (no-op when
    observability is off).  Bumps the ["events.dumps"] counter. *)

val set_dump_sink : (dump -> unit) -> unit
(** Replaces the dump sink (default: {!render} to stderr). *)

val use_default_sink : unit -> unit
val dump_count : unit -> int

val reset : unit -> unit
(** Clears the ring and restores capacity, threshold and sink defaults. *)
