(* Key/value attributes attached to spans. *)

type value = Int of int | Float of float | Bool of bool | String of string
type t = (string * value) list

let int k n = (k, Int n)
let float k x = (k, Float x)
let bool k b = (k, Bool b)
let string k s = (k, String s)

let value_to_string = function
  | Int n -> string_of_int n
  | Float x -> Printf.sprintf "%g" x
  | Bool b -> string_of_bool b
  | String s -> s
