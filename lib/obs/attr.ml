(* Key/value attributes attached to spans. *)

type value = Int of int | Float of float | Bool of bool | String of string
type t = (string * value) list

let int k n = (k, Int n)
let float k x = (k, Float x)
let bool k b = (k, Bool b)
let string k s = (k, String s)

let value_to_string = function
  | Int n -> string_of_int n
  | Float x -> Printf.sprintf "%g" x
  | Bool b -> string_of_bool b
  | String s -> s

(* The one attr-to-JSON encoder: every JSON-emitting sink (Jsonl,
   Chrometrace) goes through these two, so the value mapping cannot
   drift between exporters. *)
let value_to_json = function
  | Int n -> Json.Int n
  | Float x -> Json.Float x
  | Bool b -> Json.Bool b
  | String s -> Json.String s

let to_json (attrs : t) = Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)
