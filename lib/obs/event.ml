(* Structured event log with a flight recorder.

   Spans answer "where did the time go"; events answer "what happened" —
   a retry fired, a breaker opened, a sort spilled, a fragment cost came
   from the planner cache.  Each event is a leveled, timestamped record
   with the same typed attrs spans use.

   Storage is a bounded ring buffer (the flight recorder): emission is
   O(1), memory is capped, and when something goes badly wrong — a plan
   timeout, a fatal backend error, a circuit breaker opening — the
   instrumentation site calls [dump] and the last [capacity] events are
   handed to the sink (stderr by default), newest context included,
   oldest long-forgotten noise evicted.  Everything is gated on the
   Control switch, so with observability off an emit site costs one
   boolean test.

   Domain safety: one mutex guards the ring (buffer, head, count, seq),
   with the timestamp sampled inside the critical section so the ring —
   and therefore [events ()] — stays in global emission order even when
   worker domains race to emit.  The per-level metric bump happens
   outside the ring lock (Metrics has its own). *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type t = {
  seq : int; (* monotonic emission index, survives eviction *)
  ts_ns : int64;
  level : level;
  name : string;
  attrs : Attr.t;
}

(* --- ring buffer --------------------------------------------------------- *)

let default_capacity = 256
let ring_lock = Mutex.create ()
let buf : t option array ref = ref (Array.make default_capacity None)
let head = ref 0 (* next write slot *)
let count = ref 0 (* live entries, <= capacity *)
let seq = ref 0 (* total recorded (evicted included) *)
let threshold = ref Debug

let capacity () = Mutex.protect ring_lock (fun () -> Array.length !buf)

let set_capacity n =
  if n < 1 then invalid_arg "Event.set_capacity: capacity must be >= 1";
  Mutex.protect ring_lock (fun () ->
      buf := Array.make n None;
      head := 0;
      count := 0)

let set_threshold l = threshold := l

let emit ?(attrs = []) level name =
  if Control.is_enabled () && level_rank level >= level_rank !threshold then begin
    (* Request-scoped base attrs (the trace id) ride on every event the
       request produces, same as on its spans.  Sampling deliberately
       does NOT gate events: a sampled-out request keeps its trace id in
       the flight recorder even though it records no spans. *)
    let attrs =
      match Span.base_attrs () with [] -> attrs | base -> base @ attrs
    in
    Mutex.protect ring_lock (fun () ->
        let e = { seq = !seq; ts_ns = Clock.now_ns (); level; name; attrs } in
        incr seq;
        let b = !buf in
        b.(!head) <- Some e;
        head := (!head + 1) mod Array.length b;
        if !count < Array.length b then incr count);
    Metrics.incr ("events." ^ level_name level)
  end

let debug ?attrs name = emit ?attrs Debug name
let info ?attrs name = emit ?attrs Info name
let warn ?attrs name = emit ?attrs Warn name
let error ?attrs name = emit ?attrs Error name

(* Live ring contents, oldest first. *)
let events () =
  Mutex.protect ring_lock (fun () ->
      let b = !buf in
      let cap = Array.length b in
      let out = ref [] in
      for i = 0 to !count - 1 do
        (* newest is at head-1; walk backwards and cons *)
        match b.((!head - 1 - i + (2 * cap)) mod cap) with
        | Some e -> out := e :: !out
        | None -> ()
      done;
      !out)

let recorded () = Mutex.protect ring_lock (fun () -> !seq)
let dropped () = Mutex.protect ring_lock (fun () -> !seq - !count)

(* --- flight-recorder dump ------------------------------------------------ *)

type dump = { reason : string; dumped : t list }

let render (d : dump) =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "FLIGHT RECORDER — reason: %s, %d event(s) (%d evicted)\n"
    d.reason (List.length d.dumped) (dropped ());
  let base =
    match d.dumped with [] -> 0L | e :: _ -> e.ts_ns
  in
  List.iter
    (fun e ->
      Printf.bprintf buf "  #%-4d %+9.3fms %-5s %s" e.seq
        (Clock.ns_to_ms (Int64.sub e.ts_ns base))
        (level_name e.level) e.name;
      List.iter
        (fun (k, v) -> Printf.bprintf buf " %s=%s" k (Attr.value_to_string v))
        e.attrs;
      Buffer.add_char buf '\n')
    d.dumped;
  Buffer.contents buf

let default_sink d = prerr_string (render d)
let sink = ref default_sink
let set_dump_sink f = sink := f
let use_default_sink () = sink := default_sink

(* Atomic, not a plain ref: dumps fire from whichever domain hits the
   catastrophic condition, and two domains dumping concurrently would
   lose an increment through a plain [incr] (read-modify-write race). *)
let dumps = Atomic.make 0
let last_dump_reason : string option ref = ref None

let dump ~reason =
  if Control.is_enabled () then begin
    Atomic.incr dumps;
    last_dump_reason := Some reason;
    Metrics.incr "events.dumps";
    !sink { reason; dumped = events () }
  end

let dump_count () = Atomic.get dumps

let reset () =
  Mutex.protect ring_lock (fun () ->
      buf := Array.make default_capacity None;
      head := 0;
      count := 0;
      seq := 0);
  threshold := Debug;
  sink := default_sink;
  Atomic.set dumps 0;
  last_dump_reason := None
