(** Plan anomaly detector: per-operator q-errors over estimated vs
    actual rows and cost, warn events for misestimates, and a human
    diagnostics report — the online counterpart of the offline
    calibration experiment.

    This module is generic: callers flatten their physical plans into
    {!sample} records (see [Physical.diagnose_samples] and
    [Middleware.diagnose_samples]); nothing here depends on the
    relational layer. *)

type sample = {
  d_stream : string;
      (** stream label, e.g. the fragment root's Skolem name *)
  d_node : int;  (** physical node id, unique within one stream's plan *)
  d_op : string;  (** operator name *)
  d_est_rows : float;  (** negative when the plan was never annotated *)
  d_act_rows : int;  (** negative when the node was never executed *)
  d_est_cost : float;
  d_act_cost : int;
  d_spills : int;  (** actual external-sort spill passes (sorts only) *)
}

type metric = Rows | Cost

val metric_name : metric -> string

type finding = {
  f_stream : string;
  f_node : int;
  f_op : string;
  f_metric : metric;
  f_est : float;
  f_act : float;
  f_qerr : float;
}

val qerror : est:float -> act:float -> float
(** [max(est/act, act/est)] with both sides clamped to >= 1; 1.00 is a
    perfect estimate. *)

val default_threshold : float
(** 4.0 — past selectivity-model noise, squarely wrong-plan territory. *)

val findings : ?threshold:float -> sample list -> finding list
(** Per-node q-errors at or above [threshold], worst first.  Samples
    missing an estimate or an actual (negative fields) are skipped. *)

val emit_findings : finding list -> unit
(** One ["diagnose.misestimate"] warn event per finding, carrying
    stream/node/op/metric/est/act/qerr attrs. *)

val render : ?threshold:float -> ?top:int -> sample list -> string
(** The report: misestimate table, spill list, resilience counters,
    event summary, GC pressure per operator, and the hot-path
    percentile table (reads the global metrics/profile collectors). *)

val report : ?threshold:float -> ?top:int -> sample list -> string
(** {!emit_findings} on the computed findings, then {!render}. *)
