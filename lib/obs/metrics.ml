(* The metrics registry: named counters, gauges, and histograms.

   Metrics are looked up by name at the instrumentation site
   (get-or-create), which keeps call sites one-liners; all writes are
   gated on Control, so with observability off a metric call is a single
   boolean test.  Histograms are fixed-bucket: [bounds] are inclusive
   upper edges and the last bucket is the overflow bucket, so
   [counts] has [Array.length bounds + 1] cells.

   Domain safety: one mutex guards the registry and every metric cell.
   A finer scheme (lock-free counters, per-domain shards) is not worth
   it here — with observability off there is no lock at all, and with it
   on the workloads are dominated by executor work, not metric traffic. *)

type histogram = {
  bounds : float array; (* strictly increasing inclusive upper edges *)
  counts : int array; (* length = Array.length bounds + 1 (overflow last) *)
  mutable sum : float;
  mutable n : int;
}

type metric = Counter of int ref | Gauge of float ref | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let reset () = Mutex.protect lock (fun () -> Hashtbl.reset registry)

let exponential ~start ~factor ~count =
  Array.init count (fun i -> start *. (factor ** float_of_int i))

(* Powers of four from 1 to ~4M: wide enough for work units, rows and
   bytes alike without per-metric tuning. *)
let default_bounds = exponential ~start:1.0 ~factor:4.0 ~count:12

(* Millisecond durations: 1µs to ~1min in powers of four. *)
let duration_bounds = exponential ~start:0.001 ~factor:4.0 ~count:13

(* Index of the bucket [x] falls into: the smallest [i] with
   [x <= bounds.(i)], or [Array.length bounds] for the overflow bucket.
   Binary search — [observe] sits on the executor's per-row hot path, so
   a linear scan over 12+ bounds per observation is real money (the
   [micro:bucket-*] bench cases measure the difference). *)
let bucket_index bounds x =
  let nb = Array.length bounds in
  if nb = 0 || x > bounds.(nb - 1) then nb
  else begin
    let lo = ref 0 and hi = ref (nb - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let find_or_add name mk =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = mk () in
      Hashtbl.replace registry name m;
      m

let kind_error name want =
  invalid_arg (Printf.sprintf "Obs.Metrics: %s is not a %s" name want)

let incr ?(by = 1) name =
  if Control.is_enabled () then
    Mutex.protect lock (fun () ->
        match find_or_add name (fun () -> Counter (ref 0)) with
        | Counter r -> r := !r + by
        | _ -> kind_error name "counter")

let set_gauge name v =
  if Control.is_enabled () then
    Mutex.protect lock (fun () ->
        match find_or_add name (fun () -> Gauge (ref 0.0)) with
        | Gauge r -> r := v
        | _ -> kind_error name "gauge")

let observe ?(bounds = default_bounds) name x =
  if Control.is_enabled () then
    Mutex.protect lock (fun () ->
        match
          find_or_add name (fun () ->
              Histogram
                {
                  bounds;
                  counts = Array.make (Array.length bounds + 1) 0;
                  sum = 0.0;
                  n = 0;
                })
        with
        | Histogram h ->
            let i = bucket_index h.bounds x in
            h.counts.(i) <- h.counts.(i) + 1;
            h.sum <- h.sum +. x;
            h.n <- h.n + 1
        | _ -> kind_error name "histogram")

(* --- read side -------------------------------------------------------- *)

type snapshot =
  | SCounter of int
  | SGauge of float
  | SHistogram of histogram

let snap = function
  | Counter r -> SCounter !r
  | Gauge r -> SGauge !r
  | Histogram h ->
      SHistogram { h with counts = Array.copy h.counts }

let snapshot () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name m acc -> (name, snap m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Percentile estimation from bucket counts.  The true values are gone;
   what remains is "k observations landed in (lo, hi]".  We find the
   bucket holding the q*n-th observation and interpolate inside it —
   log-linearly when the edges are positive (our buckets are
   exponential, so equal fractions should cover equal ratios), linearly
   from zero in the first bucket.  The overflow bucket has no upper edge, so a
   percentile landing there reports the last bound: a lower bound on the
   truth, clearly conservative. *)
let percentile (h : histogram) q =
  let nb = Array.length h.bounds in
  if h.n = 0 || nb = 0 then None
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int h.n in
    let rec go i cum =
      if i > nb then Some h.bounds.(nb - 1)
      else
        let c = h.counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= rank then
          if i >= nb then Some h.bounds.(nb - 1)
          else begin
            let hi = h.bounds.(i) in
            let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
            let frac = Float.max 0.0 ((rank -. cum) /. float_of_int c) in
            if lo > 0.0 && hi > 0.0 then Some (lo *. ((hi /. lo) ** frac))
            else Some (lo +. ((hi -. lo) *. frac))
          end
        else go (i + 1) cum'
    in
    go 0 0.0
  end

let p50_90_99 h =
  match (percentile h 0.50, percentile h 0.90, percentile h 0.99) with
  | Some a, Some b, Some c -> Some (a, b, c)
  | _ -> None

let counter_value name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter r) -> Some !r
      | _ -> None)

let histogram_snapshot name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Histogram h) -> Some { h with counts = Array.copy h.counts }
      | _ -> None)
