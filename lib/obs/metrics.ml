(* The metrics registry: named counters, gauges, and histograms.

   Metrics are looked up by name at the instrumentation site
   (get-or-create), which keeps call sites one-liners; all writes are
   gated on Control, so with observability off a metric call is a single
   boolean test.  Histograms are fixed-bucket: [bounds] are inclusive
   upper edges and the last bucket is the overflow bucket, so
   [counts] has [Array.length bounds + 1] cells. *)

type histogram = {
  bounds : float array; (* strictly increasing inclusive upper edges *)
  counts : int array; (* length = Array.length bounds + 1 (overflow last) *)
  mutable sum : float;
  mutable n : int;
}

type metric = Counter of int ref | Gauge of float ref | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reset () = Hashtbl.reset registry

let exponential ~start ~factor ~count =
  Array.init count (fun i -> start *. (factor ** float_of_int i))

(* Powers of four from 1 to ~4M: wide enough for work units, rows and
   bytes alike without per-metric tuning. *)
let default_bounds = exponential ~start:1.0 ~factor:4.0 ~count:12

(* Millisecond durations: 1µs to ~1min in powers of four. *)
let duration_bounds = exponential ~start:0.001 ~factor:4.0 ~count:13

let find_or_add name mk =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = mk () in
      Hashtbl.replace registry name m;
      m

let kind_error name want =
  invalid_arg (Printf.sprintf "Obs.Metrics: %s is not a %s" name want)

let incr ?(by = 1) name =
  if Control.is_enabled () then
    match find_or_add name (fun () -> Counter (ref 0)) with
    | Counter r -> r := !r + by
    | _ -> kind_error name "counter"

let set_gauge name v =
  if Control.is_enabled () then
    match find_or_add name (fun () -> Gauge (ref 0.0)) with
    | Gauge r -> r := v
    | _ -> kind_error name "gauge"

let observe ?(bounds = default_bounds) name x =
  if Control.is_enabled () then
    match
      find_or_add name (fun () ->
          Histogram
            {
              bounds;
              counts = Array.make (Array.length bounds + 1) 0;
              sum = 0.0;
              n = 0;
            })
    with
    | Histogram h ->
        let nb = Array.length h.bounds in
        let rec idx i = if i >= nb || x <= h.bounds.(i) then i else idx (i + 1) in
        let i = idx 0 in
        h.counts.(i) <- h.counts.(i) + 1;
        h.sum <- h.sum +. x;
        h.n <- h.n + 1
    | _ -> kind_error name "histogram"

(* --- read side -------------------------------------------------------- *)

type snapshot =
  | SCounter of int
  | SGauge of float
  | SHistogram of histogram

let snap = function
  | Counter r -> SCounter !r
  | Gauge r -> SGauge !r
  | Histogram h ->
      SHistogram { h with counts = Array.copy h.counts }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, snap m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counter_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter r) -> Some !r
  | _ -> None

let histogram_snapshot name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> Some { h with counts = Array.copy h.counts }
  | _ -> None
