(** Span-based tracing: hierarchical, monotonic-clock timed, with
    key/value attributes.  Spans nest by dynamic extent and are recorded
    in start (pre-) order; closing a span feeds its duration into the
    ["span.ms.<name>"] histogram.

    Domain safety: the stack of open spans is per-domain (DLS); span ids
    and the log are shared under a mutex, with the clock sampled inside
    the append critical section so the log stays in global start order
    across domains.  {!context}/{!with_context} carry the parenting span
    across a domain boundary (Domain_pool wraps every submitted task
    with them). *)

type t = {
  id : int;
  parent : int option;
  depth : int;
  mutable name : string;
  start_ns : int64;
  mutable end_ns : int64;
  mutable attr_rev : Attr.t;
  mutable finished : bool;
  mutable gc_minor_words : float;
      (** minor words allocated during the span — meaningful only once
          [finished] (holds the open snapshot until then) *)
  mutable gc_major_words : float;
  mutable gc_compactions : int;
}

val with_span : ?attrs:Attr.t -> string -> (unit -> 'a) -> 'a
(** Runs [f] inside a span named [name].  When observability is off this
    is just [f ()]. *)

type context
(** The telemetry position at some point in some domain's dynamic
    extent: the parenting span (spans opened under {!with_context}
    become children of the span that was innermost when {!context} was
    called), plus the request-scoped base attributes and sampling
    decision, so a request's trace id and head-sampling choice follow
    its work across the pool's submit boundary. *)

val context : unit -> context
(** The current position — the innermost open span of the calling
    domain (or its installed base when its stack is empty), together
    with the domain's current {!base_attrs} and {!sampled} state. *)

val with_context : context -> (unit -> 'a) -> 'a
(** Runs [f] with [ctx] installed as the calling domain's parenting
    base, base attributes and sampling flag, restoring the previous
    state afterwards.  Used by worker domains so a task's spans land
    under the span that submitted it and carry its trace id. *)

val with_base_attrs : Attr.t -> (unit -> 'a) -> 'a
(** Appends [attrs] to the calling domain's base attributes for the
    extent of [f]: every span opened inside (and, via {!Event}, every
    event emitted inside) carries them first.  The server wraps each
    protocol request in [with_base_attrs [trace_id ...]] — this is the
    trace-id propagation mechanism. *)

val base_attrs : unit -> Attr.t
(** The calling domain's current base attributes ([[]] outside any
    {!with_base_attrs}). *)

val with_sampling : bool -> (unit -> 'a) -> 'a
(** Sets the head-sampling decision for the extent of [f]: with
    [false], {!with_span} runs its thunk directly and records nothing —
    a sampled-out request produces zero spans while metrics and events
    still flow.  Nesting restores the outer decision on exit. *)

val sampled : unit -> bool
(** The calling domain's current sampling decision (default [true]). *)

val tracing : unit -> bool
(** Alias for {!Control.is_enabled}: guard attribute computation at the
    instrumentation site. *)

val add : string -> Attr.value -> unit
(** Attaches an attribute to the innermost open span (no-op when off or
    when no span is open). *)

val add_list : Attr.t -> unit

val set_name : string -> unit
(** Renames the innermost open span — used when the operator kind is
    only known mid-span (hash join vs. nested loop). *)

val spans : unit -> t list
(** Completed and open spans in start (pre-) order. *)

val attrs : t -> Attr.t
(** Attributes in insertion order. *)

val duration_ms : t -> float

val find_attr : t -> string -> Attr.value option
(** First attribute named [key], in insertion order — how the server
    finds a span's [trace_id]. *)

val prune : (t -> bool) -> unit
(** Drops {e finished} spans matching the predicate from the log (open
    spans always survive).  The server prunes each request's spans after
    extracting its profile so a long-running process stays bounded. *)

val reset : unit -> unit

val set_gc_source : (unit -> float * float * int) -> unit
(** Replaces the allocation counter sampled at span open/close with a
    custom [(minor_words, major_words, compactions)] source — tests
    install a deterministic counter, like {!Clock.set_source}. *)

val use_default_gc_source : unit -> unit
(** Restores the [Gc.quick_stat] source. *)
