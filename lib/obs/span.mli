(** Span-based tracing: hierarchical, monotonic-clock timed, with
    key/value attributes.  Spans nest by dynamic extent and are recorded
    in start (pre-) order; closing a span feeds its duration into the
    ["span.ms.<name>"] histogram.

    Domain safety: the stack of open spans is per-domain (DLS); span ids
    and the log are shared under a mutex, with the clock sampled inside
    the append critical section so the log stays in global start order
    across domains.  {!context}/{!with_context} carry the parenting span
    across a domain boundary (Domain_pool wraps every submitted task
    with them). *)

type t = {
  id : int;
  parent : int option;
  depth : int;
  mutable name : string;
  start_ns : int64;
  mutable end_ns : int64;
  mutable attr_rev : Attr.t;
  mutable finished : bool;
  mutable gc_minor_words : float;
      (** minor words allocated during the span — meaningful only once
          [finished] (holds the open snapshot until then) *)
  mutable gc_major_words : float;
  mutable gc_compactions : int;
}

val with_span : ?attrs:Attr.t -> string -> (unit -> 'a) -> 'a
(** Runs [f] inside a span named [name].  When observability is off this
    is just [f ()]. *)

type context
(** The parenting position at some point in some domain's dynamic
    extent: spans opened under {!with_context} become children of the
    span that was innermost when {!context} was called. *)

val context : unit -> context
(** The current parenting position — the innermost open span of the
    calling domain, or its installed base when its stack is empty. *)

val with_context : context -> (unit -> 'a) -> 'a
(** Runs [f] with [ctx] installed as the calling domain's parenting
    base, restoring the previous base afterwards.  Used by worker
    domains so a task's spans land under the span that submitted it. *)

val tracing : unit -> bool
(** Alias for {!Control.is_enabled}: guard attribute computation at the
    instrumentation site. *)

val add : string -> Attr.value -> unit
(** Attaches an attribute to the innermost open span (no-op when off or
    when no span is open). *)

val add_list : Attr.t -> unit

val set_name : string -> unit
(** Renames the innermost open span — used when the operator kind is
    only known mid-span (hash join vs. nested loop). *)

val spans : unit -> t list
(** Completed and open spans in start (pre-) order. *)

val attrs : t -> Attr.t
(** Attributes in insertion order. *)

val duration_ms : t -> float
val reset : unit -> unit

val set_gc_source : (unit -> float * float * int) -> unit
(** Replaces the allocation counter sampled at span open/close with a
    custom [(minor_words, major_words, compactions)] source — tests
    install a deterministic counter, like {!Clock.set_source}. *)

val use_default_gc_source : unit -> unit
(** Restores the [Gc.quick_stat] source. *)
