(** Span-based tracing: hierarchical, monotonic-clock timed, with
    key/value attributes.  Spans nest by dynamic extent and are recorded
    in start (pre-) order; closing a span feeds its duration into the
    ["span.ms.<name>"] histogram. *)

type t = {
  id : int;
  parent : int option;
  depth : int;
  mutable name : string;
  start_ns : int64;
  mutable end_ns : int64;
  mutable attr_rev : Attr.t;
  mutable finished : bool;
  mutable gc_minor_words : float;
      (** minor words allocated during the span — meaningful only once
          [finished] (holds the open snapshot until then) *)
  mutable gc_major_words : float;
  mutable gc_compactions : int;
}

val with_span : ?attrs:Attr.t -> string -> (unit -> 'a) -> 'a
(** Runs [f] inside a span named [name].  When observability is off this
    is just [f ()]. *)

val tracing : unit -> bool
(** Alias for {!Control.is_enabled}: guard attribute computation at the
    instrumentation site. *)

val add : string -> Attr.value -> unit
(** Attaches an attribute to the innermost open span (no-op when off or
    when no span is open). *)

val add_list : Attr.t -> unit

val set_name : string -> unit
(** Renames the innermost open span — used when the operator kind is
    only known mid-span (hash join vs. nested loop). *)

val spans : unit -> t list
(** Completed and open spans in start (pre-) order. *)

val attrs : t -> Attr.t
(** Attributes in insertion order. *)

val duration_ms : t -> float
val reset : unit -> unit

val set_gc_source : (unit -> float * float * int) -> unit
(** Replaces the allocation counter sampled at span open/close with a
    custom [(minor_words, major_words, compactions)] source — tests
    install a deterministic counter, like {!Clock.set_source}. *)

val use_default_gc_source : unit -> unit
(** Restores the [Gc.quick_stat] source. *)
