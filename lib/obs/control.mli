(** Global observability switch.

    Gates every span and metric site in the pipeline behind one boolean,
    so disabled instrumentation costs a single test. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Runs [f] with the switch forced to [b], restoring the previous state
    afterwards (used by tests). *)
