(** Profile trees: the span log aggregated by name-path.

    Every dynamic span instance with the same ancestry of names folds
    into one node with call counts, total and self milliseconds, and
    sums of the pipeline's accounting attributes ([rows]/[work]/[bytes]
    integer attrs).  Invariants (pinned by [test_profile.ml]):
    [self_ms >= 0] on every node, and the self times of a tree sum back
    to its root's total. *)

type node = {
  name : string;
  mutable calls : int;
  mutable total_ms : float;
  mutable self_ms : float;  (** total minus time attributed to children *)
  mutable rows : int;
  mutable work : int;
  mutable bytes : int;
  mutable minor_words : float;
      (** minor-heap words allocated during spans folded into this node
          (descendants included, like [total_ms]); only finished spans
          contribute *)
  mutable major_words : float;
  mutable compactions : int;
  mutable children_rev : node list;  (** reverse first-seen order *)
}

type t = { roots : node list; total_ms : float }

val of_spans : Span.t list -> t
(** Aggregates a span log (pre-order, as {!Span.spans} returns it).
    Unfinished spans are charged zero duration; orphans become roots. *)

val capture : unit -> t
(** [of_spans (Span.spans ())]. *)

val children : node -> node list
(** Children in first-seen order. *)

val iter : (string list -> node -> unit) -> t -> unit
(** Pre-order over aggregated nodes; the path includes the node's name. *)

val fold : ('a -> string list -> node -> 'a) -> 'a -> t -> 'a

val hot : ?top:int -> t -> node list
(** Nodes merged by bare name across all paths, sorted by self time
    descending, truncated to [top] (default 10).  Returned nodes are
    fresh aggregates with no children. *)

val render_tree : t -> string
(** Flame-style table: one row per name-path with calls, total/self ms,
    attribute sums and a share bar. *)

val render_hot : ?top:int -> t -> string
(** Top-k table with p50/p90/p99 columns read from the
    ["span.ms.<name>"] histograms of the current metrics registry. *)

val render : ?top:int -> t -> string
(** {!render_tree} followed by {!render_hot}. *)
