(** Nanosecond clock with a swappable source (tests install a
    deterministic counter).

    The default source is the OS monotonic clock, so span durations
    survive NTP stepping the wall clock backwards.  Independently of the
    source, {!now_ns} never goes backwards: values are clamped to a
    non-decreasing watermark that resets when a new source is
    installed. *)

type source = unit -> int64

val monotonic : source
(** CLOCK_MONOTONIC, in nanoseconds — the default. *)

val wall : source
(** [Unix.gettimeofday]-derived nanoseconds; subject to NTP steps. *)

val now_ns : unit -> int64
val set_source : source -> unit
val use_default : unit -> unit
val ns_to_ms : int64 -> float
