(** Nanosecond clock with a swappable source (tests install a
    deterministic counter). *)

type source = unit -> int64

val now_ns : unit -> int64
val set_source : source -> unit
val use_default : unit -> unit
val ns_to_ms : int64 -> float
