(** Key/value attributes attached to spans. *)

type value = Int of int | Float of float | Bool of bool | String of string
type t = (string * value) list

val int : string -> int -> string * value
val float : string -> float -> string * value
val bool : string -> bool -> string * value
val string : string -> string -> string * value
val value_to_string : value -> string
