(** Key/value attributes attached to spans. *)

type value = Int of int | Float of float | Bool of bool | String of string
type t = (string * value) list

val int : string -> int -> string * value
val float : string -> float -> string * value
val bool : string -> bool -> string * value
val string : string -> string -> string * value
val value_to_string : value -> string

val value_to_json : value -> Json.t
(** The single attr-to-JSON encoding shared by every JSON sink
    ({!Jsonl}, {!Chrometrace}); ints stay ints, floats stay floats. *)

val to_json : t -> Json.t
(** An attribute list as a JSON object, in the given order. *)
