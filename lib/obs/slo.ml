(* Rolling SLO tracker: sliding-window latency and error accounting.

   Time is divided into fixed windows of [window_ms]; the tracker keeps
   the most recent [windows] of them in a ring.  Each window holds a
   fixed-bucket latency histogram (the registry's duration bounds) plus
   sample/error counts, so recording is O(1) and memory is capped at
   windows * buckets.  A window slot is lazily recycled when time
   reaches it again — no timer thread; an idle tracker simply has stale
   windows that [snapshot] ignores.

   Burn rate is the worse of two ratios over the live windows: observed
   p99 over the latency target, and observed error rate over the error
   budget.  Crossing 1.0 is a breach; the transition (not every sample)
   emits an [slo.burn] warn event, and recovery emits [slo.recover], so
   a sustained breach cannot flood the flight recorder.

   Callers supply [now_ms] (the server uses the monotonic clock), which
   keeps the window arithmetic deterministic under test clocks. *)

type config = {
  window_ms : float;  (* width of one accounting window *)
  windows : int;  (* ring size: the sliding window covers windows * window_ms *)
  target_p99_ms : float;  (* latency objective *)
  max_error_rate : float;  (* error budget as a fraction of requests *)
}

let default_config =
  {
    window_ms = 1_000.0;
    windows = 60;
    target_p99_ms = 250.0;
    max_error_rate = 0.01;
  }

type window = {
  mutable w_index : int;  (* absolute window index, -1 = never used *)
  w_counts : int array;  (* latency histogram, duration_bounds + overflow *)
  mutable w_n : int;
  mutable w_errors : int;
  mutable w_sum : float;
}

type t = {
  cfg : config;
  ring : window array;
  m : Mutex.t;
  mutable breached : bool;  (* edge detector for burn/recover events *)
}

let bounds = Metrics.duration_bounds

let create ?(config = default_config) () =
  if config.window_ms <= 0.0 then
    invalid_arg "Slo.create: window_ms must be positive";
  if config.windows < 1 then invalid_arg "Slo.create: windows must be >= 1";
  if config.target_p99_ms <= 0.0 then
    invalid_arg "Slo.create: target_p99_ms must be positive";
  if config.max_error_rate <= 0.0 then
    invalid_arg "Slo.create: max_error_rate must be positive";
  {
    cfg = config;
    ring =
      Array.init config.windows (fun _ ->
          {
            w_index = -1;
            w_counts = Array.make (Array.length bounds + 1) 0;
            w_n = 0;
            w_errors = 0;
            w_sum = 0.0;
          });
    m = Mutex.create ();
    breached = false;
  }

let config t = t.cfg

let window_index t now_ms = int_of_float (Float.max 0.0 now_ms /. t.cfg.window_ms)

(* The ring slot for absolute window [idx], recycled if it still holds
   an older window's data.  Called under the mutex. *)
let slot t idx =
  let w = t.ring.(idx mod Array.length t.ring) in
  if w.w_index <> idx then begin
    w.w_index <- idx;
    Array.fill w.w_counts 0 (Array.length w.w_counts) 0;
    w.w_n <- 0;
    w.w_errors <- 0;
    w.w_sum <- 0.0
  end;
  w

type snapshot = {
  samples : int;
  errors : int;
  error_rate : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;  (* 0 when no samples *)
  latency_burn : float;  (* p99 / target *)
  error_burn : float;  (* error_rate / budget *)
  burn_rate : float;  (* max of the two; > 1.0 = breached *)
  breached : bool;
  covered_windows : int;  (* live (non-stale) windows aggregated *)
}

(* Aggregate the live windows into one histogram + counts.  Called under
   the mutex. *)
let aggregate t now_ms =
  let idx = window_index t now_ms in
  let oldest = idx - Array.length t.ring + 1 in
  let counts = Array.make (Array.length bounds + 1) 0 in
  let n = ref 0 and errors = ref 0 and sum = ref 0.0 and live = ref 0 in
  Array.iter
    (fun w ->
      if w.w_index >= oldest && w.w_index <= idx && w.w_n + w.w_errors > 0 then begin
        incr live;
        Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) w.w_counts;
        n := !n + w.w_n;
        errors := !errors + w.w_errors;
        sum := !sum +. w.w_sum
      end)
    t.ring;
  (counts, !n, !errors, !sum, !live)

let snapshot_locked t now_ms =
  let counts, n, errors, sum, live = aggregate t now_ms in
  let h = { Metrics.bounds; counts; sum; n } in
  let pct q =
    match Metrics.percentile h q with Some v -> v | None -> 0.0
  in
  let p50 = pct 0.50 and p90 = pct 0.90 and p99 = pct 0.99 in
  let total = n + errors in
  let error_rate =
    if total = 0 then 0.0 else float_of_int errors /. float_of_int total
  in
  let latency_burn = p99 /. t.cfg.target_p99_ms in
  let error_burn = error_rate /. t.cfg.max_error_rate in
  let burn = Float.max latency_burn error_burn in
  {
    samples = total;
    errors;
    error_rate;
    p50_ms = p50;
    p90_ms = p90;
    p99_ms = p99;
    latency_burn;
    error_burn;
    burn_rate = burn;
    breached = burn > 1.0;
    covered_windows = live;
  }

let snapshot t ~now_ms =
  Mutex.protect t.m (fun () -> snapshot_locked t now_ms)

let record t ?(error = false) ~now_ms latency_ms =
  let transition =
    Mutex.protect t.m (fun () ->
        let w = slot t (window_index t now_ms) in
        if error then w.w_errors <- w.w_errors + 1
        else begin
          let i = Metrics.bucket_index bounds latency_ms in
          w.w_counts.(i) <- w.w_counts.(i) + 1;
          w.w_n <- w.w_n + 1;
          w.w_sum <- w.w_sum +. latency_ms
        end;
        let snap = snapshot_locked t now_ms in
        let was = t.breached in
        t.breached <- snap.breached;
        if snap.breached && not was then Some (`Burn snap)
        else if was && not snap.breached then Some (`Recover snap)
        else None)
  in
  match transition with
  | Some (`Burn snap) ->
      Event.warn "slo.burn"
        ~attrs:
          [
            Attr.float "p99_ms" snap.p99_ms;
            Attr.float "target_ms" t.cfg.target_p99_ms;
            Attr.float "error_rate" snap.error_rate;
            Attr.float "burn_rate" snap.burn_rate;
            Attr.int "samples" snap.samples;
          ]
  | Some (`Recover snap) ->
      Event.info "slo.recover"
        ~attrs:
          [
            Attr.float "p99_ms" snap.p99_ms;
            Attr.float "burn_rate" snap.burn_rate;
          ]
  | None -> ()

let reset t =
  Mutex.protect t.m (fun () ->
      Array.iter
        (fun w ->
          w.w_index <- -1;
          Array.fill w.w_counts 0 (Array.length w.w_counts) 0;
          w.w_n <- 0;
          w.w_errors <- 0;
          w.w_sum <- 0.0)
        t.ring;
      t.breached <- false)
