(** Chrome trace-event exporter.

    Renders the global collectors — span tree, flight-recorder events,
    counter/gauge metrics — as Chrome trace-event JSON
    ([{"traceEvents": [...]}]), loadable in Perfetto or
    chrome://tracing: complete events ("ph":"X") for finished spans,
    instants ("ph":"i") for events, counters ("ph":"C") for metrics.
    Timestamps are microseconds rebased to the trace's first span —
    the same timeline the JSONL exporter describes. *)

val trace_json : unit -> Json.t
(** The whole trace as one JSON document. *)

val to_string : unit -> string

val write_file : string -> unit
(** Writes {!to_string} (plus a trailing newline) to the given path. *)
