(** Minimal JSON encoder/parser backing the JSONL exporter and the
    trace-file validator.  Integers and floats stay distinct through a
    round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** [member key (Obj fields)] looks up [key]; [None] on other values. *)
