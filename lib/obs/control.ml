(* Global observability switch.

   Every instrumentation site in the pipeline is gated on this single
   flag, so with tracing disabled the instrumentation reduces to one
   boolean test (plus the closure the [with_span] wrapper allocates).
   The flag gates spans and metrics together: the CLI's [--trace],
   [--trace-json] and [--metrics] all turn it on and then choose what to
   render. *)

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

let with_enabled b f =
  let prev = !enabled in
  enabled := b;
  Fun.protect ~finally:(fun () -> enabled := prev) f
