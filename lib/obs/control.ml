(* Global observability switch.

   Every instrumentation site in the pipeline is gated on this single
   flag, so with tracing disabled the instrumentation reduces to one
   boolean test (plus the closure the [with_span] wrapper allocates).
   The flag gates spans and metrics together: the CLI's [--trace],
   [--trace-json] and [--metrics] all turn it on and then choose what to
   render.

   The flag is an [Atomic.t] so worker domains spawned mid-run read a
   coherent value; flipping it while domains execute is not supported
   (callers enable observability before submitting parallel work). *)

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let with_enabled b f =
  let prev = Atomic.get enabled in
  Atomic.set enabled b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled prev) f
