(* Human-readable sinks: a flame-style indented span tree and a metrics
   table.  Both render from the global collectors, so the typical use is
   run-the-pipeline-then-print. *)

let bprintf = Printf.bprintf

let render_span buf (s : Span.t) =
  let label = String.make (2 * s.Span.depth) ' ' ^ s.Span.name in
  bprintf buf "%-44s %9.3fms" label (Span.duration_ms s);
  List.iter
    (fun (k, v) -> bprintf buf "  %s=%s" k (Attr.value_to_string v))
    (Span.attrs s);
  Buffer.add_char buf '\n'

let render_spans_to buf =
  let spans = Span.spans () in
  let roots = List.filter (fun (s : Span.t) -> s.Span.parent = None) spans in
  let total =
    List.fold_left (fun acc s -> acc +. Span.duration_ms s) 0.0 roots
  in
  bprintf buf "TRACE — %d span(s), %.3fms total\n" (List.length spans) total;
  List.iter (render_span buf) spans

let render_spans () =
  let buf = Buffer.create 1024 in
  render_spans_to buf;
  Buffer.contents buf

let render_histogram buf (h : Metrics.histogram) =
  bprintf buf "histogram n=%d sum=%g" h.Metrics.n h.Metrics.sum;
  (match Metrics.p50_90_99 h with
  | Some (p50, p90, p99) ->
      bprintf buf " p50=%.4g p90=%.4g p99=%.4g" p50 p90 p99
  | None -> ());
  if h.Metrics.n > 0 then begin
    Buffer.add_string buf "  [";
    let first = ref true in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          if not !first then Buffer.add_char buf ' ';
          first := false;
          if i < Array.length h.Metrics.bounds then
            bprintf buf "≤%g:%d" h.Metrics.bounds.(i) c
          else bprintf buf ">%g:%d"
              h.Metrics.bounds.(Array.length h.Metrics.bounds - 1)
              c
        end)
      h.Metrics.counts;
    Buffer.add_char buf ']'
  end

let render_metrics_to buf =
  let ms = Metrics.snapshot () in
  bprintf buf "METRICS — %d metric(s)\n" (List.length ms);
  List.iter
    (fun (name, snap) ->
      bprintf buf "%-44s " name;
      (match snap with
      | Metrics.SCounter n -> bprintf buf "%d" n
      | Metrics.SGauge v -> bprintf buf "%g" v
      | Metrics.SHistogram h -> render_histogram buf h);
      Buffer.add_char buf '\n')
    ms

let render_metrics () =
  let buf = Buffer.create 1024 in
  render_metrics_to buf;
  Buffer.contents buf

let render () =
  let buf = Buffer.create 2048 in
  render_spans_to buf;
  Buffer.add_char buf '\n';
  render_metrics_to buf;
  Buffer.contents buf
