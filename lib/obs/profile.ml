(* Profile trees: the span log aggregated by name-path.

   Spans record every dynamic instance; a profile folds instances with
   the same ancestry of names into one node carrying call counts, total
   and *self* milliseconds (total minus time attributed to children),
   and sums of the accounting attributes the pipeline already attaches
   ("rows", "work", "bytes").  Because children's intervals nest inside
   their parent's and never overlap, self time is non-negative per span,
   and the self times of a tree sum back exactly to its root's total —
   the invariant test_profile.ml pins.

   The renderers are read-side only: build once after the run, print a
   flame-style tree and a top-k hot-operator table (with p50/p90/p99
   columns from the ["span.ms.<name>"] histograms Span.finish feeds). *)

type node = {
  name : string;
  mutable calls : int;
  mutable total_ms : float;
  mutable self_ms : float;
  mutable rows : int;
  mutable work : int;
  mutable bytes : int;
  mutable minor_words : float;
  mutable major_words : float;
  mutable compactions : int;
  mutable children_rev : node list; (* reverse first-seen order *)
}

type t = { roots : node list; total_ms : float }

let fresh name =
  {
    name;
    calls = 0;
    total_ms = 0.0;
    self_ms = 0.0;
    rows = 0;
    work = 0;
    bytes = 0;
    minor_words = 0.0;
    major_words = 0.0;
    compactions = 0;
    children_rev = [];
  }

let children n = List.rev n.children_rev

let of_spans (spans : Span.t list) =
  (* an open (unfinished) span has no meaningful end; charge it zero *)
  let dur (s : Span.t) =
    if s.Span.finished then Span.duration_ms s else 0.0
  in
  (* per-span sum of direct children's durations, for self time *)
  let child_ms : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.t) ->
      match s.Span.parent with
      | None -> ()
      | Some p ->
          let prev = try Hashtbl.find child_ms p with Not_found -> 0.0 in
          Hashtbl.replace child_ms p (prev +. dur s))
    spans;
  (* pre-order guarantees a span's parent was processed first *)
  let node_of_span : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let roots_rev = ref [] in
  let find_or_add name get set =
    match List.find_opt (fun n -> n.name = name) (get ()) with
    | Some n -> n
    | None ->
        let n = fresh name in
        set (n :: get ());
        n
  in
  List.iter
    (fun (s : Span.t) ->
      let n =
        match s.Span.parent with
        | None ->
            find_or_add s.Span.name
              (fun () -> !roots_rev)
              (fun l -> roots_rev := l)
        | Some p -> (
            match Hashtbl.find_opt node_of_span p with
            | Some pn ->
                find_or_add s.Span.name
                  (fun () -> pn.children_rev)
                  (fun l -> pn.children_rev <- l)
            | None ->
                (* orphan (caller passed a partial log): treat as root *)
                find_or_add s.Span.name
                  (fun () -> !roots_rev)
                  (fun l -> roots_rev := l))
      in
      Hashtbl.replace node_of_span s.Span.id n;
      let d = dur s in
      let kids = try Hashtbl.find child_ms s.Span.id with Not_found -> 0.0 in
      n.calls <- n.calls + 1;
      n.total_ms <- n.total_ms +. d;
      n.self_ms <- n.self_ms +. Float.max 0.0 (d -. kids);
      if s.Span.finished then begin
        (* GC deltas include descendants' allocation, like total_ms *)
        n.minor_words <- n.minor_words +. s.Span.gc_minor_words;
        n.major_words <- n.major_words +. s.Span.gc_major_words;
        n.compactions <- n.compactions + s.Span.gc_compactions
      end;
      List.iter
        (fun (k, v) ->
          match (k, v) with
          | "rows", Attr.Int i -> n.rows <- n.rows + i
          | "work", Attr.Int i -> n.work <- n.work + i
          | "bytes", Attr.Int i -> n.bytes <- n.bytes + i
          | _ -> ())
        (Span.attrs s))
    spans;
  let roots = List.rev !roots_rev in
  let total_ms =
    List.fold_left (fun acc (n : node) -> acc +. n.total_ms) 0.0 roots
  in
  { roots; total_ms }

let capture () = of_spans (Span.spans ())

let iter f t =
  let rec go path n =
    let path = path @ [ n.name ] in
    f path n;
    List.iter (go path) (children n)
  in
  List.iter (go []) t.roots

let fold f acc t =
  let acc = ref acc in
  iter (fun path n -> acc := f !acc path n) t;
  !acc

(* --- hot-operator aggregation ------------------------------------------ *)

(* Merge nodes with the same name across all paths (exec.sort under ten
   different streams is one operator), sort by self time. *)
let hot ?(top = 10) t =
  let by_name : (string, node) Hashtbl.t = Hashtbl.create 16 in
  let order_rev = ref [] in
  iter
    (fun _path n ->
      let agg =
        match Hashtbl.find_opt by_name n.name with
        | Some a -> a
        | None ->
            let a = fresh n.name in
            Hashtbl.replace by_name n.name a;
            order_rev := a :: !order_rev;
            a
      in
      agg.calls <- agg.calls + n.calls;
      agg.total_ms <- agg.total_ms +. n.total_ms;
      agg.self_ms <- agg.self_ms +. n.self_ms;
      agg.rows <- agg.rows + n.rows;
      agg.work <- agg.work + n.work;
      agg.bytes <- agg.bytes + n.bytes;
      agg.minor_words <- agg.minor_words +. n.minor_words;
      agg.major_words <- agg.major_words +. n.major_words;
      agg.compactions <- agg.compactions + n.compactions)
    t;
  let all = List.rev !order_rev in
  let sorted =
    List.stable_sort (fun a b -> compare b.self_ms a.self_ms) all
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take top sorted

(* --- renderers ---------------------------------------------------------- *)

let bprintf = Printf.bprintf

let bar width frac =
  let n =
    int_of_float (Float.round (frac *. float_of_int width))
    |> max 0 |> min width
  in
  String.make n '#' ^ String.make (width - n) ' '

(* Allocation columns print in kilowords: raw word counts dwarf every
   other column, and sub-kiloword noise is not actionable. *)
let kwords w = w /. 1000.0

let render_tree_to buf t =
  bprintf buf "PROFILE — %d root(s), %.3fms total\n" (List.length t.roots)
    t.total_ms;
  bprintf buf "%6s %11s %11s %12s %12s %12s %10s %10s %5s  %-12s %s\n" "calls"
    "total(ms)" "self(ms)" "rows" "work" "bytes" "minor(kw)" "major(kw)"
    "compact" "share" "name";
  let grand = if t.total_ms > 0.0 then t.total_ms else 1.0 in
  let rec go depth n =
    bprintf buf "%6d %11.3f %11.3f %12d %12d %12d %10.1f %10.1f %5d  [%s] %s%s\n"
      n.calls n.total_ms n.self_ms n.rows n.work n.bytes
      (kwords n.minor_words) (kwords n.major_words) n.compactions
      (bar 10 (n.total_ms /. grand))
      (String.make (2 * depth) ' ')
      n.name;
    List.iter (go (depth + 1)) (children n)
  in
  List.iter (go 0) t.roots

let render_tree t =
  let buf = Buffer.create 1024 in
  render_tree_to buf t;
  Buffer.contents buf

let pct_cell buf name =
  match Metrics.histogram_snapshot ("span.ms." ^ name) with
  | Some h -> (
      match Metrics.p50_90_99 h with
      | Some (p50, p90, p99) ->
          bprintf buf " %9.3f %9.3f %9.3f" p50 p90 p99
      | None -> bprintf buf " %9s %9s %9s" "-" "-" "-")
  | None -> bprintf buf " %9s %9s %9s" "-" "-" "-"

let render_hot_to buf ?(top = 10) t =
  let rows = hot ~top t in
  bprintf buf "HOT OPERATORS — top %d by self time (percentiles from \
               span.ms.* histograms)\n"
    (List.length rows);
  bprintf buf "%-28s %6s %11s %11s %9s %9s %9s %12s %12s %10s %10s\n" "name"
    "calls" "self(ms)" "total(ms)" "p50" "p90" "p99" "rows" "work" "minor(kw)"
    "major(kw)";
  List.iter
    (fun n ->
      bprintf buf "%-28s %6d %11.3f %11.3f" n.name n.calls n.self_ms
        n.total_ms;
      pct_cell buf n.name;
      bprintf buf " %12d %12d %10.1f %10.1f\n" n.rows n.work
        (kwords n.minor_words) (kwords n.major_words))
    rows

let render_hot ?top t =
  let buf = Buffer.create 1024 in
  render_hot_to buf ?top t;
  Buffer.contents buf

let render ?top t =
  let buf = Buffer.create 2048 in
  render_tree_to buf t;
  Buffer.add_char buf '\n';
  render_hot_to buf ?top t;
  Buffer.contents buf
