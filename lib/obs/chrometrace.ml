(* Chrome trace-event exporter.

   Renders the global collectors — the span tree, the flight recorder's
   events, and the counter/gauge metrics — as Chrome trace-event JSON,
   loadable in Perfetto or chrome://tracing.  The format is the JSON
   Object Format variant: {"traceEvents": [...]} with

   - one complete event ("ph":"X") per finished span, microsecond
     timestamps rebased to the trace's first span (same rebasing as the
     JSONL exporter, so the two files describe the same timeline);
   - one instant event ("ph":"i") per flight-recorder event;
   - one counter event ("ph":"C") per counter/gauge metric, stamped at
     the end of the trace (the registry is cumulative, not sampled).

   The pipeline is single-threaded, so everything lands on pid 1 /
   tid 1 and the viewer nests spans purely by interval containment. *)

let pid = 1
let tid = 1

(* ns offset -> microsecond float, the unit "ts"/"dur" are defined in *)
let us_of_ns ns = Int64.to_float ns /. 1e3

let span_event ~base_ns (s : Span.t) =
  Json.Obj
    [
      ("name", Json.String s.Span.name);
      ("cat", Json.String "span");
      ("ph", Json.String "X");
      ("ts", Json.Float (us_of_ns (Int64.sub s.Span.start_ns base_ns)));
      ("dur", Json.Float (Span.duration_ms s *. 1e3));
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Attr.to_json (Span.attrs s));
    ]

let instant_event ~base_ns (e : Event.t) =
  Json.Obj
    [
      ("name", Json.String e.Event.name);
      ("cat", Json.String ("event," ^ Event.level_name e.Event.level));
      ("ph", Json.String "i");
      ( "ts",
        Json.Float
          (Float.max 0.0 (us_of_ns (Int64.sub e.Event.ts_ns base_ns))) );
      ("s", Json.String "t"); (* thread-scoped instant marker *)
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ( "args",
        Attr.to_json
          (Attr.string "level" (Event.level_name e.Event.level) :: e.Event.attrs)
      );
    ]

let counter_event ~ts name value =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String "metric");
      ("ph", Json.String "C");
      ("ts", Json.Float ts);
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("value", value) ]);
    ]

let process_name_event =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.String "silkroute") ]);
    ]

let trace_json () =
  let spans = Span.spans () in
  let events = Event.events () in
  let base_ns =
    match (spans, events) with
    | s :: _, _ -> s.Span.start_ns
    | [], e :: _ -> e.Event.ts_ns
    | [], [] -> 0L
  in
  let span_events =
    List.filter_map
      (fun (s : Span.t) ->
        (* an open span has no duration; the viewer cannot render it *)
        if s.Span.finished then Some (span_event ~base_ns s) else None)
      spans
  in
  let instant_events = List.map (instant_event ~base_ns) events in
  (* counters/gauges are cumulative: stamp them at the trace's end *)
  let end_ts =
    List.fold_left
      (fun acc (s : Span.t) ->
        if s.Span.finished then
          Float.max acc (us_of_ns (Int64.sub s.Span.end_ns base_ns))
        else acc)
      0.0 spans
  in
  let counter_events =
    List.filter_map
      (fun (name, snap) ->
        match snap with
        | Metrics.SCounter n -> Some (counter_event ~ts:end_ts name (Json.Int n))
        | Metrics.SGauge v -> Some (counter_event ~ts:end_ts name (Json.Float v))
        | Metrics.SHistogram _ -> None)
      (Metrics.snapshot ())
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          ((process_name_event :: span_events) @ instant_events
         @ counter_events) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string () = Json.to_string (trace_json ())

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ());
      output_char oc '\n')
