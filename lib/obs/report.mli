(** Human-readable sinks: flame-style indented span tree and a metrics
    table, rendered from the global collectors. *)

val render_spans : unit -> string
val render_metrics : unit -> string

val render : unit -> string
(** Span tree followed by the metrics table. *)
