(** Rolling SLO tracker: sliding-window latency/error accounting over a
    ring of fixed windows, with p99-vs-target burn-rate detection.

    The tracker covers the last [windows * window_ms] of traffic.  Each
    window is a fixed-bucket latency histogram plus sample/error counts;
    recording is O(1), memory is capped, and stale windows recycle
    lazily — no timer thread.  The {e burn rate} is the worse of
    [p99 / target_p99_ms] and [error_rate / max_error_rate]; crossing
    1.0 emits one [slo.burn] warn event (and dropping back under it one
    [slo.recover] info event), so a sustained breach cannot flood the
    flight recorder.

    Callers supply [now_ms]; the server feeds the monotonic clock, tests
    feed a scripted one, so window arithmetic stays deterministic. *)

type config = {
  window_ms : float;  (** width of one accounting window *)
  windows : int;  (** ring size; the sliding window covers [windows * window_ms] *)
  target_p99_ms : float;  (** latency objective *)
  max_error_rate : float;  (** error budget as a fraction of requests *)
}

val default_config : config
(** 60 windows of 1 s, p99 target 250 ms, 1% error budget. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config

val record : t -> ?error:bool -> now_ms:float -> float -> unit
(** Accounts one request: its latency in ms (ignored when
    [error = true] — an error consumes error budget, not the latency
    distribution).  Thread-safe; evaluates the burn rate and emits the
    breach/recovery transition events. *)

(** The sliding window's current accounting. *)
type snapshot = {
  samples : int;  (** successes + errors across live windows *)
  errors : int;
  error_rate : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;  (** 0 when there are no latency samples *)
  latency_burn : float;  (** p99 / target *)
  error_burn : float;  (** error rate / budget *)
  burn_rate : float;  (** max of the two; > 1.0 means breached *)
  breached : bool;
  covered_windows : int;  (** live windows aggregated into this snapshot *)
}

val snapshot : t -> now_ms:float -> snapshot

val reset : t -> unit
(** Clears every window and the breach edge-detector. *)
