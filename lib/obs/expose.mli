(** Prometheus-style text exposition — the encoding of the server's
    wire-exposed telemetry ([M] protocol requests) and the input of the
    [silkroute monitor] view.

    {!render} produces the classic format ([# TYPE] comments plus
    [name{label="v"} value] lines); {!parse} reads it back, so producer
    and consumers cannot drift.  {!of_metrics} flattens the live
    {!Metrics} registry through a single consistent snapshot: counters
    become [<name>_total], gauges stay gauges, histograms become
    summaries (p50/p90/p99 quantile samples plus [_sum]/[_count]). *)

type kind = Counter | Gauge | Summary

val kind_name : kind -> string

type sample = {
  s_name : string;  (** already sanitized/prefixed *)
  s_kind : kind;
  s_labels : (string * string) list;
  s_value : float;
}

val sample : ?labels:(string * string) list -> kind -> string -> float -> sample

val sanitize : string -> string
(** Folds every character outside [[a-zA-Z0-9_:]] to ['_'] — dotted
    registry names become exposition names. *)

val key_of : sample -> string
(** The exact [name{k="v",...}] key syntax {!render} prints and {!parse}
    returns. *)

val render : sample list -> string
(** One [# TYPE] comment per metric family (summary [_sum]/[_count]
    share their quantile samples' family), then one line per sample, in
    the given order. *)

val of_metrics : ?prefix:string -> unit -> sample list
(** The whole metrics registry as samples, names prefixed (default
    ["silkroute_"]), read through one {!Metrics.snapshot} call so
    concurrent writers can never tear a histogram mid-read. *)

exception Parse_error of string

type parsed = {
  values : (string * float) list;
      (** in exposition order, keyed by {!key_of}'s exact syntax *)
  types : (string * string) list;  (** family name -> kind string *)
}

val parse : string -> parsed
(** Raises {!Parse_error} on a malformed line, an unknown [# TYPE] kind
    or an unparsable sample value.  Non-TYPE comments and blank lines
    are ignored. *)

val find : parsed -> string -> float option
