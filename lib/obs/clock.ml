(* Monotonic-ish nanosecond clock with a swappable source.

   The stdlib exposes no monotonic clock, so the default source derives
   nanoseconds from [Unix.gettimeofday] — adequate for span durations at
   the granularity the experiments care about.  Tests install a
   deterministic counter source so span timings are reproducible. *)

type source = unit -> int64

let default : source = fun () -> Int64.of_float (Unix.gettimeofday () *. 1e9)
let source = ref default
let set_source s = source := s
let use_default () = source := default
let now_ns () = !source ()
let ns_to_ms ns = Int64.to_float ns /. 1e6
