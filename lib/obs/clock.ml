(* Monotonic nanosecond clock with a swappable source.

   Span durations must never go negative, so the default source is the
   OS monotonic clock (CLOCK_MONOTONIC via bechamel's noalloc stub), not
   [Unix.gettimeofday]: wall clock steps backwards when NTP disciplines
   the system time, and a span straddling such a step would report a
   negative duration.  [wall] is kept for callers that want calendar
   time, and tests install a deterministic counter source so span
   timings are reproducible.

   On top of whatever source is installed, [now_ns] enforces a
   non-decreasing watermark (per source installation): even a
   misbehaving source that steps backwards cannot drive time backwards
   through the observability layer.  The watermark is an atomic with a
   CAS max-loop, so it is safe to sample from several domains. *)

type source = unit -> int64

let monotonic : source = Monotonic_clock.now
let wall : source = fun () -> Int64.of_float (Unix.gettimeofday () *. 1e9)
let default : source = monotonic
let source = ref default

(* Highest value handed out since the source was installed. *)
let watermark = Atomic.make Int64.min_int

let set_source s =
  source := s;
  Atomic.set watermark Int64.min_int

let use_default () = set_source default

let rec now_ns () =
  let t = !source () in
  let prev = Atomic.get watermark in
  if Int64.compare t prev <= 0 then prev
  else if Atomic.compare_and_set watermark prev t then t
  else now_ns ()

let ns_to_ms ns = Int64.to_float ns /. 1e6
