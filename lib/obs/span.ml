(* Span-based tracing.

   A span covers one pipeline stage or operator; spans nest by dynamic
   extent ([with_span] inside [with_span]), forming a tree recorded in
   start (pre-) order.  The collector is a pair of globals — the stack
   of open spans and the log of all spans — which is all a
   single-threaded pipeline needs.  When the Control switch is off,
   [with_span] runs the thunk directly.

   Closing a span feeds its duration into the ["span.ms.<name>"]
   histogram, so every traced run gets per-stage duration distributions
   for free. *)

type t = {
  id : int;
  parent : int option;
  depth : int;
  mutable name : string;
  start_ns : int64;
  mutable end_ns : int64;
  mutable attr_rev : Attr.t; (* reverse insertion order *)
  mutable finished : bool;
  (* GC telemetry: the open snapshot lives in these fields until
     [finish] replaces it with the delta over the span, so an extra
     snapshot record per span is never allocated.  Meaningful only once
     [finished]. *)
  mutable gc_minor_words : float;
  mutable gc_major_words : float;
  mutable gc_compactions : int;
}

(* Swappable allocation counter, [Clock.set_source]-style: the default
   reads [Gc.quick_stat] (cheap — no heap walk); tests install a
   deterministic counter so GC deltas are reproducible. *)
let default_gc_source () =
  let s = Gc.quick_stat () in
  (s.Gc.minor_words, s.Gc.major_words, s.Gc.compactions)

let gc_source = ref default_gc_source
let set_gc_source f = gc_source := f
let use_default_gc_source () = gc_source := default_gc_source

let next_id = ref 0
let stack : t list ref = ref [] (* open spans, innermost first *)
let log : t list ref = ref [] (* every span, reverse start order *)

let tracing = Control.is_enabled

let reset () =
  next_id := 0;
  stack := [];
  log := []

let spans () = List.rev !log
let attrs s = List.rev s.attr_rev
let duration_ms s = Clock.ns_to_ms (Int64.sub s.end_ns s.start_ns)

let add key v =
  if Control.is_enabled () then
    match !stack with
    | s :: _ -> s.attr_rev <- (key, v) :: s.attr_rev
    | [] -> ()

let add_list kvs =
  if Control.is_enabled () then
    match !stack with
    | s :: _ -> List.iter (fun kv -> s.attr_rev <- kv :: s.attr_rev) kvs
    | [] -> ()

let set_name name =
  if Control.is_enabled () then
    match !stack with s :: _ -> s.name <- name | [] -> ()

let finish s =
  s.end_ns <- Clock.now_ns ();
  (let minor, major, compactions = !gc_source () in
   s.gc_minor_words <- minor -. s.gc_minor_words;
   s.gc_major_words <- major -. s.gc_major_words;
   s.gc_compactions <- compactions - s.gc_compactions);
  s.finished <- true;
  (match !stack with
  | top :: rest when top == s -> stack := rest
  | _ ->
      (* unbalanced finish (an exception unwound through nested spans
         whose [finally] already ran): drop anything above [s] too *)
      stack := List.filter (fun o -> not (o == s)) !stack);
  Metrics.observe ~bounds:Metrics.duration_bounds ("span.ms." ^ s.name)
    (duration_ms s)

let with_span ?(attrs = []) name f =
  if not (Control.is_enabled ()) then f ()
  else begin
    let parent, depth =
      match !stack with [] -> (None, 0) | p :: _ -> (Some p.id, p.depth + 1)
    in
    incr next_id;
    let minor0, major0, compactions0 = !gc_source () in
    let s =
      {
        id = !next_id;
        parent;
        depth;
        name;
        start_ns = Clock.now_ns ();
        end_ns = 0L;
        attr_rev = List.rev attrs;
        finished = false;
        gc_minor_words = minor0;
        gc_major_words = major0;
        gc_compactions = compactions0;
      }
    in
    stack := s :: !stack;
    log := s :: !log;
    Fun.protect ~finally:(fun () -> finish s) f
  end
