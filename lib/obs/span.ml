(* Span-based tracing.

   A span covers one pipeline stage or operator; spans nest by dynamic
   extent ([with_span] inside [with_span]), forming a tree recorded in
   start (pre-) order.  When the Control switch is off, [with_span] runs
   the thunk directly.

   Domain safety: the stack of open spans is per-domain (DLS), so worker
   domains nest independently, while span ids and the log of all spans
   are shared and guarded by one mutex.  The clock is sampled inside the
   same critical section that appends to the log, so the log stays in
   global start order even when domains race to open spans — the
   parent-before-child and rebased-monotonic invariants the JSONL
   exporter promises survive multi-domain aggregation.  A worker domain
   has an empty stack of its own; [with_context] plants the submitting
   domain's innermost span as the parenting base, so a task's spans
   land under the span that spawned it (Domain_pool does this on every
   submitted task).

   Closing a span feeds its duration into the ["span.ms.<name>"]
   histogram, so every traced run gets per-stage duration distributions
   for free. *)

type t = {
  id : int;
  parent : int option;
  depth : int;
  mutable name : string;
  start_ns : int64;
  mutable end_ns : int64;
  mutable attr_rev : Attr.t; (* reverse insertion order *)
  mutable finished : bool;
  (* GC telemetry: the open snapshot lives in these fields until
     [finish] replaces it with the delta over the span, so an extra
     snapshot record per span is never allocated.  Meaningful only once
     [finished].  [Gc.quick_stat] counters are domain-local in OCaml 5,
     and a span is opened and closed on one domain, so the delta is the
     allocation of that domain's extent — exactly what we want. *)
  mutable gc_minor_words : float;
  mutable gc_major_words : float;
  mutable gc_compactions : int;
}

(* Swappable allocation counter, [Clock.set_source]-style: the default
   reads [Gc.quick_stat] (cheap — no heap walk); tests install a
   deterministic counter so GC deltas are reproducible. *)
let default_gc_source () =
  let s = Gc.quick_stat () in
  (s.Gc.minor_words, s.Gc.major_words, s.Gc.compactions)

let gc_source = ref default_gc_source
let set_gc_source f = gc_source := f
let use_default_gc_source () = gc_source := default_gc_source

(* Shared collector state: id counter and log, one mutex. *)
let log_mutex = Mutex.create ()
let next_id = ref 0
let log : t list ref = ref [] (* every span, reverse start order *)

(* Per-domain state: the stack of open spans, the parenting base a pool
   installs around a task ([with_context]), the request-scoped base
   attributes stamped onto every span and event ([with_base_attrs] — the
   server puts the trace id here), and the head-sampling flag
   ([with_sampling] — a sampled-out request records no spans at all). *)
let stack_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let base_key : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let base_attrs_key : Attr.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let sampled_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref true)

let stack () = Domain.DLS.get stack_key
let base () = Domain.DLS.get base_key
let base_attrs () = !(Domain.DLS.get base_attrs_key)
let sampled () = !(Domain.DLS.get sampled_key)

let with_base_attrs attrs f =
  let r = Domain.DLS.get base_attrs_key in
  let saved = !r in
  r := saved @ attrs;
  Fun.protect ~finally:(fun () -> r := saved) f

let with_sampling b f =
  let r = Domain.DLS.get sampled_key in
  let saved = !r in
  r := b;
  Fun.protect ~finally:(fun () -> r := saved) f

(* A context carries everything a worker domain must inherit to keep a
   request's telemetry coherent across the submit boundary: the adopting
   span (id, depth), the request's base attributes (trace id), and its
   sampling decision. *)
type context = {
  c_parent : (int * int) option;
  c_attrs : Attr.t;
  c_sampled : bool;
}

let context () =
  let parent =
    match !(stack ()) with
    | s :: _ -> Some (s.id, s.depth)
    | [] -> !(base ())
  in
  { c_parent = parent; c_attrs = base_attrs (); c_sampled = sampled () }

let with_context ctx f =
  let b = base () in
  let a = Domain.DLS.get base_attrs_key in
  let sm = Domain.DLS.get sampled_key in
  let saved_b = !b and saved_a = !a and saved_s = !sm in
  b := ctx.c_parent;
  a := ctx.c_attrs;
  sm := ctx.c_sampled;
  Fun.protect
    ~finally:(fun () ->
      b := saved_b;
      a := saved_a;
      sm := saved_s)
    f

let tracing = Control.is_enabled

let reset () =
  Mutex.protect log_mutex (fun () ->
      next_id := 0;
      log := []);
  stack () := [];
  base () := None;
  Domain.DLS.get base_attrs_key := [];
  Domain.DLS.get sampled_key := true

let spans () = List.rev (Mutex.protect log_mutex (fun () -> !log))

(* Drop recorded spans matching [pred] from the log.  The server prunes
   each request's spans once their profile has been extracted, so a
   long-running process does not accumulate one span tree per request
   forever.  Open spans are never pruned: their [finish] still has to
   run, and dropping them would break the parent-before-child reading
   order for their children. *)
let prune pred =
  Mutex.protect log_mutex (fun () ->
      log := List.filter (fun s -> not (s.finished && pred s)) !log)

let find_attr s key = List.assoc_opt key (List.rev s.attr_rev)
let attrs s = List.rev s.attr_rev
let duration_ms s = Clock.ns_to_ms (Int64.sub s.end_ns s.start_ns)

let add key v =
  if Control.is_enabled () then
    match !(stack ()) with
    | s :: _ -> s.attr_rev <- (key, v) :: s.attr_rev
    | [] -> ()

let add_list kvs =
  if Control.is_enabled () then
    match !(stack ()) with
    | s :: _ -> List.iter (fun kv -> s.attr_rev <- kv :: s.attr_rev) kvs
    | [] -> ()

let set_name name =
  if Control.is_enabled () then
    match !(stack ()) with s :: _ -> s.name <- name | [] -> ()

let finish s =
  s.end_ns <- Clock.now_ns ();
  (let minor, major, compactions = !gc_source () in
   s.gc_minor_words <- minor -. s.gc_minor_words;
   s.gc_major_words <- major -. s.gc_major_words;
   s.gc_compactions <- compactions - s.gc_compactions);
  s.finished <- true;
  (let st = stack () in
   match !st with
   | top :: rest when top == s -> st := rest
   | _ ->
       (* unbalanced finish (an exception unwound through nested spans
          whose [finally] already ran): drop anything above [s] too *)
       st := List.filter (fun o -> not (o == s)) !st);
  Metrics.observe ~bounds:Metrics.duration_bounds ("span.ms." ^ s.name)
    (duration_ms s)

let with_span ?(attrs = []) name f =
  if not (Control.is_enabled () && sampled ()) then f ()
  else begin
    let st = stack () in
    let parent, depth =
      match !st with
      | p :: _ -> (Some p.id, p.depth + 1)
      | [] -> (
          match !(base ()) with
          | Some (id, d) -> (Some id, d + 1)
          | None -> (None, 0))
    in
    let minor0, major0, compactions0 = !gc_source () in
    let s =
      Mutex.protect log_mutex (fun () ->
          incr next_id;
          let s =
            {
              id = !next_id;
              parent;
              depth;
              name;
              start_ns = Clock.now_ns ();
              end_ns = 0L;
              attr_rev = List.rev_append attrs (List.rev (base_attrs ()));
              finished = false;
              gc_minor_words = minor0;
              gc_major_words = major0;
              gc_compactions = compactions0;
            }
          in
          log := s :: !log;
          s)
    in
    st := s :: !st;
    Fun.protect ~finally:(fun () -> finish s) f
  end
