(** The metrics registry: named counters, gauges and fixed-bucket
    histograms, looked up by name at the instrumentation site.  All
    writes are gated on {!Control}; with observability off a metric call
    is a single boolean test. *)

type histogram = {
  bounds : float array;  (** strictly increasing inclusive upper edges *)
  counts : int array;  (** [Array.length bounds + 1] cells, overflow last *)
  mutable sum : float;
  mutable n : int;
}

val default_bounds : float array
(** Powers of four from 1 to ~4M — wide enough for work units, rows and
    bytes without per-metric tuning. *)

val duration_bounds : float array
(** Millisecond durations: 1µs to ~1min in powers of four. *)

val exponential : start:float -> factor:float -> count:int -> float array

val incr : ?by:int -> string -> unit
val set_gauge : string -> float -> unit

val observe : ?bounds:float array -> string -> float -> unit
(** Records [x] into the histogram named [name], creating it with
    [bounds] (default {!default_bounds}) on first use. *)

val reset : unit -> unit

type snapshot = SCounter of int | SGauge of float | SHistogram of histogram

val snapshot : unit -> (string * snapshot) list
(** All metrics, sorted by name.  Histogram arrays are copies. *)

val counter_value : string -> int option
val histogram_snapshot : string -> histogram option
