(** The metrics registry: named counters, gauges and fixed-bucket
    histograms, looked up by name at the instrumentation site.  All
    writes are gated on {!Control}; with observability off a metric call
    is a single boolean test. *)

type histogram = {
  bounds : float array;  (** strictly increasing inclusive upper edges *)
  counts : int array;  (** [Array.length bounds + 1] cells, overflow last *)
  mutable sum : float;
  mutable n : int;
}

val default_bounds : float array
(** Powers of four from 1 to ~4M — wide enough for work units, rows and
    bytes without per-metric tuning. *)

val duration_bounds : float array
(** Millisecond durations: 1µs to ~1min in powers of four. *)

val exponential : start:float -> factor:float -> count:int -> float array

val bucket_index : float array -> float -> int
(** Smallest [i] with [x <= bounds.(i)], or [Array.length bounds] for
    the overflow bucket.  Binary search over the (strictly increasing)
    edges — this is the per-observation hot path. *)

val incr : ?by:int -> string -> unit
val set_gauge : string -> float -> unit

val observe : ?bounds:float array -> string -> float -> unit
(** Records [x] into the histogram named [name], creating it with
    [bounds] (default {!default_bounds}) on first use. *)

val reset : unit -> unit

type snapshot = SCounter of int | SGauge of float | SHistogram of histogram

val snapshot : unit -> (string * snapshot) list
(** All metrics, sorted by name.  Histogram arrays are copies. *)

val counter_value : string -> int option
val histogram_snapshot : string -> histogram option

val percentile : histogram -> float -> float option
(** Estimated [q]-quantile ([q] clamped to [0,1]) by log-linear
    interpolation inside the bucket holding the [q*n]-th observation
    (linear from zero in the first bucket).  A percentile landing in the
    overflow bucket reports the last bound — a conservative lower bound.
    [None] when the histogram is empty or has no bounds. *)

val p50_90_99 : histogram -> (float * float * float) option
(** The three percentiles every report column wants, in one call. *)
