(* Prometheus-style text exposition: the wire format of the server's
   telemetry endpoint.

   A sample is one (name, labels, value) triple; [render] prints the
   classic exposition text — `# TYPE` comments, `name{k="v"} value`
   lines — and [parse] reads it back, so the monitor CLI and the smoke
   validator consume exactly what the server produces.  [of_metrics]
   flattens the live registry: counters become `<name>_total`, gauges
   stay gauges, and histograms become summary triples (p50/p90/p99
   quantile samples plus `_sum`/`_count`).

   The whole registry is read through one [Metrics.snapshot] call, which
   copies every histogram under the registry mutex — the exposition can
   never see a torn half-updated histogram even while worker domains
   keep observing into it. *)

type kind = Counter | Gauge | Summary

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Summary -> "summary"

type sample = {
  s_name : string;
  s_kind : kind;
  s_labels : (string * string) list;
  s_value : float;
}

let sample ?(labels = []) kind name value =
  { s_name = name; s_kind = kind; s_labels = labels; s_value = value }

(* Metric names: [a-zA-Z0-9_:], everything else folds to '_'.  The
   registry uses dotted names (server.cache.plan.hit); the exposition
   speaks underscores. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Values print as integers when they are integers (counter readability)
   and with enough digits to round-trip otherwise. *)
let value_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let key_of s =
  match s.s_labels with
  | [] -> s.s_name
  | labels ->
      Printf.sprintf "%s{%s}" s.s_name
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
              labels))

let render samples =
  let buf = Buffer.create 4096 in
  let last_typed = ref "" in
  List.iter
    (fun s ->
      (* one TYPE comment per family; quantile/sum/count samples of a
         summary share the family name *)
      let family =
        match s.s_kind with
        | Summary ->
            let n = s.s_name in
            if Filename.check_suffix n "_sum" then Filename.chop_suffix n "_sum"
            else if Filename.check_suffix n "_count" then
              Filename.chop_suffix n "_count"
            else n
        | _ -> s.s_name
      in
      if family <> !last_typed then begin
        Printf.bprintf buf "# TYPE %s %s\n" family (kind_name s.s_kind);
        last_typed := family
      end;
      Printf.bprintf buf "%s %s\n" (key_of s) (value_to_string s.s_value))
    samples;
  Buffer.contents buf

let of_metrics ?(prefix = "silkroute_") () =
  List.concat_map
    (fun (name, snap) ->
      let base = prefix ^ sanitize name in
      match snap with
      | Metrics.SCounter n ->
          [ sample Counter (base ^ "_total") (float_of_int n) ]
      | Metrics.SGauge v -> [ sample Gauge base v ]
      | Metrics.SHistogram h ->
          let quantiles =
            match Metrics.p50_90_99 h with
            | None -> []
            | Some (p50, p90, p99) ->
                List.map
                  (fun (q, v) ->
                    sample ~labels:[ ("quantile", q) ] Summary base v)
                  [ ("0.5", p50); ("0.9", p90); ("0.99", p99) ]
          in
          quantiles
          @ [
              sample Summary (base ^ "_sum") h.Metrics.sum;
              sample Summary (base ^ "_count") (float_of_int h.Metrics.n);
            ])
    (Metrics.snapshot ())

(* --- parsing (monitor CLI, smoke validator) ----------------------------- *)

exception Parse_error of string

type parsed = {
  values : (string * float) list;  (** keyed by [key_of]'s exact syntax *)
  types : (string * string) list;  (** family name -> kind string *)
}

let parse text =
  let values = ref [] and types = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: family :: kind :: [] ->
            if
              kind <> "counter" && kind <> "gauge" && kind <> "summary"
              && kind <> "histogram" && kind <> "untyped"
            then
              raise
                (Parse_error
                   (Printf.sprintf "line %d: unknown TYPE %s" lineno kind));
            types := (family, kind) :: !types
        | _ -> () (* other comments are legal and ignored *)
      end
      else
        match String.rindex_opt line ' ' with
        | None ->
            raise
              (Parse_error
                 (Printf.sprintf "line %d: no value separator in %S" lineno line))
        | Some sp -> (
            let key = String.sub line 0 sp in
            let v = String.sub line (sp + 1) (String.length line - sp - 1) in
            if key = "" then
              raise
                (Parse_error (Printf.sprintf "line %d: empty metric key" lineno));
            match float_of_string_opt v with
            | None ->
                raise
                  (Parse_error
                     (Printf.sprintf "line %d: bad sample value %S" lineno v))
            | Some f -> values := (key, f) :: !values))
    lines;
  { values = List.rev !values; types = List.rev !types }

let find parsed key = List.assoc_opt key parsed.values
