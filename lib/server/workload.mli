(** Deterministic multi-client workload driver.

    Builds a seeded pseudo-random request script per client — a mix of
    views, partition strategies, reduce flags and periodic invalidations
    — and replays it against a server, either in-process (direct
    {!Service.handle} calls) or over the wire protocol on a Unix-domain
    socket.  The script depends only on [(seed, clients,
    requests_per_client, strategies, invalidate_every)], so tests and
    the smoke gate can assert exact tallies.

    With verification on, every [Result] reply is compared byte-for-byte
    against a reference materialization produced by the plain middleware
    path ({!Server} never sees it) — this is the end-to-end check that
    cached and uncached responses are identical, since a replay hits
    every tier state (cold, warm, post-invalidation). *)

(** One benchmark view plus its reference output. *)
type view = {
  wv_name : string;
  wv_text : string;  (** RXL source sent in [Query] requests *)
  wv_expected : string option;
      (** reference XML from the direct middleware path *)
}

val standard_views : ?verify:bool -> Relational.Database.t -> view list
(** The paper's Query 1 / Query 2 / boxed-fragment views.  [verify]
    (default true) executes each once through the plain middleware
    pipeline to fill [wv_expected]. *)

type config = {
  clients : int;
  requests_per_client : int;
  seed : int;
  strategies : string list;
      (** drawn uniformly per request; must be valid for every view *)
  invalidate_every : int;
      (** client 0 replaces every Nth query with an epoch-bumping
          [Invalidate]; 0 disables *)
}

val default_config : config
(** 4 clients × 24 requests, seed 42, strategies
    [greedy|unified|partitioned|edges:1|edges:3], invalidate every 10. *)

val script : views:view list -> config -> Protocol.request array array
(** The replayed requests, one array per client — exposed so tests can
    assert determinism. *)

(** Merged outcome of one replay. *)
type tally = {
  queries : int;  (** [Query] requests sent *)
  results : int;  (** [Result] replies *)
  statement_hits : int;
  plan_hits : int;
  result_hits : int;
  rejected : int;
  failed : int;
  infos : int;  (** invalidation acknowledgements *)
  work : int;  (** summed engine work of uncached executions *)
  bytes : int;  (** summed result bytes, cached hits included *)
  mismatches : string list;
      (** byte-identity violations — must be [[]]; each entry names
          client, request index, view and strategy *)
  errors : string list;  (** [Failed] reply messages, deduplicated *)
  lat_samples : int;
      (** measured per-request wall-clock samples — one per [Query]
          round trip, whatever the reply *)
  lat_p50_ms : float;  (** exact nearest-rank percentiles, 0 when empty *)
  lat_p90_ms : float;
  lat_p99_ms : float;
}

val run_direct :
  ?threads:bool -> ?verify:bool -> Service.t -> views:view list -> config -> tally
(** Replays in-process.  [threads] (default false) gives each client its
    own thread — real concurrency through admission and the pool;
    sequential replay interleaves clients round-robin and keeps every
    counter exactly reproducible.  [verify] (default true) checks each
    result against [wv_expected]. *)

val run_socket :
  ?verify:bool -> socket:string -> views:view list -> config -> tally
(** Replays over the wire protocol: one connection + thread per client
    against a server listening on [socket]. *)

val request : socket:string -> Protocol.request -> Protocol.reply option
(** One request over a fresh connection — how the CLI asks a running
    server for its stats report or tells it to shut down.  [None] if the
    server closed the connection without replying. *)

val render : tally -> string
(** Human-readable summary, one [key=value] line group per concern. *)
