(** Weighted LRU cache — the building block of the server's three cache
    tiers (statement, plan, result).

    Capacity is a total-weight budget: entries carry a weight (1 for
    count-bounded tiers, byte size for the result tier's storage budget)
    and the least-recently-used entries are evicted until the budget
    holds again.  An entry heavier than the whole budget is simply not
    admitted.  All operations are thread-safe (one mutex per cache) and
    O(1) apart from eviction, which is O(evicted).

    Every eviction emits a [server.cache.evict] debug event (when
    tracing is on) naming the tier, the key and the freed weight. *)

type 'a t

val create : name:string -> capacity:int -> unit -> 'a t
(** [capacity <= 0] disables the cache: [find] always misses, [add] is
    a no-op.  [name] labels metrics and eviction events. *)

val capacity : 'a t -> int
val name : 'a t -> string

val find : 'a t -> string -> 'a option
(** Bumps the entry to most-recently-used and counts a hit; [None]
    counts a miss. *)

val peek : 'a t -> string -> 'a option
(** Like {!find} but without touching the hit/miss counters — for
    double-checked lookups that already counted their first probe. *)

val add : ?weight:int -> 'a t -> string -> 'a -> unit
(** Inserts (or replaces) the entry as most-recently-used, then evicts
    LRU entries until the total weight fits the budget.  [weight]
    defaults to 1 and must be positive; an entry with
    [weight > capacity] is dropped without disturbing the cache. *)

val remove : 'a t -> string -> unit
val clear : 'a t -> unit
(** Drops every entry and counts one flush (cache-tier invalidation). *)

val length : 'a t -> int
val total_weight : 'a t -> int

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  flushes : int;
  entries : int;
  weight : int;
}

val stats : 'a t -> stats

val ratio_of : hits:int -> misses:int -> float
(** [hits / (hits + misses)], 0 when both are zero — the one hit-ratio
    formula the exposition, [--server-stats] and the tests share. *)

val hit_ratio : 'a t -> float
(** {!ratio_of} over both counters read under the cache mutex, so a
    concurrent lookup cannot skew the ratio between the two reads. *)

val keys_mru : 'a t -> string list
(** Keys from most- to least-recently used (tests, reports). *)
