(* Weighted LRU over a hash table and an intrusive doubly-linked list.

   The list holds key-carrying nodes in recency order behind a circular
   sentinel: sentinel.next is the most-recently-used node, sentinel.prev
   the eviction candidate.  Values live only in the hash table (the
   sentinel would otherwise pin an arbitrary cached value alive for the
   cache's lifetime).  [find] splices the hit node back to the front;
   [add] evicts from the back until the weight budget holds.  A single
   mutex per cache makes every operation atomic with respect to the
   server's session threads and pool domains. *)

type node = {
  key : string;
  weight : int;
  mutable prev : node;
  mutable next : node;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  flushes : int;
  entries : int;
  weight : int;
}

type 'a t = {
  cname : string;
  cap : int;
  tbl : (string, 'a * node) Hashtbl.t;
  sentinel : node;
  mutable total : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable flushes : int;
  m : Mutex.t;
}

let create ~name ~capacity () =
  let rec s = { key = ""; weight = 0; prev = s; next = s } in
  {
    cname = name;
    cap = capacity;
    tbl = Hashtbl.create 64;
    sentinel = s;
    total = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    flushes = 0;
    m = Mutex.create ();
  }

let capacity t = t.cap
let name t = t.cname

let unlink (n : node) =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front (s : node) (n : node) =
  n.next <- s.next;
  n.prev <- s;
  s.next.prev <- n;
  s.next <- n

let find t key =
  Mutex.protect t.m (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some (v, n) ->
          t.hits <- t.hits + 1;
          unlink n;
          push_front t.sentinel n;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let peek t key =
  Mutex.protect t.m (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some (v, n) ->
          unlink n;
          push_front t.sentinel n;
          Some v
      | None -> None)

let remove_node t (n : node) =
  unlink n;
  Hashtbl.remove t.tbl n.key;
  t.total <- t.total - n.weight

let evict_until_fits t =
  let s = t.sentinel in
  while t.total > t.cap && s.prev != s do
    let victim = s.prev in
    remove_node t victim;
    t.evictions <- t.evictions + 1;
    if Obs.Span.tracing () then
      Obs.Event.debug "server.cache.evict"
        ~attrs:
          [
            Obs.Attr.string "tier" t.cname;
            Obs.Attr.string "key" victim.key;
            Obs.Attr.int "weight" victim.weight;
          ]
  done

let add ?(weight = 1) t key value =
  if weight <= 0 then
    invalid_arg
      (Printf.sprintf "Lru.add (%s): weight must be positive, got %d" t.cname
         weight);
  Mutex.protect t.m (fun () ->
      if weight <= t.cap then begin
        (match Hashtbl.find_opt t.tbl key with
        | Some (_, old) -> remove_node t old
        | None -> ());
        let rec n = { key; weight; prev = n; next = n } in
        push_front t.sentinel n;
        Hashtbl.replace t.tbl key (value, n);
        t.total <- t.total + weight;
        t.insertions <- t.insertions + 1;
        evict_until_fits t
      end)

let remove t key =
  Mutex.protect t.m (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some (_, n) -> remove_node t n
      | None -> ())

let clear t =
  Mutex.protect t.m (fun () ->
      Hashtbl.reset t.tbl;
      let s = t.sentinel in
      s.prev <- s;
      s.next <- s;
      t.total <- 0;
      t.flushes <- t.flushes + 1)

let length t = Mutex.protect t.m (fun () -> Hashtbl.length t.tbl)
let total_weight t = Mutex.protect t.m (fun () -> t.total)

(* Derived from one locked read of both counters, so a concurrent find
   cannot skew the ratio between reading hits and reading misses. *)
let ratio_of ~hits ~misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let hit_ratio t =
  Mutex.protect t.m (fun () -> ratio_of ~hits:t.hits ~misses:t.misses)

let stats t =
  Mutex.protect t.m (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        insertions = t.insertions;
        evictions = t.evictions;
        flushes = t.flushes;
        entries = Hashtbl.length t.tbl;
        weight = t.total;
      })

let keys_mru t =
  Mutex.protect t.m (fun () ->
      let s = t.sentinel in
      let rec go acc n = if n == s then List.rev acc else go (n.key :: acc) n.next in
      go [] s.next)
