(** The server's wire protocol: length-prefixed frames over any byte
    channel (the CLI speaks it over a Unix-domain socket).

    A frame is a 4-byte big-endian field count followed by that many
    fields, each a 4-byte big-endian length plus raw bytes.  The first
    field is a one-character tag selecting the message; the rest are
    positional.  Framing is symmetric, so both sides reuse the same
    reader/writer; malformed frames raise {!Protocol_error} rather than
    leaking [End_of_file] or [Failure] from the decoder. *)

exception Protocol_error of string

type request =
  | Query of { view : string; strategy : string; reduce : bool }
      (** Materialize [view] (RXL source text) under [strategy]
          (unified | partitioned | greedy | edges:MASK). *)
  | Invalidate of { table : string; factor : float }
      (** Bump the server's stats epoch, flushing the plan and result
          caches.  A non-empty [table] additionally skews that table's
          catalog entry by [factor] first ([--skew-stats]-style). *)
  | Stats  (** Ask for the server's counter report. *)
  | Metrics
      (** Ask for the live telemetry exposition (Prometheus-style text:
          registry metrics, cache tiers, admission, pool depth, SLO).
          Tag [M]; carries no fields — extra fields are a
          {!Protocol_error}. *)
  | Health
      (** Ask for a cheap liveness summary (status, uptime, epoch,
          queue depth).  Tag [H]; carries no fields. *)
  | Shutdown  (** Stop the server after replying. *)

(** Which cache tiers served (part of) a query. *)
type tiers = { statement_hit : bool; plan_hit : bool; result_hit : bool }

type reply =
  | Result of { xml : string; tiers : tiers; work : int; est_cost : float }
      (** [work] is the engine work actually spent on this request —
          0 on a result-cache hit.  [est_cost] is the admission
          estimate. *)
  | Info of string
      (** Stats report, telemetry exposition, health summary or
          shutdown acknowledgement. *)
  | Rejected of string  (** Admission control refused the query. *)
  | Failed of string  (** Execution raised; the message names the error. *)

val write_request : out_channel -> request -> unit
(** Writes and flushes one frame. *)

val read_request : in_channel -> request option
(** [None] on a clean EOF at a frame boundary. *)

val write_reply : out_channel -> reply -> unit
val read_reply : in_channel -> reply option

val request_name : request -> string
val reply_name : reply -> string
