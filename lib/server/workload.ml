module R = Relational
module S = Silkroute

type view = { wv_name : string; wv_text : string; wv_expected : string option }

(* Reference output via the plain middleware path: unified partition, no
   reduction — any plan of the lattice must produce these exact bytes,
   so one reference per view checks every strategy the script draws. *)
let reference db text =
  let p = S.Middleware.prepare_text db text in
  let partition = S.Middleware.partition_of p S.Middleware.Unified in
  let e = S.Middleware.execute p partition in
  S.Middleware.xml_string_of p e

let standard_views ?(verify = true) db =
  List.map
    (fun (wv_name, wv_text) ->
      {
        wv_name;
        wv_text;
        wv_expected = (if verify then Some (reference db wv_text) else None);
      })
    [
      ("query1", S.Queries.query1_text);
      ("query2", S.Queries.query2_text);
      ("fragment", S.Queries.fragment_text);
    ]

type config = {
  clients : int;
  requests_per_client : int;
  seed : int;
  strategies : string list;
  invalidate_every : int;
}

let default_config =
  {
    clients = 4;
    requests_per_client = 24;
    seed = 42;
    strategies = [ "greedy"; "unified"; "partitioned"; "edges:1"; "edges:3" ];
    invalidate_every = 10;
  }

let script ~views cfg =
  if views = [] then invalid_arg "Workload.script: no views";
  if cfg.strategies = [] then invalid_arg "Workload.script: no strategies";
  let views = Array.of_list views in
  let strategies = Array.of_list cfg.strategies in
  Array.init cfg.clients (fun client ->
      let st = Random.State.make [| cfg.seed; client |] in
      Array.init cfg.requests_per_client (fun i ->
          if
            cfg.invalidate_every > 0 && client = 0 && i > 0
            && i mod cfg.invalidate_every = 0
          then Protocol.Invalidate { table = ""; factor = 1.0 }
          else
            let v = views.(Random.State.int st (Array.length views)) in
            let s = strategies.(Random.State.int st (Array.length strategies)) in
            Protocol.Query
              { view = v.wv_text; strategy = s; reduce = Random.State.bool st }))

type tally = {
  queries : int;
  results : int;
  statement_hits : int;
  plan_hits : int;
  result_hits : int;
  rejected : int;
  failed : int;
  infos : int;
  work : int;
  bytes : int;
  mismatches : string list;
  errors : string list;
  lat_samples : int;
  lat_p50_ms : float;
  lat_p90_ms : float;
  lat_p99_ms : float;
}

let empty_tally =
  {
    queries = 0;
    results = 0;
    statement_hits = 0;
    plan_hits = 0;
    result_hits = 0;
    rejected = 0;
    failed = 0;
    infos = 0;
    work = 0;
    bytes = 0;
    mismatches = [];
    errors = [];
    lat_samples = 0;
    lat_p50_ms = 0.0;
    lat_p90_ms = 0.0;
    lat_p99_ms = 0.0;
  }

(* Exact nearest-rank percentile over the measured samples — the
   workload holds every latency, so no histogram approximation is
   needed (unlike the registry's bucketed estimates). *)
let percentile_of_sorted a q =
  let n = Array.length a in
  if n = 0 then 0.0
  else
    let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    a.(max 0 (min (n - 1) i))

(* The transport-agnostic replay core: scripts plus a thread-safe
   recorder.  Transports drive iteration themselves (sequential
   round-robin or one thread per client) and feed every (request, reply)
   pair through [record]. *)
let recorder ~views ~verify cfg =
  let expected = Hashtbl.create 8 in
  if verify then
    List.iter
      (fun v ->
        match v.wv_expected with
        | Some xml -> Hashtbl.replace expected v.wv_text (v.wv_name, xml)
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Workload: verification requested but view %s has no \
                  reference output"
                 v.wv_name))
      views;
  let m = Mutex.create () in
  let t = ref empty_tally in
  let lats = ref [] in
  let bump f = Mutex.protect m (fun () -> t := f !t) in
  let record client i req ~ms reply =
    (* measured wall-clock per request: every [Query] round trip counts,
       whatever the reply — rejections and failures take real time too *)
    (match req with
    | Protocol.Query _ -> Mutex.protect m (fun () -> lats := ms :: !lats)
    | _ -> ());
    match (req, reply) with
    | ( Protocol.Query { view; strategy; _ },
        Protocol.Result { xml = got; tiers; work; _ } ) ->
        let mismatch =
          if not verify then None
          else
            match Hashtbl.find_opt expected view with
            | Some (_, xml) when String.equal xml got -> None
            | Some (name, _) ->
                Some
                  (Printf.sprintf
                     "client %d request %d: view %s under %s returned %d \
                      bytes that differ from the reference"
                     client i name strategy (String.length got))
            | None ->
                Some
                  (Printf.sprintf
                     "client %d request %d: reply for an unknown view" client i)
        in
        bump (fun t ->
            {
              t with
              queries = t.queries + 1;
              results = t.results + 1;
              statement_hits =
                (t.statement_hits + if tiers.Protocol.statement_hit then 1 else 0);
              plan_hits = (t.plan_hits + if tiers.Protocol.plan_hit then 1 else 0);
              result_hits =
                (t.result_hits + if tiers.Protocol.result_hit then 1 else 0);
              work = t.work + work;
              bytes = t.bytes + String.length got;
              mismatches =
                (match mismatch with
                | Some msg -> msg :: t.mismatches
                | None -> t.mismatches);
            })
    | Protocol.Query _, Protocol.Rejected _ ->
        bump (fun t ->
            { t with queries = t.queries + 1; rejected = t.rejected + 1 })
    | _, Protocol.Info _ -> bump (fun t -> { t with infos = t.infos + 1 })
    | _, Protocol.Rejected _ ->
        bump (fun t -> { t with rejected = t.rejected + 1 })
    | req, Protocol.Failed msg ->
        let queries =
          match req with Protocol.Query _ -> 1 | _ -> 0
        in
        bump (fun t ->
            {
              t with
              queries = t.queries + queries;
              failed = t.failed + 1;
              errors =
                (if List.mem msg t.errors then t.errors else msg :: t.errors);
            })
    | _, Protocol.Result _ ->
        bump (fun t ->
            {
              t with
              failed = t.failed + 1;
              errors = "result reply to a non-query request" :: t.errors;
            })
  in
  let finish () =
    let t, lats = Mutex.protect m (fun () -> (!t, !lats)) in
    let sorted = Array.of_list lats in
    Array.sort compare sorted;
    {
      t with
      mismatches = List.rev t.mismatches;
      errors = List.rev t.errors;
      lat_samples = Array.length sorted;
      lat_p50_ms = percentile_of_sorted sorted 0.50;
      lat_p90_ms = percentile_of_sorted sorted 0.90;
      lat_p99_ms = percentile_of_sorted sorted 0.99;
    }
  in
  (script ~views cfg, record, finish)

let run_client scripts record client send =
  Array.iteri
    (fun i req ->
      let t0 = Obs.Clock.now_ns () in
      let reply = send req in
      let ms = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) t0) in
      record client i req ~ms reply)
    scripts.(client)

let run_direct ?(threads = false) ?(verify = true) server ~views cfg =
  let scripts, record, finish = recorder ~views ~verify cfg in
  let send req = Service.handle server req in
  if threads then begin
    let ts =
      List.init (Array.length scripts) (fun c ->
          Thread.create (fun () -> run_client scripts record c send) ())
    in
    List.iter Thread.join ts
  end
  else begin
    (* round-robin interleave: client 0 request 0, client 1 request 0, …
       — deterministic, and still exercises cross-client cache reuse *)
    let longest =
      Array.fold_left (fun acc ops -> max acc (Array.length ops)) 0 scripts
    in
    for i = 0 to longest - 1 do
      Array.iteri
        (fun c ops ->
          if i < Array.length ops then begin
            let t0 = Obs.Clock.now_ns () in
            let reply = send ops.(i) in
            let ms = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) t0) in
            record c i ops.(i) ~ms reply
          end)
        scripts
    done
  end;
  finish ()

let request ~socket req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Protocol.write_request oc req;
      Protocol.read_reply ic)

let run_socket ?(verify = true) ~socket ~views cfg =
  let scripts, record, finish = recorder ~views ~verify cfg in
  let client c () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX socket);
        let send req =
          Protocol.write_request oc req;
          match Protocol.read_reply ic with
          | Some reply -> reply
          | None -> Protocol.Failed "server closed the connection"
        in
        run_client scripts record c send)
  in
  let ts = List.init (Array.length scripts) (fun c -> Thread.create (client c) ()) in
  List.iter Thread.join ts;
  finish ()

let render t =
  String.concat "\n"
    [
      Printf.sprintf
        "workload: queries=%d results=%d rejected=%d failed=%d infos=%d"
        t.queries t.results t.rejected t.failed t.infos;
      Printf.sprintf "hits: statement=%d plan=%d result=%d" t.statement_hits
        t.plan_hits t.result_hits;
      Printf.sprintf "volume: work=%d bytes=%d" t.work t.bytes;
      Printf.sprintf "latency: samples=%d p50=%.2fms p90=%.2fms p99=%.2fms"
        t.lat_samples t.lat_p50_ms t.lat_p90_ms t.lat_p99_ms;
      Printf.sprintf "identity: mismatches=%d%s" (List.length t.mismatches)
        (match t.mismatches with [] -> "" | m :: _ -> " first=" ^ m);
      (match t.errors with
      | [] -> "errors: none"
      | es -> "errors: " ^ String.concat "; " es);
    ]
