(* Bounded non-blocking JSONL writer — the slow-query log's disk path.

   The request path must never block on disk: [write] appends the
   record to a bounded in-memory queue under a mutex and returns
   immediately; a dedicated writer thread drains the queue to the file
   and flushes after each batch, so records hit disk in order.  When the
   queue is full the record is dropped and counted — shedding telemetry
   beats stalling queries, and the drop counter makes the loss visible
   in the exposition. *)

type t = {
  path : string;
  capacity : int;
  q : Obs.Json.t Queue.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable closed : bool;
  mutable written : int;
  mutable dropped : int;
  mutable writer : Thread.t option;
}

let writer_loop t oc () =
  let rec loop () =
    let batch, stop =
      Mutex.protect t.m (fun () ->
          while Queue.is_empty t.q && not t.closed do
            Condition.wait t.cv t.m
          done;
          (* drain everything queued in one critical section *)
          let out = ref [] in
          while not (Queue.is_empty t.q) do
            out := Queue.pop t.q :: !out
          done;
          (List.rev !out, t.closed))
    in
    List.iter
      (fun record ->
        output_string oc (Obs.Json.to_string record);
        output_char oc '\n')
      batch;
    if batch <> [] then flush oc;
    if not stop then loop ()
  in
  loop ();
  close_out_noerr oc

let create ?(capacity = 256) ~path () =
  if capacity < 1 then invalid_arg "Slowlog.create: capacity must be >= 1";
  let t =
    {
      path;
      capacity;
      q = Queue.create ();
      m = Mutex.create ();
      cv = Condition.create ();
      closed = false;
      written = 0;
      dropped = 0;
      writer = None;
    }
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  t.writer <- Some (Thread.create (writer_loop t oc) ());
  t

let path t = t.path

let write t record =
  let accepted =
    Mutex.protect t.m (fun () ->
        if t.closed || Queue.length t.q >= t.capacity then begin
          t.dropped <- t.dropped + 1;
          false
        end
        else begin
          Queue.push record t.q;
          t.written <- t.written + 1;
          true
        end)
  in
  if accepted then Condition.signal t.cv;
  accepted

let written t = Mutex.protect t.m (fun () -> t.written)
let dropped t = Mutex.protect t.m (fun () -> t.dropped)

let close t =
  let was_closed =
    Mutex.protect t.m (fun () ->
        let was = t.closed in
        t.closed <- true;
        was)
  in
  if not was_closed then begin
    Condition.broadcast t.cv;
    match t.writer with Some th -> Thread.join th | None -> ()
  end
