(** Bounded non-blocking JSONL writer for the server's slow-query log.

    A dedicated writer thread drains a bounded in-memory queue to the
    log file, so {!write} never blocks the request path on disk I/O.
    When the queue is full the record is dropped and counted rather
    than stalling the caller; {!dropped} exposes the loss for the
    telemetry exposition. *)

type t

val create : ?capacity:int -> path:string -> unit -> t
(** Opens (append mode, creating if needed) and starts the writer
    thread.  [capacity] bounds the in-memory queue (default 256
    records); it must be at least 1. *)

val path : t -> string

val write : t -> Obs.Json.t -> bool
(** Enqueues one record to be written as a single JSON line.  Returns
    [false] — and counts a drop — if the queue is full or the log is
    closed.  Never blocks on disk. *)

val written : t -> int
(** Records accepted into the queue since {!create}. *)

val dropped : t -> int
(** Records lost to a full queue (or a closed log). *)

val close : t -> unit
(** Marks the log closed, waits for the writer thread to drain the
    queue, and closes the file.  Idempotent; subsequent {!write}s are
    counted as drops. *)
