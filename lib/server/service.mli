(** The long-running query service (ROADMAP "query server + caching
    middleware"): a session scheduler over {!Relational.Domain_pool}
    with admission control and three cache tiers in front of execution.

    {b Tiers}, checked in order for every query:
    - {e statement cache} — RXL source text → prepared view tree
      (parse + label work), keyed by the source text itself;
    - {e plan cache} — (view, strategy/partition mask, stats epoch) →
      chosen partition, the greedy planner's costed lattice result and
      the admission cost estimate;
    - {e result cache} — (view, partition mask, stats epoch) → the
      serialized XML document, under a byte-weight storage budget
      (materialized-view selection under a storage budget, Mahboubi et
      al.).

    Plan and result entries embed the {e stats epoch} in their key:
    {!invalidate} bumps the epoch (optionally skewing one table's
    catalog entry first, [--skew-stats]-style), flushing both tiers in
    O(1) while the statement tier — which does not depend on statistics
    — survives.

    {b Admission control}: each query's estimated engine work (the cost
    oracle summed over the plan's sub-queries) is charged against a
    budget of in-flight work.  A query that can never fit is rejected
    outright; one that does not fit {e now} waits in a bounded queue and
    is rejected when the queue is full.  Result-cache hits bypass
    admission entirely — that is the point of the cache.

    {b Telemetry}: every query gets a trace id installed as a span base
    attribute, so all spans and events it produces — including those
    from pool worker domains — carry it.  [trace_sample] head-samples
    which requests record spans; metrics, events, SLO accounting and the
    slow-query log are never sampled.  Queries slower than [slow_ms]
    append a structured JSONL record through the bounded non-blocking
    {!Slowlog}.  The [M]/[H] protocol requests serve the Prometheus-style
    exposition ({!render_exposition}) and a one-line health summary.

    Cached and uncached paths return byte-identical XML: the result tier
    stores exactly the bytes the uncached path produced. *)

type config = {
  domains : int;  (** worker-domain pool size; 1 executes inline *)
  statement_capacity : int;  (** entries *)
  plan_capacity : int;  (** entries *)
  result_capacity : int;  (** bytes of serialized XML *)
  admission_budget : int;
      (** max estimated work units in flight; 0 = unlimited *)
  max_queue : int;  (** waiting admissions beyond which queries are rejected *)
  batch_size : int;
      (** executor vector size for every served query; 0 = tuple path.
          Output bytes are identical either way, so cache entries are
          valid across the switch. *)
  trace_sample : int;
      (** head sampling: record spans for 1 in N queries.  [1] traces
          every request (the default), [0] none; sampled-out requests
          still produce metrics, events and SLO samples. *)
  slow_ms : float;
      (** queries slower than this log a slow-query record and count in
          [counters.slow]; [0] disables the slow path entirely. *)
  slow_log : string option;
      (** JSONL file receiving slow-query records (requires
          [slow_ms > 0]); [None] keeps the counter and event only. *)
  slo : Obs.Slo.config option;  (** enable rolling SLO accounting *)
  retain_spans : bool;
      (** keep each request's spans in the shared log after serving it.
          The long-running server sets this [false] so the span log
          stays bounded; tests keep the default [true] to inspect spans
          after the fact. *)
}

val default_config : config
(** Telemetry defaults preserve the pre-telemetry behavior:
    [trace_sample = 1], [slow_ms = 0.], no slow log, no SLO,
    [retain_spans = true]. *)

(** What admission control decided for one query. *)
type admission = Admit | Queue | Reject of string

val admission_decision :
  config -> est_cost:float -> in_flight:float -> waiting:int -> admission
(** The pure decision function ({!submit} applies it under the
    admission lock): reject when [est_cost] exceeds the whole budget or
    the queue is full, queue while the budget is occupied, admit
    otherwise.  Exposed for tests. *)

type t

val create : ?config:config -> Relational.Database.t -> t
(** Analyzes the database once (the shared catalog all estimates and
    epochs refer to), starts the worker pool, and — when configured —
    opens the slow log and the SLO tracker. *)

val config : t -> config
val stats_epoch : t -> int

val query :
  t -> view:string -> strategy:string -> reduce:bool -> Protocol.reply
(** Runs one query through the tiers + admission + pool, wrapped in its
    trace context (see the module docs).  Thread-safe; blocks while
    queued.  [strategy] is [unified], [partitioned],
    [fully-partitioned], [greedy] or [edges:MASK]. *)

val invalidate : ?skew:string * float -> t -> unit
(** Bumps the stats epoch and flushes the plan and result tiers.
    [skew = (table, factor)] first scales that table's catalog entry in
    place, modeling a catalog change that makes cached plans stale. *)

val handle : t -> Protocol.request -> Protocol.reply
(** Full protocol dispatcher: {!query} / {!invalidate} / stats report /
    telemetry exposition / health summary / shutdown acknowledgement. *)

(** Scheduler counters (cache-tier counters live in {!tier_stats}). *)
type counters = {
  requests : int;  (** protocol requests handled *)
  queries : int;
  admitted : int;
  queued : int;  (** admitted queries that had to wait *)
  rejected : int;
  failed : int;
  invalidations : int;
  executed_work : int;  (** engine work spent on uncached executions *)
  slow : int;  (** queries that exceeded [slow_ms] *)
}

val counters : t -> counters

val tier_stats : t -> Lru.stats * Lru.stats * Lru.stats
(** (statement, plan, result). *)

val slowlog : t -> Slowlog.t option
val slo : t -> Obs.Slo.t option
val uptime_s : t -> float

val render_stats : t -> string
(** Human-readable counter report (also served over the protocol). *)

val render_exposition : t -> string
(** The Prometheus-style text exposition the [M] protocol request
    serves: service counters, per-tier cache series (hit ratios from the
    same snapshot as the counters), admission/pool gauges, slow-log and
    SLO series, then the whole metrics registry through one consistent
    {!Obs.Metrics.snapshot}. *)

val render_health : t -> string
(** One-line liveness summary the [H] protocol request serves. *)

val shutdown : t -> unit
(** Drains the worker pool and closes the slow log; later queries fail.
    Idempotent. *)

val serve_unix : ?session_threads:bool -> t -> socket:string -> unit
(** Binds a Unix-domain socket at [socket] and serves sessions until a
    [Shutdown] request arrives; each accepted connection gets its own
    session thread (unless [session_threads] is false, for tests).
    Removes the socket file on exit and calls {!shutdown}. *)
