(** The long-running query service (ROADMAP "query server + caching
    middleware"): a session scheduler over {!Relational.Domain_pool}
    with admission control and three cache tiers in front of execution.

    {b Tiers}, checked in order for every query:
    - {e statement cache} — RXL source text → prepared view tree
      (parse + label work), keyed by the source text itself;
    - {e plan cache} — (view, strategy/partition mask, stats epoch) →
      chosen partition, the greedy planner's costed lattice result and
      the admission cost estimate;
    - {e result cache} — (view, partition mask, stats epoch) → the
      serialized XML document, under a byte-weight storage budget
      (materialized-view selection under a storage budget, Mahboubi et
      al.).

    Plan and result entries embed the {e stats epoch} in their key:
    {!invalidate} bumps the epoch (optionally skewing one table's
    catalog entry first, [--skew-stats]-style), flushing both tiers in
    O(1) while the statement tier — which does not depend on statistics
    — survives.

    {b Admission control}: each query's estimated engine work (the cost
    oracle summed over the plan's sub-queries) is charged against a
    budget of in-flight work.  A query that can never fit is rejected
    outright; one that does not fit {e now} waits in a bounded queue and
    is rejected when the queue is full.  Result-cache hits bypass
    admission entirely — that is the point of the cache.

    Cached and uncached paths return byte-identical XML: the result tier
    stores exactly the bytes the uncached path produced. *)

type config = {
  domains : int;  (** worker-domain pool size; 1 executes inline *)
  statement_capacity : int;  (** entries *)
  plan_capacity : int;  (** entries *)
  result_capacity : int;  (** bytes of serialized XML *)
  admission_budget : int;
      (** max estimated work units in flight; 0 = unlimited *)
  max_queue : int;  (** waiting admissions beyond which queries are rejected *)
  batch_size : int;
      (** executor vector size for every served query; 0 = tuple path.
          Output bytes are identical either way, so cache entries are
          valid across the switch. *)
}

val default_config : config

(** What admission control decided for one query. *)
type admission = Admit | Queue | Reject of string

val admission_decision :
  config -> est_cost:float -> in_flight:float -> waiting:int -> admission
(** The pure decision function ({!submit} applies it under the
    admission lock): reject when [est_cost] exceeds the whole budget or
    the queue is full, queue while the budget is occupied, admit
    otherwise.  Exposed for tests. *)

type t

val create : ?config:config -> Relational.Database.t -> t
(** Analyzes the database once (the shared catalog all estimates and
    epochs refer to) and starts the worker pool. *)

val config : t -> config
val stats_epoch : t -> int

val query :
  t -> view:string -> strategy:string -> reduce:bool -> Protocol.reply
(** Runs one query through the tiers + admission + pool.  Thread-safe;
    blocks while queued.  [strategy] is [unified], [partitioned],
    [fully-partitioned], [greedy] or [edges:MASK]. *)

val invalidate : ?skew:string * float -> t -> unit
(** Bumps the stats epoch and flushes the plan and result tiers.
    [skew = (table, factor)] first scales that table's catalog entry in
    place, modeling a catalog change that makes cached plans stale. *)

val handle : t -> Protocol.request -> Protocol.reply
(** Full protocol dispatcher: {!query} / {!invalidate} / stats report /
    shutdown acknowledgement. *)

(** Scheduler counters (cache-tier counters live in {!tier_stats}). *)
type counters = {
  requests : int;  (** protocol requests handled *)
  queries : int;
  admitted : int;
  queued : int;  (** admitted queries that had to wait *)
  rejected : int;
  failed : int;
  invalidations : int;
  executed_work : int;  (** engine work spent on uncached executions *)
}

val counters : t -> counters

val tier_stats : t -> Lru.stats * Lru.stats * Lru.stats
(** (statement, plan, result). *)

val render_stats : t -> string
(** Human-readable counter report (also served over the protocol). *)

val shutdown : t -> unit
(** Drains the worker pool; later queries fail.  Idempotent. *)

val serve_unix : ?session_threads:bool -> t -> socket:string -> unit
(** Binds a Unix-domain socket at [socket] and serves sessions until a
    [Shutdown] request arrives; each accepted connection gets its own
    session thread (unless [session_threads] is false, for tests).
    Removes the socket file on exit and calls {!shutdown}. *)
