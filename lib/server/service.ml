(* The query service: three cache tiers in front of execution, admission
   control in front of the worker pool.

   Per query the path is

     statement tier -> plan tier -> result tier -> admission -> pool

   and every step is observable: the [server.request] span carries which
   tiers hit, the admission outcome and the engine work spent; admission
   queueing/rejection and cache evictions emit events.

   Telemetry: every query gets a trace id (a per-service atomic
   sequence) installed as a span base attribute, so all spans and events
   the request produces — including those from pool worker domains,
   which inherit the base attrs through Span.context — carry it.  Head
   sampling ([trace_sample]) decides per request whether spans are
   recorded at all; metrics, events, the SLO account and the slow-query
   log are NOT sampled.  Requests slower than [slow_ms] append a
   structured JSONL record through the bounded non-blocking Slowlog.

   Locking: each LRU tier has its own mutex (see Lru); [plan_m]
   serializes plan-tier misses so concurrent sessions cannot duplicate
   planning work or race the cost oracle's request counter; [adm_m] +
   [adm_cv] guard the in-flight work account.  Nothing holds two locks
   at once, and no lock is held across execution. *)

module R = Relational
module S = Silkroute

type config = {
  domains : int;
  statement_capacity : int;
  plan_capacity : int;
  result_capacity : int;
  admission_budget : int;
  max_queue : int;
  batch_size : int;
      (* executor vector size for every served query; 0 = tuple path *)
  trace_sample : int;
      (* head sampling: record spans for 1 in N queries; 1 = all, 0 = none *)
  slow_ms : float; (* slow-query threshold; 0 disables the slow path *)
  slow_log : string option; (* JSONL file for slow-query records *)
  slo : Obs.Slo.config option; (* None = no SLO accounting *)
  retain_spans : bool;
      (* keep each request's spans in the shared log after serving it;
         the long-running server sets this false so the log stays
         bounded, tests keep the default to inspect spans afterwards *)
}

let default_config =
  {
    domains = 1;
    statement_capacity = 32;
    plan_capacity = 128;
    result_capacity = 8 * 1024 * 1024;
    admission_budget = 0;
    max_queue = 64;
    batch_size = 0;
    trace_sample = 1;
    slow_ms = 0.0;
    slow_log = None;
    slo = None;
    retain_spans = true;
  }

type admission = Admit | Queue | Reject of string

(* Pure decision, applied under [adm_m]: a query that can never fit is
   rejected outright (waiting would deadlock the queue), one that does
   not fit now queues, and a full queue sheds load instead of building
   an unbounded convoy. *)
let admission_decision c ~est_cost ~in_flight ~waiting =
  if c.admission_budget <= 0 then Admit
  else
    let budget = float_of_int c.admission_budget in
    if est_cost > budget then
      Reject
        (Printf.sprintf
           "estimated cost %.0f exceeds the admission budget %d" est_cost
           c.admission_budget)
    else if in_flight +. est_cost <= budget then Admit
    else if waiting >= c.max_queue then
      Reject (Printf.sprintf "admission queue full (%d waiting)" waiting)
    else Queue

(* Plan-tier entry: everything planning produced that later requests can
   reuse — the chosen point of the 2^|E| lattice, the greedy lattice
   result (for reporting) and the admission estimate. *)
type plan_entry = {
  pe_mask : int;
  pe_planner : S.Planner.result option;
  pe_est_cost : float;
}

(* Result-tier entry: exactly the bytes the uncached path produced. *)
type result_entry = { rx_xml : string; rx_work : int }

type counters = {
  requests : int;
  queries : int;
  admitted : int;
  queued : int;
  rejected : int;
  failed : int;
  invalidations : int;
  executed_work : int;
  slow : int;
}

type t = {
  db : R.Database.t;
  cfg : config;
  stats : R.Stats.t;  (* shared catalog; skewed in place by [invalidate] *)
  oracle : R.Cost.oracle;
  pool : R.Domain_pool.t;
  statements : S.Middleware.prepared Lru.t;
  plans : plan_entry Lru.t;
  results : result_entry Lru.t;
  epoch : int Atomic.t;
  closed : bool Atomic.t;
  plan_m : Mutex.t;
  (* admission account *)
  adm_m : Mutex.t;
  adm_cv : Condition.t;
  mutable in_flight : float;
  mutable waiting : int;
  (* counters *)
  cm : Mutex.t;
  mutable c : counters;
  (* telemetry *)
  started_ns : int64;
  trace_seq : int Atomic.t;
  slowlog : Slowlog.t option;
  slo : Obs.Slo.t option;
}

let zero_counters =
  {
    requests = 0;
    queries = 0;
    admitted = 0;
    queued = 0;
    rejected = 0;
    failed = 0;
    invalidations = 0;
    executed_work = 0;
    slow = 0;
  }

let create ?(config = default_config) db =
  if config.domains < 1 then
    invalid_arg "Server.create: domains must be >= 1";
  if config.trace_sample < 0 then
    invalid_arg "Server.create: trace_sample must be >= 0";
  let stats = R.Stats.analyze db in
  {
    db;
    cfg = config;
    stats;
    oracle = R.Cost.oracle_with_stats db stats;
    pool = R.Domain_pool.create ~domains:config.domains;
    statements =
      Lru.create ~name:"statement" ~capacity:config.statement_capacity ();
    plans = Lru.create ~name:"plan" ~capacity:config.plan_capacity ();
    results = Lru.create ~name:"result" ~capacity:config.result_capacity ();
    epoch = Atomic.make 0;
    closed = Atomic.make false;
    plan_m = Mutex.create ();
    adm_m = Mutex.create ();
    adm_cv = Condition.create ();
    in_flight = 0.0;
    waiting = 0;
    cm = Mutex.create ();
    c = zero_counters;
    started_ns = Obs.Clock.now_ns ();
    trace_seq = Atomic.make 0;
    slowlog =
      (match config.slow_log with
      | Some path -> Some (Slowlog.create ~path ())
      | None -> None);
    slo =
      (match config.slo with
      | Some slo_cfg -> Some (Obs.Slo.create ~config:slo_cfg ())
      | None -> None);
  }

let config t = t.cfg
let stats_epoch t = Atomic.get t.epoch
let counters t = Mutex.protect t.cm (fun () -> t.c)
let bump f t = Mutex.protect t.cm (fun () -> t.c <- f t.c)

let tier_stats t = (Lru.stats t.statements, Lru.stats t.plans, Lru.stats t.results)
let slowlog t = t.slowlog
let slo t = t.slo

let uptime_s t =
  Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t.started_ns) /. 1e9

(* --- strategies --------------------------------------------------------- *)

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "unified" -> S.Middleware.Unified
  | "partitioned" | "fully-partitioned" -> S.Middleware.Fully_partitioned
  | "greedy" -> S.Middleware.Greedy S.Planner.default_params
  | s when String.length s > 6 && String.sub s 0 6 = "edges:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some mask when mask >= 0 -> S.Middleware.Edges mask
      | _ -> invalid_arg ("Server: bad edge mask in strategy: " ^ s))
  | s -> invalid_arg ("Server: unknown strategy: " ^ s)

let strategy_key = function
  | S.Middleware.Unified -> "unified"
  | S.Middleware.Fully_partitioned -> "partitioned"
  | S.Middleware.Edges mask -> "edges:" ^ string_of_int mask
  | S.Middleware.Greedy _ -> "greedy"

(* --- cache tiers -------------------------------------------------------- *)

let tier_metric tier hit =
  if Obs.Span.tracing () then
    Obs.Metrics.incr
      (Printf.sprintf "server.cache.%s.%s" tier (if hit then "hit" else "miss"))

(* Statement tier: keyed by the raw RXL source text.  The prepared value
   shares the server's forced catalog, so execution under tracing never
   re-analyzes the database and OCaml 5's RacyLazy cannot fire on the
   pool. *)
let statement_of t view =
  match Lru.find t.statements view with
  | Some p ->
      tier_metric "statement" true;
      (p, true)
  | None ->
      tier_metric "statement" false;
      let p = S.Middleware.prepare_text t.db view in
      let p = { p with S.Middleware.stats = Lazy.from_val t.stats } in
      Lru.add t.statements view p;
      (p, false)

let view_digest view = Digest.to_hex (Digest.string view)

let plan_key ~digest ~skey ~reduce ~epoch =
  Printf.sprintf "%s|%s|%b|e%d" digest skey reduce epoch

let result_key ~digest ~mask ~reduce ~epoch =
  Printf.sprintf "%s|m%d|%b|e%d" digest mask reduce epoch

let sql_options (p : S.Middleware.prepared) ~reduce =
  {
    S.Sql_gen.style = S.Sql_gen.Outer_join;
    labels = (if reduce then Some p.S.Middleware.labels else None);
  }

(* Admission estimate for a partition: the cost oracle summed over the
   plan's sub-queries — the same work-unit scale as the execution budget
   machinery. *)
let estimate_cost t (p : S.Middleware.prepared) partition ~reduce =
  let streams =
    S.Sql_gen.streams p.S.Middleware.db p.S.Middleware.tree partition
      (sql_options p ~reduce)
  in
  List.fold_left
    (fun acc (s : S.Sql_gen.stream) ->
      acc +. (R.Cost.ask t.oracle s.S.Sql_gen.query).R.Cost.eval_cost)
    0.0 streams

(* Plan tier: compute misses under [plan_m] so concurrent sessions
   asking for the same (view, strategy, epoch) plan it once. *)
let plan_of t (p : S.Middleware.prepared) ~digest ~strategy ~reduce ~epoch =
  let skey = strategy_key strategy in
  let key = plan_key ~digest ~skey ~reduce ~epoch in
  match Lru.find t.plans key with
  | Some pe ->
      tier_metric "plan" true;
      (* the planner's fragment-cost cache counter is the metric the
         paper-level reports already watch; a plan-tier hit is the same
         phenomenon one level up *)
      if Obs.Span.tracing () then Obs.Metrics.incr "planner.cache_hits";
      (pe, true)
  | None ->
      tier_metric "plan" false;
      Mutex.protect t.plan_m (fun () ->
          match Lru.peek t.plans key with
          | Some pe -> (pe, true)
          | None ->
              let tree = p.S.Middleware.tree in
              let planner, partition =
                match strategy with
                | S.Middleware.Greedy params ->
                    let r =
                      S.Planner.gen_plan ~reduce t.db t.oracle tree
                        p.S.Middleware.labels params
                    in
                    (Some r, S.Planner.best_plan tree r)
                | other -> (None, S.Middleware.partition_of p other)
              in
              let pe =
                {
                  pe_mask = S.Partition.to_mask partition;
                  pe_planner = planner;
                  pe_est_cost = estimate_cost t p partition ~reduce;
                }
              in
              Lru.add t.plans key pe;
              (pe, false))

(* --- admission ---------------------------------------------------------- *)

(* Returns [Ok had_to_queue] after charging [est] to the in-flight
   account, or [Error reason].  The caller must [release] exactly once
   per [Ok]. *)
let admit t est =
  Mutex.protect t.adm_m (fun () ->
      match
        admission_decision t.cfg ~est_cost:est ~in_flight:t.in_flight
          ~waiting:t.waiting
      with
      | Reject reason -> Error reason
      | Admit ->
          t.in_flight <- t.in_flight +. est;
          Ok false
      | Queue ->
          t.waiting <- t.waiting + 1;
          let budget = float_of_int t.cfg.admission_budget in
          while t.in_flight > 0.0 && t.in_flight +. est > budget do
            Condition.wait t.adm_cv t.adm_m
          done;
          t.waiting <- t.waiting - 1;
          t.in_flight <- t.in_flight +. est;
          Ok true)

let release t est () =
  Mutex.protect t.adm_m (fun () -> t.in_flight <- t.in_flight -. est);
  Condition.broadcast t.adm_cv

let admission_account t =
  Mutex.protect t.adm_m (fun () -> (t.in_flight, t.waiting))

(* --- queries ------------------------------------------------------------ *)

let execute_on_pool t (p : S.Middleware.prepared) partition ~reduce =
  let batch_size =
    if t.cfg.batch_size > 0 then Some t.cfg.batch_size else None
  in
  let handle =
    R.Domain_pool.submit t.pool (fun () ->
        let e = S.Middleware.execute ~reduce ?batch_size p partition in
        (S.Middleware.xml_string_of p e, e.S.Middleware.work))
  in
  R.Domain_pool.await handle

let query_body t ~view ~strategy ~reduce =
  Obs.Span.with_span "server.request" (fun () ->
      try
        let strat = strategy_of_string strategy in
        if Obs.Span.tracing () then
          Obs.Span.add_list
            [
              Obs.Attr.string "strategy" (strategy_key strat);
              Obs.Attr.bool "reduce" reduce;
            ];
        let p, statement_hit = statement_of t view in
        let digest = view_digest view in
        let epoch = Atomic.get t.epoch in
        let pe, plan_hit =
          plan_of t p ~digest ~strategy:strat ~reduce ~epoch
        in
        let tiers hit =
          { Protocol.statement_hit; plan_hit; result_hit = hit }
        in
        let rkey = result_key ~digest ~mask:pe.pe_mask ~reduce ~epoch in
        match Lru.find t.results rkey with
        | Some r ->
            tier_metric "result" true;
            if Obs.Span.tracing () then
              Obs.Span.add_list
                [
                  Obs.Attr.bool "cache.result" true;
                  Obs.Attr.int "bytes" (String.length r.rx_xml);
                ];
            Protocol.Result
              {
                xml = r.rx_xml;
                tiers = tiers true;
                work = 0;
                est_cost = pe.pe_est_cost;
              }
        | None -> (
            tier_metric "result" false;
            match admit t pe.pe_est_cost with
            | Error reason ->
                bump (fun c -> { c with rejected = c.rejected + 1 }) t;
                if Obs.Span.tracing () then begin
                  Obs.Span.add "admission" (Obs.Attr.String "rejected");
                  Obs.Event.warn "server.admission.reject"
                    ~attrs:
                      [
                        Obs.Attr.string "reason" reason;
                        Obs.Attr.float "est_cost" pe.pe_est_cost;
                      ]
                end;
                Protocol.Rejected reason
            | Ok had_to_queue ->
                bump
                  (fun c ->
                    {
                      c with
                      admitted = c.admitted + 1;
                      queued = (c.queued + if had_to_queue then 1 else 0);
                    })
                  t;
                if Obs.Span.tracing () then begin
                  Obs.Span.add "admission"
                    (Obs.Attr.String
                       (if had_to_queue then "queued" else "admitted"));
                  if had_to_queue then
                    Obs.Event.debug "server.admission.queued"
                      ~attrs:[ Obs.Attr.float "est_cost" pe.pe_est_cost ]
                end;
                let partition =
                  S.Partition.of_mask p.S.Middleware.tree pe.pe_mask
                in
                let xml, work =
                  Fun.protect
                    ~finally:(release t pe.pe_est_cost)
                    (fun () -> execute_on_pool t p partition ~reduce)
                in
                Lru.add ~weight:(String.length xml) t.results rkey
                  { rx_xml = xml; rx_work = work };
                bump
                  (fun c ->
                    { c with executed_work = c.executed_work + work })
                  t;
                if Obs.Span.tracing () then
                  Obs.Span.add_list
                    [
                      Obs.Attr.int "work" work;
                      Obs.Attr.int "bytes" (String.length xml);
                    ];
                Protocol.Result
                  {
                    xml;
                    tiers = tiers false;
                    work;
                    est_cost = pe.pe_est_cost;
                  })
      with e ->
        bump (fun c -> { c with failed = c.failed + 1 }) t;
        let msg =
          match e with Invalid_argument m -> m | e -> Printexc.to_string e
        in
        if Obs.Span.tracing () then
          Obs.Event.error "server.request.failed"
            ~attrs:[ Obs.Attr.string "error" msg ];
        Protocol.Failed msg)

(* --- request telemetry --------------------------------------------------- *)

(* Head sampling: the shared sequence both names the trace and decides
   (1-in-N) whether its spans are recorded.  Sampled-out requests still
   produce metrics, events and SLO samples. *)
let next_trace t =
  let seq = Atomic.fetch_and_add t.trace_seq 1 in
  let sampled =
    match t.cfg.trace_sample with
    | 0 -> false
    | 1 -> true
    | n -> seq mod n = 0
  in
  (Printf.sprintf "t%06d" seq, sampled)

let span_of_trace trace_id s =
  match Obs.Span.find_attr s "trace_id" with
  | Some (Obs.Attr.String id) -> id = trace_id
  | _ -> false

(* The per-stage profile of one request: its spans (matched by trace id,
   so pool-domain spans are included) aggregated by name-path. *)
let stages_of_trace trace_id =
  let spans = List.filter (span_of_trace trace_id) (Obs.Span.spans ()) in
  let prof = Obs.Profile.of_spans spans in
  let out = ref [] in
  Obs.Profile.iter
    (fun path node ->
      out :=
        Obs.Json.Obj
          [
            ("name", Obs.Json.String (String.concat "/" path));
            ("calls", Obs.Json.Int node.Obs.Profile.calls);
            ("total_ms", Obs.Json.Float node.Obs.Profile.total_ms);
            ("self_ms", Obs.Json.Float node.Obs.Profile.self_ms);
          ]
        :: !out)
    prof;
  List.rev !out

let tiers_json = function
  | Protocol.Result { tiers; _ } ->
      Obs.Json.Obj
        [
          ("statement", Obs.Json.Bool tiers.Protocol.statement_hit);
          ("plan", Obs.Json.Bool tiers.Protocol.plan_hit);
          ("result", Obs.Json.Bool tiers.Protocol.result_hit);
        ]
  | _ -> Obs.Json.Null

let slow_record t ~trace_id ~view ~strategy ~reduce ~ms ~gc0 ~gc1 reply =
  let work, bytes =
    match reply with
    | Protocol.Result { work; xml; _ } -> (work, String.length xml)
    | _ -> (0, 0)
  in
  Obs.Json.Obj
    [
      ("type", Obs.Json.String "slow_query");
      ("trace_id", Obs.Json.String trace_id);
      ("ts_ms", Obs.Json.Float (Unix.gettimeofday () *. 1000.0));
      ("ms", Obs.Json.Float ms);
      ("threshold_ms", Obs.Json.Float t.cfg.slow_ms);
      ("view_digest", Obs.Json.String (view_digest view));
      ("strategy", Obs.Json.String strategy);
      ("reduce", Obs.Json.Bool reduce);
      ("reply", Obs.Json.String (Protocol.reply_name reply));
      ("tiers", tiers_json reply);
      ("work", Obs.Json.Int work);
      ("bytes", Obs.Json.Int bytes);
      ( "gc",
        Obs.Json.Obj
          [
            ( "minor_words",
              Obs.Json.Float (gc1.Gc.minor_words -. gc0.Gc.minor_words) );
            ( "major_words",
              Obs.Json.Float (gc1.Gc.major_words -. gc0.Gc.major_words) );
            ( "compactions",
              Obs.Json.Int (gc1.Gc.compactions - gc0.Gc.compactions) );
          ] );
      ("stages", Obs.Json.List (stages_of_trace trace_id));
    ]

(* Post-reply accounting: the request latency metric, the SLO account,
   the slow-query record and — once the record no longer needs them —
   pruning the request's spans from the shared log. *)
let finish_request t ~trace_id ~view ~strategy ~reduce ~ms ~gc0 reply =
  if Obs.Span.tracing () then
    Obs.Metrics.observe ~bounds:Obs.Metrics.duration_bounds "server.request.ms"
      ms;
  (match t.slo with
  | Some slo ->
      let error =
        match reply with
        | Protocol.Failed _ | Protocol.Rejected _ -> true
        | _ -> false
      in
      Obs.Slo.record slo ~error
        ~now_ms:(Obs.Clock.ns_to_ms (Obs.Clock.now_ns ()))
        ms
  | None -> ());
  if t.cfg.slow_ms > 0.0 && ms >= t.cfg.slow_ms then begin
    bump (fun c -> { c with slow = c.slow + 1 }) t;
    let gc1 = Gc.quick_stat () in
    let record =
      slow_record t ~trace_id ~view ~strategy ~reduce ~ms ~gc0 ~gc1 reply
    in
    (match t.slowlog with
    | Some log -> ignore (Slowlog.write log record)
    | None -> ());
    Obs.Event.warn "server.slow_query"
      ~attrs:
        [
          Obs.Attr.float "ms" ms;
          Obs.Attr.float "threshold_ms" t.cfg.slow_ms;
          Obs.Attr.string "reply" (Protocol.reply_name reply);
        ]
  end;
  if not t.cfg.retain_spans then Obs.Span.prune (span_of_trace trace_id)

let query t ~view ~strategy ~reduce =
  bump (fun c -> { c with queries = c.queries + 1 }) t;
  if Atomic.get t.closed then Protocol.Failed "server is shut down"
  else begin
    let trace_id, sampled = next_trace t in
    let want_timing =
      t.cfg.slow_ms > 0.0 || Option.is_some t.slo || Obs.Control.is_enabled ()
    in
    if not want_timing then query_body t ~view ~strategy ~reduce
    else begin
      let gc0 = if t.cfg.slow_ms > 0.0 then Some (Gc.quick_stat ()) else None in
      let t0 = Obs.Clock.now_ns () in
      let reply =
        Obs.Span.with_base_attrs
          [ Obs.Attr.string "trace_id" trace_id ]
          (fun () ->
            Obs.Span.with_sampling sampled (fun () ->
                query_body t ~view ~strategy ~reduce))
      in
      let ms = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) t0) in
      let gc0 = match gc0 with Some g -> g | None -> Gc.quick_stat () in
      finish_request t ~trace_id ~view ~strategy ~reduce ~ms ~gc0 reply;
      reply
    end
  end

(* --- invalidation ------------------------------------------------------- *)

let invalidate ?skew t =
  Mutex.protect t.plan_m (fun () ->
      (match skew with
      | Some (table, factor) -> R.Stats.scale_table t.stats table factor
      | None -> ());
      ignore (Atomic.fetch_and_add t.epoch 1));
  (* entries of older epochs can never be looked up again (the epoch is
     part of the key); flushing reclaims their space immediately *)
  Lru.clear t.plans;
  Lru.clear t.results;
  bump (fun c -> { c with invalidations = c.invalidations + 1 }) t;
  if Obs.Span.tracing () then
    Obs.Event.info "server.invalidate"
      ~attrs:
        ([ Obs.Attr.int "epoch" (Atomic.get t.epoch) ]
        @
        match skew with
        | Some (table, factor) ->
            [ Obs.Attr.string "table" table; Obs.Attr.float "factor" factor ]
        | None -> [])

(* --- reporting ---------------------------------------------------------- *)

let render_tier (s : Lru.stats) name =
  Printf.sprintf
    "%s: hits=%d misses=%d insertions=%d evictions=%d flushes=%d entries=%d \
     weight=%d hit_ratio=%.3f"
    name s.Lru.hits s.Lru.misses s.Lru.insertions s.Lru.evictions s.Lru.flushes
    s.Lru.entries s.Lru.weight
    (Lru.ratio_of ~hits:s.Lru.hits ~misses:s.Lru.misses)

let render_stats t =
  let c = counters t in
  let st, pl, re = tier_stats t in
  String.concat "\n"
    [
      Printf.sprintf
        "server: requests=%d queries=%d admitted=%d queued=%d rejected=%d \
         failed=%d invalidations=%d slow=%d epoch=%d work=%d"
        c.requests c.queries c.admitted c.queued c.rejected c.failed
        c.invalidations c.slow (stats_epoch t) c.executed_work;
      render_tier st "statement";
      render_tier pl "plan";
      render_tier re "result";
    ]

(* --- telemetry exposition ------------------------------------------------ *)

(* Curated series first (service counters, cache tiers, admission, pool,
   slow log, SLO), then the whole metrics registry through one
   consistent snapshot.  Cache hit ratios are derived from the same
   Lru.stats read as the hit/miss counters — Lru.ratio_of is the one
   formula this, [render_stats] and the tests share. *)
let exposition_samples t =
  let sample = Obs.Expose.sample in
  let c = counters t in
  let counter ?labels name v =
    sample ?labels Obs.Expose.Counter name (float_of_int v)
  in
  let gauge ?labels name v = sample ?labels Obs.Expose.Gauge name v in
  let server =
    [
      gauge "silkroute_uptime_seconds" (uptime_s t);
      gauge "silkroute_stats_epoch" (float_of_int (stats_epoch t));
      counter "silkroute_server_requests_total" c.requests;
      counter "silkroute_server_queries_total" c.queries;
      counter "silkroute_server_admitted_total" c.admitted;
      counter "silkroute_server_queued_total" c.queued;
      counter "silkroute_server_rejected_total" c.rejected;
      counter "silkroute_server_failed_total" c.failed;
      counter "silkroute_server_invalidations_total" c.invalidations;
      counter "silkroute_server_executed_work_total" c.executed_work;
      counter "silkroute_server_slow_queries_total" c.slow;
    ]
  in
  let tier name (s : Lru.stats) =
    let labels = [ ("tier", name) ] in
    [
      counter ~labels "silkroute_cache_hits_total" s.Lru.hits;
      counter ~labels "silkroute_cache_misses_total" s.Lru.misses;
      counter ~labels "silkroute_cache_insertions_total" s.Lru.insertions;
      counter ~labels "silkroute_cache_evictions_total" s.Lru.evictions;
      counter ~labels "silkroute_cache_flushes_total" s.Lru.flushes;
      gauge ~labels "silkroute_cache_entries" (float_of_int s.Lru.entries);
      gauge ~labels "silkroute_cache_weight" (float_of_int s.Lru.weight);
      gauge ~labels "silkroute_cache_hit_ratio"
        (Lru.ratio_of ~hits:s.Lru.hits ~misses:s.Lru.misses);
    ]
  in
  let st, pl, re = tier_stats t in
  let tiers = tier "statement" st @ tier "plan" pl @ tier "result" re in
  let in_flight, waiting = admission_account t in
  let admission =
    [
      gauge "silkroute_admission_in_flight_work" in_flight;
      gauge "silkroute_admission_waiting" (float_of_int waiting);
      gauge "silkroute_pool_queue_depth"
        (float_of_int (R.Domain_pool.queue_depth t.pool));
      gauge "silkroute_pool_domains" (float_of_int t.cfg.domains);
    ]
  in
  let slowlog_samples =
    match t.slowlog with
    | None -> []
    | Some log ->
        [
          counter "silkroute_slowlog_written_total" (Slowlog.written log);
          counter "silkroute_slowlog_dropped_total" (Slowlog.dropped log);
        ]
  in
  let slo_samples =
    match t.slo with
    | None -> []
    | Some slo ->
        let s =
          Obs.Slo.snapshot slo ~now_ms:(Obs.Clock.ns_to_ms (Obs.Clock.now_ns ()))
        in
        [
          gauge "silkroute_slo_samples" (float_of_int s.Obs.Slo.samples);
          gauge "silkroute_slo_errors" (float_of_int s.Obs.Slo.errors);
          gauge "silkroute_slo_error_rate" s.Obs.Slo.error_rate;
          gauge "silkroute_slo_p50_ms" s.Obs.Slo.p50_ms;
          gauge "silkroute_slo_p90_ms" s.Obs.Slo.p90_ms;
          gauge "silkroute_slo_p99_ms" s.Obs.Slo.p99_ms;
          gauge "silkroute_slo_burn_rate" s.Obs.Slo.burn_rate;
          gauge "silkroute_slo_breached"
            (if s.Obs.Slo.breached then 1.0 else 0.0);
        ]
  in
  server @ tiers @ admission @ slowlog_samples @ slo_samples
  @ Obs.Expose.of_metrics ()

let render_exposition t = Obs.Expose.render (exposition_samples t)

let render_health t =
  let in_flight, waiting = admission_account t in
  let breached =
    match t.slo with
    | Some slo ->
        (Obs.Slo.snapshot slo
           ~now_ms:(Obs.Clock.ns_to_ms (Obs.Clock.now_ns ())))
          .Obs.Slo.breached
    | None -> false
  in
  Printf.sprintf
    "status=%s uptime_s=%.1f epoch=%d requests=%d queue_depth=%d \
     in_flight=%.1f waiting=%d slo_breached=%b"
    (if Atomic.get t.closed then "closing" else "ok")
    (uptime_s t) (stats_epoch t) (counters t).requests
    (R.Domain_pool.queue_depth t.pool)
    in_flight waiting breached

(* --- lifecycle / protocol ------------------------------------------------ *)

let shutdown t =
  if not (Atomic.exchange t.closed true) then begin
    (* wake queued admissions so their sessions can fail out *)
    Mutex.protect t.adm_m (fun () -> ());
    Condition.broadcast t.adm_cv;
    R.Domain_pool.shutdown t.pool;
    match t.slowlog with Some log -> Slowlog.close log | None -> ()
  end

let handle t req =
  bump (fun c -> { c with requests = c.requests + 1 }) t;
  match req with
  | Protocol.Query { view; strategy; reduce } -> query t ~view ~strategy ~reduce
  | Protocol.Invalidate { table; factor } -> (
      match
        if table = "" then Ok None
        else if factor <= 0.0 then
          Error (Printf.sprintf "bad skew factor %g for table %s" factor table)
        else Ok (Some (table, factor))
      with
      | Error msg ->
          bump (fun c -> { c with failed = c.failed + 1 }) t;
          Protocol.Failed msg
      | Ok skew -> (
          match invalidate ?skew t with
          | () ->
              Protocol.Info
                (Printf.sprintf "invalidated; stats epoch now %d"
                   (stats_epoch t))
          | exception Invalid_argument msg ->
              bump (fun c -> { c with failed = c.failed + 1 }) t;
              Protocol.Failed msg))
  | Protocol.Stats -> Protocol.Info (render_stats t)
  | Protocol.Metrics -> Protocol.Info (render_exposition t)
  | Protocol.Health -> Protocol.Info (render_health t)
  | Protocol.Shutdown ->
      shutdown t;
      Protocol.Info "shutting down"

let serve_unix ?(session_threads = true) t ~socket =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX socket);
  Unix.listen sock 64;
  let stop = Atomic.make false in
  let threads = ref [] in
  let session fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rec loop () =
      match Protocol.read_request ic with
      | None -> ()
      | Some req -> (
          let reply = handle t req in
          Protocol.write_reply oc reply;
          match req with
          | Protocol.Shutdown -> Atomic.set stop true
          | _ -> loop ())
    in
    (try loop () with
    | Protocol.Protocol_error msg -> (
        try Protocol.write_reply oc (Protocol.Failed ("protocol error: " ^ msg))
        with Sys_error _ -> ())
    | End_of_file | Sys_error _ -> ());
    close_out_noerr oc
  in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.select [ sock ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ ->
          let fd, _ = Unix.accept sock in
          if session_threads then
            threads := Thread.create session fd :: !threads
          else session fd);
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      List.iter Thread.join !threads;
      shutdown t)
    accept_loop
