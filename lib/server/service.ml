(* The query service: three cache tiers in front of execution, admission
   control in front of the worker pool.

   Per query the path is

     statement tier -> plan tier -> result tier -> admission -> pool

   and every step is observable: the [server.request] span carries which
   tiers hit, the admission outcome and the engine work spent; admission
   queueing/rejection and cache evictions emit events.

   Locking: each LRU tier has its own mutex (see Lru); [plan_m]
   serializes plan-tier misses so concurrent sessions cannot duplicate
   planning work or race the cost oracle's request counter; [adm_m] +
   [adm_cv] guard the in-flight work account.  Nothing holds two locks
   at once, and no lock is held across execution. *)

module R = Relational
module S = Silkroute

type config = {
  domains : int;
  statement_capacity : int;
  plan_capacity : int;
  result_capacity : int;
  admission_budget : int;
  max_queue : int;
  batch_size : int;
      (* executor vector size for every served query; 0 = tuple path *)
}

let default_config =
  {
    domains = 1;
    statement_capacity = 32;
    plan_capacity = 128;
    result_capacity = 8 * 1024 * 1024;
    admission_budget = 0;
    max_queue = 64;
    batch_size = 0;
  }

type admission = Admit | Queue | Reject of string

(* Pure decision, applied under [adm_m]: a query that can never fit is
   rejected outright (waiting would deadlock the queue), one that does
   not fit now queues, and a full queue sheds load instead of building
   an unbounded convoy. *)
let admission_decision c ~est_cost ~in_flight ~waiting =
  if c.admission_budget <= 0 then Admit
  else
    let budget = float_of_int c.admission_budget in
    if est_cost > budget then
      Reject
        (Printf.sprintf
           "estimated cost %.0f exceeds the admission budget %d" est_cost
           c.admission_budget)
    else if in_flight +. est_cost <= budget then Admit
    else if waiting >= c.max_queue then
      Reject (Printf.sprintf "admission queue full (%d waiting)" waiting)
    else Queue

(* Plan-tier entry: everything planning produced that later requests can
   reuse — the chosen point of the 2^|E| lattice, the greedy lattice
   result (for reporting) and the admission estimate. *)
type plan_entry = {
  pe_mask : int;
  pe_planner : S.Planner.result option;
  pe_est_cost : float;
}

(* Result-tier entry: exactly the bytes the uncached path produced. *)
type result_entry = { rx_xml : string; rx_work : int }

type counters = {
  requests : int;
  queries : int;
  admitted : int;
  queued : int;
  rejected : int;
  failed : int;
  invalidations : int;
  executed_work : int;
}

type t = {
  db : R.Database.t;
  cfg : config;
  stats : R.Stats.t;  (* shared catalog; skewed in place by [invalidate] *)
  oracle : R.Cost.oracle;
  pool : R.Domain_pool.t;
  statements : S.Middleware.prepared Lru.t;
  plans : plan_entry Lru.t;
  results : result_entry Lru.t;
  epoch : int Atomic.t;
  closed : bool Atomic.t;
  plan_m : Mutex.t;
  (* admission account *)
  adm_m : Mutex.t;
  adm_cv : Condition.t;
  mutable in_flight : float;
  mutable waiting : int;
  (* counters *)
  cm : Mutex.t;
  mutable c : counters;
}

let zero_counters =
  {
    requests = 0;
    queries = 0;
    admitted = 0;
    queued = 0;
    rejected = 0;
    failed = 0;
    invalidations = 0;
    executed_work = 0;
  }

let create ?(config = default_config) db =
  if config.domains < 1 then
    invalid_arg "Server.create: domains must be >= 1";
  let stats = R.Stats.analyze db in
  {
    db;
    cfg = config;
    stats;
    oracle = R.Cost.oracle_with_stats db stats;
    pool = R.Domain_pool.create ~domains:config.domains;
    statements =
      Lru.create ~name:"statement" ~capacity:config.statement_capacity ();
    plans = Lru.create ~name:"plan" ~capacity:config.plan_capacity ();
    results = Lru.create ~name:"result" ~capacity:config.result_capacity ();
    epoch = Atomic.make 0;
    closed = Atomic.make false;
    plan_m = Mutex.create ();
    adm_m = Mutex.create ();
    adm_cv = Condition.create ();
    in_flight = 0.0;
    waiting = 0;
    cm = Mutex.create ();
    c = zero_counters;
  }

let config t = t.cfg
let stats_epoch t = Atomic.get t.epoch
let counters t = Mutex.protect t.cm (fun () -> t.c)
let bump f t = Mutex.protect t.cm (fun () -> t.c <- f t.c)

let tier_stats t = (Lru.stats t.statements, Lru.stats t.plans, Lru.stats t.results)

(* --- strategies --------------------------------------------------------- *)

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "unified" -> S.Middleware.Unified
  | "partitioned" | "fully-partitioned" -> S.Middleware.Fully_partitioned
  | "greedy" -> S.Middleware.Greedy S.Planner.default_params
  | s when String.length s > 6 && String.sub s 0 6 = "edges:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some mask when mask >= 0 -> S.Middleware.Edges mask
      | _ -> invalid_arg ("Server: bad edge mask in strategy: " ^ s))
  | s -> invalid_arg ("Server: unknown strategy: " ^ s)

let strategy_key = function
  | S.Middleware.Unified -> "unified"
  | S.Middleware.Fully_partitioned -> "partitioned"
  | S.Middleware.Edges mask -> "edges:" ^ string_of_int mask
  | S.Middleware.Greedy _ -> "greedy"

(* --- cache tiers -------------------------------------------------------- *)

let tier_metric tier hit =
  if Obs.Span.tracing () then
    Obs.Metrics.incr
      (Printf.sprintf "server.cache.%s.%s" tier (if hit then "hit" else "miss"))

(* Statement tier: keyed by the raw RXL source text.  The prepared value
   shares the server's forced catalog, so execution under tracing never
   re-analyzes the database and OCaml 5's RacyLazy cannot fire on the
   pool. *)
let statement_of t view =
  match Lru.find t.statements view with
  | Some p ->
      tier_metric "statement" true;
      (p, true)
  | None ->
      tier_metric "statement" false;
      let p = S.Middleware.prepare_text t.db view in
      let p = { p with S.Middleware.stats = Lazy.from_val t.stats } in
      Lru.add t.statements view p;
      (p, false)

let view_digest view = Digest.to_hex (Digest.string view)

let plan_key ~digest ~skey ~reduce ~epoch =
  Printf.sprintf "%s|%s|%b|e%d" digest skey reduce epoch

let result_key ~digest ~mask ~reduce ~epoch =
  Printf.sprintf "%s|m%d|%b|e%d" digest mask reduce epoch

let sql_options (p : S.Middleware.prepared) ~reduce =
  {
    S.Sql_gen.style = S.Sql_gen.Outer_join;
    labels = (if reduce then Some p.S.Middleware.labels else None);
  }

(* Admission estimate for a partition: the cost oracle summed over the
   plan's sub-queries — the same work-unit scale as the execution budget
   machinery. *)
let estimate_cost t (p : S.Middleware.prepared) partition ~reduce =
  let streams =
    S.Sql_gen.streams p.S.Middleware.db p.S.Middleware.tree partition
      (sql_options p ~reduce)
  in
  List.fold_left
    (fun acc (s : S.Sql_gen.stream) ->
      acc +. (R.Cost.ask t.oracle s.S.Sql_gen.query).R.Cost.eval_cost)
    0.0 streams

(* Plan tier: compute misses under [plan_m] so concurrent sessions
   asking for the same (view, strategy, epoch) plan it once. *)
let plan_of t (p : S.Middleware.prepared) ~digest ~strategy ~reduce ~epoch =
  let skey = strategy_key strategy in
  let key = plan_key ~digest ~skey ~reduce ~epoch in
  match Lru.find t.plans key with
  | Some pe ->
      tier_metric "plan" true;
      (* the planner's fragment-cost cache counter is the metric the
         paper-level reports already watch; a plan-tier hit is the same
         phenomenon one level up *)
      if Obs.Span.tracing () then Obs.Metrics.incr "planner.cache_hits";
      (pe, true)
  | None ->
      tier_metric "plan" false;
      Mutex.protect t.plan_m (fun () ->
          match Lru.peek t.plans key with
          | Some pe -> (pe, true)
          | None ->
              let tree = p.S.Middleware.tree in
              let planner, partition =
                match strategy with
                | S.Middleware.Greedy params ->
                    let r =
                      S.Planner.gen_plan ~reduce t.db t.oracle tree
                        p.S.Middleware.labels params
                    in
                    (Some r, S.Planner.best_plan tree r)
                | other -> (None, S.Middleware.partition_of p other)
              in
              let pe =
                {
                  pe_mask = S.Partition.to_mask partition;
                  pe_planner = planner;
                  pe_est_cost = estimate_cost t p partition ~reduce;
                }
              in
              Lru.add t.plans key pe;
              (pe, false))

(* --- admission ---------------------------------------------------------- *)

(* Returns [Ok had_to_queue] after charging [est] to the in-flight
   account, or [Error reason].  The caller must [release] exactly once
   per [Ok]. *)
let admit t est =
  Mutex.protect t.adm_m (fun () ->
      match
        admission_decision t.cfg ~est_cost:est ~in_flight:t.in_flight
          ~waiting:t.waiting
      with
      | Reject reason -> Error reason
      | Admit ->
          t.in_flight <- t.in_flight +. est;
          Ok false
      | Queue ->
          t.waiting <- t.waiting + 1;
          let budget = float_of_int t.cfg.admission_budget in
          while t.in_flight > 0.0 && t.in_flight +. est > budget do
            Condition.wait t.adm_cv t.adm_m
          done;
          t.waiting <- t.waiting - 1;
          t.in_flight <- t.in_flight +. est;
          Ok true)

let release t est () =
  Mutex.protect t.adm_m (fun () -> t.in_flight <- t.in_flight -. est);
  Condition.broadcast t.adm_cv

(* --- queries ------------------------------------------------------------ *)

let execute_on_pool t (p : S.Middleware.prepared) partition ~reduce =
  let batch_size =
    if t.cfg.batch_size > 0 then Some t.cfg.batch_size else None
  in
  let handle =
    R.Domain_pool.submit t.pool (fun () ->
        let e = S.Middleware.execute ~reduce ?batch_size p partition in
        (S.Middleware.xml_string_of p e, e.S.Middleware.work))
  in
  R.Domain_pool.await handle

let query t ~view ~strategy ~reduce =
  bump (fun c -> { c with queries = c.queries + 1 }) t;
  if Atomic.get t.closed then Protocol.Failed "server is shut down"
  else
    Obs.Span.with_span "server.request" (fun () ->
        try
          let strat = strategy_of_string strategy in
          if Obs.Span.tracing () then
            Obs.Span.add_list
              [
                Obs.Attr.string "strategy" (strategy_key strat);
                Obs.Attr.bool "reduce" reduce;
              ];
          let p, statement_hit = statement_of t view in
          let digest = view_digest view in
          let epoch = Atomic.get t.epoch in
          let pe, plan_hit =
            plan_of t p ~digest ~strategy:strat ~reduce ~epoch
          in
          let tiers hit =
            { Protocol.statement_hit; plan_hit; result_hit = hit }
          in
          let rkey = result_key ~digest ~mask:pe.pe_mask ~reduce ~epoch in
          match Lru.find t.results rkey with
          | Some r ->
              tier_metric "result" true;
              if Obs.Span.tracing () then
                Obs.Span.add_list
                  [
                    Obs.Attr.bool "cache.result" true;
                    Obs.Attr.int "bytes" (String.length r.rx_xml);
                  ];
              Protocol.Result
                {
                  xml = r.rx_xml;
                  tiers = tiers true;
                  work = 0;
                  est_cost = pe.pe_est_cost;
                }
          | None -> (
              tier_metric "result" false;
              match admit t pe.pe_est_cost with
              | Error reason ->
                  bump (fun c -> { c with rejected = c.rejected + 1 }) t;
                  if Obs.Span.tracing () then begin
                    Obs.Span.add "admission" (Obs.Attr.String "rejected");
                    Obs.Event.warn "server.admission.reject"
                      ~attrs:
                        [
                          Obs.Attr.string "reason" reason;
                          Obs.Attr.float "est_cost" pe.pe_est_cost;
                        ]
                  end;
                  Protocol.Rejected reason
              | Ok had_to_queue ->
                  bump
                    (fun c ->
                      {
                        c with
                        admitted = c.admitted + 1;
                        queued = (c.queued + if had_to_queue then 1 else 0);
                      })
                    t;
                  if Obs.Span.tracing () then begin
                    Obs.Span.add "admission"
                      (Obs.Attr.String
                         (if had_to_queue then "queued" else "admitted"));
                    if had_to_queue then
                      Obs.Event.debug "server.admission.queued"
                        ~attrs:[ Obs.Attr.float "est_cost" pe.pe_est_cost ]
                  end;
                  let partition =
                    S.Partition.of_mask p.S.Middleware.tree pe.pe_mask
                  in
                  let xml, work =
                    Fun.protect
                      ~finally:(release t pe.pe_est_cost)
                      (fun () -> execute_on_pool t p partition ~reduce)
                  in
                  Lru.add ~weight:(String.length xml) t.results rkey
                    { rx_xml = xml; rx_work = work };
                  bump
                    (fun c ->
                      { c with executed_work = c.executed_work + work })
                    t;
                  if Obs.Span.tracing () then
                    Obs.Span.add_list
                      [
                        Obs.Attr.int "work" work;
                        Obs.Attr.int "bytes" (String.length xml);
                      ];
                  Protocol.Result
                    {
                      xml;
                      tiers = tiers false;
                      work;
                      est_cost = pe.pe_est_cost;
                    })
        with e ->
          bump (fun c -> { c with failed = c.failed + 1 }) t;
          let msg =
            match e with Invalid_argument m -> m | e -> Printexc.to_string e
          in
          if Obs.Span.tracing () then
            Obs.Event.error "server.request.failed"
              ~attrs:[ Obs.Attr.string "error" msg ];
          Protocol.Failed msg)

(* --- invalidation ------------------------------------------------------- *)

let invalidate ?skew t =
  Mutex.protect t.plan_m (fun () ->
      (match skew with
      | Some (table, factor) -> R.Stats.scale_table t.stats table factor
      | None -> ());
      ignore (Atomic.fetch_and_add t.epoch 1));
  (* entries of older epochs can never be looked up again (the epoch is
     part of the key); flushing reclaims their space immediately *)
  Lru.clear t.plans;
  Lru.clear t.results;
  bump (fun c -> { c with invalidations = c.invalidations + 1 }) t;
  if Obs.Span.tracing () then
    Obs.Event.info "server.invalidate"
      ~attrs:
        ([ Obs.Attr.int "epoch" (Atomic.get t.epoch) ]
        @
        match skew with
        | Some (table, factor) ->
            [ Obs.Attr.string "table" table; Obs.Attr.float "factor" factor ]
        | None -> [])

(* --- reporting ---------------------------------------------------------- *)

let render_tier (s : Lru.stats) name =
  Printf.sprintf
    "%s: hits=%d misses=%d insertions=%d evictions=%d flushes=%d entries=%d \
     weight=%d"
    name s.Lru.hits s.Lru.misses s.Lru.insertions s.Lru.evictions s.Lru.flushes
    s.Lru.entries s.Lru.weight

let render_stats t =
  let c = counters t in
  let st, pl, re = tier_stats t in
  String.concat "\n"
    [
      Printf.sprintf
        "server: requests=%d queries=%d admitted=%d queued=%d rejected=%d \
         failed=%d invalidations=%d epoch=%d work=%d"
        c.requests c.queries c.admitted c.queued c.rejected c.failed
        c.invalidations (stats_epoch t) c.executed_work;
      render_tier st "statement";
      render_tier pl "plan";
      render_tier re "result";
    ]

(* --- lifecycle / protocol ------------------------------------------------ *)

let shutdown t =
  if not (Atomic.exchange t.closed true) then begin
    (* wake queued admissions so their sessions can fail out *)
    Mutex.protect t.adm_m (fun () -> ());
    Condition.broadcast t.adm_cv;
    R.Domain_pool.shutdown t.pool
  end

let handle t req =
  bump (fun c -> { c with requests = c.requests + 1 }) t;
  match req with
  | Protocol.Query { view; strategy; reduce } -> query t ~view ~strategy ~reduce
  | Protocol.Invalidate { table; factor } -> (
      match
        if table = "" then Ok None
        else if factor <= 0.0 then
          Error (Printf.sprintf "bad skew factor %g for table %s" factor table)
        else Ok (Some (table, factor))
      with
      | Error msg ->
          bump (fun c -> { c with failed = c.failed + 1 }) t;
          Protocol.Failed msg
      | Ok skew -> (
          match invalidate ?skew t with
          | () ->
              Protocol.Info
                (Printf.sprintf "invalidated; stats epoch now %d"
                   (stats_epoch t))
          | exception Invalid_argument msg ->
              bump (fun c -> { c with failed = c.failed + 1 }) t;
              Protocol.Failed msg))
  | Protocol.Stats -> Protocol.Info (render_stats t)
  | Protocol.Shutdown ->
      shutdown t;
      Protocol.Info "shutting down"

let serve_unix ?(session_threads = true) t ~socket =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX socket);
  Unix.listen sock 64;
  let stop = Atomic.make false in
  let threads = ref [] in
  let session fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rec loop () =
      match Protocol.read_request ic with
      | None -> ()
      | Some req -> (
          let reply = handle t req in
          Protocol.write_reply oc reply;
          match req with
          | Protocol.Shutdown -> Atomic.set stop true
          | _ -> loop ())
    in
    (try loop () with
    | Protocol.Protocol_error msg -> (
        try Protocol.write_reply oc (Protocol.Failed ("protocol error: " ^ msg))
        with Sys_error _ -> ())
    | End_of_file | Sys_error _ -> ());
    close_out_noerr oc
  in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.select [ sock ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ ->
          let fd, _ = Unix.accept sock in
          if session_threads then
            threads := Thread.create session fd :: !threads
          else session fd);
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      List.iter Thread.join !threads;
      shutdown t)
    accept_loop
