(* Length-prefixed framing: [u32 field-count][u32 len + bytes]*.

   Both directions use the same frame shape, so the encoder/decoder pair
   below is shared by requests and replies; the per-message code only
   maps constructors to and from field lists.  Limits keep a corrupt or
   hostile peer from driving an unbounded allocation: a frame may carry
   at most 16 fields of at most 64 MB each. *)

exception Protocol_error of string

let max_fields = 16
let max_field_bytes = 64 * 1024 * 1024

type request =
  | Query of { view : string; strategy : string; reduce : bool }
  | Invalidate of { table : string; factor : float }
  | Stats
  | Metrics
  | Health
  | Shutdown

type tiers = { statement_hit : bool; plan_hit : bool; result_hit : bool }

type reply =
  | Result of { xml : string; tiers : tiers; work : int; est_cost : float }
  | Info of string
  | Rejected of string
  | Failed of string

(* --- frames ------------------------------------------------------------- *)

let write_u32 oc n =
  output_binary_int oc n (* 4 bytes, big-endian; n is trusted small *)

let write_frame oc fields =
  write_u32 oc (List.length fields);
  List.iter
    (fun f ->
      write_u32 oc (String.length f);
      output_string oc f)
    fields;
  flush oc

(* First u32 of a frame: a clean EOF here is a closed peer, not an
   error.  EOF anywhere later means a truncated frame. *)
let read_frame ic =
  match input_binary_int ic with
  | exception End_of_file -> None
  | count ->
      if count < 1 || count > max_fields then
        raise
          (Protocol_error (Printf.sprintf "bad frame field count %d" count));
      let field () =
        match input_binary_int ic with
        | exception End_of_file ->
            raise (Protocol_error "truncated frame (missing field length)")
        | len ->
            if len < 0 || len > max_field_bytes then
              raise
                (Protocol_error (Printf.sprintf "bad field length %d" len));
            (try really_input_string ic len
             with End_of_file ->
               raise (Protocol_error "truncated frame (short field)"))
      in
      Some (List.init count (fun _ -> field ()))

(* --- field codecs ------------------------------------------------------- *)

let bool_field b = if b then "1" else "0"

let bool_of_field ~what = function
  | "1" -> true
  | "0" -> false
  | s -> raise (Protocol_error (Printf.sprintf "bad %s flag %S" what s))

let int_of_field ~what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> raise (Protocol_error (Printf.sprintf "bad %s %S" what s))

let float_of_field ~what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Protocol_error (Printf.sprintf "bad %s %S" what s))

(* --- requests ----------------------------------------------------------- *)

let write_request oc = function
  | Query { view; strategy; reduce } ->
      write_frame oc [ "Q"; view; strategy; bool_field reduce ]
  | Invalidate { table; factor } ->
      write_frame oc [ "I"; table; Printf.sprintf "%h" factor ]
  | Stats -> write_frame oc [ "S" ]
  | Metrics -> write_frame oc [ "M" ]
  | Health -> write_frame oc [ "H" ]
  | Shutdown -> write_frame oc [ "X" ]

let read_request ic =
  match read_frame ic with
  | None -> None
  | Some [ "Q"; view; strategy; reduce ] ->
      Some (Query { view; strategy; reduce = bool_of_field ~what:"reduce" reduce })
  | Some [ "I"; table; factor ] ->
      Some (Invalidate { table; factor = float_of_field ~what:"factor" factor })
  | Some [ "S" ] -> Some Stats
  | Some [ "M" ] -> Some Metrics
  | Some [ "H" ] -> Some Health
  | Some [ "X" ] -> Some Shutdown
  | Some ((("M" | "H") as tag) :: _ :: _) ->
      (* telemetry requests carry no operands; extra fields are a
         malformed frame, not silently-ignored payload *)
      raise
        (Protocol_error
           (Printf.sprintf "telemetry request %S takes no fields" tag))
  | Some (tag :: _) ->
      raise (Protocol_error (Printf.sprintf "bad request frame (tag %S)" tag))
  | Some [] -> raise (Protocol_error "empty request frame")

(* --- replies ------------------------------------------------------------ *)

let write_reply oc = function
  | Result { xml; tiers; work; est_cost } ->
      write_frame oc
        [
          "R";
          xml;
          bool_field tiers.statement_hit;
          bool_field tiers.plan_hit;
          bool_field tiers.result_hit;
          string_of_int work;
          Printf.sprintf "%h" est_cost;
        ]
  | Info s -> write_frame oc [ "i"; s ]
  | Rejected s -> write_frame oc [ "r"; s ]
  | Failed s -> write_frame oc [ "f"; s ]

let read_reply ic =
  match read_frame ic with
  | None -> None
  | Some [ "R"; xml; sh; ph; rh; work; est ] ->
      Some
        (Result
           {
             xml;
             tiers =
               {
                 statement_hit = bool_of_field ~what:"statement_hit" sh;
                 plan_hit = bool_of_field ~what:"plan_hit" ph;
                 result_hit = bool_of_field ~what:"result_hit" rh;
               };
             work = int_of_field ~what:"work" work;
             est_cost = float_of_field ~what:"est_cost" est;
           })
  | Some [ "i"; s ] -> Some (Info s)
  | Some [ "r"; s ] -> Some (Rejected s)
  | Some [ "f"; s ] -> Some (Failed s)
  | Some (tag :: _) ->
      raise (Protocol_error (Printf.sprintf "bad reply frame (tag %S)" tag))
  | Some [] -> raise (Protocol_error "empty reply frame")

let request_name = function
  | Query _ -> "query"
  | Invalidate _ -> "invalidate"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Health -> "health"
  | Shutdown -> "shutdown"

let reply_name = function
  | Result _ -> "result"
  | Info _ -> "info"
  | Rejected _ -> "rejected"
  | Failed _ -> "failed"
