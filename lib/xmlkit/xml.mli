(** XML documents as ordered trees.

    The middleware constructs elements and character data; attributes are
    carried for generality. *)

type node = Element of element | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

type t

val element : ?attrs:(string * string) list -> string -> node list -> element
val elem : ?attrs:(string * string) list -> string -> node list -> node
(** Like {!element} but wrapped as a {!node}. *)

val text : string -> node
val document : element -> t
val root : t -> element

val count_elements : t -> int
(** Number of element nodes, root included. *)

val depth : t -> int
(** Maximum element nesting depth (root = 1). *)

val children_named : element -> string -> element list
(** Child elements with the given tag, in document order. *)

val child_elements : element -> element list
val text_content : element -> string
(** Concatenated character data directly under the element. *)

val equal_node : node -> node -> bool
val equal_element : element -> element -> bool
val equal : t -> t -> bool

val fold_elements : ('a -> element -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all elements. *)
