(** XML serialization. *)

val escape : string -> string
(** Escapes the five XML-special characters as entities. *)

val to_string : Xml.t -> string
(** Compact rendering; empty elements use self-closing tags. *)

val to_pretty_string : Xml.t -> string
(** Indented rendering (2 spaces per level); text-only elements stay on
    one line. *)

val byte_size : Xml.t -> int
(** Size of the compact rendering in bytes. *)
