(** A small XPath subset for extracting fragments of materialized views.

    Grammar:
    {v
    path := ('/' | '//') step { ('/' | '//') step }
    step := (NAME | '*') { pred }
    pred := '[' INT ']'                  positional, 1-based
          | '[' NAME '=' "'" text "'" ']'  child-text equality
          | '[' NAME ']'                 child existence
    v}

    ['/'] selects children, ['//'] descendants-or-self; the first step
    addresses the root element (e.g. [/suppliers/supplier]). *)

exception Parse_error of string

type t

val parse : string -> t
(** Raises {!Parse_error} with an offset on malformed paths. *)

val select_elements : Xml.t -> string -> Xml.element list
(** Matching elements in document order. *)

val select_text : Xml.t -> string -> string list
(** Text content of each matching element. *)

val count : Xml.t -> string -> int
val exists : Xml.t -> string -> bool
