(** A small, strict XML parser.

    Covers the documents this system emits: elements, attributes,
    character data, the five standard entities, self-closing tags, and an
    optional XML declaration.  [parse (Serialize.to_string doc)]
    reconstructs [doc] up to whitespace-only text nodes (round-trip is
    enforced by the test suite). *)

exception Parse_error of string * int
(** Message and byte offset. *)

val parse : string -> Xml.t
