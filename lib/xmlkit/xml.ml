(* XML documents as ordered trees.  The middleware only needs elements
   and character data (RXL constructs no attributes in the paper's
   queries), but attributes are carried for generality. *)

type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

type t = { root : element }

let element ?(attrs = []) tag children = { tag; attrs; children }
let elem ?attrs tag children = Element (element ?attrs tag children)
let text s = Text s
let document root = { root }
let root t = t.root

let rec count_elements_node = function
  | Text _ -> 0
  | Element e ->
      1 + List.fold_left (fun acc c -> acc + count_elements_node c) 0 e.children

let count_elements t = count_elements_node (Element t.root)

let rec depth_node = function
  | Text _ -> 0
  | Element e ->
      1 + List.fold_left (fun acc c -> max acc (depth_node c)) 0 e.children

let depth t = depth_node (Element t.root)

(* Children elements with a given tag, in document order. *)
let children_named e tag =
  List.filter_map
    (function Element c when c.tag = tag -> Some c | _ -> None)
    e.children

let child_elements e =
  List.filter_map (function Element c -> Some c | Text _ -> None) e.children

(* Concatenated character data directly under [e]. *)
let text_content e =
  String.concat ""
    (List.filter_map (function Text s -> Some s | Element _ -> None) e.children)

let rec equal_node a b =
  match (a, b) with
  | Text x, Text y -> x = y
  | Element x, Element y -> equal_element x y
  | _ -> false

and equal_element a b =
  a.tag = b.tag && a.attrs = b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal_node a.children b.children

let equal a b = equal_element a.root b.root

(* Fold over elements in document order (pre-order). *)
let fold_elements f acc t =
  let rec go acc = function
    | Text _ -> acc
    | Element e -> List.fold_left go (f acc e) e.children
  in
  go acc (Element t.root)
