(** DTDs, restricted to the shape XML-publishing views use (paper
    Fig. 2): each element is #PCDATA or a sequence of child element names
    with multiplicities 1 ? + * — the same multiplicities that label
    view-tree edges. *)

type multiplicity = One | Opt | Plus | Star

type content = Pcdata | Children of (string * multiplicity) list

type element_decl = { el_name : string; el_content : content }

type t

val multiplicity_to_string : multiplicity -> string
(** ["", "?", "+", "*"]. *)

val multiplicity_of_string : string -> multiplicity
(** Inverse of {!multiplicity_to_string}; raises on anything else. *)

val admits : multiplicity -> int -> bool
(** [admits m n]: does a run of [n] children satisfy [m]? *)

val create : root:string -> element_decl list -> t
(** Raises [Invalid_argument] if the root or any referenced child is
    undeclared. *)

val root_name : t -> string
val decls : t -> element_decl list
val find : t -> string -> element_decl option

val to_string : t -> string
(** [<!ELEMENT …>] syntax. *)
