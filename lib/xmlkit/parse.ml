(* A small, strict XML parser covering the documents this system emits:
   elements, attributes, character data, the five standard entities, and
   self-closing tags.  No comments, PIs, CDATA or doctypes — enough to
   round-trip Serialize output, which the tests enforce. *)

exception Parse_error of string * int (* message, offset *)

type state = { s : string; mutable i : int }

let fail st msg = raise (Parse_error (msg, st.i))

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let skip_ws st =
  while
    st.i < String.length st.s
    && (match st.s.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.i <- st.i + 1
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name st =
  let start = st.i in
  while st.i < String.length st.s && is_name_char st.s.[st.i] do
    st.i <- st.i + 1
  done;
  if st.i = start then fail st "expected name";
  String.sub st.s start (st.i - start)

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.i <- st.i + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let read_entity st =
  (* at '&' *)
  st.i <- st.i + 1;
  let start = st.i in
  while st.i < String.length st.s && st.s.[st.i] <> ';' do
    st.i <- st.i + 1
  done;
  if st.i >= String.length st.s then fail st "unterminated entity";
  let name = String.sub st.s start (st.i - start) in
  st.i <- st.i + 1;
  match name with
  | "lt" -> '<'
  | "gt" -> '>'
  | "amp" -> '&'
  | "apos" -> '\''
  | "quot" -> '"'
  | _ -> fail st (Printf.sprintf "unknown entity &%s;" name)

let read_text st =
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek st with
    | None | Some '<' -> continue := false
    | Some '&' -> Buffer.add_char buf (read_entity st)
    | Some c ->
        Buffer.add_char buf c;
        st.i <- st.i + 1
  done;
  Buffer.contents buf

let read_attr_value st =
  expect st '"';
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some '"' ->
        st.i <- st.i + 1;
        continue := false
    | Some '&' -> Buffer.add_char buf (read_entity st)
    | Some c ->
        Buffer.add_char buf c;
        st.i <- st.i + 1
  done;
  Buffer.contents buf

let rec read_element st : Xml.element =
  expect st '<';
  let tag = read_name st in
  let attrs = read_attrs st [] in
  match peek st with
  | Some '/' ->
      st.i <- st.i + 1;
      expect st '>';
      Xml.element ~attrs tag []
  | Some '>' ->
      st.i <- st.i + 1;
      let children = read_children st tag [] in
      Xml.element ~attrs tag children
  | _ -> fail st "expected > or />"

and read_attrs st acc =
  skip_ws st;
  match peek st with
  | Some c when is_name_char c ->
      let name = read_name st in
      expect st '=';
      let v = read_attr_value st in
      read_attrs st ((name, v) :: acc)
  | _ -> List.rev acc

and read_children st tag acc =
  match peek st with
  | None -> fail st (Printf.sprintf "unterminated element <%s>" tag)
  | Some '<' ->
      if st.i + 1 < String.length st.s && st.s.[st.i + 1] = '/' then begin
        st.i <- st.i + 2;
        let name = read_name st in
        if name <> tag then
          fail st (Printf.sprintf "mismatched </%s>, expected </%s>" name tag);
        expect st '>';
        List.rev acc
      end
      else
        let child = read_element st in
        read_children st tag (Xml.Element child :: acc)
  | Some _ ->
      let text = read_text st in
      let acc = if text = "" then acc else Xml.Text text :: acc in
      read_children st tag acc

let parse (s : string) : Xml.t =
  let st = { s; i = 0 } in
  skip_ws st;
  (* optional XML declaration *)
  if st.i + 1 < String.length s && s.[st.i] = '<' && s.[st.i + 1] = '?' then begin
    match String.index_from_opt s st.i '>' with
    | Some j -> st.i <- j + 1
    | None -> fail st "unterminated XML declaration"
  end;
  skip_ws st;
  let root = read_element st in
  skip_ws st;
  if st.i <> String.length s then fail st "trailing content after root";
  Xml.document root
