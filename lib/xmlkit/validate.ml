(* DTD validation.  Children are matched sequentially against the
   declared (name, multiplicity) specs; because the DTD shapes we accept
   are sequences of distinct names, greedy run-matching is exact. *)

type error = { path : string; message : string }

let error path fmt = Format.kasprintf (fun message -> { path; message }) fmt

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.path e.message

let rec check_element dtd path (e : Xml.element) errors =
  let path = path ^ "/" ^ e.tag in
  match Dtd.find dtd e.tag with
  | None -> error path "element not declared in DTD" :: errors
  | Some decl -> (
      match decl.el_content with
      | Dtd.Pcdata ->
          List.fold_left
            (fun errs child ->
              match child with
              | Xml.Text _ -> errs
              | Xml.Element c ->
                  error path "unexpected element <%s> in #PCDATA content" c.tag
                  :: errs)
            errors e.children
      | Dtd.Children specs ->
          let children = Xml.child_elements e in
          let text_errs =
            List.fold_left
              (fun errs child ->
                match child with
                | Xml.Text s when String.trim s <> "" ->
                    error path "unexpected character data %S" s :: errs
                | _ -> errs)
              errors e.children
          in
          match_children dtd path specs children text_errs)

and match_children dtd path specs children errors =
  match specs with
  | [] -> (
      match children with
      | [] -> errors
      | c :: _ -> error path "unexpected element <%s>" c.Xml.tag :: errors)
  | (name, mult) :: rest ->
      let run, remaining =
        let rec take acc = function
          | (c : Xml.element) :: cs when c.tag = name -> take (c :: acc) cs
          | cs -> (List.rev acc, cs)
        in
        take [] children
      in
      let errors =
        if Dtd.admits mult (List.length run) then errors
        else
          error path "element <%s> occurs %d times, multiplicity is %s%s" name
            (List.length run)
            (match mult with Dtd.One -> "exactly 1" | Dtd.Opt -> "at most 1"
            | Dtd.Plus -> "at least 1" | Dtd.Star -> "any")
            ""
          :: errors
      in
      let errors =
        List.fold_left (fun errs c -> check_element dtd path c errs) errors run
      in
      match_children dtd path rest remaining errors

let validate dtd doc =
  let root = Xml.root doc in
  let errors =
    if root.Xml.tag <> Dtd.root_name dtd then
      [
        error "/"
          "root element is <%s>, DTD declares <%s>" root.Xml.tag
          (Dtd.root_name dtd);
      ]
    else []
  in
  List.rev (check_element dtd "" root errors)

let is_valid dtd doc = validate dtd doc = []
