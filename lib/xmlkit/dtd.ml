(* DTDs, restricted to the shape XML-publishing views need (paper Fig. 2):
   each element is either #PCDATA or a sequence of child element names,
   each with a multiplicity 1 ? + *.  These multiplicities are exactly the
   edge labels of the view tree (Sec. 3.5). *)

type multiplicity = One | Opt | Plus | Star

type content = Pcdata | Children of (string * multiplicity) list

type element_decl = { el_name : string; el_content : content }

type t = { root_name : string; decls : element_decl list }

let multiplicity_to_string = function
  | One -> ""
  | Opt -> "?"
  | Plus -> "+"
  | Star -> "*"

let multiplicity_of_string = function
  | "" -> One
  | "?" -> Opt
  | "+" -> Plus
  | "*" -> Star
  | s -> invalid_arg ("Dtd.multiplicity_of_string: " ^ s)

(* Does a run of [n] children satisfy the multiplicity? *)
let admits m n =
  match m with
  | One -> n = 1
  | Opt -> n = 0 || n = 1
  | Plus -> n >= 1
  | Star -> n >= 0

let create ~root decls =
  List.iter
    (fun d ->
      match d.el_content with
      | Pcdata -> ()
      | Children specs ->
          List.iter
            (fun (child, _) ->
              if not (List.exists (fun d' -> d'.el_name = child) decls) then
                invalid_arg
                  (Printf.sprintf "Dtd.create: %s references undeclared %s"
                     d.el_name child))
            specs)
    decls;
  if not (List.exists (fun d -> d.el_name = root) decls) then
    invalid_arg (Printf.sprintf "Dtd.create: undeclared root %s" root);
  { root_name = root; decls }

let root_name t = t.root_name
let decls t = t.decls
let find t name = List.find_opt (fun d -> d.el_name = name) t.decls

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf "<!ELEMENT ";
      Buffer.add_string buf d.el_name;
      Buffer.add_char buf ' ';
      (match d.el_content with
      | Pcdata -> Buffer.add_string buf "(#PCDATA)"
      | Children [] -> Buffer.add_string buf "EMPTY"
      | Children specs ->
          Buffer.add_char buf '(';
          List.iteri
            (fun i (name, m) ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf name;
              Buffer.add_string buf (multiplicity_to_string m))
            specs;
          Buffer.add_char buf ')');
      Buffer.add_string buf ">\n")
    t.decls;
  Buffer.contents buf
