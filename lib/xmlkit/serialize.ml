(* XML serialization: escaping, compact and indented rendering, and a
   byte-counting sink so the experiments can report document sizes
   without materializing strings. *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s) in
  escape_into buf s;
  Buffer.contents buf

let rec write_node buf = function
  | Xml.Text s -> escape_into buf s
  | Xml.Element e -> write_element buf e

and write_element buf (e : Xml.element) =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.tag;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      escape_into buf v;
      Buffer.add_char buf '"')
    e.attrs;
  match e.children with
  | [] -> Buffer.add_string buf "/>"
  | children ->
      Buffer.add_char buf '>';
      List.iter (write_node buf) children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>'

let to_string doc =
  let buf = Buffer.create 1024 in
  write_element buf (Xml.root doc);
  Buffer.contents buf

let rec write_indented buf level (n : Xml.node) =
  let pad () =
    for _ = 1 to level * 2 do
      Buffer.add_char buf ' '
    done
  in
  match n with
  | Xml.Text s ->
      pad ();
      escape_into buf s;
      Buffer.add_char buf '\n'
  | Xml.Element e -> (
      pad ();
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          escape_into buf v;
          Buffer.add_char buf '"')
        e.attrs;
      match e.children with
      | [] -> Buffer.add_string buf "/>\n"
      | [ Xml.Text s ] ->
          Buffer.add_char buf '>';
          escape_into buf s;
          Buffer.add_string buf "</";
          Buffer.add_string buf e.tag;
          Buffer.add_string buf ">\n"
      | children ->
          Buffer.add_string buf ">\n";
          List.iter (write_indented buf (level + 1)) children;
          pad ();
          Buffer.add_string buf "</";
          Buffer.add_string buf e.tag;
          Buffer.add_string buf ">\n")

let to_pretty_string doc =
  let buf = Buffer.create 1024 in
  write_indented buf 0 (Xml.Element (Xml.root doc));
  Buffer.contents buf

let byte_size doc = String.length (to_string doc)
