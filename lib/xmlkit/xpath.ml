(* A small XPath subset for extracting fragments of materialized views —
   the paper's users "query the XML view, extracting small fragments"
   (Sec. 1); this gives downstream users that ability over documents this
   library produces.

   Grammar:
     path  := ('/' | '//') step { ('/' | '//') step }
     step  := (NAME | '*') { pred }
     pred  := '[' INT ']'                      positional, 1-based
            | '[' NAME '=' '\'' text '\'' ']'  child-text equality
            | '[' NAME ']'                     child existence

   '/' selects children, '//' descendants-or-self.  The root element
   itself is addressed by the first step (as in standard XPath:
   /suppliers/supplier). *)

exception Parse_error of string

type pred =
  | Position of int
  | Child_equals of string * string
  | Child_exists of string

type step = {
  descendant : bool; (* reached via // *)
  name : string option; (* None = '*' *)
  preds : pred list;
}

type t = step list

(* --- parsing ------------------------------------------------------------ *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let read_name () =
    let start = !pos in
    while !pos < n && is_name_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected name";
    String.sub s start (!pos - start)
  in
  let read_pred () =
    (* at '[' *)
    incr pos;
    let p =
      match peek () with
      | Some c when c >= '0' && c <= '9' ->
          let start = !pos in
          while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
            incr pos
          done;
          Position (int_of_string (String.sub s start (!pos - start)))
      | Some _ ->
          let name = read_name () in
          if peek () = Some '=' then begin
            incr pos;
            if peek () <> Some '\'' then fail "expected quoted string";
            incr pos;
            let start = !pos in
            while !pos < n && s.[!pos] <> '\'' do
              incr pos
            done;
            if !pos >= n then fail "unterminated string";
            let text = String.sub s start (!pos - start) in
            incr pos;
            Child_equals (name, text)
          end
          else Child_exists name
      | None -> fail "unterminated predicate"
    in
    if peek () <> Some ']' then fail "expected ]";
    incr pos;
    p
  in
  let read_step descendant =
    let name =
      if peek () = Some '*' then begin
        incr pos;
        None
      end
      else Some (read_name ())
    in
    let preds = ref [] in
    while peek () = Some '[' do
      preds := read_pred () :: !preds
    done;
    { descendant; name; preds = List.rev !preds }
  in
  if n = 0 || s.[0] <> '/' then fail "path must start with /";
  let steps = ref [] in
  while !pos < n do
    if s.[!pos] <> '/' then fail "expected /";
    incr pos;
    let descendant =
      if peek () = Some '/' then begin
        incr pos;
        true
      end
      else false
    in
    steps := read_step descendant :: !steps
  done;
  if !steps = [] then fail "empty path";
  List.rev !steps

(* --- evaluation ---------------------------------------------------------- *)

let rec descendants_or_self (e : Xml.element) : Xml.element list =
  e :: List.concat_map descendants_or_self (Xml.child_elements e)

let name_matches step (e : Xml.element) =
  match step.name with None -> true | Some nm -> e.Xml.tag = nm

let pred_holds (e : Xml.element) = function
  | Position _ -> true (* handled at the candidate-list level *)
  | Child_exists name -> Xml.children_named e name <> []
  | Child_equals (name, text) ->
      List.exists
        (fun c -> Xml.text_content c = text)
        (Xml.children_named e name)

let apply_preds preds (candidates : Xml.element list) : Xml.element list =
  List.fold_left
    (fun cands p ->
      match p with
      | Position k -> (
          match List.nth_opt cands (k - 1) with Some e -> [ e ] | None -> [])
      | p -> List.filter (fun e -> pred_holds e p) cands)
    candidates preds

let select_elements (doc : Xml.t) (path : string) : Xml.element list =
  let steps = parse path in
  (* context = list of elements; the first step matches against the root
     element itself (or any descendant for //) *)
  let initial (step : step) =
    let pool =
      if step.descendant then descendants_or_self (Xml.root doc)
      else [ Xml.root doc ]
    in
    apply_preds step.preds (List.filter (name_matches step) pool)
  in
  let advance (ctx : Xml.element list) (step : step) =
    List.concat_map
      (fun e ->
        let pool =
          if step.descendant then
            List.concat_map descendants_or_self (Xml.child_elements e)
          else Xml.child_elements e
        in
        apply_preds step.preds (List.filter (name_matches step) pool))
      ctx
  in
  match steps with
  | [] -> []
  | first :: rest -> List.fold_left advance (initial first) rest

let select_text doc path =
  List.map Xml.text_content (select_elements doc path)

let count doc path = List.length (select_elements doc path)

let exists doc path = select_elements doc path <> []
