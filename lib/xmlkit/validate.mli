(** DTD validation. *)

type error = { path : string; message : string }

val pp_error : Format.formatter -> error -> unit

val validate : Dtd.t -> Xml.t -> error list
(** All violations, in document order (empty = valid).  Checks the root
    tag, declaredness of every element, #PCDATA purity, and child
    sequences against the declared multiplicities. *)

val is_valid : Dtd.t -> Xml.t -> bool
