(** SplitMix64 deterministic PRNG.

    Everything the TPC-H generator emits derives from one seed, so a
    (seed, scale) configuration reproduces the identical instance. *)

type t

val create : int64 -> t
val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises on [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
val split : t -> string -> t
(** Derive an independent labelled sub-stream (one per table). *)
