(** TPC-H-style database generator (paper Fig. 1 schema fragment).

    Ratios between tables follow TPC-H's shape; absolute sizes are scaled
    by [scale].  Two properties the paper's experiments depend on are
    guaranteed: some suppliers supply no parts, and some supplied parts
    have no pending orders — the rows that make outer joins matter. *)

type config = {
  scale : float;
  seed : int64;
  supplier_no_part_fraction : float;
  partsupp_no_order_fraction : float;
}

val config :
  ?seed:int64 ->
  ?supplier_no_part_fraction:float ->
  ?partsupp_no_order_fraction:float ->
  float ->
  config
(** [config scale] with defaults seed 42, 10% part-less suppliers, 10%
    order-less supplied parts.  Raises on non-positive scale. *)

val schema_tables : Relational.Schema.table list
(** The eight tables of the paper's Fig. 1 with keys and foreign keys. *)

val empty_database : unit -> Relational.Database.t
(** The schema with no rows. *)

val generate : config -> Relational.Database.t
(** Deterministic: equal configs produce identical instances, with
    referential integrity (checked by the test suite). *)

val figure8_database : unit -> Relational.Database.t
(** The tiny fixed instance of the paper's Fig. 8, for unit tests and
    documentation examples. *)
