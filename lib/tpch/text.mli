(** Word corpus for generated names, in the spirit of TPC-H dbgen's
    grammar-based text.  Part names follow dbgen's finish+material
    pattern ("plated brass", "anodized steel" — the paper's Fig. 8 uses
    exactly these). *)

val finishes : string array
val materials : string array
val sizes : string array
val company_suffixes : string array
val given_names : string array
val streets : string array

val nations_pool : (string * int) array
(** (nation name, region index) pairs — 25 nations, as in TPC-H. *)

val regions_pool : string array
val customer_first : string array
val customer_last : string array

(** {1 Drawing random names} *)

val part_name : Rng.t -> string
val supplier_name : Rng.t -> string
val customer_name : Rng.t -> string
val address : Rng.t -> string
val phone : Rng.t -> string
val brand : Rng.t -> string
val manufacturer : Rng.t -> string
val size : Rng.t -> string
