(* TPC-H-style database generator for the schema fragment of the paper's
   Fig. 1.  Ratios between tables follow TPC-H's shape (orders and
   lineitems dominate); absolute sizes are scaled by [scale] so the
   512-plan exhaustive experiment stays laptop-sized.

   Two properties the experiments depend on are guaranteed:
   - some suppliers supply no parts (so supplier->part needs an outer join),
   - some supplied parts have no pending orders (part->order likewise). *)

module R = Relational

type config = {
  scale : float;
  seed : int64;
  supplier_no_part_fraction : float;
  partsupp_no_order_fraction : float;
}

let config ?(seed = 42L) ?(supplier_no_part_fraction = 0.1)
    ?(partsupp_no_order_fraction = 0.1) scale =
  if scale <= 0.0 then invalid_arg "Gen.config: scale must be positive";
  { scale; seed; supplier_no_part_fraction; partsupp_no_order_fraction }

(* Table cardinalities at a given scale. *)
type sizes = {
  regions : int;
  nations : int;
  suppliers : int;
  parts : int;
  customers : int;
  orders : int;
}

let sizes_of cfg =
  let s = cfg.scale in
  let scaled base = max 2 (int_of_float (Float.round (float_of_int base *. s))) in
  {
    regions = min 5 (max 2 (scaled 5));
    nations = min 25 (max 3 (scaled 25));
    suppliers = scaled 50;
    parts = scaled 200;
    customers = scaled 75;
    orders = scaled 500;
  }

(* --- schema ----------------------------------------------------------- *)

let schema_tables : R.Schema.table list =
  let open R.Schema in
  let open R.Value in
  [
    table "Region" ~key:[ "regionkey" ]
      [ column "regionkey" TInt; column "name" TString ];
    table "Nation" ~key:[ "nationkey" ]
      ~foreign_keys:
        [ { fk_cols = [ "regionkey" ]; ref_table = "Region"; ref_cols = [ "regionkey" ] } ]
      [ column "nationkey" TInt; column "name" TString; column "regionkey" TInt ];
    table "Supplier" ~key:[ "suppkey" ]
      ~foreign_keys:
        [ { fk_cols = [ "nationkey" ]; ref_table = "Nation"; ref_cols = [ "nationkey" ] } ]
      [
        column "suppkey" TInt; column "name" TString; column "addr" TString;
        column "nationkey" TInt;
      ];
    table "Part" ~key:[ "partkey" ]
      [
        column "partkey" TInt; column "name" TString; column "mfgr" TString;
        column "brand" TString; column "size" TString; column "retail" TFloat;
      ];
    table "PartSupp"
      ~key:[ "partkey"; "suppkey" ]
      ~foreign_keys:
        [
          { fk_cols = [ "partkey" ]; ref_table = "Part"; ref_cols = [ "partkey" ] };
          { fk_cols = [ "suppkey" ]; ref_table = "Supplier"; ref_cols = [ "suppkey" ] };
        ]
      [ column "partkey" TInt; column "suppkey" TInt; column "availqty" TInt ];
    table "Customer" ~key:[ "custkey" ]
      ~foreign_keys:
        [ { fk_cols = [ "nationkey" ]; ref_table = "Nation"; ref_cols = [ "nationkey" ] } ]
      [
        column "custkey" TInt; column "name" TString; column "addr" TString;
        column "nationkey" TInt; column "ph" TString;
      ];
    table "Orders" ~key:[ "orderkey" ]
      ~foreign_keys:
        [ { fk_cols = [ "custkey" ]; ref_table = "Customer"; ref_cols = [ "custkey" ] } ]
      [
        column "orderkey" TInt; column "custkey" TInt; column "status" TString;
        column "price" TFloat; column "date" TDate;
      ];
    table "LineItem"
      ~key:[ "orderkey"; "lno" ]
      ~foreign_keys:
        [
          { fk_cols = [ "orderkey" ]; ref_table = "Orders"; ref_cols = [ "orderkey" ] };
          {
            fk_cols = [ "partkey"; "suppkey" ];
            ref_table = "PartSupp";
            ref_cols = [ "partkey"; "suppkey" ];
          };
        ]
      [
        column "orderkey" TInt; column "partkey" TInt; column "suppkey" TInt;
        column "lno" TInt; column "qty" TInt; column "prc" TFloat;
      ];
  ]

let empty_database () =
  let db = R.Database.create () in
  List.iter (R.Database.add_table db) schema_tables;
  db

(* --- generation ------------------------------------------------------- *)

let generate cfg : R.Database.t =
  let open R.Value in
  let db = empty_database () in
  let root = Rng.create cfg.seed in
  let sz = sizes_of cfg in

  let regions =
    List.init sz.regions (fun i ->
        [| Int i; String Text.regions_pool.(i mod Array.length Text.regions_pool) |])
  in
  R.Database.load db "Region" regions;

  let nations =
    List.init sz.nations (fun i ->
        let name, region = Text.nations_pool.(i mod Array.length Text.nations_pool) in
        [| Int i; String name; Int (region mod sz.regions) |])
  in
  R.Database.load db "Nation" nations;

  let rng = Rng.split root "supplier" in
  let suppliers =
    List.init sz.suppliers (fun i ->
        [|
          Int i; String (Text.supplier_name rng); String (Text.address rng);
          Int (Rng.int rng sz.nations);
        |])
  in
  R.Database.load db "Supplier" suppliers;

  let rng = Rng.split root "part" in
  let parts =
    List.init sz.parts (fun i ->
        [|
          Int i; String (Text.part_name rng); String (Text.manufacturer rng);
          String (Text.brand rng); String (Text.size rng);
          Float (900.0 +. (Rng.float rng *. 100.0));
        |])
  in
  R.Database.load db "Part" parts;

  (* Suppliers in the final fraction of the key space supply nothing. *)
  let rng = Rng.split root "partsupp" in
  let supplying =
    max 1
      (int_of_float
         (Float.round
            (float_of_int sz.suppliers *. (1.0 -. cfg.supplier_no_part_fraction))))
  in
  let seen = Hashtbl.create 256 in
  let partsupp = ref [] in
  List.iteri
    (fun p _ ->
      let copies = 1 + Rng.int rng 2 in
      for _ = 1 to copies do
        let s = Rng.int rng supplying in
        if not (Hashtbl.mem seen (p, s)) then begin
          Hashtbl.add seen (p, s) ();
          partsupp := [| Int p; Int s; Int (Rng.range rng 1 9999) |] :: !partsupp
        end
      done)
    parts;
  let partsupp = List.rev !partsupp in
  R.Database.load db "PartSupp" partsupp;

  let rng = Rng.split root "customer" in
  let customers =
    List.init sz.customers (fun i ->
        [|
          Int i; String (Text.customer_name rng); String (Text.address rng);
          Int (Rng.int rng sz.nations); String (Text.phone rng);
        |])
  in
  R.Database.load db "Customer" customers;

  let rng = Rng.split root "orders" in
  let statuses = [| "O"; "F"; "P" |] in
  let orders =
    List.init sz.orders (fun i ->
        [|
          Int i; Int (Rng.int rng sz.customers); String (Rng.pick rng statuses);
          Float (1000.0 +. (Rng.float rng *. 99000.0));
          Date (Rng.range rng 8000 11000);
        |])
  in
  R.Database.load db "Orders" orders;

  (* Lineitems pick only from the leading fraction of partsupp pairs, so
     the tail pairs are supplied parts with no pending orders. *)
  let rng = Rng.split root "lineitem" in
  let ps_arr = Array.of_list partsupp in
  let orderable =
    max 1
      (int_of_float
         (Float.round
            (float_of_int (Array.length ps_arr)
            *. (1.0 -. cfg.partsupp_no_order_fraction))))
  in
  let lineitems = ref [] in
  List.iteri
    (fun o _ ->
      let n = 1 + Rng.int rng 5 in
      for lno = 1 to n do
        let ps = ps_arr.(Rng.int rng orderable) in
        let partkey = ps.(0) and suppkey = ps.(1) in
        lineitems :=
          [|
            Int o; partkey; suppkey; Int lno; Int (Rng.range rng 1 50);
            Float (1.0 +. (Rng.float rng *. 999.0));
          |]
          :: !lineitems
      done)
    orders;
  R.Database.load db "LineItem" (List.rev !lineitems);

  (* Total-participation inclusions that hold by construction; the
     labeler's C2 test reads these. *)
  List.iter
    (R.Database.declare_inclusion db)
    [
      {
        R.Schema.inc_table = "Orders"; inc_cols = [ "orderkey" ];
        inc_ref_table = "LineItem"; inc_ref_cols = [ "orderkey" ];
      };
    ];
  db

(* A tiny fixed instance mirroring the paper's Fig. 8 fragment, for unit
   tests and documentation examples. *)
let figure8_database () =
  let open R.Value in
  let db = empty_database () in
  R.Database.load db "Region"
    [ [| Int 1; String "America" |]; [| Int 2; String "Iberia" |]; [| Int 3; String "Europe" |] ];
  R.Database.load db "Nation"
    [
      [| Int 24; String "USA"; Int 1 |];
      [| Int 3; String "Spain"; Int 2 |];
      [| Int 19; String "France"; Int 3 |];
    ];
  R.Database.load db "Supplier"
    [
      [| Int 1; String "USA Metalworks"; String "New York"; Int 24 |];
      [| Int 2; String "Romana Espanola"; String "Madrid"; Int 3 |];
      [| Int 3; String "Fonderie Francais"; String "Paris"; Int 19 |];
    ];
  R.Database.load db "Part"
    [
      [| Int 4; String "plated brass"; String "mfgr#3"; String "Brand1"; String "S"; Float 904.00 |];
      [| Int 12; String "anodized steel"; String "mfgr#4"; String "Brand2"; String "M"; Float 912.01 |];
      [| Int 20; String "polished nickel"; String "mfgr#1"; String "Brand3"; String "L"; Float 920.02 |];
    ];
  R.Database.load db "PartSupp"
    [
      [| Int 4; Int 1; Int 100 |];
      [| Int 12; Int 1; Int 320 |];
      [| Int 20; Int 3; Int 64 |];
    ];
  R.Database.load db "Customer" [];
  R.Database.load db "Orders" [];
  R.Database.load db "LineItem" [];
  db
