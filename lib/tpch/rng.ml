(* SplitMix64: tiny, fast, high-quality deterministic PRNG.  Every stream
   the generator uses derives from a single seed, so a (seed, scale)
   configuration always produces the identical database instance. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* Uniform int in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

(* Derive an independent sub-stream, e.g. one per table. *)
let split t label =
  let h = Int64.of_int (Hashtbl.hash label) in
  create (Int64.logxor (next_int64 t) (Int64.mul h 0x2545F4914F6CDD1DL))
