(* Word corpus for generated names, in the spirit of TPC-H dbgen's
   grammar-based text.  Part names follow dbgen's finish+material pattern
   ("plated brass", "anodized steel" — the paper's Fig. 8 uses exactly
   these). *)

let finishes =
  [|
    "plated"; "anodized"; "polished"; "burnished"; "brushed"; "lacquered";
    "galvanized"; "tempered"; "forged"; "machined";
  |]

let materials =
  [|
    "brass"; "steel"; "nickel"; "copper"; "tin"; "zinc"; "chrome"; "cobalt";
    "titanium"; "aluminum"; "bronze"; "pewter";
  |]

let sizes = [| "S"; "M"; "L"; "XL" |]

let company_suffixes =
  [| "Metalworks"; "Foundry"; "Industries"; "Supply"; "Works"; "Forge" |]

let given_names =
  [|
    "Acme"; "Apex"; "Global"; "United"; "Pacific"; "Atlantic"; "Northern";
    "Southern"; "Eastern"; "Western"; "Summit"; "Pioneer"; "Sterling";
    "Imperial"; "Crescent"; "Meridian";
  |]

let streets =
  [|
    "Main St"; "Oak Ave"; "Harbor Rd"; "Mill Ln"; "Foundry Way"; "Dock St";
    "Union Sq"; "Market St"; "Iron Rd"; "Anchor Blvd";
  |]

let nations_pool =
  [|
    ("USA", 0); ("Spain", 1); ("France", 1); ("Japan", 2); ("Brazil", 3);
    ("Canada", 0); ("Germany", 1); ("India", 2); ("China", 2); ("Egypt", 4);
    ("Kenya", 4); ("Mexico", 0); ("Italy", 1); ("Russia", 1); ("Peru", 3);
    ("Argentina", 3); ("Australia", 2); ("Morocco", 4); ("UK", 1);
    ("Indonesia", 2); ("Jordan", 4); ("Iran", 4); ("Vietnam", 2);
    ("Romania", 1); ("Algeria", 4);
  |]

let regions_pool =
  [| "America"; "Europe"; "Asia"; "South America"; "Africa" |]

let customer_first =
  [|
    "Alice"; "Bob"; "Carla"; "Dmitri"; "Elena"; "Farid"; "Grace"; "Hiro";
    "Ines"; "Jorge"; "Kavya"; "Liang"; "Marta"; "Nadia"; "Omar"; "Priya";
  |]

let customer_last =
  [|
    "Anderson"; "Baptiste"; "Chen"; "Dupont"; "Eriksen"; "Fischer"; "Garcia";
    "Hansen"; "Ito"; "Johansson"; "Kumar"; "Lopez"; "Moreau"; "Novak";
    "Okafor"; "Petrov";
  |]

let part_name rng =
  Rng.pick rng finishes ^ " " ^ Rng.pick rng materials

let supplier_name rng =
  Rng.pick rng given_names ^ " " ^ Rng.pick rng company_suffixes

let customer_name rng =
  Rng.pick rng customer_first ^ " " ^ Rng.pick rng customer_last

let address rng =
  Printf.sprintf "%d %s" (Rng.range rng 1 999) (Rng.pick rng streets)

let phone rng =
  Printf.sprintf "%02d-%03d-%03d-%04d" (Rng.range rng 10 34)
    (Rng.range rng 100 999) (Rng.range rng 100 999) (Rng.range rng 1000 9999)

let brand rng = Printf.sprintf "Brand#%d%d" (Rng.range rng 1 5) (Rng.range rng 1 5)

let manufacturer rng = Printf.sprintf "Manufacturer#%d" (Rng.range rng 1 5)

let size rng = Rng.pick rng sizes
