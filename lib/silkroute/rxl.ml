(* RXL (Relational to XML transformation Language) abstract syntax.

   An RXL query combines SQL-style extraction (from/where) with XML-QL
   style construction (construct).  Features per the paper: nested
   queries inside construct clauses, parallel blocks (union), and
   optional explicit Skolem terms on elements. *)

module R = Relational

(* $s iterating over table Supplier. *)
type binding = { var : string; table : string }

type operand =
  | Field of string * string (* $s.name *)
  | Const of R.Value.t

type condition = { op : R.Expr.cmp; left : operand; right : operand }

type node =
  | Element of element
  | Text of operand (* character data: a field or a constant *)
  | Block of query (* nested { from … construct … } sub-query *)

and element = {
  tag : string;
  skolem : string option; (* explicit Skolem function name *)
  content : node list;
}

and query = {
  from_ : binding list;
  where_ : condition list;
  construct : node list;
}

(* A view: a literal document root wrapping one or more parallel
   top-level queries. *)
type view = { root_tag : string; queries : query list }

let binding var table = { var; table }
let cond op left right = { op; left; right }
let field v f = Field (v, f)

let element ?skolem tag content = Element { tag; skolem; content }

let query ?(where_ = []) from_ construct = { from_; where_; construct }

let view root_tag queries = { root_tag; queries }

(* --- well-formedness -------------------------------------------------- *)

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun m -> raise (Ill_formed m)) fmt

(* Check a view against a database schema: bindings name real tables,
   fields name real columns, conditions and content only reference
   in-scope tuple variables. *)
let check (db : R.Database.t) (v : view) =
  let check_operand scope = function
    | Const _ -> ()
    | Field (var, f) -> (
        match List.assoc_opt var scope with
        | None -> ill_formed "unbound tuple variable $%s" var
        | Some table ->
            if not (R.Schema.has_column (R.Database.schema db table) f) then
              ill_formed "table %s has no column %s (via $%s.%s)" table f var f)
  in
  let rec check_query scope (q : query) =
    let scope =
      List.fold_left
        (fun scope (b : binding) ->
          if not (R.Database.mem db b.table) then
            ill_formed "unknown table %s (binding $%s)" b.table b.var;
          if List.mem_assoc b.var scope then
            ill_formed "tuple variable $%s shadows an outer binding" b.var;
          (b.var, b.table) :: scope)
        scope q.from_
    in
    List.iter
      (fun (c : condition) ->
        check_operand scope c.left;
        check_operand scope c.right)
      q.where_;
    if q.construct = [] then ill_formed "query has an empty construct clause";
    (* a construct clause produces elements; character data may only
       appear inside an element of the same block, otherwise its guard
       would be lost when hoisting it to the enclosing element *)
    List.iter
      (function
        | Element _ | Block _ -> ()
        | Text _ ->
            ill_formed
              "construct clauses may not produce bare text; wrap it in an \
               element")
      q.construct;
    List.iter (check_node scope) q.construct
  and check_node scope = function
    | Element e -> List.iter (check_node scope) e.content
    | Text op -> check_operand scope op
    | Block q -> check_query scope q
  in
  List.iter (check_query []) v.queries

(* --- printing --------------------------------------------------------- *)

let operand_to_string = function
  | Field (v, f) -> Printf.sprintf "$%s.%s" v f
  | Const c -> R.Value.to_sql c

let cmp_to_string = function
  | R.Expr.Eq -> "=" | R.Expr.Neq -> "<>" | R.Expr.Lt -> "<"
  | R.Expr.Le -> "<=" | R.Expr.Gt -> ">" | R.Expr.Ge -> ">="

let rec pp_query fmt indent (q : query) =
  let pad = String.make indent ' ' in
  Format.fprintf fmt "%sfrom %s@," pad
    (String.concat ", "
       (List.map (fun (b : binding) -> b.table ^ " $" ^ b.var) q.from_));
  (match q.where_ with
  | [] -> ()
  | conds ->
      Format.fprintf fmt "%swhere %s@," pad
        (String.concat ", "
           (List.map
              (fun c ->
                Printf.sprintf "%s %s %s" (operand_to_string c.left)
                  (cmp_to_string c.op) (operand_to_string c.right))
              conds)));
  Format.fprintf fmt "%sconstruct@," pad;
  List.iter (pp_node fmt (indent + 2)) q.construct

and pp_node fmt indent = function
  | Text op ->
      Format.fprintf fmt "%s%s@," (String.make indent ' ') (operand_to_string op)
  | Block q ->
      Format.fprintf fmt "%s{@," (String.make indent ' ');
      pp_query fmt (indent + 2) q;
      Format.fprintf fmt "%s}@," (String.make indent ' ')
  | Element e ->
      Format.fprintf fmt "%s<%s%s>@,"
        (String.make indent ' ')
        e.tag
        (match e.skolem with None -> "" | Some s -> " skolem=" ^ s);
      List.iter (pp_node fmt (indent + 2)) e.content;
      Format.fprintf fmt "%s</%s>@," (String.make indent ' ') e.tag

let to_string (v : view) =
  Format.asprintf "@[<v>view %s@,%a@]" v.root_tag
    (fun fmt queries ->
      List.iter
        (fun q ->
          Format.fprintf fmt "{@,";
          pp_query fmt 2 q;
          Format.fprintf fmt "}@,")
        queries)
    v.queries
