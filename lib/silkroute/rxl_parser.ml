(* Recursive-descent parser for RXL concrete syntax.

   view       := 'view' IDENT block+
   block      := '{' query '}'
   query      := 'from' binding {',' binding}
                 ['where' cond {',' cond}]
                 'construct' node+
   binding    := IDENT TVAR
   cond       := operand cmp operand
   operand    := TVAR '.' IDENT | literal
   node       := element | block | operand
   element    := '<' IDENT ['skolem' '=' IDENT] '>' node* '</' IDENT '>'

   Round-trips with Rxl.to_string (tested). *)

open Rxl_lexer

exception Parse_error of string

type state = { toks : token array; mutable pos : int }

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s at token %d (%s)" msg st.pos
          (token_to_string st.toks.(min st.pos (Array.length st.toks - 1)))))

let peek st = st.toks.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else EOF

let advance st = st.pos <- st.pos + 1

let expect st t =
  if peek st = t then advance st
  else fail st (Printf.sprintf "expected %s" (token_to_string t))

let is_kw st k = match peek st with IDENT s -> s = k | _ -> false

let eat_kw st k =
  if is_kw st k then begin
    advance st;
    true
  end
  else false

let expect_kw st k = if not (eat_kw st k) then fail st ("expected '" ^ k ^ "'")

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let parse_operand st : Rxl.operand =
  match peek st with
  | TVAR v ->
      advance st;
      expect st DOT;
      let f = ident st in
      Rxl.Field (v, f)
  | INT n ->
      advance st;
      Rxl.Const (Relational.Value.Int n)
  | FLOAT f ->
      advance st;
      Rxl.Const (Relational.Value.Float f)
  | STRING s ->
      advance st;
      Rxl.Const (Relational.Value.String s)
  | _ -> fail st "expected $var.field or literal"

let parse_cmp st : Relational.Expr.cmp =
  match peek st with
  | EQ ->
      advance st;
      Relational.Expr.Eq
  | NEQ ->
      advance st;
      Relational.Expr.Neq
  | LT ->
      advance st;
      Relational.Expr.Lt
  | LE ->
      advance st;
      Relational.Expr.Le
  | GT ->
      advance st;
      Relational.Expr.Gt
  | GE ->
      advance st;
      Relational.Expr.Ge
  | _ -> fail st "expected comparison operator"

let rec parse_query st : Rxl.query =
  expect_kw st "from";
  let rec bindings acc =
    let table = ident st in
    let var =
      match peek st with
      | TVAR v ->
          advance st;
          v
      | _ -> fail st "expected tuple variable"
    in
    let acc = Rxl.binding var table :: acc in
    if peek st = COMMA then begin
      advance st;
      bindings acc
    end
    else List.rev acc
  in
  let from_ = bindings [] in
  let where_ =
    if eat_kw st "where" then begin
      let rec conds acc =
        let left = parse_operand st in
        let op = parse_cmp st in
        let right = parse_operand st in
        let acc = Rxl.cond op left right :: acc in
        if peek st = COMMA then begin
          advance st;
          conds acc
        end
        else List.rev acc
      in
      conds []
    end
    else []
  in
  expect_kw st "construct";
  let construct = parse_nodes st in
  if construct = [] then fail st "construct clause needs at least one node";
  { Rxl.from_; where_; construct }

and parse_nodes st : Rxl.node list =
  let rec go acc =
    match peek st with
    | LT -> go (parse_element st :: acc)
    | LBRACE ->
        advance st;
        let q = parse_query st in
        expect st RBRACE;
        go (Rxl.Block q :: acc)
    | TVAR _ | INT _ | FLOAT _ | STRING _ ->
        go (Rxl.Text (parse_operand st) :: acc)
    | _ -> List.rev acc
  in
  go []

and parse_element st : Rxl.node =
  expect st LT;
  let tag = ident st in
  let skolem =
    if is_kw st "skolem" && peek2 st = EQ then begin
      advance st;
      advance st;
      Some (ident st)
    end
    else None
  in
  expect st GT;
  let content = parse_nodes st in
  expect st LTSLASH;
  let closing = ident st in
  if closing <> tag then
    fail st (Printf.sprintf "mismatched </%s>, expected </%s>" closing tag);
  expect st GT;
  Rxl.Element { tag; skolem; content }

let parse_view st : Rxl.view =
  expect_kw st "view";
  let root_tag = ident st in
  let rec blocks acc =
    if peek st = LBRACE then begin
      advance st;
      let q = parse_query st in
      expect st RBRACE;
      blocks (q :: acc)
    end
    else List.rev acc
  in
  let queries = blocks [] in
  if queries = [] then fail st "view needs at least one { query } block";
  { Rxl.root_tag; queries }

let parse (text : string) : Rxl.view =
  let toks = tokenize text in
  let st = { toks; pos = 0 } in
  let v = parse_view st in
  if peek st <> EOF then fail st "trailing input";
  v
