(* SQL generation (paper Sec. 3.4).

   Each partition fragment becomes one SQL query producing one sorted
   tuple stream.  Two strategies:

   - Outer-join plans (SilkRoute's default): the fragment root's body is
     left-outer-joined with the UNION ALL of its child branches; sibling
     branches are distinguished by their L (Skolem-function-index) column
     and NULL-pad each other's variables.  Recursively down the fragment.

   - Outer-union plans (Shanmugasundaram et al., used as the paper's
     comparison point): one SELECT per node group computing the node's
     full rule, NULL-padded to the common width, all UNION ALLed; no
     outer joins.

   Every stream is sorted by the restriction of the view tree's global
   sort-attribute sequence, so the tagger can merge streams in one pass.

   With reduction enabled, generation operates on the fragment's reduced
   groups (Reduce): a group's members share one body, so 1-labeled kept
   edges produce no branch at all — the paper's "outer join … disappears
   when all children are labeled 1". *)

module R = Relational
module D = Datalog
module Sql = Relational.Sql

type col_kind = Level_col of int | Var_col of string

type style = Outer_join | Outer_union

type options = {
  style : style;
  labels : Xmlkit.Dtd.multiplicity array option; (* Some = apply reduction *)
}

let default_options = { style = Outer_join; labels = None }

type stream = {
  fragment : Partition.fragment;
  groups : Reduce.group list;
  query : Sql.query;
  cols : col_kind array;
}

exception Unsupported = View_tree.Unsupported

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

(* --- group bodies ------------------------------------------------------ *)

(* The FROM/WHERE material of a group: (alias, atom) pairs plus filters.
   [full] uses the group root's complete rule (for fragment roots and for
   outer-union branches); otherwise the root contributes only its delta.
   An empty body (pure re-grouping nodes) falls back to the full rule —
   the redundant re-query that view-tree reduction exists to remove. *)
type body = {
  batoms : (string * D.Rule.atom) list; (* (alias, atom) *)
  bfilters : D.Rule.filter list;
}

let group_body tree (g : Reduce.group) ~full : body =
  let root = View_tree.node tree g.Reduce.g_root in
  let root_atoms =
    if full then List.combine (List.map fst root.View_tree.scope)
                   root.View_tree.rule.D.Rule.atoms
    else List.combine (List.map fst root.View_tree.delta_scope)
           root.View_tree.delta_atoms
  in
  let root_filters =
    if full then root.View_tree.rule.D.Rule.filters
    else root.View_tree.delta_filters
  in
  let others = List.filter (fun m -> m <> g.Reduce.g_root) g.Reduce.g_members in
  let atoms, filters =
    List.fold_left
      (fun (atoms, filters) m ->
        let n = View_tree.node tree m in
        let extra =
          List.combine
            (List.map fst n.View_tree.delta_scope)
            n.View_tree.delta_atoms
          |> List.filter (fun (a, _) -> not (List.mem_assoc a atoms))
        in
        let extra_f =
          List.filter (fun f -> not (List.mem f filters)) n.View_tree.delta_filters
        in
        (atoms @ extra, filters @ extra_f))
      (root_atoms, root_filters) others
  in
  if atoms = [] then
    (* empty delta: re-query the full rule *)
    {
      batoms =
        List.combine (List.map fst root.View_tree.scope)
          root.View_tree.rule.D.Rule.atoms;
      bfilters = root.View_tree.rule.D.Rule.filters;
    }
  else { batoms = atoms; bfilters = filters }

(* Variables and their (alias, column) source positions in a body. *)
let var_positions db (b : body) : (string * (string * string) list) list =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (alias, (atom : D.Rule.atom)) ->
      let cols = R.Schema.column_names (R.Database.schema db atom.D.Rule.rel) in
      List.iter2
        (fun col arg ->
          match arg with
          | D.Rule.Var v ->
              if not (Hashtbl.mem tbl v) then order := v :: !order;
              let cur = try Hashtbl.find tbl v with Not_found -> [] in
              Hashtbl.replace tbl v (cur @ [ (alias, col) ])
          | D.Rule.Const _ | D.Rule.Wild -> ())
        cols atom.D.Rule.args)
    b.batoms;
  List.rev_map (fun v -> (v, Hashtbl.find tbl v)) !order

let body_vars db b = List.map fst (var_positions db b)

(* WHERE conjuncts of a body: variable co-occurrence equalities, filters,
   and constant equalities for Const args. *)
let body_where db (b : body) : R.Expr.t option =
  let positions = var_positions db b in
  let src v =
    match List.assoc_opt v positions with
    | Some ((a, c) :: _) -> R.Expr.Col (Some a, c)
    | _ -> unsupported "filter references variable %s not bound in this body" v
  in
  let co_occur =
    List.concat_map
      (fun (_, ps) ->
        match ps with
        | [] | [ _ ] -> []
        | (a0, c0) :: rest ->
            List.map
              (fun (a, c) ->
                R.Expr.Cmp (R.Expr.Eq, R.Expr.Col (Some a0, c0), R.Expr.Col (Some a, c)))
              rest)
      positions
  in
  let consts =
    List.concat_map
      (fun (alias, (atom : D.Rule.atom)) ->
        let cols = R.Schema.column_names (R.Database.schema db atom.D.Rule.rel) in
        List.filteri (fun _ _ -> true) (List.map2 (fun c a -> (c, a)) cols atom.D.Rule.args)
        |> List.filter_map (fun (col, arg) ->
               match arg with
               | D.Rule.Const v ->
                   Some (R.Expr.Cmp (R.Expr.Eq, R.Expr.Col (Some alias, col), R.Expr.Lit v))
               | _ -> None))
      b.batoms
  in
  let term = function
    | D.Rule.Var v -> src v
    | D.Rule.Const c -> R.Expr.Lit c
    | D.Rule.Wild -> unsupported "wildcard in filter"
  in
  let filters =
    List.map
      (fun (f : D.Rule.filter) ->
        R.Expr.Cmp (f.D.Rule.op, term f.D.Rule.left, term f.D.Rule.right))
      b.bfilters
  in
  match co_occur @ consts @ filters with
  | [] -> None
  | conjs -> Some (R.Expr.conjoin conjs)

(* --- fragment column layout ------------------------------------------- *)

type layout = {
  cols : col_kind array;
  max_level : int;
}

let layout_of db tree groups (f : Partition.fragment) : layout =
  let max_level =
    List.fold_left
      (fun m id -> max m (View_tree.level (View_tree.node tree id)))
      0 f.Partition.members
  in
  let head_vars =
    List.concat_map
      (fun id -> (View_tree.node tree id).View_tree.rule.D.Rule.head_vars)
      f.Partition.members
  in
  (* correlation vars between parent/child groups *)
  let corr_vars =
    List.concat_map
      (fun (g : Reduce.group) ->
        let gv = body_vars db (group_body tree g ~full:true) in
        List.concat_map
          (fun (cg : Reduce.group) ->
            let cv = body_vars db (group_body tree cg ~full:false) in
            List.filter (fun v -> List.mem v cv) gv)
          (Reduce.child_groups tree groups g))
      groups
  in
  let vars =
    List.fold_left
      (fun acc v -> if List.mem v acc then acc else v :: acc)
      [] (head_vars @ corr_vars)
    |> List.rev
  in
  let attrs = View_tree.sort_attrs tree in
  let from_attrs =
    List.filter_map
      (function
        | View_tree.Level p when p <= max_level -> Some (Level_col p)
        | View_tree.Level _ -> None
        | View_tree.Variable v when List.mem v vars -> Some (Var_col v)
        | View_tree.Variable _ -> None)
      attrs
  in
  let covered =
    List.filter_map (function Var_col v -> Some v | Level_col _ -> None) from_attrs
  in
  let extra = List.filter (fun v -> not (List.mem v covered)) vars in
  { cols = Array.of_list (from_attrs @ List.map (fun v -> Var_col v) extra);
    max_level }

let col_name = function
  | Level_col j -> Printf.sprintf "L%d" j
  | Var_col v -> v

(* --- outer-join generation --------------------------------------------- *)

(* Check the variable-flow restriction: a variable shared between an
   ancestor group and a descendant group must occur in every group on the
   path between them, otherwise the nested left-join correlation loses
   it.  The paper's queries satisfy this by construction (scopes nest
   along joins). *)
let check_var_flow db tree groups =
  let vars_of g ~full = body_vars db (group_body tree g ~full) in
  let schema_of name = R.Database.schema db name in
  (* [path] holds the variable sets of the ancestor groups, innermost
     first.  A variable of [g] shared with an ancestor must occur in
     every group in between — or be functionally determined (within g's
     full rule body) by the variables that do flow through — otherwise
     nested correlation loses it. *)
  let rec walk path g =
    let gv = vars_of g ~full:(path = []) in
    let full_rule = (View_tree.node tree g.Reduce.g_root).View_tree.rule in
    List.iter
      (fun v ->
        let rec above_break = function
          | [] -> ()
          | av :: deeper ->
              if List.mem v av then above_break deeper
              else begin
                if List.exists (fun bv -> List.mem v bv) deeper then begin
                  let flowing = List.filter (fun x -> List.mem x av) gv in
                  if
                    not
                      (Datalog.Fd.functionally_determines ~schema_of
                         ~child:full_rule flowing [ v ])
                  then
                    unsupported
                      "variable %s is shared between non-adjacent fragments \
                       around group %d and is not determined by the flowing \
                       join variables; rewrite the view so it flows through \
                       the intermediate blocks"
                      v g.Reduce.g_root
                end;
                above_break deeper
              end
        in
        above_break path)
      gv;
    List.iter
      (fun cg -> walk (gv :: path) cg)
      (Reduce.child_groups tree groups g)
  in
  match groups with [] -> () | root :: _ -> walk [] root

let lit_int n = R.Expr.Lit (R.Value.Int n)
let lit_null = R.Expr.Lit R.Value.Null

let sfi_component sfi j =
  match List.nth_opt sfi (j - 1) with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf
           "Sql_gen.sfi_component: level %d out of range for Skolem function \
            %s (depth %d)"
           j
           (View_tree.skolem_name sfi)
           (List.length sfi))

let rec build_group db tree groups (layout : layout) ~edge_label
    (g : Reduce.group) ~(anchor_level : int) ~(full : bool) : Sql.query =
  let root = View_tree.node tree g.Reduce.g_root in
  let lg = View_tree.level root in
  let b = group_body tree g ~full in
  let positions = var_positions db b in
  let own_src v =
    match List.assoc_opt v positions with
    | Some ((a, c) :: _) -> Some (R.Expr.Col (Some a, c))
    | _ -> None
  in
  let kids = Reduce.child_groups tree groups g in
  let from_tables =
    List.map (fun (alias, (atom : D.Rule.atom)) ->
        Sql.Table { name = atom.D.Rule.rel; alias })
      b.batoms
  in
  let where = body_where db b in
  let level_lit j =
    if j > anchor_level && j <= lg then lit_int (sfi_component root.View_tree.sfi j)
    else lit_null
  in
  (* A group carrying payload (its own text contents, or members fused
     into it by reduction) must contribute a "self row" per instance even
     when it has child branches: the payload rides on the group's own
     tuples, and the tagger needs them to arrive before any sibling
     stream's rows for the same parent.  A left-outer join alone only
     pads childless instances. *)
  let has_payload =
    List.exists
      (fun m -> (View_tree.node tree m).View_tree.contents <> [])
      g.Reduce.g_members
    || List.length g.Reduce.g_members > 1
  in
  let self_select () =
    let items =
      Array.to_list layout.cols
      |> List.map (fun c ->
             let e =
               match c with
               | Level_col j -> level_lit j
               | Var_col v -> (
                   match own_src v with Some e -> e | None -> lit_null)
             in
             Sql.item ~alias:(col_name c) e)
    in
    Sql.Select { items; from = from_tables; where }
  in
  match kids with
  | [] -> { Sql.body = self_select (); order_by = [] }
  | kids ->
      (* inner derived B: own body, all layout columns (literals for own
         levels, NULL elsewhere) *)
      let balias = Printf.sprintf "b%d" g.Reduce.g_root in
      let qalias = Printf.sprintf "q%d" g.Reduce.g_root in
      let b_items =
        Array.to_list layout.cols
        |> List.map (fun c ->
               let e =
                 match c with
                 | Level_col j -> level_lit j
                 | Var_col v -> (
                     match own_src v with Some e -> e | None -> lit_null)
               in
               Sql.item ~alias:(col_name c) e)
      in
      let b_query =
        { Sql.body = Sql.Select { items = b_items; from = from_tables; where };
          order_by = [] }
      in
      let kid_queries =
        List.map
          (fun cg ->
            build_group db tree groups layout ~edge_label cg ~anchor_level:lg
              ~full:false)
          kids
      in
      let union_body =
        match List.map (fun q -> q.Sql.body) kid_queries with
        | [] ->
            invalid_arg
              "Sql_gen: internal error — branch group has no child queries \
               (degenerate reduced view; report the RXL view that produced \
               this)"
        | b0 :: rest -> List.fold_left (fun acc b -> Sql.Union_all (acc, b)) b0 rest
      in
      let gvars = body_vars db b in
      let on =
        let disjuncts =
          List.map
            (fun (cg : Reduce.group) ->
              let cg_root = View_tree.node tree cg.Reduce.g_root in
              let cl = View_tree.level cg_root in
              let guard =
                R.Expr.Cmp
                  ( R.Expr.Eq,
                    R.Expr.Col (Some qalias, Printf.sprintf "L%d" cl),
                    lit_int (sfi_component cg_root.View_tree.sfi cl) )
              in
              let cvars = body_vars db (group_body tree cg ~full:false) in
              let corr =
                List.filter (fun v -> List.mem v cvars) gvars
                |> List.map (fun v ->
                       R.Expr.Cmp
                         ( R.Expr.Eq,
                           R.Expr.Col (Some balias, v),
                           R.Expr.Col (Some qalias, v) ))
              in
              if List.length kids = 1 && corr <> [] then R.Expr.conjoin corr
              else R.Expr.conjoin (guard :: corr))
            kids
        in
        match disjuncts with
        | [] -> R.Expr.Lit (R.Value.Bool true)
        | d0 :: rest -> List.fold_left (fun acc d -> R.Expr.Or (acc, d)) d0 rest
      in
      (* When every child branch's cut... kept edge is labeled 1 or + the
         child is guaranteed to exist (C2), so an inner join suffices —
         "the outer join ... disappears" (Sec. 3.5 footnote).  Available
         only when labels were computed (reduction mode). *)
      let all_guaranteed =
        List.for_all
          (fun (cg : Reduce.group) ->
            let anchor =
              match (View_tree.node tree cg.Reduce.g_root).View_tree.parent with
              | Some a -> a
              | None -> -1
            in
            match edge_label (anchor, cg.Reduce.g_root) with
            | Some Xmlkit.Dtd.One | Some Xmlkit.Dtd.Plus -> true
            | Some Xmlkit.Dtd.Opt | Some Xmlkit.Dtd.Star | None -> false)
          kids
      in
      let joined =
        Sql.Join
          {
            left = Sql.Derived { query = b_query; alias = balias };
            kind = (if all_guaranteed then Sql.Inner else Sql.Left_outer);
            right = Sql.Derived { query = { Sql.body = union_body; order_by = [] };
                                  alias = qalias };
            on;
          }
      in
      let items =
        Array.to_list layout.cols
        |> List.map (fun c ->
               let name = col_name c in
               let e =
                 match c with
                 | Level_col j ->
                     if j <= lg then R.Expr.Col (Some balias, name)
                     else R.Expr.Col (Some qalias, name)
                 | Var_col v ->
                     if own_src v <> None then R.Expr.Col (Some balias, name)
                     else if
                       List.exists
                         (fun cg ->
                           List.mem v
                             (body_vars db (group_body tree cg ~full:false))
                           || List.exists
                                (fun m ->
                                  List.mem v
                                    (View_tree.node tree m).View_tree.rule
                                      .D.Rule.head_vars)
                                cg.Reduce.g_members)
                         (subtree_groups tree groups g)
                     then R.Expr.Col (Some qalias, name)
                     else lit_null
               in
               Sql.item ~alias:name e)
      in
      let main = Sql.Select { items; from = [ joined ]; where = None } in
      let body =
        if has_payload then Sql.Union_all (self_select (), main) else main
      in
      { Sql.body; order_by = [] }

(* all groups strictly below g in the fragment's group tree *)
and subtree_groups tree groups g =
  let kids = Reduce.child_groups tree groups g in
  kids @ List.concat_map (fun cg -> subtree_groups tree groups cg) kids

(* --- outer-union generation -------------------------------------------- *)

let build_outer_union db tree (groups : Reduce.group list) (layout : layout) :
    Sql.query =
  let branch (g : Reduce.group) =
    let root = View_tree.node tree g.Reduce.g_root in
    let lg = View_tree.level root in
    let b = group_body tree g ~full:true in
    let positions = var_positions db b in
    let own_src v =
      match List.assoc_opt v positions with
      | Some ((a, c) :: _) -> Some (R.Expr.Col (Some a, c))
      | _ -> None
    in
    let items =
      Array.to_list layout.cols
      |> List.map (fun c ->
             let e =
               match c with
               | Level_col j ->
                   if j <= lg then lit_int (sfi_component root.View_tree.sfi j)
                   else lit_null
               | Var_col v -> (
                   match own_src v with Some e -> e | None -> lit_null)
             in
             Sql.item ~alias:(col_name c) e)
    in
    let from_tables =
      List.map (fun (alias, (atom : D.Rule.atom)) ->
          Sql.Table { name = atom.D.Rule.rel; alias })
        b.batoms
    in
    Sql.Select { items; from = from_tables; where = body_where db b }
  in
  let body =
    match List.map branch groups with
    | [] -> invalid_arg "Sql_gen: empty fragment"
    | b0 :: rest -> List.fold_left (fun acc b -> Sql.Union_all (acc, b)) b0 rest
  in
  { Sql.body; order_by = [] }

(* --- entry point -------------------------------------------------------- *)

let order_by_of layout =
  Array.to_list layout.cols
  |> List.map (fun c -> (R.Expr.Col (None, col_name c), Sql.Asc))

let stream_of_fragment db tree opts (f : Partition.fragment) : stream =
  let groups = Reduce.groups_of_fragment tree ~labels:opts.labels f in
  let layout = layout_of db tree groups f in
  let edge_label =
    match opts.labels with
    | None -> fun _ -> None
    | Some labels ->
        let tbl = Hashtbl.create 16 in
        Array.iteri (fun i e -> Hashtbl.replace tbl e labels.(i)) tree.View_tree.edges;
        fun e -> Hashtbl.find_opt tbl e
  in
  let query =
    match opts.style with
    | Outer_join ->
        check_var_flow db tree groups;
        let root_group = Reduce.group_of groups f.Partition.root in
        build_group db tree groups layout ~edge_label root_group
          ~anchor_level:0 ~full:true
    | Outer_union -> build_outer_union db tree groups layout
  in
  let query = { query with Sql.order_by = order_by_of layout } in
  { fragment = f; groups; query; cols = layout.cols }

let streams db tree (p : Partition.t) (opts : options) : stream list =
  Obs.Span.with_span "sqlgen.streams" (fun () ->
      let frags = Partition.fragments p in
      let result =
        List.map
          (fun f ->
            Obs.Span.with_span "sqlgen.stream" (fun () ->
                let s = stream_of_fragment db tree opts f in
                if Obs.Span.tracing () then
                  Obs.Span.add_list
                    [
                      Obs.Attr.string "root"
                        (View_tree.skolem_name
                           (View_tree.node tree f.Partition.root).View_tree.sfi);
                      Obs.Attr.int "members" (List.length f.Partition.members);
                      Obs.Attr.int "cols" (Array.length s.cols);
                    ];
                s))
          frags
      in
      if Obs.Span.tracing () then
        Obs.Span.add_list
          [
            Obs.Attr.string "style"
              (match opts.style with
              | Outer_join -> "outer-join"
              | Outer_union -> "outer-union");
            Obs.Attr.bool "reduce" (opts.labels <> None);
            Obs.Attr.int "streams" (List.length result);
            Obs.Attr.int "work" (List.length result);
          ];
      result)
