(* The greedy plan-generation algorithm (paper Sec. 5, Fig. 17).

   genPlan repeatedly estimates, for every remaining view-tree edge, the
   relative cost of evaluating its two fragment queries combined versus
   separately:

       rel(e) = cost(q_c) - (cost(q_1) + cost(q_2))
       cost(q) = a * evaluation_cost(q) + b * data_size(q)

   and greedily collapses the cheapest edge while rel(e) stays under the
   thresholds: below t1 the edge is mandatory, below t2 optional.  The
   RDBMS (here Cost.oracle) answers the evaluation_cost / cardinality
   requests; fragment costs are cached by member set, which is why the
   request count stays far below the quadratic worst case (the paper
   reports 22–25 requests instead of 81). *)

module R = Relational

type params = { a : float; b : float; t1 : float; t2 : float }

(* Thresholds tuned once for this engine's cost scale, then used for
   every query and configuration — the paper did the same (a=100, b=1,
   t1=-60000, t2=6000 for its commercial RDBMS) and notes the values
   depend on the database environment, not on the query. *)
let default_params = { a = 1.0; b = 1.0; t1 = -5000.0; t2 = 200000.0 }

type result = {
  mandatory : (int * int) list;
  optional : (int * int) list;
  requests : int; (* cost-estimate requests issued to the oracle *)
  cache_hits : int; (* fragment-cost lookups served by the member-set cache *)
}

(* Fragment record for an arbitrary connected member set. *)
let fragment_of tree members : Partition.fragment =
  let in_members id = List.mem id members in
  let root =
    List.find
      (fun id ->
        match (View_tree.node tree id).View_tree.parent with
        | None -> true
        | Some p -> not (in_members p))
      members
  in
  let internal_edges =
    Array.to_list tree.View_tree.edges
    |> List.filter (fun (a, b) -> in_members a && in_members b)
  in
  { Partition.root; members = List.sort compare members; internal_edges }

let gen_plan ?(reduce = false) (db : R.Database.t) (oracle : R.Cost.oracle)
    (tree : View_tree.t) (labels : Xmlkit.Dtd.multiplicity array)
    (params : params) : result =
 Obs.Span.with_span "planner.gen_plan" (fun () ->
  let requests0 = R.Cost.requests oracle in
  let opts =
    {
      Sql_gen.style = Sql_gen.Outer_join;
      labels = (if reduce then Some labels else None);
    }
  in
  (* The fragment-cost cache is keyed by member *set*: keys are
     canonicalized (sorted) so the same set arriving in a different
     order — e.g. the [f1 @ f2] concatenation of two component lists —
     cannot miss an earlier entry. *)
  let cache : (int list, float) Hashtbl.t = Hashtbl.create 64 in
  let canonical_key members = List.sort compare members in
  let cache_hits = ref 0 in
  let cost_of members =
    let key = canonical_key members in
    let members_str () =
      String.concat "," (List.map string_of_int key)
    in
    match Hashtbl.find_opt cache key with
    | Some c ->
        incr cache_hits;
        if Obs.Span.tracing () then
          Obs.Event.debug "planner.cache"
            ~attrs:
              [
                Obs.Attr.string "members" (members_str ());
                Obs.Attr.bool "hit" true;
                Obs.Attr.float "cost" c;
              ];
        c
    | None ->
        let frag = fragment_of tree key in
        let stream = Sql_gen.stream_of_fragment db tree opts frag in
        let est = R.Cost.ask oracle stream.Sql_gen.query in
        let c = R.Cost.cost ~a:params.a ~b:params.b est in
        Hashtbl.replace cache key c;
        if Obs.Span.tracing () then
          Obs.Event.debug "planner.cache"
            ~attrs:
              [
                Obs.Attr.string "members" (members_str ());
                Obs.Attr.bool "hit" false;
                Obs.Attr.float "cost" c;
              ];
        c
  in
  (* fragments as a union-find over node ids *)
  let n = View_tree.node_count tree in
  let comp = Array.init n (fun i -> i) in
  let rec find i = if comp.(i) = i then i else find comp.(i) in
  let members_of r =
    List.filter (fun i -> find i = r) (List.init n (fun i -> i))
  in
  let merge a b =
    let ra = find a and rb = find b in
    if ra <> rb then comp.(max ra rb) <- min ra rb
  in
  let remaining = ref (Array.to_list tree.View_tree.edges) in
  let mandatory = ref [] and optional = ref [] in
  let continue_ = ref true in
  while !continue_ && !remaining <> [] do
    let costs =
      List.map
        (fun (u, v) ->
          (* one span per cost-oracle request batch: the three fragment
             estimates (combined, left, right) this edge triggers *)
          Obs.Span.with_span "plan.edge" (fun () ->
              let f1 = members_of (find u) and f2 = members_of (find v) in
              let rel = cost_of (f1 @ f2) -. (cost_of f1 +. cost_of f2) in
              if Obs.Span.tracing () then begin
                let name id =
                  View_tree.skolem_name (View_tree.node tree id).View_tree.sfi
                in
                Obs.Span.add_list
                  [
                    Obs.Attr.string "edge" (name u ^ "-" ^ name v);
                    Obs.Attr.float "rel" rel;
                  ]
              end;
              (rel, (u, v))))
        !remaining
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) costs in
    match sorted with
    | [] -> continue_ := false
    | (rel, (u, v)) :: _ ->
        if rel < params.t1 then begin
          mandatory := (u, v) :: !mandatory;
          merge u v;
          remaining := List.filter (fun e -> e <> (u, v)) !remaining
        end
        else if rel < params.t2 then begin
          optional := (u, v) :: !optional;
          merge u v;
          remaining := List.filter (fun e -> e <> (u, v)) !remaining
        end
        else continue_ := false
  done;
  let requests = R.Cost.requests oracle in
  if Obs.Span.tracing () then begin
    Obs.Span.add_list
      [
        Obs.Attr.int "mandatory" (List.length !mandatory);
        Obs.Attr.int "optional" (List.length !optional);
        Obs.Attr.int "requests" (requests - requests0);
        Obs.Attr.int "cache_hits" !cache_hits;
        Obs.Attr.int "work" (requests - requests0);
      ];
    Obs.Metrics.incr ~by:(requests - requests0) "planner.requests";
    Obs.Metrics.incr ~by:!cache_hits "planner.cache_hits"
  end;
  {
    mandatory = List.rev !mandatory;
    optional = List.rev !optional;
    (* per-run delta, not the oracle's cumulative counter: a reused
       oracle must not inflate later reports (the paper's 22–25 requests
       figure is per query) *)
    requests = requests - requests0;
    cache_hits = !cache_hits;
  })

(* Positions of a result's edges in the tree's edge array.  A missing
   edge means the result belongs to a different view tree — report that
   as such instead of escaping with an unlabelled [Not_found]. *)
let edge_index_of ~caller tree =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i e -> Hashtbl.replace tbl e i) tree.View_tree.edges;
  fun ((u, v) as e) ->
    match Hashtbl.find_opt tbl e with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf
             "Planner.%s: edge %d-%d is not an edge of this view tree (was \
              the plan generated for a different view?)"
             caller u v)

(* The plan family a genPlan result describes: the mandatory edges plus
   each subset of the optional edges (paper Sec. 5.1: "Each subset of the
   four optional edges defines a plan"). *)
let plans_of tree (r : result) : Partition.t list =
  let edge_index = edge_index_of ~caller:"plans_of" tree in
  let base = Array.make (View_tree.edge_count tree) false in
  List.iter (fun e -> base.(edge_index e) <- true) r.mandatory;
  let opt = Array.of_list r.optional in
  let k = Array.length opt in
  List.init (1 lsl k) (fun mask ->
      let keep = Array.copy base in
      Array.iteri
        (fun i e -> if mask land (1 lsl i) <> 0 then keep.(edge_index e) <- true)
        opt;
      Partition.of_keep tree keep)

(* The single "best" plan: mandatory plus all optional edges. *)
let best_plan tree (r : result) : Partition.t =
  let keep = Array.make (View_tree.edge_count tree) false in
  let edge_index = edge_index_of ~caller:"best_plan" tree in
  List.iter (fun e -> keep.(edge_index e) <- true) (r.mandatory @ r.optional);
  Partition.of_keep tree keep

let to_string tree (r : result) =
  let name id = View_tree.skolem_name (View_tree.node tree id).View_tree.sfi in
  Printf.sprintf "mandatory: %s; optional: %s; requests: %d (+%d cached)"
    (String.concat ", "
       (List.map (fun (a, b) -> name a ^ "-" ^ name b) r.mandatory))
    (String.concat ", "
       (List.map (fun (a, b) -> name a ^ "-" ^ name b) r.optional))
    r.requests r.cache_hits
