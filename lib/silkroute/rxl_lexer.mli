(** Tokenizer for RXL concrete syntax.

    Element syntax is XML-like, but element content is restricted to
    nested elements, nested blocks, [$var.field] references and quoted
    string constants, so no XML text mode is needed.  [--] starts a line
    comment. *)

type token =
  | IDENT of string
  | TVAR of string  (** [$s] *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LBRACE
  | RBRACE
  | LT
  | GT
  | LTSLASH  (** [</] *)
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LE
  | GE
  | EOF

exception Lex_error of string * int
(** Message and byte offset. *)

val token_to_string : token -> string
val tokenize : string -> token array
