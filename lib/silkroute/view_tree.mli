(** View trees — the intermediate representation of RXL views (paper
    Sec. 3.1).

    A view tree merges all XML templates of an RXL view by Skolem
    function into one global template; each node carries a non-recursive
    datalog rule computing all instances of that node, a Skolem-function
    index (S1.4.2 → [\[1;4;2\]]), and its Skolem term's variables.
    Variables are globally consistent: equality join conditions unify
    column variables, giving the shared-variable bodies of the paper's
    Fig. 4. *)

type content = Content_var of string | Content_const of Relational.Value.t

type node = {
  id : int;
  parent : int option;
  tag : string;
  explicit_skolem : string option;
  sfi : int list;  (** Skolem-function index *)
  sibling_index : int;  (** position among the parent's content items *)
  scope : (string * string) list;  (** (alias, table) per atom, in order *)
  rule : Datalog.Rule.t;  (** head = Skolem term, body = scope's from/where *)
  key_vars : string list;  (** instance identity: keys of in-scope tuple vars *)
  contents : (int * content) list;  (** item index → text payload *)
  delta_atoms : Datalog.Rule.atom list;  (** atoms absent from the parent *)
  delta_scope : (string * string) list;
  delta_filters : Datalog.Rule.filter list;
}

type t = {
  root_tag : string;
  nodes : node array;  (** id = index, parents before children *)
  edges : (int * int) array;  (** (parent, child), BFS order *)
  svi : (string * (int * int)) list;  (** variable → (level p, counter q) *)
}

exception Unsupported of string

val of_view : Relational.Database.t -> Rxl.view -> t
(** Builds the view tree; runs {!Rxl.check} first. *)

val level : node -> int
(** Depth of the node, root = 1 (length of its SFI). *)

val skolem_name : int list -> string
(** [\[1;4;2\]] → ["S1.4.2"]. *)

val node : t -> int -> node
val node_count : t -> int
val edge_count : t -> int
val children : t -> int -> int list
val roots : t -> int list
val svi_of : t -> string -> (int * int) option
val content_vars : node -> string list

(** The global sort-attribute sequence [L1, key vars(level 1), L2, key
    vars(level 2), …, content vars]: each partitioned relation is sorted
    by its restriction of this sequence.  Content-only variables come
    after every level attribute — a deliberate deviation from the paper's
    interleaved order; see DESIGN.md §6 ("Global sort order"). *)
type sort_attr = Level of int | Variable of string

val sort_attrs : t -> sort_attr list

val instances : Relational.Database.t -> t -> int -> Relational.Relation.t
(** Ground-truth instance set of a node via naive datalog evaluation
    (test oracle). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
