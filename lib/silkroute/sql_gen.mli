(** SQL generation (paper Sec. 3.4).

    Each partition fragment becomes one SQL query producing one sorted
    tuple stream.  Two strategies: outer-join plans (SilkRoute's
    default — fragment root left-outer-joined with the UNION ALL of its
    child branches) and outer-union plans (one SELECT per node group,
    NULL-padded and unioned; no outer joins).  With [labels] provided,
    view-tree reduction is applied within each fragment: '1'-labeled kept
    edges produce no branch at all. *)

(** How each output column of a stream is interpreted by the tagger. *)
type col_kind =
  | Level_col of int  (** the Lj Skolem-function-index component *)
  | Var_col of string  (** a Skolem-term variable *)

type style = Outer_join | Outer_union

type options = {
  style : style;
  labels : Xmlkit.Dtd.multiplicity array option;
      (** [Some labels] applies view-tree reduction *)
}

val default_options : options
(** Outer-join, no reduction. *)

(** One SQL query = one sorted tuple stream. *)
type stream = {
  fragment : Partition.fragment;
  groups : Reduce.group list;  (** reduced groups (singletons if no labels) *)
  query : Relational.Sql.query;
  cols : col_kind array;  (** aligned with the query's output columns *)
}

exception Unsupported of string

val sfi_component : int list -> int -> int
(** [sfi_component sfi j] is the [j]-th (1-based) component of a Skolem
    function's index vector; raises [Invalid_argument] naming the Skolem
    function and level when [j] is out of range. *)

val stream_of_fragment :
  Relational.Database.t -> View_tree.t -> options -> Partition.fragment -> stream

val streams :
  Relational.Database.t -> View_tree.t -> Partition.t -> options -> stream list
(** One stream per fragment of the plan, in document order of fragment
    roots.  Raises {!Unsupported} for views whose join variables do not
    flow through intermediate blocks (see DESIGN.md). *)
