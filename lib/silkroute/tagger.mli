(** The XML tagger (paper Sec. 3.3).

    Merges the sorted tuple streams of a plan's fragments under the view
    tree's global sort-attribute order, re-nests tuples and emits tags in
    a single pass.  Memory is bounded by the view-tree size (open-element
    stack plus pending text/fused payloads per element), not by the
    database size.

    Streams are consumed through pull cursors ({!Relational.Cursor}) and
    merged with a binary min-heap keyed by the hierarchical head
    comparator — O(log streams) per tuple, ties broken by stream
    position so the merge order matches a left-to-right scan. *)

(** Event consumer.  {!buffer_sink} and {!channel_sink} serialize
    directly (the constant-space paths); {!document_sink} builds an
    in-memory tree for validation and tests. *)
type sink = {
  on_open : string -> unit;
  on_text : string -> unit;
  on_close : string -> unit;
}

val tag_cursors :
  View_tree.t ->
  (Sql_gen.stream * Relational.Cursor.t) list ->
  sink ->
  unit
(** Merge-and-tag from cursors.  Each cursor must produce its stream's
    query result in the stream's ORDER BY order; cursors are drained
    exactly once.  Tuples are dropped as soon as they are processed. *)

val tag :
  View_tree.t ->
  (Sql_gen.stream * Relational.Relation.t) list ->
  sink ->
  unit
(** Merge-and-tag from materialized relations: wraps each relation in a
    cursor and runs {!tag_cursors}. *)

val document_sink : unit -> sink * (unit -> Xmlkit.Xml.t)
val buffer_sink : Buffer.t -> sink

val channel_sink : out_channel -> sink
(** Serializes events straight to [oc]; the document is never held in
    memory. *)

val to_document :
  View_tree.t -> (Sql_gen.stream * Relational.Relation.t) list -> Xmlkit.Xml.t

val to_document_cursors :
  View_tree.t -> (Sql_gen.stream * Relational.Cursor.t) list -> Xmlkit.Xml.t

val to_string :
  View_tree.t -> (Sql_gen.stream * Relational.Relation.t) list -> string

val to_string_cursors :
  View_tree.t -> (Sql_gen.stream * Relational.Cursor.t) list -> string

val to_channel :
  View_tree.t ->
  (Sql_gen.stream * Relational.Cursor.t) list ->
  out_channel ->
  unit
(** Tag and serialize directly to a channel: the end-to-end streaming
    sink. *)
