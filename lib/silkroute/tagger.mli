(** The XML tagger (paper Sec. 3.3).

    Merges the sorted tuple streams of a plan's fragments under the view
    tree's global sort-attribute order, re-nests tuples and emits tags in
    a single pass.  Memory is bounded by the view-tree size (open-element
    stack plus pending text/fused payloads per element), not by the
    database size. *)

(** Event consumer.  {!buffer_sink} serializes directly (the
    constant-space path); {!document_sink} builds an in-memory tree for
    validation and tests. *)
type sink = {
  on_open : string -> unit;
  on_text : string -> unit;
  on_close : string -> unit;
}

val tag :
  View_tree.t ->
  (Sql_gen.stream * Relational.Relation.t) list ->
  sink ->
  unit
(** Merge-and-tag.  Each relation must be the result of its stream's
    query (sorted by the stream's ORDER BY). *)

val document_sink : unit -> sink * (unit -> Xmlkit.Xml.t)
val buffer_sink : Buffer.t -> sink

val to_document :
  View_tree.t -> (Sql_gen.stream * Relational.Relation.t) list -> Xmlkit.Xml.t

val to_string :
  View_tree.t -> (Sql_gen.stream * Relational.Relation.t) list -> string
