(** The middleware pipeline (paper Fig. 7): RXL view → view tree →
    partition → SQL texts → RDBMS → sorted tuple streams → merge/tag →
    XML.

    Execution goes through the production path end to end: the generated
    SQL is printed to text, re-parsed by the engine, executed, and timed;
    the result reports wall-clock query time, deterministic work units,
    and the modeled client-transfer time, mirroring the paper's
    Query-time / Total-time split. *)

type prepared = {
  db : Relational.Database.t;
  view : Rxl.view;
  tree : View_tree.t;
  labels : Xmlkit.Dtd.multiplicity array;
  stats : Relational.Stats.t Lazy.t;
      (** database statistics for cost annotation; forced only when a
          plan needs estimates (tracing, explain) *)
}

val prepare : Relational.Database.t -> Rxl.view -> prepared
val prepare_text : Relational.Database.t -> string -> prepared

(** How to choose the partition. *)
type strategy =
  | Unified  (** one SQL query (all edges kept) *)
  | Fully_partitioned  (** one SQL query per view-tree node *)
  | Edges of int  (** explicit edge mask *)
  | Greedy of Planner.params  (** the paper's plan-generation algorithm *)

val partition_of : prepared -> strategy -> Partition.t

(** Per-stream breakdown: every sub-query of a partition gets its own
    stats record, so callers can see where inside a plan the work went
    rather than only the sum. *)
type stream_exec = {
  se_stream : Sql_gen.stream;
  se_relation : Relational.Relation.t;
  se_sql : string;
  se_plan : Relational.Physical.plan;
      (** the executed physical plan, with actual rows/work per
          operator filled in *)
  se_stats : Relational.Executor.stats;
  se_wall_ms : float;
}

type execution = {
  streams : (Sql_gen.stream * Relational.Relation.t) list;
  per_stream : stream_exec list;  (** one entry per sub-query, in plan order *)
  sql_texts : string list;
  query_wall_ms : float;  (** measured engine time *)
  transfer_ms : float;  (** modeled client-transfer time *)
  work : int;  (** deterministic engine work units — sum over [per_stream] *)
  tuples : int;
  bytes : int;
}

val total_wall_ms : execution -> float
(** query + transfer, the paper's Total time. *)

(** Which sub-query exceeded the budget, and where it sat in the plan. *)
type timeout_info = {
  timeout_sql : string;  (** the offending SQL text *)
  timeout_stream : int;  (** index of the stream in plan order *)
  timeout_root : string;  (** fragment root's Skolem-function name *)
  timeout_elapsed_ms : float;  (** wall time spent before the budget hit *)
}

exception Plan_timeout of timeout_info
(** A sub-query exceeded the work budget (the paper's 5-minute
    per-query timeout).  The enclosing [execute.stream] span also gets
    [timeout]/[timeout.stream]/[timeout.root]/[timeout.elapsed_ms]
    attributes so traces show which sub-query blew the budget. *)

val execute :
  ?style:Sql_gen.style ->
  ?reduce:bool ->
  ?budget:int ->
  ?profile:Relational.Executor.profile ->
  ?transfer:Relational.Transfer.config ->
  ?sql_syntax:[ `Derived | `With ] ->
  ?domains:int ->
  ?batch_size:int ->
  prepared ->
  Partition.t ->
  execution
(** [sql_syntax] selects how derived tables are shipped to the engine:
    inline subqueries (default) or a WITH clause (the paper's footnote 1
    alternative); both parse back to the same plan.  [domains] (default
    1) fans the plan's sub-queries out over a pool of that many OCaml 5
    domains; 1 is exactly the sequential path.  Output and all
    deterministic accounting (work, tuples, bytes, modeled transfer)
    are identical at every domain count — the merge-tagger tie-breaks
    by plan order.  [batch_size] switches every sub-query to the
    executor's vectorized batch path; output and accounting stay
    identical to the tuple path at every batch size. *)

val execute_parallel :
  ?style:Sql_gen.style ->
  ?reduce:bool ->
  ?budget:int ->
  ?profile:Relational.Executor.profile ->
  ?transfer:Relational.Transfer.config ->
  ?sql_syntax:[ `Derived | `With ] ->
  ?batch_size:int ->
  domains:int ->
  prepared ->
  Partition.t ->
  execution
(** {!execute} with a required [domains]: each plan fragment's backend
    submit + executor run happens on its own pool domain, results merge
    in plan order. *)

val document_of : prepared -> execution -> Xmlkit.Xml.t
val xml_string_of : prepared -> execution -> string

val explain :
  ?style:Sql_gen.style -> ?reduce:bool -> prepared -> Partition.t -> string
(** Per stream: the shipped SQL, the rewritten logical algebra tree,
    and the cost-annotated physical plan (estimates only — nothing is
    executed). *)

val explain_execution : prepared -> execution -> string
(** Like {!explain} but over a finished {!execution}: the physical
    trees are the executed plans, so every operator shows estimated
    {e and} actual rows/work. *)

(** Per-stream breakdown of a streaming execution.  Stats, row/byte
    counts and modeled transfer are complete (accounted tuple-by-tuple
    while the result was spooled); the rows themselves are reachable
    only through the single-use cursor. *)
type stream_cursor = {
  sc_stream : Sql_gen.stream;
  sc_cursor : Relational.Cursor.t;
  sc_sql : string;
  sc_plan : Relational.Physical.plan;
      (** the executed physical plan, with actual figures filled in *)
  sc_stats : Relational.Executor.stats;
  sc_wall_ms : float;
  sc_rows : int;
  sc_bytes : int;
  sc_transfer_ms : float;
}

(** Result of a streaming execution: one spooled cursor per stream in
    plan order, plus the same accounting as {!execution} — work units,
    tuple/byte totals and modeled transfer are identical to the
    materialized path on the same plan.  Cursors are single-use: exactly
    one of {!document_of_streaming}, {!xml_string_of_streaming} or
    {!stream_to_channel} may consume a given value. *)
type streaming = {
  cursors : (Sql_gen.stream * Relational.Cursor.t) list;
  s_per_stream : stream_cursor list;
  s_sql_texts : string list;
  s_query_wall_ms : float;
  s_transfer_ms : float;
  s_work : int;
  s_tuples : int;
  s_bytes : int;
}

val execute_streaming :
  ?style:Sql_gen.style ->
  ?reduce:bool ->
  ?budget:int ->
  ?profile:Relational.Executor.profile ->
  ?transfer:Relational.Transfer.config ->
  ?sql_syntax:[ `Derived | `With ] ->
  ?domains:int ->
  ?batch_size:int ->
  prepared ->
  Partition.t ->
  streaming
(** Like {!execute}, but each sub-query's sorted output is spooled to a
    temporary file (modeling a server-side result set) instead of being
    retained as a relation: live heap memory from here through tagging
    is bounded by the view-tree depth plus one tuple per stream,
    independent of the database size.  If a later stream fails
    (e.g. {!Plan_timeout}), the spooled cursors of already-completed
    streams are closed — their spool files do not outlive the call. *)

val explain_streaming : prepared -> streaming -> string
(** {!explain_execution} for the streaming path (plans come from
    [sc_plan]); does not touch the cursors. *)

val diagnose_samples : prepared -> execution -> Obs.Diagnose.sample list
(** Per-operator estimated-vs-actual records for every stream's physical
    plan, labelled by fragment root — input for {!Obs.Diagnose}.
    Estimates are present only if the execution ran with tracing on
    (that is when [Cost.annotate] fires); missing figures are
    negative and skipped by the detector. *)

val diagnose_samples_streaming : prepared -> streaming -> Obs.Diagnose.sample list
(** {!diagnose_samples} for the streaming/resilient path (plans come
    from [sc_plan]); does not touch the cursors. *)

(** What resilience cost during one {!execute_resilient} run: counters
    summed over the per-stream forked backends
    ({!Relational.Backend.fork}), plus the number of streams that had
    to be degraded to finer fragments.  All deterministic for a fixed
    fault seed, and identical at every domain count. *)
type resilience = {
  r_submits : int;  (** logical sub-query submissions, incl. degraded re-runs *)
  r_attempts : int;  (** physical attempts, including retries *)
  r_retries : int;
  r_faults : int;  (** injected faults that fired (any kind) *)
  r_timeouts : int;  (** work-budget exhaustions *)
  r_degraded : int;  (** streams split into finer fragments *)
  r_backoff_ms : float;  (** total (virtual) backoff slept *)
  r_wasted_work : int;  (** engine work burned by failed attempts *)
}

type resilient = { r_streaming : streaming; r_resilience : resilience }

val execute_resilient :
  ?style:Sql_gen.style ->
  ?reduce:bool ->
  ?budget:int ->
  ?profile:Relational.Executor.profile ->
  ?transfer:Relational.Transfer.config ->
  ?sql_syntax:[ `Derived | `With ] ->
  ?backend:Relational.Backend.t ->
  ?max_splits:int ->
  ?domains:int ->
  ?batch_size:int ->
  prepared ->
  Partition.t ->
  resilient
(** Like {!execute_streaming}, but every sub-query goes through a
    per-stream {!Relational.Backend.fork} of [backend] (default: a
    fault-free backend over [p.db] with the given [budget]/[profile];
    both are ignored when [backend] is supplied).  [backend] serves as
    the config/seed template — its own counters never move; per-stream
    forking makes fault draws independent of cross-stream interleaving,
    so the resilience counters are identical at every [domains] count.
    Transient failures are retried with backoff, and a persistent
    failure — retries exhausted, a fatal fault, or a work-budget timeout
    — degrades only the offending stream by splitting its fragment
    along view-tree edges (at most [max_splits] nested splits per
    original stream) and re-executing the finer sub-queries.  The
    effective plan is still a point in the 2^|E| lattice, so the merged
    XML is byte-identical to a fault-free run, and the per-stream
    accounting covers exactly the winning attempts.  Raises
    {!Plan_timeout} when a single-node fragment times out (nothing finer
    exists), or the backend error when a single-node fragment fails
    fatally.  Emits [middleware.degraded_streams] metrics and
    [degraded.*] span attributes on top of the backend's own
    spans/metrics. *)

val document_of_streaming : prepared -> streaming -> Xmlkit.Xml.t
val xml_string_of_streaming : prepared -> streaming -> string

val stream_to_channel : prepared -> streaming -> out_channel -> unit
(** Tag and serialize straight to a channel; the document is never held
    in memory. *)

val materialize :
  ?style:Sql_gen.style ->
  ?reduce:bool ->
  ?budget:int ->
  ?profile:Relational.Executor.profile ->
  ?transfer:Relational.Transfer.config ->
  ?sql_syntax:[ `Derived | `With ] ->
  ?domains:int ->
  ?batch_size:int ->
  Relational.Database.t ->
  Rxl.view ->
  strategy ->
  Xmlkit.Xml.t * execution
(** One-call convenience: prepare, plan, execute, tag. *)

val materialize_naive : prepared -> Xmlkit.Xml.t
(** Ground truth: materializes the view via naive datalog evaluation of
    every node rule, bypassing SQL generation.  Tests validate every
    plan's output against this. *)
