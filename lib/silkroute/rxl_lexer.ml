(* Tokenizer for RXL concrete syntax.  Element syntax is XML-like but
   content is restricted to nested elements, nested { blocks }, field
   references ($s.name) and quoted string constants, so lexing never
   needs an XML text mode. *)

type token =
  | IDENT of string
  | TVAR of string (* $s *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LBRACE
  | RBRACE
  | LT (* < *)
  | GT (* > *)
  | LTSLASH (* </ *)
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LE
  | GE
  | EOF

exception Lex_error of string * int

let token_to_string = function
  | IDENT s -> s
  | TVAR s -> "$" ^ s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LT -> "<"
  | GT -> ">"
  | LTSLASH -> "</"
  | COMMA -> ","
  | DOT -> "."
  | EQ -> "="
  | NEQ -> "<>"
  | LE -> "<="
  | GE -> ">="
  | EOF -> "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (s : string) : token array =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then
      (* line comment *)
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      push (IDENT (String.sub s start (!i - start)))
    end
    else if c = '$' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      if !i = start then raise (Lex_error ("expected variable name after $", !i));
      push (TVAR (String.sub s start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      (* a dot only joins the number when followed by a digit; otherwise
         it is field syntax *)
      let saw_dot =
        !i + 1 < n && s.[!i] = '.' && is_digit s.[!i + 1]
      in
      if saw_dot then begin
        incr i;
        while !i < n && is_digit s.[!i] do
          incr i
        done
      end;
      let text = String.sub s start (!i - start) in
      if saw_dot then push (FLOAT (float_of_string text))
      else push (INT (int_of_string text))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error ("unterminated string literal", !i));
        if s.[!i] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      push (STRING (Buffer.contents buf))
    end
    else begin
      (match c with
      | '{' -> push LBRACE
      | '}' -> push RBRACE
      | ',' -> push COMMA
      | '.' -> push DOT
      | '=' -> push EQ
      | '<' ->
          if peek 1 = Some '/' then begin
            push LTSLASH;
            incr i
          end
          else if peek 1 = Some '>' then begin
            push NEQ;
            incr i
          end
          else if peek 1 = Some '=' then begin
            push LE;
            incr i
          end
          else push LT
      | '>' ->
          if peek 1 = Some '=' then begin
            push GE;
            incr i
          end
          else push GT
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
      incr i
    end
  done;
  push EOF;
  Array.of_list (List.rev !toks)
