(** View-tree partitioning (paper Sec. 3.2).

    A plan is a subset of view-tree edges: kept edges merge their
    endpoints into one SQL query, cut edges separate tuple streams.
    Every subset is a plan (a spanning forest), so a 9-edge view tree
    has 2^9 = 512 plans. *)

type t

(** One tree of the spanning forest = one SQL query = one tuple stream. *)
type fragment = {
  root : int;  (** node id of the fragment's root *)
  members : int list;  (** node ids, document order, root first *)
  internal_edges : (int * int) list;
}

val of_keep : View_tree.t -> bool array -> t
(** [keep] is parallel to the tree's edge array. *)

val of_mask : View_tree.t -> int -> t
(** Bit [i] of [mask] keeps edge [i]. *)

val to_mask : t -> int

val unified : View_tree.t -> t
(** All edges kept: one SQL query (the paper's unified plan). *)

val fully_partitioned : View_tree.t -> t
(** No edges kept: one SQL query per view-tree node. *)

val all_masks : View_tree.t -> int list
(** [0 .. 2^|E|-1]; raises for trees with ≥ 20 edges. *)

val kept_edges : t -> (int * int) list
val cut_edges : t -> (int * int) list

val fragments : t -> fragment list
(** Connected components under kept edges, ordered by root id (document
    order). *)

val stream_count : t -> int

val split : fragment -> fragment list option
(** One degradation step down the 2^|E| plan lattice: cut the fragment's
    first internal edge, yielding two finer fragments (ordered by root
    id) whose streams jointly cover the same view-tree nodes.  [None]
    for single-node fragments — there is nothing finer to fall back
    to. *)

val to_string : t -> string
