(* The XML tagger (paper Sec. 3.3).

   Merges the sorted tuple streams of a plan's fragments into one stream
   (under the view tree's global sort-attribute order), re-nests the
   tuples and emits tags.  The pass is single-scan: memory is bounded by
   the view-tree depth and the per-element pending list (text payloads
   and reduction-fused children awaiting their document position), never
   by the database size.

   Each tuple denotes a path of node instances: its L columns spell the
   Skolem-function-index prefix, its variable columns carry the Skolem
   term values.  The tagger keeps a stack of open elements; a tuple
   closes elements up to the deepest ancestor it shares with the stack
   and opens the remainder of its path.  Text contents and fused children
   are held per open element as pending items ordered by their sibling
   index and flushed when a later sibling arrives or the element
   closes.

   Streams are consumed through pull cursors and merged with a binary
   min-heap keyed by [compare_heads] (ties broken by stream position, so
   the merge order is identical to a left-to-right scan): selecting the
   next tuple costs O(log streams) comparator calls instead of a linear
   scan over every stream head per tuple. *)

module R = Relational

type sink = {
  on_open : string -> unit;
  on_text : string -> unit;
  on_close : string -> unit;
}

(* --- pending items ----------------------------------------------------- *)

type pending_item = { index : int; payload : payload }

and payload =
  | Text_payload of string
  | Fused_payload of fused_elem

and fused_elem = { fnode : int; mutable fpending : pending_item list }

type open_elem = {
  o_node : int;
  o_identity : R.Value.t list; (* key-var values, in key_vars order *)
  mutable o_pending : pending_item list; (* sorted by index *)
}

let value_text v = if R.Value.is_null v then "" else R.Value.to_string v

(* Emit a fused element and everything pending inside it. *)
let rec emit_fused tree sink (f : fused_elem) =
  let n = View_tree.node tree f.fnode in
  sink.on_open n.View_tree.tag;
  List.iter (fun item -> emit_payload tree sink item.payload) f.fpending;
  f.fpending <- [];
  sink.on_close n.View_tree.tag

and emit_payload tree sink = function
  | Text_payload s -> sink.on_text s
  | Fused_payload f -> emit_fused tree sink f

(* Flush pending items with index < threshold (all if None). *)
let flush_pending tree sink (e : open_elem) threshold =
  let flush, keep =
    List.partition
      (fun item ->
        match threshold with None -> true | Some t -> item.index < t)
      e.o_pending
  in
  List.iter (fun item -> emit_payload tree sink item.payload) flush;
  e.o_pending <- keep

(* --- streams ------------------------------------------------------------ *)

type stream_state = {
  sid : int; (* position in the stream list; merge tie-break *)
  desc : Sql_gen.stream;
  cursor : R.Cursor.t;
  mutable head : R.Tuple.t option;
  level_idx : int array; (* per level 1..max: column index or -1 *)
  var_idx : (string * int) list; (* variable -> column index *)
  member_set : int list;
}

let advance st = st.head <- R.Cursor.next st.cursor

let build_stream_state tree sid (desc : Sql_gen.stream) (cur : R.Cursor.t) :
    stream_state =
  let cols = desc.Sql_gen.cols in
  let find_col k =
    let rec go i =
      if i >= Array.length cols then -1
      else if cols.(i) = k then i
      else go (i + 1)
    in
    go 0
  in
  let max_level =
    Array.fold_left
      (fun m n -> max m (View_tree.level n))
      0 tree.View_tree.nodes
  in
  let level_idx =
    Array.init (max_level + 1) (fun j ->
        if j = 0 then -1 else find_col (Sql_gen.Level_col j))
  in
  let var_idx =
    Array.to_list cols
    |> List.mapi (fun i c -> (i, c))
    |> List.filter_map (fun (i, c) ->
           match c with Sql_gen.Var_col v -> Some (v, i) | _ -> None)
  in
  if R.Cursor.arity cur <> Array.length cols then
    invalid_arg "Tagger: cursor arity does not match stream descriptor";
  let st =
    {
      sid;
      desc;
      cursor = cur;
      head = None;
      level_idx;
      var_idx;
      member_set = desc.Sql_gen.fragment.Partition.members;
    }
  in
  advance st;
  st

let head_value st (t : R.Tuple.t) v =
  match List.assoc_opt v st.var_idx with
  | Some i -> t.(i)
  | None -> R.Value.Null

let level_value st (t : R.Tuple.t) j =
  if j >= Array.length st.level_idx then R.Value.Null
  else
    let idx = st.level_idx.(j) in
    if idx < 0 then R.Value.Null else t.(idx)

(* Hierarchical merge comparator: at each level compare the L component,
   then — only when the components agree — the key variables of that path
   node.  Key variables of sibling nodes never participate, so streams
   that do not carry them (they would read NULL) cannot be mis-ordered
   against streams that do.  A tuple whose path is a prefix of another's
   sorts first (parent rows precede child rows). *)
let compare_heads child_by_component tree sa ta sb tb =
  let rec go parent j =
    let la = level_value sa ta j and lb = level_value sb tb j in
    match (la, lb) with
    | R.Value.Null, R.Value.Null -> 0
    | _ ->
        let c = R.Value.compare_total la lb in
        if c <> 0 then c
        else
          (* equal non-null component: same node *)
          let comp = match la with R.Value.Int k -> k | _ -> -1 in
          (match Hashtbl.find_opt child_by_component (parent, comp) with
          | None -> 0
          | Some id ->
              let n = View_tree.node tree id in
              let rec keys = function
                | [] -> go id (j + 1)
                | v :: rest ->
                    let c =
                      R.Value.compare_total (head_value sa ta v)
                        (head_value sb tb v)
                    in
                    if c <> 0 then c else keys rest
              in
              keys n.View_tree.key_vars)
  in
  go (-1) 1

(* --- heap of stream heads ----------------------------------------------- *)

(* Binary min-heap over stream states, each holding a non-empty head.
   The order is (compare_heads, sid): on equal heads the earlier stream
   wins, exactly reproducing the order a left-to-right linear scan with
   strict [<] replacement would select. *)
module Head_heap = struct
  type t = {
    arr : stream_state array; (* arr.(0..size-1) is the heap *)
    mutable size : int;
    less : stream_state -> stream_state -> bool;
  }

  let head_exn st =
    match st.head with
    | Some t -> t
    | None -> invalid_arg "Tagger: empty stream in merge heap"

  let create less states =
    let live = List.filter (fun st -> st.head <> None) states in
    let h =
      { arr = Array.of_list live; size = List.length live; less }
    in
    (* heapify bottom-up *)
    for i = (h.size / 2) - 1 downto 0 do
      let rec sift i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = ref i in
        if l < h.size && h.less h.arr.(l) h.arr.(!m) then m := l;
        if r < h.size && h.less h.arr.(r) h.arr.(!m) then m := r;
        if !m <> i then begin
          let tmp = h.arr.(i) in
          h.arr.(i) <- h.arr.(!m);
          h.arr.(!m) <- tmp;
          sift !m
        end
      in
      sift i
    done;
    h

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < h.size && h.less h.arr.(l) h.arr.(!m) then m := l;
    if r < h.size && h.less h.arr.(r) h.arr.(!m) then m := r;
    if !m <> i then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(!m);
      h.arr.(!m) <- tmp;
      sift_down h !m
    end

  let min h = if h.size = 0 then None else Some h.arr.(0)

  (* The minimum's head changed (advanced) or emptied: restore order. *)
  let reposition_min h =
    if h.size > 0 then begin
      if h.arr.(0).head = None then begin
        h.size <- h.size - 1;
        if h.size > 0 then h.arr.(0) <- h.arr.(h.size)
      end;
      if h.size > 0 then sift_down h 0
    end
end

(* --- per-tuple processing ----------------------------------------------- *)

(* The open-element stack is stored root-first in a fixed array sized by
   the view-tree depth, with [depth] tracked incrementally: matching a
   tuple's path against the stack, closing to a depth and finding the
   parent are all O(1) per step, with no per-tuple [List.length] or
   [List.rev] recomputation. *)
type ctx = {
  tree : View_tree.t;
  sink : sink;
  child_by_component : (int * int, int) Hashtbl.t; (* (parent|-1, comp) -> id *)
  stack : open_elem option array; (* stack.(0) is outermost; root-first *)
  mutable depth : int; (* open elements = stack.(0 .. depth-1) *)
}

(* Last component of a node's Skolem-function index — O(|sfi|) single
   pass, with a descriptive error instead of [List.nth]'s anonymous
   [Failure "nth"] on an empty index. *)
let last_sfi_component (n : View_tree.node) =
  let rec last = function
    | [ x ] -> x
    | _ :: rest -> last rest
    | [] ->
        invalid_arg
          (Printf.sprintf
             "Tagger: node %d (<%s>) has an empty Skolem-function index"
             n.View_tree.id n.View_tree.tag)
  in
  last n.View_tree.sfi

let make_ctx tree sink =
  let child_by_component = Hashtbl.create 32 in
  Array.iter
    (fun (n : View_tree.node) ->
      let comp = last_sfi_component n in
      let parent = match n.View_tree.parent with Some p -> p | None -> -1 in
      Hashtbl.replace child_by_component (parent, comp) n.View_tree.id)
    tree.View_tree.nodes;
  let max_level =
    Array.fold_left
      (fun m n -> max m (View_tree.level n))
      0 tree.View_tree.nodes
  in
  { tree; sink; child_by_component; stack = Array.make (max_level + 1) None;
    depth = 0 }

(* The node-id path denoted by a tuple (L columns until NULL/absent). *)
let path_of ctx st (t : R.Tuple.t) : int list =
  let rec go parent j acc =
    if j >= Array.length st.level_idx then List.rev acc
    else
      let idx = st.level_idx.(j) in
      if idx < 0 then List.rev acc
      else
        match t.(idx) with
        | R.Value.Int comp -> (
            match Hashtbl.find_opt ctx.child_by_component (parent, comp) with
            | Some id -> go id (j + 1) (id :: acc)
            | None -> List.rev acc)
        | _ -> List.rev acc
  in
  go (-1) 1 []

let identity_of st t (n : View_tree.node) =
  List.map (fun v -> head_value st t v) n.View_tree.key_vars

let close_one ctx =
  if ctx.depth > 0 then begin
    let e =
      match ctx.stack.(ctx.depth - 1) with
      | Some e -> e
      | None -> invalid_arg "Tagger: open-element stack out of sync"
    in
    flush_pending ctx.tree ctx.sink e None;
    ctx.sink.on_close (View_tree.node ctx.tree e.o_node).View_tree.tag;
    ctx.stack.(ctx.depth - 1) <- None;
    ctx.depth <- ctx.depth - 1
  end

let rec close_to_depth ctx depth =
  if ctx.depth > depth then begin
    close_one ctx;
    close_to_depth ctx depth
  end

(* Build the pending list for a freshly opened element instance of node
   [id], using the current tuple when the element belongs to this
   stream's fragment: its text contents plus fused children (from the
   stream's reduction groups), recursively. *)
let initial_pending tree st t id : pending_item list =
  if not (List.mem id st.member_set) then []
  else
    let group =
      try Some (Reduce.group_of st.desc.Sql_gen.groups id) with Not_found -> None
    in
    let rec build id =
      let n = View_tree.node tree id in
      let texts =
        List.map
          (fun (index, c) ->
            let s =
              match c with
              | View_tree.Content_const v -> value_text v
              | View_tree.Content_var v -> value_text (head_value st t v)
            in
            { index; payload = Text_payload s })
          n.View_tree.contents
      in
      let fused =
        match group with
        | None -> []
        | Some g ->
            List.map
              (fun m ->
                let mn = View_tree.node tree m in
                {
                  index = mn.View_tree.sibling_index;
                  payload = Fused_payload { fnode = m; fpending = build m };
                })
              (Reduce.fused_children tree g id)
      in
      List.sort (fun a b -> compare a.index b.index) (texts @ fused)
    in
    build id

(* Open element [id] under the current stack top. *)
let open_element ctx st t id =
  let n = View_tree.node ctx.tree id in
  let parent = if ctx.depth > 0 then ctx.stack.(ctx.depth - 1) else None in
  (* flush earlier-sibling pendings of the parent *)
  (match parent with
  | Some parent ->
      flush_pending ctx.tree ctx.sink parent (Some n.View_tree.sibling_index)
  | None -> ());
  (* if this node is pending in the parent as a fused child (its data
     rode in on an earlier group tuple), adopt that payload *)
  let adopted =
    match parent with
    | Some parent ->
        let found = ref None in
        parent.o_pending <-
          List.filter
            (fun item ->
              match item.payload with
              | Fused_payload f when f.fnode = id && !found = None ->
                  found := Some f;
                  false
              | _ -> true)
            parent.o_pending;
        !found
    | None -> None
  in
  let pending =
    match adopted with
    | Some f -> f.fpending
    | None -> initial_pending ctx.tree st t id
  in
  ctx.sink.on_open n.View_tree.tag;
  if ctx.depth >= Array.length ctx.stack then
    invalid_arg "Tagger: tuple path deeper than the view tree";
  ctx.stack.(ctx.depth) <-
    Some { o_node = id; o_identity = identity_of st t n; o_pending = pending };
  ctx.depth <- ctx.depth + 1

let process_tuple ctx st (t : R.Tuple.t) =
  let path = path_of ctx st t in
  (* find the depth up to which the stack matches the path *)
  let rec common depth path =
    match path with
    | id :: prest when depth < ctx.depth -> (
        match ctx.stack.(depth) with
        | Some e
          when e.o_node = id
               && List.for_all2 R.Value.equal e.o_identity
                    (identity_of st t (View_tree.node ctx.tree id)) ->
            common (depth + 1) prest
        | _ -> (depth, path))
    | _ -> (depth, path)
  in
  let depth, to_open = common 0 path in
  close_to_depth ctx depth;
  List.iter (fun id -> open_element ctx st t id) to_open

(* --- driver -------------------------------------------------------------- *)

let tag_cursors tree (streams : (Sql_gen.stream * R.Cursor.t) list)
    (sink : sink) : unit =
 Obs.Span.with_span "middleware.tag" (fun () ->
  let opens = ref 0 and texts = ref 0 in
  let sink =
    if Obs.Span.tracing () then
      {
        sink with
        on_open =
          (fun t ->
            incr opens;
            sink.on_open t);
        on_text =
          (fun s ->
            incr texts;
            sink.on_text s);
      }
    else sink
  in
  let states =
    List.mapi (fun i (d, c) -> build_stream_state tree i d c) streams
  in
  let tuples_in = ref 0 in
  let ctx = make_ctx tree sink in
  let less a b =
    let c =
      compare_heads ctx.child_by_component tree a (Head_heap.head_exn a) b
        (Head_heap.head_exn b)
    in
    if c <> 0 then c < 0 else a.sid < b.sid
  in
  let heap = Head_heap.create less states in
  sink.on_open tree.View_tree.root_tag;
  let rec loop () =
    match Head_heap.min heap with
    | None -> ()
    | Some st ->
        let t = Head_heap.head_exn st in
        advance st;
        Head_heap.reposition_min heap;
        incr tuples_in;
        process_tuple ctx st t;
        loop ()
  in
  loop ();
  close_to_depth ctx 0;
  sink.on_close tree.View_tree.root_tag;
  if Obs.Span.tracing () then begin
    Obs.Span.add_list
      [
        Obs.Attr.int "streams" (List.length streams);
        Obs.Attr.int "tuples" !tuples_in;
        Obs.Attr.int "elements" !opens;
        Obs.Attr.int "texts" !texts;
        Obs.Attr.int "work" !opens;
      ];
    Obs.Metrics.incr ~by:!opens "tag.elements";
    Obs.Metrics.observe "tag.tuples" (float_of_int !tuples_in)
  end)

let tag tree (streams : (Sql_gen.stream * R.Relation.t) list) (sink : sink) :
    unit =
  tag_cursors tree
    (List.map (fun (d, r) -> (d, R.Cursor.of_relation r)) streams)
    sink

(* Sink building an in-memory document (tests, validation). *)
let document_sink () =
  let stack : (string * Xmlkit.Xml.node list ref) list ref = ref [] in
  let result = ref None in
  let sink =
    {
      on_open = (fun tag -> stack := (tag, ref []) :: !stack);
      on_text =
        (fun s ->
          match !stack with
          | (_, children) :: _ ->
              if s <> "" then children := Xmlkit.Xml.Text s :: !children
          | [] -> invalid_arg "Tagger: text outside any element");
      on_close =
        (fun tag ->
          match !stack with
          | (tag', children) :: rest ->
              if tag <> tag' then
                invalid_arg
                  (Printf.sprintf "Tagger: closing <%s>, open is <%s>" tag tag');
              let el = Xmlkit.Xml.element tag (List.rev !children) in
              (match rest with
              | (_, pchildren) :: _ ->
                  pchildren := Xmlkit.Xml.Element el :: !pchildren;
                  stack := rest
              | [] ->
                  result := Some el;
                  stack := [])
          | [] -> invalid_arg "Tagger: close without open");
    }
  in
  let get () =
    match !result with
    | Some el -> Xmlkit.Xml.document el
    | None -> invalid_arg "Tagger: no document produced"
  in
  (sink, get)

let to_document tree streams : Xmlkit.Xml.t =
  let sink, get = document_sink () in
  tag tree streams sink;
  get ()

let to_document_cursors tree streams : Xmlkit.Xml.t =
  let sink, get = document_sink () in
  tag_cursors tree streams sink;
  get ()

(* Sink serializing directly to a buffer: the constant-space path. *)
let buffer_sink buf =
  {
    on_open =
      (fun tag ->
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        Buffer.add_char buf '>');
    on_text = (fun s -> Buffer.add_string buf (Xmlkit.Serialize.escape s));
    on_close =
      (fun tag ->
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>');
  }

let to_string tree streams : string =
  let buf = Buffer.create 4096 in
  tag tree streams (buffer_sink buf);
  Buffer.contents buf

let to_string_cursors tree streams : string =
  let buf = Buffer.create 4096 in
  tag_cursors tree streams (buffer_sink buf);
  Buffer.contents buf

(* Sink writing straight to a channel: XML leaves the process as it is
   produced, without ever holding the whole document in memory. *)
let channel_sink oc =
  {
    on_open =
      (fun tag ->
        output_char oc '<';
        output_string oc tag;
        output_char oc '>');
    on_text = (fun s -> output_string oc (Xmlkit.Serialize.escape s));
    on_close =
      (fun tag ->
        output_string oc "</";
        output_string oc tag;
        output_char oc '>');
  }

let to_channel tree streams oc : unit =
  tag_cursors tree streams (channel_sink oc)
