(* Edge multiplicity labeling (paper Sec. 3.5).

   For an edge parent -> child with rules F(x1..xm) :- Qp and
   G(x1..xm,..,xn) :- Qc:

     C1: the FD  Rc : x1..xm -> xm+1..xn  holds        (child unique per parent)
     C2: the inclusion  Rp[x1..xm] ⊆ Rc[x1..xm] holds  (child exists per parent)

                 C2        ¬C2
       C1         1         ?
       ¬C1        +         *

   C1 is decided by FD closure over the child's body (keys + equalities;
   inclusion dependencies are not chased — the paper's tractable
   restriction).  C2 is decided by the conservative chase of
   Datalog.Contain over NOT NULL foreign keys and declared inclusion
   dependencies (the "source description"). *)

module R = Relational
module D = Datalog

let label_edge db (t : View_tree.t) (p, c) : Xmlkit.Dtd.multiplicity =
  let parent = View_tree.node t p and child = View_tree.node t c in
  let schema_of name = R.Database.schema db name in
  let c1 =
    D.Fd.functionally_determines ~schema_of ~child:child.View_tree.rule
      parent.View_tree.rule.D.Rule.head_vars
      child.View_tree.rule.D.Rule.head_vars
  in
  let c2 =
    D.Contain.always_extends ~schema_of ~inclusions:(R.Database.inclusions db)
      ~parent:parent.View_tree.rule ~child:child.View_tree.rule
  in
  match (c1, c2) with
  | true, true -> Xmlkit.Dtd.One
  | true, false -> Xmlkit.Dtd.Opt
  | false, true -> Xmlkit.Dtd.Plus
  | false, false -> Xmlkit.Dtd.Star

(* Labels for all edges, parallel to [t.edges]. *)
let label_edges db t : Xmlkit.Dtd.multiplicity array =
  Array.map (label_edge db t) t.View_tree.edges

let to_string t labels =
  String.concat "\n"
    (Array.to_list
       (Array.mapi
          (fun i (p, c) ->
            Printf.sprintf "%s -%s-> %s"
              (View_tree.skolem_name (View_tree.node t p).View_tree.sfi)
              (match labels.(i) with
              | Xmlkit.Dtd.One -> "1"
              | Xmlkit.Dtd.Opt -> "?"
              | Xmlkit.Dtd.Plus -> "+"
              | Xmlkit.Dtd.Star -> "*")
              (View_tree.skolem_name (View_tree.node t c).View_tree.sfi))
          t.View_tree.edges))
