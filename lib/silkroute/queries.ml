(* The paper's two benchmark views over TPC-H (Figs. 3, 6, 12) in RXL
   concrete syntax, plus the DTD of Fig. 2.

   Query 1 nests the two one-to-many edges in a chain
   (supplier -*-> part -*-> order); Query 2 puts them in parallel
   (supplier -*-> part, supplier -*-> order).  Both view trees have 10
   nodes and 9 edges, so each admits 2^9 = 512 execution plans. *)

let query1_text =
  {|
view suppliers
{
  from Supplier $s
  construct
    <supplier>
      <name>$s.name</name>
      {
        from Nation $n
        where $s.nationkey = $n.nationkey
        construct
          <nation>$n.name</nation>
      }
      {
        from Nation $n2, Region $r
        where $s.nationkey = $n2.nationkey, $n2.regionkey = $r.regionkey
        construct
          <region>$r.name</region>
      }
      {
        from PartSupp $ps, Part $p
        where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey
        construct
          <part>
            <name>$p.name</name>
            {
              from LineItem $l, Orders $o
              where $ps.partkey = $l.partkey,
                    $ps.suppkey = $l.suppkey,
                    $l.orderkey = $o.orderkey
              construct
                <order>
                  <orderkey>$o.orderkey</orderkey>
                  {
                    from Customer $c
                    where $o.custkey = $c.custkey
                    construct <customer>$c.name</customer>
                  }
                  {
                    from Customer $c2, Nation $n3
                    where $o.custkey = $c2.custkey,
                          $c2.nationkey = $n3.nationkey
                    construct <nation>$n3.name</nation>
                  }
                </order>
            }
          </part>
      }
    </supplier>
}
|}

let query2_text =
  {|
view suppliers
{
  from Supplier $s
  construct
    <supplier>
      <name>$s.name</name>
      {
        from Nation $n
        where $s.nationkey = $n.nationkey
        construct
          <nation>$n.name</nation>
      }
      {
        from Nation $n2, Region $r
        where $s.nationkey = $n2.nationkey, $n2.regionkey = $r.regionkey
        construct
          <region>$r.name</region>
      }
      {
        from PartSupp $ps, Part $p
        where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey
        construct
          <part>
            <name>$p.name</name>
          </part>
      }
      {
        from LineItem $l, Orders $o
        where $s.suppkey = $l.suppkey, $l.orderkey = $o.orderkey
        construct
          <order>
            <orderkey>$o.orderkey</orderkey>
            {
              from Customer $c
              where $o.custkey = $c.custkey
              construct <customer>$c.name</customer>
            }
            {
              from Customer $c2, Nation $n3
              where $o.custkey = $c2.custkey,
                    $c2.nationkey = $n3.nationkey
              construct <nation>$n3.name</nation>
            }
          </order>
      }
    </supplier>
}
|}

(* The simplified boxed query of the paper's Sec. 2 / Fig. 4: supplier
   with one nation child and one part child. *)
let fragment_text =
  {|
view suppliers
{
  from Supplier $s
  construct
    <supplier>
      {
        from Nation $n
        where $s.nationkey = $n.nationkey
        construct <nation>$n.name</nation>
      }
      {
        from PartSupp $ps, Part $p
        where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey
        construct <part>$p.name</part>
      }
    </supplier>
}
|}

(* Query 3 is not in the paper: it is the "larger set of test queries"
   its Sec. 5.1 calls for, used to check that the fixed planner
   thresholds transfer to other views.  A customer-centric export whose
   order -> item edge is guaranteed ('+' label) by the declared inclusion
   dependency Orders[orderkey] ⊆ LineItem[orderkey]. *)
let query3_text =
  {|
view customers
{
  from Customer $c
  construct
    <customer>
      <name>$c.name</name>
      {
        from Nation $n
        where $c.nationkey = $n.nationkey
        construct
          <nation>$n.name</nation>
      }
      {
        from Orders $o
        where $c.custkey = $o.custkey
        construct
          <order>
            <orderkey>$o.orderkey</orderkey>
            {
              from LineItem $l
              where $o.orderkey = $l.orderkey
              construct
                <item>
                  {
                    from Part $p
                    where $l.partkey = $p.partkey
                    construct <part>$p.name</part>
                  }
                  <qty>$l.qty</qty>
                </item>
            }
          </order>
      }
    </customer>
}
|}

let query1 () = Rxl_parser.parse query1_text
let query2 () = Rxl_parser.parse query2_text
let query3 () = Rxl_parser.parse query3_text
let fragment () = Rxl_parser.parse fragment_text

let dtd_query1 =
  let open Xmlkit.Dtd in
  create ~root:"suppliers"
    [
      { el_name = "suppliers"; el_content = Children [ ("supplier", Star) ] };
      {
        el_name = "supplier";
        el_content =
          Children
            [ ("name", One); ("nation", One); ("region", One); ("part", Star) ];
      };
      {
        el_name = "part";
        el_content = Children [ ("name", One); ("order", Star) ];
      };
      {
        el_name = "order";
        el_content =
          Children [ ("orderkey", One); ("customer", One); ("nation", One) ];
      };
      { el_name = "name"; el_content = Pcdata };
      { el_name = "nation"; el_content = Pcdata };
      { el_name = "region"; el_content = Pcdata };
      { el_name = "orderkey"; el_content = Pcdata };
      { el_name = "customer"; el_content = Pcdata };
    ]

let dtd_query2 =
  let open Xmlkit.Dtd in
  create ~root:"suppliers"
    [
      { el_name = "suppliers"; el_content = Children [ ("supplier", Star) ] };
      {
        el_name = "supplier";
        el_content =
          Children
            [
              ("name", One); ("nation", One); ("region", One); ("part", Star);
              ("order", Star);
            ];
      };
      { el_name = "part"; el_content = Children [ ("name", One) ] };
      {
        el_name = "order";
        el_content =
          Children [ ("orderkey", One); ("customer", One); ("nation", One) ];
      };
      { el_name = "name"; el_content = Pcdata };
      { el_name = "nation"; el_content = Pcdata };
      { el_name = "region"; el_content = Pcdata };
      { el_name = "orderkey"; el_content = Pcdata };
      { el_name = "customer"; el_content = Pcdata };
    ]

let dtd_query3 =
  let open Xmlkit.Dtd in
  create ~root:"customers"
    [
      { el_name = "customers"; el_content = Children [ ("customer", Star) ] };
      {
        el_name = "customer";
        el_content =
          Children [ ("name", One); ("nation", One); ("order", Star) ];
      };
      {
        el_name = "order";
        el_content = Children [ ("orderkey", One); ("item", Plus) ];
      };
      {
        el_name = "item";
        el_content = Children [ ("part", One); ("qty", One) ];
      };
      { el_name = "name"; el_content = Pcdata };
      { el_name = "nation"; el_content = Pcdata };
      { el_name = "orderkey"; el_content = Pcdata };
      { el_name = "part"; el_content = Pcdata };
      { el_name = "qty"; el_content = Pcdata };
    ]
