(* View-tree partitioning (paper Sec. 3.2).

   A plan is a subset of view-tree edges: kept edges merge their
   endpoints into one SQL query; cut edges separate tuple streams.  Every
   subset of the |E| edges is a plan — a spanning forest of the view tree
   — so there are 2^|E| plans (512 for the paper's 9-edge queries). *)

type t = {
  tree : View_tree.t;
  keep : bool array; (* parallel to tree.edges *)
}

(* A fragment: one tree of the spanning forest = one SQL query = one
   tuple stream. *)
type fragment = {
  root : int; (* node id of the fragment's root *)
  members : int list; (* node ids, document order (root first) *)
  internal_edges : (int * int) list; (* kept edges inside the fragment *)
}

let of_keep tree keep =
  if Array.length keep <> View_tree.edge_count tree then
    invalid_arg "Partition.of_keep: keep array must match edge count";
  { tree; keep }

let of_mask tree mask =
  let n = View_tree.edge_count tree in
  if mask < 0 || (n < 62 && mask >= 1 lsl n) then
    invalid_arg "Partition.of_mask: mask out of range";
  { tree; keep = Array.init n (fun i -> mask land (1 lsl i) <> 0) }

let to_mask p =
  Array.to_list p.keep
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( lor ) 0

let unified tree =
  { tree; keep = Array.make (View_tree.edge_count tree) true }

let fully_partitioned tree =
  { tree; keep = Array.make (View_tree.edge_count tree) false }

let all_masks tree =
  let n = View_tree.edge_count tree in
  if n >= 20 then
    invalid_arg "Partition.all_masks: too many edges for exhaustive plans";
  List.init (1 lsl n) (fun m -> m)

let kept_edges p =
  Array.to_list p.tree.View_tree.edges
  |> List.filteri (fun i _ -> p.keep.(i))

let cut_edges p =
  Array.to_list p.tree.View_tree.edges
  |> List.filteri (fun i _ -> not p.keep.(i))

(* Connected components under kept edges. *)
let fragments p : fragment list =
  let tree = p.tree in
  let n = View_tree.node_count tree in
  let comp = Array.init n (fun i -> i) in
  let rec find i = if comp.(i) = i then i else find comp.(i) in
  List.iter
    (fun (a, b) ->
      let ra = find a and rb = find b in
      if ra <> rb then comp.(max ra rb) <- min ra rb)
    (kept_edges p);
  let members = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    let r = find i in
    let cur = try Hashtbl.find members r with Not_found -> [] in
    Hashtbl.replace members r (i :: cur)
  done;
  let kept = kept_edges p in
  Hashtbl.fold
    (fun root ms acc ->
      {
        root;
        members = ms;
        internal_edges =
          List.filter (fun (a, _) -> find a = root) kept;
      }
      :: acc)
    members []
  |> List.sort (fun a b -> compare a.root b.root)

let stream_count p = List.length (fragments p)

(* One degradation step down the plan lattice: cut the fragment's first
   internal edge (view-tree edge order, so the cut lands closest to the
   fragment root), splitting it into two finer fragments whose streams
   jointly cover the same view-tree nodes.  Node ids are assigned in BFS
   order with parents before children, so each resulting component's
   root is its minimum member id. *)
let split (f : fragment) : fragment list option =
  match f.internal_edges with
  | [] -> None (* single node (or no kept edges): nothing finer exists *)
  | _cut :: remaining ->
      let comp = Hashtbl.create 8 in
      List.iter (fun m -> Hashtbl.replace comp m m) f.members;
      let rec find i =
        let p = Hashtbl.find comp i in
        if p = i then i else find p
      in
      List.iter
        (fun (a, b) ->
          let ra = find a and rb = find b in
          if ra <> rb then Hashtbl.replace comp (max ra rb) (min ra rb))
        remaining;
      let roots = List.sort_uniq compare (List.map find f.members) in
      Some
        (List.map
           (fun r ->
             {
               root = r;
               members = List.filter (fun m -> find m = r) f.members;
               internal_edges =
                 List.filter (fun (a, _) -> find a = r) remaining;
             })
           roots)

(* Human-readable plan id, e.g. "{S1-S1.1, S1.4-S1.4.2}". *)
let to_string p =
  let name id = View_tree.skolem_name (View_tree.node p.tree id).View_tree.sfi in
  "{"
  ^ String.concat ", "
      (List.map (fun (a, b) -> name a ^ "-" ^ name b) (kept_edges p))
  ^ "}"
