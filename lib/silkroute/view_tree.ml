(* View trees (paper Sec. 3.1).

   A view tree is the intermediate representation of an RXL view: the
   global XML template (one node per element template, merged by Skolem
   function) where each node carries a non-recursive datalog rule that
   computes all instances of that node.

   Construction from RXL:
   - every binding occurrence gets a unique alias (also the SQL alias);
   - equality conditions that involve a binding introduced in the same
     block unify the two column variables (giving the shared-variable
     datalog bodies of the paper's Fig. 4); other conditions stay as
     filters;
   - a node's rule body conjoins the atoms and filters of every block in
     scope; its Skolem term (head) takes the keys of all in-scope tuple
     variables plus the node's content variables;
   - Skolem-function indices (S1.4.2 = [1;4;2]) number elements
     hierarchically; Skolem-term variable indices (p,q) assign p = level
     of the node that introduces the variable and q = a per-level
     counter, in BFS order (Sec. 3.1). *)

module R = Relational
module D = Datalog

type content = Content_var of string | Content_const of R.Value.t

type node = {
  id : int;
  parent : int option;
  tag : string;
  explicit_skolem : string option;
  sfi : int list; (* Skolem-function index, e.g. [1;4;2] *)
  sibling_index : int; (* position among the parent's content items *)
  scope : (string * string) list; (* (alias, table) for each atom, in order *)
  rule : D.Rule.t; (* head_name = skolem name, head_vars = key @ content *)
  key_vars : string list; (* instance identity *)
  contents : (int * content) list; (* item index -> text payload *)
  delta_atoms : D.Rule.atom list; (* atoms not in the parent's body *)
  delta_scope : (string * string) list; (* scope entries for delta atoms *)
  delta_filters : D.Rule.filter list;
}

type t = {
  root_tag : string;
  nodes : node array; (* id = index, BFS order *)
  edges : (int * int) array; (* (parent, child), BFS order *)
  svi : (string * (int * int)) list; (* variable -> (level p, counter q) *)
}

let level n = List.length n.sfi

let skolem_name sfi =
  "S" ^ String.concat "." (List.map string_of_int sfi)

let node t id = t.nodes.(id)
let node_count t = Array.length t.nodes
let edge_count t = Array.length t.edges

let children t id =
  Array.to_list t.edges
  |> List.filter_map (fun (p, c) -> if p = id then Some c else None)

let roots t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if n.parent = None then Some n.id else None)

let svi_of t v = List.assoc_opt v t.svi

let content_vars n =
  List.filter_map
    (fun (_, c) -> match c with Content_var v -> Some v | Content_const _ -> None)
    n.contents

(* --- construction ----------------------------------------------------- *)

exception Unsupported of string

(* Union-find over (alias, column) pairs, for variable unification. *)
module UF = struct
  type t = (string * string, string * string) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find (uf : t) x =
    match Hashtbl.find_opt uf x with
    | None -> x
    | Some p ->
        let r = find uf p in
        if r <> p then Hashtbl.replace uf x r;
        r

  (* Union with a preferred representative: [keep] survives. *)
  let union (uf : t) ~keep other =
    let rk = find uf keep and ro = find uf other in
    if rk <> ro then Hashtbl.replace uf ro rk
end

type build_ctx = {
  db : R.Database.t;
  uf : UF.t;
  mutable alias_counts : (string * int) list;
  mutable nodes_rev : node list;
  mutable edges_rev : (int * int) list;
  mutable next_id : int;
}

let fresh_alias ctx base =
  let n =
    match List.assoc_opt base ctx.alias_counts with Some n -> n | None -> 0
  in
  ctx.alias_counts <- (base, n + 1) :: List.remove_assoc base ctx.alias_counts;
  if n = 0 then base else Printf.sprintf "%s%d" base (n + 1)

let var_name (alias, col) = alias ^ "_" ^ col

(* Scope carried down the template walk. *)
type walk_scope = {
  bindings : (string * string * string) list;
  (* (rxl var, alias, table) — innermost last *)
  filters : D.Rule.filter list;
  var_of_field : (string * string) -> (string * string);
  (* (rxl var, col) -> canonical (alias, col), raises Not_found *)
}

let of_view (db : R.Database.t) (v : Rxl.view) : t =
  Rxl.check db v;
  let ctx =
    {
      db;
      uf = UF.create ();
      alias_counts = [];
      nodes_rev = [];
      edges_rev = [];
      next_id = 0;
    }
  in

  (* Pass 1: assign aliases to binding occurrences and run the
     unification over equality conditions, so variable names are globally
     consistent before any rule is built. *)
  let alias_of_block : (Rxl.query, (string * string) list) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Passes 2 and 3 replay the prepass scopes; a missing block means the
     prepass never visited it, which a bare [Not_found] would hide. *)
  let aliases_of_block (q : Rxl.query) =
    match Hashtbl.find_opt alias_of_block q with
    | Some aliases -> aliases
    | None ->
        let block =
          String.concat ", "
            (List.map
               (fun (b : Rxl.binding) -> b.Rxl.table ^ " $" ^ b.Rxl.var)
               q.Rxl.from_)
        in
        invalid_arg
          ("View_tree: no aliases recorded for query block [from " ^ block
         ^ "] — the block was not visited by the alias prepass")
  in
  let rec prepass (outer : (string * string * string) list) (q : Rxl.query) =
    let new_bindings =
      List.map
        (fun (b : Rxl.binding) -> (b.Rxl.var, fresh_alias ctx b.Rxl.var, b.Rxl.table))
        q.Rxl.from_
    in
    Hashtbl.replace alias_of_block q
      (List.map (fun (v, a, _) -> (v, a)) new_bindings);
    let scope = outer @ new_bindings in
    let lookup_field (var, col) =
      match List.find_opt (fun (v, _, _) -> v = var) scope with
      | Some (_, alias, _) -> (alias, col)
      | None -> raise (Unsupported ("unbound $" ^ var))
    in
    let introduced_here var = List.exists (fun (v, _, _) -> v = var) new_bindings in
    List.iter
      (fun (c : Rxl.condition) ->
        match (c.Rxl.op, c.Rxl.left, c.Rxl.right) with
        | R.Expr.Eq, Rxl.Field (v1, c1), Rxl.Field (v2, c2) ->
            let p1 = lookup_field (v1, c1) and p2 = lookup_field (v2, c2) in
            (* unify when either side is introduced in this block; the
               outer (or left) side's name survives *)
            if introduced_here v2 && not (introduced_here v1) then
              UF.union ctx.uf ~keep:(UF.find ctx.uf p1) p2
            else if introduced_here v1 && not (introduced_here v2) then
              UF.union ctx.uf ~keep:(UF.find ctx.uf p2) p1
            else if introduced_here v1 && introduced_here v2 then
              UF.union ctx.uf ~keep:(UF.find ctx.uf p1) p2
        | _ -> ())
      q.Rxl.where_;
    List.iter (prepass_node scope) q.Rxl.construct
  and prepass_node scope = function
    | Rxl.Element e -> List.iter (prepass_node scope) e.Rxl.content
    | Rxl.Text _ -> ()
    | Rxl.Block q -> prepass scope q
  in
  List.iter (prepass []) v.Rxl.queries;

  (* Referenced columns: keys of all bound tables + fields used in
     conditions and contents.  Collected so every atom of an alias is
     identical in every rule. *)
  let referenced : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let canon (alias, col) = UF.find ctx.uf (alias, col) in
  let reference (alias, col) =
    Hashtbl.replace referenced (canon (alias, col)) ()
  in

  (* Pass 2 will need field resolution identical to pass 1: rebuild the
     scopes using the recorded aliases. *)
  let rec collect (outer : (string * string * string) list) (q : Rxl.query) =
    let aliases = aliases_of_block q in
    let new_bindings =
      List.map
        (fun (b : Rxl.binding) ->
          (b.Rxl.var, List.assoc b.Rxl.var aliases, b.Rxl.table))
        q.Rxl.from_
    in
    let scope = outer @ new_bindings in
    let lookup_field (var, col) =
      match List.find_opt (fun (v, _, _) -> v = var) scope with
      | Some (_, alias, _) -> (alias, col)
      | None -> raise (Unsupported ("unbound $" ^ var))
    in
    List.iter
      (fun (_, alias, table) ->
        let schema = R.Database.schema db table in
        List.iter (fun k -> reference (alias, k)) schema.R.Schema.key)
      new_bindings;
    List.iter
      (fun (c : Rxl.condition) ->
        let refer = function
          | Rxl.Field (v, col) -> reference (lookup_field (v, col))
          | Rxl.Const _ -> ()
        in
        refer c.Rxl.left;
        refer c.Rxl.right)
      q.Rxl.where_;
    List.iter (collect_node scope) q.Rxl.construct
  and collect_node scope = function
    | Rxl.Element e -> List.iter (collect_node scope) e.Rxl.content
    | Rxl.Text (Rxl.Field (v, col)) ->
        let lookup (var, c) =
          match List.find_opt (fun (v', _, _) -> v' = var) scope with
          | Some (_, alias, _) -> (alias, c)
          | None -> raise (Unsupported ("unbound $" ^ var))
        in
        reference (lookup (v, col))
    | Rxl.Text (Rxl.Const _) -> ()
    | Rxl.Block q -> collect scope q
  in
  List.iter (collect []) v.Rxl.queries;

  (* Atom for one bound alias. *)
  let atom_of (alias, table) : D.Rule.atom =
    let schema = R.Database.schema db table in
    let args =
      List.map
        (fun col ->
          let rep = canon (alias, col) in
          if Hashtbl.mem referenced rep then D.Rule.Var (var_name rep)
          else D.Rule.Wild)
        (R.Schema.column_names schema)
    in
    D.Rule.atom table args
  in

  (* Pass 3: build nodes. *)
  let pending_contents : (int * (int * content)) list ref = ref [] in
  let rec walk_query (ws : walk_scope) (parent : (int * node) option)
      (item_index : int ref) (q : Rxl.query) =
    let aliases = aliases_of_block q in
    let new_bindings =
      List.map
        (fun (b : Rxl.binding) ->
          (b.Rxl.var, List.assoc b.Rxl.var aliases, b.Rxl.table))
        q.Rxl.from_
    in
    let bindings = ws.bindings @ new_bindings in
    let var_of_field (var, col) =
      match List.find_opt (fun (v, _, _) -> v = var) bindings with
      | Some (_, alias, _) -> canon (alias, col)
      | None -> raise (Unsupported ("unbound $" ^ var))
    in
    let term_of = function
      | Rxl.Field (v, col) -> D.Rule.Var (var_name (var_of_field (v, col)))
      | Rxl.Const c -> D.Rule.Const c
    in
    let new_filters =
      List.filter_map
        (fun (c : Rxl.condition) ->
          match (c.Rxl.op, c.Rxl.left, c.Rxl.right) with
          | R.Expr.Eq, Rxl.Field _, Rxl.Field _ ->
              let l = term_of c.Rxl.left and r = term_of c.Rxl.right in
              if l = r then None (* absorbed by unification *)
              else Some (D.Rule.filter c.Rxl.op l r)
          | op, l, r -> Some (D.Rule.filter op (term_of l) (term_of r)))
        q.Rxl.where_
    in
    let ws =
      { bindings; filters = ws.filters @ new_filters; var_of_field }
    in
    List.iter (walk_item ws parent item_index) q.Rxl.construct

  and walk_item ws parent item_index = function
    | Rxl.Text op ->
        let idx = !item_index in
        incr item_index;
        (match parent with
        | None -> raise (Unsupported "text at document root")
        | Some (pid, _) ->
            (* attach to the parent node: the content list is patched at
               the end of the build, so record it via a mutable side
               table *)
            let c =
              match op with
              | Rxl.Field (v, col) ->
                  Content_var (var_name (ws.var_of_field (v, col)))
              | Rxl.Const c -> Content_const c
            in
            pending_contents := (pid, (idx, c)) :: !pending_contents)
    | Rxl.Block q -> walk_query ws parent item_index q
    | Rxl.Element e ->
        let idx = !item_index in
        incr item_index;
        let id = ctx.next_id in
        ctx.next_id <- id + 1;
        let scope = List.map (fun (_, a, t) -> (a, t)) ws.bindings in
        let atoms = List.map atom_of scope in
        let key_vars =
          List.concat_map
            (fun (_, alias, table) ->
              let schema = R.Database.schema db table in
              List.map (fun k -> var_name (canon (alias, k))) schema.R.Schema.key)
            ws.bindings
          |> List.fold_left
               (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
               []
        in
        let parent_id, parent_node =
          match parent with
          | None -> (None, None)
          | Some (pid, pn) -> (Some pid, Some pn)
        in
        let parent_atoms =
          match parent_node with Some p -> p.rule.D.Rule.atoms | None -> []
        in
        let parent_filters =
          match parent_node with Some p -> p.rule.D.Rule.filters | None -> []
        in
        let delta_atoms =
          List.filter (fun a -> not (List.mem a parent_atoms)) atoms
        in
        let delta_scope =
          List.filter (fun s -> not (List.mem (atom_of s) parent_atoms)) scope
        in
        let delta_filters =
          List.filter (fun f -> not (List.mem f parent_filters)) ws.filters
        in
        (match parent_id with
        | Some pid -> ctx.edges_rev <- (pid, id) :: ctx.edges_rev
        | None -> ());
        let n =
          {
            id;
            parent = parent_id;
            tag = e.Rxl.tag;
            explicit_skolem = e.Rxl.skolem;
            sfi = []; (* assigned below *)
            sibling_index = idx;
            scope;
            rule =
              D.Rule.make ~head_name:"" ~head_vars:key_vars (* patched *)
                ~filters:ws.filters atoms;
            key_vars;
            contents = [];
            delta_atoms;
            delta_scope;
            delta_filters;
          }
        in
        ctx.nodes_rev <- n :: ctx.nodes_rev;
        let child_index = ref 0 in
        List.iter (walk_item ws (Some (id, n)) child_index) e.Rxl.content
  in

  let top_index = ref 0 in
  List.iter
    (fun q ->
      walk_query
        { bindings = []; filters = []; var_of_field = (fun _ -> raise Not_found) }
        None top_index q)
    v.Rxl.queries;

  let nodes = Array.of_list (List.rev ctx.nodes_rev) in
  (* Attach contents. *)
  let nodes =
    Array.map
      (fun n ->
        let contents =
          List.filter_map
            (fun (pid, c) -> if pid = n.id then Some c else None)
            (List.rev !pending_contents)
          |> List.sort compare
        in
        { n with contents })
      nodes
  in
  (* Assign SFIs hierarchically: root elements 1..; children numbered by
     element order under their parent.  Parents precede children in
     creation order, so a single left-to-right pass suffices. *)
  let child_counter = Hashtbl.create 16 in
  let next_child key =
    let c = try Hashtbl.find child_counter key with Not_found -> 0 in
    Hashtbl.replace child_counter key (c + 1);
    c + 1
  in
  let sfis = Array.make (Array.length nodes) [] in
  Array.iteri
    (fun i n ->
      assert (match n.parent with Some pid -> pid < i | None -> true);
      sfis.(i) <-
        (match n.parent with
        | None -> [ next_child (-1) ]
        | Some pid -> sfis.(pid) @ [ next_child pid ]))
    nodes;
  let nodes = Array.mapi (fun i n -> { n with sfi = sfis.(i) }) nodes in
  (* Patch rules: head name = Skolem name (explicit if given), head vars =
     key vars + content vars. *)
  let nodes =
    Array.map
      (fun n ->
        let cvars =
          List.filter_map
            (fun (_, c) ->
              match c with Content_var v -> Some v | Content_const _ -> None)
            n.contents
        in
        let head_vars =
          n.key_vars
          @ List.filter (fun v -> not (List.mem v n.key_vars)) cvars
        in
        let name =
          match n.explicit_skolem with
          | Some s -> s
          | None -> skolem_name n.sfi
        in
        { n with rule = { n.rule with D.Rule.head_name = name; head_vars } })
      nodes
  in
  (* SVI assignment: BFS by (level, id); q is a per-level counter. *)
  let by_level =
    Array.to_list nodes
    |> List.sort (fun a b ->
           compare (List.length a.sfi, a.id) (List.length b.sfi, b.id))
  in
  let svi = ref [] in
  let level_counters = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let p = List.length n.sfi in
      List.iter
        (fun v ->
          if not (List.mem_assoc v !svi) then begin
            let q = (try Hashtbl.find level_counters p with Not_found -> 0) + 1 in
            Hashtbl.replace level_counters p q;
            svi := !svi @ [ (v, (p, q)) ]
          end)
        n.rule.D.Rule.head_vars)
    by_level;
  let edges = Array.of_list (List.rev ctx.edges_rev) in
  (* Order edges BFS: by (parent level, parent id, child sibling order). *)
  let edges_list =
    Array.to_list edges
    |> List.sort (fun (p1, c1) (p2, c2) ->
           compare
             (List.length nodes.(p1).sfi, p1, nodes.(c1).sfi)
             (List.length nodes.(p2).sfi, p2, nodes.(c2).sfi))
  in
  { root_tag = v.Rxl.root_tag; nodes; edges = Array.of_list edges_list; svi = !svi }

(* --- derived info ------------------------------------------------------ *)

(* Global sort-attribute sequence: L1, key vars(level 1), L2, key
   vars(level 2), …, then all content-only variables.  Every partitioned
   relation is sorted by the restriction of this sequence to its own
   columns, which is what lets the tagger merge streams with a single
   comparator (Sec. 3.2).

   Deviation from the paper's interleaved L/V order: content-only
   variables (those in no node's key set) are moved after every level
   attribute.  They are functionally determined by the keys, so grouping
   is unaffected, but placing them before deeper L columns would let a
   child-fragment row (content = NULL) sort before its parent's own row
   (content present), breaking the parent-first merge invariant. *)
type sort_attr = Level of int | Variable of string

let sort_attrs t =
  let max_level =
    Array.fold_left (fun m n -> max m (List.length n.sfi)) 0 t.nodes
  in
  let is_key v =
    Array.exists (fun n -> List.mem v n.key_vars) t.nodes
  in
  let key_vars_at p =
    List.filter_map
      (fun (v, (p', q)) -> if p' = p && is_key v then Some (q, v) else None)
      t.svi
    |> List.sort compare
    |> List.map snd
  in
  let content_vars =
    List.filter_map (fun (v, pq) -> if is_key v then None else Some (pq, v)) t.svi
    |> List.sort compare
    |> List.map snd
  in
  List.concat_map
    (fun p -> Level p :: List.map (fun v -> Variable v) (key_vars_at p))
    (List.init max_level (fun i -> i + 1))
  @ List.map (fun v -> Variable v) content_vars

(* Ground-truth instance set of a node, via naive datalog evaluation. *)
let instances db t id = Datalog.Eval.run db t.nodes.(id).rule

let pp fmt t =
  Array.iter
    (fun n ->
      Format.fprintf fmt "%s%s <%s>  %s@,"
        (String.make (2 * (level n - 1)) ' ')
        (skolem_name n.sfi) n.tag
        (D.Rule.to_string n.rule))
    t.nodes

let to_string t = Format.asprintf "@[<v>%a@]" pp t
