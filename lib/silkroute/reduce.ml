(* View-tree reduction (paper Sec. 3.5).

   Nodes connected by '1'-labeled edges compute functionally-dependent,
   always-present queries, so their rules can be combined into one
   query: the group's SQL fragment selects the member variables in a
   single (wider) tuple instead of outer-joining per-member branches.
   Within a partition fragment, reduction collapses the fragment's
   internal 1-edges; cut edges are untouched (the partition — the number
   of tuple streams — is preserved, which is how the paper applies
   reduction to each of the 512 plans). *)

type group = {
  g_root : int; (* member closest to the view-tree root *)
  g_members : int list; (* node ids, document order, root first *)
}

let singleton id = { g_root = id; g_members = [ id ] }

(* Partition a fragment's members into groups.  [labels] is parallel to
   [tree.edges]; [None] disables reduction (every member is its own
   group). *)
let groups_of_fragment (tree : View_tree.t)
    ~(labels : Xmlkit.Dtd.multiplicity array option)
    (f : Partition.fragment) : group list =
  match labels with
  | None -> List.map singleton f.Partition.members
  | Some labels ->
      let label_of =
        let tbl = Hashtbl.create 16 in
        Array.iteri
          (fun i e -> Hashtbl.replace tbl e labels.(i))
          tree.View_tree.edges;
        fun e -> Hashtbl.find tbl e
      in
      (* union-find over members, restricted to internal 1-edges *)
      let repr = Hashtbl.create 16 in
      List.iter (fun m -> Hashtbl.replace repr m m) f.Partition.members;
      let rec find i =
        let p = Hashtbl.find repr i in
        if p = i then i
        else begin
          let r = find p in
          Hashtbl.replace repr i r;
          r
        end
      in
      List.iter
        (fun (p, c) ->
          if label_of (p, c) = Xmlkit.Dtd.One then begin
            let rp = find p and rc = find c in
            if rp <> rc then Hashtbl.replace repr (max rp rc) (min rp rc)
          end)
        f.Partition.internal_edges;
      let members_of = Hashtbl.create 8 in
      List.iter
        (fun m ->
          let r = find m in
          let cur = try Hashtbl.find members_of r with Not_found -> [] in
          Hashtbl.replace members_of r (m :: cur))
        (List.rev f.Partition.members);
      Hashtbl.fold
        (fun root ms acc -> { g_root = root; g_members = ms } :: acc)
        members_of []
      |> List.sort (fun a b -> compare a.g_root b.g_root)

(* Fused children of [m] within its group: group members whose view-tree
   parent is [m]. *)
let fused_children tree (g : group) m =
  List.filter
    (fun c ->
      c <> g.g_root && (View_tree.node tree c).View_tree.parent = Some m)
    g.g_members

(* The group that contains node [id]. *)
let group_of groups id =
  List.find (fun g -> List.mem id g.g_members) groups

(* Child groups of group [g]: groups (of the same fragment) whose root's
   parent is a member of [g]. *)
let child_groups tree groups g =
  List.filter
    (fun cg ->
      cg.g_root <> g.g_root
      &&
      match (View_tree.node tree cg.g_root).View_tree.parent with
      | Some p -> List.mem p g.g_members
      | None -> false)
    groups

let to_string tree groups =
  String.concat "; "
    (List.map
       (fun g ->
         "{"
         ^ String.concat ","
             (List.map
                (fun m ->
                  View_tree.skolem_name (View_tree.node tree m).View_tree.sfi)
                g.g_members)
         ^ "}")
       groups)
