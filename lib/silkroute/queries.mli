(** The paper's benchmark views over TPC-H.

    Query 1 (Fig. 3/6) chains its two one-to-many edges
    (supplier → part → order); Query 2 (Fig. 12) puts them in parallel.
    Both view trees have 10 nodes and 9 edges → 512 plans each. *)

val query1_text : string
(** RXL source of Query 1. *)

val query2_text : string
val fragment_text : string
(** The simplified boxed query of Sec. 2 / Fig. 4 (supplier, nation,
    part). *)

val query1 : unit -> Rxl.view
val query2 : unit -> Rxl.view
val fragment : unit -> Rxl.view

val dtd_query1 : Xmlkit.Dtd.t
(** The DTD of the paper's Fig. 2 (plus the [suppliers] document root). *)

val dtd_query2 : Xmlkit.Dtd.t

val query3_text : string
(** Not from the paper: the extra test query its Sec. 5.1 calls for —
    a customer-centric export whose order→item edge carries a '+' label
    via the declared inclusion Orders ⊆ LineItem. *)

val query3 : unit -> Rxl.view
val dtd_query3 : Xmlkit.Dtd.t
