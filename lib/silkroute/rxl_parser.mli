(** Parser for RXL concrete syntax.

    Grammar (round-trips with {!Rxl.to_string}):
    {v
    view    := 'view' IDENT block+
    block   := '{' query '}'
    query   := 'from' binding {',' binding}
               ['where' cond {',' cond}] 'construct' node+
    binding := TABLE $var
    node    := element | block | $var.field | literal
    element := '<' tag ['skolem' '=' name] '>' node* '</' tag '>'
    v} *)

exception Parse_error of string

val parse : string -> Rxl.view
(** Raises {!Parse_error} or {!Rxl_lexer.Lex_error} on malformed input. *)
