(** View-tree reduction (paper Sec. 3.5).

    Collapses nodes connected by '1'-labeled edges into groups whose
    rules are combined into one query.  Applied within each partition
    fragment: internal 1-edges collapse, cut edges are untouched, so a
    plan's stream count is preserved. *)

type group = {
  g_root : int;  (** member closest to the view-tree root *)
  g_members : int list;  (** node ids, document order, root first *)
}

val singleton : int -> group

val groups_of_fragment :
  View_tree.t ->
  labels:Xmlkit.Dtd.multiplicity array option ->
  Partition.fragment ->
  group list
(** [labels] parallel to the tree's edges; [None] disables reduction. *)

val fused_children : View_tree.t -> group -> int -> int list
(** Group members whose view-tree parent is the given member. *)

val group_of : group list -> int -> group
(** The group containing a node.  Raises [Not_found]. *)

val child_groups : View_tree.t -> group list -> group -> group list
(** Groups whose root's parent node is a member of [g]. *)

val to_string : View_tree.t -> group list -> string
