(** Edge multiplicity labeling (paper Sec. 3.5).

    Labels each view-tree edge [1 ? + *] from the C1 (functional
    dependency) and C2 (inclusion dependency) tests against the source
    description: keys, NOT NULL foreign keys, and declared inclusion
    dependencies.  [1]-labeled edges are the reducible ones. *)

val label_edge :
  Relational.Database.t ->
  View_tree.t ->
  int * int ->
  Xmlkit.Dtd.multiplicity

val label_edges :
  Relational.Database.t -> View_tree.t -> Xmlkit.Dtd.multiplicity array
(** Parallel to [t.edges]. *)

val to_string : View_tree.t -> Xmlkit.Dtd.multiplicity array -> string
