(* The middleware pipeline (paper Fig. 7): RXL view -> view tree ->
   partition -> SQL texts -> RDBMS -> sorted tuple streams -> merge/tag ->
   XML.

   Execution goes through the production path end to end: the generated
   SQL AST is printed to text, re-parsed by the engine's parser, and
   executed; wall-clock time, deterministic work units and the modeled
   transfer time are all reported, mirroring the paper's Query time /
   Total time split. *)

module R = Relational

let src = Logs.Src.create "silkroute" ~doc:"SilkRoute middleware"

module Log = (val Logs.src_log src : Logs.LOG)

type prepared = {
  db : R.Database.t;
  view : Rxl.view;
  tree : View_tree.t;
  labels : Xmlkit.Dtd.multiplicity array;
  stats : R.Stats.t Lazy.t;
      (* forced only when a plan needs cost annotations (tracing,
         explain), so plain execution never pays the analyze pass *)
}

let prepare db view =
  Obs.Span.with_span "middleware.prepare" (fun () ->
      let tree = View_tree.of_view db view in
      let labels = Label.label_edges db tree in
      if Obs.Span.tracing () then
        Obs.Span.add_list
          [
            Obs.Attr.int "nodes" (View_tree.node_count tree);
            Obs.Attr.int "edges" (View_tree.edge_count tree);
            Obs.Attr.int "work" (View_tree.node_count tree);
          ];
      { db; view; tree; labels; stats = lazy (R.Stats.analyze db) })

let prepare_text db text = prepare db (Rxl_parser.parse text)

type strategy =
  | Unified
  | Fully_partitioned
  | Edges of int (* partition mask over view-tree edges *)
  | Greedy of Planner.params

let strategy_name = function
  | Unified -> "unified"
  | Fully_partitioned -> "fully-partitioned"
  | Edges mask -> Printf.sprintf "edges:%d" mask
  | Greedy _ -> "greedy"

let partition_of p strategy =
  Obs.Span.with_span "middleware.plan" (fun () ->
      let requests = ref 0 in
      let plan =
        match strategy with
        | Unified -> Partition.unified p.tree
        | Fully_partitioned -> Partition.fully_partitioned p.tree
        | Edges mask -> Partition.of_mask p.tree mask
        | Greedy params ->
            let oracle = R.Cost.oracle p.db in
            let result = Planner.gen_plan p.db oracle p.tree p.labels params in
            requests := result.Planner.requests;
            Log.info (fun m -> m "genPlan: %s" (Planner.to_string p.tree result));
            Planner.best_plan p.tree result
      in
      if Obs.Span.tracing () then
        Obs.Span.add_list
          [
            Obs.Attr.string "strategy" (strategy_name strategy);
            Obs.Attr.int "streams" (Partition.stream_count plan);
            Obs.Attr.int "work" !requests;
          ];
      plan)

let options_of p ~style ~reduce =
  { Sql_gen.style; labels = (if reduce then Some p.labels else None) }

(* Per-stream breakdown: every sub-query of a partition gets its own
   stats record, so the execution result can show where inside a plan the
   work went (the aggregate fields below are sums over this list). *)
type stream_exec = {
  se_stream : Sql_gen.stream;
  se_relation : R.Relation.t;
  se_sql : string;
  se_plan : R.Physical.plan;
  se_stats : R.Executor.stats;
  se_wall_ms : float;
}

(* Result of running one plan. *)
type execution = {
  streams : (Sql_gen.stream * R.Relation.t) list;
  per_stream : stream_exec list; (* one entry per sub-query, in plan order *)
  sql_texts : string list;
  query_wall_ms : float; (* measured engine time *)
  transfer_ms : float; (* modeled client transfer time *)
  work : int; (* deterministic engine work units *)
  tuples : int;
  bytes : int;
}

let total_wall_ms e = e.query_wall_ms +. e.transfer_ms

(* Which sub-query blew the budget, and where it sat in the plan:
   without this, a timeout in a multi-stream plan loses the partial
   per-stream picture and the trace cannot say which fragment was at
   fault. *)
type timeout_info = {
  timeout_sql : string; (* the offending SQL text *)
  timeout_stream : int; (* index of the stream in plan order *)
  timeout_root : string; (* fragment root's Skolem-function name *)
  timeout_elapsed_ms : float; (* wall time spent before the budget hit *)
}

exception Plan_timeout of timeout_info
(* A sub-query exceeded the execution budget (the paper's 5-minute
   per-query timeout). *)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* --- parallel fan-out --------------------------------------------------- *)

(* Run [f i x] over the indexed [xs] — sequentially when [domains <= 1]
   (byte-for-byte the old single-domain path), or fanned out over a
   domain pool.  Results come back in list (plan) order either way; the
   merge-tagger tie-breaks by plan order, so execution order cannot
   affect the XML.

   Failure contract: in both modes every already-completed result is
   passed to [on_partial] (the hook where the streaming paths close
   spooled cursors, fixing the abandoned-spool leak) before the
   exception re-raises.  In parallel mode all submitted tasks are
   awaited first — a worker cannot still be running a task whose
   resources nobody owns — and when several fail, the earliest in plan
   order wins, matching what sequential execution would have raised. *)
let map_streams ~domains ~on_partial f xs =
  if domains <= 1 then begin
    let acc = ref [] in
    (try List.iteri (fun i x -> acc := f i x :: !acc) xs
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       on_partial (List.rev !acc);
       Printexc.raise_with_backtrace e bt);
    List.rev !acc
  end
  else
    R.Domain_pool.with_pool ~domains (fun pool ->
        let handles =
          List.mapi (fun i x -> R.Domain_pool.submit pool (fun () -> f i x)) xs
        in
        let results =
          List.map
            (fun h ->
              match R.Domain_pool.await h with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ()))
            handles
        in
        let completed =
          List.filter_map (function Ok v -> Some v | Error _ -> None) results
        in
        match
          List.find_map (function Error e -> Some e | Ok _ -> None) results
        with
        | None -> completed
        | Some (e, bt) ->
            on_partial completed;
            Printexc.raise_with_backtrace e bt)

(* Shared by the materialized and streaming paths: run one sub-query
   through the SQL text round-trip, mapping an engine [Timeout] to
   [Plan_timeout] with the stream's position and fragment root, and
   marking the enclosing span so traces show which sub-query blew the
   budget.  The physical plan is built explicitly here (rather than
   letting the executor plan internally) so it can carry cost
   annotations and actual row/work figures out to traces and
   [--explain]. *)
let run_stream_query ~runner ~print_sql ~budget ~profile (p : prepared) i
    (s : Sql_gen.stream) =
  let text = print_sql s.Sql_gen.query in
  let root_name =
    View_tree.skolem_name
      (View_tree.node p.tree s.Sql_gen.fragment.Partition.root).View_tree.sfi
  in
  (* round-trip through the SQL text interface, as the middleware does *)
  let ast = R.Sql_parser.parse text in
  let plan = R.Physical.plan_of p.db ast in
  if Obs.Span.tracing () then
    (* fill est_rows/est_cost so the plan.physical spans below carry
       estimated vs actual figures per operator *)
    ignore (R.Cost.annotate ~profile (Lazy.force p.stats) plan);
  let t0 = now_ms () in
  let result =
    try runner ~budget ~profile p.db plan
    with R.Executor.Timeout ->
      let elapsed = now_ms () -. t0 in
      if Obs.Span.tracing () then begin
        Obs.Span.add_list
          [
            Obs.Attr.bool "timeout" true;
            Obs.Attr.int "timeout.stream" i;
            Obs.Attr.string "timeout.root" root_name;
            Obs.Attr.float "timeout.elapsed_ms" elapsed;
          ];
        Obs.Event.error "middleware.plan_timeout"
          ~attrs:
            [
              Obs.Attr.int "stream" i;
              Obs.Attr.string "root" root_name;
              Obs.Attr.float "elapsed_ms" elapsed;
            ];
        Obs.Event.dump ~reason:"plan-timeout"
      end;
      raise
        (Plan_timeout
           {
             timeout_sql = text;
             timeout_stream = i;
             timeout_root = root_name;
             timeout_elapsed_ms = elapsed;
           })
  in
  let t1 = now_ms () in
  R.Physical.emit_obs_spans plan;
  (text, root_name, plan, result, t1 -. t0)

let execute ?(style = Sql_gen.Outer_join) ?(reduce = false) ?(budget = 0)
    ?(profile = R.Executor.default_profile) ?(transfer = R.Transfer.default)
    ?(sql_syntax = `Derived) ?(domains = 1) ?batch_size (p : prepared)
    (plan : Partition.t) : execution =
 Obs.Span.with_span "middleware.execute" (fun () ->
  if Obs.Span.tracing () then Obs.Span.add "domains" (Obs.Attr.Int domains);
  let opts = options_of p ~style ~reduce in
  let streams = Sql_gen.streams p.db p.tree plan opts in
  (* force the stats lazy before fanning out: concurrent Lazy.force is
     a race (RacyLazy) in OCaml 5 *)
  if domains > 1 && Obs.Span.tracing () then ignore (Lazy.force p.stats);
  let print_sql =
    match sql_syntax with
    | `Derived -> R.Sql_print.to_string
    | `With -> R.Sql_print.to_with_string
  in
  let run i (s : Sql_gen.stream) : stream_exec =
    Obs.Span.with_span "execute.stream" (fun () ->
        let text, root_name, phys, (rel, stats), wall_ms =
          run_stream_query
            ~runner:(fun ~budget ~profile db plan ->
              R.Executor.run_plan_with_stats ~budget ~profile ?batch_size db
                plan)
            ~print_sql ~budget ~profile p i s
        in
        Log.debug (fun m ->
            m "stream: %d rows, %d work units, %.1f ms — %s"
              (R.Relation.cardinality rel) stats.R.Executor.work wall_ms
              (if String.length text > 80 then String.sub text 0 80 ^ "…"
               else text));
        if Obs.Span.tracing () then begin
          let rows = R.Relation.cardinality rel in
          let bytes = R.Relation.wire_size rel in
          Obs.Span.add_list
            [
              Obs.Attr.int "index" i;
              Obs.Attr.string "root" root_name;
              Obs.Attr.int "rows" rows;
              Obs.Attr.int "bytes" bytes;
              Obs.Attr.int "work" stats.R.Executor.work;
            ];
          Obs.Metrics.incr "execute.streams";
          Obs.Metrics.observe "execute.stream.work"
            (float_of_int stats.R.Executor.work);
          Obs.Metrics.observe "execute.stream.rows" (float_of_int rows);
          Obs.Metrics.observe "execute.stream.bytes" (float_of_int bytes)
        end;
        {
          se_stream = s;
          se_relation = rel;
          se_sql = text;
          se_plan = phys;
          se_stats = stats;
          se_wall_ms = wall_ms;
        })
  in
  let per_stream =
    map_streams ~domains ~on_partial:(fun (_ : stream_exec list) -> ()) run
      streams
  in
  let streams_rels =
    List.map (fun se -> (se.se_stream, se.se_relation)) per_stream
  in
  let work =
    List.fold_left (fun acc se -> acc + se.se_stats.R.Executor.work) 0 per_stream
  in
  let tuples =
    List.fold_left
      (fun acc (_, rel) -> acc + R.Relation.cardinality rel)
      0 streams_rels
  in
  let bytes =
    List.fold_left
      (fun acc (_, rel) -> acc + R.Relation.wire_size rel)
      0 streams_rels
  in
  if Obs.Span.tracing () then
    Obs.Span.add_list
      [
        Obs.Attr.int "streams" (List.length per_stream);
        Obs.Attr.int "tuples" tuples;
        Obs.Attr.int "bytes" bytes;
        Obs.Attr.int "work" work;
      ];
  {
    streams = streams_rels;
    per_stream;
    sql_texts = List.map (fun se -> se.se_sql) per_stream;
    query_wall_ms =
      List.fold_left (fun acc se -> acc +. se.se_wall_ms) 0.0 per_stream;
    transfer_ms = R.Transfer.relations_ms transfer (List.map snd streams_rels);
    work;
    tuples;
    bytes;
  })

(* Parallel sub-query fan-out: [execute] with a required domain count.
   Each plan fragment's sub-query runs on its own pool domain; the
   k-way merge-tagger tie-breaks by plan order, so the XML and all
   deterministic accounting are byte-identical to [execute] at any
   domain count. *)
let execute_parallel ?style ?reduce ?budget ?profile ?transfer ?sql_syntax
    ?batch_size ~domains p plan =
  execute ?style ?reduce ?budget ?profile ?transfer ?sql_syntax ~domains
    ?batch_size p plan

let document_of p (e : execution) : Xmlkit.Xml.t =
  Tagger.to_document p.tree e.streams

let xml_string_of p (e : execution) : string =
  Tagger.to_string p.tree e.streams

(* --- explain ----------------------------------------------------------- *)

(* Pretty-print one stream's three representations: the SQL text the
   middleware ships, the rewritten logical algebra, and the physical
   plan with its cost annotations (estimates only unless the plan was
   executed, in which case actual rows/work appear alongside). *)
let explain_stream (p : prepared) i root_name ~sql (plan : R.Physical.plan)
    ~logical =
  ignore (R.Cost.annotate (Lazy.force p.stats) plan);
  Printf.sprintf
    "-- stream %d (root %s):\n%s\n\nlogical plan:\n%s\nphysical plan:\n%s" i
    root_name sql logical
    (R.Physical.to_string plan)

let root_name_of p (s : Sql_gen.stream) =
  View_tree.skolem_name
    (View_tree.node p.tree s.Sql_gen.fragment.Partition.root).View_tree.sfi

let explain ?(style = Sql_gen.Outer_join) ?(reduce = false) (p : prepared)
    (plan : Partition.t) : string =
  let opts = options_of p ~style ~reduce in
  let streams = Sql_gen.streams p.db p.tree plan opts in
  String.concat "\n\n"
    (List.mapi
       (fun i (s : Sql_gen.stream) ->
         let text = R.Sql_print.to_pretty_string s.Sql_gen.query in
         (* round-trip through the text interface, exactly like
            execution, so the explained tree is the executed tree *)
         let ast = R.Sql_parser.parse (R.Sql_print.to_string s.Sql_gen.query) in
         let alg = R.Algebra.rewrite (R.Algebra.lower p.db ast) in
         let phys = R.Physical.of_algebra alg in
         explain_stream p (i + 1) (root_name_of p s) ~sql:text phys
           ~logical:(R.Algebra.to_string alg))
       streams)

let explain_execution (p : prepared) (e : execution) : string =
  String.concat "\n\n"
    (List.mapi
       (fun i (se : stream_exec) ->
         let ast = R.Sql_parser.parse se.se_sql in
         let alg = R.Algebra.rewrite (R.Algebra.lower p.db ast) in
         explain_stream p (i + 1)
           (root_name_of p se.se_stream)
           ~sql:se.se_sql se.se_plan ~logical:(R.Algebra.to_string alg))
       e.per_stream)

(* --- streaming execution ----------------------------------------------- *)

(* Per-stream breakdown of a streaming execution: stats are complete
   (the engine has run and the rows are spooled), but the rows
   themselves are only reachable through the cursor. *)
type stream_cursor = {
  sc_stream : Sql_gen.stream;
  sc_cursor : R.Cursor.t;
  sc_sql : string;
  sc_plan : R.Physical.plan;
  sc_stats : R.Executor.stats;
  sc_wall_ms : float;
  sc_rows : int;
  sc_bytes : int;
  sc_transfer_ms : float;
}

type streaming = {
  cursors : (Sql_gen.stream * R.Cursor.t) list;
  s_per_stream : stream_cursor list;
  s_sql_texts : string list;
  s_query_wall_ms : float;
  s_transfer_ms : float;
  s_work : int;
  s_tuples : int;
  s_bytes : int;
}

(* Releasing spooled cursors of streams that completed before a later
   stream failed: without this, a Plan_timeout mid-plan left every
   earlier stream's spool file on disk until process exit. *)
let close_stream_cursors (scs : stream_cursor list) =
  List.iter (fun sc -> R.Cursor.close sc.sc_cursor) scs

let execute_streaming ?(style = Sql_gen.Outer_join) ?(reduce = false)
    ?(budget = 0) ?(profile = R.Executor.default_profile)
    ?(transfer = R.Transfer.default) ?(sql_syntax = `Derived) ?(domains = 1)
    ?batch_size (p : prepared) (plan : Partition.t) : streaming =
 Obs.Span.with_span "middleware.execute" (fun () ->
  if Obs.Span.tracing () then begin
    Obs.Span.add "mode" (Obs.Attr.String "streaming");
    Obs.Span.add "domains" (Obs.Attr.Int domains)
  end;
  let opts = options_of p ~style ~reduce in
  let streams = Sql_gen.streams p.db p.tree plan opts in
  if domains > 1 && Obs.Span.tracing () then ignore (Lazy.force p.stats);
  let print_sql =
    match sql_syntax with
    | `Derived -> R.Sql_print.to_string
    | `With -> R.Sql_print.to_with_string
  in
  let run i (s : Sql_gen.stream) : stream_cursor =
    Obs.Span.with_span "execute.stream" (fun () ->
        let text, root_name, phys, (cur, stats), wall_ms =
          run_stream_query
            ~runner:(fun ~budget ~profile db plan ->
              R.Executor.run_plan_cursor_with_stats ~budget ~profile ?batch_size
                db plan)
            ~print_sql ~budget ~profile p i s
        in
        (* Spool the sorted rows out of the heap, accounting rows, bytes
           and modeled transfer per tuple as they pass — nothing below
           retains the result list. *)
        let rows = ref 0 and bytes = ref 0 in
        let transfer_ms = ref transfer.R.Transfer.per_stream_overhead in
        let spooled =
          R.Cursor.spool
            ~on_row:(fun t ->
              incr rows;
              bytes := !bytes + R.Tuple.wire_size t;
              transfer_ms := !transfer_ms +. R.Transfer.tuple_ms transfer t)
            cur
        in
        Log.debug (fun m ->
            m "stream (spooled): %d rows, %d work units, %.1f ms — %s" !rows
              stats.R.Executor.work wall_ms
              (if String.length text > 80 then String.sub text 0 80 ^ "…"
               else text));
        if Obs.Span.tracing () then begin
          Obs.Span.add_list
            [
              Obs.Attr.int "index" i;
              Obs.Attr.string "root" root_name;
              Obs.Attr.int "rows" !rows;
              Obs.Attr.int "bytes" !bytes;
              Obs.Attr.int "work" stats.R.Executor.work;
              Obs.Attr.bool "spooled" true;
            ];
          Obs.Metrics.incr "execute.streams";
          Obs.Metrics.observe "execute.stream.work"
            (float_of_int stats.R.Executor.work);
          Obs.Metrics.observe "execute.stream.rows" (float_of_int !rows);
          Obs.Metrics.observe "execute.stream.bytes" (float_of_int !bytes)
        end;
        {
          sc_stream = s;
          sc_cursor = spooled;
          sc_sql = text;
          sc_plan = phys;
          sc_stats = stats;
          sc_wall_ms = wall_ms;
          sc_rows = !rows;
          sc_bytes = !bytes;
          sc_transfer_ms = !transfer_ms;
        })
  in
  let per_stream =
    map_streams ~domains ~on_partial:close_stream_cursors run streams
  in
  let work =
    List.fold_left
      (fun acc sc -> acc + sc.sc_stats.R.Executor.work)
      0 per_stream
  in
  let tuples = List.fold_left (fun acc sc -> acc + sc.sc_rows) 0 per_stream in
  let bytes = List.fold_left (fun acc sc -> acc + sc.sc_bytes) 0 per_stream in
  if Obs.Span.tracing () then
    Obs.Span.add_list
      [
        Obs.Attr.int "streams" (List.length per_stream);
        Obs.Attr.int "tuples" tuples;
        Obs.Attr.int "bytes" bytes;
        Obs.Attr.int "work" work;
      ];
  {
    cursors = List.map (fun sc -> (sc.sc_stream, sc.sc_cursor)) per_stream;
    s_per_stream = per_stream;
    s_sql_texts = List.map (fun sc -> sc.sc_sql) per_stream;
    s_query_wall_ms =
      List.fold_left (fun acc sc -> acc +. sc.sc_wall_ms) 0.0 per_stream;
    s_transfer_ms =
      List.fold_left (fun acc sc -> acc +. sc.sc_transfer_ms) 0.0 per_stream;
    s_work = work;
    s_tuples = tuples;
    s_bytes = bytes;
  })

let explain_streaming (p : prepared) (se : streaming) : string =
  String.concat "\n\n"
    (List.mapi
       (fun i (sc : stream_cursor) ->
         let ast = R.Sql_parser.parse sc.sc_sql in
         let alg = R.Algebra.rewrite (R.Algebra.lower p.db ast) in
         explain_stream p (i + 1)
           (root_name_of p sc.sc_stream)
           ~sql:sc.sc_sql sc.sc_plan ~logical:(R.Algebra.to_string alg))
       se.s_per_stream)

(* --- plan diagnostics --------------------------------------------------- *)

(* Flatten every stream's physical plan into the generic per-operator
   records the anomaly detector consumes, labelled by fragment root. *)
let diagnose_samples (p : prepared) (e : execution) : Obs.Diagnose.sample list =
  List.concat_map
    (fun (se : stream_exec) ->
      R.Physical.diagnose_samples
        ~stream:(root_name_of p se.se_stream)
        se.se_plan)
    e.per_stream

let diagnose_samples_streaming (p : prepared) (se : streaming) :
    Obs.Diagnose.sample list =
  List.concat_map
    (fun (sc : stream_cursor) ->
      R.Physical.diagnose_samples
        ~stream:(root_name_of p sc.sc_stream)
        sc.sc_plan)
    se.s_per_stream

(* --- resilient execution ----------------------------------------------- *)

(* What resilience cost: counters diffed over the backend's stats across
   one execution, plus the number of streams that had to be degraded. *)
type resilience = {
  r_submits : int;
  r_attempts : int;
  r_retries : int;
  r_faults : int;
  r_timeouts : int;
  r_degraded : int;
  r_backoff_ms : float;
  r_wasted_work : int;
}

type resilient = { r_streaming : streaming; r_resilience : resilience }

let execute_resilient ?(style = Sql_gen.Outer_join) ?(reduce = false)
    ?budget ?profile ?(transfer = R.Transfer.default) ?(sql_syntax = `Derived)
    ?backend ?(max_splits = 8) ?(domains = 1) ?batch_size (p : prepared)
    (plan : Partition.t) : resilient =
 Obs.Span.with_span "middleware.execute" (fun () ->
  if Obs.Span.tracing () then begin
    Obs.Span.add "mode" (Obs.Attr.String "resilient");
    Obs.Span.add "domains" (Obs.Attr.Int domains)
  end;
  let backend =
    match backend with
    | Some b -> (
        match batch_size with
        | None -> b
        | Some _ -> R.Backend.with_batch_size b batch_size)
    | None -> R.Backend.create ?budget ?profile ?batch_size p.db
  in
  let opts = options_of p ~style ~reduce in
  let streams = Sql_gen.streams p.db p.tree plan opts in
  (* One forked connection per top-level stream, in every mode: fault
     draws depend only on (seed, stream index, the stream's own
     submission sequence), never on how streams interleave across
     domains, so the resilience counters are identical at any domain
     count and across repeated runs.  [backend] itself is only the
     config/seed template; its own counters never move here. *)
  let backends =
    List.mapi (fun i (_ : Sql_gen.stream) -> R.Backend.fork backend ~salt:i)
      streams
  in
  let print_sql =
    match sql_syntax with
    | `Derived -> R.Sql_print.to_string
    | `With -> R.Sql_print.to_with_string
  in
  let degraded = Atomic.make 0 in
  (* Run one stream through its backend's retry loop.  If its failure is
     persistent — retries exhausted, a fatal fault, or a work-budget
     timeout — split the offending fragment along its view-tree edges
     (one step down the 2^|E| plan lattice, the paper's own fallback
     space) and recurse on the finer sub-queries.  A single-node
     fragment cannot degrade further: a timeout escapes as
     [Plan_timeout] with the payload naming the fragment root, anything
     else re-raises the backend error. *)
  let rec run_stream ~depth backend i (s : Sql_gen.stream) :
      stream_cursor list =
    Obs.Span.with_span "execute.stream" (fun () ->
        let text = print_sql s.Sql_gen.query in
        let root_name =
          View_tree.skolem_name
            (View_tree.node p.tree s.Sql_gen.fragment.Partition.root)
              .View_tree.sfi
        in
        let ast = R.Sql_parser.parse text in
        (* the backend replans per attempt; this instance only reports
           the plan shape (est-annotatable, no actuals) *)
        let phys = R.Physical.plan_of p.db ast in
        let rows = ref 0 and bytes = ref 0 in
        let transfer_ms = ref transfer.R.Transfer.per_stream_overhead in
        let t0 = now_ms () in
        match
          R.Backend.execute backend ~label:root_name
            ~on_attempt:(fun _attempt ->
              (* a fresh physical attempt re-delivers from row one: drop
                 the partial accounting of the failed attempt *)
              rows := 0;
              bytes := 0;
              transfer_ms := transfer.R.Transfer.per_stream_overhead)
            ~on_row:(fun t ->
              incr rows;
              bytes := !bytes + R.Tuple.wire_size t;
              transfer_ms := !transfer_ms +. R.Transfer.tuple_ms transfer t)
            ast
        with
        | cur, stats ->
            let wall_ms = now_ms () -. t0 in
            Log.debug (fun m ->
                m "stream (resilient): %d rows, %d work units, %.1f ms — %s"
                  !rows stats.R.Executor.work wall_ms
                  (if String.length text > 80 then String.sub text 0 80 ^ "…"
                   else text));
            if Obs.Span.tracing () then begin
              Obs.Span.add_list
                [
                  Obs.Attr.int "index" i;
                  Obs.Attr.string "root" root_name;
                  Obs.Attr.int "rows" !rows;
                  Obs.Attr.int "bytes" !bytes;
                  Obs.Attr.int "work" stats.R.Executor.work;
                  Obs.Attr.int "depth" depth;
                ];
              Obs.Metrics.incr "execute.streams";
              Obs.Metrics.observe "execute.stream.work"
                (float_of_int stats.R.Executor.work);
              Obs.Metrics.observe "execute.stream.rows" (float_of_int !rows);
              Obs.Metrics.observe "execute.stream.bytes" (float_of_int !bytes)
            end;
            [
              {
                sc_stream = s;
                sc_cursor = cur;
                sc_sql = text;
                sc_plan = phys;
                sc_stats = stats;
                sc_wall_ms = wall_ms;
                sc_rows = !rows;
                sc_bytes = !bytes;
                sc_transfer_ms = !transfer_ms;
              };
            ]
        | exception (R.Backend.Backend_error { kind; _ } as exn) -> (
            let elapsed = now_ms () -. t0 in
            let info =
              {
                timeout_sql = text;
                timeout_stream = i;
                timeout_root = root_name;
                timeout_elapsed_ms = elapsed;
              }
            in
            let finer =
              if depth < max_splits then
                Partition.split s.Sql_gen.fragment
              else None
            in
            match finer with
            | Some frags ->
                Atomic.incr degraded;
                Obs.Metrics.incr "middleware.degraded_streams";
                if Obs.Span.tracing () then begin
                  Obs.Span.add_list
                    [
                      Obs.Attr.bool "degraded" true;
                      Obs.Attr.string "degraded.root" info.timeout_root;
                      Obs.Attr.string "degraded.kind" (R.Backend.kind_name kind);
                      Obs.Attr.int "degraded.fragments" (List.length frags);
                    ];
                  Obs.Event.warn "middleware.degraded"
                    ~attrs:
                      [
                        Obs.Attr.string "root" info.timeout_root;
                        Obs.Attr.string "kind" (R.Backend.kind_name kind);
                        Obs.Attr.int "fragments" (List.length frags);
                      ]
                end;
                Log.info (fun m ->
                    m "degrading stream %d (root %s, %s): splitting into %d \
                       finer sub-queries"
                      i info.timeout_root
                      (R.Backend.kind_name kind)
                      (List.length frags));
                (* a later fragment failing must not strand the spooled
                   cursors of the fragments already run *)
                let sub = ref [] in
                (try
                   List.iter
                     (fun frag ->
                       sub :=
                         run_stream ~depth:(depth + 1) backend i
                           (Sql_gen.stream_of_fragment p.db p.tree opts frag)
                         :: !sub)
                     frags
                 with e ->
                   let bt = Printexc.get_raw_backtrace () in
                   List.iter close_stream_cursors !sub;
                   Printexc.raise_with_backtrace e bt);
                List.concat (List.rev !sub)
            | None -> (
                match kind with
                | R.Backend.Timeout ->
                    if Obs.Span.tracing () then begin
                      Obs.Event.error "middleware.plan_timeout"
                        ~attrs:
                          [
                            Obs.Attr.int "stream" i;
                            Obs.Attr.string "root" info.timeout_root;
                            Obs.Attr.float "elapsed_ms" elapsed;
                          ];
                      Obs.Event.dump ~reason:"plan-timeout"
                    end;
                    raise (Plan_timeout info)
                | _ -> raise exn)))
  in
  let per_stream =
    let tasks = List.combine backends streams in
    List.concat
      (map_streams ~domains
         ~on_partial:(fun done_lists -> List.iter close_stream_cursors done_lists)
         (fun i (b, s) -> run_stream ~depth:0 b i s)
         tasks)
  in
  (* Degradation replaces one stream by finer streams covering the same
     nodes: the effective plan is still a point in the 2^|E| lattice, so
     sorting by fragment root restores plan order and the merge/tagger
     produces byte-identical XML. *)
  let per_stream =
    List.sort
      (fun a b ->
        compare a.sc_stream.Sql_gen.fragment.Partition.root
          b.sc_stream.Sql_gen.fragment.Partition.root)
      per_stream
  in
  let work =
    List.fold_left
      (fun acc sc -> acc + sc.sc_stats.R.Executor.work)
      0 per_stream
  in
  let tuples = List.fold_left (fun acc sc -> acc + sc.sc_rows) 0 per_stream in
  let bytes = List.fold_left (fun acc sc -> acc + sc.sc_bytes) 0 per_stream in
  let merged = R.Backend.merge_stats (List.map R.Backend.stats backends) in
  let resilience =
    {
      r_submits = merged.R.Backend.submits;
      r_attempts = merged.R.Backend.attempts;
      r_retries = merged.R.Backend.retries;
      r_faults = R.Backend.total_faults merged;
      r_timeouts = merged.R.Backend.timeouts;
      r_degraded = Atomic.get degraded;
      r_backoff_ms = merged.R.Backend.backoff_ms;
      r_wasted_work = merged.R.Backend.wasted_work;
    }
  in
  if Obs.Span.tracing () then
    Obs.Span.add_list
      [
        Obs.Attr.int "streams" (List.length per_stream);
        Obs.Attr.int "tuples" tuples;
        Obs.Attr.int "bytes" bytes;
        Obs.Attr.int "work" work;
        Obs.Attr.int "degraded" resilience.r_degraded;
        Obs.Attr.int "retries" resilience.r_retries;
        Obs.Attr.int "faults" resilience.r_faults;
      ];
  {
    r_streaming =
      {
        cursors = List.map (fun sc -> (sc.sc_stream, sc.sc_cursor)) per_stream;
        s_per_stream = per_stream;
        s_sql_texts = List.map (fun sc -> sc.sc_sql) per_stream;
        s_query_wall_ms =
          List.fold_left (fun acc sc -> acc +. sc.sc_wall_ms) 0.0 per_stream;
        s_transfer_ms =
          List.fold_left (fun acc sc -> acc +. sc.sc_transfer_ms) 0.0 per_stream;
        s_work = work;
        s_tuples = tuples;
        s_bytes = bytes;
      };
    r_resilience = resilience;
  })

let document_of_streaming p (se : streaming) : Xmlkit.Xml.t =
  Tagger.to_document_cursors p.tree se.cursors

let xml_string_of_streaming p (se : streaming) : string =
  Tagger.to_string_cursors p.tree se.cursors

let stream_to_channel p (se : streaming) oc : unit =
  Tagger.to_channel p.tree se.cursors oc

(* One-call convenience: materialize the XML view of [db] under
   [strategy]. *)
let materialize ?style ?reduce ?budget ?profile ?transfer ?sql_syntax ?domains
    ?batch_size db view strategy : Xmlkit.Xml.t * execution =
  let p = prepare db view in
  let plan = partition_of p strategy in
  let e =
    execute ?style ?reduce ?budget ?profile ?transfer ?sql_syntax ?domains
      ?batch_size p plan
  in
  (document_of p e, e)

(* Ground truth: materialize via naive datalog evaluation of every node
   rule, bypassing SQL generation entirely.  Used by tests to validate
   every plan against an independent implementation. *)
let materialize_naive (p : prepared) : Xmlkit.Xml.t =
  let plan = Partition.fully_partitioned p.tree in
  let opts = options_of p ~style:Sql_gen.Outer_union ~reduce:false in
  let streams = Sql_gen.streams p.db p.tree plan opts in
  let rels =
    List.map
      (fun (s : Sql_gen.stream) ->
        (* evaluate the node's rule naively, then project and sort into
           the stream layout *)
        let frag = s.Sql_gen.fragment in
        let id = frag.Partition.root in
        let node = View_tree.node p.tree id in
        let inst = View_tree.instances p.db p.tree id in
        let cols = s.Sql_gen.cols in
        let tuples =
          List.map
            (fun row ->
              Array.map
                (fun c ->
                  match c with
                  | Sql_gen.Level_col j ->
                      if j <= View_tree.level node then
                        R.Value.Int (Sql_gen.sfi_component node.View_tree.sfi j)
                      else R.Value.Null
                  | Sql_gen.Var_col v -> (
                      match R.Relation.column_index inst v with
                      | Some i -> row.(i)
                      | None -> R.Value.Null))
                cols)
            (R.Relation.rows inst)
        in
        let rel =
          R.Relation.create (Array.map (fun c ->
              match c with
              | Sql_gen.Level_col j -> Printf.sprintf "L%d" j
              | Sql_gen.Var_col v -> v) cols)
            tuples
        in
        let positions = Array.init (Array.length cols) (fun i -> i) in
        (s, R.Relation.sort_by positions rel))
      streams
  in
  Tagger.to_document p.tree rels
