(** RXL (Relational to XML transformation Language) abstract syntax.

    An RXL query combines SQL-style extraction ([from]/[where]) with
    XML-QL-style construction ([construct]).  It supports the paper's
    three structuring features: nested queries inside construct clauses,
    parallel blocks (union), and optional explicit Skolem terms. *)

type binding = { var : string; table : string }
(** [$var] iterating over [table]. *)

type operand =
  | Field of string * string  (** [$s.name] *)
  | Const of Relational.Value.t

type condition = { op : Relational.Expr.cmp; left : operand; right : operand }

type node =
  | Element of element
  | Text of operand  (** character data: a field or a constant *)
  | Block of query  (** nested [{ from … construct … }] sub-query *)

and element = {
  tag : string;
  skolem : string option;  (** explicit Skolem function name *)
  content : node list;
}

and query = {
  from_ : binding list;
  where_ : condition list;
  construct : node list;
}

type view = { root_tag : string; queries : query list }
(** A literal document root wrapping parallel top-level queries. *)

val binding : string -> string -> binding
val cond : Relational.Expr.cmp -> operand -> operand -> condition
val field : string -> string -> operand
val element : ?skolem:string -> string -> node list -> node
val query : ?where_:condition list -> binding list -> node list -> query
val view : string -> query list -> view

exception Ill_formed of string

val check : Relational.Database.t -> view -> unit
(** Validates the view against the database schema: tables and columns
    exist, tuple variables are in scope and unshadowed, construct clauses
    are non-empty, top-level constructs are elements.  Raises
    {!Ill_formed} with a message otherwise. *)

val operand_to_string : operand -> string
val to_string : view -> string
(** Concrete RXL syntax, re-parseable by {!Rxl_parser}. *)
