(** The greedy plan-generation algorithm (paper Sec. 5, Fig. 17).

    [gen_plan] greedily collapses the view-tree edge with the lowest
    relative cost [cost(q_c) − (cost(q_1) + cost(q_2))], where
    [cost(q) = a·evaluation_cost(q) + b·data_size(q)] is answered by the
    RDBMS cost oracle.  Edges below [t1] are mandatory, below [t2]
    optional; the algorithm stops when no remaining edge qualifies. *)

type params = { a : float; b : float; t1 : float; t2 : float }

val default_params : params
(** Thresholds tuned for this engine's cost scale (the paper used
    a=100, b=1, t1=-60000, t2=6000 against its commercial RDBMS). *)

type result = {
  mandatory : (int * int) list;
  optional : (int * int) list;
  requests : int;
      (** cost-estimate requests issued by this run (paper Sec. 5.1) —
          the per-run delta, even when the oracle is reused *)
  cache_hits : int;
      (** fragment-cost lookups served by the member-set cache — the
          requests the paper's Sec. 5.1 experiment would have counted
          without caching *)
}

val fragment_of : View_tree.t -> int list -> Partition.fragment
(** Fragment record for a connected member set (exposed for tests). *)

val gen_plan :
  ?reduce:bool ->
  Relational.Database.t ->
  Relational.Cost.oracle ->
  View_tree.t ->
  Xmlkit.Dtd.multiplicity array ->
  params ->
  result
(** [reduce] makes combineQueries apply view-tree reduction, as in the
    paper's second experiment.  Fragment costs are cached by member set,
    keeping oracle requests far below the quadratic worst case. *)

val plans_of : View_tree.t -> result -> Partition.t list
(** The plan family: mandatory edges plus each subset of the optional
    edges (2^|optional| plans). *)

val best_plan : View_tree.t -> result -> Partition.t
(** Mandatory plus all optional edges. *)

val to_string : View_tree.t -> result -> string
