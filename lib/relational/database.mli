(** The catalog: stored tables, constraints, declared inclusion
    dependencies.

    This is the state of the "target RDBMS" the middleware submits SQL to,
    plus the "source description" (constraint metadata) the planner reads
    for view-tree labeling and reduction. *)

type t

exception Constraint_violation of string

val create : unit -> t

val add_table : t -> Schema.table -> unit
(** Registers an empty table.  Raises [Invalid_argument] if the name is
    taken. *)

val declare_inclusion : t -> Schema.inclusion -> unit
(** Declares a total-participation inclusion dependency (see
    {!Schema.inclusion}). *)

val inclusions : t -> Schema.inclusion list

val schema : t -> string -> Schema.table
(** Raises [Invalid_argument] for an unknown table. *)

val mem : t -> string -> bool
val table_names : t -> string list

val insert : t -> string -> Tuple.t list -> unit
(** Appends rows after type checking each against the schema.  Raises
    {!Constraint_violation} on NULL-in-NOT-NULL or type mismatch. *)

val load : t -> string -> Tuple.t list -> unit
(** Replaces the table contents (same checks as {!insert}). *)

val row_count : t -> string -> int

val raw_data : t -> string -> Tuple.t array
(** Zero-copy view of the stored tuples; callers must not mutate. *)

val to_relation : t -> string -> Relation.t

val check_keys : t -> string -> string list
(** Primary-key violations, as human-readable messages (empty = ok). *)

val check_foreign_keys : t -> string -> string list
(** Dangling-reference violations (NULL FKs are not violations). *)

val check_inclusion : t -> Schema.inclusion -> bool
(** Whether the inclusion dependency actually holds on the instance. *)

val check_integrity : t -> string list
(** All key and foreign-key violations across the catalog. *)

val total_rows : t -> int
val total_bytes : t -> int
(** Wire-size of the whole instance; reported as the "database size" of
    an experimental configuration (paper's Table 1). *)
