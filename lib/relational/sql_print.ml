(* SQL AST -> text.  The middleware ships SQL text to the engine, so this
   printer (with Sql_parser) must round-trip every query the generator can
   produce; tests enforce that. *)

let dir_name = function Sql.Asc -> "ASC" | Sql.Desc -> "DESC"

let join_name = function
  | Sql.Inner -> "JOIN"
  | Sql.Left_outer -> "LEFT OUTER JOIN"

let rec print_table_ref buf = function
  | Sql.Table { name; alias } ->
      Buffer.add_string buf name;
      if alias <> name then (
        Buffer.add_string buf " AS ";
        Buffer.add_string buf alias)
  | Sql.Derived { query; alias } ->
      Buffer.add_char buf '(';
      print_query buf query;
      Buffer.add_string buf ") AS ";
      Buffer.add_string buf alias
  | Sql.Join { left; kind; right; on } ->
      print_table_ref buf left;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (join_name kind);
      Buffer.add_char buf ' ';
      (match right with
      | Sql.Join _ ->
          Buffer.add_char buf '(';
          print_table_ref buf right;
          Buffer.add_char buf ')'
      | _ -> print_table_ref buf right);
      Buffer.add_string buf " ON ";
      Buffer.add_string buf (Expr.to_sql on)

and print_select buf (s : Sql.select) =
  Buffer.add_string buf "SELECT ";
  List.iteri
    (fun i (it : Sql.select_item) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Expr.to_sql it.expr);
      Buffer.add_string buf " AS ";
      Buffer.add_string buf it.alias)
    s.items;
  (match s.from with
  | [] -> ()
  | from ->
      Buffer.add_string buf " FROM ";
      List.iteri
        (fun i r ->
          if i > 0 then Buffer.add_string buf ", ";
          print_table_ref buf r)
        from);
  match s.where with
  | None -> ()
  | Some w ->
      Buffer.add_string buf " WHERE ";
      Buffer.add_string buf (Expr.to_sql w)

and print_body buf = function
  | Sql.Select s -> print_select buf s
  | Sql.Union_all (a, b) ->
      Buffer.add_char buf '(';
      print_body buf a;
      Buffer.add_string buf ") UNION ALL (";
      print_body buf b;
      Buffer.add_char buf ')'

and print_query buf (q : Sql.query) =
  print_body buf q.body;
  match q.order_by with
  | [] -> ()
  | keys ->
      Buffer.add_string buf " ORDER BY ";
      List.iteri
        (fun i (e, d) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Expr.to_sql e);
          if d = Sql.Desc then (
            Buffer.add_char buf ' ';
            Buffer.add_string buf (dir_name d)))
        keys

let to_string q =
  let buf = Buffer.create 256 in
  print_query buf q;
  Buffer.contents buf

(* Indented rendering for humans (plan explorer example, logs).  Only
   parentheses that open a SELECT introduce indentation; expression parens
   are left inline. *)
let to_pretty_string q =
  let s = to_string q in
  let buf = Buffer.create (String.length s + 64) in
  let depth = ref 0 in
  let stack = ref [] in
  let newline () =
    Buffer.add_char buf '\n';
    for _ = 1 to !depth * 2 do
      Buffer.add_char buf ' '
    done
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '(' when !i + 7 <= n && String.sub s (!i + 1) 6 = "SELECT" ->
        Buffer.add_char buf '(';
        stack := true :: !stack;
        incr depth;
        newline ()
    | '(' ->
        stack := false :: !stack;
        Buffer.add_char buf '('
    | ')' -> (
        match !stack with
        | true :: rest ->
            stack := rest;
            decr depth;
            newline ();
            Buffer.add_char buf ')'
        | false :: rest ->
            stack := rest;
            Buffer.add_char buf ')'
        | [] -> Buffer.add_char buf ')')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* WITH-clause rendering (the paper's footnote: "We also can use the SQL
   'with' clause to construct partitioned relations").  Derived tables
   are hoisted, innermost first, into named WITH definitions; the parser
   desugars them back, so [Sql_parser.parse (to_with_string q)] is
   structurally [q] as long as definition names do not collide with
   stored-table names — we uniquify against the names in use. *)
let to_with_string q =
  let defs = ref [] in
  (* names already taken: real tables referenced + aliases *)
  let taken = Hashtbl.create 16 in
  let rec note_taken_ref = function
    | Sql.Table { name; alias } ->
        Hashtbl.replace taken name ();
        Hashtbl.replace taken alias ()
    | Sql.Derived { query; alias } ->
        Hashtbl.replace taken alias ();
        note_taken_query query
    | Sql.Join { left; right; _ } ->
        note_taken_ref left;
        note_taken_ref right

  and note_taken_body = function
    | Sql.Select s -> List.iter note_taken_ref s.from
    | Sql.Union_all (a, b) ->
        note_taken_body a;
        note_taken_body b

  and note_taken_query (q : Sql.query) = note_taken_body q.Sql.body in
  note_taken_query q;
  let fresh base =
    if not (Hashtbl.mem taken base) then begin
      Hashtbl.replace taken base ();
      base
    end
    else begin
      let rec go i =
        let cand = Printf.sprintf "%s_%d" base i in
        if Hashtbl.mem taken cand then go (i + 1)
        else begin
          Hashtbl.replace taken cand ();
          cand
        end
      in
      go 2
    end
  in
  let rec hoist_ref = function
    | Sql.Table _ as t -> t
    | Sql.Derived { query; alias } ->
        let query = hoist_query query in
        let name = fresh ("w_" ^ alias) in
        defs := (name, query) :: !defs;
        Sql.Table { name; alias }
    | Sql.Join { left; kind; right; on } ->
        Sql.Join { left = hoist_ref left; kind; right = hoist_ref right; on }

  and hoist_body = function
    | Sql.Select s -> Sql.Select { s with from = List.map hoist_ref s.from }
    | Sql.Union_all (a, b) -> Sql.Union_all (hoist_body a, hoist_body b)

  and hoist_query (q : Sql.query) = { q with Sql.body = hoist_body q.Sql.body } in
  let main = hoist_query q in
  let buf = Buffer.create 256 in
  (match List.rev !defs with
  | [] -> ()
  | defs ->
      Buffer.add_string buf "WITH ";
      List.iteri
        (fun i (name, dq) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf name;
          Buffer.add_string buf " AS (";
          print_query buf dq;
          Buffer.add_char buf ')')
        defs;
      Buffer.add_char buf ' ');
  print_query buf main;
  Buffer.contents buf
