(** Physical query plans.

    A {!plan} is the tree the executor actually runs and the tree
    {!Cost} prices: join algorithms (hash vs nested loop) are chosen
    explicitly from the ON condition's per-disjunct equi-key analysis,
    join order is already fixed by the lowering/rewrite layers, and
    every node carries mutable estimated (filled by [Cost.annotate]) and
    actual (filled by the executor) row/cost figures, surfaced through
    [plan.physical] obs spans and [--explain]. *)

type algo = Hash_join | Nested_loop

type join_info = {
  kind : Sql.join_kind;
  algo : algo;
      (** [Hash_join] iff every ON disjunct has at least one cross-side
          column equality; otherwise some disjunct forces the whole
          right side to be probed. *)
  on : Expr.resolved;
  on_str : string;
  disjuncts : (int array * int array) list;
      (** per ON disjunct: (left key positions, right key positions);
          empty arrays mean that disjunct needs a full scan of the
          right input *)
  right_width : int;  (** arity of the NULL pad for outer joins *)
  from_where : bool;
}

type node = {
  id : int;
  mutable est_rows : float;  (** negative until [Cost.annotate] runs *)
  mutable est_cost : float;
  mutable act_rows : int;  (** negative until executed *)
  mutable act_cost : int;
  shape : shape;
}

and shape =
  | Scan of {
      table : string;
      alias : string;
      cols : int array;  (** stored-column indices to project *)
      col_names : string array;
    }
  | Dual
  | Filter of {
      input : node;
      pred : Expr.resolved;
      pred_str : string;
      pushed : bool;
      charged : bool;
    }
  | Project of {
      input : node;
      items : Expr.resolved array;
      names : string array;
      charged : bool array;
          (** emission accounting mask: positions holding statically
              literal values (NULL padding, level constants) in the
              query's output region are not charged for their bytes —
              the fig. 13 narrow-emission win *)
    }
  | Join of { left : node; right : node; info : join_info }
  | Union of node list
  | Sort of {
      input : node;
      keys : (Expr.resolved * Sql.dir) list;
      key_str : string;
      mutable est_spills : int;  (** negative until annotated *)
      mutable act_spills : int;
    }
  | Derived of { input : node; alias : string }

type plan = { root : node; cols : string array }

val of_algebra : Algebra.t -> plan

val plan_of : Database.t -> Sql.query -> plan
(** [of_algebra (Algebra.rewrite (Algebra.lower db q))]. *)

val algo_name : algo -> string
val op_name : node -> string

val iter : (node -> unit) -> plan -> unit
(** Pre-order traversal. *)

val to_string : plan -> string
(** Indented physical tree with algorithm, estimated and actual
    rows/cost per operator, for [--explain]. *)

val emit_obs_spans : plan -> unit
(** One [plan.physical] span per operator (op, algorithm, estimated vs
    actual rows and cost); no-op when tracing is off. *)

val diagnose_samples : stream:string -> plan -> Obs.Diagnose.sample list
(** Flattens the plan (pre-order) into the generic per-operator records
    the {!Obs.Diagnose} anomaly detector consumes; [stream] labels every
    sample.  Estimates/actuals are whatever [Cost.annotate] and the
    executor left on the nodes (negative when missing). *)
