(* Pull-based tuple cursors.

   A cursor is the streaming counterpart of [Relation]: named columns
   plus a pull function producing tuples one at a time.  The executor
   hands back a cursor over a query's sorted output so consumers (the
   merge tagger) can drop each tuple as soon as it has been processed;
   [spool] additionally moves the backing rows out of the OCaml heap
   into a temporary file, modeling a server-side result set read back
   over the wire, so live memory during consumption is bounded by one
   tuple per open cursor rather than by the result cardinality. *)

type t = {
  cols : string array;
  mutable pull : unit -> Tuple.t option;
}

let create cols pull = { cols; pull }
let cols c = c.cols
let arity c = Array.length c.cols
let next c = c.pull ()

let empty cols =
  { cols; pull = (fun () -> None) }

let of_list cols rows =
  let rest = ref rows in
  {
    cols;
    pull =
      (fun () ->
        match !rest with
        | [] -> None
        | t :: tl ->
            rest := tl;
            Some t);
  }

let of_relation r = of_list (Relation.cols r) (Relation.rows r)

let iter f c =
  let rec go () =
    match c.pull () with
    | None -> ()
    | Some t ->
        f t;
        go ()
  in
  go ()

let fold f acc c =
  let acc = ref acc in
  iter (fun t -> acc := f !acc t) c;
  !acc

let to_list c = List.rev (fold (fun acc t -> t :: acc) [] c)
let to_relation c = Relation.create c.cols (to_list c)

(* Spooling: drain [c] into a temporary file now (invoking [on_row] per
   tuple, in order — the hook for incremental stats/transfer accounting)
   and return a cursor that deserializes the rows back on demand.  The
   file is removed once the last row has been read; an abandoned cursor
   leaks its spool file until process exit. *)
let spool ?(on_row = fun (_ : Tuple.t) -> ()) (c : t) : t =
  let path = Filename.temp_file "silkroute" ".spool" in
  let oc = open_out_bin path in
  let count = ref 0 in
  (try
     iter
       (fun t ->
         on_row t;
         Marshal.to_channel oc (t : Tuple.t) [];
         incr count)
       c
   with e ->
     close_out_noerr oc;
     (try Sys.remove path with Sys_error _ -> ());
     raise e);
  close_out oc;
  let remaining = ref !count in
  let ic = ref None in
  let finish chan =
    close_in_noerr chan;
    ic := None;
    try Sys.remove path with Sys_error _ -> ()
  in
  let pull () =
    if !remaining <= 0 then None
    else begin
      let chan =
        match !ic with
        | Some chan -> chan
        | None ->
            let chan = open_in_bin path in
            ic := Some chan;
            chan
      in
      let (t : Tuple.t) = Marshal.from_channel chan in
      decr remaining;
      if !remaining = 0 then finish chan;
      Some t
    end
  in
  { cols = c.cols; pull }
