(* Pull-based tuple cursors.

   A cursor is the streaming counterpart of [Relation]: named columns
   plus a pull function producing tuples one at a time.  The executor
   hands back a cursor over a query's sorted output so consumers (the
   merge tagger) can drop each tuple as soon as it has been processed;
   [spool] additionally moves the backing rows out of the OCaml heap
   into a temporary file, modeling a server-side result set read back
   over the wire, so live memory during consumption is bounded by one
   tuple per open cursor rather than by the result cardinality. *)

type t = {
  cols : string array;
  mutable pull : unit -> Tuple.t option;
  mutable cleanup : unit -> unit;
      (* releases off-heap resources (spool file, open channel); must be
         idempotent-safe to drop because [close] runs it at most once *)
}

let no_cleanup () = ()
let create cols pull = { cols; pull; cleanup = no_cleanup }
let cols c = c.cols
let arity c = Array.length c.cols
let next c = c.pull ()

(* Releasing an abandoned cursor: stop producing tuples and free any
   backing resource now instead of at process exit.  Exhausting a cursor
   normally releases resources too; [close] is for the error paths —
   timeouts and plan degradation abandon cursors mid-stream, and before
   this hook existed each abandoned spool cursor leaked its temp file. *)
let close c =
  let f = c.cleanup in
  c.cleanup <- no_cleanup;
  c.pull <- (fun () -> None);
  f ()

let empty cols = create cols (fun () -> None)

let of_list cols rows =
  let rest = ref rows in
  create cols (fun () ->
      match !rest with
      | [] -> None
      | t :: tl ->
          rest := tl;
          Some t)

let of_relation r = of_list (Relation.cols r) (Relation.rows r)

(* Draining combinators close the cursor when the consumer raises:
   timeouts and injected faults escape through [iter]/[fold]/[spool]
   mid-drain, and without this the abandoned source kept its spool file
   and open channel until process exit. *)
let iter f c =
  let rec go () =
    match c.pull () with
    | None -> ()
    | Some t ->
        f t;
        go ()
  in
  try go ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    close c;
    Printexc.raise_with_backtrace e bt

let fold f acc c =
  let acc = ref acc in
  iter (fun t -> acc := f !acc t) c;
  !acc

let to_list c = List.rev (fold (fun acc t -> t :: acc) [] c)
let to_relation c = Relation.create c.cols (to_list c)

(* Spooling: drain [c] into a temporary file now (invoking [on_row] per
   tuple, in order — the hook for incremental stats/transfer accounting)
   and return a cursor that deserializes the rows back on demand.  The
   file is removed once the last row has been read, or by [close] on an
   abandoned cursor (timeout/degradation paths). *)

(* [Filename.temp_file] mutates global naming state; worker domains
   spool concurrently, so serialize name generation. *)
let temp_lock = Mutex.create ()

let spool ?(on_row = fun (_ : Tuple.t) -> ()) (c : t) : t =
  let path =
    Mutex.protect temp_lock (fun () ->
        Filename.temp_file "silkroute" ".spool")
  in
  let oc = open_out_bin path in
  let count = ref 0 in
  (try
     iter
       (fun t ->
         on_row t;
         Marshal.to_channel oc (t : Tuple.t) [];
         incr count)
       c
   with e ->
     close_out_noerr oc;
     (try Sys.remove path with Sys_error _ -> ());
     raise e);
  close_out oc;
  let remaining = ref !count in
  let ic = ref None in
  let removed = ref false in
  let release () =
    (match !ic with
    | Some chan ->
        close_in_noerr chan;
        ic := None
    | None -> ());
    if not !removed then begin
      removed := true;
      try Sys.remove path with Sys_error _ -> ()
    end
  in
  let pull () =
    if !remaining <= 0 then None
    else begin
      let chan =
        match !ic with
        | Some chan -> chan
        | None ->
            let chan = open_in_bin path in
            ic := Some chan;
            chan
      in
      let (t : Tuple.t) = Marshal.from_channel chan in
      decr remaining;
      if !remaining = 0 then release ();
      Some t
    end
  in
  let spooled = create c.cols pull in
  spooled.cleanup <- release;
  spooled

(* --- Batch protocol ------------------------------------------------- *)

let next_batch ?size c =
  match c.pull () with
  | None -> None
  | Some first ->
      let b = Batch.create ?size () in
      Batch.push b first;
      let rec fill () =
        if not (Batch.is_full b) then
          match c.pull () with
          | None -> ()
          | Some t ->
              Batch.push b t;
              fill ()
      in
      fill ();
      Some b

let of_batches cols batches =
  let rest = ref batches in
  let cur = ref None in
  let rec pull () =
    match !cur with
    | Some (b, i) when i < Batch.length b ->
        cur := Some (b, i + 1);
        Some (Batch.get b i)
    | _ -> (
        match !rest with
        | [] -> None
        | b :: tl ->
            rest := tl;
            cur := Some (b, 0);
            pull ())
  in
  create cols pull
