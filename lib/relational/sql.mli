(** SQL abstract syntax for the middleware dialect.

    Covers exactly what SilkRoute's translator emits (paper Sec. 3.4):
    SELECT-FROM-WHERE, LEFT OUTER JOIN … ON, derived tables, UNION ALL
    (the outer union), and a trailing ORDER BY. *)

type dir = Asc | Desc
type join_kind = Inner | Left_outer

type select_item = { expr : Expr.t; alias : string }

type table_ref =
  | Table of { name : string; alias : string }
  | Derived of { query : query; alias : string }
  | Join of {
      left : table_ref;
      kind : join_kind;
      right : table_ref;
      on : Expr.t;
    }

and body = Select of select | Union_all of body * body

and select = {
  items : select_item list;
  from : table_ref list;  (** comma list; [[]] is a one-row dual *)
  where : Expr.t option;
}

and query = { body : body; order_by : (Expr.t * dir) list }

val item : ?alias:string -> Expr.t -> select_item
(** Builds a select item; a bare column reference defaults its alias to
    the column name, anything else requires [?alias]. *)

val select :
  ?where:Expr.t option ->
  ?order_by:(Expr.t * dir) list ->
  select_item list ->
  table_ref list ->
  query

val selects_of_body : body -> select list
(** All SELECT branches of a UNION tree, left to right. *)

val output_columns : query -> string list
(** Output column names (the aliases of the first branch). *)

val table_ref_aliases : table_ref -> string list
val select_aliases : select -> string list

val count_outer_joins : query -> int
(** Number of LEFT OUTER JOINs anywhere in the query (diagnostics). *)

val count_unions : query -> int
(** Number of UNION ALL nodes anywhere in the query. *)
