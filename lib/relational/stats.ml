(* Table statistics: row counts, per-column distinct counts and average
   wire widths.  This is the information a commercial optimizer keeps in
   its catalog; our cost oracle derives estimates from it (the paper uses
   the target RDBMS "as an oracle, providing the values for the functions
   evaluation_cost and cardinality"). *)

type column_stats = { distinct : int; avg_width : float; null_fraction : float }

type table_stats = {
  row_count : int;
  columns : (string * column_stats) list;
}

type t = { by_table : (string, table_stats) Hashtbl.t }

let analyze_table db name : table_stats =
  let schema = Database.schema db name in
  let data = Database.raw_data db name in
  let n = Array.length data in
  let cols = Schema.column_names schema in
  let columns =
    List.mapi
      (fun i col ->
        let seen = Hashtbl.create (max 16 n) in
        let width = ref 0 in
        let nulls = ref 0 in
        Array.iter
          (fun row ->
            let v = row.(i) in
            if Value.is_null v then incr nulls;
            width := !width + Value.wire_size v;
            Hashtbl.replace seen (Value.to_string v) ())
          data;
        let stats =
          {
            distinct = max 1 (Hashtbl.length seen);
            avg_width = (if n = 0 then 8.0 else float_of_int !width /. float_of_int n);
            null_fraction = (if n = 0 then 0.0 else float_of_int !nulls /. float_of_int n);
          }
        in
        (col, stats))
      cols
  in
  { row_count = n; columns }

let analyze db : t =
  let by_table = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace by_table name (analyze_table db name))
    (Database.table_names db);
  { by_table }

(* Deliberately skew one table's statistics: multiply its row count and
   per-column NDVs by [factor] (clamped to >= 1 row / 1 value).  This is
   the diagnostics test fixture — a stale or wrong catalog entry — that
   `run --diagnose --skew-stats` uses to prove the anomaly detector
   flags the resulting misestimates. *)
let scale_table t name factor =
  if factor <= 0.0 then invalid_arg "Stats.scale_table: factor must be > 0";
  match Hashtbl.find_opt t.by_table name with
  | None -> invalid_arg (Printf.sprintf "Stats.scale_table: no table %s" name)
  | Some ts ->
      let scale n = max 1 (int_of_float (float_of_int n *. factor)) in
      Hashtbl.replace t.by_table name
        {
          row_count = scale ts.row_count;
          columns =
            List.map
              (fun (c, cs) -> (c, { cs with distinct = scale cs.distinct }))
              ts.columns;
        }

let table t name = Hashtbl.find_opt t.by_table name

let table_exn t name =
  match table t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Stats: no statistics for %s" name)

let column t name col =
  match table t name with
  | None -> None
  | Some ts -> List.assoc_opt col ts.columns

let row_count t name = (table_exn t name).row_count

let pp fmt t =
  Hashtbl.iter
    (fun name ts ->
      Format.fprintf fmt "%s: %d rows@." name ts.row_count;
      List.iter
        (fun (c, cs) ->
          Format.fprintf fmt "  %s: ndv=%d width=%.1f nulls=%.2f@." c
            cs.distinct cs.avg_width cs.null_fraction)
        ts.columns)
    t.by_table
