(* A bounded pool of worker domains with task submit/await.

   The pool exists for one job: running the independent SQL fragments of
   a partitioned plan concurrently (the EXCHANGE shape — per-stream
   parallelism below a deterministic merge).  Tasks go into a FIFO queue
   guarded by a mutex/condition pair; each worker domain loops dequeuing
   and running tasks until the pool is shut down AND the queue is dry,
   so no submitted task is ever dropped.  A task's result — normal or
   exceptional — is stored in its handle; [await] blocks on the handle's
   own condition variable and re-raises task exceptions with their
   original backtrace.  Worker domains never die to a task exception.

   [create ~domains] with [domains <= 1] builds an inline pool: [submit]
   runs the task immediately on the calling domain.  That makes the
   sequential case *exactly* the old code path — same execution order,
   same allocation pattern, no domain spawn — so callers thread
   [~domains] through unconditionally.

   Observability: [submit] captures the caller's span context and the
   worker re-installs it around the task, so spans opened inside a task
   parent under the span that submitted it, not under a detached root. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a handle = {
  hm : Mutex.t;
  hcv : Condition.t;
  mutable st : 'a state;
}

type t = {
  qm : Mutex.t;
  qcv : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list; (* [] for an inline pool *)
  size : int;
}

let size p = p.size

(* Tasks submitted but not yet picked up by a worker.  Inline pools run
   tasks synchronously in [submit], so their queue is always empty. *)
let queue_depth p = Mutex.protect p.qm (fun () -> Queue.length p.jobs)

let fill h result =
  Mutex.protect h.hm (fun () -> h.st <- result);
  Condition.broadcast h.hcv

let run_task h ctx task =
  match Obs.Span.with_context ctx task with
  | v -> fill h (Done v)
  | exception e -> fill h (Failed (e, Printexc.get_raw_backtrace ()))

let worker_loop p () =
  let rec loop () =
    let job =
      Mutex.protect p.qm (fun () ->
          while Queue.is_empty p.jobs && not p.closed do
            Condition.wait p.qcv p.qm
          done;
          (* drain remaining jobs even after close *)
          if Queue.is_empty p.jobs then None else Some (Queue.pop p.jobs))
    in
    match job with
    | Some job ->
        job ();
        loop ()
    | None -> ()
  in
  loop ()

let create ~domains =
  if domains < 1 then
    invalid_arg
      (Printf.sprintf "Domain_pool.create: domains must be >= 1, got %d"
         domains);
  let p =
    {
      qm = Mutex.create ();
      qcv = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [];
      size = domains;
    }
  in
  (* Mutate [workers] rather than copying the record: a [{p with ...}]
     copy would leave the spawned workers watching the *old* record's
     [closed] field, so [shutdown] on the copy would never wake them. *)
  if domains > 1 then
    p.workers <- List.init domains (fun _ -> Domain.spawn (worker_loop p));
  p

let submit p task =
  let h = { hm = Mutex.create (); hcv = Condition.create (); st = Pending } in
  let ctx = Obs.Span.context () in
  (match p.workers with
  | [] ->
      (* inline pool: the sequential path, unchanged *)
      run_task h ctx task
  | _ :: _ ->
      Mutex.protect p.qm (fun () ->
          if p.closed then
            invalid_arg "Domain_pool.submit: pool is shut down";
          Queue.push (fun () -> run_task h ctx task) p.jobs);
      Condition.signal p.qcv);
  h

let await h =
  let st =
    Mutex.protect h.hm (fun () ->
        (* match, not (=): polymorphic compare would inspect the task's
           result value, which may contain closures *)
        while match h.st with Pending -> true | _ -> false do
          Condition.wait h.hcv h.hm
        done;
        h.st)
  in
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
      (* the wait loop above only exits on Done/Failed; reaching here
         means the handle state machine itself is broken *)
      invalid_arg
        "Domain_pool.await: task handle still Pending after its condition \
         was signalled"

let shutdown p =
  Mutex.protect p.qm (fun () -> p.closed <- true);
  Condition.broadcast p.qcv;
  List.iter Domain.join p.workers

let with_pool ~domains f =
  let p = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
