(* Tokenizer for the middleware SQL dialect.  Keywords are not reserved
   at the lexer level; the parser matches identifiers case-insensitively
   where it expects a keyword. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of string * int (* message, offset *)

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EOF -> "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize (s : string) : token array =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      push (IDENT (String.sub s start (!i - start))))
    else if is_digit c then (
      let start = !i in
      let is_hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if is_hex then (
        i := !i + 2;
        while
          !i < n
          && (is_hex_digit s.[!i] || s.[!i] = '.' || s.[!i] = 'p'
             || s.[!i] = 'P'
             || ((s.[!i] = '+' || s.[!i] = '-')
                && (s.[!i - 1] = 'p' || s.[!i - 1] = 'P')))
        do
          incr i
        done;
        push (FLOAT (float_of_string (String.sub s start (!i - start)))))
      else (
        let saw_dot = ref false and saw_exp = ref false in
        while
          !i < n
          && (is_digit s.[!i]
             || (s.[!i] = '.' && not !saw_dot && not !saw_exp)
             || ((s.[!i] = 'e' || s.[!i] = 'E') && not !saw_exp)
             || ((s.[!i] = '+' || s.[!i] = '-')
                && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
        do
          if s.[!i] = '.' then saw_dot := true;
          if s.[!i] = 'e' || s.[!i] = 'E' then saw_exp := true;
          incr i
        done;
        let text = String.sub s start (!i - start) in
        if !saw_dot || !saw_exp then push (FLOAT (float_of_string text))
        else push (INT (int_of_string text))))
    else if c = '\'' then (
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error ("unterminated string literal", !i));
        if s.[!i] = '\'' then
          if peek 1 = Some '\'' then (
            Buffer.add_char buf '\'';
            i := !i + 2)
          else (
            closed := true;
            incr i)
        else (
          Buffer.add_char buf s.[!i];
          incr i)
      done;
      push (STRING (Buffer.contents buf)))
    else (
      (match c with
      | '(' -> push LPAREN
      | ')' -> push RPAREN
      | ',' -> push COMMA
      | '.' -> push DOT
      | '=' -> push EQ
      | '+' -> push PLUS
      | '-' -> push MINUS
      | '*' -> push STAR
      | '/' -> push SLASH
      | '<' ->
          if peek 1 = Some '=' then (
            push LE;
            incr i)
          else if peek 1 = Some '>' then (
            push NEQ;
            incr i)
          else push LT
      | '>' ->
          if peek 1 = Some '=' then (
            push GE;
            incr i)
          else push GT
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
      incr i)
  done;
  push EOF;
  Array.of_list (List.rev !toks)
