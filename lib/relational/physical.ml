(* Physical plans: the executable, priceable form of a query.

   Construction from the logical algebra precomputes everything the
   interpreter used to derive per execution: join algorithm choice and
   per-disjunct hash-key positions (the OR-expansion of disjunctive ON
   conditions), scan projections, and the emission-accounting masks for
   statically-literal output columns. *)

type algo = Hash_join | Nested_loop

type join_info = {
  kind : Sql.join_kind;
  algo : algo;
  on : Expr.resolved;
  on_str : string;
  disjuncts : (int array * int array) list;
  right_width : int;
  from_where : bool;
}

type node = {
  id : int;
  mutable est_rows : float;
  mutable est_cost : float;
  mutable act_rows : int;
  mutable act_cost : int;
  shape : shape;
}

and shape =
  | Scan of {
      table : string;
      alias : string;
      cols : int array;
      col_names : string array;
    }
  | Dual
  | Filter of {
      input : node;
      pred : Expr.resolved;
      pred_str : string;
      pushed : bool;
      charged : bool;
    }
  | Project of {
      input : node;
      items : Expr.resolved array;
      names : string array;
      charged : bool array;
    }
  | Join of { left : node; right : node; info : join_info }
  | Union of node list
  | Sort of {
      input : node;
      keys : (Expr.resolved * Sql.dir) list;
      key_str : string;
      mutable est_spills : int;
      mutable act_spills : int;
    }
  | Derived of { input : node; alias : string }

type plan = { root : node; cols : string array }

(* Cross-side column equalities of one ON disjunct, as (left, right)
   key-position pairs — the positional equivalent of the interpreter's
   [equi_keys] name lookup. *)
let keys_of la d =
  let pairs =
    List.filter_map
      (fun c ->
        match c with
        | Algebra.Cmp (Expr.Eq, Algebra.Col (i, _), Algebra.Col (j, _)) ->
            if i < la && j >= la then Some (i, j - la)
            else if j < la && i >= la then Some (j, i - la)
            else None
        | _ -> None)
      (Algebra.conjuncts d)
  in
  (Array.of_list (List.map fst pairs), Array.of_list (List.map snd pairs))

let of_algebra (a : Algebra.t) : plan =
  let counter = ref 0 in
  let mk shape =
    incr counter;
    {
      id = !counter;
      est_rows = -1.0;
      est_cost = -1.0;
      act_rows = -1;
      act_cost = -1;
      shape;
    }
  in
  (* [out]: this node feeds the query's output region directly (through
     unions/sorts only), so its literal columns are re-padded for free
     at delivery and skip the byte charge. *)
  let rec build ~out (a : Algebra.t) : node =
    match a with
    | Algebra.Scan { table; alias; cols } ->
        mk
          (Scan
             {
               table;
               alias;
               cols = Array.map fst cols;
               col_names = Array.map snd cols;
             })
    | Algebra.Dual -> mk Dual
    | Algebra.Filter { input; pred; pushed; charged } ->
        mk
          (Filter
             {
               input = build ~out:false input;
               pred = Algebra.to_resolved pred;
               pred_str = Algebra.expr_to_string pred;
               pushed;
               charged;
             })
    | Algebra.Project { input; items } ->
        mk
          (Project
             {
               input = build ~out:false input;
               items = Array.map (fun (e, _) -> Algebra.to_resolved e) items;
               names = Array.map snd items;
               charged =
                 Array.map
                   (fun (e, _) -> (not out) || not (Algebra.is_lit e))
                   items;
             })
    | Algebra.Join { left; kind; right; on; from_where } ->
        let la = Algebra.width left in
        let right_width = Algebra.width right in
        let disjuncts = List.map (keys_of la) (Algebra.disjuncts on) in
        let algo =
          if List.exists (fun (lk, _) -> Array.length lk = 0) disjuncts then
            Nested_loop
          else Hash_join
        in
        mk
          (Join
             {
               left = build ~out:false left;
               right = build ~out:false right;
               info =
                 {
                   kind;
                   algo;
                   on = Algebra.to_resolved on;
                   on_str = Algebra.expr_to_string on;
                   disjuncts;
                   right_width;
                   from_where;
                 };
             })
    | Algebra.Union_all _ ->
        let rec branches = function
          | Algebra.Union_all (x, y) -> branches x @ branches y
          | n -> [ n ]
        in
        mk (Union (List.map (build ~out) (branches a)))
    | Algebra.Derived { input; alias } ->
        mk (Derived { input = build ~out:false input; alias })
    | Algebra.Sort { input; keys } ->
        mk
          (Sort
             {
               input = build ~out input;
               keys =
                 List.map (fun (e, d) -> (Algebra.to_resolved e, d)) keys;
               key_str =
                 String.concat ", "
                   (List.map
                      (fun (e, d) ->
                        Algebra.expr_to_string e
                        ^ match d with Sql.Asc -> " asc" | Sql.Desc -> " desc")
                      keys);
               est_spills = -1;
               act_spills = 0;
             })
  in
  let root = build ~out:true a in
  { root; cols = Array.map snd (Algebra.header a) }

let plan_of db (q : Sql.query) : plan =
  of_algebra (Algebra.rewrite (Algebra.lower db q))

let algo_name = function
  | Hash_join -> "hash-join"
  | Nested_loop -> "nested-loop"

let op_name n =
  match n.shape with
  | Scan _ -> "scan"
  | Dual -> "dual"
  | Filter _ -> "filter"
  | Project _ -> "project"
  | Join { info; _ } -> algo_name info.algo
  | Union _ -> "union-all"
  | Sort _ -> "sort"
  | Derived _ -> "derived"

let iter f (p : plan) =
  let rec go n =
    f n;
    match n.shape with
    | Scan _ | Dual -> ()
    | Filter { input; _ }
    | Project { input; _ }
    | Sort { input; _ }
    | Derived { input; _ } ->
        go input
    | Join { left; right; _ } ->
        go left;
        go right
    | Union ns -> List.iter go ns
  in
  go p.root

let card_str n =
  let est = if n.est_rows < 0.0 then "?" else Printf.sprintf "%.0f" n.est_rows in
  let act = if n.act_rows < 0 then "?" else string_of_int n.act_rows in
  let cost =
    match (n.est_cost < 0.0, n.act_cost < 0) with
    | true, true -> ""
    | e, a ->
        Printf.sprintf " cost=%s/%s"
          (if e then "?" else Printf.sprintf "%.0f" n.est_cost)
          (if a then "?" else string_of_int n.act_cost)
  in
  Printf.sprintf "  (rows est=%s act=%s%s)" est act cost

let to_string (p : plan) : string =
  let b = Buffer.create 512 in
  let line ind s n =
    Buffer.add_string b (String.make (ind * 2) ' ');
    Buffer.add_string b s;
    Buffer.add_string b (card_str n);
    Buffer.add_char b '\n'
  in
  let rec go ind n =
    (match n.shape with
    | Scan { table; alias; cols; _ } ->
        line ind
          (Printf.sprintf "scan %s as %s [%d cols]" table alias
             (Array.length cols))
          n
    | Dual -> line ind "dual" n
    | Filter { pred_str; pushed; charged; _ } ->
        line ind
          (Printf.sprintf "filter%s%s %s"
             (if pushed then "[pushdown]" else "")
             (if charged then "" else "[uncharged]")
             pred_str)
          n
    | Project { items; charged; _ } ->
        let ncharged =
          Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 charged
        in
        line ind
          (Printf.sprintf "project [%d cols, %d charged]" (Array.length items)
             ncharged)
          n
    | Join { info; _ } ->
        line ind
          (Printf.sprintf "%s %s%s on %s" (algo_name info.algo)
             (match info.kind with
             | Sql.Inner -> "inner"
             | Sql.Left_outer -> "left-outer")
             (if info.from_where then " [pushdown<-where]" else "")
             info.on_str)
          n
    | Union ns -> line ind (Printf.sprintf "union-all [%d branches]" (List.length ns)) n
    | Sort { key_str; est_spills; act_spills; _ } ->
        let spill =
          if est_spills > 0 || act_spills > 0 then
            Printf.sprintf " spills est=%s act=%d"
              (if est_spills < 0 then "?" else string_of_int est_spills)
              act_spills
          else ""
        in
        line ind (Printf.sprintf "sort [%s]%s" key_str spill) n
    | Derived { alias; _ } -> line ind (Printf.sprintf "derived %s" alias) n);
    match n.shape with
    | Scan _ | Dual -> ()
    | Filter { input; _ }
    | Project { input; _ }
    | Sort { input; _ }
    | Derived { input; _ } ->
        go (ind + 1) input
    | Join { left; right; _ } ->
        go (ind + 1) left;
        go (ind + 1) right
    | Union ns -> List.iter (go (ind + 1)) ns
  in
  go 0 p.root;
  Buffer.contents b

let emit_obs_spans (p : plan) =
  if Obs.Span.tracing () then
    iter
      (fun n ->
        Obs.Span.with_span "plan.physical" (fun () ->
            Obs.Span.add_list
              ([
                 Obs.Attr.int "id" n.id;
                 Obs.Attr.string "op" (op_name n);
                 Obs.Attr.string "algorithm" (op_name n);
                 Obs.Attr.float "est_rows" n.est_rows;
                 Obs.Attr.int "actual_rows" n.act_rows;
                 Obs.Attr.float "est_cost" n.est_cost;
                 Obs.Attr.int "actual_cost" n.act_cost;
               ]
              @
              match n.shape with
              | Sort { est_spills; act_spills; _ } ->
                  [
                    Obs.Attr.int "est_spills" est_spills;
                    Obs.Attr.int "actual_spills" act_spills;
                  ]
              | _ -> [])))
      p

(* Flatten a (cost-annotated, executed) plan into the generic samples
   the lib/obs anomaly detector consumes — obs cannot see this module,
   so the adapter lives on this side of the dependency edge. *)
let diagnose_samples ~stream (p : plan) : Obs.Diagnose.sample list =
  let acc = ref [] in
  iter
    (fun n ->
      let spills =
        match n.shape with Sort { act_spills; _ } -> max 0 act_spills | _ -> 0
      in
      acc :=
        {
          Obs.Diagnose.d_stream = stream;
          d_node = n.id;
          d_op = op_name n;
          d_est_rows = n.est_rows;
          d_act_rows = n.act_rows;
          d_est_cost = n.est_cost;
          d_act_cost = n.act_cost;
          d_spills = spills;
        }
        :: !acc)
    p;
  List.rev !acc
