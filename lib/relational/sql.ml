(* SQL abstract syntax.  This dialect covers exactly what SilkRoute's
   translator emits (Sec. 3.4 of the paper): SELECT-FROM-WHERE blocks,
   LEFT OUTER JOIN with ON conditions, derived tables, UNION ALL (the
   outer union; branches are NULL-padded to a common width by the
   generator), and a trailing ORDER BY. *)

type dir = Asc | Desc
type join_kind = Inner | Left_outer

type select_item = { expr : Expr.t; alias : string }

type table_ref =
  | Table of { name : string; alias : string }
  | Derived of { query : query; alias : string }
  | Join of { left : table_ref; kind : join_kind; right : table_ref; on : Expr.t }

and body = Select of select | Union_all of body * body

and select = {
  items : select_item list;
  from : table_ref list; (* comma list; [] means a one-row dual *)
  where : Expr.t option;
}

and query = { body : body; order_by : (Expr.t * dir) list }

let item ?alias expr =
  let alias =
    match alias with
    | Some a -> a
    | None -> (
        match expr with
        | Expr.Col (_, c) -> c
        | _ -> invalid_arg "Sql.item: complex select item needs an alias")
  in
  { expr; alias }

let select ?(where = None) ?(order_by = []) items from =
  { body = Select { items; from; where }; order_by }

let rec selects_of_body = function
  | Select s -> [ s ]
  | Union_all (a, b) -> selects_of_body a @ selects_of_body b

(* The output column names of a query: those of its first SELECT branch
   (all branches must agree in arity; the generator also makes the names
   agree). *)
let output_columns q =
  match selects_of_body q.body with
  | [] -> []
  | s :: _ -> List.map (fun i -> i.alias) s.items

let rec table_ref_aliases = function
  | Table { alias; _ } -> [ alias ]
  | Derived { alias; _ } -> [ alias ]
  | Join { left; right; _ } -> table_ref_aliases left @ table_ref_aliases right

let select_aliases s = List.concat_map table_ref_aliases s.from

(* Structural counters, used by tests and by plan diagnostics. *)
let rec count_joins_body kind = function
  | Select s -> List.fold_left (fun acc r -> acc + count_joins_ref kind r) 0 s.from
  | Union_all (a, b) -> count_joins_body kind a + count_joins_body kind b

and count_joins_ref kind = function
  | Table _ -> 0
  | Derived { query; _ } -> count_joins_body kind query.body
  | Join { left; kind = k; right; _ } ->
      (if k = kind then 1 else 0)
      + count_joins_ref kind left + count_joins_ref kind right

let count_outer_joins q = count_joins_body Left_outer q.body

let rec count_unions_body = function
  | Select s ->
      List.fold_left
        (fun acc r -> acc + count_unions_ref r)
        0 s.from
  | Union_all (a, b) -> 1 + count_unions_body a + count_unions_body b

and count_unions_ref = function
  | Table _ -> 0
  | Derived { query; _ } -> count_unions_body query.body
  | Join { left; right; _ } -> count_unions_ref left + count_unions_ref right

let count_unions q = count_unions_body q.body
