(** SQL AST → text.

    The middleware ships SQL text to the engine, so this printer and
    {!Sql_parser} must round-trip every query the generator produces;
    the test suite enforces this. *)

val to_string : Sql.query -> string
(** Canonical single-line rendering. *)

val to_pretty_string : Sql.query -> string
(** Indented multi-line rendering for humans; parses identically. *)

val to_with_string : Sql.query -> string
(** Renders derived tables as a WITH clause (the paper's footnote 1);
    {!Sql_parser.parse} desugars it back to the same structure. *)
