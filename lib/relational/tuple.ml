(* Tuples are immutable-by-convention value arrays.  Helpers here are the
   hot path of joins, sorts and the merge tagger. *)

type t = Value.t array

let arity = Array.length

let concat (a : t) (b : t) : t = Array.append a b

let all_null n : t = Array.make n Value.Null

let project (positions : int array) (t : t) : t =
  Array.map (fun i -> t.(i)) positions

(* Lexicographic comparison on the given positions, using the total value
   order (NULL first). *)
let compare_at (positions : int array) (a : t) (b : t) =
  let n = Array.length positions in
  let rec go i =
    if i >= n then 0
    else
      let c = Value.compare_total a.(positions.(i)) b.(positions.(i)) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal_at positions a b = compare_at positions a b = 0

let hash_at (positions : int array) (t : t) =
  Array.fold_left (fun acc i -> (acc * 31) + Value.hash t.(i)) 17 positions

let compare (a : t) (b : t) =
  let na = arity a and nb = arity b in
  let c = Int.compare na nb in
  if c <> 0 then c
  else
    let rec go i =
      if i >= na then 0
      else
        let c = Value.compare_total a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let wire_size (t : t) =
  Array.fold_left (fun acc v -> acc + Value.wire_size v) 0 t

let to_string (t : t) =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string t)) ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
