(** Catalog statistics.

    Row counts, per-column distinct counts (NDV), average wire widths and
    null fractions, computed by a full scan — the moral equivalent of
    [ANALYZE].  {!Cost} derives cardinality and cost estimates from these;
    the paper's greedy planner treats the RDBMS as exactly this kind of
    oracle. *)

type column_stats = {
  distinct : int;  (** number of distinct values, ≥ 1 *)
  avg_width : float;  (** average wire bytes per value *)
  null_fraction : float;
}

type table_stats = {
  row_count : int;
  columns : (string * column_stats) list;
}

type t

val analyze_table : Database.t -> string -> table_stats
val analyze : Database.t -> t
(** Analyzes every table in the catalog. *)

val scale_table : t -> string -> float -> unit
(** Deliberately skews one table's catalog entry in place: row count and
    per-column NDVs are multiplied by the factor (clamped to >= 1).
    Diagnostics fixture — models a stale catalog so the {!Obs.Diagnose}
    detector has a misestimate to flag.  Raises [Invalid_argument] on an
    unknown table or a non-positive factor. *)

val table : t -> string -> table_stats option
val table_exn : t -> string -> table_stats
val column : t -> string -> string -> column_stats option
val row_count : t -> string -> int
val pp : Format.formatter -> t -> unit
