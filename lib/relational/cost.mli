(** Cost / cardinality estimation — the planner's oracle.

    System-R style estimates over {!Stats} (equality selectivity
    [1/max(ndv)], range selectivity [1/3], independence across
    conjuncts), computed by walking the {!Physical.plan} the engine
    actually runs: the same operator tree, join algorithms and
    narrow-emission masks.  [eval_cost] mirrors the executor's work
    meter operator for operator; [data_size] is estimated width ×
    cardinality.  The paper's greedy planner uses exactly this
    interface: "The RDBMS serves as an oracle, providing the values for
    the functions evaluation_cost and cardinality" (Sec. 5). *)

type estimate = {
  cardinality : float;
  eval_cost : float;  (** abstract work units, comparable to {!Executor.stats} work *)
  width : float;  (** average output tuple wire bytes *)
}

val data_size : estimate -> float
(** [cardinality ×. width]. *)

val cost : a:float -> b:float -> estimate -> float
(** The paper's linear combination [a·eval_cost + b·data_size]. *)

val annotate :
  ?profile:Executor.profile -> Stats.t -> Physical.plan -> estimate
(** Prices a physical plan, filling every node's [est_rows]/[est_cost]
    (and [est_spills] on sorts) with the same per-operator deltas the
    executor records as [act_rows]/[act_cost] — the figures surfaced by
    [--explain] and the [plan.physical] obs spans. *)

val estimate :
  ?profile:Executor.profile -> Stats.t -> Database.t -> Sql.query -> estimate
(** [annotate stats (Physical.plan_of db q)]. *)

(** {1 Counting oracle}

    Sec. 5.1 of the paper reports the number of cost-estimate requests the
    greedy planner issues (22 non-reduced, 25 reduced, vs. 81 worst case);
    the wrapper below counts them. *)

type oracle

val oracle : Database.t -> oracle
(** Analyzes the database and wraps it as a counting oracle. *)

val oracle_with_stats : Database.t -> Stats.t -> oracle
val ask : ?profile:Executor.profile -> oracle -> Sql.query -> estimate
val requests : oracle -> int
val reset_requests : oracle -> unit
