(** A bounded pool of OCaml 5 worker domains with task submit/await —
    the execution substrate for parallel sub-query fan-out (per-stream
    EXCHANGE parallelism below the deterministic merge-tagger).

    Tasks are closures run FIFO on whichever worker frees up first.  A
    task's exception is captured and re-raised (with its backtrace) by
    {!await} on the submitting domain; workers never die to one.
    {!submit} captures the caller's {!Obs.Span.context} and the worker
    reinstalls it, so a task's spans parent under the submitting span.

    A pool created with [domains <= 1] spawns no workers: {!submit}
    runs the task inline on the calling domain, making the sequential
    case exactly the unpooled code path. *)

type t

type 'a handle
(** The pending/completed result of one submitted task. *)

val create : domains:int -> t
(** [create ~domains] spawns [domains] worker domains ([domains <= 1]:
    none — inline execution).  Raises [Invalid_argument] when
    [domains < 1]. *)

val size : t -> int
(** The [domains] the pool was created with. *)

val queue_depth : t -> int
(** Tasks submitted but not yet picked up by a worker — the backlog the
    server's telemetry endpoint reports.  Always 0 on an inline pool. *)

val submit : t -> (unit -> 'a) -> 'a handle
(** Enqueues a task (or runs it inline on an inline pool).  Raises
    [Invalid_argument] if the pool has been shut down. *)

val await : 'a handle -> 'a
(** Blocks until the task completes; returns its value or re-raises its
    exception with the original backtrace. *)

val shutdown : t -> unit
(** Drains remaining queued tasks, then joins all workers.  Idempotent
    in effect; submitting after shutdown raises. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] — shutdown runs even on exception. *)
