(* CSV import/export for loading real data into the catalog.

   RFC-4180-ish: comma separators, double-quote quoting with "" escapes,
   both \n and \r\n row terminators.  Values are parsed according to the
   target table's column types; empty unquoted fields in nullable columns
   load as NULL. *)

exception Csv_error of string * int (* message, 1-based row *)

(* [source] (a file name, usually) prefixes every diagnostic so a load
   failure in a multi-file import names the offending file. *)
let fail ?source row fmt =
  Format.kasprintf
    (fun m ->
      let m =
        match source with None -> m | Some s -> Printf.sprintf "%s: %s" s m
      in
      raise (Csv_error (m, row)))
    fmt

let () =
  Printexc.register_printer (function
    | Csv_error (msg, row) ->
        Some (Printf.sprintf "Csv.Csv_error (row %d: %s)" row msg)
    | _ -> None)

(* --- low-level record reader -------------------------------------------- *)

(* Fields carry a [quoted] flag so the typed loader can distinguish an
   unquoted empty field (NULL) from a quoted empty string. *)
let parse_rows_tagged (text : string) : (string * bool) list list =
  let n = String.length text in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let field_quoted = ref false in
  let push_field () =
    fields := (Buffer.contents buf, !field_quoted) :: !fields;
    Buffer.clear buf;
    field_quoted := false
  in
  let push_row () =
    push_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = text.[!i] in
    if !in_quotes then
      if c = '"' then
        if !i + 1 < n && text.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    else begin
      (match c with
      | '"' ->
          in_quotes := true;
          field_quoted := true
      | ',' -> push_field ()
      | '\n' -> push_row ()
      | '\r' -> () (* swallow; \n follows in \r\n *)
      | c -> Buffer.add_char buf c);
      incr i
    end
  done;
  if Buffer.length buf > 0 || !fields <> [] || !field_quoted then push_row ();
  (* a trailing fully-empty record (final newline) is not a row *)
  List.rev !rows |> List.filter (fun r -> r <> [ ("", false) ])

let parse_rows text = List.map (List.map fst) (parse_rows_tagged text)

(* --- typed loading ------------------------------------------------------- *)

(* Strict decimal integer: optional sign then decimal digits only.
   [int_of_string] alone would also accept OCaml literal extensions —
   hex/octal/binary prefixes ([0x1F]) and underscore separators
   ([1_000]) — which are not CSV data anyone intends. *)
let strict_int text =
  let n = String.length text in
  let digits_from i =
    i < n
    &&
    let ok = ref true in
    for j = i to n - 1 do
      match text.[j] with '0' .. '9' -> () | _ -> ok := false
    done;
    !ok
  in
  let well_formed =
    match (if n > 0 then text.[0] else ' ') with
    | '+' | '-' -> digits_from 1
    | '0' .. '9' -> digits_from 0
    | _ -> false
  in
  if well_formed then int_of_string_opt text else None

let value_of_field ?source row (col : Schema.column) (text, quoted) : Value.t =
  let bad () =
    fail ?source row "row %d, column %s: bad %s value %S" row
      col.Schema.col_name
      (Value.ty_name col.Schema.col_ty)
      text
  in
  if text = "" && not quoted then
    if col.Schema.nullable then Value.Null
    else
      fail ?source row "row %d: empty value in NOT NULL column %s" row
        col.Schema.col_name
  else
    match col.Schema.col_ty with
    | Value.TInt -> (
        match strict_int (String.trim text) with
        | Some n -> Value.Int n
        | None -> bad ())
    | Value.TFloat -> (
        match float_of_string_opt (String.trim text) with
        | Some x -> Value.Float x
        | None -> bad ())
    | Value.TBool -> (
        match String.lowercase_ascii (String.trim text) with
        | "true" | "t" | "1" -> Value.Bool true
        | "false" | "f" | "0" -> Value.Bool false
        | _ -> bad ())
    | Value.TDate -> (
        match strict_int (String.trim text) with
        | Some n -> Value.Date n
        | None -> bad ())
    | Value.TString -> Value.String text

(* Load CSV [text] into [table].  With [header] (default), the first row
   names the columns and may reorder or omit nullable ones. *)
let load ?source ?(header = true) (db : Database.t) (table : string)
    (text : string) : int =
  let schema = Database.schema db table in
  let rows = parse_rows_tagged text in
  let col_order, data_rows =
    match (header, rows) with
    | true, hdr :: rest ->
        let names = List.map fst hdr in
        let cols =
          List.map
            (fun name ->
              match
                List.find_opt
                  (fun (c : Schema.column) -> c.Schema.col_name = name)
                  schema.Schema.columns
              with
              | Some c -> c
              | None ->
                  fail ?source 1 "header row: table %s has no column %s" table
                    name)
            names
        in
        (cols, rest)
    | true, [] -> (schema.Schema.columns, [])
    | false, rows -> (schema.Schema.columns, rows)
  in
  let tuples =
    List.mapi
      (fun idx fields ->
        let row = idx + if header then 2 else 1 in
        if List.length fields <> List.length col_order then
          fail ?source row "row %d: expected %d fields, got %d" row
            (List.length col_order) (List.length fields);
        let by_name =
          List.map2 (fun (c : Schema.column) f -> (c, f)) col_order fields
        in
        Array.of_list
          (List.map
             (fun (c : Schema.column) ->
               match
                 List.find_opt (fun (c', _) -> c' == c) by_name
               with
               | Some (_, f) -> value_of_field ?source row c f
               | None ->
                   if c.Schema.nullable then Value.Null
                   else
                     fail ?source row "row %d: missing NOT NULL column %s" row
                       c.Schema.col_name)
             schema.Schema.columns))
      data_rows
  in
  Database.insert db table tuples;
  List.length tuples

(* --- export -------------------------------------------------------------- *)

let escape_field s =
  if
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let field_of_value = function
  | Value.Null -> ""
  (* a present-but-empty string must stay distinguishable from NULL *)
  | Value.String "" -> "\"\""
  | Value.String s -> escape_field s
  | Value.Int n -> string_of_int n
  | Value.Float f -> Printf.sprintf "%h" f
  | Value.Bool b -> if b then "true" else "false"
  | Value.Date d -> string_of_int d

let export (db : Database.t) (table : string) : string =
  let schema = Database.schema db table in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat "," (Schema.column_names schema));
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (Array.to_list (Array.map field_of_value row)));
      Buffer.add_char buf '\n')
    (Database.raw_data db table);
  Buffer.contents buf
