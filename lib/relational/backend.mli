(** Connection abstraction over the (simulated) remote RDBMS.

    The paper treats the backend as a black box reached over JDBC: it can
    reject a submission, drop a connection mid-result, or run a sub-query
    into the 5-minute experiment timeout.  This module models that
    failure surface on top of {!Executor} with a deterministic, seeded
    fault injector, and wraps every submission in a retry policy
    (bounded retries, exponential backoff with jitter on an injectable
    clock, transient-vs-fatal classification) guarded by a per-backend
    circuit breaker.

    Determinism: all injected faults and jitter draws come from one
    splitmix64 stream seeded by {!fault_config.fault_seed}; the same
    seed and the same submission sequence reproduce the same faults,
    retries and backoff to the bit.  Time (backoff sleeps, injected
    per-row latency, breaker cooldowns) advances a virtual clock by
    default, so resilience runs cost no wall-clock sleeping. *)

(** What to inject, and how often.  Probabilities are per physical
    attempt; every draw comes from the seeded stream. *)
type fault_config = {
  fault_rate : float;  (** probability that an attempt is faulted *)
  fault_seed : int;  (** PRNG seed for fault and jitter draws *)
  fatal_weight : float;
      (** P(fault is fatal | fault) — fatal faults are never retried *)
  midstream_weight : float;
      (** P(fault strikes mid-stream | transient fault): the connection
          drops after N delivered rows instead of at submit time *)
  row_latency_ms : float;
      (** injected (virtual) latency per delivered row, modeling the
          per-tuple JDBC binding cost of a slow link *)
}

val no_faults : fault_config

val faults :
  ?seed:int ->
  ?fatal_weight:float ->
  ?midstream_weight:float ->
  ?row_latency_ms:float ->
  float ->
  fault_config
(** [faults rate] builds a config with the given fault rate; defaults:
    seed 0, fatal weight 0, mid-stream weight 0.3, no row latency. *)

(** Bounded retries with exponential backoff.  [jitter] is the uniform
    relative spread applied to each computed backoff (0.25 means
    ±25%). *)
type retry_policy = {
  max_retries : int;  (** retries after the first attempt *)
  base_backoff_ms : float;
  backoff_factor : float;
  max_backoff_ms : float;
  jitter : float;
}

val default_retry : retry_policy
(** 3 retries, 10ms base, ×2 per retry, 5s cap, ±25% jitter. *)

(** Per-backend circuit breaker: after [failure_threshold] consecutive
    failed attempts the breaker opens and submissions fail fast with
    {!Circuit_open} until [cooldown_ms] of clock time has passed; the
    next attempt then half-opens the breaker (success closes it, failure
    re-opens it). *)
type breaker_config = { failure_threshold : int; cooldown_ms : float }

val default_breaker : breaker_config
(** 8 consecutive failures, 1s cooldown. *)

(** The clock backoff sleeps on.  The default is virtual: [sleep_ms]
    just advances [now_ms], so deterministic experiments pay no real
    time.  Callers may inject a real clock. *)
type clock = { now_ms : unit -> float; sleep_ms : float -> unit }

val virtual_clock : unit -> clock

(** How an attempt failed.  [Transient] failures (injected submit
    failures and mid-stream connection drops) are retryable; [Fatal]
    faults and work-budget [Timeout]s are not — retrying a deterministic
    timeout cannot help, only a finer plan can. *)
type error_kind = Transient | Fatal | Timeout

val kind_name : error_kind -> string

exception
  Backend_error of {
    kind : error_kind;
    attempt : int;  (** 1-based physical attempt that failed *)
    rows_delivered : int;  (** rows delivered before a mid-stream drop *)
    message : string;
  }

exception Circuit_open of { retry_at_ms : float }
(** Raised by a single-attempt {!submit} while the breaker is open;
    [retry_at_ms] is the clock time at which it half-opens. *)

(** Cumulative counters; all deterministic for a fixed seed.
    [wasted_work] is the engine work burned by failed attempts
    (timeouts are accounted at the budget, the work level at which the
    engine gave up). *)
type stats = {
  mutable submits : int;  (** logical submissions ({!execute} calls) *)
  mutable attempts : int;  (** physical attempts, including retries *)
  mutable retries : int;
  mutable faults_transient : int;  (** injected submit-time failures *)
  mutable faults_midstream : int;  (** injected mid-stream drops that fired *)
  mutable faults_fatal : int;
  mutable timeouts : int;  (** work-budget exhaustions *)
  mutable backoff_ms : float;  (** total (virtual) backoff slept *)
  mutable injected_latency_ms : float;
  mutable wasted_work : int;
  mutable breaker_opens : int;
  mutable breaker_rejections : int;
}

val total_faults : stats -> int
(** transient + mid-stream + fatal. *)

type t

val create :
  ?faults:fault_config ->
  ?retry:retry_policy ->
  ?breaker:breaker_config ->
  ?clock:clock ->
  ?budget:int ->
  ?profile:Executor.profile ->
  ?batch_size:int ->
  Database.t ->
  t
(** A connection to [db].  [budget] (work units per submission, 0 =
    unlimited) and [profile] are applied to every submitted query,
    modeling the server-side per-query timeout.  [batch_size] makes
    every submission run the executor's vectorized batch path; output
    and work accounting are identical to the tuple path. *)

val db : t -> Database.t
val clock : t -> clock

val stats : t -> stats
(** A snapshot copy (callers may diff two snapshots). *)

val fork : t -> salt:int -> t
(** An independent connection derived from [t] for one stream of a
    fanned-out plan: same database and fault/retry/breaker configs and
    budget/profile, but fresh stats, a closed breaker, a fresh virtual
    clock, and a PRNG seeded by mixing the parent's fault seed with
    [salt].  Fault draws on a fork depend only on (seed, salt, the
    fork's own submission sequence) — not on how streams interleave
    across domains — so a parallel resilient run is as deterministic as
    a sequential one.  Forks never share mutable state with the parent
    or each other; merge their {!stats} with {!merge_stats}. *)

val merge_stats : stats list -> stats
(** Field-wise sum — aggregate per-fork counters into one report. *)

val with_batch_size : t -> int option -> t
(** The same connection (shared stats, clock and fault stream) with the
    submission batch size replaced; [None] restores the tuple path. *)

val submit : t -> Sql.query -> Cursor.t
(** One physical attempt, no retry: submits [q] to the engine and
    returns a cursor over its sorted output.  Raises {!Backend_error}
    on an injected submit fault or a budget timeout, {!Circuit_open}
    when the breaker is open; the returned cursor itself may raise
    {!Backend_error} mid-stream (an injected connection drop). *)

val submit_with_stats : t -> Sql.query -> Cursor.t * Executor.stats

val execute :
  ?label:string ->
  ?on_attempt:(int -> unit) ->
  ?on_row:(Tuple.t -> unit) ->
  t ->
  Sql.query ->
  Cursor.t * Executor.stats
(** Resilient submission: retries transient failures (submit faults and
    mid-stream drops) with exponential backoff up to the retry budget,
    waits out an open breaker on the clock, and spools the winning
    attempt's rows ({!Cursor.spool}) so the returned cursor is complete
    and failure-free.  [on_attempt] fires at the start of every physical
    attempt (the hook for resetting per-attempt accounting);
    [on_row] fires once per row of each attempt as it is spooled —
    rows of a failed attempt are discarded, so after a retry the hook
    starts over.  Raises {!Backend_error} when retries are exhausted or
    the failure is not retryable ([Fatal], [Timeout]).  Emits
    [backend.submit] / [backend.retry] spans and [backend.faults] /
    [backend.retries] / [backend.timeouts] / [backend.breaker_opens]
    metrics. *)
