(* A materialized result set: named columns plus tuples.  Stored tables
   live in [Database]; this type is what queries produce and what the
   middleware's tagger consumes as a (sorted) tuple stream. *)

type t = { cols : string array; rows : Tuple.t list }

let create cols rows =
  let n = Array.length cols in
  List.iter
    (fun r ->
      if Tuple.arity r <> n then
        invalid_arg
          (Printf.sprintf "Relation.create: tuple arity %d, expected %d"
             (Tuple.arity r) n))
    rows;
  { cols; rows }

let empty cols = { cols; rows = [] }
let cols t = t.cols
let rows t = t.rows
let cardinality t = List.length t.rows
let arity t = Array.length t.cols

let column_index t name =
  let n = Array.length t.cols in
  let rec go i =
    if i >= n then None else if t.cols.(i) = name then Some i else go (i + 1)
  in
  go 0

let column_index_exn t name =
  match column_index t name with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Relation: no column %s in (%s)" name
           (String.concat ", " (Array.to_list t.cols)))

let sort_by positions t =
  { t with rows = List.stable_sort (Tuple.compare_at positions) t.rows }

let is_sorted_by positions t =
  let rec go = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Tuple.compare_at positions a b <= 0 && go rest
  in
  go t.rows

let wire_size t =
  List.fold_left (fun acc r -> acc + Tuple.wire_size r) 0 t.rows

let equal a b =
  a.cols = b.cols
  && List.length a.rows = List.length b.rows
  && List.for_all2 Tuple.equal a.rows b.rows

(* Bag equality: same tuples regardless of order. *)
let equal_bag a b =
  a.cols = b.cols
  && List.length a.rows = List.length b.rows
  &&
  let sa = List.sort Tuple.compare a.rows
  and sb = List.sort Tuple.compare b.rows in
  List.for_all2 Tuple.equal sa sb

let pp fmt t =
  Format.fprintf fmt "@[<v>%s@,"
    (String.concat " | " (Array.to_list t.cols));
  List.iter (fun r -> Format.fprintf fmt "%s@," (Tuple.to_string r)) t.rows;
  Format.fprintf fmt "(%d rows)@]" (cardinality t)

let to_string t = Format.asprintf "%a" pp t
