(* Recursive-descent parser for the middleware SQL dialect.  Together with
   Sql_print this round-trips every query the SilkRoute generator emits. *)

open Sql_lexer

exception Parse_error of string

type state = {
  toks : token array;
  mutable pos : int;
  mutable with_env : (string * Sql.query) list; (* WITH definitions *)
}

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s at token %d (%s)" msg st.pos
          (token_to_string st.toks.(min st.pos (Array.length st.toks - 1)))))

let peek st = st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else EOF

let advance st = st.pos <- st.pos + 1

let expect st t =
  if peek st = t then advance st
  else fail st (Printf.sprintf "expected %s" (token_to_string t))

let kw_eq s k = String.uppercase_ascii s = k

let is_kw st k =
  match peek st with IDENT s -> kw_eq s k | _ -> false

let eat_kw st k =
  if is_kw st k then (
    advance st;
    true)
  else false

let expect_kw st k = if not (eat_kw st k) then fail st ("expected " ^ k)

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

(* Identifiers that cannot start a FROM alias / continue a from item. *)
let reserved_here s =
  List.mem (String.uppercase_ascii s)
    [
      "SELECT"; "FROM"; "WHERE"; "ON"; "JOIN"; "LEFT"; "INNER"; "OUTER";
      "UNION"; "ALL"; "ORDER"; "BY"; "AND"; "OR"; "NOT"; "IS"; "NULL";
      "AS"; "ASC"; "DESC"; "WITH";
    ]

(* --- expressions ---------------------------------------------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if is_kw st "OR" then (
    advance st;
    Expr.Or (left, parse_or st))
  else left

and parse_and st =
  let left = parse_unary st in
  if is_kw st "AND" then (
    advance st;
    Expr.And (left, parse_and st))
  else left

and parse_unary st =
  if is_kw st "NOT" then (
    advance st;
    Expr.Not (parse_unary st))
  else parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  match peek st with
  | EQ ->
      advance st;
      Expr.Cmp (Expr.Eq, left, parse_add st)
  | NEQ ->
      advance st;
      Expr.Cmp (Expr.Neq, left, parse_add st)
  | LT ->
      advance st;
      Expr.Cmp (Expr.Lt, left, parse_add st)
  | LE ->
      advance st;
      Expr.Cmp (Expr.Le, left, parse_add st)
  | GT ->
      advance st;
      Expr.Cmp (Expr.Gt, left, parse_add st)
  | GE ->
      advance st;
      Expr.Cmp (Expr.Ge, left, parse_add st)
  | IDENT s when kw_eq s "IS" ->
      advance st;
      if eat_kw st "NOT" then (
        expect_kw st "NULL";
        Expr.Is_not_null left)
      else (
        expect_kw st "NULL";
        Expr.Is_null left)
  | _ -> left

and parse_add st =
  let rec go left =
    match peek st with
    | PLUS ->
        advance st;
        go (Expr.Arith (Expr.Add, left, parse_mul st))
    | MINUS ->
        advance st;
        go (Expr.Arith (Expr.Sub, left, parse_mul st))
    | _ -> left
  in
  go (parse_mul st)

and parse_mul st =
  let rec go left =
    match peek st with
    | STAR ->
        advance st;
        go (Expr.Arith (Expr.Mul, left, parse_atom st))
    | SLASH ->
        advance st;
        go (Expr.Arith (Expr.Div, left, parse_atom st))
    | _ -> left
  in
  go (parse_atom st)

and parse_atom st =
  match peek st with
  | INT n ->
      advance st;
      Expr.Lit (Value.Int n)
  | FLOAT f ->
      advance st;
      Expr.Lit (Value.Float f)
  | STRING s ->
      advance st;
      Expr.Lit (Value.String s)
  | MINUS ->
      advance st;
      (* negative literal *)
      (match peek st with
      | INT n ->
          advance st;
          Expr.Lit (Value.Int (-n))
      | FLOAT f ->
          advance st;
          Expr.Lit (Value.Float (-.f))
      | _ -> fail st "expected numeric literal after unary minus")
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | IDENT s when kw_eq s "NULL" ->
      advance st;
      Expr.Lit Value.Null
  | IDENT s when kw_eq s "TRUE" ->
      advance st;
      Expr.Lit (Value.Bool true)
  | IDENT s when kw_eq s "FALSE" ->
      advance st;
      Expr.Lit (Value.Bool false)
  | IDENT s when kw_eq s "DATE" -> (
      advance st;
      match peek st with
      | INT n ->
          advance st;
          Expr.Lit (Value.Date n)
      | _ -> fail st "expected day count after DATE")
  | IDENT q when peek2 st = DOT ->
      advance st;
      advance st;
      let c = ident st in
      Expr.Col (Some q, c)
  | IDENT c ->
      advance st;
      Expr.Col (None, c)
  | _ -> fail st "expected expression"

(* --- queries --------------------------------------------------------- *)

let rec parse_query st : Sql.query =
  let body = parse_body st in
  let order_by = if eat_kw st "ORDER" then parse_order_by st else [] in
  { Sql.body; order_by }

and parse_order_by st =
  expect_kw st "BY";
  let rec keys acc =
    let e = parse_expr st in
    let dir =
      if eat_kw st "DESC" then Sql.Desc
      else (
        ignore (eat_kw st "ASC");
        Sql.Asc)
    in
    let acc = (e, dir) :: acc in
    if peek st = COMMA then (
      advance st;
      keys acc)
    else List.rev acc
  in
  keys []

and parse_body st : Sql.body =
  let left = parse_body_term st in
  let rec unions left =
    if is_kw st "UNION" then (
      advance st;
      expect_kw st "ALL";
      let right = parse_body_term st in
      unions (Sql.Union_all (left, right)))
    else left
  in
  unions left

and parse_body_term st : Sql.body =
  if peek st = LPAREN then (
    advance st;
    let b = parse_body st in
    expect st RPAREN;
    b)
  else Sql.Select (parse_select st)

and parse_select st : Sql.select =
  expect_kw st "SELECT";
  let items = parse_items st in
  let from = if eat_kw st "FROM" then parse_from_list st else [] in
  let where = if eat_kw st "WHERE" then Some (parse_expr st) else None in
  { Sql.items; from; where }

and parse_items st =
  let rec go acc =
    let e = parse_expr st in
    let alias =
      if eat_kw st "AS" then ident st
      else
        match e with
        | Expr.Col (_, c) -> c
        | _ -> fail st "select item needs AS alias"
    in
    let acc = { Sql.expr = e; alias } :: acc in
    if peek st = COMMA then (
      advance st;
      go acc)
    else List.rev acc
  in
  go []

and parse_from_list st =
  let rec go acc =
    let r = parse_table_ref st in
    let acc = r :: acc in
    if peek st = COMMA then (
      advance st;
      go acc)
    else List.rev acc
  in
  go []

and parse_table_ref st =
  let left = parse_from_primary st in
  let rec joins left =
    if is_kw st "LEFT" then (
      advance st;
      ignore (eat_kw st "OUTER");
      expect_kw st "JOIN";
      let right = parse_from_primary st in
      expect_kw st "ON";
      let on = parse_expr st in
      joins (Sql.Join { left; kind = Sql.Left_outer; right; on }))
    else if is_kw st "INNER" || is_kw st "JOIN" then (
      ignore (eat_kw st "INNER");
      expect_kw st "JOIN";
      let right = parse_from_primary st in
      expect_kw st "ON";
      let on = parse_expr st in
      joins (Sql.Join { left; kind = Sql.Inner; right; on }))
    else left
  in
  joins left

and parse_from_primary st =
  match peek st with
  | LPAREN ->
      advance st;
      if is_kw st "SELECT" || peek st = LPAREN then (
        (* Could be a derived table (query) or a parenthesized join whose
           first element is itself parenthesized; try query first, fall
           back to table_ref. *)
        let saved = st.pos in
        match parse_query_in_parens st with
        | Some q ->
            expect_kw st "AS";
            let alias = ident st in
            Sql.Derived { query = q; alias }
        | None ->
            st.pos <- saved;
            let r = parse_table_ref st in
            expect st RPAREN;
            r)
      else
        let r = parse_table_ref st in
        expect st RPAREN;
        r
  | IDENT s when not (reserved_here s) -> (
      advance st;
      let alias = if eat_kw st "AS" then ident st else s in
      (* a name bound by a WITH clause denotes its defining query *)
      match List.assoc_opt s st.with_env with
      | Some query -> Sql.Derived { query; alias }
      | None -> Sql.Table { name = s; alias })
  | _ -> fail st "expected table reference"

and parse_query_in_parens st : Sql.query option =
  try
    let q = parse_query st in
    if peek st = RPAREN then (
      advance st;
      (* A derived table must be followed by AS; a parenthesized UNION
         body used directly as a term is handled by the caller. *)
      if is_kw st "AS" then Some q else None)
    else None
  with Parse_error _ -> None

(* WITH name AS ( query ) {, name AS ( query )} — definitions may refer
   to earlier ones, as in standard SQL. *)
let parse_with_defs st =
  if eat_kw st "WITH" then begin
    let rec defs () =
      let name = ident st in
      expect_kw st "AS";
      expect st LPAREN;
      let q = parse_query st in
      expect st RPAREN;
      st.with_env <- (name, q) :: st.with_env;
      if peek st = COMMA then begin
        advance st;
        defs ()
      end
    in
    defs ()
  end

let parse (text : string) : Sql.query =
  let toks = tokenize text in
  let st = { toks; pos = 0; with_env = [] } in
  parse_with_defs st;
  let q = parse_query st in
  if peek st <> EOF then fail st "trailing input";
  q
