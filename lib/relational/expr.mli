(** Scalar expressions and predicates with SQL three-valued logic.

    Expressions reference columns by (optional qualifier, name); they are
    {!resolve}d to tuple positions once per query, then evaluated per
    tuple. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Col of string option * string
  | Lit of Value.t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t

(** {1 Construction helpers} *)

val col : ?qualifier:string -> string -> t
val int : int -> t
val str : string -> t
val eq : t -> t -> t
val ( &&& ) : t -> t -> t

(** {1 Analysis} *)

val conjuncts : t -> t list
(** Flattens nested [And]s into a conjunct list. *)

val conjoin : t list -> t
(** Inverse of {!conjuncts}; [conjoin \[\]] is [TRUE]. *)

val columns : t -> (string option * string) list
(** All column references, with duplicates. *)

val as_column_equality :
  t -> ((string option * string) * (string option * string)) option
(** Recognizes [a.x = b.y], the shape usable by hash joins. *)

val to_sql : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Resolution and evaluation} *)

type resolved =
  | R_col of int
  | R_lit of Value.t
  | R_cmp of cmp * resolved * resolved
  | R_arith of arith * resolved * resolved
  | R_and of resolved * resolved
  | R_or of resolved * resolved
  | R_not of resolved
  | R_is_null of resolved
  | R_is_not_null of resolved
      (** Position-resolved expression: column references are tuple indices.
          Exposed concretely so the algebra/physical-plan layers can build,
          rewrite, and cost these without re-resolving names. *)

exception Unresolved_column of string

val resolve : (string option * string -> int option) -> t -> resolved
(** [resolve lookup e] maps every column reference to a tuple position.
    Raises {!Unresolved_column} when [lookup] returns [None]. *)

val apply_cmp : cmp -> int -> bool
(** Interprets a comparison operator over a [Value.compare3] result. *)

val apply_arith : arith -> Value.t -> Value.t -> Value.t
(** Arithmetic with SQL NULL propagation; division by zero yields NULL. *)

val eval : resolved -> Tuple.t -> Value.t
(** Full evaluation; comparisons involving NULL yield NULL (UNKNOWN). *)

val eval_pred : resolved -> Tuple.t -> bool
(** WHERE semantics: true iff {!eval} yields [Bool true] (UNKNOWN rejects). *)

val compile : resolved -> Tuple.t -> Value.t
(** [compile r] resolves the expression tree to a closure once; the
    returned function agrees with [eval r] on every tuple but pays no
    per-row tree traversal.  Operators call it once per operator instead
    of re-interpreting the tree per row. *)

val compile_pred : resolved -> Tuple.t -> bool
(** Compiled form of {!eval_pred}: agrees with it on every tuple, with
    AND/OR/NOT spines specialised to unboxed booleans. *)
