(** Client-transfer cost model.

    The paper's Total time = server query time + time to bind and
    transfer tuples to the middleware over JDBC.  We model a result
    stream as per-stream statement setup + per-tuple binding overhead +
    payload bytes over a configured bandwidth.  NULL fields are cheap but
    not free, which reproduces the paper's observation that wide
    null-padded unified outer-join tuples are expensive to ship. *)

type config = {
  bytes_per_ms : float;
  per_tuple_overhead : float;  (** ms of binding cost per tuple *)
  per_stream_overhead : float;  (** ms of setup per tuple stream *)
}

val default : config

val tuple_ms : config -> Tuple.t -> float
val relation_ms : config -> Relation.t -> float
val relations_ms : config -> Relation.t list -> float
