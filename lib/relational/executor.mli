(** Query execution.

    Interprets the SQL AST directly: hash joins where ON/WHERE conditions
    provide column equalities (with OR-expansion for the disjunctive ON
    conditions produced by unified outer-join plans), nested loops
    otherwise, greedy connected-join ordering for comma FROM lists, and
    stable multi-key sorting under the total value order.

    Execution is metered in abstract work units.  The meter implements the
    experiment timeout (the paper killed sub-queries after five minutes)
    and provides a deterministic "simulated time" for reproducible
    experiment output. *)

exception Timeout
(** Raised when the work budget is exhausted. *)

exception Ambiguous_column of string
(** An unqualified column name matched several positions. *)

type stats = {
  mutable scanned : int;  (** rows read from stored tables *)
  mutable probed : int;  (** join candidate pairs examined *)
  mutable emitted : int;  (** rows produced by operators *)
  mutable sorted : int;  (** rows passed through sorting *)
  mutable spill_passes : int;  (** external-sort merge passes *)
  mutable work : int;  (** total work units (weighted sum) *)
}

val new_stats : unit -> stats

(** Cost profile of the simulated server: rows are charged by wire width
    and sorts larger than [sort_buffer] bytes pay external merge passes —
    the two effects the paper blames for the unified plans' slowness
    (Sec. 7). *)
type profile = {
  sort_buffer : int;  (** bytes of sort memory before spilling *)
  byte_div : int;  (** bytes per extra work unit on emit/sort/spill *)
}

val default_profile : profile

val run : ?budget:int -> ?profile:profile -> Database.t -> Sql.query -> Relation.t
(** Executes a query.  [budget > 0] bounds the work units; exceeding it
    raises {!Timeout}. *)

val run_with_stats :
  ?budget:int -> ?profile:profile -> Database.t -> Sql.query -> Relation.t * stats

val run_cursor :
  ?budget:int -> ?profile:profile -> Database.t -> Sql.query -> Cursor.t
(** Like {!run}, but hands back the sorted output as a pull cursor
    instead of a materialized {!Relation.t}: rows are dropped as the
    consumer advances.  Evaluation (and therefore work accounting) is
    identical to {!run} — both go through the same operator pipeline and
    sort. *)

val run_cursor_with_stats :
  ?budget:int -> ?profile:profile -> Database.t -> Sql.query -> Cursor.t * stats
