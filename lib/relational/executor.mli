(** Query execution.

    Queries run through three layers: {!Algebra.lower} (name resolution
    and greedy connected-join ordering, done once), {!Algebra.rewrite}
    (predicate pushdown, constant folding, projection pruning), and
    {!Physical.plan_of} (explicit hash-join vs nested-loop choice from
    the ON disjuncts' equi-keys, with OR-expansion for the disjunctive
    ON conditions produced by unified outer-join plans).  This module
    interprets the resulting physical plan with stable multi-key sorting
    under the total value order.

    Execution is metered in abstract work units.  The meter implements the
    experiment timeout (the paper killed sub-queries after five minutes)
    and provides a deterministic "simulated time" for reproducible
    experiment output.  The physical path charges exactly like the seed
    interpreter — kept below as the [run_legacy] entry points — except
    that rewrites may only lower the bill. *)

exception Timeout
(** Raised when the work budget is exhausted. *)

exception Ambiguous_column of string
(** An unqualified column name matched several positions. *)

type stats = {
  mutable scanned : int;  (** rows read from stored tables *)
  mutable probed : int;  (** join candidate pairs examined *)
  mutable emitted : int;  (** rows produced by operators *)
  mutable sorted : int;  (** rows passed through sorting *)
  mutable spill_passes : int;  (** external-sort merge passes *)
  mutable work : int;  (** total work units (weighted sum) *)
}

val new_stats : unit -> stats

(** Cost profile of the simulated server: rows are charged by wire width
    and sorts larger than [sort_buffer] bytes pay external merge passes —
    the two effects the paper blames for the unified plans' slowness
    (Sec. 7). *)
type profile = {
  sort_buffer : int;  (** bytes of sort memory before spilling *)
  byte_div : int;  (** bytes per extra work unit on emit/sort/spill *)
}

val default_profile : profile

val default_batch_size : int
(** Vector size of the batched path when [--batch] is given without an
    explicit size (= {!Batch.default_size}). *)

val run :
  ?budget:int ->
  ?profile:profile ->
  ?batch_size:int ->
  Database.t ->
  Sql.query ->
  Relation.t
(** Executes a query.  [budget > 0] bounds the work units; exceeding it
    raises {!Timeout}.  [batch_size] switches to the vectorized batch
    path (operators process chunks of that many rows, expressions
    compiled once per operator); output bytes and the stats counters are
    identical to the tuple path at every batch size. *)

val run_with_stats :
  ?budget:int ->
  ?profile:profile ->
  ?batch_size:int ->
  Database.t ->
  Sql.query ->
  Relation.t * stats

val run_cursor :
  ?budget:int ->
  ?profile:profile ->
  ?batch_size:int ->
  Database.t ->
  Sql.query ->
  Cursor.t
(** Like {!run}, but hands back the sorted output as a pull cursor
    instead of a materialized {!Relation.t}: rows are dropped as the
    consumer advances.  Evaluation (and therefore work accounting) is
    identical to {!run} — both go through the same operator pipeline and
    sort. *)

val run_cursor_with_stats :
  ?budget:int ->
  ?profile:profile ->
  ?batch_size:int ->
  Database.t ->
  Sql.query ->
  Cursor.t * stats

(** {1 Pre-planned execution}

    For callers that build the {!Physical.plan} themselves (to annotate
    it with cost estimates or print it): execution fills each node's
    [act_rows]/[act_cost] fields. *)

val run_plan :
  ?budget:int ->
  ?profile:profile ->
  ?batch_size:int ->
  Database.t ->
  Physical.plan ->
  Relation.t

val run_plan_with_stats :
  ?budget:int ->
  ?profile:profile ->
  ?batch_size:int ->
  Database.t ->
  Physical.plan ->
  Relation.t * stats

val run_plan_cursor_with_stats :
  ?budget:int ->
  ?profile:profile ->
  ?batch_size:int ->
  Database.t ->
  Physical.plan ->
  Cursor.t * stats

(** {1 Legacy interpreter}

    The seed executor, interpreting the SQL AST directly.  Kept solely as
    the reference for the differential safety-net tests; new code should
    use the plan-based entry points above. *)

val run_legacy :
  ?budget:int -> ?profile:profile -> Database.t -> Sql.query -> Relation.t

val run_legacy_with_stats :
  ?budget:int -> ?profile:profile -> Database.t -> Sql.query -> Relation.t * stats

val run_legacy_cursor_with_stats :
  ?budget:int -> ?profile:profile -> Database.t -> Sql.query -> Cursor.t * stats
