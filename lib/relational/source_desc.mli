(** Source-description files (paper Sec. 3.5: "the database constraints
    are specified in a source description file").

    Concrete syntax:
    {v
    table Supplier {
      suppkey   int     key
      name      string
      addr      string  null
      nationkey int     -> Nation.nationkey
      fk (a, b) -> Other(c, d)        # composite foreign key
    }
    inclusion Orders(orderkey) <= LineItem(orderkey)
    # comments run to end of line
    v} *)

exception Syntax_error of string * int
(** Message and 1-based line number. *)

type t = {
  tables : Schema.table list;
  inclusions : Schema.inclusion list;
}

val parse : string -> t
val to_database : t -> Database.t
(** Fresh catalog with the tables registered (empty) and inclusions
    declared. *)

val load_database : string -> Database.t
(** [to_database (parse text)]. *)

val to_string : t -> string
(** Renders the description; round-trips through {!parse} (tested). *)

val of_database : Database.t -> t
(** Extract the description of an existing catalog. *)
