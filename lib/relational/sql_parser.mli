(** Recursive-descent parser for the middleware SQL dialect.

    [parse (Sql_print.to_string q)] reconstructs [q] (structural
    round-trip, enforced by the test suite). *)

exception Parse_error of string

val parse : string -> Sql.query
(** Parses a complete query, including an optional leading WITH clause
    (desugared into derived tables).  Raises {!Parse_error} or
    {!Sql_lexer.Lex_error} on malformed input. *)
