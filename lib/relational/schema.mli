(** Relation schemas and integrity constraints.

    The constraint metadata (keys, foreign keys, declared inclusion
    dependencies) is the paper's "source description": SilkRoute reads it
    to label view-tree edges with multiplicities and to decide which edges
    are reducible (Sec. 3.5 of the paper). *)

type column = {
  col_name : string;
  col_ty : Value.ty;
  nullable : bool;
}

type foreign_key = {
  fk_cols : string list;  (** referencing columns, in order *)
  ref_table : string;
  ref_cols : string list;  (** referenced columns (a key), in order *)
}

(** A declared inclusion dependency [inc_table\[inc_cols\] ⊆
    inc_ref_table\[inc_ref_cols\]].  Foreign keys give the
    child-to-parent direction implicitly; explicit inclusions record
    total participation the other way ("every supplier has at least one
    part"), used by the C2 test of the edge labeler. *)
type inclusion = {
  inc_table : string;
  inc_cols : string list;
  inc_ref_table : string;
  inc_ref_cols : string list;
}

type table = {
  name : string;
  columns : column list;
  key : string list;  (** primary-key column names *)
  foreign_keys : foreign_key list;
}

val column : ?nullable:bool -> string -> Value.ty -> column
(** [column name ty] builds a NOT NULL column; pass [~nullable:true] to
    allow NULLs. *)

val table :
  ?foreign_keys:foreign_key list ->
  string ->
  key:string list ->
  column list ->
  table
(** Builds a table schema.  Raises [Invalid_argument] if a key column is
    not among the declared columns. *)

val find_column : table -> string -> column option
val column_index : table -> string -> int option
val column_names : table -> string list
val arity : table -> int
val has_column : table -> string -> bool
val pp_table : Format.formatter -> table -> unit
