(* SQL values with three-valued comparison semantics and a separate total
   order used for ORDER BY (where NULLs sort first, as the paper's merge
   tagger requires a deterministic stream order). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Date of int (* days since 1970-01-01 *)

type ty = TInt | TFloat | TBool | TString | TDate

let type_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Bool _ -> Some TBool
  | String _ -> Some TString
  | Date _ -> Some TDate

let ty_name = function
  | TInt -> "INT"
  | TFloat -> "FLOAT"
  | TBool -> "BOOL"
  | TString -> "VARCHAR"
  | TDate -> "DATE"

let is_null = function Null -> true | _ -> false

(* Rank used only to give the total order a stable cross-type behaviour;
   well-typed queries never compare across types. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Date _ -> 4
  | String _ -> 5

let compare_total a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | a, b -> Int.compare (rank a) (rank b)

(* SQL comparison: None when either side is NULL (UNKNOWN). *)
let compare3 a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | a, b -> Some (compare_total a b)

let equal a b = compare_total a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float x -> Hashtbl.hash x
  | Bool x -> Hashtbl.hash x
  | String x -> Hashtbl.hash x
  | Date x -> Hashtbl.hash (x + 17)

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | Bool x -> if x then "TRUE" else "FALSE"
  | String x -> x
  | Date x -> Printf.sprintf "1970+%dd" x

(* SQL literal syntax, for query printing and round-tripping. *)
let to_sql = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%h" x
  | Bool x -> if x then "TRUE" else "FALSE"
  | String x ->
      let buf = Buffer.create (String.length x + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        x;
      Buffer.add_char buf '\'';
      Buffer.contents buf
  | Date x -> Printf.sprintf "DATE %d" x

(* Number of bytes the value occupies on the wire in the transfer model:
   a fixed per-field header plus a payload.  NULLs are cheap but not free,
   which is what makes wide null-padded outer-join tuples expensive, as
   observed in the paper's total-time measurements. *)
let wire_size = function
  | Null -> 2
  | Int _ -> 6
  | Float _ -> 10
  | Bool _ -> 3
  | String s -> 2 + String.length s
  | Date _ -> 6

let pp fmt v = Format.pp_print_string fmt (to_string v)
