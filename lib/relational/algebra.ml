(* Typed logical relational algebra: lowering from the SQL AST and the
   rewrite pipeline (pushdown, constant folding, projection pruning).

   The lowering is a structural mirror of the seed interpreter: the same
   greedy connected-join ordering, the same eager WHERE-conjunct
   placement, the same name-resolution rules (including ORDER BY
   resolving output columns by name only).  That makes the rewrite
   invariant checkable: any plan this module produces must yield
   byte-identical rows in the same order, with work charges never above
   the interpreter's. *)

exception Ambiguous_column of string

type header = (string * string) array

type prov = { p_alias : string; p_col : string }

type expr =
  | Col of int * prov
  | Lit of Value.t
  | Cmp of Expr.cmp * expr * expr
  | Arith of Expr.arith * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr

type t =
  | Scan of { table : string; alias : string; cols : (int * string) array }
  | Dual
  | Filter of { input : t; pred : expr; pushed : bool; charged : bool }
  | Project of { input : t; items : (expr * string) array }
  | Join of {
      left : t;
      kind : Sql.join_kind;
      right : t;
      on : expr;
      from_where : bool;
    }
  | Union_all of t * t
  | Derived of { input : t; alias : string }
  | Sort of { input : t; keys : (expr * Sql.dir) list }

(* --- inspection ------------------------------------------------------- *)

let rec header = function
  | Scan { alias; cols; _ } -> Array.map (fun (_, c) -> (alias, c)) cols
  | Dual -> [||]
  | Filter { input; _ } -> header input
  | Project { items; _ } -> Array.map (fun (_, a) -> ("", a)) items
  | Join { left; right; _ } -> Array.append (header left) (header right)
  | Union_all (a, _) -> header a
  | Derived { input; alias } ->
      Array.map (fun (_, c) -> (alias, c)) (header input)
  | Sort { input; _ } -> header input

let width n = Array.length (header n)

let is_lit = function Lit _ -> true | _ -> false

let rec expr_positions = function
  | Col (i, _) -> [ i ]
  | Lit _ -> []
  | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
      expr_positions a @ expr_positions b
  | Not e | Is_null e | Is_not_null e -> expr_positions e

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Lit (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc c -> And (acc, c)) e rest

let rec disjuncts = function
  | Or (a, b) -> disjuncts a @ disjuncts b
  | e -> [ e ]

let rec to_resolved = function
  | Col (i, _) -> Expr.R_col i
  | Lit v -> Expr.R_lit v
  | Cmp (op, a, b) -> Expr.R_cmp (op, to_resolved a, to_resolved b)
  | Arith (op, a, b) -> Expr.R_arith (op, to_resolved a, to_resolved b)
  | And (a, b) -> Expr.R_and (to_resolved a, to_resolved b)
  | Or (a, b) -> Expr.R_or (to_resolved a, to_resolved b)
  | Not e -> Expr.R_not (to_resolved e)
  | Is_null e -> Expr.R_is_null (to_resolved e)
  | Is_not_null e -> Expr.R_is_not_null (to_resolved e)

let cmp_name = function
  | Expr.Eq -> "="
  | Expr.Neq -> "<>"
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

let arith_name = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Div -> "/"

let rec expr_to_string = function
  | Col (_, { p_alias = ""; p_col }) -> p_col
  | Col (_, { p_alias; p_col }) -> p_alias ^ "." ^ p_col
  | Lit v -> Value.to_sql v
  | Cmp (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (cmp_name op)
        (expr_to_string b)
  | Arith (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (arith_name op)
        (expr_to_string b)
  | And (a, b) ->
      Printf.sprintf "(%s AND %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) ->
      Printf.sprintf "(%s OR %s)" (expr_to_string a) (expr_to_string b)
  | Not e -> Printf.sprintf "(NOT %s)" (expr_to_string e)
  | Is_null e -> Printf.sprintf "(%s IS NULL)" (expr_to_string e)
  | Is_not_null e -> Printf.sprintf "(%s IS NOT NULL)" (expr_to_string e)

(* --- name resolution --------------------------------------------------- *)

(* Identical rules to the interpreter's [lookup]: qualified references
   need an exact (alias, column) match; unqualified references match by
   column name and raise on the second hit. *)
let lookup (h : header) (q, c) =
  let n = Array.length h in
  match q with
  | Some a ->
      let rec go i =
        if i >= n then None
        else if fst h.(i) = a && snd h.(i) = c then Some i
        else go (i + 1)
      in
      go 0
  | None ->
      let rec go i found =
        if i >= n then found
        else if snd h.(i) = c then
          match found with
          | None -> go (i + 1) (Some i)
          | Some _ -> raise (Ambiguous_column c)
        else go (i + 1) found
      in
      go 0 None

let col_of h i = Col (i, { p_alias = fst h.(i); p_col = snd h.(i) })

let resolve_sql (h : header) (e : Expr.t) : expr =
  let rec go = function
    | Expr.Col (q, c) -> (
        match lookup h (q, c) with
        | Some i -> col_of h i
        | None ->
            raise
              (Expr.Unresolved_column
                 (match q with Some q -> q ^ "." ^ c | None -> c)))
    | Expr.Lit v -> Lit v
    | Expr.Cmp (op, a, b) -> Cmp (op, go a, go b)
    | Expr.Arith (op, a, b) -> Arith (op, go a, go b)
    | Expr.And (a, b) -> And (go a, go b)
    | Expr.Or (a, b) -> Or (go a, go b)
    | Expr.Not e -> Not (go e)
    | Expr.Is_null e -> Is_null (go e)
    | Expr.Is_not_null e -> Is_not_null (go e)
  in
  go e

(* --- lowering ---------------------------------------------------------- *)

let scan_of db name alias =
  let schema = Database.schema db name in
  let cols =
    Array.of_list (List.mapi (fun i c -> (i, c)) (Schema.column_names schema))
  in
  Scan { table = name; alias; cols }

let rec lower_table_ref db (r : Sql.table_ref) : t =
  match r with
  | Sql.Table { name; alias } -> scan_of db name alias
  | Sql.Derived { query; alias } ->
      Derived { input = lower_query db query; alias }
  | Sql.Join { left; kind; right; on } ->
      let l = lower_table_ref db left in
      let r = lower_table_ref db right in
      let h = Array.append (header l) (header r) in
      Join { left = l; kind; right = r; on = resolve_sql h on; from_where = false }

(* Static header of a table_ref, for connectivity tests. *)
and static_header db (r : Sql.table_ref) : header =
  match r with
  | Sql.Table { name; alias } ->
      let schema = Database.schema db name in
      Array.of_list
        (List.map (fun c -> (alias, c)) (Schema.column_names schema))
  | Sql.Derived { query; alias } ->
      Array.of_list (List.map (fun c -> (alias, c)) (Sql.output_columns query))
  | Sql.Join { left; right; _ } ->
      Array.append (static_header db left) (static_header db right)

(* Greedy connected ordering of the comma FROM list, with WHERE conjuncts
   applied as soon as their columns are in scope — structurally identical
   to the interpreter's [eval_from]. *)
and lower_from db (from : Sql.table_ref list) (where : Expr.t option) : t =
  match from with
  | [] -> Dual (* the interpreter ignores WHERE on the dual row *)
  | first :: rest ->
      let conjs = match where with None -> [] | Some w -> Expr.conjuncts w in
      let applicable h c =
        List.for_all (fun qc -> lookup h qc <> None) (Expr.columns c)
      in
      (* [below]: joins still follow, so this filter runs earlier than a
         naive filter-after-product plan would run it. *)
      let apply_filters ~below current pending =
        let h = header current in
        let now, later = List.partition (fun c -> applicable h c) pending in
        match now with
        | [] -> (current, later)
        | _ ->
            ( Filter
                {
                  input = current;
                  pred = resolve_sql h (Expr.conjoin now);
                  pushed = below;
                  charged = true;
                },
              later )
      in
      let connected h candidate =
        let ch = static_header db candidate in
        List.exists
          (fun c ->
            match Expr.as_column_equality c with
            | Some (x, y) ->
                (lookup h x <> None && lookup ch y <> None)
                || (lookup h y <> None && lookup ch x <> None)
            | None -> false)
          conjs
      in
      let current, pending =
        apply_filters ~below:(rest <> []) (lower_table_ref db first) conjs
      in
      let rec go current pending remaining =
        match remaining with
        | [] -> (
            match pending with
            | [] -> current
            | leftover ->
                let h = header current in
                Filter
                  {
                    input = current;
                    pred = resolve_sql h (Expr.conjoin leftover);
                    pushed = false;
                    charged = true;
                  })
        | _ ->
            let next, rest =
              match
                List.partition (fun r -> connected (header current) r) remaining
              with
              | n :: ns, others -> (n, ns @ others)
              | [], r :: rs -> (r, rs)
              | [], [] ->
                  (* partitioning the non-empty [remaining] cannot yield
                     two empty halves; reachable only via a broken
                     List.partition *)
                  invalid_arg
                    (Printf.sprintf
                       "Algebra.lower_from: FROM-list join ordering lost its \
                        %d remaining relation(s)"
                       (List.length remaining))
            in
            let right = lower_table_ref db next in
            let h = Array.append (header current) (header right) in
            let usable, pending' =
              List.partition (fun c -> applicable h c) pending
            in
            let current =
              Join
                {
                  left = current;
                  kind = Sql.Inner;
                  right;
                  on = resolve_sql h (Expr.conjoin usable);
                  from_where = true;
                }
            in
            let current, pending' =
              apply_filters ~below:(rest <> []) current pending'
            in
            go current pending' rest
      in
      go current pending rest

and lower_select db (s : Sql.select) : t =
  let input = lower_from db s.from s.where in
  let h = header input in
  let items =
    Array.of_list
      (List.map
         (fun (it : Sql.select_item) -> (resolve_sql h it.expr, it.alias))
         s.items)
  in
  Project { input; items }

and lower_body db (b : Sql.body) : t =
  match b with
  | Sql.Select s -> lower_select db s
  | Sql.Union_all (a, b) ->
      let la = lower_body db a in
      let lb = lower_body db b in
      if width la <> width lb then
        invalid_arg "Executor: UNION ALL branches have different arity";
      Union_all (la, lb)

and lower_query db (q : Sql.query) : t =
  let body = lower_body db q.body in
  match q.order_by with
  | [] -> body
  | keys ->
      let h = header body in
      let keys =
        List.map
          (fun (e, d) ->
            let r =
              match e with
              | Expr.Col (_, c) -> (
                  (* ORDER BY over output columns resolves by name only *)
                  match lookup h (None, c) with
                  | Some i -> col_of h i
                  | None -> resolve_sql h e)
              | _ -> resolve_sql h e
            in
            (r, d))
          keys
      in
      Sort { input = body; keys }

let lower = lower_query

(* --- constant folding --------------------------------------------------- *)

(* Mirrors [Expr.eval]'s three-valued logic exactly; only rewrites where
   the evaluation result is fully determined. *)
let rec fold_expr (e : expr) : expr =
  match e with
  | Col _ | Lit _ -> e
  | Cmp (op, a, b) -> (
      match (fold_expr a, fold_expr b) with
      | Lit x, Lit y -> (
          match Value.compare3 x y with
          | None -> Lit Value.Null
          | Some c -> Lit (Value.Bool (Expr.apply_cmp op c)))
      | a, b -> Cmp (op, a, b))
  | Arith (op, a, b) -> (
      match (fold_expr a, fold_expr b) with
      | Lit x, Lit y -> Lit (Expr.apply_arith op x y)
      | a, b -> Arith (op, a, b))
  | And (a, b) -> (
      match (fold_expr a, fold_expr b) with
      | Lit (Value.Bool false), _ | _, Lit (Value.Bool false) ->
          Lit (Value.Bool false)
      | Lit (Value.Bool true), Lit v | Lit v, Lit (Value.Bool true) ->
          (match v with Value.Bool _ -> Lit v | _ -> Lit Value.Null)
      | Lit (Value.Bool true), x | x, Lit (Value.Bool true) -> x
      | a, b -> And (a, b))
  | Or (a, b) -> (
      match (fold_expr a, fold_expr b) with
      | Lit (Value.Bool true), _ | _, Lit (Value.Bool true) ->
          Lit (Value.Bool true)
      | Lit (Value.Bool false), Lit v | Lit v, Lit (Value.Bool false) ->
          (match v with Value.Bool _ -> Lit v | _ -> Lit Value.Null)
      | Lit (Value.Bool false), x | x, Lit (Value.Bool false) -> x
      | a, b -> Or (a, b))
  | Not e -> (
      match fold_expr e with
      | Lit (Value.Bool b) -> Lit (Value.Bool (not b))
      | Lit _ -> Lit Value.Null
      | x -> Not x)
  | Is_null e -> (
      match fold_expr e with
      | Lit v -> Lit (Value.Bool (Value.is_null v))
      | x -> Is_null x)
  | Is_not_null e -> (
      match fold_expr e with
      | Lit v -> Lit (Value.Bool (not (Value.is_null v)))
      | x -> Is_not_null x)

let rec remap_expr f = function
  | Col (i, p) -> Col (f i, p)
  | Lit v -> Lit v
  | Cmp (op, a, b) -> Cmp (op, remap_expr f a, remap_expr f b)
  | Arith (op, a, b) -> Arith (op, remap_expr f a, remap_expr f b)
  | And (a, b) -> And (remap_expr f a, remap_expr f b)
  | Or (a, b) -> Or (remap_expr f a, remap_expr f b)
  | Not e -> Not (remap_expr f e)
  | Is_null e -> Is_null (remap_expr f e)
  | Is_not_null e -> Is_not_null (remap_expr f e)

(* --- predicate pushdown ------------------------------------------------- *)

(* Rewrite a predicate over a projection's output into one over its
   input by inlining the item expressions. *)
let rec subst_items (items : (expr * string) array) = function
  | Col (i, _) -> fst items.(i)
  | Lit v -> Lit v
  | Cmp (op, a, b) -> Cmp (op, subst_items items a, subst_items items b)
  | Arith (op, a, b) -> Arith (op, subst_items items a, subst_items items b)
  | And (a, b) -> And (subst_items items a, subst_items items b)
  | Or (a, b) -> Or (subst_items items a, subst_items items b)
  | Not e -> Not (subst_items items e)
  | Is_null e -> Is_null (subst_items items e)
  | Is_not_null e -> Is_not_null (subst_items items e)

(* Sink [pred] below the nearest charging projection(s) of [n].  Only
   that placement is guaranteed to never increase work: the projection
   then emits (and pays for) fewer rows, while the new filter charges at
   most what the predicate's original charge point did.  [charged]
   distinguishes WHERE-origin predicates (which paid per survivor at
   their original position) from ON-origin ones (which the interpreter
   evaluated for free during probing, so the relocated filter must stay
   free). *)
let rec try_sink ~charged (pred : expr) (n : t) : t option =
  match n with
  | Derived { input; alias } ->
      Option.map
        (fun input -> Derived { input; alias })
        (try_sink ~charged pred input)
  | Sort { input; keys } ->
      (* filtering a subset before a stable sort sorts the same subset *)
      Option.map
        (fun input -> Sort { input; keys })
        (try_sink ~charged pred input)
  | Union_all (a, b) -> (
      match (try_sink ~charged pred a, try_sink ~charged pred b) with
      | Some a, Some b -> Some (Union_all (a, b))
      | _ -> None)
  | Project { input; items } -> (
      match fold_expr (subst_items items pred) with
      | Lit (Value.Bool true) -> Some n
      | pred' ->
          Some
            (Project
               {
                 input = Filter { input; pred = pred'; pushed = true; charged };
                 items;
               }))
  | Scan _ | Dual | Filter _ | Join _ -> None

let rec push (n : t) : t =
  match n with
  | Scan _ | Dual -> n
  | Filter { input; pred; pushed; charged } -> (
      let input = push input in
      if charged then
        (* A charged filter must move as a unit: sinking only part of it
           would add a charge point while the residual filter still pays
           per survivor, which can exceed the naive plan's work. *)
        match try_sink ~charged:true pred input with
        | Some input -> input
        | None -> Filter { input; pred; pushed; charged }
      else
        let input, kept =
          List.fold_left
            (fun (input, kept) c ->
              match try_sink ~charged:false c input with
              | Some input -> (input, kept)
              | None -> (input, c :: kept))
            (input, []) (conjuncts pred)
        in
        match List.rev kept with
        | [] -> input
        | ks -> Filter { input; pred = conjoin ks; pushed; charged })
  | Project { input; items } -> Project { input = push input; items }
  | Join { left; kind; right; on; from_where } -> (
      let left = push left and right = push right in
      (* Conjuncts of a single-disjunct ON that touch only one input can
         sink into that input (right side always; left side only for
         inner joins — an outer join keeps left rows that fail the ON).
         The hash keys are cross-side equalities, so they are never
         candidates and the join algorithm cannot change. *)
      match disjuncts on with
      | [ _ ] ->
          let la = width left in
          let step (left, right, kept) c =
            let ps = expr_positions c in
            let all_left = ps <> [] && List.for_all (fun p -> p < la) ps in
            let all_right = ps <> [] && List.for_all (fun p -> p >= la) ps in
            if all_left && kind = Sql.Inner then
              match try_sink ~charged:false c left with
              | Some left -> (left, right, kept)
              | None -> (left, right, c :: kept)
            else if all_right then
              let c' = remap_expr (fun p -> p - la) c in
              match try_sink ~charged:false c' right with
              | Some right -> (left, right, kept)
              | None -> (left, right, c :: kept)
            else (left, right, c :: kept)
          in
          let left, right, kept =
            List.fold_left step (left, right, []) (conjuncts on)
          in
          Join
            { left; kind; right; on = conjoin (List.rev kept); from_where }
      | _ -> Join { left; kind; right; on; from_where })
  | Union_all (a, b) -> Union_all (push a, push b)
  | Derived { input; alias } -> Derived { input = push input; alias }
  | Sort { input; keys } -> Sort { input = push input; keys }

(* --- constant propagation ----------------------------------------------- *)

(* Per-position constant values of a node's output, where provable.
   Left-outer right sides are never constant (NULL padding), and union
   positions only when every branch agrees. *)
let rec consts (n : t) : Value.t option array =
  match n with
  | Scan { cols; _ } -> Array.make (Array.length cols) None
  | Dual -> [||]
  | Filter { input; _ } | Sort { input; _ } | Derived { input; _ } ->
      consts input
  | Project { input; items } ->
      let ic = consts input in
      Array.map
        (fun (e, _) ->
          match e with
          | Lit v -> Some v
          | Col (i, _) -> ic.(i)
          | _ -> None)
        items
  | Join { left; kind; right; _ } ->
      let lc = consts left in
      let rc =
        match kind with
        | Sql.Inner -> consts right
        | Sql.Left_outer -> Array.make (width right) None
      in
      Array.append lc rc
  | Union_all (a, b) ->
      let ca = consts a and cb = consts b in
      Array.map2
        (fun x y ->
          match (x, y) with
          | Some v, Some w when Value.equal v w -> Some v
          | _ -> None)
        ca cb

let rec subst_consts (ic : Value.t option array) = function
  | Col (i, _) as e -> ( match ic.(i) with Some v -> Lit v | None -> e)
  | Lit v -> Lit v
  | Cmp (op, a, b) -> Cmp (op, subst_consts ic a, subst_consts ic b)
  | Arith (op, a, b) -> Arith (op, subst_consts ic a, subst_consts ic b)
  | And (a, b) -> And (subst_consts ic a, subst_consts ic b)
  | Or (a, b) -> Or (subst_consts ic a, subst_consts ic b)
  | Not e -> Not (subst_consts ic e)
  | Is_null e -> Is_null (subst_consts ic e)
  | Is_not_null e -> Is_not_null (subst_consts ic e)

(* Replace provably-constant column references in projection items and
   filter predicates with their literal values.  Join ON conditions are
   left untouched: rewriting them could erase the column equalities the
   physical layer derives hash keys from, degrading hash joins to
   nested loops.  Literal items are what the narrow-emission accounting
   (and the paper's fig. 13 null-padding argument) keys off. *)
let rec propagate (n : t) : t =
  match n with
  | Scan _ | Dual -> n
  | Filter { input; pred; pushed; charged } ->
      let input = propagate input in
      let ic = consts input in
      Filter { input; pred = fold_expr (subst_consts ic pred); pushed; charged }
  | Project { input; items } ->
      let input = propagate input in
      let ic = consts input in
      Project
        {
          input;
          items =
            Array.map (fun (e, a) -> (fold_expr (subst_consts ic e), a)) items;
        }
  | Join { left; kind; right; on; from_where } ->
      Join { left = propagate left; kind; right = propagate right; on; from_where }
  | Union_all (a, b) -> Union_all (propagate a, propagate b)
  | Derived { input; alias } -> Derived { input = propagate input; alias }
  | Sort { input; keys } -> Sort { input = propagate input; keys }

(* Drop filters whose predicate folded to TRUE (they keep every row and
   would only add charges). *)
let rec cleanup (n : t) : t =
  match n with
  | Scan _ | Dual -> n
  | Filter { pred = Lit (Value.Bool true); input; _ } -> cleanup input
  | Filter { input; pred; pushed; charged } ->
      Filter { input = cleanup input; pred; pushed; charged }
  | Project { input; items } -> Project { input = cleanup input; items }
  | Join { left; kind; right; on; from_where } ->
      Join { left = cleanup left; kind; right = cleanup right; on; from_where }
  | Union_all (a, b) -> Union_all (cleanup a, cleanup b)
  | Derived { input; alias } -> Derived { input = cleanup input; alias }
  | Sort { input; keys } -> Sort { input = cleanup input; keys }

(* --- projection pruning ------------------------------------------------- *)

module ISet = Set.Make (Int)

let positions_set e = ISet.of_list (expr_positions e)

(* Restrict a node of width [w] to the output positions in [keep];
   returns the sorted kept indices and the old→new map (-1 = dropped). *)
let mapping_of w keep =
  let map = Array.make w (-1) in
  let kept = ISet.elements (ISet.filter (fun i -> i >= 0 && i < w) keep) in
  List.iteri (fun rank i -> map.(i) <- rank) kept;
  (Array.of_list kept, map)

(* Rewrite [n] to produce only the output positions in [keep]; returns
   the pruned node and the old→new position map.  Work can only shrink:
   scans charge per stored row regardless of width, and emission/sort
   charges are width-sensitive. *)
let rec prune (n : t) (keep : ISet.t) : t * int array =
  match n with
  | Dual -> (Dual, [||])
  | Scan { table; alias; cols } ->
      let kept, map = mapping_of (Array.length cols) keep in
      (Scan { table; alias; cols = Array.map (fun i -> cols.(i)) kept }, map)
  | Filter { input; pred; pushed; charged } ->
      let need = ISet.union keep (positions_set pred) in
      let input, map = prune input need in
      ( Filter
          { input; pred = remap_expr (fun i -> map.(i)) pred; pushed; charged },
        map )
  | Sort { input; keys } ->
      let need =
        List.fold_left (fun acc (e, _) -> ISet.union acc (positions_set e)) keep
          keys
      in
      let input, map = prune input need in
      ( Sort
          {
            input;
            keys = List.map (fun (e, d) -> (remap_expr (fun i -> map.(i)) e, d)) keys;
          },
        map )
  | Project { input; items } ->
      let kept, map = mapping_of (Array.length items) keep in
      let items = Array.map (fun i -> items.(i)) kept in
      let need =
        Array.fold_left
          (fun acc (e, _) -> ISet.union acc (positions_set e))
          ISet.empty items
      in
      let input, imap = prune input need in
      ( Project
          {
            input;
            items =
              Array.map (fun (e, a) -> (remap_expr (fun i -> imap.(i)) e, a)) items;
          },
        map )
  | Union_all (a, b) ->
      (* both branches have equal width and get the same keep set, so
         their position maps coincide *)
      let a, ma = prune a keep in
      let b, _ = prune b keep in
      (Union_all (a, b), ma)
  | Join { left; kind; right; on; from_where } ->
      let la = width left in
      let need = ISet.union keep (positions_set on) in
      let lneed = ISet.filter (fun i -> i < la) need in
      let rneed =
        ISet.fold
          (fun i acc -> if i >= la then ISet.add (i - la) acc else acc)
          need ISet.empty
      in
      let left, lmap = prune left lneed in
      let right, rmap = prune right rneed in
      let la' = width left in
      let map =
        Array.init
          (la + Array.length rmap)
          (fun i ->
            if i < la then lmap.(i)
            else match rmap.(i - la) with -1 -> -1 | j -> la' + j)
      in
      ( Join
          { left; kind; right; on = remap_expr (fun i -> map.(i)) on; from_where },
        map )
  | Derived { input; alias } ->
      let input, map = prune input keep in
      (Derived { input; alias }, map)

let prune_root n =
  let all = ISet.of_list (List.init (width n) (fun i -> i)) in
  fst (prune n all)

let rewrite n = prune_root (cleanup (propagate (push n)))

(* --- printing ----------------------------------------------------------- *)

let item_to_string (e, a) =
  match e with
  | Col (_, { p_col; _ }) when p_col = a -> a
  | _ -> a ^ ":=" ^ expr_to_string e

let to_string (n : t) : string =
  let b = Buffer.create 512 in
  let line ind s =
    Buffer.add_string b (String.make (ind * 2) ' ');
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  in
  let rec go ind = function
    | Scan { table; alias; cols } ->
        line ind
          (Printf.sprintf "scan %s as %s [%s]" table alias
             (String.concat ", " (Array.to_list (Array.map snd cols))))
    | Dual -> line ind "dual"
    | Filter { input; pred; pushed; charged } ->
        line ind
          (Printf.sprintf "filter%s%s %s"
             (if pushed then "[pushdown]" else "")
             (if charged then "" else "[uncharged]")
             (expr_to_string pred));
        go (ind + 1) input
    | Project { input; items } ->
        line ind
          (Printf.sprintf "project [%s]"
             (String.concat ", " (Array.to_list (Array.map item_to_string items))));
        go (ind + 1) input
    | Join { left; kind; right; on; from_where } ->
        line ind
          (Printf.sprintf "join %s%s on %s"
             (match kind with Sql.Inner -> "inner" | Sql.Left_outer -> "left-outer")
             (if from_where then " [pushdown<-where]" else "")
             (expr_to_string on));
        go (ind + 1) left;
        go (ind + 1) right
    | Union_all (a, b) ->
        line ind "union-all";
        go (ind + 1) a;
        go (ind + 1) b
    | Derived { input; alias } ->
        line ind (Printf.sprintf "derived %s" alias);
        go (ind + 1) input
    | Sort { input; keys } ->
        line ind
          (Printf.sprintf "sort [%s]"
             (String.concat ", "
                (List.map
                   (fun (e, d) ->
                     expr_to_string e
                     ^ match d with Sql.Asc -> " asc" | Sql.Desc -> " desc")
                   keys)));
        go (ind + 1) input
  in
  go 0 n;
  Buffer.contents b
