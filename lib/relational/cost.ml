(* The cost / cardinality oracle.

   Estimates are System-R style (per-table row counts from statistics,
   equality selectivity 1/max(ndv), range selectivity 1/3, independence
   across conjuncts), but they are computed over the {!Physical.plan}
   the engine actually runs: the same operator tree, the same join
   algorithms, the same narrow-emission masks.  Walking the plan fills
   each node's [est_rows]/[est_cost] (and [est_spills] on sorts) with
   the same per-operator deltas the executor later records as
   [act_rows]/[act_cost], so estimates and meter readings are directly
   comparable — per operator, not just per query.  The greedy planner
   (paper Sec. 5) calls [estimate] through a counting wrapper so the
   experiments can report the number of oracle requests. *)

type estimate = {
  cardinality : float;
  eval_cost : float;   (* abstract work units, comparable to Executor.stats.work *)
  width : float;       (* average output tuple wire bytes *)
}

let data_size e = e.cardinality *. e.width

(* The paper's linear cost combination: cost(q,a,b) =
   a * evaluation_cost(q) + b * data_size(q). *)
let cost ~a ~b e = (a *. e.eval_cost) +. (b *. data_size e)

(* Per-column symbolic info, positional: index i describes tuple slot i
   of the operator's output, mirroring the resolved expressions.  [lit]
   marks a column that statically holds one constant (NULL padding,
   union level tags): a union of branches with *different* constants has
   ndv = number of constants, and an equality against a known constant
   is exact. *)
type colinfo = { ndv : float; cwidth : float; lit : Value.t option }

let default_col = { ndv = 10.0; cwidth = 8.0; lit = None }

let col_at (cols : colinfo array) i =
  if i >= 0 && i < Array.length cols then cols.(i) else default_col

let sel_of_cmp = function
  | Expr.Eq -> `Eq
  | Expr.Neq -> `Other
  | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> `Range

(* Selectivity of a resolved predicate against positional column info. *)
let rec selectivity cols (e : Expr.resolved) : float =
  match e with
  | Expr.R_lit (Value.Bool true) -> 1.0
  | Expr.R_lit _ -> 0.0 (* only Bool true passes WHERE semantics *)
  | Expr.R_and (x, y) -> selectivity cols x *. selectivity cols y
  | Expr.R_or (x, y) ->
      let sx = selectivity cols x and sy = selectivity cols y in
      sx +. sy -. (sx *. sy)
  | Expr.R_not x -> 1.0 -. selectivity cols x
  | Expr.R_is_null _ -> 0.1
  | Expr.R_is_not_null _ -> 0.9
  | Expr.R_cmp (op, Expr.R_col i, Expr.R_col j) -> (
      let ca = col_at cols i and cb = col_at cols j in
      match sel_of_cmp op with
      | `Eq -> 1.0 /. Float.max 1.0 (Float.max ca.ndv cb.ndv)
      | `Range -> 1.0 /. 3.0
      | `Other -> 0.9)
  | Expr.R_cmp (op, Expr.R_col i, Expr.R_lit v)
  | Expr.R_cmp (op, Expr.R_lit v, Expr.R_col i) -> (
      let ca = col_at cols i in
      match (sel_of_cmp op, ca.lit) with
      | `Eq, Some w -> if v = w then 1.0 else 0.0
      | `Eq, None -> 1.0 /. Float.max 1.0 ca.ndv
      | `Range, _ -> 1.0 /. 3.0
      | `Other, _ -> 0.9)
  | Expr.R_cmp _ -> 0.5
  | Expr.R_col _ | Expr.R_arith _ -> 1.0

(* Width / distinct-count of a projection item. *)
let ewidth cols (e : Expr.resolved) =
  match e with
  | Expr.R_col i -> (col_at cols i).cwidth
  | Expr.R_lit v -> float_of_int (Value.wire_size v)
  | _ -> default_col.cwidth

let endv cols (e : Expr.resolved) =
  match e with
  | Expr.R_col i -> (col_at cols i).ndv
  | Expr.R_lit _ -> 1.0
  | _ -> default_col.ndv

let elit cols (e : Expr.resolved) =
  match e with
  | Expr.R_col i -> (col_at cols i).lit
  | Expr.R_lit v -> Some v
  | _ -> None

let log2 x = if x <= 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* Node-level info threaded through the walk.  [bytes] is the total
   charged wire bytes of the node's output — what a downstream sort
   will pay — which tracks the emission mask, not the full width. *)
type ninfo = { card : float; cols : colinfo array; bytes : float }

module P = Physical

(* Expected join probes: for each ON disjunct the hash table hands back
   the right rows equal on every key pair, so candidates shrink by
   1/max(ndv) per pair; a keyless disjunct degrades the whole join to
   nested-loop over the full cross product. *)
let probe_estimate (l : ninfo) (r : ninfo) (info : P.join_info) =
  match info.algo with
  | P.Nested_loop -> l.card *. r.card
  | P.Hash_join ->
      List.fold_left
        (fun acc (lk, rk) ->
          let s = ref 1.0 in
          Array.iteri
            (fun idx li ->
              let nl = (col_at l.cols li).ndv
              and nr = (col_at r.cols rk.(idx)).ndv in
              s := !s /. Float.max 1.0 (Float.max nl nr))
            lk;
          acc +. (l.card *. r.card *. !s))
        0.0 info.disjuncts

(* Walk the plan bottom-up, mirroring the executor's charges operator
   for operator (weights w_scan=1, w_probe=1, w_emit=2, w_sort=4, byte
   charges divided by [byte_div]).  Side effect: annotates every node's
   [est_rows]/[est_cost] (and sorts' [est_spills]). *)
let annotate ?(profile = Executor.default_profile) stats (p : P.plan) :
    estimate =
  let bdiv = float_of_int profile.Executor.byte_div in
  let buffer = float_of_int profile.Executor.sort_buffer in
  let total = ref 0.0 in
  let rec go (n : P.node) : ninfo =
    let info =
      match n.P.shape with
      | P.Scan { table; col_names; _ } ->
          let ts = Stats.table_exn stats table in
          let card = float_of_int ts.Stats.row_count in
          let c0 = !total in
          total := !total +. card;
          (* w_scan = 1 per row *)
          n.P.est_cost <- !total -. c0;
          let cols =
            Array.map
              (fun c ->
                match List.assoc_opt c ts.Stats.columns with
                | Some (cs : Stats.column_stats) ->
                    {
                      ndv = float_of_int cs.distinct;
                      cwidth = cs.avg_width;
                      lit = None;
                    }
                | None -> default_col)
              col_names
          in
          { card; cols; bytes = 0.0 }
      | P.Dual ->
          n.P.est_cost <- 0.0;
          { card = 1.0; cols = [||]; bytes = 0.0 }
      | P.Filter { input; pred; charged; _ } ->
          let i = go input in
          let c0 = !total in
          let sel = selectivity i.cols pred in
          let card = Float.max 1.0 (i.card *. sel) in
          (* survivors are re-emitted (w_emit = 2) unless the predicate
             was relocated from an ON condition the interpreter
             evaluated for free *)
          if charged then total := !total +. (2.0 *. card);
          n.P.est_cost <- !total -. c0;
          { card; cols = i.cols; bytes = i.bytes *. sel }
      | P.Project { input; items; charged; _ } ->
          let i = go input in
          let c0 = !total in
          let card = i.card in
          let charged_width = ref 0.0 in
          Array.iteri
            (fun k e ->
              if charged.(k) then
                charged_width := !charged_width +. ewidth i.cols e)
            items;
          (* charge_emit_bytes: w_emit plus masked bytes per row *)
          total := !total +. (card *. (2.0 +. (!charged_width /. bdiv)));
          n.P.est_cost <- !total -. c0;
          let cols =
            Array.map
              (fun e ->
                {
                  ndv = Float.min (endv i.cols e) card;
                  cwidth = ewidth i.cols e;
                  lit = elit i.cols e;
                })
              items
          in
          { card; cols; bytes = card *. !charged_width }
      | P.Join { left; right; info = ji } ->
          let l = go left in
          let r = go right in
          let c0 = !total in
          let cols = Array.append l.cols r.cols in
          let sel = selectivity cols ji.on in
          let inner = Float.max 1.0 (l.card *. r.card *. sel) in
          let card =
            match ji.kind with
            | Sql.Inner -> inner
            | Sql.Left_outer -> Float.max inner l.card
          in
          let width = Array.fold_left (fun w c -> w +. c.cwidth) 0.0 cols in
          (* probes (w_probe = 1) plus full-width emission of each
             joined row, exactly like charge_emit_row *)
          total :=
            !total
            +. probe_estimate l r ji
            +. (card *. (2.0 +. (width /. bdiv)));
          n.P.est_cost <- !total -. c0;
          { card; cols; bytes = 0.0 }
      | P.Union ns -> (
          let infos = List.map go ns in
          n.P.est_cost <- 0.0;
          match infos with
          | [] -> { card = 0.0; cols = [||]; bytes = 0.0 }
          | first :: rest ->
              List.fold_left
                (fun acc i ->
                  {
                    card = acc.card +. i.card;
                    cols =
                      Array.mapi
                        (fun k c ->
                          let c' = col_at i.cols k in
                          (* branches are variants of the same entities
                             (outer-union encoding), so key domains
                             overlap: max, not sum.  Columns that are
                             per-branch constants (level tags, NULL
                             pads) are the exception — each distinct
                             constant adds one value. *)
                          let lit, ndv =
                            match (c.lit, c'.lit) with
                            | Some a, Some b when a = b ->
                                (Some a, Float.max c.ndv c'.ndv)
                            | Some _, Some _ -> (None, c.ndv +. c'.ndv)
                            | _ -> (None, Float.max c.ndv c'.ndv)
                          in
                          {
                            ndv;
                            cwidth = Float.max c.cwidth c'.cwidth;
                            lit;
                          })
                        acc.cols;
                    bytes = acc.bytes +. i.bytes;
                  })
                first rest)
      | P.Derived { input; _ } ->
          let i = go input in
          n.P.est_cost <- 0.0;
          i
      | P.Sort { input; _ } ->
          let i = go input in
          let c0 = !total in
          (* w_sort = 4 per row x comparison depth *)
          total := !total +. (4.0 *. i.card *. Float.max 1.0 (log2 i.card));
          let spills =
            if i.bytes > buffer then
              int_of_float (Float.max 1.0 (log2 (i.bytes /. buffer)))
            else 0
          in
          if spills > 0 then
            total := !total +. (float_of_int spills *. i.bytes /. bdiv);
          (match n.P.shape with
          | P.Sort s -> s.est_spills <- spills
          | _ -> ());
          n.P.est_cost <- !total -. c0;
          i
    in
    n.P.est_rows <- info.card;
    info
  in
  let root = go p.P.root in
  let width = Array.fold_left (fun w c -> w +. c.cwidth) 0.0 root.cols in
  { cardinality = root.card; eval_cost = !total; width }

let estimate ?profile stats db (q : Sql.query) : estimate =
  annotate ?profile stats (P.plan_of db q)

(* A counting oracle: the experiments of Sec. 5.1 report how many
   estimate requests the greedy planner issues. *)
type oracle = {
  stats : Stats.t;
  db : Database.t;
  mutable requests : int;
}

let oracle db = { stats = Stats.analyze db; db; requests = 0 }
let oracle_with_stats db stats = { stats; db; requests = 0 }

let ask ?profile o q =
  o.requests <- o.requests + 1;
  estimate ?profile o.stats o.db q

let requests o = o.requests
let reset_requests o = o.requests <- 0
