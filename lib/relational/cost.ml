(* The cost / cardinality oracle.

   Estimates are System-R style: per-table row counts from statistics,
   equality selectivity 1/max(ndv), range selectivity 1/3, independence
   across conjuncts.  evaluation_cost charges scans, hash-join passes and
   sorts; data_size is estimated width x cardinality.  The greedy planner
   (paper Sec. 5) calls [estimate] through a counting wrapper so the
   experiments can report the number of oracle requests. *)

type estimate = {
  cardinality : float;
  eval_cost : float;   (* abstract work units, comparable to Executor.stats.work *)
  width : float;       (* average output tuple wire bytes *)
}

let data_size e = e.cardinality *. e.width

(* The paper's linear cost combination: cost(q,a,b) =
   a * evaluation_cost(q) + b * data_size(q). *)
let cost ~a ~b e = (a *. e.eval_cost) +. (b *. data_size e)

(* Per-column symbolic info carried through the estimator. *)
type colinfo = { ndv : float; cwidth : float }

type relinfo = {
  card : float;
  cols : ((string * string) * colinfo) list; (* (alias, column) *)
}

let find_col info (q, c) =
  match q with
  | Some a -> List.assoc_opt (a, c) info.cols
  | None -> (
      match List.filter (fun ((_, c'), _) -> c' = c) info.cols with
      | [ (_, ci) ] -> Some ci
      | _ -> None)

let default_col = { ndv = 10.0; cwidth = 8.0 }

let sel_of_cmp = function
  | Expr.Eq -> `Eq
  | Expr.Neq -> `Other
  | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> `Range

(* Selectivity of a predicate against the combined column info. *)
let rec selectivity info (e : Expr.t) : float =
  match e with
  | Expr.Lit (Value.Bool true) -> 1.0
  | Expr.Lit (Value.Bool false) -> 0.0
  | Expr.And (x, y) -> selectivity info x *. selectivity info y
  | Expr.Or (x, y) ->
      let sx = selectivity info x and sy = selectivity info y in
      sx +. sy -. (sx *. sy)
  | Expr.Not x -> 1.0 -. selectivity info x
  | Expr.Is_null _ -> 0.1
  | Expr.Is_not_null _ -> 0.9
  | Expr.Cmp (op, Expr.Col (qa, na), Expr.Col (qb, nb)) -> (
      let ca = Option.value ~default:default_col (find_col info (qa, na)) in
      let cb = Option.value ~default:default_col (find_col info (qb, nb)) in
      match sel_of_cmp op with
      | `Eq -> 1.0 /. Float.max 1.0 (Float.max ca.ndv cb.ndv)
      | `Range -> 1.0 /. 3.0
      | `Other -> 0.9)
  | Expr.Cmp (op, Expr.Col (qa, na), Expr.Lit _)
  | Expr.Cmp (op, Expr.Lit _, Expr.Col (qa, na)) -> (
      let ca = Option.value ~default:default_col (find_col info (qa, na)) in
      match sel_of_cmp op with
      | `Eq -> 1.0 /. Float.max 1.0 ca.ndv
      | `Range -> 1.0 /. 3.0
      | `Other -> 0.9)
  | Expr.Cmp _ -> 0.5
  | Expr.Lit _ | Expr.Col _ | Expr.Arith _ -> 1.0

let log2 x = if x <= 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* Estimation state threads an accumulated evaluation cost. *)
type acc = { mutable total : float }

let rec info_of_table_ref stats db acc (r : Sql.table_ref) : relinfo =
  match r with
  | Sql.Table { name; alias } ->
      let ts = Stats.table_exn stats name in
      let card = float_of_int ts.row_count in
      acc.total <- acc.total +. card;
      (* scan cost *)
      {
        card;
        cols =
          List.map
            (fun (c, (cs : Stats.column_stats)) ->
              ( (alias, c),
                { ndv = float_of_int cs.distinct; cwidth = cs.avg_width } ))
            ts.columns;
      }
  | Sql.Derived { query; alias } ->
      let e, info = estimate_query stats db acc query in
      {
        card = e.cardinality;
        cols = List.map (fun ((_, c), ci) -> ((alias, c), ci)) info.cols;
      }
  | Sql.Join { left; kind; right; on } ->
      let li = info_of_table_ref stats db acc left in
      let ri = info_of_table_ref stats db acc right in
      let combined = { card = li.card *. ri.card; cols = li.cols @ ri.cols } in
      let sel = selectivity combined on in
      let inner = Float.max 1.0 (combined.card *. sel) in
      let card =
        match kind with
        | Sql.Inner -> inner
        | Sql.Left_outer -> Float.max inner li.card
      in
      (* hash join: read both inputs, emit output *)
      acc.total <- acc.total +. li.card +. ri.card +. card;
      { card; cols = combined.cols }

and info_of_select stats db acc (s : Sql.select) : relinfo =
  (* Mirror the executor's comma-join strategy: conjuncts are applied as
     soon as their columns are available, so intermediate cardinalities
     (and the join work charged for them) reflect eager filtering rather
     than cross products. *)
  let conjs = match s.where with None -> [] | Some w -> Expr.conjuncts w in
  let applicable info c =
    List.for_all (fun qc -> find_col info qc <> None) (Expr.columns c)
  in
  let step (left, pending) r =
    let ri = info_of_table_ref stats db acc r in
    let combined = { card = left.card *. ri.card; cols = left.cols @ ri.cols } in
    let now, later = List.partition (applicable combined) pending in
    let sel =
      List.fold_left (fun s c -> s *. selectivity combined c) 1.0 now
    in
    let card = Float.max 1.0 (combined.card *. sel) in
    (* charge a hash-join pass: read both inputs, emit the output *)
    if left.cols <> [] then
      acc.total <- acc.total +. left.card +. ri.card +. card;
    ({ combined with card }, later)
  in
  let base, leftover =
    List.fold_left step ({ card = 1.0; cols = [] }, conjs) s.from
  in
  let sel =
    List.fold_left (fun s c -> s *. selectivity base c) 1.0 leftover
  in
  let card = Float.max 1.0 (base.card *. sel) in
  acc.total <- acc.total +. card;
  (* emission *)
  let cols =
    List.map
      (fun (it : Sql.select_item) ->
        let ci =
          match it.expr with
          | Expr.Col (q, c) ->
              Option.value ~default:default_col (find_col base (q, c))
          | Expr.Lit v ->
              { ndv = 1.0; cwidth = float_of_int (Value.wire_size v) }
          | _ -> default_col
        in
        (("", it.alias), { ci with ndv = Float.min ci.ndv card }))
      s.items
  in
  { card; cols }

and info_of_body stats db acc (b : Sql.body) : relinfo =
  match b with
  | Sql.Select s -> info_of_select stats db acc s
  | Sql.Union_all (x, y) ->
      let ix = info_of_body stats db acc x in
      let iy = info_of_body stats db acc y in
      let cols =
        List.map2
          (fun (k, cx) (_, cy) ->
            ( k,
              {
                ndv = cx.ndv +. cy.ndv;
                cwidth = Float.max cx.cwidth cy.cwidth;
              } ))
          ix.cols iy.cols
      in
      { card = ix.card +. iy.card; cols }

and estimate_query ?(profile = Executor.default_profile) stats db acc
    (q : Sql.query) : estimate * relinfo =
  let info = info_of_body stats db acc q.body in
  let width =
    List.fold_left (fun w (_, ci) -> w +. ci.cwidth) 0.0 info.cols
  in
  (* width-sensitive emission, mirroring Executor.charge_emit_row *)
  acc.total <-
    acc.total +. (info.card *. width /. float_of_int profile.Executor.byte_div);
  (match q.order_by with
  | [] -> ()
  | _ ->
      acc.total <- acc.total +. (info.card *. log2 info.card);
      (* external-sort spill, mirroring Executor.charge_sort *)
      let bytes = info.card *. width in
      let buffer = float_of_int profile.Executor.sort_buffer in
      if bytes > buffer then begin
        let passes = Float.max 1.0 (log2 (bytes /. buffer)) in
        acc.total <-
          acc.total
          +. (passes *. bytes /. float_of_int profile.Executor.byte_div)
      end);
  ({ cardinality = info.card; eval_cost = acc.total; width }, info)

let estimate ?profile stats db (q : Sql.query) : estimate =
  let acc = { total = 0.0 } in
  fst (estimate_query ?profile stats db acc q)

(* A counting oracle: the experiments of Sec. 5.1 report how many
   estimate requests the greedy planner issues. *)
type oracle = {
  stats : Stats.t;
  db : Database.t;
  mutable requests : int;
}

let oracle db = { stats = Stats.analyze db; db; requests = 0 }
let oracle_with_stats db stats = { stats; db; requests = 0 }

let ask ?profile o q =
  o.requests <- o.requests + 1;
  estimate ?profile o.stats o.db q

let requests o = o.requests
let reset_requests o = o.requests <- 0
