(* Fixed-size row chunks with selection vectors.  See batch.mli. *)

type t = {
  rows : Tuple.t array;
  bytes : int array;
  mutable len : int;
  mutable sel : int array;
      (* indexes of live rows, in ascending order; [||] means "no
         selection vector yet", i.e. all [len] rows are live. *)
  mutable sel_len : int;
  mutable filtered : bool;
}

(* 256 elements is the largest array the OCaml runtime still allocates
   on the minor heap (Max_young_wosize).  Larger chunks land on the
   major heap, and then every [push] of a young tuple pays the full
   write-barrier cost — measurably slower than the tuple path. *)
let default_size = 256

let create ?(size = default_size) () =
  if size < 1 then invalid_arg "Batch.create: size < 1";
  {
    rows = Array.make size [||];
    bytes = Array.make size 0;
    len = 0;
    sel = [||];
    sel_len = 0;
    filtered = false;
  }

let of_rows rows =
  {
    rows;
    bytes = Array.make (max 1 (Array.length rows)) 0;
    len = Array.length rows;
    sel = [||];
    sel_len = 0;
    filtered = false;
  }

let capacity b = Array.length b.rows
let length b = if b.filtered then b.sel_len else b.len
let is_full b = (not b.filtered) && b.len = Array.length b.rows

let push b ?(bytes = 0) row =
  if b.filtered then invalid_arg "Batch.push: batch has a selection vector";
  if b.len = Array.length b.rows then invalid_arg "Batch.push: batch is full";
  b.rows.(b.len) <- row;
  b.bytes.(b.len) <- bytes;
  b.len <- b.len + 1

let live_index b i =
  if i < 0 || i >= length b then invalid_arg "Batch: index out of bounds";
  if b.filtered then b.sel.(i) else i

let get b i = b.rows.(live_index b i)
let bytes_at b i = b.bytes.(live_index b i)

let iter f b =
  if b.filtered then
    for i = 0 to b.sel_len - 1 do
      let j = b.sel.(i) in
      f b.rows.(j) b.bytes.(j)
    done
  else
    for i = 0 to b.len - 1 do
      f b.rows.(i) b.bytes.(i)
    done

let keep p b =
  if not b.filtered then begin
    b.sel <- Array.make b.len 0;
    b.sel_len <- b.len;
    for i = 0 to b.len - 1 do
      b.sel.(i) <- i
    done;
    b.filtered <- true
  end;
  let kept = ref 0 in
  for i = 0 to b.sel_len - 1 do
    let j = b.sel.(i) in
    if p b.rows.(j) then begin
      b.sel.(!kept) <- j;
      incr kept
    end
  done;
  b.sel_len <- !kept;
  !kept

let to_list b =
  let acc = ref [] in
  iter (fun row _ -> acc := row :: !acc) b;
  List.rev !acc

let to_pairs b =
  let acc = ref [] in
  iter (fun row bytes -> acc := (bytes, row) :: !acc) b;
  List.rev !acc
