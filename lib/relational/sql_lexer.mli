(** Tokenizer for the middleware SQL dialect.

    Keywords are not reserved here; {!Sql_parser} matches identifiers
    case-insensitively where it expects a keyword. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of string * int
(** Message and byte offset of the failure. *)

val token_to_string : token -> string

val tokenize : string -> token array
(** Tokenizes a full query; the result always ends with {!EOF}.  String
    literals use SQL [''] escaping; numeric literals include hex floats
    (the printer's lossless float syntax). *)
