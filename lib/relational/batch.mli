(** Fixed-size row chunks with selection vectors — the unit of work of
    the vectorized execution path.

    A batch holds up to [capacity] tuples together with the per-row
    charged-byte figure that the executor threads from projections down
    to sorts.  Filtering does not copy rows: {!keep} installs (or
    refines) a selection vector of live row indexes, so a chain of
    predicates touches each row array exactly once.

    Invariant: a batch is append-only until the first {!keep}; pushing
    into a batch that carries a selection vector is a programming error
    ([Invalid_argument]). *)

type t

val default_size : int
(** 256 rows — the largest chunk whose row array still fits the OCaml
    minor heap ([Max_young_wosize]).  Bigger batches are valid but pay
    major-heap write barriers on every push. *)

val create : ?size:int -> unit -> t
(** Fresh empty batch with room for [size] rows (default
    {!default_size}).  [size] must be at least 1. *)

val of_rows : Tuple.t array -> t
(** Full batch taking ownership of [rows] (capacity = length = array
    length), all charged-byte figures 0.  Bulk alternative to repeated
    {!push} for producers that already hold an array. *)

val capacity : t -> int

val length : t -> int
(** Number of live rows: pushed rows minus those dropped by {!keep}. *)

val is_full : t -> bool

val push : t -> ?bytes:int -> Tuple.t -> unit
(** Append a row (with its charged-byte figure, default 0).  Raises
    [Invalid_argument] if the batch is full or carries a selection
    vector. *)

val get : t -> int -> Tuple.t
(** [get b i] is the [i]-th {e live} row, respecting the selection
    vector. *)

val bytes_at : t -> int -> int
(** Charged bytes of the [i]-th live row. *)

val iter : (Tuple.t -> int -> unit) -> t -> unit
(** [iter f b] applies [f row bytes] to each live row in order. *)

val keep : (Tuple.t -> bool) -> t -> int
(** [keep p b] drops live rows failing [p] by refining the selection
    vector in place (no row is copied); returns the surviving count.
    Composes: a second [keep] only re-tests rows that survived the
    first. *)

val to_list : t -> Tuple.t list
(** Live rows in order. *)

val to_pairs : t -> (int * Tuple.t) list
(** Live [(bytes, row)] pairs in order. *)
