(** Materialized result sets.

    Stored tables live in {!Database}; this type is what query execution
    produces and what the middleware's merge tagger consumes as sorted
    tuple streams. *)

type t

val create : string array -> Tuple.t list -> t
(** [create cols rows] checks every tuple has arity [Array.length cols].
    Raises [Invalid_argument] otherwise. *)

val empty : string array -> t
val cols : t -> string array
val rows : t -> Tuple.t list
val cardinality : t -> int
val arity : t -> int

val column_index : t -> string -> int option
val column_index_exn : t -> string -> int

val sort_by : int array -> t -> t
(** Stable sort by the given column positions under the total value
    order (NULL first). *)

val is_sorted_by : int array -> t -> bool

val wire_size : t -> int
(** Total transfer bytes of all tuples (cost-model input). *)

val equal : t -> t -> bool
(** Same columns, same tuples in the same order. *)

val equal_bag : t -> t -> bool
(** Same columns and same multiset of tuples, order-insensitive. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
