(* Query execution.

   The engine runs physical plans: [run]/[run_cursor] lower the SQL AST
   into the logical algebra (name resolution done once, greedy
   connected-join ordering fixed at plan time), rewrite it (predicate
   pushdown, constant folding, projection pruning), convert it to a
   {!Physical.plan} (hash joins where the ON disjuncts provide column
   equalities — including the OR-expansion the unified outer-join plans
   need — nested loops otherwise), and interpret that plan.

   Execution is metered: every row scanned, probed, emitted or sorted
   charges a work counter.  The counter serves two purposes: it
   implements the experiment timeout (the paper killed sub-queries after
   five minutes), and it provides a deterministic "simulated time" that
   makes the experiment output reproducible across machines.  The
   physical path charges exactly like the seed interpreter at every
   operator, except that rewrites may only lower the bill: statically
   literal output columns (NULL padding, level constants) skip the
   per-byte emission charge, and pruned projections shrink intermediate
   widths.

   The seed interpreter is kept verbatim as [run_legacy]* so the
   differential tests can assert byte-identical output and
   never-higher work. *)

exception Timeout
exception Ambiguous_column = Algebra.Ambiguous_column

type stats = {
  mutable scanned : int;       (* rows read from stored tables *)
  mutable probed : int;        (* join candidate pairs examined *)
  mutable emitted : int;       (* rows produced by operators *)
  mutable sorted : int;        (* rows passed through sort *)
  mutable spill_passes : int;  (* external-sort merge passes *)
  mutable work : int;          (* total work units, drives the budget *)
}

let new_stats () =
  { scanned = 0; probed = 0; emitted = 0; sorted = 0; spill_passes = 0; work = 0 }

(* Cost profile of the simulated server.  The engine runs in memory, but
   the work meter models a disk-based RDBMS: rows are charged by width
   (NULL padding is cheap but not free), and sorting a result larger
   than [sort_buffer] bytes pays external merge passes.  These two
   effects are what the paper blames for the unified plans' slowness:
   "they sort smaller result relations and therefore are less likely to
   spill tuples to disk; and they typically have many fewer null values
   than a unified query" (Sec. 7). *)
type profile = {
  sort_buffer : int;   (* bytes of sort memory before spilling *)
  byte_div : int;      (* bytes per extra work unit on emit/sort/spill *)
}

let default_profile = { sort_buffer = 64 * 1024; byte_div = 16 }

(* Work-unit weights; stable, not physically meaningful. *)
let w_scan = 1
let w_probe = 1
let w_emit = 2
let w_sort = 4

type ctx = { db : Database.t; st : stats; budget : int; profile : profile }

let charge ctx field n =
  (match field with
  | `Scan ->
      ctx.st.scanned <- ctx.st.scanned + n;
      ctx.st.work <- ctx.st.work + (n * w_scan)
  | `Probe ->
      ctx.st.probed <- ctx.st.probed + n;
      ctx.st.work <- ctx.st.work + (n * w_probe)
  | `Emit ->
      ctx.st.emitted <- ctx.st.emitted + n;
      ctx.st.work <- ctx.st.work + (n * w_emit)
  | `Sort ->
      ctx.st.sorted <- ctx.st.sorted + n;
      ctx.st.work <- ctx.st.work + (n * w_sort));
  if ctx.budget > 0 && ctx.st.work > ctx.budget then raise Timeout

(* Width-sensitive emission: a produced row also pays for its bytes. *)
let charge_emit_bytes ctx bytes =
  charge ctx `Emit 1;
  ctx.st.work <- ctx.st.work + (bytes / ctx.profile.byte_div);
  if ctx.budget > 0 && ctx.st.work > ctx.budget then raise Timeout

let charge_emit_row ctx (t : Tuple.t) =
  charge_emit_bytes ctx (Tuple.wire_size t)

(* Sorting [rows] totalling [bytes]: n log n comparisons charged per row,
   plus external merge passes once the sort buffer is exceeded — each
   pass rereads and rewrites the whole run. *)
let charge_sort ctx rows bytes =
  let log2 n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
    go 0 n
  in
  charge ctx `Sort (rows * max 1 (log2 rows));
  if bytes > ctx.profile.sort_buffer then begin
    let ratio = bytes / ctx.profile.sort_buffer in
    let passes = max 1 (log2 ratio) in
    ctx.st.spill_passes <- ctx.st.spill_passes + passes;
    ctx.st.work <- ctx.st.work + (passes * (bytes / ctx.profile.byte_div));
    if ctx.budget > 0 && ctx.st.work > ctx.budget then raise Timeout
  end

(* A header names each position of an intermediate tuple with (alias,
   column).  The same column name may appear under several aliases. *)
type header = (string * string) array

type rel = { header : header; tuples : Tuple.t list }

let lookup (header : header) (q, c) =
  let n = Array.length header in
  match q with
  | Some a ->
      let rec go i =
        if i >= n then None
        else if fst header.(i) = a && snd header.(i) = c then Some i
        else go (i + 1)
      in
      go 0
  | None ->
      let rec go i found =
        if i >= n then found
        else if snd header.(i) = c then
          match found with
          | None -> go (i + 1) (Some i)
          | Some _ -> raise (Ambiguous_column c)
        else go (i + 1) found
      in
      go 0 None

let resolver header e = Expr.resolve (lookup header) e

(* --- shared join machinery -------------------------------------------- *)

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
    in
    go 0

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end

module KeyTbl = Hashtbl.Make (Key)

(* ===================================================================== *)
(* Legacy direct AST interpretation (the seed executor).  Kept only as   *)
(* the reference implementation for the differential safety-net tests:  *)
(* the physical path below must match its output byte for byte while    *)
(* never charging more work.                                            *)
(* ===================================================================== *)

let scan ctx name alias : rel =
  Obs.Span.with_span "exec.scan" (fun () ->
      let schema = Database.schema ctx.db name in
      let data = Database.raw_data ctx.db name in
      charge ctx `Scan (Array.length data);
      if Obs.Span.tracing () then begin
        Obs.Span.add_list
          [
            Obs.Attr.string "table" name;
            Obs.Attr.int "rows" (Array.length data);
          ];
        Obs.Metrics.incr ~by:(Array.length data) "exec.rows_scanned"
      end;
      let header =
        Array.of_list
          (List.map (fun c -> (alias, c)) (Schema.column_names schema))
      in
      { header; tuples = Array.to_list data })

(* Split a predicate into top-level disjuncts; within each disjunct,
   extract the column equalities usable as hash keys between the left
   and right headers. *)
let rec disjuncts_of = function
  | Expr.Or (a, b) -> disjuncts_of a @ disjuncts_of b
  | e -> [ e ]

let equi_keys lh rh e =
  let pairs =
    List.filter_map
      (fun c ->
        match Expr.as_column_equality c with
        | Some (x, y) -> (
            match (lookup lh x, lookup rh y) with
            | Some i, Some j -> Some (i, j)
            | _ -> (
                match (lookup lh y, lookup rh x) with
                | Some i, Some j -> Some (i, j)
                | _ -> None))
        | None -> None)
      (Expr.conjuncts e)
  in
  ( Array.of_list (List.map fst pairs),
    Array.of_list (List.map snd pairs) )

(* Generic hash-based join with OR-expansion.  Each disjunct of the ON
   condition that has column equalities gets a hash table on the right
   input; probing unions candidate row ids, then the full ON predicate
   decides.  Disjuncts without equalities force the whole right side to be
   a candidate (degrading to a nested loop for those). *)
let join ctx kind (left : rel) (right : rel) (on : Expr.t) : rel =
 Obs.Span.with_span "exec.join" (fun () ->
  let work0 = ctx.st.work in
  let probed0 = ctx.st.probed and emitted0 = ctx.st.emitted in
  let header = Array.append left.header right.header in
  let resolved_on = resolver header on in
  let right_arr = Array.of_list right.tuples in
  let nright = Array.length right_arr in
  let djs = disjuncts_of on in
  let plans =
    List.map
      (fun d ->
        let lk, rk = equi_keys left.header right.header d in
        if Array.length lk = 0 then `Full
        else begin
          let tbl = KeyTbl.create (max 16 nright) in
          Array.iteri
            (fun idx row ->
              let k = Tuple.project rk row in
              let prev = try KeyTbl.find tbl k with Not_found -> [] in
              KeyTbl.replace tbl k (idx :: prev))
            right_arr;
          `Hash (lk, tbl)
        end)
      djs
  in
  let needs_full =
    List.exists (function `Full -> true | `Hash _ -> false) plans
  in
  let null_pad = Tuple.all_null (Array.length right.header) in
  let out = ref [] in
  let candidates = Hashtbl.create 64 in
  List.iter
    (fun lrow ->
      Hashtbl.reset candidates;
      if needs_full then
        for i = 0 to nright - 1 do
          Hashtbl.replace candidates i ()
        done
      else
        List.iter
          (function
            | `Full -> ()
            | `Hash (lk, tbl) -> (
                let k = Tuple.project lk lrow in
                match KeyTbl.find_opt tbl k with
                | None -> ()
                | Some idxs -> List.iter (fun i -> Hashtbl.replace candidates i ()) idxs))
          plans;
      let matched = ref false in
      (* Iterate in ascending right-row order for deterministic output. *)
      let idxs =
        Hashtbl.fold (fun i () acc -> i :: acc) candidates []
        |> List.sort compare
      in
      charge ctx `Probe (List.length idxs);
      List.iter
        (fun i ->
          let joined = Tuple.concat lrow right_arr.(i) in
          if Expr.eval_pred resolved_on joined then begin
            matched := true;
            charge_emit_row ctx joined;
            out := joined :: !out
          end)
        idxs;
      if (not !matched) && kind = Sql.Left_outer then begin
        let padded = Tuple.concat lrow null_pad in
        charge_emit_row ctx padded;
        out := padded :: !out
      end)
    left.tuples;
  if Obs.Span.tracing () then begin
    Obs.Span.set_name
      (if needs_full then "exec.nested-loop" else "exec.hash-join");
    Obs.Span.add_list
      [
        Obs.Attr.string "kind"
          (match kind with Sql.Inner -> "inner" | Sql.Left_outer -> "left-outer");
        Obs.Attr.int "left_rows" (List.length left.tuples);
        Obs.Attr.int "right_rows" nright;
        Obs.Attr.int "out_rows" (List.length !out);
        Obs.Attr.int "probed" (ctx.st.probed - probed0);
        Obs.Attr.int "emitted" (ctx.st.emitted - emitted0);
        Obs.Attr.int "work" (ctx.st.work - work0);
      ];
    Obs.Metrics.incr ~by:(ctx.st.probed - probed0) "exec.rows_probed";
    Obs.Metrics.observe "exec.join.out_rows" (float_of_int (List.length !out))
  end;
  { header; tuples = List.rev !out })

(* Joining the comma list left to right with the WHERE conjuncts that
   become applicable; pick the next table that is connected to the current
   result by an equality conjunct to avoid Cartesian products. *)
let rec eval_table_ref ctx (r : Sql.table_ref) : rel =
  match r with
  | Sql.Table { name; alias } -> scan ctx name alias
  | Sql.Derived { query; alias } ->
      let result = eval_query ctx query in
      let header =
        Array.map (fun c -> (alias, c)) (Relation.cols result)
      in
      { header; tuples = Relation.rows result }
  | Sql.Join { left; kind; right; on } ->
      let l = eval_table_ref ctx left in
      let r = eval_table_ref ctx right in
      join ctx kind l r on

and eval_from ctx (from : Sql.table_ref list) (where : Expr.t option) : rel =
  match from with
  | [] ->
      (* dual: single empty row *)
      { header = [||]; tuples = [ [||] ] }
  | first :: rest ->
      let conjs = match where with None -> [] | Some w -> Expr.conjuncts w in
      let applicable header c =
        List.for_all
          (fun qc -> lookup header qc <> None)
          (Expr.columns c)
      in
      let apply_filters current pending =
        let now, later =
          List.partition (fun c -> applicable current.header c) pending
        in
        match now with
        | [] -> (current, later)
        | _ ->
            let pred = resolver current.header (Expr.conjoin now) in
            let tuples = List.filter (Expr.eval_pred pred) current.tuples in
            charge ctx `Emit (List.length tuples);
            ({ current with tuples }, later)
      in
      let connected current_header candidate =
        let ch = eval_header_of ctx candidate in
        List.exists
          (fun c ->
            match Expr.as_column_equality c with
            | Some (x, y) ->
                (lookup current_header x <> None && lookup ch y <> None)
                || (lookup current_header y <> None && lookup ch x <> None)
            | None -> false)
          conjs
      in
      let current, pending =
        apply_filters (eval_table_ref ctx first) conjs
      in
      let rec go current pending remaining =
        match remaining with
        | [] ->
            (match pending with
            | [] -> current
            | leftover ->
                (* Conjuncts never became applicable: resolution error. *)
                let pred = resolver current.header (Expr.conjoin leftover) in
                let tuples =
                  List.filter (Expr.eval_pred pred) current.tuples
                in
                (* Late-resolving filters must charge like any other
                   filter (`Emit` per surviving row, as [apply_filters]
                   does), or plans whose predicates resolve late would
                   undercount work versus equivalent plans. *)
                charge ctx `Emit (List.length tuples);
                { current with tuples })
        | _ ->
            let next, rest =
              match
                List.partition (fun r -> connected current.header r) remaining
              with
              | n :: ns, others -> (n, ns @ others)
              | [], r :: rs -> (r, rs)
              | [], [] ->
                  invalid_arg
                    "Executor: internal error — join ordering ran out of \
                     tables while the FROM list was non-empty"
            in
            let right = eval_table_ref ctx next in
            (* Use the applicable cross-table conjuncts as the join
               condition; leave the rest pending. *)
            let header = Array.append current.header right.header in
            let usable, pending' =
              List.partition (fun c -> applicable header c) pending
            in
            let on = Expr.conjoin usable in
            let current = join ctx Sql.Inner current right on in
            let current, pending' = apply_filters current pending' in
            go current pending' rest
      in
      go current pending rest

(* Header of a table_ref without evaluating it (used for connectivity). *)
and eval_header_of ctx (r : Sql.table_ref) : header =
  match r with
  | Sql.Table { name; alias } ->
      let schema = Database.schema ctx.db name in
      Array.of_list
        (List.map (fun c -> (alias, c)) (Schema.column_names schema))
  | Sql.Derived { query; alias } ->
      Array.of_list
        (List.map (fun c -> (alias, c)) (Sql.output_columns query))
  | Sql.Join { left; right; _ } ->
      Array.append (eval_header_of ctx left) (eval_header_of ctx right)

and eval_select ctx (s : Sql.select) : rel =
  let input = eval_from ctx s.from s.where in
  let items =
    List.map
      (fun (it : Sql.select_item) -> (it.alias, resolver input.header it.expr))
      s.items
  in
  let out_header =
    Array.of_list (List.map (fun (a, _) -> ("", a)) items)
  in
  (* Compile the projection once: an array of per-column closures, so the
     per-row cost is one closure call per column instead of a list map
     plus an interpreter walk. *)
  let fns = Array.of_list (List.map (fun (_, r) -> Expr.compile r) items) in
  let tuples =
    List.map
      (fun row ->
        let t = Array.map (fun f -> f row) fns in
        charge_emit_row ctx t;
        t)
      input.tuples
  in
  { header = out_header; tuples }

and eval_body ctx (b : Sql.body) : rel =
  match b with
  | Sql.Select s -> eval_select ctx s
  | Sql.Union_all (a, b) ->
      let ra = eval_body ctx a in
      let rb = eval_body ctx b in
      if Array.length ra.header <> Array.length rb.header then
        invalid_arg "Executor: UNION ALL branches have different arity";
      { ra with tuples = ra.tuples @ rb.tuples }

(* Evaluate a full query down to its sorted output rows without wrapping
   them in a [Relation]: shared by the materializing and cursor legacy
   entry points, so both charge exactly the same work. *)
and eval_sorted ctx (q : Sql.query) : string array * Tuple.t list =
  let result = eval_body ctx q.body in
  let cols = Array.map snd result.header in
  let tuples =
    match q.order_by with
    | [] -> result.tuples
    | keys ->
     Obs.Span.with_span "exec.sort" (fun () ->
        let resolved =
          List.map
            (fun (e, d) ->
              let r =
                match e with
                | Expr.Col (_, c) -> (
                    (* ORDER BY over output columns: resolve by name only *)
                    match lookup result.header (None, c) with
                    | Some i -> Expr.resolve (fun _ -> Some i) (Expr.Col (None, c))
                    | None -> resolver result.header e)
                | _ -> resolver result.header e
              in
              (r, d))
            keys
        in
        (* Evaluate each sort key once per row (decorate–sort–undecorate)
           instead of re-interpreting the key expressions inside the
           comparator at every comparison. *)
        let key_fns =
          Array.of_list (List.map (fun (r, _) -> Expr.compile r) resolved)
        in
        let dirs = Array.of_list (List.map snd resolved) in
        let nkeys = Array.length key_fns in
        let cmp (ka, _) (kb, _) =
          let rec go i =
            if i >= nkeys then 0
            else
              let c = Value.compare_total ka.(i) kb.(i) in
              let c = if dirs.(i) = Sql.Desc then -c else c in
              if c <> 0 then c else go (i + 1)
          in
          go 0
        in
        let bytes =
          List.fold_left (fun acc t -> acc + Tuple.wire_size t) 0 result.tuples
        in
        let spill0 = ctx.st.spill_passes and work0 = ctx.st.work in
        charge_sort ctx (List.length result.tuples) bytes;
        if Obs.Span.tracing () then begin
          let spills = ctx.st.spill_passes - spill0 in
          Obs.Span.add_list
            [
              Obs.Attr.int "rows" (List.length result.tuples);
              Obs.Attr.int "bytes" bytes;
              Obs.Attr.int "spill_passes" spills;
              Obs.Attr.int "work" (ctx.st.work - work0);
            ];
          Obs.Metrics.observe "exec.sort.bytes" (float_of_int bytes);
          if spills > 0 then begin
            Obs.Metrics.incr ~by:spills "exec.spill_passes";
            Obs.Event.warn "exec.spill"
              ~attrs:
                [
                  Obs.Attr.int "rows" (List.length result.tuples);
                  Obs.Attr.int "bytes" bytes;
                  Obs.Attr.int "passes" spills;
                ]
          end
        end;
        let decorated =
          List.map
            (fun t -> (Array.map (fun f -> f t) key_fns, t))
            result.tuples
        in
        List.map snd (List.stable_sort cmp decorated))
  in
  (cols, tuples)

and eval_query ctx (q : Sql.query) : Relation.t =
  let cols, tuples = eval_sorted ctx q in
  Relation.create cols tuples

(* ===================================================================== *)
(* Physical-plan execution.  Charges mirror the legacy interpreter       *)
(* operator for operator; only the rewriter-granted discounts differ     *)
(* (narrow emission masks, pruned widths, uncharged relocated ON         *)
(* predicates).                                                          *)
(* ===================================================================== *)

module P = Physical

let masked_size (mask : bool array) (t : Tuple.t) =
  let s = ref 0 in
  Array.iteri (fun i v -> if mask.(i) then s := !s + Value.wire_size v) t;
  !s

(* Every node returns (charged_bytes, tuple) pairs: the byte figure is
   what emission charged for the row and what a downstream sort will
   charge again — full wire size everywhere except under an output
   projection's literal-column mask. *)
let rec exec_pairs ctx (n : P.node) : (int * Tuple.t) list =
  let pairs =
    match n.P.shape with
    | P.Scan { table; cols; _ } ->
        Obs.Span.with_span "exec.scan" (fun () ->
            let data = Database.raw_data ctx.db table in
            let w0 = ctx.st.work in
            charge ctx `Scan (Array.length data);
            n.P.act_cost <- ctx.st.work - w0;
            if Obs.Span.tracing () then begin
              Obs.Span.add_list
                [
                  Obs.Attr.string "table" table;
                  Obs.Attr.int "rows" (Array.length data);
                ];
              Obs.Metrics.incr ~by:(Array.length data) "exec.rows_scanned"
            end;
            let arity = Schema.arity (Database.schema ctx.db table) in
            let rows =
              if Array.length cols = arity then Array.to_list data
              else List.map (Tuple.project cols) (Array.to_list data)
            in
            (* scan outputs never feed a sort directly (a projection
               always intervenes), so their byte figure is unused *)
            List.map (fun t -> (0, t)) rows)
    | P.Dual ->
        n.P.act_cost <- 0;
        [ (0, [||]) ]
    | P.Filter { input; pred; charged; _ } ->
        let rows = exec_pairs ctx input in
        let w0 = ctx.st.work in
        let out = List.filter (fun (_, t) -> Expr.eval_pred pred t) rows in
        if charged then charge ctx `Emit (List.length out);
        n.P.act_cost <- ctx.st.work - w0;
        out
    | P.Project { input; items; charged; _ } ->
        let rows = exec_pairs ctx input in
        let w0 = ctx.st.work in
        let full = Array.for_all (fun c -> c) charged in
        let fns = Array.map Expr.compile items in
        let out =
          List.map
            (fun (_, row) ->
              let t = Array.map (fun f -> f row) fns in
              let bytes =
                if full then Tuple.wire_size t else masked_size charged t
              in
              charge_emit_bytes ctx bytes;
              (bytes, t))
            rows
        in
        n.P.act_cost <- ctx.st.work - w0;
        out
    | P.Join { left; right; info } ->
        let l = exec_pairs ctx left in
        let r = exec_pairs ctx right in
        Obs.Span.with_span "exec.join" (fun () ->
            exec_join ctx n info (List.map snd l) (List.map snd r))
    | P.Union ns -> List.concat_map (fun c -> exec_pairs ctx c) ns
    | P.Derived { input; _ } -> exec_pairs ctx input
    | P.Sort { input; keys; _ } ->
        let pairs = exec_pairs ctx input in
        exec_sort ctx n keys pairs
  in
  n.P.act_rows <- List.length pairs;
  pairs

and exec_join ctx (n : P.node) (info : P.join_info) left right :
    (int * Tuple.t) list =
  let work0 = ctx.st.work in
  let probed0 = ctx.st.probed and emitted0 = ctx.st.emitted in
  let right_arr = Array.of_list right in
  let nright = Array.length right_arr in
  let plans =
    List.map
      (fun (lk, rk) ->
        if Array.length lk = 0 then `Full
        else begin
          let tbl = KeyTbl.create (max 16 nright) in
          Array.iteri
            (fun idx row ->
              let k = Tuple.project rk row in
              let prev = try KeyTbl.find tbl k with Not_found -> [] in
              KeyTbl.replace tbl k (idx :: prev))
            right_arr;
          `Hash (lk, tbl)
        end)
      info.P.disjuncts
  in
  let needs_full =
    List.exists (function `Full -> true | `Hash _ -> false) plans
  in
  let null_pad = Tuple.all_null info.P.right_width in
  let on = info.P.on in
  let out = ref [] in
  let candidates = Hashtbl.create 64 in
  List.iter
    (fun lrow ->
      Hashtbl.reset candidates;
      if needs_full then
        for i = 0 to nright - 1 do
          Hashtbl.replace candidates i ()
        done
      else
        List.iter
          (function
            | `Full -> ()
            | `Hash (lk, tbl) -> (
                let k = Tuple.project lk lrow in
                match KeyTbl.find_opt tbl k with
                | None -> ()
                | Some idxs ->
                    List.iter (fun i -> Hashtbl.replace candidates i ()) idxs))
          plans;
      let matched = ref false in
      (* Iterate in ascending right-row order for deterministic output. *)
      let idxs =
        Hashtbl.fold (fun i () acc -> i :: acc) candidates []
        |> List.sort compare
      in
      charge ctx `Probe (List.length idxs);
      List.iter
        (fun i ->
          let joined = Tuple.concat lrow right_arr.(i) in
          if Expr.eval_pred on joined then begin
            matched := true;
            charge_emit_row ctx joined;
            out := joined :: !out
          end)
        idxs;
      if (not !matched) && info.P.kind = Sql.Left_outer then begin
        let padded = Tuple.concat lrow null_pad in
        charge_emit_row ctx padded;
        out := padded :: !out
      end)
    left;
  n.P.act_cost <- ctx.st.work - work0;
  if Obs.Span.tracing () then begin
    Obs.Span.set_name
      (if needs_full then "exec.nested-loop" else "exec.hash-join");
    Obs.Span.add_list
      [
        Obs.Attr.string "kind"
          (match info.P.kind with
          | Sql.Inner -> "inner"
          | Sql.Left_outer -> "left-outer");
        Obs.Attr.int "left_rows" (List.length left);
        Obs.Attr.int "right_rows" nright;
        Obs.Attr.int "out_rows" (List.length !out);
        Obs.Attr.int "probed" (ctx.st.probed - probed0);
        Obs.Attr.int "emitted" (ctx.st.emitted - emitted0);
        Obs.Attr.int "work" (ctx.st.work - work0);
      ];
    Obs.Metrics.incr ~by:(ctx.st.probed - probed0) "exec.rows_probed";
    Obs.Metrics.observe "exec.join.out_rows" (float_of_int (List.length !out))
  end;
  List.rev_map (fun t -> (0, t)) !out

and exec_sort ctx (n : P.node) keys (pairs : (int * Tuple.t) list) :
    (int * Tuple.t) list =
  Obs.Span.with_span "exec.sort" (fun () ->
      (* Sort keys are compiled once and evaluated once per row; the
         comparator only compares the precomputed key arrays. *)
      let key_fns =
        Array.of_list (List.map (fun (r, _) -> Expr.compile r) keys)
      in
      let dirs = Array.of_list (List.map snd keys) in
      let nkeys = Array.length key_fns in
      let cmp (ka, _) (kb, _) =
        let rec go i =
          if i >= nkeys then 0
          else
            let c = Value.compare_total ka.(i) kb.(i) in
            let c = if dirs.(i) = Sql.Desc then -c else c in
            if c <> 0 then c else go (i + 1)
        in
        go 0
      in
      let bytes = List.fold_left (fun acc (b, _) -> acc + b) 0 pairs in
      let spill0 = ctx.st.spill_passes and work0 = ctx.st.work in
      charge_sort ctx (List.length pairs) bytes;
      (match n.P.shape with
      | P.Sort s -> s.act_spills <- ctx.st.spill_passes - spill0
      | _ -> ());
      n.P.act_cost <- ctx.st.work - work0;
      if Obs.Span.tracing () then begin
        let spills = ctx.st.spill_passes - spill0 in
        Obs.Span.add_list
          [
            Obs.Attr.int "rows" (List.length pairs);
            Obs.Attr.int "bytes" bytes;
            Obs.Attr.int "spill_passes" spills;
            Obs.Attr.int "work" (ctx.st.work - work0);
          ];
        Obs.Metrics.observe "exec.sort.bytes" (float_of_int bytes);
        if spills > 0 then begin
          Obs.Metrics.incr ~by:spills "exec.spill_passes";
          Obs.Event.warn "exec.spill"
            ~attrs:
              [
                Obs.Attr.int "rows" (List.length pairs);
                Obs.Attr.int "bytes" bytes;
                Obs.Attr.int "passes" spills;
              ]
        end
      end;
      let decorated =
        List.map (fun (b, t) -> (Array.map (fun f -> f t) key_fns, (b, t))) pairs
      in
      List.map snd (List.stable_sort cmp decorated))

let exec_plan ctx (p : P.plan) : string array * Tuple.t list =
  (p.P.cols, List.map snd (exec_pairs ctx p.P.root))

(* ===================================================================== *)
(* Batched (vectorized) execution.  Operators process {!Batch.t} chunks  *)
(* with expressions compiled once per operator; filters refine selection *)
(* vectors in place instead of copying rows.  Charges mirror the tuple   *)
(* path call for call — same counters, same order, same Timeout points — *)
(* so the tuple interpreter above stays the differential oracle: output  *)
(* must be byte-identical and the stats exactly equal at every batch     *)
(* size.                                                                 *)
(* ===================================================================== *)

let default_batch_size = Batch.default_size

(* Batch builder: accumulates operator output into fixed-size chunks. *)
type bb = {
  bb_size : int;
  mutable bb_cur : Batch.t;
  mutable bb_done : Batch.t list;
}

let bb_create size =
  { bb_size = size; bb_cur = Batch.create ~size (); bb_done = [] }

let bb_push bb bytes row =
  if Batch.is_full bb.bb_cur then begin
    bb.bb_done <- bb.bb_cur :: bb.bb_done;
    bb.bb_cur <- Batch.create ~size:bb.bb_size ()
  end;
  Batch.push bb.bb_cur ~bytes row

let bb_finish bb =
  if Batch.length bb.bb_cur = 0 then List.rev bb.bb_done
  else List.rev (bb.bb_cur :: bb.bb_done)

let batch_rows batches =
  List.fold_left (fun acc b -> acc + Batch.length b) 0 batches

let rec exec_batched ctx ~size (n : P.node) : Batch.t list =
  let batches =
    match n.P.shape with
    | P.Scan { table; cols; _ } ->
        Obs.Span.with_span "exec.scan" (fun () ->
            let data = Database.raw_data ctx.db table in
            let w0 = ctx.st.work in
            charge ctx `Scan (Array.length data);
            n.P.act_cost <- ctx.st.work - w0;
            if Obs.Span.tracing () then begin
              Obs.Span.add_list
                [
                  Obs.Attr.string "table" table;
                  Obs.Attr.int "rows" (Array.length data);
                ];
              Obs.Metrics.incr ~by:(Array.length data) "exec.rows_scanned"
            end;
            let arity = Schema.arity (Database.schema ctx.db table) in
            let narrow = Array.length cols <> arity in
            (* Bulk-slice the base array into full batches instead of
               pushing row by row. *)
            let nrows = Array.length data in
            let rec chunks off acc =
              if off >= nrows then List.rev acc
              else
                let len = min size (nrows - off) in
                let rows =
                  if narrow then
                    Array.init len (fun i -> Tuple.project cols data.(off + i))
                  else Array.sub data off len
                in
                chunks (off + len) (Batch.of_rows rows :: acc)
            in
            chunks 0 [])
    | P.Dual ->
        n.P.act_cost <- 0;
        let b = Batch.create ~size () in
        Batch.push b [||];
        [ b ]
    | P.Filter { input; pred; charged; _ } ->
        let batches = exec_batched ctx ~size input in
        let w0 = ctx.st.work in
        let p = Expr.compile_pred pred in
        let survivors =
          List.fold_left (fun acc b -> acc + Batch.keep p b) 0 batches
        in
        if charged then charge ctx `Emit survivors;
        n.P.act_cost <- ctx.st.work - w0;
        batches
    | P.Project { input; items; charged; _ } ->
        let inb = exec_batched ctx ~size input in
        let w0 = ctx.st.work in
        let full = Array.for_all (fun c -> c) charged in
        let fns = Array.map Expr.compile items in
        let bb = bb_create size in
        List.iter
          (fun b ->
            Batch.iter
              (fun row _ ->
                let t = Array.map (fun f -> f row) fns in
                let bytes =
                  if full then Tuple.wire_size t else masked_size charged t
                in
                charge_emit_bytes ctx bytes;
                bb_push bb bytes t)
              b)
          inb;
        n.P.act_cost <- ctx.st.work - w0;
        bb_finish bb
    | P.Join { left; right; info } ->
        let l = exec_batched ctx ~size left in
        let r = exec_batched ctx ~size right in
        Obs.Span.with_span "exec.join" (fun () ->
            exec_join_batched ctx ~size n info l r)
    | P.Union ns -> List.concat_map (fun c -> exec_batched ctx ~size c) ns
    | P.Derived { input; _ } -> exec_batched ctx ~size input
    | P.Sort { input; keys; _ } ->
        let inb = exec_batched ctx ~size input in
        let pairs = List.concat_map Batch.to_pairs inb in
        let sorted = exec_sort ctx n keys pairs in
        let bb = bb_create size in
        List.iter (fun (b, t) -> bb_push bb b t) sorted;
        bb_finish bb
  in
  n.P.act_rows <- batch_rows batches;
  batches

and exec_join_batched ctx ~size (n : P.node) (info : P.join_info) left right :
    Batch.t list =
  let work0 = ctx.st.work in
  let probed0 = ctx.st.probed and emitted0 = ctx.st.emitted in
  let nright = batch_rows right in
  let nleft = batch_rows left in
  let right_arr = Array.make nright [||] in
  let ri = ref 0 in
  List.iter
    (fun b ->
      Batch.iter
        (fun row _ ->
          right_arr.(!ri) <- row;
          incr ri)
        b)
    right;
  let plans =
    List.map
      (fun (lk, rk) ->
        if Array.length lk = 0 then `Full
        else begin
          let tbl = KeyTbl.create (max 16 nright) in
          Array.iteri
            (fun idx row ->
              let k = Tuple.project rk row in
              let prev = try KeyTbl.find tbl k with Not_found -> [] in
              KeyTbl.replace tbl k (idx :: prev))
            right_arr;
          `Hash (lk, tbl)
        end)
      info.P.disjuncts
  in
  let needs_full =
    List.exists (function `Full -> true | `Hash _ -> false) plans
  in
  let null_pad = Tuple.all_null info.P.right_width in
  let on = Expr.compile_pred info.P.on in
  let bb = bb_create size in
  let out_rows = ref 0 in
  let candidates = Hashtbl.create 64 in
  List.iter
    (fun lb ->
      Batch.iter
        (fun lrow _ ->
          Hashtbl.reset candidates;
          if needs_full then
            for i = 0 to nright - 1 do
              Hashtbl.replace candidates i ()
            done
          else
            List.iter
              (function
                | `Full -> ()
                | `Hash (lk, tbl) -> (
                    let k = Tuple.project lk lrow in
                    match KeyTbl.find_opt tbl k with
                    | None -> ()
                    | Some idxs ->
                        List.iter
                          (fun i -> Hashtbl.replace candidates i ())
                          idxs))
              plans;
          let matched = ref false in
          (* Ascending right-row order, as in the tuple path. *)
          let idxs =
            Hashtbl.fold (fun i () acc -> i :: acc) candidates []
            |> List.sort compare
          in
          charge ctx `Probe (List.length idxs);
          List.iter
            (fun i ->
              let joined = Tuple.concat lrow right_arr.(i) in
              if on joined then begin
                matched := true;
                charge_emit_row ctx joined;
                incr out_rows;
                bb_push bb 0 joined
              end)
            idxs;
          if (not !matched) && info.P.kind = Sql.Left_outer then begin
            let padded = Tuple.concat lrow null_pad in
            charge_emit_row ctx padded;
            incr out_rows;
            bb_push bb 0 padded
          end)
        lb)
    left;
  n.P.act_cost <- ctx.st.work - work0;
  if Obs.Span.tracing () then begin
    Obs.Span.set_name
      (if needs_full then "exec.nested-loop" else "exec.hash-join");
    Obs.Span.add_list
      [
        Obs.Attr.string "kind"
          (match info.P.kind with
          | Sql.Inner -> "inner"
          | Sql.Left_outer -> "left-outer");
        Obs.Attr.int "left_rows" nleft;
        Obs.Attr.int "right_rows" nright;
        Obs.Attr.int "out_rows" !out_rows;
        Obs.Attr.int "probed" (ctx.st.probed - probed0);
        Obs.Attr.int "emitted" (ctx.st.emitted - emitted0);
        Obs.Attr.int "work" (ctx.st.work - work0);
      ];
    Obs.Metrics.incr ~by:(ctx.st.probed - probed0) "exec.rows_probed";
    Obs.Metrics.observe "exec.join.out_rows" (float_of_int !out_rows)
  end;
  bb_finish bb

let exec_plan_batched ctx ~size (p : P.plan) : string array * Batch.t list =
  Obs.Span.with_span "executor.batch" (fun () ->
      if Obs.Span.tracing () then
        Obs.Span.add_list [ Obs.Attr.int "batch_size" size ];
      (p.P.cols, exec_batched ctx ~size p.P.root))

(* --- entry points ------------------------------------------------------ *)

let query_span_attrs ctx rows =
  if Obs.Span.tracing () then
    Obs.Span.add_list
      [
        Obs.Attr.int "rows" rows;
        Obs.Attr.int "scanned" ctx.st.scanned;
        Obs.Attr.int "probed" ctx.st.probed;
        Obs.Attr.int "emitted" ctx.st.emitted;
        Obs.Attr.int "sorted" ctx.st.sorted;
        Obs.Attr.int "spill_passes" ctx.st.spill_passes;
        Obs.Attr.int "work" ctx.st.work;
      ]

let run_plan_with_stats ?(budget = 0) ?(profile = default_profile) ?batch_size
    db (p : P.plan) =
  Obs.Span.with_span "exec.query" (fun () ->
      let ctx = { db; st = new_stats (); budget; profile } in
      match batch_size with
      | None ->
          let cols, tuples = exec_plan ctx p in
          query_span_attrs ctx (List.length tuples);
          (Relation.create cols tuples, ctx.st)
      | Some size ->
          let cols, batches = exec_plan_batched ctx ~size p in
          query_span_attrs ctx (batch_rows batches);
          (Relation.create cols (List.concat_map Batch.to_list batches), ctx.st))

let run_plan ?budget ?profile ?batch_size db p =
  fst (run_plan_with_stats ?budget ?profile ?batch_size db p)

let run_plan_cursor_with_stats ?(budget = 0) ?(profile = default_profile)
    ?batch_size db (p : P.plan) =
  Obs.Span.with_span "exec.query" (fun () ->
      let ctx = { db; st = new_stats (); budget; profile } in
      match batch_size with
      | None ->
          let cols, tuples = exec_plan ctx p in
          query_span_attrs ctx (List.length tuples);
          (Cursor.of_list cols tuples, ctx.st)
      | Some size ->
          let cols, batches = exec_plan_batched ctx ~size p in
          query_span_attrs ctx (batch_rows batches);
          (Cursor.of_batches cols batches, ctx.st))

let run_with_stats ?(budget = 0) ?(profile = default_profile) ?batch_size db
    (q : Sql.query) =
  Obs.Span.with_span "exec.query" (fun () ->
      let plan = P.plan_of db q in
      let ctx = { db; st = new_stats (); budget; profile } in
      match batch_size with
      | None ->
          let cols, tuples = exec_plan ctx plan in
          query_span_attrs ctx (List.length tuples);
          (Relation.create cols tuples, ctx.st)
      | Some size ->
          let cols, batches = exec_plan_batched ctx ~size plan in
          query_span_attrs ctx (batch_rows batches);
          (Relation.create cols (List.concat_map Batch.to_list batches), ctx.st))

let run ?budget ?profile ?batch_size db q =
  fst (run_with_stats ?budget ?profile ?batch_size db q)

let run_cursor_with_stats ?(budget = 0) ?(profile = default_profile) ?batch_size
    db (q : Sql.query) =
  Obs.Span.with_span "exec.query" (fun () ->
      let plan = P.plan_of db q in
      let ctx = { db; st = new_stats (); budget; profile } in
      match batch_size with
      | None ->
          let cols, tuples = exec_plan ctx plan in
          query_span_attrs ctx (List.length tuples);
          (Cursor.of_list cols tuples, ctx.st)
      | Some size ->
          let cols, batches = exec_plan_batched ctx ~size plan in
          query_span_attrs ctx (batch_rows batches);
          (Cursor.of_batches cols batches, ctx.st))

let run_cursor ?budget ?profile ?batch_size db q =
  fst (run_cursor_with_stats ?budget ?profile ?batch_size db q)

(* --- legacy entry points (differential tests only) --------------------- *)

let run_legacy_with_stats ?(budget = 0) ?(profile = default_profile) db
    (q : Sql.query) =
  Obs.Span.with_span "exec.query" (fun () ->
      let ctx = { db; st = new_stats (); budget; profile } in
      let rel = eval_query ctx q in
      query_span_attrs ctx (Relation.cardinality rel);
      (rel, ctx.st))

let run_legacy ?budget ?profile db q =
  fst (run_legacy_with_stats ?budget ?profile db q)

let run_legacy_cursor_with_stats ?(budget = 0) ?(profile = default_profile) db
    (q : Sql.query) =
  Obs.Span.with_span "exec.query" (fun () ->
      let ctx = { db; st = new_stats (); budget; profile } in
      let cols, tuples = eval_sorted ctx q in
      query_span_attrs ctx (List.length tuples);
      (Cursor.of_list cols tuples, ctx.st))
