(* The client-transfer model.

   The paper's Total time = server query time + time to bind and transfer
   tuples to SilkRoute over JDBC.  We model the transfer of a result
   relation as a per-tuple binding overhead plus payload bytes over a
   configured bandwidth.  NULL fields are cheap but not free
   (Value.wire_size), which reproduces the paper's observation that wide,
   null-padded unified outer-join tuples are expensive to ship even when
   the query itself is fast. *)

type config = {
  bytes_per_ms : float;     (* simulated link+driver throughput *)
  per_tuple_overhead : float; (* ms of binding overhead per tuple *)
  per_stream_overhead : float; (* ms of setup per tuple stream (statement) *)
}

let default =
  { bytes_per_ms = 2000.0; per_tuple_overhead = 0.02; per_stream_overhead = 5.0 }

let tuple_ms cfg t =
  cfg.per_tuple_overhead +. (float_of_int (Tuple.wire_size t) /. cfg.bytes_per_ms)

let relation_ms cfg r =
  List.fold_left
    (fun acc t -> acc +. tuple_ms cfg t)
    cfg.per_stream_overhead (Relation.rows r)

let relations_ms cfg rs = List.fold_left (fun acc r -> acc +. relation_ms cfg r) 0.0 rs
