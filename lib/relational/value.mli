(** SQL values.

    Values carry SQL's three-valued comparison semantics ({!compare3}
    returns [None] when either operand is NULL) alongside a total order
    ({!compare_total}) used for ORDER BY, in which NULL sorts before every
    non-NULL value.  The merge-based XML tagger depends on both streams
    and comparisons using the same total order. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Date of int  (** days since 1970-01-01 *)

(** Column types, used by schemas and the type checker. *)
type ty = TInt | TFloat | TBool | TString | TDate

val type_of : t -> ty option
(** [type_of v] is the type of [v], or [None] for NULL. *)

val ty_name : ty -> string
(** SQL spelling of a type, e.g. [VARCHAR]. *)

val is_null : t -> bool

val compare_total : t -> t -> int
(** Total order with NULL first; numeric types compare numerically. *)

val compare3 : t -> t -> int option
(** SQL three-valued comparison: [None] (UNKNOWN) if either side is NULL. *)

val equal : t -> t -> bool
(** Equality under {!compare_total} (so [equal Null Null = true]; use
    {!compare3} for SQL predicate semantics). *)

val hash : t -> int
(** Hash consistent with {!equal}, for hash joins and grouping. *)

val to_string : t -> string
(** Human-readable rendering (no quoting). *)

val to_sql : t -> string
(** SQL literal syntax, with string quoting/escaping. *)

val wire_size : t -> int
(** Bytes this value occupies in the client-transfer cost model. *)

val pp : Format.formatter -> t -> unit
