(** CSV import/export against the catalog.

    RFC-4180-ish: comma separators, double-quote quoting with [""]
    escapes, LF or CRLF terminators.  Loading is typed by the target
    table's schema; an *unquoted* empty field in a nullable column loads
    as NULL (a quoted [""] is the empty string). *)

exception Csv_error of string * int
(** Message and 1-based row number.  The message carries full
    diagnostics — source file (when given), row, column and offending
    value — so it can be surfaced verbatim. *)

val parse_rows : string -> string list list
(** Raw records, quoting resolved. *)

val load : ?source:string -> ?header:bool -> Database.t -> string -> string -> int
(** [load db table text] inserts the records of [text] into [table] and
    returns the row count.  With [header] (default), the first record
    names the columns and may reorder or omit nullable ones.  [source]
    (usually the file name) prefixes every diagnostic.  Raises
    {!Csv_error} on malformed input, {!Database.Constraint_violation} on
    type/NULL violations. *)

val export : Database.t -> string -> string
(** Header + one record per stored row; round-trips through {!load}
    (floats use lossless hex notation). *)
