(* The catalog: stored tables, their constraints, and declared inclusion
   dependencies.  This is the "target RDBMS" state the middleware queries
   and the "source description" it plans against. *)

type stored = { schema : Schema.table; mutable data : Tuple.t array }

type t = {
  tables : (string, stored) Hashtbl.t;
  mutable inclusions : Schema.inclusion list;
}

exception Constraint_violation of string

let create () = { tables = Hashtbl.create 16; inclusions = [] }

let add_table db (schema : Schema.table) =
  if Hashtbl.mem db.tables schema.name then
    invalid_arg (Printf.sprintf "Database.add_table: %s already exists" schema.name);
  Hashtbl.replace db.tables schema.name { schema; data = [||] }

let declare_inclusion db inc = db.inclusions <- inc :: db.inclusions
let inclusions db = db.inclusions

let find db name = Hashtbl.find_opt db.tables name

let find_exn db name =
  match find db name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Database: no table %s" name)

let schema db name = (find_exn db name).schema
let mem db name = Hashtbl.mem db.tables name

let table_names db =
  Hashtbl.fold (fun k _ acc -> k :: acc) db.tables [] |> List.sort compare

let typecheck_row (schema : Schema.table) (row : Tuple.t) =
  let cols = Array.of_list schema.columns in
  if Tuple.arity row <> Array.length cols then
    raise
      (Constraint_violation
         (Printf.sprintf "%s: arity %d, expected %d" schema.name
            (Tuple.arity row) (Array.length cols)));
  Array.iteri
    (fun i v ->
      let c = cols.(i) in
      match Value.type_of v with
      | None ->
          if not c.Schema.nullable then
            raise
              (Constraint_violation
                 (Printf.sprintf "%s.%s: NULL in NOT NULL column" schema.name
                    c.Schema.col_name))
      | Some ty ->
          if ty <> c.Schema.col_ty then
            raise
              (Constraint_violation
                 (Printf.sprintf "%s.%s: %s value in %s column" schema.name
                    c.Schema.col_name (Value.ty_name ty)
                    (Value.ty_name c.Schema.col_ty))))
    row

let insert db name rows =
  let s = find_exn db name in
  List.iter (typecheck_row s.schema) rows;
  s.data <- Array.append s.data (Array.of_list rows)

let load db name rows =
  let s = find_exn db name in
  List.iter (typecheck_row s.schema) rows;
  s.data <- Array.of_list rows

let row_count db name = Array.length (find_exn db name).data
let raw_data db name = (find_exn db name).data

let to_relation db name =
  let s = find_exn db name in
  Relation.create
    (Array.of_list (Schema.column_names s.schema))
    (Array.to_list s.data)

let positions_of (schema : Schema.table) cols =
  Array.of_list
    (List.map
       (fun c ->
         match Schema.column_index schema c with
         | Some i -> i
         | None ->
             invalid_arg
               (Printf.sprintf "Database: %s has no column %s" schema.name c))
       cols)

(* Integrity checking: used by tests and by the TPC-H generator's
   self-check.  Returns the list of violations instead of raising so the
   tests can assert on specific failures. *)
let check_keys db name =
  let s = find_exn db name in
  if s.schema.key = [] then []
  else
    let pos = positions_of s.schema s.schema.key in
    let seen = Hashtbl.create (Array.length s.data) in
    Array.fold_left
      (fun acc row ->
        let k = Tuple.project pos row in
        let kk = Array.to_list (Array.map Value.to_string k) in
        if Hashtbl.mem seen kk then
          Printf.sprintf "%s: duplicate key (%s)" name (String.concat "," kk)
          :: acc
        else (
          Hashtbl.add seen kk ();
          acc))
      [] s.data

let check_foreign_keys db name =
  let s = find_exn db name in
  List.concat_map
    (fun (fk : Schema.foreign_key) ->
      match find db fk.ref_table with
      | None -> [ Printf.sprintf "%s: FK references missing table %s" name fk.ref_table ]
      | Some target ->
          let src_pos = positions_of s.schema fk.fk_cols in
          let dst_pos = positions_of target.schema fk.ref_cols in
          let keys = Hashtbl.create (Array.length target.data) in
          Array.iter
            (fun row ->
              Hashtbl.replace keys
                (Array.to_list (Tuple.project dst_pos row))
                ())
            target.data;
          Array.fold_left
            (fun acc row ->
              let k = Tuple.project src_pos row in
              if Array.exists Value.is_null k then acc
              else if Hashtbl.mem keys (Array.to_list k) then acc
              else
                Printf.sprintf "%s: dangling FK (%s) -> %s" name
                  (String.concat ","
                     (Array.to_list (Array.map Value.to_string k)))
                  fk.ref_table
                :: acc)
            [] s.data)
    s.schema.foreign_keys

let check_inclusion db (inc : Schema.inclusion) =
  match (find db inc.inc_table, find db inc.inc_ref_table) with
  | Some src, Some dst ->
      let src_pos = positions_of src.schema inc.inc_cols in
      let dst_pos = positions_of dst.schema inc.inc_ref_cols in
      let keys = Hashtbl.create (Array.length dst.data) in
      Array.iter
        (fun row -> Hashtbl.replace keys (Array.to_list (Tuple.project dst_pos row)) ())
        dst.data;
      Array.for_all
        (fun row ->
          let k = Tuple.project src_pos row in
          Array.exists Value.is_null k || Hashtbl.mem keys (Array.to_list k))
        src.data
  | _ -> false

let check_integrity db =
  List.concat_map
    (fun name -> check_keys db name @ check_foreign_keys db name)
    (table_names db)

let total_rows db =
  List.fold_left (fun acc n -> acc + row_count db n) 0 (table_names db)

let total_bytes db =
  List.fold_left
    (fun acc n ->
      Array.fold_left (fun a r -> a + Tuple.wire_size r) acc (raw_data db n))
    0 (table_names db)
