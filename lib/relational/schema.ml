(* Relation schemas and integrity constraints.  The constraint metadata is
   the paper's "source description": it drives view-tree edge labeling
   (functional and inclusion dependencies) and view-tree reduction. *)

type column = { col_name : string; col_ty : Value.ty; nullable : bool }

type foreign_key = {
  fk_cols : string list;
  ref_table : string;
  ref_cols : string list;
}

(* A declared inclusion dependency table[cols] <= ref-side.  Foreign keys
   give the child-to-parent direction for free; [total] records the
   parent-to-child direction ("every supplier has at least one part"),
   which the labeler needs for the C2 test of Sec. 3.5. *)
type inclusion = {
  inc_table : string;
  inc_cols : string list;
  inc_ref_table : string;
  inc_ref_cols : string list;
}

type table = {
  name : string;
  columns : column list;
  key : string list;
  foreign_keys : foreign_key list;
}

let column ?(nullable = false) col_name col_ty = { col_name; col_ty; nullable }

let table ?(foreign_keys = []) name ~key columns =
  List.iter
    (fun k ->
      if not (List.exists (fun c -> c.col_name = k) columns) then
        invalid_arg
          (Printf.sprintf "Schema.table %s: key column %s not declared" name k))
    key;
  { name; columns; key; foreign_keys }

let find_column t name =
  List.find_opt (fun c -> c.col_name = name) t.columns

let column_index t name =
  let rec go i = function
    | [] -> None
    | c :: _ when c.col_name = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let column_names t = List.map (fun c -> c.col_name) t.columns
let arity t = List.length t.columns

let has_column t name = find_column t name <> None

let pp_table fmt t =
  let pp_col fmt c =
    Format.fprintf fmt "%s%s %s%s"
      (if List.mem c.col_name t.key then "*" else "")
      c.col_name (Value.ty_name c.col_ty)
      (if c.nullable then "" else " NOT NULL")
  in
  Format.fprintf fmt "@[<hov 2>%s(%a)@]" t.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
       pp_col)
    t.columns
