(** Typed logical relational algebra.

    The lowering layer turns a {!Sql.query} into this IR exactly once,
    resolving every column reference to a tuple position (so ambiguity
    errors surface at plan time, not per row) and fixing the greedy
    connected-join order the interpreter used to pick on the fly.  The
    {!rewrite} pass then performs predicate pushdown, constant
    folding/propagation and projection pruning under one invariant: the
    rewritten plan must produce byte-identical output to the naive
    interpretation while never charging more work units. *)

exception Ambiguous_column of string
(** Raised during lowering when an unqualified column name matches more
    than one position of the scope it is resolved against. *)

type header = (string * string) array
(** [(alias, column)] per tuple position. *)

type prov = { p_alias : string; p_col : string }
(** Where a resolved column reference came from, kept for printing. *)

type expr =
  | Col of int * prov
  | Lit of Value.t
  | Cmp of Expr.cmp * expr * expr
  | Arith of Expr.arith * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr

type t =
  | Scan of { table : string; alias : string; cols : (int * string) array }
      (** [cols] maps output positions to stored-column indices; pruning
          narrows it.  The scan work charge is per stored row and does
          not depend on the projected width. *)
  | Dual  (** zero-column, one-row relation (empty FROM list) *)
  | Filter of { input : t; pred : expr; pushed : bool; charged : bool }
      (** [pushed]: the predicate runs earlier than a naive
          filter-after-product evaluation would place it.  [charged]:
          survivors pay the per-row emit charge (false only for
          predicates relocated out of join ON conditions, which the
          interpreter evaluated for free during probing). *)
  | Project of { input : t; items : (expr * string) array }
  | Join of {
      left : t;
      kind : Sql.join_kind;
      right : t;
      on : expr;
      from_where : bool;
          (** the ON condition was assembled from WHERE conjuncts by the
              greedy comma-FROM ordering, i.e. it is a pushed-down
              predicate relative to filter-after-cross-product *)
    }
  | Union_all of t * t
  | Derived of { input : t; alias : string }  (** sub-query boundary *)
  | Sort of { input : t; keys : (expr * Sql.dir) list }

(** {1 Inspection} *)

val header : t -> header
val width : t -> int

val is_lit : expr -> bool
val expr_positions : expr -> int list
val conjuncts : expr -> expr list
val disjuncts : expr -> expr list
val to_resolved : expr -> Expr.resolved
val expr_to_string : expr -> string

(** {1 Lowering} *)

val lower : Database.t -> Sql.query -> t
(** Mirrors the seed interpreter's evaluation strategy structurally:
    greedy connected ordering of comma FROM lists, eager application of
    WHERE conjuncts as soon as their columns are in scope, applicable
    cross-table conjuncts becoming join ON conditions.  Raises
    {!Ambiguous_column} / {!Expr.Unresolved_column} on bad references
    and [Invalid_argument] on UNION ALL arity mismatches. *)

(** {1 Rewriting} *)

val rewrite : t -> t
(** Predicate pushdown (below charging projections only), constant
    propagation/folding (never inside join ON conditions, which would
    erase hash keys), and projection pruning with position remapping.
    Output rows, their order, and their values are preserved exactly;
    work charges can only decrease. *)

val to_string : t -> string
(** Indented logical tree, one operator per line, for [--explain]. *)
