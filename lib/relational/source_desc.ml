(* Source-description files.

   The paper: "the database constraints are specified in a source
   description file" (Sec. 3.5).  This module gives that file a concrete
   syntax and loader: tables with typed columns, keys, foreign keys, and
   declared inclusion (total-participation) dependencies.

     table Supplier {
       suppkey   int     key
       name      string
       addr      string  null
       nationkey int     -> Nation.nationkey
     }
     inclusion Orders(orderkey) <= LineItem(orderkey)

   Column flags: [key] (part of the primary key), [null] (nullable),
   [-> Table.column] (single-column foreign key).  Composite foreign
   keys use a table-level line: [fk (a, b) -> Table(c, d)].
   Comments start with '#'. *)

exception Syntax_error of string * int (* message, line *)

let fail line fmt =
  Format.kasprintf (fun m -> raise (Syntax_error (m, line))) fmt

type t = {
  tables : Schema.table list;
  inclusions : Schema.inclusion list;
}

(* --- tokenizing lines --------------------------------------------------- *)

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let ty_of_string line = function
  | "int" -> Value.TInt
  | "float" -> Value.TFloat
  | "string" -> Value.TString
  | "bool" -> Value.TBool
  | "date" -> Value.TDate
  | s -> fail line "unknown type %s" s

(* "Nation.nationkey" -> ("Nation", "nationkey") *)
let split_ref line s =
  match String.index_opt s '.' with
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> fail line "expected Table.column, got %s" s

(* "(a,b)" or "(a, b)" -> ["a"; "b"] *)
let split_cols line s =
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '(' || s.[String.length s - 1] <> ')' then
    fail line "expected (col, ...), got %s" s
  else
    String.sub s 1 (String.length s - 2)
    |> String.split_on_char ','
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")

type pstate = {
  mutable tables_rev : Schema.table list;
  mutable inclusions_rev : Schema.inclusion list;
  (* current table under construction *)
  mutable cur_name : string option;
  mutable cols_rev : Schema.column list;
  mutable key_rev : string list;
  mutable fks_rev : Schema.foreign_key list;
}

let parse (text : string) : t =
  let st =
    { tables_rev = []; inclusions_rev = []; cur_name = None; cols_rev = [];
      key_rev = []; fks_rev = [] }
  in
  let close_table line =
    match st.cur_name with
    | None -> fail line "'}' without an open table"
    | Some name ->
        let table =
          Schema.table ~foreign_keys:(List.rev st.fks_rev) name
            ~key:(List.rev st.key_rev)
            (List.rev st.cols_rev)
        in
        st.tables_rev <- table :: st.tables_rev;
        st.cur_name <- None;
        st.cols_rev <- [];
        st.key_rev <- [];
        st.fks_rev <- []
  in
  let parse_column line ws =
    match ws with
    | name :: ty :: flags ->
        let ty = ty_of_string line ty in
        let nullable = ref false in
        let rec go = function
          | [] -> ()
          | "key" :: rest ->
              st.key_rev <- name :: st.key_rev;
              go rest
          | "null" :: rest ->
              nullable := true;
              go rest
          | "->" :: target :: rest ->
              let rt, rc = split_ref line target in
              st.fks_rev <-
                { Schema.fk_cols = [ name ]; ref_table = rt; ref_cols = [ rc ] }
                :: st.fks_rev;
              go rest
          | w :: _ -> fail line "unexpected column flag %s" w
        in
        go flags;
        st.cols_rev <- Schema.column ~nullable:!nullable name ty :: st.cols_rev
    | _ -> fail line "expected: <column> <type> [key] [null] [-> T.c]"
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let s = String.trim (strip_comment raw) in
      if s = "" then ()
      else
        match (st.cur_name, words s) with
        | None, [ "table"; name; "{" ] -> st.cur_name <- Some name
        | None, "inclusion" :: rest -> (
            (* inclusion T(a,b) <= U(c,d) *)
            match String.concat " " rest |> String.split_on_char '<' with
            | [ left; right ] when String.length right > 0 && right.[0] = '=' ->
                let parse_side line side =
                  let side = String.trim side in
                  match String.index_opt side '(' with
                  | Some i ->
                      let name = String.trim (String.sub side 0 i) in
                      let cols =
                        split_cols line
                          (String.sub side i (String.length side - i))
                      in
                      (name, cols)
                  | None -> fail line "expected T(cols) in inclusion"
                in
                let lt, lc = parse_side line left in
                let rt, rc =
                  parse_side line (String.sub right 1 (String.length right - 1))
                in
                if List.length lc <> List.length rc then
                  fail line "inclusion arity mismatch";
                st.inclusions_rev <-
                  { Schema.inc_table = lt; inc_cols = lc; inc_ref_table = rt;
                    inc_ref_cols = rc }
                  :: st.inclusions_rev
            | _ -> fail line "expected: inclusion T(cols) <= U(cols)")
        | None, _ -> fail line "expected 'table <name> {' or 'inclusion ...'"
        | Some _, [ "}" ] -> close_table line
        | Some _, "fk" :: rest -> (
            (* fk (a, b) -> Table(c, d) *)
            match String.concat " " rest |> String.split_on_char '>' with
            | [ left; right ]
              when String.length left > 0 && left.[String.length left - 1] = '-' ->
                let cols =
                  split_cols line (String.sub left 0 (String.length left - 1))
                in
                let right = String.trim right in
                let i =
                  match String.index_opt right '(' with
                  | Some i -> i
                  | None -> fail line "expected Table(cols) after ->"
                in
                let rt = String.trim (String.sub right 0 i) in
                let rc =
                  split_cols line (String.sub right i (String.length right - i))
                in
                if List.length cols <> List.length rc then
                  fail line "fk arity mismatch";
                st.fks_rev <-
                  { Schema.fk_cols = cols; ref_table = rt; ref_cols = rc }
                  :: st.fks_rev
            | _ -> fail line "expected: fk (cols) -> Table(cols)")
        | Some _, ws -> parse_column line ws)
    lines;
  (match st.cur_name with
  | Some name -> fail (List.length lines) "table %s not closed" name
  | None -> ());
  { tables = List.rev st.tables_rev; inclusions = List.rev st.inclusions_rev }

(* Instantiate an empty database from a description. *)
let to_database (d : t) : Database.t =
  let db = Database.create () in
  List.iter (Database.add_table db) d.tables;
  List.iter (Database.declare_inclusion db) d.inclusions;
  db

let load_database text = to_database (parse text)

(* Render a description (round-trips through [parse]). *)
let to_string (d : t) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun (t : Schema.table) ->
      Buffer.add_string buf ("table " ^ t.name ^ " {\n");
      let single_fks, multi_fks =
        List.partition
          (fun (fk : Schema.foreign_key) -> List.length fk.fk_cols = 1)
          t.foreign_keys
      in
      List.iter
        (fun (c : Schema.column) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s %s%s%s%s\n" c.col_name
               (match c.col_ty with
               | Value.TInt -> "int" | Value.TFloat -> "float"
               | Value.TString -> "string" | Value.TBool -> "bool"
               | Value.TDate -> "date")
               (if List.mem c.col_name t.key then " key" else "")
               (if c.nullable then " null" else "")
               (match
                  List.find_opt
                    (fun (fk : Schema.foreign_key) -> fk.fk_cols = [ c.col_name ])
                    single_fks
                with
               | Some fk ->
                   Printf.sprintf " -> %s.%s" fk.ref_table (List.hd fk.ref_cols)
               | None -> "")))
        t.columns;
      List.iter
        (fun (fk : Schema.foreign_key) ->
          Buffer.add_string buf
            (Printf.sprintf "  fk (%s) -> %s(%s)\n"
               (String.concat ", " fk.fk_cols)
               fk.ref_table
               (String.concat ", " fk.ref_cols)))
        multi_fks;
      Buffer.add_string buf "}\n")
    d.tables;
  List.iter
    (fun (inc : Schema.inclusion) ->
      Buffer.add_string buf
        (Printf.sprintf "inclusion %s(%s) <= %s(%s)\n" inc.inc_table
           (String.concat ", " inc.inc_cols)
           inc.inc_ref_table
           (String.concat ", " inc.inc_ref_cols)))
    d.inclusions;
  Buffer.contents buf

let of_database (db : Database.t) : t =
  {
    tables = List.map (Database.schema db) (Database.table_names db);
    inclusions = Database.inclusions db;
  }
