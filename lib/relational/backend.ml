(* The simulated remote-RDBMS connection.

   The engine itself is in-process and infallible; everything the paper's
   middleware had to survive — rejected submissions, connections dropped
   mid-result-set, sub-queries killed by the 5-minute timeout — is
   modeled here, between the middleware and Executor.  Faults are drawn
   from a splitmix64 stream seeded by the config, so a run is
   reproducible to the bit; backoff and breaker cooldowns sleep on a
   virtual clock by default, so resilience experiments cost no real
   time. *)

type fault_config = {
  fault_rate : float;
  fault_seed : int;
  fatal_weight : float;
  midstream_weight : float;
  row_latency_ms : float;
}

let no_faults =
  {
    fault_rate = 0.0;
    fault_seed = 0;
    fatal_weight = 0.0;
    midstream_weight = 0.3;
    row_latency_ms = 0.0;
  }

let faults ?(seed = 0) ?(fatal_weight = 0.0) ?(midstream_weight = 0.3)
    ?(row_latency_ms = 0.0) fault_rate =
  if fault_rate < 0.0 || fault_rate > 1.0 then
    invalid_arg "Backend.faults: fault rate must be in [0, 1]";
  { fault_rate; fault_seed = seed; fatal_weight; midstream_weight; row_latency_ms }

type retry_policy = {
  max_retries : int;
  base_backoff_ms : float;
  backoff_factor : float;
  max_backoff_ms : float;
  jitter : float;
}

let default_retry =
  {
    max_retries = 3;
    base_backoff_ms = 10.0;
    backoff_factor = 2.0;
    max_backoff_ms = 5000.0;
    jitter = 0.25;
  }

type breaker_config = { failure_threshold : int; cooldown_ms : float }

let default_breaker = { failure_threshold = 8; cooldown_ms = 1000.0 }

type clock = { now_ms : unit -> float; sleep_ms : float -> unit }

let virtual_clock () =
  let now = ref 0.0 in
  { now_ms = (fun () -> !now); sleep_ms = (fun ms -> now := !now +. ms) }

type error_kind = Transient | Fatal | Timeout

let kind_name = function
  | Transient -> "transient"
  | Fatal -> "fatal"
  | Timeout -> "timeout"

exception
  Backend_error of {
    kind : error_kind;
    attempt : int;
    rows_delivered : int;
    message : string;
  }

exception Circuit_open of { retry_at_ms : float }

let () =
  Printexc.register_printer (function
    | Backend_error { kind; attempt; rows_delivered; message } ->
        Some
          (Printf.sprintf
             "Backend_error(%s, attempt %d, %d rows delivered: %s)"
             (kind_name kind) attempt rows_delivered message)
    | Circuit_open { retry_at_ms } ->
        Some (Printf.sprintf "Circuit_open(retry at %.1fms)" retry_at_ms)
    | _ -> None)

type stats = {
  mutable submits : int;
  mutable attempts : int;
  mutable retries : int;
  mutable faults_transient : int;
  mutable faults_midstream : int;
  mutable faults_fatal : int;
  mutable timeouts : int;
  mutable backoff_ms : float;
  mutable injected_latency_ms : float;
  mutable wasted_work : int;
  mutable breaker_opens : int;
  mutable breaker_rejections : int;
}

let new_stats () =
  {
    submits = 0;
    attempts = 0;
    retries = 0;
    faults_transient = 0;
    faults_midstream = 0;
    faults_fatal = 0;
    timeouts = 0;
    backoff_ms = 0.0;
    injected_latency_ms = 0.0;
    wasted_work = 0;
    breaker_opens = 0;
    breaker_rejections = 0;
  }

let total_faults s = s.faults_transient + s.faults_midstream + s.faults_fatal

(* --- deterministic PRNG (splitmix64) ------------------------------------ *)

type prng = { mutable state : int64 }

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 p =
  p.state <- Int64.add p.state 0x9e3779b97f4a7c15L;
  mix64 p.state

(* uniform in [0, 1), 53 significant bits *)
let next_float p =
  Int64.to_float (Int64.shift_right_logical (next_int64 p) 11)
  /. 9007199254740992.0

(* --- breaker ------------------------------------------------------------ *)

type breaker_state = Closed of int (* consecutive failures *) | Open of float (* half-opens at *) | Half_open

type t = {
  database : Database.t;
  fault_cfg : fault_config;
  retry : retry_policy;
  breaker : breaker_config;
  clk : clock;
  budget : int;
  profile : Executor.profile;
  batch_size : int option;
      (* when set, submissions run the vectorized batch path *)
  prng : prng;
  st : stats;
  mutable breaker_state : breaker_state;
}

let create ?(faults = no_faults) ?(retry = default_retry)
    ?(breaker = default_breaker) ?clock ?(budget = 0)
    ?(profile = Executor.default_profile) ?batch_size database =
  let clk = match clock with Some c -> c | None -> virtual_clock () in
  {
    database;
    fault_cfg = faults;
    retry;
    breaker;
    clk;
    budget;
    profile;
    batch_size;
    prng = { state = Int64.of_int faults.fault_seed };
    st = new_stats ();
    breaker_state = Closed 0;
  }

let db t = t.database
let clock t = t.clk
let stats t = { t.st with submits = t.st.submits }

(* An independent connection derived from [t] for one parallel stream:
   same database and configs, fresh stats, a closed breaker, a fresh
   virtual clock, and a PRNG seeded by mixing the parent's fault seed
   with [salt].  Forked backends make fault draws a function of
   (seed, salt, submission sequence within the stream) — independent of
   how streams interleave across domains — which is what makes parallel
   resilient execution deterministic. *)
let fork t ~salt =
  {
    t with
    clk = virtual_clock ();
    prng =
      {
        state =
          mix64
            (Int64.add
               (Int64.of_int t.fault_cfg.fault_seed)
               (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (salt + 1))));
      };
    st = new_stats ();
    breaker_state = Closed 0;
  }

let with_batch_size t batch_size = { t with batch_size }

let merge_stats sts =
  let m = new_stats () in
  List.iter
    (fun s ->
      m.submits <- m.submits + s.submits;
      m.attempts <- m.attempts + s.attempts;
      m.retries <- m.retries + s.retries;
      m.faults_transient <- m.faults_transient + s.faults_transient;
      m.faults_midstream <- m.faults_midstream + s.faults_midstream;
      m.faults_fatal <- m.faults_fatal + s.faults_fatal;
      m.timeouts <- m.timeouts + s.timeouts;
      m.backoff_ms <- m.backoff_ms +. s.backoff_ms;
      m.injected_latency_ms <- m.injected_latency_ms +. s.injected_latency_ms;
      m.wasted_work <- m.wasted_work + s.wasted_work;
      m.breaker_opens <- m.breaker_opens + s.breaker_opens;
      m.breaker_rejections <- m.breaker_rejections + s.breaker_rejections)
    sts;
  m

let note_failure t =
  let failures =
    match t.breaker_state with
    | Closed n -> n + 1
    | Half_open -> t.breaker.failure_threshold (* re-open immediately *)
    | Open _ -> t.breaker.failure_threshold
  in
  if failures >= t.breaker.failure_threshold then begin
    (match t.breaker_state with
    | Open _ -> ()
    | Closed _ | Half_open ->
        t.st.breaker_opens <- t.st.breaker_opens + 1;
        Obs.Metrics.incr "backend.breaker_opens";
        if Obs.Span.tracing () then begin
          Obs.Event.error "backend.breaker_open"
            ~attrs:
              [
                Obs.Attr.int "failures" failures;
                Obs.Attr.float "cooldown_ms" t.breaker.cooldown_ms;
              ];
          Obs.Event.dump ~reason:"breaker-open"
        end);
    t.breaker_state <- Open (t.clk.now_ms () +. t.breaker.cooldown_ms)
  end
  else t.breaker_state <- Closed failures

let note_success t = t.breaker_state <- Closed 0

let check_breaker t =
  match t.breaker_state with
  | Closed _ | Half_open -> ()
  | Open until ->
      if t.clk.now_ms () >= until then t.breaker_state <- Half_open
      else begin
        t.st.breaker_rejections <- t.st.breaker_rejections + 1;
        if Obs.Span.tracing () then
          Obs.Event.debug "backend.circuit_rejected"
            ~attrs:[ Obs.Attr.float "retry_at_ms" until ];
        raise (Circuit_open { retry_at_ms = until })
      end

(* --- fault injection ---------------------------------------------------- *)

let record_fault () = Obs.Metrics.incr "backend.faults"

(* Wrap the engine's cursor with the per-row fault surface: injected
   latency per delivered row, and (when scheduled) a connection drop
   after [trip_after] rows.  A drop scheduled beyond the end of the
   stream never fires — the result finished before the (virtual) reset
   arrived. *)
let wrap_cursor t ~attempt ~trip_after cur =
  let delivered = ref 0 in
  let pull () =
    match Cursor.next cur with
    | None ->
        note_success t;
        None
    | Some row ->
        (match trip_after with
        | Some n when !delivered >= n ->
            t.st.faults_midstream <- t.st.faults_midstream + 1;
            record_fault ();
            if Obs.Span.tracing () then
              Obs.Event.warn "backend.fault"
                ~attrs:
                  [
                    Obs.Attr.string "kind" "midstream";
                    Obs.Attr.int "attempt" attempt;
                    Obs.Attr.int "rows_delivered" !delivered;
                  ];
            note_failure t;
            raise
              (Backend_error
                 {
                   kind = Transient;
                   attempt;
                   rows_delivered = !delivered;
                   message =
                     Printf.sprintf
                       "injected connection drop after %d rows" !delivered;
                 })
        | _ -> ());
        incr delivered;
        if t.fault_cfg.row_latency_ms > 0.0 then begin
          t.clk.sleep_ms t.fault_cfg.row_latency_ms;
          t.st.injected_latency_ms <-
            t.st.injected_latency_ms +. t.fault_cfg.row_latency_ms
        end;
        Some row
  in
  Cursor.create (Cursor.cols cur) pull

(* One physical attempt: breaker gate, fault draw, engine run. *)
let submit_attempt t ~attempt (q : Sql.query) : Cursor.t * Executor.stats =
  check_breaker t;
  t.st.attempts <- t.st.attempts + 1;
  (* Fault draws are consumed in a fixed order so the stream replays
     identically for a fixed seed and submission sequence. *)
  let trip_after =
    if t.fault_cfg.fault_rate > 0.0 && next_float t.prng < t.fault_cfg.fault_rate
    then
      if next_float t.prng < t.fault_cfg.fatal_weight then begin
        t.st.faults_fatal <- t.st.faults_fatal + 1;
        record_fault ();
        if Obs.Span.tracing () then begin
          Obs.Event.error "backend.fatal"
            ~attrs:
              [
                Obs.Attr.string "kind" "fatal";
                Obs.Attr.int "attempt" attempt;
              ];
          Obs.Event.dump ~reason:"backend-fatal"
        end;
        note_failure t;
        raise
          (Backend_error
             {
               kind = Fatal;
               attempt;
               rows_delivered = 0;
               message = "injected fatal backend failure at submit";
             })
      end
      else if next_float t.prng < t.fault_cfg.midstream_weight then
        (* the connection will drop after 1..32 delivered rows *)
        Some (1 + Int64.to_int (Int64.logand (next_int64 t.prng) 31L))
      else begin
        t.st.faults_transient <- t.st.faults_transient + 1;
        record_fault ();
        if Obs.Span.tracing () then
          Obs.Event.warn "backend.fault"
            ~attrs:
              [
                Obs.Attr.string "kind" "transient";
                Obs.Attr.int "attempt" attempt;
              ];
        note_failure t;
        raise
          (Backend_error
             {
               kind = Transient;
               attempt;
               rows_delivered = 0;
               message = "injected transient submit failure";
             })
      end
    else None
  in
  match
    Executor.run_cursor_with_stats ~budget:t.budget ~profile:t.profile
      ?batch_size:t.batch_size t.database q
  with
  | cur, est -> (wrap_cursor t ~attempt ~trip_after cur, est)
  | exception Executor.Timeout ->
      t.st.timeouts <- t.st.timeouts + 1;
      (* the engine gave up right at the budget: that much work is sunk *)
      t.st.wasted_work <- t.st.wasted_work + t.budget;
      Obs.Metrics.incr "backend.timeouts";
      if Obs.Span.tracing () then
        Obs.Event.error "backend.timeout"
          ~attrs:
            [
              Obs.Attr.int "attempt" attempt;
              Obs.Attr.int "budget" t.budget;
            ];
      note_failure t;
      raise
        (Backend_error
           {
             kind = Timeout;
             attempt;
             rows_delivered = 0;
             message =
               Printf.sprintf "work budget (%d units) exhausted" t.budget;
           })

let submit_with_stats t q = submit_attempt t ~attempt:1 q
let submit t q = fst (submit_with_stats t q)

(* --- resilient submission ----------------------------------------------- *)

let backoff_ms t ~attempt =
  let base =
    t.retry.base_backoff_ms
    *. (t.retry.backoff_factor ** float_of_int (attempt - 1))
  in
  let capped = Float.min t.retry.max_backoff_ms base in
  (* uniform jitter: capped * (1 ± jitter) *)
  let u = next_float t.prng in
  capped *. (1.0 -. t.retry.jitter +. (2.0 *. t.retry.jitter *. u))

let execute ?(label = "") ?(on_attempt = fun (_ : int) -> ())
    ?(on_row = fun (_ : Tuple.t) -> ()) t (q : Sql.query) :
    Cursor.t * Executor.stats =
  t.st.submits <- t.st.submits + 1;
  let rec attempt k =
    on_attempt k;
    let result =
      Obs.Span.with_span "backend.submit" (fun () ->
          if Obs.Span.tracing () then
            Obs.Span.add_list
              [ Obs.Attr.string "label" label; Obs.Attr.int "attempt" k ];
          match submit_attempt t ~attempt:k q with
          | cur, est -> (
              (* Drain now, inside the retry scope: a mid-stream drop
                 surfaces here, discards the partial spool, and is
                 retried like any other transient failure. *)
              try
                let spooled = Cursor.spool ~on_row cur in
                if Obs.Span.tracing () then
                  Obs.Span.add "outcome" (Obs.Attr.String "ok");
                Ok (spooled, est)
              with Backend_error { kind; _ } as exn ->
                (* the engine did run to completion; its work is sunk *)
                t.st.wasted_work <- t.st.wasted_work + est.Executor.work;
                if Obs.Span.tracing () then
                  Obs.Span.add "outcome" (Obs.Attr.String (kind_name kind));
                Error exn)
          | exception (Backend_error { kind; _ } as exn) ->
              if Obs.Span.tracing () then
                Obs.Span.add "outcome" (Obs.Attr.String (kind_name kind));
              Error exn
          | exception (Circuit_open _ as exn) ->
              if Obs.Span.tracing () then
                Obs.Span.add "outcome" (Obs.Attr.String "circuit-open");
              Error exn)
    in
    match result with
    | Ok r -> r
    | Error (Backend_error { kind = Transient; _ } as exn) ->
        if k > t.retry.max_retries then raise exn
        else begin
          let wait = backoff_ms t ~attempt:k in
          Obs.Span.with_span "backend.retry" (fun () ->
              if Obs.Span.tracing () then begin
                Obs.Span.add_list
                  [
                    Obs.Attr.string "label" label;
                    Obs.Attr.int "attempt" k;
                    Obs.Attr.float "backoff_ms" wait;
                  ];
                Obs.Event.warn "backend.retry"
                  ~attrs:
                    [
                      Obs.Attr.string "label" label;
                      Obs.Attr.int "attempt" k;
                      Obs.Attr.float "backoff_ms" wait;
                    ]
              end;
              t.clk.sleep_ms wait);
          t.st.retries <- t.st.retries + 1;
          t.st.backoff_ms <- t.st.backoff_ms +. wait;
          Obs.Metrics.incr "backend.retries";
          attempt (k + 1)
        end
    | Error (Circuit_open { retry_at_ms }) ->
        (* Wait out the breaker on the clock; this consumes no retry
           budget — the attempt never reached the backend. *)
        let wait = Float.max 0.1 (retry_at_ms -. t.clk.now_ms ()) in
        t.clk.sleep_ms wait;
        t.st.backoff_ms <- t.st.backoff_ms +. wait;
        attempt k
    | Error exn -> raise exn (* Fatal / Timeout: retrying cannot help *)
  in
  attempt 1
