(** Pull-based tuple cursors: the streaming counterpart of {!Relation}.

    A cursor pairs named columns with a pull function producing tuples
    one at a time.  Cursors are single-use: once {!next} returns [None]
    (or the rows have been drained by {!iter}/{!to_list}/…), the cursor
    is exhausted.  The executor produces cursors over sorted query
    output; the merge tagger consumes one cursor per stream, so tuples
    become garbage as soon as they have been tagged. *)

type t

val create : string array -> (unit -> Tuple.t option) -> t
(** [create cols pull] wraps a pull function.  [pull] must keep
    returning [None] once the stream ends. *)

val cols : t -> string array
val arity : t -> int

val next : t -> Tuple.t option
(** Pull the next tuple, or [None] at end of stream. *)

val close : t -> unit
(** Releases the cursor's backing resources (spool file, open channel)
    without draining it; subsequent {!next} calls return [None].  Safe
    to call on any cursor, exhausted or not, any number of times.
    Exhausting a cursor releases its resources too — [close] is for
    cursors abandoned mid-stream (plan timeout, degradation). *)

val empty : string array -> t
val of_list : string array -> Tuple.t list -> t

val of_relation : Relation.t -> t
(** Cursor over a materialized relation's rows, in order. *)

val iter : (Tuple.t -> unit) -> t -> unit
(** Drains the cursor.  If the callback raises, the cursor is {!close}d
    before the exception propagates, so backing resources (spool files,
    open channels) are not leaked by a throwing consumer.  The same
    holds for {!fold}, {!to_list} and {!spool}, which drain through
    [iter]. *)

val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Tuple.t list
val to_relation : t -> Relation.t

val spool : ?on_row:(Tuple.t -> unit) -> t -> t
(** [spool c] drains [c] to a temporary file immediately (calling
    [on_row] on each tuple, in stream order — the hook for incremental
    row/byte/transfer accounting) and returns a cursor that reads the
    tuples back on demand.  This bounds live heap memory during
    consumption to one tuple per open cursor, independent of the result
    cardinality, modeling a server-side result set streamed over the
    wire.  The spool file is deleted when the last tuple is read, or by
    {!close} on a cursor abandoned before exhaustion. *)

(** {1 Batch protocol}

    Adapters between the tuple-at-a-time pull interface and the
    vectorized execution path's {!Batch.t} chunks. *)

val next_batch : ?size:int -> t -> Batch.t option
(** Pull up to [size] (default {!Batch.default_size}) tuples into a
    fresh batch; [None] at end of stream.  Works on any cursor,
    spool-backed included. *)

val of_batches : string array -> Batch.t list -> t
(** Cursor over the live rows of [batches], batch by batch, respecting
    selection vectors. *)
