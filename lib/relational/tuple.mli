(** Tuples: value arrays with positional helpers.

    These functions are the hot path of joins, sorting and the
    constant-space merge tagger. *)

type t = Value.t array

val arity : t -> int
val concat : t -> t -> t

val all_null : int -> t
(** [all_null n] is the NULL padding tuple of arity [n], used by outer
    joins and outer unions. *)

val project : int array -> t -> t
(** [project positions t] keeps the fields of [t] at [positions], in
    order. *)

val compare_at : int array -> t -> t -> int
(** Lexicographic comparison restricted to [positions], under the total
    value order (NULL first). *)

val equal_at : int array -> t -> t -> bool

val hash_at : int array -> t -> int
(** Hash of the fields at [positions]; consistent with {!equal_at}. *)

val compare : t -> t -> int
(** Full lexicographic comparison (shorter tuples first). *)

val equal : t -> t -> bool

val wire_size : t -> int
(** Total bytes in the client-transfer cost model. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
