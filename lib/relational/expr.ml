(* Scalar expressions and predicates with SQL three-valued logic.
   Expressions are built with possibly-qualified column references and are
   resolved to tuple positions before execution. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Col of string option * string (* qualifier, column *)
  | Lit of Value.t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t

let col ?qualifier name = Col (qualifier, name)
let int n = Lit (Value.Int n)
let str s = Lit (Value.String s)
let eq a b = Cmp (Eq, a, b)
let ( &&& ) a b = And (a, b)

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Lit (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc c -> And (acc, c)) e rest

let rec columns = function
  | Col (q, c) -> [ (q, c) ]
  | Lit _ -> []
  | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
      columns a @ columns b
  | Not e | Is_null e | Is_not_null e -> columns e

(* An equality between two plain columns, suitable for hash joins. *)
let as_column_equality = function
  | Cmp (Eq, Col (qa, ca), Col (qb, cb)) -> Some ((qa, ca), (qb, cb))
  | _ -> None

let cmp_name = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let arith_name = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec to_sql = function
  | Col (None, c) -> c
  | Col (Some q, c) -> q ^ "." ^ c
  | Lit v -> Value.to_sql v
  | Cmp (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_sql a) (cmp_name op) (to_sql b)
  | Arith (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_sql a) (arith_name op) (to_sql b)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_sql a) (to_sql b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_sql a) (to_sql b)
  | Not e -> Printf.sprintf "(NOT %s)" (to_sql e)
  | Is_null e -> Printf.sprintf "(%s IS NULL)" (to_sql e)
  | Is_not_null e -> Printf.sprintf "(%s IS NOT NULL)" (to_sql e)

let pp fmt e = Format.pp_print_string fmt (to_sql e)

(* --- Resolution and evaluation ------------------------------------- *)

type resolved =
  | R_col of int
  | R_lit of Value.t
  | R_cmp of cmp * resolved * resolved
  | R_arith of arith * resolved * resolved
  | R_and of resolved * resolved
  | R_or of resolved * resolved
  | R_not of resolved
  | R_is_null of resolved
  | R_is_not_null of resolved

exception Unresolved_column of string

let rec resolve lookup = function
  | Col (q, c) -> (
      match lookup (q, c) with
      | Some i -> R_col i
      | None ->
          raise
            (Unresolved_column
               (match q with Some q -> q ^ "." ^ c | None -> c)))
  | Lit v -> R_lit v
  | Cmp (op, a, b) -> R_cmp (op, resolve lookup a, resolve lookup b)
  | Arith (op, a, b) -> R_arith (op, resolve lookup a, resolve lookup b)
  | And (a, b) -> R_and (resolve lookup a, resolve lookup b)
  | Or (a, b) -> R_or (resolve lookup a, resolve lookup b)
  | Not e -> R_not (resolve lookup e)
  | Is_null e -> R_is_null (resolve lookup e)
  | Is_not_null e -> R_is_not_null (resolve lookup e)

let apply_cmp op c =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let apply_arith op a b =
  let open Value in
  match (op, a, b) with
  | _, Null, _ | _, _, Null -> Null
  | Add, Int x, Int y -> Int (x + y)
  | Sub, Int x, Int y -> Int (x - y)
  | Mul, Int x, Int y -> Int (x * y)
  | Div, Int _, Int 0 -> Null
  | Div, Int x, Int y -> Int (x / y)
  | Add, Float x, Float y -> Float (x +. y)
  | Sub, Float x, Float y -> Float (x -. y)
  | Mul, Float x, Float y -> Float (x *. y)
  | Div, Float x, Float y -> if y = 0.0 then Null else Float (x /. y)
  | Add, Int x, Float y -> Float (float_of_int x +. y)
  | Sub, Int x, Float y -> Float (float_of_int x -. y)
  | Mul, Int x, Float y -> Float (float_of_int x *. y)
  | Div, Int x, Float y -> if y = 0.0 then Null else Float (float_of_int x /. y)
  | Add, Float x, Int y -> Float (x +. float_of_int y)
  | Sub, Float x, Int y -> Float (x -. float_of_int y)
  | Mul, Float x, Int y -> Float (x *. float_of_int y)
  | Div, Float _, Int 0 -> Null
  | Div, Float x, Int y -> Float (x /. float_of_int y)
  | Add, String x, String y -> String (x ^ y)
  | _ -> Null

(* Value-level evaluation; predicates become Bool or Null (UNKNOWN). *)
let rec eval (r : resolved) (t : Tuple.t) : Value.t =
  match r with
  | R_col i -> t.(i)
  | R_lit v -> v
  | R_cmp (op, a, b) -> (
      match Value.compare3 (eval a t) (eval b t) with
      | None -> Value.Null
      | Some c -> Value.Bool (apply_cmp op c))
  | R_arith (op, a, b) -> apply_arith op (eval a t) (eval b t)
  | R_and (a, b) -> (
      match (eval a t, eval b t) with
      | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
      | Value.Bool true, Value.Bool true -> Value.Bool true
      | _ -> Value.Null)
  | R_or (a, b) -> (
      match (eval a t, eval b t) with
      | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
      | Value.Bool false, Value.Bool false -> Value.Bool false
      | _ -> Value.Null)
  | R_not e -> (
      match eval e t with
      | Value.Bool b -> Value.Bool (not b)
      | _ -> Value.Null)
  | R_is_null e -> Value.Bool (Value.is_null (eval e t))
  | R_is_not_null e -> Value.Bool (not (Value.is_null (eval e t)))

(* WHERE-clause semantics: UNKNOWN filters the row out. *)
let eval_pred r t = match eval r t with Value.Bool true -> true | _ -> false

(* --- Compilation ---------------------------------------------------- *)

(* Resolve the expression tree to a closure once; the per-row call then
   pays no tree traversal.  Evaluation is pure and total, so the
   short-circuits below are observationally equivalent to {!eval}. *)
let rec compile (r : resolved) : Tuple.t -> Value.t =
  match r with
  | R_col i -> fun t -> t.(i)
  | R_lit v -> fun _ -> v
  | R_cmp (op, a, b) ->
      let fa = compile a and fb = compile b in
      fun t ->
        (match Value.compare3 (fa t) (fb t) with
        | None -> Value.Null
        | Some c -> Value.Bool (apply_cmp op c))
  | R_arith (op, a, b) ->
      let fa = compile a and fb = compile b in
      fun t -> apply_arith op (fa t) (fb t)
  | R_and (a, b) ->
      let fa = compile a and fb = compile b in
      fun t ->
        (match fa t with
        | Value.Bool false -> Value.Bool false
        | va -> (
            match fb t with
            | Value.Bool false -> Value.Bool false
            | Value.Bool true ->
                if va = Value.Bool true then Value.Bool true else Value.Null
            | _ -> Value.Null))
  | R_or (a, b) ->
      let fa = compile a and fb = compile b in
      fun t ->
        (match fa t with
        | Value.Bool true -> Value.Bool true
        | va -> (
            match fb t with
            | Value.Bool true -> Value.Bool true
            | Value.Bool false ->
                if va = Value.Bool false then Value.Bool false else Value.Null
            | _ -> Value.Null))
  | R_not e ->
      let fe = compile e in
      fun t ->
        (match fe t with Value.Bool b -> Value.Bool (not b) | _ -> Value.Null)
  | R_is_null e ->
      let fe = compile e in
      fun t -> Value.Bool (Value.is_null (fe t))
  | R_is_not_null e ->
      let fe = compile e in
      fun t -> Value.Bool (not (Value.is_null (fe t)))

(* Boolean specialisation of {!compile} under WHERE semantics (UNKNOWN
   is false), skipping the Value.Bool boxing on AND/OR/NOT spines. *)
let rec compile_pred (r : resolved) : Tuple.t -> bool =
  match r with
  | R_lit v -> fun _ -> v = Value.Bool true
  | R_cmp (op, a, b) ->
      let fa = compile a and fb = compile b in
      fun t ->
        (match Value.compare3 (fa t) (fb t) with
        | None -> false
        | Some c -> apply_cmp op c)
  | R_and (a, b) ->
      let pa = compile_pred a and pb = compile_pred b in
      fun t -> pa t && pb t
  | R_or (a, b) ->
      let pa = compile_pred a and pb = compile_pred b in
      fun t -> pa t || pb t
  | R_not e ->
      let fe = compile e in
      fun t -> (match fe t with Value.Bool false -> true | _ -> false)
  | R_is_null e ->
      let fe = compile e in
      fun t -> Value.is_null (fe t)
  | R_is_not_null e ->
      let fe = compile e in
      fun t -> not (Value.is_null (fe t))
  | (R_col _ | R_arith _) as e ->
      let fe = compile e in
      fun t -> (match fe t with Value.Bool true -> true | _ -> false)
