(** Naive bottom-up evaluation of one non-recursive rule, set semantics.

    Deliberately simple: the executable ground truth that the SQL
    translation and the merge tagger are tested against. *)

val run : Relational.Database.t -> Rule.t -> Relational.Relation.t
(** Result columns are the rule's head variables, distinct rows sorted by
    the total tuple order.  Raises [Invalid_argument] for unsafe rules or
    arity-mismatched atoms. *)
