(* Conjunctive-query containment and the C2 inclusion test.

   Containment of rule-defined queries is the classic homomorphism check
   (bodies here are small, so backtracking search is fine).  The C2 test
   of Sec. 3.5 — "every parent tuple has at least one child tuple" — is
   decided conservatively by chasing the child's extra atoms with NOT
   NULL foreign keys and declared inclusion dependencies.  The paper
   notes the general problem is undecidable and prescribes exactly this
   kind of restricted, sound-but-incomplete check. *)

module R = Relational

(* --- homomorphisms --------------------------------------------------- *)

type mapping = (string * Rule.term) list

let map_term (m : mapping) (t : Rule.term) : Rule.term =
  match t with
  | Rule.Var v -> ( match List.assoc_opt v m with Some t' -> t' | None -> t)
  | t -> t

(* Extend mapping so that [src] (from Q2) matches [dst] (a term of Q1). *)
let unify_term (m : mapping) (src : Rule.term) (dst : Rule.term) : mapping option =
  match src with
  | Rule.Wild -> Some m
  | Rule.Const c -> (
      match dst with
      | Rule.Const c' when R.Value.equal c c' -> Some m
      | _ -> None)
  | Rule.Var v -> (
      match List.assoc_opt v m with
      | Some bound -> if bound = dst then Some m else None
      | None -> if dst = Rule.Wild then None else Some ((v, dst) :: m))

let unify_atom m (src : Rule.atom) (dst : Rule.atom) : mapping option =
  if src.rel <> dst.rel || List.length src.args <> List.length dst.args then None
  else
    List.fold_left2
      (fun acc s d -> match acc with None -> None | Some m -> unify_term m s d)
      (Some m) src.args dst.args

(* Does [filters1] syntactically contain the image of [f]?  (Also accepts
   the symmetric form of equalities.) *)
let filter_implied m (filters1 : Rule.filter list) (f : Rule.filter) =
  let l = map_term m f.Rule.left and r = map_term m f.Rule.right in
  let eq_filter (g : Rule.filter) op a b =
    g.Rule.op = op && g.Rule.left = a && g.Rule.right = b
  in
  (match (l, r) with
  | Rule.Const a, Rule.Const b -> (
      match R.Value.compare3 a b with
      | None -> false
      | Some c -> (
          match f.Rule.op with
          | R.Expr.Eq -> c = 0 | R.Expr.Neq -> c <> 0 | R.Expr.Lt -> c < 0
          | R.Expr.Le -> c <= 0 | R.Expr.Gt -> c > 0 | R.Expr.Ge -> c >= 0))
  | _ -> false)
  || List.exists (fun g -> eq_filter g f.Rule.op l r) filters1
  || (f.Rule.op = R.Expr.Eq
     && (l = r || List.exists (fun g -> eq_filter g R.Expr.Eq r l) filters1))

(* Search for a homomorphism from q2's body into q1's body that is the
   identity on the shared head variables. *)
let homomorphism (q1 : Rule.t) (q2 : Rule.t) : mapping option =
  let init =
    List.map (fun v -> (v, Rule.Var v)) q2.head_vars
  in
  let rec go m = function
    | [] ->
        if List.for_all (filter_implied m q1.filters) q2.filters then Some m
        else None
    | atom :: rest ->
        let rec try_targets = function
          | [] -> None
          | dst :: more -> (
              match unify_atom m atom dst with
              | Some m' -> (
                  match go m' rest with
                  | Some res -> Some res
                  | None -> try_targets more)
              | None -> try_targets more)
        in
        try_targets q1.atoms
  in
  go init q2.atoms

(* q1 ⊆ q2 over the same head-variable list. *)
let contained q1 q2 =
  q1.Rule.head_vars = q2.Rule.head_vars && homomorphism q1 q2 <> None

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

(* --- C2: guaranteed extension (chase) -------------------------------- *)

let atom_mem a atoms = List.exists (fun b -> b = a) atoms

(* Positional association of a relation's columns with an atom's args. *)
let args_by_col ~schema_of (a : Rule.atom) =
  let schema : R.Schema.table = schema_of a.rel in
  List.combine (R.Schema.column_names schema) a.args

let always_extends ~schema_of ~(inclusions : R.Schema.inclusion list)
    ~(parent : Rule.t) ~(child : Rule.t) : bool =
  let delta =
    List.filter (fun a -> not (atom_mem a parent.Rule.atoms)) child.Rule.atoms
  in
  let delta_filters =
    List.filter
      (fun f -> not (List.mem f parent.Rule.filters))
      child.Rule.filters
  in
  if delta = [] && delta_filters = [] then true
  else if delta_filters <> [] then false
  else begin
    (* Chase: a delta atom is reachable if some safe atom guarantees a
       matching row — via a NOT NULL foreign key onto the atom's key
       (exactly one row), or via a declared inclusion dependency (at
       least one row).  Terms already bound may only appear at the
       matched positions; remaining positions must introduce fresh
       variables or wildcards. *)
    let bound = ref (List.sort_uniq compare (List.concat_map Rule.atom_vars parent.Rule.atoms)) in
    let is_bound v = List.mem v !bound in
    let fk_witness safe (a : Rule.atom) =
      let a_cols = args_by_col ~schema_of a in
      let a_schema : R.Schema.table = schema_of a.rel in
      List.exists
        (fun (b : Rule.atom) ->
          let b_schema : R.Schema.table = schema_of b.rel in
          let b_cols = args_by_col ~schema_of b in
          List.exists
            (fun (fk : R.Schema.foreign_key) ->
              fk.ref_table = a.rel
              && fk.ref_cols = a_schema.key
              && List.for_all2
                   (fun fk_col ref_col ->
                     let src = List.assoc_opt fk_col b_cols in
                     let dst = List.assoc_opt ref_col a_cols in
                     let not_null =
                       match R.Schema.find_column b_schema fk_col with
                       | Some c -> not c.R.Schema.nullable
                       | None -> false
                     in
                     not_null
                     &&
                     match (src, dst) with
                     | Some (Rule.Var x), Some (Rule.Var y) ->
                         x = y && is_bound x
                     | Some (Rule.Const cx), Some (Rule.Const cy) ->
                         R.Value.equal cx cy
                     | _ -> false)
                   fk.fk_cols fk.ref_cols)
            b_schema.foreign_keys)
        safe
    in
    let inclusion_witness safe (a : Rule.atom) =
      let a_cols = args_by_col ~schema_of a in
      List.exists
        (fun (inc : R.Schema.inclusion) ->
          inc.inc_ref_table = a.rel
          && List.exists
               (fun (b : Rule.atom) ->
                 b.rel = inc.inc_table
                 &&
                 let b_cols = args_by_col ~schema_of b in
                 List.for_all2
                   (fun src_col ref_col ->
                     match
                       (List.assoc_opt src_col b_cols, List.assoc_opt ref_col a_cols)
                     with
                     | Some (Rule.Var x), Some (Rule.Var y) -> x = y && is_bound x
                     | Some (Rule.Const cx), Some (Rule.Const cy) ->
                         R.Value.equal cx cy
                     | _ -> false)
                   inc.inc_cols inc.inc_ref_cols)
               safe)
        inclusions
    in
    let fresh_positions_ok (a : Rule.atom) matched_ok =
      (* every var of [a] must be either bound (and matched by the
         witness) or fresh; a bound var at an unmatched position could
         conflict with the guaranteed row. *)
      List.for_all
        (fun v -> (not (is_bound v)) || matched_ok v)
        (Rule.atom_vars a)
    in
    let matched_vars_of (a : Rule.atom) =
      (* variables at the key positions of [a] (the positions a witness
         matches on). *)
      let a_schema : R.Schema.table = schema_of a.rel in
      let a_cols = args_by_col ~schema_of a in
      List.filter_map
        (fun k ->
          match List.assoc_opt k a_cols with
          | Some (Rule.Var v) -> Some v
          | _ -> None)
        a_schema.key
      @ List.concat_map
          (fun (inc : R.Schema.inclusion) ->
            if inc.inc_ref_table = a.rel then
              List.filter_map
                (fun c ->
                  match List.assoc_opt c a_cols with
                  | Some (Rule.Var v) -> Some v
                  | _ -> None)
                inc.inc_ref_cols
            else [])
          inclusions
    in
    let rec chase remaining safe =
      if remaining = [] then true
      else
        let ready =
          List.filter
            (fun a ->
              let mv = matched_vars_of a in
              fresh_positions_ok a (fun v -> List.mem v mv)
              && (fk_witness safe a || inclusion_witness safe a))
            remaining
        in
        match ready with
        | [] -> false
        | _ ->
            List.iter
              (fun a ->
                bound :=
                  List.sort_uniq compare (Rule.atom_vars a @ !bound))
              ready;
            chase
              (List.filter (fun a -> not (List.mem a ready)) remaining)
              (ready @ safe)
    in
    chase delta parent.Rule.atoms
  end
