(** Conjunctive-query containment and the C2 inclusion test.

    Containment is the classic homomorphism check.  The C2 test of paper
    Sec. 3.5 — every parent tuple extends to at least one child tuple —
    is decided conservatively (sound, not complete) by chasing the
    child's extra atoms with NOT NULL foreign keys and declared inclusion
    dependencies; the paper prescribes exactly this kind of restricted
    check since the general problem is undecidable. *)

val contained : Rule.t -> Rule.t -> bool
(** [contained q1 q2]: q1 ⊆ q2, for rules with the same head-variable
    list.  Decided by homomorphism from q2's body into q1's. *)

val equivalent : Rule.t -> Rule.t -> bool

val always_extends :
  schema_of:(string -> Relational.Schema.table) ->
  inclusions:Relational.Schema.inclusion list ->
  parent:Rule.t ->
  child:Rule.t ->
  bool
(** The C2 test.  True when the chase proves every tuple of [parent]'s
    body has a matching extension in [child]'s body (child's body must
    syntactically extend the parent's, as view-tree scoping guarantees). *)
