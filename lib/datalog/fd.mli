(** Functional-dependency reasoning over rule bodies.

    Implements the paper's C1 test (Sec. 3.5): does the parent node's
    Skolem term functionally determine the child's extra variables in the
    child rule's relation?  FDs only — inclusion dependencies are not
    chased, keeping the check tractable, as the paper prescribes
    (following Beeri–Bernstein). *)

module SS : Set.S with type elt = string

type fd = { lhs : SS.t; rhs : SS.t }

val fd : string list -> string list -> fd

val fds_of_body :
  schema_of:(string -> Relational.Schema.table) -> Rule.t -> fd list
(** Variable-level FDs implied by the body: each atom's key variables
    determine the atom's variables; equality filters add both directions;
    var = constant makes the variable determined by the empty set. *)

val closure : fd list -> string list -> SS.t
(** Attribute closure of the given variable set. *)

val implies : fd list -> string list -> string list -> bool
(** [implies fds lhs rhs]: is lhs → rhs derivable? *)

val functionally_determines :
  schema_of:(string -> Relational.Schema.table) ->
  child:Rule.t ->
  string list ->
  string list ->
  bool
(** [functionally_determines ~schema_of ~child parent_vars child_vars]:
    the C1 test over the child rule's body. *)
