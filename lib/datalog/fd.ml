(* Functional-dependency reasoning over rule bodies.

   The paper's C1 test (Sec. 3.5) asks whether, in the relation defined by
   a child node's rule, the parent's Skolem variables functionally
   determine the child's extra variables.  We derive variable-level FDs
   from the schema (key of every atom determines the whole atom; filters
   add equalities and constant bindings) and close them with the classic
   attribute-closure algorithm — following Beeri–Bernstein, FDs only, no
   inclusion dependencies, so the check stays tractable (the paper cites
   the same restriction). *)

module SS = Set.Make (String)

type fd = { lhs : SS.t; rhs : SS.t }

let fd lhs rhs = { lhs = SS.of_list lhs; rhs = SS.of_list rhs }

(* Replace wildcards by fresh variables so every atom position is named
   (needed to state "key determines the row"). *)
let freshen_wilds (r : Rule.t) : Rule.t =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "_w%d" !counter
  in
  let atoms =
    List.map
      (fun (a : Rule.atom) ->
        {
          a with
          Rule.args =
            List.map
              (function Rule.Wild -> Rule.Var (fresh ()) | t -> t)
              a.Rule.args;
        })
      r.atoms
  in
  { r with atoms }

let fds_of_body ~schema_of (r : Rule.t) : fd list =
  let r = freshen_wilds r in
  let of_atom (a : Rule.atom) =
    let schema : Relational.Schema.table = schema_of a.rel in
    let cols = Relational.Schema.column_names schema in
    let by_col = List.combine cols a.args in
    let var_of = function Rule.Var v -> Some v | _ -> None in
    let all_vars = List.filter_map (fun (_, t) -> var_of t) by_col in
    let key_vars =
      List.filter_map
        (fun k ->
          match List.assoc_opt k by_col with
          | Some t -> var_of t
          | None -> None)
        schema.key
    in
    (* constants in key positions only strengthen the FD; a missing key
       variable can't happen after freshening, but a Const can.  A Const
       restricts the rows, so the remaining key vars still determine the
       atom. *)
    if schema.key = [] then []
    else [ { lhs = SS.of_list key_vars; rhs = SS.of_list all_vars } ]
  in
  let of_filter (f : Rule.filter) =
    match (f.op, f.left, f.right) with
    | Relational.Expr.Eq, Rule.Var a, Rule.Var b ->
        [ fd [ a ] [ b ]; fd [ b ] [ a ] ]
    | Relational.Expr.Eq, Rule.Var a, Rule.Const _
    | Relational.Expr.Eq, Rule.Const _, Rule.Var a ->
        [ fd [] [ a ] ] (* determined by the empty set *)
    | _ -> []
  in
  List.concat_map of_atom r.atoms @ List.concat_map of_filter r.filters

(* Attribute closure. *)
let closure (fds : fd list) (start : string list) : SS.t =
  let rec go acc =
    let acc' =
      List.fold_left
        (fun acc f -> if SS.subset f.lhs acc then SS.union acc f.rhs else acc)
        acc fds
    in
    if SS.equal acc acc' then acc else go acc'
  in
  go (SS.of_list start)

let implies fds lhs rhs = SS.subset (SS.of_list rhs) (closure fds lhs)

(* The C1 test: within the child rule's body, do the parent's head
   variables determine all of the child's head variables? *)
let functionally_determines ~schema_of ~(child : Rule.t) (parent_vars : string list)
    (child_vars : string list) : bool =
  let fds = fds_of_body ~schema_of child in
  implies fds parent_vars child_vars
