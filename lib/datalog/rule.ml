(* Non-recursive datalog with filters — the annotation language of view
   trees (paper Sec. 3.1): each view-tree node carries one rule whose head
   is a Skolem term and whose body is the conjunction of the from/where
   clauses in scope.

   Atoms are positional over the stored relations; [Wild] positions are
   the underscores of the paper's datalog syntax. *)

module R = Relational

type term =
  | Var of string
  | Const of R.Value.t
  | Wild

type atom = { rel : string; args : term list }

type filter = { op : R.Expr.cmp; left : term; right : term }

type t = {
  head_name : string;        (* Skolem function name, e.g. "S1.2" *)
  head_vars : string list;   (* Skolem-term arguments *)
  atoms : atom list;
  filters : filter list;
}

let atom rel args = { rel; args }
let filter op left right = { op; left; right }

let make ~head_name ~head_vars ?(filters = []) atoms =
  { head_name; head_vars; atoms; filters }

let term_vars = function Var v -> [ v ] | Const _ | Wild -> []

let atom_vars a = List.concat_map term_vars a.args

let body_vars r =
  List.sort_uniq compare
    (List.concat_map atom_vars r.atoms
    @ List.concat_map
        (fun f -> term_vars f.left @ term_vars f.right)
        r.filters)

(* Variables the rule is safe in: every head variable must occur in some
   body atom. *)
let is_safe r =
  let bv = List.concat_map atom_vars r.atoms in
  List.for_all (fun v -> List.mem v bv) r.head_vars

let rename_var ~from_ ~to_ r =
  let rt = function Var v when v = from_ -> Var to_ | t -> t in
  {
    r with
    head_vars = List.map (fun v -> if v = from_ then to_ else v) r.head_vars;
    atoms = List.map (fun a -> { a with args = List.map rt a.args }) r.atoms;
    filters =
      List.map (fun f -> { f with left = rt f.left; right = rt f.right }) r.filters;
  }

(* Conjoin two rule bodies (used when view-tree reduction collapses
   nodes): atoms and filters are unioned, duplicates dropped. *)
let conjoin_bodies a b =
  let atoms = a.atoms @ List.filter (fun x -> not (List.mem x a.atoms)) b.atoms in
  let filters =
    a.filters @ List.filter (fun x -> not (List.mem x a.filters)) b.filters
  in
  { a with atoms; filters }

let term_to_string = function
  | Var v -> v
  | Const c -> R.Value.to_sql c
  | Wild -> "_"

let to_string r =
  let head =
    Printf.sprintf "%s(%s)" r.head_name (String.concat ", " r.head_vars)
  in
  let atoms =
    List.map
      (fun a ->
        Printf.sprintf "%s(%s)" a.rel
          (String.concat ", " (List.map term_to_string a.args)))
      r.atoms
  in
  let filters =
    List.map
      (fun f ->
        Printf.sprintf "%s %s %s" (term_to_string f.left)
          (match f.op with
          | R.Expr.Eq -> "=" | R.Expr.Neq -> "<>" | R.Expr.Lt -> "<"
          | R.Expr.Le -> "<=" | R.Expr.Gt -> ">" | R.Expr.Ge -> ">=")
          (term_to_string f.right))
      r.filters
  in
  head ^ " :- " ^ String.concat ", " (atoms @ filters)
