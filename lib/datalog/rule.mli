(** Non-recursive datalog with filters — the annotation language of view
    trees (paper Sec. 3.1).

    Each view-tree node carries one rule whose head is a Skolem term and
    whose body conjoins the from/where clauses in scope.  Atoms are
    positional over stored relations; [Wild] positions are the paper's
    underscores. *)

type term = Var of string | Const of Relational.Value.t | Wild

type atom = { rel : string; args : term list }

type filter = { op : Relational.Expr.cmp; left : term; right : term }

type t = {
  head_name : string;  (** Skolem function name, e.g. ["S1.2"] *)
  head_vars : string list;  (** Skolem-term arguments *)
  atoms : atom list;
  filters : filter list;
}

val atom : string -> term list -> atom
val filter : Relational.Expr.cmp -> term -> term -> filter

val make :
  head_name:string ->
  head_vars:string list ->
  ?filters:filter list ->
  atom list ->
  t

val term_vars : term -> string list
val atom_vars : atom -> string list
val body_vars : t -> string list

val is_safe : t -> bool
(** Every head variable occurs in a body atom. *)

val rename_var : from_:string -> to_:string -> t -> t

val conjoin_bodies : t -> t -> t
(** Unions atoms and filters of two bodies (view-tree reduction keeps the
    first rule's head). *)

val term_to_string : term -> string
val to_string : t -> string
