(* Naive bottom-up evaluation of a single non-recursive rule, with set
   semantics.  This is deliberately simple: it is the executable ground
   truth the tests compare the SQL translation and the tagger against. *)

module R = Relational

type env = (string * R.Value.t) list

let lookup env v = List.assoc_opt v env

let match_term env (t : Rule.term) (value : R.Value.t) : env option =
  match t with
  | Rule.Wild -> Some env
  | Rule.Const c -> if R.Value.equal c value then Some env else None
  | Rule.Var v -> (
      match lookup env v with
      | None -> Some ((v, value) :: env)
      | Some bound -> if R.Value.equal bound value then Some env else None)

let match_atom db env (a : Rule.atom) : env list =
  let data = R.Database.raw_data db a.rel in
  let args = Array.of_list a.args in
  let arity = R.Schema.arity (R.Database.schema db a.rel) in
  if Array.length args <> arity then
    invalid_arg
      (Printf.sprintf "Eval: atom %s has %d args, relation has arity %d" a.rel
         (Array.length args) arity);
  Array.fold_left
    (fun acc row ->
      let rec go env i =
        if i >= Array.length args then Some env
        else
          match match_term env args.(i) row.(i) with
          | None -> None
          | Some env -> go env (i + 1)
      in
      match go env 0 with Some env -> env :: acc | None -> acc)
    [] data
  |> List.rev

let filter_value env = function
  | Rule.Const c -> Some c
  | Rule.Var v -> lookup env v
  | Rule.Wild -> None

let filter_holds env (f : Rule.filter) =
  match (filter_value env f.left, filter_value env f.right) with
  | Some a, Some b -> (
      match R.Value.compare3 a b with
      | None -> false
      | Some c -> (
          match f.op with
          | R.Expr.Eq -> c = 0
          | R.Expr.Neq -> c <> 0
          | R.Expr.Lt -> c < 0
          | R.Expr.Le -> c <= 0
          | R.Expr.Gt -> c > 0
          | R.Expr.Ge -> c >= 0))
  | _ -> false

let run db (r : Rule.t) : R.Relation.t =
  if not (Rule.is_safe r) then
    invalid_arg ("Eval: unsafe rule " ^ Rule.to_string r);
  let envs =
    List.fold_left
      (fun envs atom -> List.concat_map (fun env -> match_atom db env atom) envs)
      [ [] ] r.atoms
  in
  let envs = List.filter (fun env -> List.for_all (filter_holds env) r.filters) envs in
  let tuples =
    List.map
      (fun env ->
        Array.of_list
          (List.map
             (fun v ->
               match lookup env v with
               | Some value -> value
               | None -> R.Value.Null)
             r.head_vars))
      envs
  in
  (* set semantics *)
  let distinct = List.sort_uniq Relational.Tuple.compare tuples in
  R.Relation.create (Array.of_list r.head_vars) distinct
