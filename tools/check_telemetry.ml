(* Validator behind tools/telemetry_smoke.sh: given two exposition
   scrapes from a live server (before and after a workload pass) and
   the slow-query log it wrote, hold the telemetry to its contract.

   Usage: check_telemetry SCRAPE1 SCRAPE2 SLOWLOG THRESHOLD_MS

   Scrapes: both must parse with Obs.Expose.parse (producer and
   consumer share the codec, so a drift here is a real wire bug); the
   required series must be present; every *_total counter present in
   the first scrape must be monotone into the second; uptime must
   advance; hit ratios must stay in [0,1]; latency quantiles must be
   ordered.  Slow log: every line is one JSON object of type
   "slow_query" with a trace id, a latency at or above the threshold,
   and a stage breakdown. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check-telemetry FAIL: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (if line = "" then acc else line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let get parsed key =
  match Obs.Expose.find parsed key with
  | Some v -> v
  | None -> fail "exposition is missing %s" key

let () =
  let scrape1, scrape2, slowlog, threshold_ms =
    match Sys.argv with
    | [| _; a; b; c; d |] -> (a, b, c, float_of_string d)
    | _ -> fail "usage: check_telemetry SCRAPE1 SCRAPE2 SLOWLOG THRESHOLD_MS"
  in
  let p1 =
    try Obs.Expose.parse (read_file scrape1)
    with Obs.Expose.Parse_error m -> fail "scrape 1 does not parse: %s" m
  in
  let p2 =
    try Obs.Expose.parse (read_file scrape2)
    with Obs.Expose.Parse_error m -> fail "scrape 2 does not parse: %s" m
  in

  (* the dashboard's load-bearing series must all be present *)
  List.iter
    (fun key -> ignore (get p2 key))
    [
      "silkroute_uptime_seconds";
      "silkroute_server_requests_total";
      "silkroute_server_queries_total";
      "silkroute_server_slow_queries_total";
      "silkroute_cache_hit_ratio{tier=\"statement\"}";
      "silkroute_cache_hit_ratio{tier=\"plan\"}";
      "silkroute_cache_hit_ratio{tier=\"result\"}";
      "silkroute_pool_domains";
      "silkroute_slo_samples";
      "silkroute_slo_p99_ms";
      "silkroute_slowlog_written_total";
      "silkroute_slowlog_dropped_total";
    ];

  if get p2 "silkroute_server_queries_total" <= 0.0 then
    fail "no queries counted after the workload pass";
  if get p2 "silkroute_uptime_seconds" <= get p1 "silkroute_uptime_seconds" then
    fail "uptime did not advance between scrapes";

  (* every counter the first scrape exposed must still exist and must
     not have gone backwards — the registry never loses increments *)
  let suffix_total k =
    let n = String.length k in
    let rec base i = if i < n && k.[i] <> '{' then base (i + 1) else i in
    let b = base 0 in
    b >= 6 && String.sub k (b - 6) 6 = "_total"
  in
  let monotone = ref 0 in
  List.iter
    (fun (key, v1) ->
      if suffix_total key then begin
        let v2 = get p2 key in
        if v2 < v1 then fail "counter %s went backwards: %g -> %g" key v1 v2;
        incr monotone
      end)
    p1.Obs.Expose.values;
  if !monotone = 0 then fail "scrape 1 exposed no counters at all";

  List.iter
    (fun tier ->
      let r = get p2 (Printf.sprintf "silkroute_cache_hit_ratio{tier=%S}" tier) in
      if r < 0.0 || r > 1.0 then fail "%s hit ratio %g out of [0,1]" tier r)
    [ "statement"; "plan"; "result" ];

  (* the request-latency summary: quantiles ordered, count consistent *)
  let q s = get p2 (Printf.sprintf "silkroute_server_request_ms{quantile=%S}" s) in
  if get p2 "silkroute_server_request_ms_count" <= 0.0 then
    fail "no request latencies were observed";
  if not (q "0.5" <= q "0.9" && q "0.9" <= q "0.99") then
    fail "latency quantiles out of order: p50 %g p90 %g p99 %g" (q "0.5")
      (q "0.9") (q "0.99");

  (* the slow log: valid JSONL, every record above the threshold and
     tied to a trace *)
  let records = read_lines slowlog in
  if records = [] then fail "slow log is empty (threshold %gms)" threshold_ms;
  List.iteri
    (fun i line ->
      let j =
        try Obs.Json.parse line
        with Obs.Json.Parse_error m -> fail "slow log line %d: %s" (i + 1) m
      in
      let str key =
        match Obs.Json.member key j with
        | Some (Obs.Json.String s) -> s
        | _ -> fail "slow log line %d: missing string %s" (i + 1) key
      in
      let num key =
        match Obs.Json.member key j with
        | Some (Obs.Json.Float f) -> f
        | Some (Obs.Json.Int n) -> float_of_int n
        | _ -> fail "slow log line %d: missing number %s" (i + 1) key
      in
      if str "type" <> "slow_query" then
        fail "slow log line %d: unexpected type %S" (i + 1) (str "type");
      if str "trace_id" = "" then fail "slow log line %d: empty trace id" (i + 1);
      if num "ms" < threshold_ms then
        fail "slow log line %d: %gms is under the %gms threshold" (i + 1)
          (num "ms") threshold_ms;
      match Obs.Json.member "stages" j with
      | Some (Obs.Json.List _) -> ()
      | _ -> fail "slow log line %d: missing stage breakdown" (i + 1))
    records;

  let written = get p2 "silkroute_slowlog_written_total" in
  if float_of_int (List.length records) > written then
    fail "slow log holds %d records but the server only counted %g"
      (List.length records) written;

  Printf.printf
    "check-telemetry OK: %d monotone counters, %.0f queries, %d slow records, \
     p50/p90/p99 %.2f/%.2f/%.2f ms\n"
    !monotone
    (get p2 "silkroute_server_queries_total")
    (List.length records) (q "0.5") (q "0.9") (q "0.99")
