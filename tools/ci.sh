#!/bin/sh
# Local CI: build, test, and (when ocamlformat is available) check
# formatting.  The fmt check is gated because the toolchain image does
# not ship ocamlformat; installing it locally enables the check with no
# other change.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check"
dune build @check

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== memory smoke (streaming path stays bounded)"
dune exec tools/mem_smoke.exe

echo "== fault smoke (byte-identical output under injected faults)"
dune exec tools/fault_smoke.exe

echo "== explain smoke (logical + physical trees on q1/q2)"
sh tools/explain_smoke.sh

echo "== diagnose smoke (flight recorder, chrome trace, anomaly detector)"
sh tools/diagnose_smoke.sh

echo "== bench baseline gate (work within ±5% of committed BENCH_silkroute.json)"
dune exec bench/main.exe -- --check-baseline

echo "== baseline smoke (perturbed baseline must fail the gate)"
sh tools/baseline_smoke.sh

if command -v ocamlformat > /dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed)"
fi

echo "== ci OK"
