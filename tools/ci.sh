#!/bin/sh
# Local CI: build, test, and (when ocamlformat is available) check
# formatting.  The fmt check is gated because the toolchain image does
# not ship ocamlformat; installing it locally enables the check with no
# other change.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check"
dune build @check

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== memory smoke (streaming path stays bounded, no spool-file leaks)"
dune exec tools/mem_smoke.exe

echo "== parallel smoke (--parallel 4 byte-identical, counters deterministic)"
dune build bin/silkroute_cli.exe tools/check_jsonl.exe
sh tools/parallel_smoke.sh _build/default/bin/silkroute_cli.exe \
    _build/default/tools/check_jsonl.exe

echo "== batch smoke (--batch byte-identical, executor.batch span traced)"
sh tools/batch_smoke.sh _build/default/bin/silkroute_cli.exe \
    _build/default/tools/check_jsonl.exe

echo "== fault smoke (byte-identical output under injected faults)"
dune exec tools/fault_smoke.exe

echo "== serve smoke (query server: wire-level byte-identity + warm-cache hits)"
sh tools/serve_smoke.sh _build/default/bin/silkroute_cli.exe

echo "== telemetry smoke (wire metrics/health, monitor, slow-query log, SLO)"
dune build tools/check_telemetry.exe
sh tools/telemetry_smoke.sh _build/default/bin/silkroute_cli.exe \
    _build/default/tools/check_telemetry.exe

echo "== explain smoke (logical + physical trees on q1/q2)"
sh tools/explain_smoke.sh

echo "== diagnose smoke (flight recorder, chrome trace, anomaly detector)"
sh tools/diagnose_smoke.sh

echo "== bench baseline gate (work within ±5% of committed BENCH_silkroute.json)"
dune exec bench/main.exe -- --check-baseline

echo "== scaling experiment (fan-out parity + modeled speedup curve)"
scaling_out=$(dune exec bench/main.exe -- --experiment scaling)
echo "$scaling_out"
if echo "$scaling_out" | grep -q 'NO!'; then
  echo "scaling: parity violation (see NO! rows above)"
  exit 1
fi
if ! echo "$scaling_out" | grep -q ' yes$'; then
  echo "scaling: no parity rows found"
  exit 1
fi

echo "== batching experiment (vectorized path: exact parity on the full plan lattice)"
batching_out=$(dune exec bench/main.exe -- --experiment batching)
echo "$batching_out"
if echo "$batching_out" | grep -q 'NO!'; then
  echo "batching: parity violation (see NO! rows above)"
  exit 1
fi
if ! echo "$batching_out" | grep -q ' yes$'; then
  echo "batching: no parity rows found"
  exit 1
fi

echo "== serving experiment (cache on/off qps + percentiles, warm strictly faster)"
serving_out=$(dune exec bench/main.exe -- --experiment serving)
echo "$serving_out"
if echo "$serving_out" | grep -q 'NO!'; then
  echo "serving: invariant violation (see NO! rows above)"
  exit 1
fi
if ! echo "$serving_out" | grep -q ' yes$'; then
  echo "serving: no invariant rows found"
  exit 1
fi

echo "== baseline smoke (perturbed baseline must fail the gate)"
sh tools/baseline_smoke.sh

if command -v ocamlformat > /dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed)"
fi

echo "== ci OK"
