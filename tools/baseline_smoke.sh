#!/bin/sh
# The regression gate must actually gate: feed `bench --check-baseline`
# a copy of the committed baseline with every work figure clobbered
# (drift far beyond the ±5% tolerance) and require a non-zero exit.
# The pass-direction (unmodified tree vs committed BENCH_silkroute.json)
# is exercised by the `--check-baseline` step in ci.sh itself.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp "${TMPDIR:-/tmp}/silkroute_baseline.XXXXXX")
trap 'rm -f "$tmp"' EXIT INT TERM

sed 's/"work":[0-9][0-9]*/"work":1/' BENCH_silkroute.json > "$tmp"

if dune exec bench/main.exe -- --check-baseline "$tmp" > /dev/null 2>&1; then
  echo "baseline_smoke: perturbed baseline unexpectedly passed the gate" >&2
  exit 1
fi
echo "baseline_smoke OK (perturbed work figures fail the gate)"
