(* Validate a Chrome trace-event JSON file: it must parse, carry a
   non-empty "traceEvents" array of objects each with a "ph" phase, and
   — for every NAME passed after the file — contain at least one
   complete ("ph":"X") event with that name.  The names are the pipeline
   stages the smoke test expects to see spanned, so a silently dropped
   stage fails loudly.

   usage: check_chrometrace FILE.json [NAME...]
   Exit status 0 on success, 1 with a diagnostic otherwise. *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "check_chrometrace: %s\n" msg;
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let str_member key j =
  match Obs.Json.member key j with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: check_chrometrace FILE.json [NAME...]";
    exit 2
  end;
  let path = Sys.argv.(1) in
  let required =
    Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
  in
  let j =
    match Obs.Json.parse (read_file path) with
    | exception Obs.Json.Parse_error msg -> fail "%s: %s" path msg
    | j -> j
  in
  let events =
    match Obs.Json.member "traceEvents" j with
    | Some (Obs.Json.List l) -> l
    | Some _ -> fail "%s: \"traceEvents\" is not an array" path
    | None -> fail "%s: missing \"traceEvents\"" path
  in
  if events = [] then fail "%s: \"traceEvents\" is empty" path;
  List.iteri
    (fun i e ->
      match e with
      | Obs.Json.Obj _ -> (
          match str_member "ph" e with
          | Some _ -> ()
          | None -> fail "%s: traceEvents[%d] lacks a \"ph\" phase" path i)
      | _ -> fail "%s: traceEvents[%d] is not an object" path i)
    events;
  let complete_names =
    List.filter_map
      (fun e ->
        match str_member "ph" e with
        | Some "X" -> str_member "name" e
        | _ -> None)
      events
  in
  List.iter
    (fun name ->
      if not (List.mem name complete_names) then
        fail "%s: no complete (\"ph\":\"X\") event named %S" path name)
    required;
  Printf.printf
    "check_chrometrace: %s: %d event(s), %d complete, all %d required name(s) \
     present\n"
    path (List.length events)
    (List.length complete_names)
    (List.length required)
