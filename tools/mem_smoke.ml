(* Memory smoke check (tools/ci.sh): materialize a scaled TPC-H view
   under both execution paths and verify the streaming path's live-heap
   high-water mark during tagging is bounded by the view-tree depth plus
   the merge-heap state — not by the database (result) size — while the
   materialized path's grows with scale because it retains every
   stream's relation end to end.

   Live words are sampled through the tagger sink every [sample_every]
   opened elements, after a full major collection, relative to a
   baseline taken after query execution setup; [Gc.full_major] makes the
   numbers deterministic. *)

module R = Relational
module S = Silkroute

let sample_every = 500

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

(* High-water live words observed while tagging [run_tag ()], relative
   to [base]. *)
let tag_highwater base run_tag =
  let hw = ref 0 and opens = ref 0 in
  let sample () =
    let d = live_words () - base in
    if d > !hw then hw := d
  in
  let sink =
    {
      S.Tagger.on_open =
        (fun _ ->
          incr opens;
          if !opens mod sample_every = 0 then sample ());
      on_text = (fun _ -> ());
      on_close = (fun _ -> ());
    }
  in
  run_tag sink;
  sample ();
  (!hw, !opens)

let prepare scale =
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  let p = S.Middleware.prepare_text db S.Queries.query1_text in
  let plan = S.Partition.of_mask p.S.Middleware.tree 37 in
  (p, plan)

let streaming_highwater scale =
  let p, plan = prepare scale in
  let base = live_words () in
  let se = S.Middleware.execute_streaming p plan in
  let hw, opens =
    tag_highwater base (fun sink ->
        S.Tagger.tag_cursors p.S.Middleware.tree se.S.Middleware.cursors sink)
  in
  (hw, opens, se.S.Middleware.s_tuples)

let materialized_highwater scale =
  let p, plan = prepare scale in
  let base = live_words () in
  let e = S.Middleware.execute p plan in
  let hw, opens =
    tag_highwater base (fun sink ->
        S.Tagger.tag p.S.Middleware.tree e.S.Middleware.streams sink)
  in
  (hw, opens, e.S.Middleware.tuples)

(* --- spool-file hygiene ------------------------------------------------ *)

(* Streaming/resilient runs spool every sub-query result to a
   silkroute*.spool temp file.  The files must never outlive the call:
   on success each is deleted when its last tuple is read; on failure
   (a later stream hits the plan timeout) the completed streams'
   cursors are closed, which deletes their files eagerly. *)
let spool_files () =
  let dir = Filename.get_temp_dir_name () in
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f ->
         String.length f >= 9
         && String.sub f 0 9 = "silkroute"
         && Filename.check_suffix f ".spool")
  |> List.sort compare

let check_no_spool_leak () =
  let fail fmt =
    Printf.ksprintf (fun s -> prerr_endline ("mem-smoke FAIL: " ^ s); exit 1) fmt
  in
  let before = spool_files () in
  let p, plan = prepare 0.1 in
  (* happy path: stream, then drain every cursor to the end *)
  let se = S.Middleware.execute_streaming p plan in
  ignore (S.Middleware.xml_string_of_streaming p se);
  (* timeout path, streaming: the heaviest stream blows the per-query
     budget mid-plan; the completed streams' spools must be closed.
     Budget = half the heaviest stream's work, so lighter streams
     complete and the heavy one times out. *)
  let fully = S.Partition.fully_partitioned p.S.Middleware.tree in
  let probe = S.Middleware.execute p fully in
  let budget =
    List.fold_left
      (fun acc se -> max acc se.S.Middleware.se_stats.R.Executor.work)
      0 probe.S.Middleware.per_stream
    / 2
  in
  let timeouts = ref 0 in
  (try ignore (S.Middleware.execute_streaming ~budget p fully)
   with S.Middleware.Plan_timeout _ -> incr timeouts);
  (* timeout path, resilient (sequential and fanned out): single-node
     fragments cannot degrade further, so the budget hit surfaces as
     Plan_timeout after several streams already spooled *)
  List.iter
    (fun domains ->
      try ignore (S.Middleware.execute_resilient ~budget ~domains p fully)
      with S.Middleware.Plan_timeout _ -> incr timeouts)
    [ 1; 4 ];
  if !timeouts <> 3 then
    fail "spool-leak check not meaningful: %d/3 runs hit the plan timeout"
      !timeouts;
  let after = spool_files () in
  if before <> after then
    fail "leftover spool files after timeout runs: [%s] (before: [%s])"
      (String.concat "; " after)
      (String.concat "; " before);
  Printf.printf
    "mem-smoke OK: no silkroute*.spool files left behind (%d timeout runs)\n"
    !timeouts

let () =
  let small_scale = 0.1 and large_scale = 0.4 in
  let s_small, _, t_small = streaming_highwater small_scale in
  let s_large, _, t_large = streaming_highwater large_scale in
  let m_large, _, _ = materialized_highwater large_scale in
  Printf.printf
    "mem-smoke: streaming hw %d words (%d tuples) @%.1f, %d words (%d \
     tuples) @%.1f; materialized hw %d words @%.1f\n"
    s_small t_small small_scale s_large t_large large_scale m_large
    large_scale;
  let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("mem-smoke FAIL: " ^ s); exit 1) fmt in
  if t_large < 2 * t_small then
    fail "test not meaningful: tuple count did not grow with scale (%d -> %d)"
      t_small t_large;
  (* The materialized path retains every stream's relation while
     tagging; the streaming path must live well below that. *)
  if not (s_large * 4 < m_large) then
    fail "streaming high-water %d words is not well below materialized %d"
      s_large m_large;
  (* Row count grew >= 2x across scales; streaming live memory must not
     track it.  Allow generous constant slack (spool buffers, heap,
     pending lists) but nothing proportional to the result. *)
  if not (s_large < s_small + (s_small / 2) + 65_536) then
    fail "streaming high-water grew with database size: %d @%.1f vs %d @%.1f"
      s_large large_scale s_small small_scale;
  print_endline "mem-smoke OK: streaming live memory independent of row count";
  check_no_spool_leak ()
