#!/bin/sh
# Query-server smoke: start `serve` on a Unix socket, replay the
# deterministic multi-client workload over the wire twice, and hold the
# server to its contract:
#
#   1. Every response must be byte-identical to the direct pipeline —
#      the workload driver computes its references through the plain
#      middleware path and exits non-zero on any mismatch, and we also
#      require its "identity: mismatches=0" line explicitly.
#   2. The second pass must be served from the caches: statement, plan
#      and result hit counters all strictly positive.
#   3. The Shutdown request must stop the server and remove the socket.
#
# Run from dune (see tools/dune) or by hand:
#   sh tools/serve_smoke.sh _build/default/bin/silkroute_cli.exe
set -eu

case $1 in */*) cli=$1 ;; *) cli=./$1 ;; esac

tmp=$(mktemp -d "${TMPDIR:-/tmp}/silkroute_serve.XXXXXX")
sock="$tmp/server.sock"
server_pid=""
cleanup () {
  [ -n "$server_pid" ] && kill "$server_pid" 2> /dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

scale="--scale 0.1"

# shellcheck disable=SC2086
"$cli" serve $scale --socket "$sock" --parallel 2 \
    > "$tmp/serve.out" 2> "$tmp/serve.err" &
server_pid=$!

# the server generates its database before binding; wait for the socket
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then
    echo "serve-smoke FAIL: socket never appeared" >&2
    cat "$tmp/serve.err" >&2 || true
    exit 1
  fi
  kill -0 "$server_pid" 2> /dev/null || {
    echo "serve-smoke FAIL: server exited before binding" >&2
    cat "$tmp/serve.err" >&2 || true
    exit 1
  }
  sleep 0.1
done

run_pass () { # $1 label, $2 extra workload flags
  label=$1; flags=$2
  # shellcheck disable=SC2086
  "$cli" workload $scale --socket "$sock" --server-stats $flags \
      > "$tmp/$label.out" 2> "$tmp/$label.err" || {
    echo "serve-smoke FAIL: workload pass '$label' failed (mismatch or error)" >&2
    cat "$tmp/$label.out" >&2 || true
    cat "$tmp/$label.err" >&2 || true
    exit 1
  }
  grep -q '^identity: mismatches=0' "$tmp/$label.out" || {
    echo "serve-smoke FAIL: pass '$label' responses differ from the direct pipeline" >&2
    cat "$tmp/$label.out" >&2
    exit 1
  }
  grep -q '^errors: none' "$tmp/$label.out" || {
    echo "serve-smoke FAIL: pass '$label' reported request errors" >&2
    cat "$tmp/$label.out" >&2
    exit 1
  }
  echo "serve-smoke: pass '$label' byte-identical ($(grep '^workload:' "$tmp/$label.out"))"
}

run_pass cold ""
run_pass warm "--shutdown"

# warm pass must be served from the caches: every tier's hit counter > 0
hits=$(grep '^hits:' "$tmp/warm.out")
for tier in statement plan result; do
  n=$(echo "$hits" | sed "s/.*$tier=\([0-9]*\).*/\1/")
  if [ -z "$n" ] || [ "$n" -eq 0 ]; then
    echo "serve-smoke FAIL: warm pass had no $tier-cache hits ($hits)" >&2
    exit 1
  fi
done
echo "serve-smoke: warm pass hit every cache tier ($hits)"

# the --shutdown request must stop the server and remove the socket
i=0
while kill -0 "$server_pid" 2> /dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve-smoke FAIL: server still running after Shutdown" >&2
    exit 1
  fi
  sleep 0.1
done
server_pid=""
if [ -S "$sock" ]; then
  echo "serve-smoke FAIL: socket file not removed on shutdown" >&2
  exit 1
fi
echo "serve-smoke: shutdown clean, socket removed"

echo "serve-smoke OK"
