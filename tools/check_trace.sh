#!/bin/sh
# Drive the CLI with --trace-json and validate that every emitted line
# is well-formed JSONL.  Runs as a `dune runtest` rule (see tools/dune);
# can also be run by hand:
#
#   sh tools/check_trace.sh _build/default/bin/silkroute_cli.exe \
#       _build/default/tools/check_jsonl.exe
set -eu

# dune hands us bare relative paths; qualify them so sh does not fall
# back to a PATH lookup
case $1 in */*) cli=$1 ;; *) cli=./$1 ;; esac
case $2 in */*) check=$2 ;; *) check=./$2 ;; esac

tmp=$(mktemp "${TMPDIR:-/tmp}/silkroute_trace.XXXXXX")
trap 'rm -f "$tmp"' EXIT INT TERM

"$cli" run --query q1 --scale 0.05 --strategy greedy \
    --trace-json "$tmp" > /dev/null
"$check" "$tmp"
