(* Validate a JSON-Lines observability file: every non-empty line must
   parse as a JSON object whose "type" is one of span | event | profile
   | metric | baseline, and there must be at least one line.  Beyond well-
   formedness it checks the diffability contract the exporters promise:

   - span records carry a rebased "start_ns": within one experiment tag
     (bench files concatenate one batch per experiment) the first span
     starts at exactly 0 and starts never decrease (spans are logged in
     start order);
   - event records carry a known level, a non-empty name, a
     non-negative seq, an object "attrs", and a rebased non-negative
     "ts_ns" that never decreases within one experiment tag;
   - profile records carry a non-empty "path", calls >= 1, and
     0 <= self_ms <= total_ms (+ epsilon for float noise);
   - baseline records (other than the "_meta" header) carry the
     deterministic quantities the regression gate diffs: streams, work,
     rows, bytes as non-negative ints, transfer_ms as a number.

   Exit status 0 on success, 1 with a diagnostic otherwise.  Used by
   check_trace.sh under `dune runtest` to guard the CLI's --trace-json
   output against encoder drift, and runnable by hand on bench
   --obs-jsonl files and on BENCH_silkroute.json. *)

let fail line_no fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "check_jsonl: line %d: %s\n" line_no msg;
      exit 1)
    fmt

let str_member key j =
  match Obs.Json.member key j with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let int_member key j =
  match Obs.Json.member key j with
  | Some (Obs.Json.Int n) -> Some n
  | _ -> None

let num_member key j =
  match Obs.Json.member key j with
  | Some (Obs.Json.Float x) -> Some x
  | Some (Obs.Json.Int n) -> Some (float_of_int n)
  | _ -> None

let require_int line_no what key j =
  match int_member key j with
  | Some n -> n
  | None -> fail line_no "%s: missing int %S" what key

let require_nonneg_int line_no what key j =
  let n = require_int line_no what key j in
  if n < 0 then fail line_no "%s: %S is negative (%d)" what key n;
  n

(* start-order state per experiment tag ("" when untagged) *)
let last_start : (string, int) Hashtbl.t = Hashtbl.create 4

(* span ids already seen, per experiment tag.  Because spans are logged
   in global start order (one append lock, clock sampled inside it —
   true even when a run fans sub-queries out over several domains), a
   span's parent must appear strictly before it in the file. *)
let seen_ids : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 4

let check_span line_no j =
  let exp = Option.value ~default:"" (str_member "experiment" j) in
  let start = require_int line_no "span" "start_ns" j in
  (match Hashtbl.find_opt last_start exp with
  | None ->
      if start <> 0 then
        fail line_no
          "span: first start_ns of experiment %S is %d, want 0 (starts must \
           be rebased to the trace's first span)"
          exp start
  | Some prev ->
      if start < prev then
        fail line_no "span: start_ns %d < previous %d (not in start order)"
          start prev);
  Hashtbl.replace last_start exp start;
  let ids =
    match Hashtbl.find_opt seen_ids exp with
    | Some ids -> ids
    | None ->
        let ids = Hashtbl.create 64 in
        Hashtbl.replace seen_ids exp ids;
        ids
  in
  let id = require_nonneg_int line_no "span" "id" j in
  if Hashtbl.mem ids id then
    fail line_no "span: duplicate id %d in experiment %S" id exp;
  (match Obs.Json.member "parent" j with
  | Some Obs.Json.Null -> ()
  | Some (Obs.Json.Int p) ->
      if not (Hashtbl.mem ids p) then
        fail line_no
          "span: id %d names parent %d not seen earlier in experiment %S \
           (parents must be logged before their children)"
          id p exp
  | Some _ -> fail line_no "span: \"parent\" is neither null nor an int"
  | None -> fail line_no "span: missing \"parent\"");
  Hashtbl.replace ids id ();
  (match num_member "dur_ms" j with
  | Some _ -> ()
  | None -> fail line_no "span: missing number \"dur_ms\"");
  match str_member "name" j with
  | Some _ -> ()
  | None -> fail line_no "span: missing string \"name\""

(* event-order state per experiment tag ("" when untagged) *)
let last_event_ts : (string, int) Hashtbl.t = Hashtbl.create 4
let known_levels = [ "debug"; "info"; "warn"; "error" ]

let check_event line_no j =
  let exp = Option.value ~default:"" (str_member "experiment" j) in
  let ts = require_nonneg_int line_no "event" "ts_ns" j in
  (match Hashtbl.find_opt last_event_ts exp with
  | Some prev when ts < prev ->
      fail line_no "event: ts_ns %d < previous %d (not in emit order)" ts prev
  | _ -> ());
  Hashtbl.replace last_event_ts exp ts;
  ignore (require_nonneg_int line_no "event" "seq" j);
  (match str_member "level" j with
  | Some l when List.mem l known_levels -> ()
  | Some l -> fail line_no "event: unknown level %S" l
  | None -> fail line_no "event: missing string \"level\"");
  (match str_member "name" j with
  | Some "" | None -> fail line_no "event: missing or empty \"name\""
  | Some _ -> ());
  match Obs.Json.member "attrs" j with
  | Some (Obs.Json.Obj _) -> ()
  | Some _ -> fail line_no "event: \"attrs\" is not an object"
  | None -> fail line_no "event: missing object \"attrs\""

let check_profile line_no j =
  (match str_member "path" j with
  | Some "" | None -> fail line_no "profile: missing or empty \"path\""
  | Some _ -> ());
  let calls = require_int line_no "profile" "calls" j in
  if calls < 1 then fail line_no "profile: calls %d < 1" calls;
  let self_ms =
    match num_member "self_ms" j with
    | Some x -> x
    | None -> fail line_no "profile: missing number \"self_ms\""
  in
  let total_ms =
    match num_member "total_ms" j with
    | Some x -> x
    | None -> fail line_no "profile: missing number \"total_ms\""
  in
  if self_ms < 0.0 then fail line_no "profile: self_ms %g < 0" self_ms;
  if self_ms > total_ms +. 1e-9 then
    fail line_no "profile: self_ms %g > total_ms %g" self_ms total_ms

let check_baseline line_no j =
  match str_member "experiment" j with
  | None -> fail line_no "baseline: missing string \"experiment\""
  | Some "_meta" ->
      ignore (require_int line_no "baseline meta" "version" j)
  | Some _ ->
      List.iter
        (fun key -> ignore (require_nonneg_int line_no "baseline" key j))
        [ "streams"; "work"; "rows"; "bytes" ];
      if num_member "transfer_ms" j = None then
        fail line_no "baseline: missing number \"transfer_ms\""

let () =
  if Array.length Sys.argv <> 2 then begin
    prerr_endline "usage: check_jsonl FILE.jsonl";
    exit 2
  end;
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr n;
         match Obs.Json.parse line with
         | exception Obs.Json.Parse_error msg -> fail !n "%s" msg
         | Obs.Json.Obj _ as j -> (
             match Obs.Json.member "type" j with
             | Some (Obs.Json.String "span") -> check_span !n j
             | Some (Obs.Json.String "event") -> check_event !n j
             | Some (Obs.Json.String "profile") -> check_profile !n j
             | Some (Obs.Json.String "metric") -> ()
             | Some (Obs.Json.String "baseline") -> check_baseline !n j
             | Some _ | None -> fail !n "missing or bad \"type\" field")
         | _ -> fail !n "not a JSON object"
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !n = 0 then begin
    Printf.eprintf "check_jsonl: %s: no JSONL lines\n" path;
    exit 1
  end;
  Printf.printf "check_jsonl: %d valid line(s) in %s\n" !n path
