(* Validate a JSON-Lines trace file: every non-empty line must parse as
   a JSON object with a "type" field, and there must be at least one.
   Exit status 0 on success, 1 with a diagnostic otherwise.  Used by
   check_trace.sh under `dune runtest` to guard the CLI's --trace-json
   output against encoder drift. *)

let fail line_no fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "check_jsonl: line %d: %s\n" line_no msg;
      exit 1)
    fmt

let () =
  if Array.length Sys.argv <> 2 then begin
    prerr_endline "usage: check_jsonl FILE.jsonl";
    exit 2
  end;
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr n;
         match Obs.Json.parse line with
         | exception Obs.Json.Parse_error msg -> fail !n "%s" msg
         | Obs.Json.Obj _ as j -> (
             match Obs.Json.member "type" j with
             | Some (Obs.Json.String ("span" | "metric")) -> ()
             | Some _ | None -> fail !n "missing or bad \"type\" field")
         | _ -> fail !n "not a JSON object"
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !n = 0 then begin
    Printf.eprintf "check_jsonl: %s: no JSONL lines\n" path;
    exit 1
  end;
  Printf.printf "check_jsonl: %d valid line(s) in %s\n" !n path
