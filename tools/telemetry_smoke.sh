#!/bin/sh
# Telemetry smoke: start `serve` with the whole telemetry surface on —
# tracing, wire metrics, slow-query log, SLO monitor — drive a real
# workload over the socket, and check the story end to end:
#
#   1. `monitor --raw` (the M request) must return a parseable
#      exposition before and after the workload, with monotone
#      counters, ordered latency quantiles and sane cache ratios
#      (tools/check_telemetry.ml does the parsing).
#   2. `monitor --once` must render its human frame from the same
#      scrape, plus the H health line.
#   3. With a 0.001ms threshold every query is slow: the slow log must
#      hold valid JSONL records carrying trace ids and stage
#      breakdowns that match the advertised written counter.
#   4. A second server with an absurd 0.001ms p99 target must breach:
#      the exposition's slo burn series and the H health line both
#      report it (the slo.burn event emission itself is pinned by the
#      unit suite).
#
# Run from dune (see tools/dune) or by hand:
#   sh tools/telemetry_smoke.sh _build/default/bin/silkroute_cli.exe \
#       _build/default/tools/check_telemetry.exe
set -eu

case $1 in */*) cli=$1 ;; *) cli=./$1 ;; esac
case $2 in */*) checker=$2 ;; *) checker=./$2 ;; esac

tmp=$(mktemp -d "${TMPDIR:-/tmp}/silkroute_telemetry.XXXXXX")
sock="$tmp/server.sock"
slowlog="$tmp/slow.jsonl"
threshold_ms=0.001
server_pid=""
cleanup () {
  [ -n "$server_pid" ] && kill "$server_pid" 2> /dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

scale="--scale 0.1"

# shellcheck disable=SC2086
"$cli" serve $scale --socket "$sock" --parallel 2 \
    --telemetry --trace-sample 2 \
    --slow-ms "$threshold_ms" --slow-log "$slowlog" \
    --slo-target-ms 250 \
    > "$tmp/serve.out" 2> "$tmp/serve.err" &
server_pid=$!

i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then
    echo "telemetry-smoke FAIL: socket never appeared" >&2
    cat "$tmp/serve.err" >&2 || true
    exit 1
  fi
  kill -0 "$server_pid" 2> /dev/null || {
    echo "telemetry-smoke FAIL: server exited before binding" >&2
    cat "$tmp/serve.err" >&2 || true
    exit 1
  }
  sleep 0.1
done

"$cli" monitor --socket "$sock" --raw > "$tmp/scrape1.prom" 2> "$tmp/monitor.err" || {
  echo "telemetry-smoke FAIL: first metrics scrape failed" >&2
  cat "$tmp/monitor.err" >&2 || true
  exit 1
}

# shellcheck disable=SC2086
"$cli" workload $scale --socket "$sock" > "$tmp/workload.out" 2>&1 || {
  echo "telemetry-smoke FAIL: workload pass failed" >&2
  cat "$tmp/workload.out" >&2 || true
  exit 1
}
grep -q '^identity: mismatches=0' "$tmp/workload.out" || {
  echo "telemetry-smoke FAIL: telemetry changed the served bytes" >&2
  cat "$tmp/workload.out" >&2
  exit 1
}
echo "telemetry-smoke: workload byte-identical with full telemetry on"

"$cli" monitor --socket "$sock" --raw > "$tmp/scrape2.prom" 2>> "$tmp/monitor.err" || {
  echo "telemetry-smoke FAIL: second metrics scrape failed" >&2
  cat "$tmp/monitor.err" >&2 || true
  exit 1
}

"$cli" monitor --socket "$sock" --once > "$tmp/frame.out" 2>> "$tmp/monitor.err" || {
  echo "telemetry-smoke FAIL: monitor --once failed" >&2
  cat "$tmp/monitor.err" >&2 || true
  exit 1
}
for prefix in 'requests:' 'cache:' 'latency:' 'slo:' 'backlog:' 'health:'; do
  grep -q "^$prefix" "$tmp/frame.out" || {
    echo "telemetry-smoke FAIL: monitor frame is missing its '$prefix' line" >&2
    cat "$tmp/frame.out" >&2
    exit 1
  }
done
grep -q 'status=ok' "$tmp/frame.out" || {
  echo "telemetry-smoke FAIL: health line does not say status=ok" >&2
  cat "$tmp/frame.out" >&2
  exit 1
}
echo "telemetry-smoke: monitor frame + health line render"

# give the slow-log writer thread a moment to drain the queue
sleep 0.3

"$checker" "$tmp/scrape1.prom" "$tmp/scrape2.prom" "$slowlog" "$threshold_ms" || {
  echo "telemetry-smoke FAIL: exposition/slow-log validation failed" >&2
  exit 1
}

# shellcheck disable=SC2086
"$cli" workload $scale --socket "$sock" --shutdown > "$tmp/shutdown.out" 2>&1 || {
  echo "telemetry-smoke FAIL: shutdown pass failed" >&2
  cat "$tmp/shutdown.out" >&2 || true
  exit 1
}
i=0
while kill -0 "$server_pid" 2> /dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "telemetry-smoke FAIL: server still running after Shutdown" >&2
    exit 1
  fi
  sleep 0.1
done
server_pid=""

# --- induced SLO burn: a target no real query can meet ---------------------
sock2="$tmp/burn.sock"
# shellcheck disable=SC2086
"$cli" serve $scale --socket "$sock2" --telemetry --slo-target-ms 0.001 \
    > "$tmp/burn_serve.out" 2> "$tmp/burn_serve.err" &
server_pid=$!
i=0
while [ ! -S "$sock2" ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then
    echo "telemetry-smoke FAIL: burn-phase socket never appeared" >&2
    cat "$tmp/burn_serve.err" >&2 || true
    exit 1
  fi
  kill -0 "$server_pid" 2> /dev/null || {
    echo "telemetry-smoke FAIL: burn-phase server exited before binding" >&2
    cat "$tmp/burn_serve.err" >&2 || true
    exit 1
  }
  sleep 0.1
done
# shellcheck disable=SC2086
"$cli" workload $scale --socket "$sock2" > "$tmp/burn_workload.out" 2>&1 || {
  echo "telemetry-smoke FAIL: burn-phase workload failed" >&2
  cat "$tmp/burn_workload.out" >&2 || true
  exit 1
}
"$cli" monitor --socket "$sock2" --raw > "$tmp/burn.prom" 2>> "$tmp/monitor.err"
grep -q '^silkroute_slo_breached 1$' "$tmp/burn.prom" || {
  echo "telemetry-smoke FAIL: impossible SLO target did not breach" >&2
  grep '^silkroute_slo' "$tmp/burn.prom" >&2 || true
  exit 1
}
"$cli" monitor --socket "$sock2" --once > "$tmp/burn_frame.out" 2>> "$tmp/monitor.err"
grep -q 'slo_breached=true' "$tmp/burn_frame.out" || {
  echo "telemetry-smoke FAIL: health line does not report the breach" >&2
  cat "$tmp/burn_frame.out" >&2
  exit 1
}
echo "telemetry-smoke: induced SLO burn visible in exposition + health"
# shellcheck disable=SC2086
"$cli" workload $scale --socket "$sock2" --shutdown > /dev/null 2>&1 || true
i=0
while kill -0 "$server_pid" 2> /dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "telemetry-smoke FAIL: burn-phase server still running after Shutdown" >&2
    exit 1
  fi
  sleep 0.1
done
server_pid=""

echo "telemetry-smoke OK"
