#!/bin/sh
# Parallel-execution smoke: drive the CLI's --parallel fan-out and hold
# it to the sequential paths' output and accounting.
#
#   1. Each execution mode (materialized, streaming, resilient with a
#      0.3 fault rate) must produce byte-identical XML *and* identical
#      stderr accounting (streams/tuples/work/transfer; for resilient
#      runs also the full resilience counter line) at --parallel 4 as
#      at --parallel 1.
#   2. A repeated resilient parallel run must reproduce its counters
#      exactly (determinism under domains > 1, not just stability).
#   3. A traced run under --parallel 2 must emit JSONL that passes
#      check_jsonl — including its span id/parent ordering checks, which
#      multi-domain interleaving would break without the obs locks.
#
# Run from dune (see tools/dune) or by hand:
#   sh tools/parallel_smoke.sh _build/default/bin/silkroute_cli.exe \
#       _build/default/tools/check_jsonl.exe
set -eu

case $1 in */*) cli=$1 ;; *) cli=./$1 ;; esac
case $2 in */*) check=$2 ;; *) check=./$2 ;; esac

tmp=$(mktemp -d "${TMPDIR:-/tmp}/silkroute_parallel.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

base="run --query q1 --scale 0.1 --strategy fully-partitioned"

run_mode () { # $1 label, $2 extra flags
  label=$1; flags=$2
  # shellcheck disable=SC2086
  "$cli" $base $flags --parallel 1 \
      > "$tmp/$label.seq.xml" 2> "$tmp/$label.seq.err"
  # shellcheck disable=SC2086
  "$cli" $base $flags --parallel 4 \
      > "$tmp/$label.par.xml" 2> "$tmp/$label.par.err"
  cmp -s "$tmp/$label.seq.xml" "$tmp/$label.par.xml" || {
    echo "parallel-smoke FAIL: $label XML differs at --parallel 4" >&2
    exit 1
  }
  # accounting lines (work/tuples/transfer, resilience counters) live in
  # the [...] stderr summaries; they must match to the byte
  grep '^\[' "$tmp/$label.seq.err" > "$tmp/$label.seq.sum"
  grep '^\[' "$tmp/$label.par.err" > "$tmp/$label.par.sum"
  cmp -s "$tmp/$label.seq.sum" "$tmp/$label.par.sum" || {
    echo "parallel-smoke FAIL: $label accounting differs at --parallel 4" >&2
    diff "$tmp/$label.seq.sum" "$tmp/$label.par.sum" >&2 || true
    exit 1
  }
  echo "parallel-smoke: $label ok ($(wc -c < "$tmp/$label.seq.xml") bytes)"
}

run_mode materialized ""
run_mode streaming "--stream"
run_mode resilient "--resilient --fault-rate 0.3 --retries 6"

# determinism: a second parallel resilient run reproduces the counters
"$cli" $base --resilient --fault-rate 0.3 --retries 6 --parallel 4 \
    > /dev/null 2> "$tmp/resilient.par2.err"
grep '^\[' "$tmp/resilient.par2.err" > "$tmp/resilient.par2.sum"
cmp -s "$tmp/resilient.par.sum" "$tmp/resilient.par2.sum" || {
  echo "parallel-smoke FAIL: resilient counters differ between two --parallel 4 runs" >&2
  diff "$tmp/resilient.par.sum" "$tmp/resilient.par2.sum" >&2 || true
  exit 1
}
echo "parallel-smoke: resilient counters reproducible under --parallel 4"

# traced parallel run: spans from 2 domains must still form a valid,
# start-ordered, parent-before-child JSONL trace
"$cli" $base --parallel 2 --trace-json "$tmp/trace.jsonl" > /dev/null 2>&1
"$check" "$tmp/trace.jsonl"

echo "parallel-smoke OK"
