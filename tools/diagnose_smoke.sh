#!/bin/sh
# Diagnostics smoke: the three user-facing surfaces of the diagnostics
# engine must actually fire.
#
#   1. A run that blows its work budget dumps the flight recorder
#      (reason plan-timeout) to stderr before failing.
#   2. --trace-chrome writes valid Chrome trace-event JSON with at
#      least one complete event per pipeline stage.
#   3. `diagnose --skew-stats` flags the deliberately mis-statted
#      relation as a q-error misestimate finding.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== flight recorder dumps on plan timeout"
err="$tmp/timeout.err"
dune exec bin/silkroute_cli.exe -- run -q q1 --scale 0.05 --budget 50 \
  --diagnose >/dev/null 2>"$err" || true
for needle in "FLIGHT RECORDER" "plan-timeout" "planner.cache"; do
  if ! grep -q "$needle" "$err"; then
    echo "FAIL: timeout stderr lacks '$needle'" >&2
    exit 1
  fi
done

echo "== chrome trace is valid and covers the pipeline stages"
trace="$tmp/trace.json"
dune exec bin/silkroute_cli.exe -- run -q q1 --scale 0.05 \
  --trace-chrome "$trace" >/dev/null 2>&1
dune exec tools/check_chrometrace.exe -- "$trace" \
  middleware.prepare middleware.plan middleware.execute execute.stream \
  exec.query

echo "== diagnose flags a mis-statted relation"
report="$tmp/report.txt"
dune exec bin/silkroute_cli.exe -- diagnose -q q1 --scale 0.05 \
  --skew-stats Supplier=64 >"$report" 2>&1
for needle in "PLAN DIAGNOSTICS" "MISESTIMATES" "q-error"; do
  if ! grep -q "$needle" "$report"; then
    echo "FAIL: diagnose report lacks '$needle'" >&2
    exit 1
  fi
done
# the skewed Supplier scan must surface as a finding with q-error 64
if ! grep -E "scan .*64\.00" "$report" >/dev/null; then
  echo "FAIL: diagnose report does not flag the skewed scan at q-error 64" >&2
  exit 1
fi
# an unskewed catalog must not produce the same finding
dune exec bin/silkroute_cli.exe -- diagnose -q q1 --scale 0.05 \
  >"$report" 2>&1
if grep -E "scan .*64\.00" "$report" >/dev/null; then
  echo "FAIL: unskewed diagnose still reports the q-error 64 scan" >&2
  exit 1
fi

echo "== diagnose smoke OK"
