#!/bin/sh
# Vectorized-execution smoke: drive the CLI's --batch path and hold it
# to the tuple path's output and accounting.
#
#   1. Each execution mode (materialized, streaming, resilient with a
#      0.3 fault rate) must produce byte-identical XML *and* identical
#      stderr accounting (streams/tuples/work/transfer; for resilient
#      runs also the full resilience counter line) under --batch — at
#      the default batch size and at the degenerate --batch-size 7 —
#      as without it.
#   2. A traced --batch run must emit JSONL that passes check_jsonl and
#      contains the executor.batch span (the vectorized interpreter
#      really ran; the byte-identity above is not vacuous).
#
# Run from dune (see tools/dune) or by hand:
#   sh tools/batch_smoke.sh _build/default/bin/silkroute_cli.exe \
#       _build/default/tools/check_jsonl.exe
set -eu

case $1 in */*) cli=$1 ;; *) cli=./$1 ;; esac
case $2 in */*) check=$2 ;; *) check=./$2 ;; esac

tmp=$(mktemp -d "${TMPDIR:-/tmp}/silkroute_batch.XXXXXX")
trap 'rm -rf "$tmp"' EXIT INT TERM

base="run --query q1 --scale 0.1 --strategy fully-partitioned"

run_mode () { # $1 label, $2 extra flags
  label=$1; flags=$2
  # shellcheck disable=SC2086
  "$cli" $base $flags \
      > "$tmp/$label.tup.xml" 2> "$tmp/$label.tup.err"
  grep '^\[' "$tmp/$label.tup.err" > "$tmp/$label.tup.sum"
  for bflags in "--batch" "--batch-size 7"; do
    # shellcheck disable=SC2086
    "$cli" $base $flags $bflags \
        > "$tmp/$label.bat.xml" 2> "$tmp/$label.bat.err"
    cmp -s "$tmp/$label.tup.xml" "$tmp/$label.bat.xml" || {
      echo "batch-smoke FAIL: $label XML differs under $bflags" >&2
      exit 1
    }
    # accounting lines (work/tuples/transfer, resilience counters) live
    # in the [...] stderr summaries; they must match to the byte
    grep '^\[' "$tmp/$label.bat.err" > "$tmp/$label.bat.sum"
    cmp -s "$tmp/$label.tup.sum" "$tmp/$label.bat.sum" || {
      echo "batch-smoke FAIL: $label accounting differs under $bflags" >&2
      diff "$tmp/$label.tup.sum" "$tmp/$label.bat.sum" >&2 || true
      exit 1
    }
  done
  echo "batch-smoke: $label ok ($(wc -c < "$tmp/$label.tup.xml") bytes)"
}

run_mode materialized ""
run_mode streaming "--stream"
run_mode resilient "--resilient --fault-rate 0.3 --retries 6"

# traced batch run: valid JSONL trace that actually went through the
# vectorized interpreter
"$cli" $base --batch --trace-json "$tmp/trace.jsonl" > /dev/null 2>&1
"$check" "$tmp/trace.jsonl"
grep -q '"executor.batch"' "$tmp/trace.jsonl" || {
  echo "batch-smoke FAIL: no executor.batch span in traced --batch run" >&2
  exit 1
}

echo "batch-smoke OK"
