#!/bin/sh
# Explain smoke: `run --explain` on q1 and q2 must print, for every
# stream, the logical and physical trees — including at least one hash
# join and at least one predicate the rewrite layer pushed down.  Guards
# the explain surface (and the lowering/rewrite markers it exposes)
# against silent regression.
set -eu

cd "$(dirname "$0")/.."

for q in q1 q2; do
  echo "== run --explain --query $q"
  out=$(dune exec bin/silkroute_cli.exe -- run --query "$q" --scale 0.1 \
    --explain 2>&1 >/dev/null)
  for needle in "logical plan:" "physical plan:" "hash-join" \
    "pushdown<-where"; do
    if ! printf '%s' "$out" | grep -q "$needle"; then
      echo "FAIL: --explain output for $q lacks '$needle'" >&2
      exit 1
    fi
  done
  # estimates and actuals are both filled in after a run
  if ! printf '%s' "$out" | grep -Eq "rows est=[0-9]+ act=[0-9]+"; then
    echo "FAIL: --explain output for $q lacks est/act row figures" >&2
    exit 1
  fi
done

echo "== explain smoke OK"
