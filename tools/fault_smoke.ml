(* Fault-injection smoke check (tools/ci.sh): run Query 1's unified plan
   through the resilient backend with a fixed seed, a nonzero fault rate
   and a work budget small enough that the unified sub-query must
   degrade through the plan lattice, then assert that

   - the merged XML is byte-identical to the fault-free materialized run,
   - retries fired but stayed within the per-submission bound,
   - degradation fired (the budget guarantees at least the initial split),
   - a second identical run reproduces the resilience counters exactly
     (determinism of the seeded fault/jitter stream). *)

module R = Relational
module S = Silkroute

let fault_rate = 0.3
let fault_seed = 14
let max_retries = 8

let () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.3) in
  let p = S.Middleware.prepare_text db S.Queries.query1_text in
  let unified = S.Partition.unified p.S.Middleware.tree in
  let baseline = S.Middleware.execute p unified in
  let baseline_xml = S.Middleware.xml_string_of p baseline in
  let fully = S.Middleware.execute p (S.Partition.fully_partitioned p.S.Middleware.tree) in
  let max_node_work =
    List.fold_left
      (fun acc se -> max acc se.S.Middleware.se_stats.R.Executor.work)
      0 fully.S.Middleware.per_stream
  in
  let budget = 2 * max_node_work in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        prerr_endline ("fault-smoke FAIL: " ^ s);
        exit 1)
      fmt
  in
  if baseline.S.Middleware.work <= budget then
    fail "test not meaningful: unified work %d fits the budget %d"
      baseline.S.Middleware.work budget;
  let run () =
    let backend =
      R.Backend.create
        ~faults:(R.Backend.faults ~seed:fault_seed fault_rate)
        ~retry:{ R.Backend.default_retry with R.Backend.max_retries }
        ~budget db
    in
    let r = S.Middleware.execute_resilient ~backend p unified in
    let xml = S.Middleware.xml_string_of_streaming p r.S.Middleware.r_streaming in
    (xml, r.S.Middleware.r_resilience)
  in
  let xml, res = run () in
  Printf.printf
    "fault-smoke: rate %.2f seed %d budget %d -> %d submits, %d attempts, %d \
     retries, %d faults, %d timeouts, %d degraded\n"
    fault_rate fault_seed budget res.S.Middleware.r_submits
    res.S.Middleware.r_attempts res.S.Middleware.r_retries
    res.S.Middleware.r_faults res.S.Middleware.r_timeouts
    res.S.Middleware.r_degraded;
  if xml <> baseline_xml then
    fail "resilient XML differs from the fault-free run (%d vs %d bytes)"
      (String.length xml)
      (String.length baseline_xml);
  if res.S.Middleware.r_degraded = 0 then
    fail "budget %d did not force any degradation" budget;
  if res.S.Middleware.r_retries = 0 then
    fail "fault rate %.2f with seed %d produced no retries" fault_rate
      fault_seed;
  if res.S.Middleware.r_attempts > res.S.Middleware.r_submits * (1 + max_retries)
  then
    fail "attempts %d exceed the retry bound (%d submits x %d)"
      res.S.Middleware.r_attempts res.S.Middleware.r_submits (1 + max_retries);
  let xml2, res2 = run () in
  if xml2 <> xml || res2 <> res then
    fail "second run with the same seed diverged (determinism)";
  print_endline
    "fault-smoke OK: byte-identical output under faults, retries bounded, \
     deterministic"
