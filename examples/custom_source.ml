(* Custom source description: a non-TPC-H schema (a bookstore) showing
   how keys, NOT NULL foreign keys and declared inclusion dependencies —
   the paper's "source description" — drive edge labeling and therefore
   reduction and plan quality.

   Run with:  dune exec examples/custom_source.exe *)

module R = Relational
module S = Silkroute

let build_db () =
  let db = R.Database.create () in
  R.Database.add_table db
    (R.Schema.table "Publisher" ~key:[ "pubid" ]
       [ R.Schema.column "pubid" R.Value.TInt;
         R.Schema.column "name" R.Value.TString;
         R.Schema.column "city" R.Value.TString ]);
  R.Database.add_table db
    (R.Schema.table "Book" ~key:[ "bid" ]
       ~foreign_keys:
         [ { R.Schema.fk_cols = [ "pubid" ]; ref_table = "Publisher";
             ref_cols = [ "pubid" ] } ]
       [ R.Schema.column "bid" R.Value.TInt;
         R.Schema.column "pubid" R.Value.TInt;
         R.Schema.column "title" R.Value.TString;
         R.Schema.column "year" R.Value.TInt ]);
  R.Database.add_table db
    (R.Schema.table "Review" ~key:[ "rid" ]
       ~foreign_keys:
         [ { R.Schema.fk_cols = [ "bid" ]; ref_table = "Book"; ref_cols = [ "bid" ] } ]
       [ R.Schema.column "rid" R.Value.TInt;
         R.Schema.column "bid" R.Value.TInt;
         R.Schema.column "stars" R.Value.TInt ]);
  let i n = R.Value.Int n and s x = R.Value.String x in
  R.Database.load db "Publisher"
    [ [| i 1; s "ACM Press"; s "New York" |];
      [| i 2; s "North-Holland"; s "Amsterdam" |] ];
  R.Database.load db "Book"
    [ [| i 10; i 1; s "Foundations of Databases"; i 1995 |];
      [| i 11; i 1; s "The Art of SQL"; i 2001 |];
      [| i 12; i 2; s "Handbook of Logic"; i 1989 |] ];
  R.Database.load db "Review"
    [ [| i 100; i 10; i 5 |]; [| i 101; i 10; i 4 |]; [| i 102; i 12; i 5 |] ];
  db

let view_text =
  {|view catalog
    { from Book $b construct
        <book>
          <title>$b.title</title>
          { from Publisher $p
            where $b.pubid = $p.pubid
            construct <publisher>$p.name</publisher> }
          { from Review $r
            where $b.bid = $r.bid
            construct <review>$r.stars</review> }
        </book> }|}

let print_labels (p : S.Middleware.prepared) =
  print_endline (S.Label.to_string p.S.Middleware.tree p.S.Middleware.labels)

let () =
  let db = build_db () in
  print_endline "=== without any declared total participation ===";
  let p = S.Middleware.prepare_text db view_text in
  print_labels p;
  print_endline
    "book->publisher is '1' (NOT NULL FK onto the Publisher key: C1 and C2\n\
     both hold), so reduction folds the publisher into the book query;\n\
     book->review is '*' (a book may have no reviews).";

  print_endline "\n=== declaring 'every book has at least one review' ===";
  R.Database.declare_inclusion db
    { R.Schema.inc_table = "Book"; inc_cols = [ "bid" ];
      inc_ref_table = "Review"; inc_ref_cols = [ "bid" ] };
  let p2 = S.Middleware.prepare_text db view_text in
  print_labels p2;
  print_endline
    "book->review became '+': C2 now holds via the declared inclusion\n\
     dependency, but a book can still have many reviews (no C1).";
  print_endline
    "(Note: the declared inclusion is a promise about the data; here it is\n\
     false — book 11 has no reviews — which shows why the source\n\
     description must be curated.  Labels affect only reduction, never\n\
     correctness of '*'-style plans.)";

  print_endline "\n=== materialized view ===";
  let doc, _ = S.Middleware.materialize db (S.Rxl_parser.parse view_text)
      S.Middleware.Unified in
  print_string (Xmlkit.Serialize.to_pretty_string doc);

  (* The DTD this view publishes against. *)
  let dtd =
    Xmlkit.Dtd.create ~root:"catalog"
      [
        { Xmlkit.Dtd.el_name = "catalog";
          el_content = Xmlkit.Dtd.Children [ ("book", Xmlkit.Dtd.Star) ] };
        { el_name = "book";
          el_content =
            Xmlkit.Dtd.Children
              [ ("title", Xmlkit.Dtd.One); ("publisher", Xmlkit.Dtd.One);
                ("review", Xmlkit.Dtd.Star) ] };
        { el_name = "title"; el_content = Xmlkit.Dtd.Pcdata };
        { el_name = "publisher"; el_content = Xmlkit.Dtd.Pcdata };
        { el_name = "review"; el_content = Xmlkit.Dtd.Pcdata };
      ]
  in
  Printf.printf "DTD-valid: %b\n" (Xmlkit.Validate.is_valid dtd doc)
