(* TPC-H export: materialize the paper's Query 1 view of a generated
   TPC-H database under all three strategies — fully partitioned,
   unified, and greedy — and check they produce identical XML.

   This is the paper's data-export scenario: shipping the whole database
   as one XML document whose shape is fixed by a DTD agreed between
   business partners.

   Run with:  dune exec examples/tpch_export.exe [scale] *)

module R = Relational
module S = Silkroute

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.5
  in
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  Printf.printf "TPC-H database: scale %.2f, %d rows, %d KB\n%!" scale
    (R.Database.total_rows db)
    (R.Database.total_bytes db / 1024);

  let p = S.Middleware.prepare_text db S.Queries.query1_text in
  Printf.printf "\nview tree (%d nodes, %d edges):\n%s\n"
    (S.View_tree.node_count p.S.Middleware.tree)
    (S.View_tree.edge_count p.S.Middleware.tree)
    (S.View_tree.to_string p.S.Middleware.tree);
  Printf.printf "edge labels:\n%s\n\n"
    (S.Label.to_string p.S.Middleware.tree p.S.Middleware.labels);

  let run name strategy =
    let plan = S.Middleware.partition_of p strategy in
    let e = S.Middleware.execute ~reduce:true p plan in
    let doc = S.Middleware.document_of p e in
    Printf.printf
      "%-18s %2d streams  %8d work  %6d tuples  total %7.1f ms (sim)\n%!" name
      (S.Partition.stream_count plan) e.S.Middleware.work e.S.Middleware.tuples
      ((float_of_int e.S.Middleware.work /. 50.0) +. e.S.Middleware.transfer_ms);
    doc
  in
  let d1 = run "fully partitioned" S.Middleware.Fully_partitioned in
  let d2 = run "unified" S.Middleware.Unified in
  let d3 = run "greedy" (S.Middleware.Greedy S.Planner.default_params) in

  Printf.printf "\nall strategies agree: %b\n"
    (Xmlkit.Xml.equal d1 d2 && Xmlkit.Xml.equal d2 d3);
  Printf.printf "document: %d elements, %d bytes, DTD-valid: %b\n"
    (Xmlkit.Xml.count_elements d3)
    (Xmlkit.Serialize.byte_size d3)
    (Xmlkit.Validate.is_valid S.Queries.dtd_query1 d3);

  (* print the first supplier as a sample *)
  (match Xmlkit.Xml.children_named (Xmlkit.Xml.root d3) "supplier" with
  | first :: _ ->
      print_endline "\nfirst supplier element:";
      print_string (Xmlkit.Serialize.to_pretty_string (Xmlkit.Xml.document first))
  | [] -> ());

  (* downstream consumers extract fragments with the XPath subset *)
  Printf.printf "\nXPath over the materialized view:\n";
  Printf.printf "  //part           -> %d elements\n" (Xmlkit.Xpath.count d3 "//part");
  Printf.printf "  //order/customer -> %d elements\n"
    (Xmlkit.Xpath.count d3 "//order/customer");
  (match Xmlkit.Xpath.select_text d3 "/suppliers/supplier[1]/name" with
  | [ name ] ->
      Printf.printf "  parts of %S     -> %d\n" name
        (Xmlkit.Xpath.count d3
           (Printf.sprintf "//supplier[name='%s']/part" name))
  | _ -> ())
