(* Quickstart: define a tiny relational database, write an RXL view,
   materialize the XML.

   Run with:  dune exec examples/quickstart.exe *)

module R = Relational
module S = Silkroute

let () =
  (* 1. A database: two tables with a key/foreign-key relationship. *)
  let db = R.Database.create () in
  R.Database.add_table db
    (R.Schema.table "Team" ~key:[ "tid" ]
       [ R.Schema.column "tid" R.Value.TInt;
         R.Schema.column "name" R.Value.TString ]);
  R.Database.add_table db
    (R.Schema.table "Player" ~key:[ "pid" ]
       ~foreign_keys:
         [ { R.Schema.fk_cols = [ "tid" ]; ref_table = "Team"; ref_cols = [ "tid" ] } ]
       [ R.Schema.column "pid" R.Value.TInt;
         R.Schema.column "tid" R.Value.TInt;
         R.Schema.column "name" R.Value.TString;
         R.Schema.column "goals" R.Value.TInt ]);
  let i n = R.Value.Int n and s x = R.Value.String x in
  R.Database.load db "Team" [ [| i 1; s "Reds" |]; [| i 2; s "Blues" |]; [| i 3; s "Greens" |] ];
  R.Database.load db "Player"
    [ [| i 10; i 1; s "Ada"; i 7 |];
      [| i 11; i 1; s "Grace"; i 12 |];
      [| i 12; i 2; s "Edsger"; i 3 |] ];

  (* 2. An RXL view: nested structure with a one-to-many block.  Note the
     Greens have no players — the outer-join semantics keeps them. *)
  let view_text =
    {|view league
      { from Team $t construct
          <team>
            <name>$t.name</name>
            { from Player $p
              where $t.tid = $p.tid
              construct <player>$p.name</player> }
          </team> }|}
  in

  (* 3. Materialize with the greedy planner. *)
  let doc, execution =
    S.Middleware.materialize db (S.Rxl_parser.parse view_text)
      (S.Middleware.Greedy S.Planner.default_params)
  in
  print_endline "--- materialized XML ---";
  print_string (Xmlkit.Serialize.to_pretty_string doc);

  (* 4. Look under the hood: the SQL the middleware generated. *)
  print_endline "--- generated SQL ---";
  List.iter print_endline execution.S.Middleware.sql_texts;
  Printf.printf "--- %d tuple stream(s), %d tuples, %d bytes transferred ---\n"
    (List.length execution.S.Middleware.streams)
    execution.S.Middleware.tuples execution.S.Middleware.bytes
