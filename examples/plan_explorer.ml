(* Plan explorer: visualize what the planner chooses from — the view
   tree, its edge labels, reduction groups, and the SQL generated for a
   handful of contrasting partitions of the paper's Query 1.

   Run with:  dune exec examples/plan_explorer.exe *)

module R = Relational
module S = Silkroute

let show_plan db (p : S.Middleware.prepared) name mask ~reduce =
  let plan = S.Partition.of_mask p.S.Middleware.tree mask in
  Printf.printf "\n### %s — mask %d, %d stream(s), kept edges %s%s\n" name mask
    (S.Partition.stream_count plan)
    (S.Partition.to_string plan)
    (if reduce then " [with view-tree reduction]" else "");
  let opts =
    { S.Sql_gen.style = S.Sql_gen.Outer_join;
      labels = (if reduce then Some p.S.Middleware.labels else None) }
  in
  List.iteri
    (fun i (s : S.Sql_gen.stream) ->
      Printf.printf "\n-- stream %d (fragment rooted at %s, groups %s):\n" (i + 1)
        (S.View_tree.skolem_name
           (S.View_tree.node p.S.Middleware.tree s.S.Sql_gen.fragment.S.Partition.root)
             .S.View_tree.sfi)
        (S.Reduce.to_string p.S.Middleware.tree s.S.Sql_gen.groups);
      print_endline (R.Sql_print.to_pretty_string s.S.Sql_gen.query))
    (S.Sql_gen.streams db p.S.Middleware.tree plan opts)

let () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p = S.Middleware.prepare_text db S.Queries.query1_text in

  print_endline "=== Query 1 (paper Fig. 3) ===";
  print_endline S.Queries.query1_text;
  print_endline "=== view tree with datalog annotations (paper Fig. 6) ===";
  print_endline (S.View_tree.to_string p.S.Middleware.tree);
  print_endline "=== edge multiplicity labels (paper Sec. 3.5) ===";
  print_endline (S.Label.to_string p.S.Middleware.tree p.S.Middleware.labels);

  (* contrasting plans: the two defaults, the chain, and a good middle one *)
  show_plan db p "fully partitioned" 0 ~reduce:false;
  show_plan db p "unified (paper Sec. 3.4 shape)" 511 ~reduce:false;
  show_plan db p "unified, reduced (paper Fig. 11)" 511 ~reduce:true;

  (* what the greedy planner picks *)
  let oracle = R.Cost.oracle db in
  let result =
    S.Planner.gen_plan ~reduce:true db oracle p.S.Middleware.tree
      p.S.Middleware.labels S.Planner.default_params
  in
  Printf.printf "\n=== greedy planner (paper Fig. 17) ===\n%s\n"
    (S.Planner.to_string p.S.Middleware.tree result);
  let best = S.Planner.best_plan p.S.Middleware.tree result in
  show_plan db p "greedy best plan" (S.Partition.to_mask best) ~reduce:true
