(* Experiment harness entry point.

   With no arguments: run every experiment (each table and figure of the
   paper) and the bechamel micro-benchmarks.  With --experiment <id>:
   run one of table1 | sec2 | fig13 | fig14 | fig15 | fig18 | ranks |
   requests | ablation | micro. *)

let experiments =
  [
    ("table1", Experiments.table1);
    ("sec2", Experiments.sec2);
    ("fig13", Experiments.fig13);
    ("fig14", Experiments.fig14);
    ("fig15", Experiments.fig15);
    ("fig18", Experiments.fig18);
    ("ranks", Experiments.ranks);
    ("requests", Experiments.requests);
    ("ablation", Experiments.ablation);
    ("extra", Experiments.extra);
    ("micro", Micro.run);
  ]

let usage () =
  Printf.printf "usage: main.exe [--experiment <id>]\n  ids: %s | all\n"
    (String.concat " | " (List.map fst experiments));
  exit 1

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | [ _ ] ->
      Printf.printf
        "SilkRoute experiment harness — reproducing 'Efficient Evaluation of\n\
         XML Middle-ware Queries' (SIGMOD 2001). Simulated times are\n\
         deterministic (engine work units / %.0f per ms); see EXPERIMENTS.md.\n"
        Bench_common.work_per_ms;
      Experiments.all ();
      Micro.run ()
  | [ _; "--experiment"; id ] | [ _; id ] -> (
      match (if id = "all" then Some Experiments.all else List.assoc_opt id experiments) with
      | Some f -> f ()
      | None -> usage ())
  | _ -> usage ()
