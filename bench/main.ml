(* Experiment harness entry point.

   With no arguments: run every experiment (each table and figure of the
   paper) and the bechamel micro-benchmarks.  With --experiment <id>:
   run one of table1 | sec2 | fig13 | fig14 | fig15 | fig18 | ranks |
   requests | ablation | extra | pruning | resilience | micro.  With --obs-jsonl <file>: trace every
   experiment through lib/obs and append per-experiment JSONL records
   (spans + events + profile + metrics, tagged with the experiment id) to
   <file>.  With --trace-chrome <prefix>: also write one Chrome
   trace-event file <prefix>-<experiment>.json per experiment.

   Baseline gate (see bench/baseline.ml):
     --write-baseline [FILE]   measure the deterministic matrix and write it
     --check-baseline [FILE]   re-measure, print the delta table, exit
                               non-zero on drift outside tolerance
   FILE defaults to BENCH_silkroute.json at the repo root. *)

let experiments =
  [
    ("table1", Experiments.table1);
    ("sec2", Experiments.sec2);
    ("fig13", Experiments.fig13);
    ("fig14", Experiments.fig14);
    ("fig15", Experiments.fig15);
    ("fig18", Experiments.fig18);
    ("ranks", Experiments.ranks);
    ("requests", Experiments.requests);
    ("ablation", Experiments.ablation);
    ("extra", Experiments.extra);
    ("pruning", Experiments.pruning);
    ("calibration", Experiments.calibration);
    ("resilience", Experiments.resilience);
    ("scaling", Experiments.scaling);
    ("batching", Experiments.batching);
    ("serving", Serving.run);
    ("micro", Micro.run);
  ]

let usage () =
  Printf.printf
    "usage: main.exe [--experiment <id>] [--obs-jsonl <file>] [--trace-chrome <prefix>]\n\
    \       main.exe --write-baseline [file] | --check-baseline [file]\n\
    \  ids: %s | all\n"
    (String.concat " | " (List.map fst experiments));
  exit 1

let run_all () =
  List.iter (fun (id, f) -> Bench_common.record_experiment id f) experiments

type mode = Run | Write_baseline of string | Check_baseline of string

let () =
  let rec parse id jsonl chrome mode = function
    | [] -> (id, jsonl, chrome, mode)
    | "--experiment" :: x :: rest -> parse (Some x) jsonl chrome mode rest
    | "--obs-jsonl" :: f :: rest -> parse id (Some f) chrome mode rest
    | "--trace-chrome" :: f :: rest -> parse id jsonl (Some f) mode rest
    | "--write-baseline" :: f :: rest when String.length f > 0 && f.[0] <> '-'
      ->
        parse id jsonl chrome (Write_baseline f) rest
    | "--write-baseline" :: rest ->
        parse id jsonl chrome (Write_baseline Baseline.default_path) rest
    | "--check-baseline" :: f :: rest when String.length f > 0 && f.[0] <> '-'
      ->
        parse id jsonl chrome (Check_baseline f) rest
    | "--check-baseline" :: rest ->
        parse id jsonl chrome (Check_baseline Baseline.default_path) rest
    | [ x ] when id = None && String.length x > 0 && x.[0] <> '-' ->
        (Some x, jsonl, chrome, mode)
    | _ -> usage ()
  in
  let id, jsonl, chrome, mode =
    parse None None None Run (List.tl (Array.to_list Sys.argv))
  in
  match mode with
  | Write_baseline path -> Baseline.write path
  | Check_baseline path -> if not (Baseline.check path) then exit 1
  | Run ->
      (match jsonl with Some f -> Bench_common.enable_obs f | None -> ());
      (match chrome with Some f -> Bench_common.enable_chrome f | None -> ());
      (match id with
      | None ->
          Printf.printf
            "SilkRoute experiment harness — reproducing 'Efficient Evaluation of\n\
             XML Middle-ware Queries' (SIGMOD 2001). Simulated times are\n\
             deterministic (engine work units / %.0f per ms); see EXPERIMENTS.md.\n"
            Bench_common.work_per_ms;
          run_all ()
      | Some "all" -> run_all ()
      | Some id -> (
          match List.assoc_opt id experiments with
          | Some f -> Bench_common.record_experiment id f
          | None -> usage ()));
      Bench_common.finish_obs ()
