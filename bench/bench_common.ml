(* Shared infrastructure for the experiment harness: configurations,
   simulated-time calibration, sweep machinery, ASCII rendering. *)

module R = Relational
module S = Silkroute

(* Experimental configurations (paper Table 1).  The paper used a 1 MB
   database (Config A, exhaustive 512-plan runs) and a 100 MB database
   (Config B, greedy-planner runs).  We keep the same A:B shape at
   laptop-friendly absolute sizes. *)
type config = { cfg_name : string; scale : float; description : string }

let config_a = { cfg_name = "A'"; scale = 1.0; description = "small (exhaustive 512-plan sweeps)" }
let config_b = { cfg_name = "B'"; scale = 6.0; description = "large (greedy-planner runs)" }

(* Simulated milliseconds: the engine's deterministic work units divided
   by a fixed constant, so experiment output is reproducible across
   machines.  Wall-clock is also measured and reported in summaries. *)
let work_per_ms = 50.0

let sim_query_ms work = float_of_int work /. work_per_ms
let sim_total_ms work transfer = sim_query_ms work +. transfer

type measurement = {
  mask : int;
  streams : int;
  query_ms : float; (* simulated query-only time *)
  total_ms : float; (* simulated query + transfer *)
  wall_ms : float;
  timed_out : bool;
}

(* Execute one plan and measure. *)
let measure ?(style = S.Sql_gen.Outer_join) ?(reduce = false) ?(budget = 0)
    (p : S.Middleware.prepared) mask =
  let plan = S.Partition.of_mask p.S.Middleware.tree mask in
  let streams = S.Partition.stream_count plan in
  try
    let e = S.Middleware.execute ~style ~reduce ~budget p plan in
    {
      mask;
      streams;
      query_ms = sim_query_ms e.S.Middleware.work;
      total_ms = sim_total_ms e.S.Middleware.work e.S.Middleware.transfer_ms;
      wall_ms = e.S.Middleware.query_wall_ms;
      timed_out = false;
    }
  with S.Middleware.Plan_timeout _ ->
    { mask; streams; query_ms = infinity; total_ms = infinity; wall_ms = infinity;
      timed_out = true }

let prepare cfg text =
  let db = Tpch.Gen.generate (Tpch.Gen.config cfg.scale) in
  (db, S.Middleware.prepare_text db text)

(* --- observability ----------------------------------------------------- *)

(* With --obs-jsonl FILE the harness traces every experiment and appends
   one batch of JSONL records per experiment (tagged with the experiment
   id), so BENCH_*.json trajectories can carry stage-level breakdowns
   and two runs can be diffed span by span. *)
let obs_channel : out_channel option ref = ref None

(* With --trace-chrome PREFIX each experiment additionally writes a
   Chrome trace-event file PREFIX-<experiment>.json (one Perfetto tab
   per experiment). *)
let chrome_prefix : string option ref = ref None

let enable_obs path =
  Obs.Control.set_enabled true;
  obs_channel := Some (open_out path)

let enable_chrome prefix =
  Obs.Control.set_enabled true;
  chrome_prefix := Some prefix

let record_experiment name f =
  if !obs_channel = None && !chrome_prefix = None then f ()
  else begin
    Obs.Span.reset ();
    Obs.Metrics.reset ();
    Obs.Event.reset ();
    Obs.Span.with_span "experiment"
      ~attrs:[ Obs.Attr.string "name" name ]
      f;
    (match !obs_channel with
    | Some oc ->
        Obs.Jsonl.write_channel ~experiment:name oc;
        flush oc
    | None -> ());
    match !chrome_prefix with
    | Some prefix -> Obs.Chrometrace.write_file (prefix ^ "-" ^ name ^ ".json")
    | None -> ()
  end

let finish_obs () =
  match !obs_channel with
  | None -> ()
  | Some oc ->
      close_out oc;
      obs_channel := None

let print_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_config db cfg =
  Printf.printf
    "Configuration %s: scale=%.1f  (%d rows, %d KB)  — %s\n" cfg.cfg_name
    cfg.scale (R.Database.total_rows db)
    (R.Database.total_bytes db / 1024)
    cfg.description

(* Group measurements by stream count and print a figure-style summary:
   min/median/max per x-axis position, like the scatter plots of
   Figs. 13-15. *)
let print_figure ~caption (ms : measurement list) ~value =
  Printf.printf "\n%s\n" caption;
  Printf.printf "%8s %7s %10s %10s %10s\n" "streams" "plans" "best" "median" "worst";
  let finite = List.filter (fun m -> not m.timed_out) ms in
  let timed_out = List.length ms - List.length finite in
  for sc = 1 to 10 do
    let group = List.filter (fun m -> m.streams = sc) finite in
    if group <> [] then begin
      let values = List.sort compare (List.map value group) in
      let n = List.length values in
      let best = List.nth values 0 in
      let median = List.nth values (n / 2) in
      let worst = List.nth values (n - 1) in
      Printf.printf "%8d %7d %10.1f %10.1f %10.1f\n" sc n best median worst
    end
  done;
  if timed_out > 0 then Printf.printf "(%d plans timed out)\n" timed_out

let best_of ms ~value =
  List.fold_left
    (fun acc m -> if m.timed_out then acc else min acc (value m))
    infinity ms

(* k-th best value *)
let kth_best ms ~value k =
  let vs =
    List.filter (fun m -> not m.timed_out) ms |> List.map value |> List.sort compare
  in
  if List.length vs >= k then List.nth vs (k - 1) else infinity

let ratio a b = if b > 0.0 && b < infinity then a /. b else nan
