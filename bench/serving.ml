(* Serving experiment: queries/sec and latency percentiles for the query
   server, with the cache tiers on vs off, at 1/2/4 worker domains.

   The headline figures are deterministic and machine-independent, in
   the same simulated-time model the other experiments use: a request's
   service cost is its engine work (zero on a result-cache hit) plus the
   modeled cost of shipping the response bytes to the client.
   Throughput is the makespan of the request mix's service costs over N
   workers (greedy least-loaded list scheduling, as in the scaling
   experiment); percentiles come from a histogram of per-request
   latencies.  Alongside the model, each request's real wall-clock
   service time is measured too (mp50/mp90/mp99 columns) — informative
   only, never part of the committed baseline, so the report shows both
   the machine-independent model and what this machine actually did.
   Each server runs the same workload twice — the second pass is the
   warm one — and every response is checked byte-for-byte against the
   direct pipeline. *)

module R = Relational
module S = Silkroute
open Bench_common

let workload_cfg =
  {
    Server.Workload.default_config with
    Server.Workload.clients = 3;
    requests_per_client = 12;
    invalidate_every = 0;
  }

(* Modeled cost of shipping one response to the client, in ms. *)
let response_ms bytes =
  let t = R.Transfer.default in
  t.R.Transfer.per_stream_overhead
  +. (float_of_int bytes /. t.R.Transfer.bytes_per_ms)

let latency_ms work bytes = sim_query_ms work +. response_ms bytes

(* Local latency histogram (the registry machinery without the
   registry, so passes cannot contaminate each other). *)
let new_hist () =
  {
    Obs.Metrics.bounds = Obs.Metrics.duration_bounds;
    counts = Array.make (Array.length Obs.Metrics.duration_bounds + 1) 0;
    sum = 0.0;
    n = 0;
  }

let observe (h : Obs.Metrics.histogram) x =
  let i = Obs.Metrics.bucket_index h.Obs.Metrics.bounds x in
  h.Obs.Metrics.counts.(i) <- h.Obs.Metrics.counts.(i) + 1;
  h.Obs.Metrics.sum <- h.Obs.Metrics.sum +. x;
  h.Obs.Metrics.n <- h.Obs.Metrics.n + 1

type pass = {
  requests : int;
  work : int;  (** engine work actually executed *)
  cost_units : int list;  (** per-request service cost in work units *)
  hist : Obs.Metrics.histogram;
  wall : Obs.Metrics.histogram;  (** measured wall-clock ms per request *)
  s_hits : int;
  p_hits : int;
  r_hits : int;
  identical : bool;
}

let replay server scripts expected =
  let work = ref 0 and s = ref 0 and p = ref 0 and r = ref 0 in
  let requests = ref 0 and identical = ref true in
  let costs = ref [] in
  let hist = new_hist () in
  let wall = new_hist () in
  let longest =
    Array.fold_left (fun acc ops -> max acc (Array.length ops)) 0 scripts
  in
  for i = 0 to longest - 1 do
    Array.iter
      (fun ops ->
        if i < Array.length ops then
          match ops.(i) with
          | Server.Protocol.Query { view; _ } as req -> (
              incr requests;
              let t0 = Obs.Clock.now_ns () in
              let reply = Server.Service.handle server req in
              observe wall
                (Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) t0));
              match reply with
              | Server.Protocol.Result { xml; tiers; work = w; _ } ->
                  (match Hashtbl.find_opt expected view with
                  | Some reference when String.equal reference xml -> ()
                  | _ -> identical := false);
                  let bytes = String.length xml in
                  work := !work + w;
                  let ms = latency_ms w bytes in
                  costs := (w + int_of_float (response_ms bytes *. work_per_ms)) :: !costs;
                  observe hist ms;
                  if tiers.Server.Protocol.statement_hit then incr s;
                  if tiers.Server.Protocol.plan_hit then incr p;
                  if tiers.Server.Protocol.result_hit then incr r
              | _ -> identical := false)
          | req -> ignore (Server.Service.handle server req))
      scripts
  done;
  {
    requests = !requests;
    work = !work;
    cost_units = List.rev !costs;
    hist;
    wall;
    s_hits = !s;
    p_hits = !p;
    r_hits = !r;
    identical = !identical;
  }

let qps ~domains pass =
  let span = Experiments.makespan ~workers:domains pass.cost_units in
  let span_ms = float_of_int span /. work_per_ms in
  if span_ms <= 0.0 then 0.0
  else float_of_int pass.requests /. (span_ms /. 1000.0)

let print_pass ~cache ~domains ~label pass =
  let percentiles h =
    match Obs.Metrics.p50_90_99 h with
    | Some t -> t
    | None -> (0.0, 0.0, 0.0)
  in
  let p50, p90, p99 = percentiles pass.hist in
  let m50, m90, m99 = percentiles pass.wall in
  Printf.printf
    "%5s %7d %5s %8d %9d %8.1f %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f %5d/%d/%d \
     %10s\n"
    (if cache then "on" else "off")
    domains label pass.requests pass.work (qps ~domains pass) p50 p90 p99 m50
    m90 m99 pass.s_hits pass.p_hits pass.r_hits
    (if pass.identical then "yes" else "NO!")

let run () =
  print_header
    "Serving: query server qps + latency percentiles (cache on/off, 1/2/4 \
     domains)";
  let db = Tpch.Gen.generate (Tpch.Gen.config config_a.scale) in
  print_config db config_a;
  let views = Server.Workload.standard_views db in
  let expected = Hashtbl.create 8 in
  List.iter
    (fun v ->
      match v.Server.Workload.wv_expected with
      | Some xml -> Hashtbl.replace expected v.Server.Workload.wv_text xml
      | None -> ())
    views;
  let scripts = Server.Workload.script ~views workload_cfg in
  Printf.printf
    "workload: %d clients x %d requests, strategies {%s}, response model \
     %.0f bytes/ms\n\n"
    workload_cfg.Server.Workload.clients
    workload_cfg.Server.Workload.requests_per_client
    (String.concat ", " workload_cfg.Server.Workload.strategies)
    R.Transfer.default.R.Transfer.bytes_per_ms;
  Printf.printf "%5s %7s %5s %8s %9s %8s %7s %7s %7s %7s %7s %7s %9s %10s\n"
    "cache" "domains" "pass" "requests" "work" "qps" "p50" "p90" "p99" "mp50"
    "mp90" "mp99" "hits" "identical";
  let ok = ref true in
  List.iter
    (fun cache ->
      List.iter
        (fun domains ->
          let config =
            {
              Server.Service.default_config with
              Server.Service.domains;
              statement_capacity = (if cache then 64 else 0);
              plan_capacity = (if cache then 256 else 0);
              result_capacity = (if cache then 16 * 1024 * 1024 else 0);
            }
          in
          let server = Server.Service.create ~config db in
          let cold = replay server scripts expected in
          let warm = replay server scripts expected in
          Server.Service.shutdown server;
          print_pass ~cache ~domains ~label:"cold" cold;
          print_pass ~cache ~domains ~label:"warm" warm;
          ok := !ok && cold.identical && warm.identical;
          if cache then ok := !ok && warm.work < cold.work
          else ok := !ok && warm.work = cold.work)
        [ 1; 2; 4 ])
    [ true; false ];
  Printf.printf
    "\nWith the tiers on, the warm pass re-executes nothing (strictly less \
     engine\nwork than cold); with them off both passes pay full price.  \
     Invariants\n(byte-identity, warm < cold with cache, warm = cold \
     without): %s\n"
    (if !ok then "yes" else "NO!")
