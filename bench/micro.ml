(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   timing the code path that regenerates it (at reduced input sizes so
   the suite stays quick). *)

module R = Relational
module Sk = Silkroute
open Bechamel
open Toolkit

let db = lazy (Tpch.Gen.generate (Tpch.Gen.config 0.3))
let prepared = lazy (Sk.Middleware.prepare_text (Lazy.force db) Sk.Queries.query1_text)

let t_table1 =
  (* Table 1: database generation *)
  Test.make ~name:"table1:tpch-generate"
    (Staged.stage (fun () -> ignore (Tpch.Gen.generate (Tpch.Gen.config 0.1))))

let t_sec2 =
  (* Sec. 2 table: one unified execution *)
  Test.make ~name:"sec2:unified-plan"
    (Staged.stage (fun () ->
         let p = Lazy.force prepared in
         ignore (Sk.Middleware.execute p (Sk.Partition.unified p.Sk.Middleware.tree))))

let t_fig13 =
  (* Fig. 13: per-plan pipeline = SQL generation + execution + tagging *)
  Test.make ~name:"fig13:plan-pipeline"
    (Staged.stage (fun () ->
         let p = Lazy.force prepared in
         let e = Sk.Middleware.execute p (Sk.Partition.of_mask p.Sk.Middleware.tree 37) in
         ignore (Sk.Middleware.xml_string_of p e)))

let t_fig13_stream =
  (* the same per-plan pipeline through the streaming path: cursors,
     spooled sub-query results, heap merge, channel-free buffer sink *)
  Test.make ~name:"fig13:plan-pipeline-streaming"
    (Staged.stage (fun () ->
         let p = Lazy.force prepared in
         let se =
           Sk.Middleware.execute_streaming p
             (Sk.Partition.of_mask p.Sk.Middleware.tree 37)
         in
         ignore (Sk.Middleware.xml_string_of_streaming p se)))

let t_fig14 =
  (* Fig. 14: the reduced variant of the same pipeline *)
  Test.make ~name:"fig14:reduced-pipeline"
    (Staged.stage (fun () ->
         let p = Lazy.force prepared in
         ignore (Sk.Middleware.execute ~reduce:true p
                   (Sk.Partition.of_mask p.Sk.Middleware.tree 37))))

let t_fig15 =
  (* Fig. 15: one greedy planning run (cost estimation only) *)
  Test.make ~name:"fig15:genPlan"
    (Staged.stage (fun () ->
         let p = Lazy.force prepared in
         let oracle = R.Cost.oracle (Lazy.force db) in
         ignore
           (Sk.Planner.gen_plan (Lazy.force db) oracle p.Sk.Middleware.tree
              p.Sk.Middleware.labels Sk.Planner.default_params)))

let t_fig18 =
  (* Fig. 18: view-tree construction + labeling, the planner's input *)
  Test.make ~name:"fig18:prepare-view"
    (Staged.stage (fun () ->
         ignore (Sk.Middleware.prepare_text (Lazy.force db) Sk.Queries.query2_text)))

(* Histogram bucketing: Metrics.observe runs once per traced row, so the
   bound lookup is a hot path.  Compare the shipped binary search against
   the seed's linear scan over the same 12-bound array and the same
   deterministic sample stream (an LCG spanning the full bucket range,
   overflow included). *)
let bucket_samples =
  let state = ref 123456789 in
  Array.init 4096 (fun _ ->
      state := ((1103515245 * !state) + 12345) land 0x3FFFFFFF;
      (* map to [0.5, ~8M): exercises every bucket incl. overflow *)
      0.5 *. (2.0 ** (float_of_int (!state mod 24) /. 1.0)))

let linear_bucket_index bounds x =
  let nb = Array.length bounds in
  let rec idx i = if i >= nb || x <= bounds.(i) then i else idx (i + 1) in
  idx 0

let t_bucket_binary =
  Test.make ~name:"obs:bucket-binary"
    (Staged.stage (fun () ->
         let bounds = Obs.Metrics.default_bounds in
         Array.iter
           (fun x -> ignore (Obs.Metrics.bucket_index bounds x))
           bucket_samples))

let t_bucket_linear =
  Test.make ~name:"obs:bucket-linear"
    (Staged.stage (fun () ->
         let bounds = Obs.Metrics.default_bounds in
         Array.iter
           (fun x -> ignore (linear_bucket_index bounds x))
           bucket_samples))

(* Event emission and GC snapshots sit inside spans on the hot path, so
   their unit costs bound the diagnostics overhead.  The disabled
   variants prove the PR 5 envelope still holds when tracing is off:
   both an un-recorded event and an un-opened span are one boolean
   test. *)
let t_event_emit =
  Test.make ~name:"obs:event-emit-enabled"
    (Staged.stage (fun () ->
         Obs.Control.with_enabled true (fun () ->
             for i = 0 to 4095 do
               Obs.Event.debug "bench.tick" ~attrs:[ Obs.Attr.int "i" i ]
             done;
             Obs.Event.reset ())))

let t_event_disabled =
  Test.make ~name:"obs:event-emit-disabled"
    (Staged.stage (fun () ->
         Obs.Control.with_enabled false (fun () ->
             for i = 0 to 4095 do
               Obs.Event.debug "bench.tick" ~attrs:[ Obs.Attr.int "i" i ]
             done)))

let t_gc_quickstat =
  Test.make ~name:"obs:gc-quick-stat"
    (Staged.stage (fun () ->
         for _ = 0 to 4095 do
           ignore (Gc.quick_stat ())
         done))

let t_span_disabled =
  Test.make ~name:"obs:span-disabled"
    (Staged.stage (fun () ->
         Obs.Control.with_enabled false (fun () ->
             for _ = 0 to 4095 do
               Obs.Span.with_span "bench.span" (fun () -> ())
             done)))

(* Compiled vs interpreted expressions: the same moderately deep
   predicate over 4096 rows, paid as the operators pay it — the
   interpreted side re-walks the tree per row, the compiled side builds
   the closure once per 4096-row block (the once-per-operator pattern)
   and then pays only closure calls. *)
let expr_rows : R.Tuple.t array =
  let state = ref 42 in
  let next () =
    state := ((1103515245 * !state) + 12345) land 0x3FFFFFFF;
    !state
  in
  Array.init 4096 (fun _ ->
      [|
        R.Value.Int (next () mod 1000);
        R.Value.Int (next () mod 1000);
        (if next () mod 7 = 0 then R.Value.Null
         else R.Value.String (string_of_int (next () mod 97)));
      |])

let expr_bench : R.Expr.resolved =
  R.Expr.(
    R_and
      ( R_cmp (Lt, R_col 0, R_col 1),
        R_or
          ( R_cmp (Le, R_arith (Add, R_col 1, R_lit (R.Value.Int 3)),
                   R_lit (R.Value.Int 500)),
            R_is_null (R_col 2) ) ))

let t_expr_interpreted =
  Test.make ~name:"expr:interpreted"
    (Staged.stage (fun () ->
         let acc = ref 0 in
         Array.iter
           (fun t -> if R.Expr.eval_pred expr_bench t then incr acc)
           expr_rows;
         ignore !acc))

let t_expr_compiled =
  Test.make ~name:"expr:compiled"
    (Staged.stage (fun () ->
         let p = R.Expr.compile_pred expr_bench in
         let acc = ref 0 in
         Array.iter (fun t -> if p t then incr acc) expr_rows;
         ignore !acc))

(* Batched vs tuple execution, one pair per physical operator shape.
   Each pair runs the identical plan (output and work accounting are
   asserted equal by test/test_batch.ml and bench --experiment batching);
   only the interpretation strategy differs. *)
let op_plans =
  lazy
    (let db = Lazy.force db in
     List.map
       (fun (name, sql) -> (name, R.Physical.plan_of db (R.Sql_parser.parse sql)))
       [
         ("scan", "SELECT suppkey, name, nationkey FROM Supplier");
         ( "filter",
           "SELECT suppkey FROM Supplier WHERE suppkey < 5000 AND nationkey > 2"
         );
         ( "join",
           "SELECT Supplier.suppkey, Nation.name FROM Supplier, Nation WHERE \
            Supplier.nationkey = Nation.nationkey" );
         ( "sort",
           "SELECT suppkey, name FROM Supplier ORDER BY name DESC, suppkey" );
       ])

let exec_op_tests =
  lazy
    (let db = Lazy.force db in
     List.concat_map
       (fun (name, plan) ->
         [
           Test.make ~name:(Printf.sprintf "exec:%s:tuple" name)
             (Staged.stage (fun () -> ignore (R.Executor.run_plan db plan)));
           Test.make ~name:(Printf.sprintf "exec:%s:batched" name)
             (Staged.stage (fun () ->
                  ignore
                    (R.Executor.run_plan
                       ~batch_size:R.Executor.default_batch_size db plan)));
         ])
       (Lazy.force op_plans))

let all_tests =
  lazy
    (Test.make_grouped ~name:"silkroute" ~fmt:"%s/%s"
       ([
          t_table1; t_sec2; t_fig13; t_fig13_stream; t_fig14; t_fig15; t_fig18;
          t_bucket_binary; t_bucket_linear; t_event_emit; t_event_disabled;
          t_gc_quickstat; t_span_disabled; t_expr_interpreted; t_expr_compiled;
        ]
       @ Lazy.force exec_op_tests))

let run () =
  Printf.printf "\nBechamel micro-benchmarks (one per reproduced artifact)\n";
  Printf.printf "%s\n" (String.make 56 '=');
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (Lazy.force all_tests) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
        List.iter
          (fun (name, ols) ->
            match Analyze.OLS.estimates ols with
            | Some (est :: _) ->
                Printf.printf "%-32s %12.1f ns/run\n" name est
            | _ -> Printf.printf "%-32s %12s\n" name "n/a")
          (List.sort compare rows))
    merged
