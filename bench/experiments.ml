(* The paper's experiments, one function per table/figure.  See
   DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
   discussion. *)

module R = Relational
module S = Silkroute
open Bench_common

(* A full 512-plan sweep for one query under one variant. *)
let sweep ?style ?reduce ?budget p =
  List.map (fun mask -> measure ?style ?reduce ?budget p mask)
    (S.Partition.all_masks p.S.Middleware.tree)

(* --- Table 1: configurations (E7) -------------------------------------- *)

let table1 () =
  print_header "Table 1: experimental configurations";
  List.iter
    (fun cfg ->
      let db = Tpch.Gen.generate (Tpch.Gen.config cfg.scale) in
      print_config db cfg)
    [ config_a; config_b ];
  Printf.printf
    "(The paper used 1 MB / 100 MB TPC-H databases on late-90s hardware;\n\
    \ we keep the small:large shape on the in-memory engine.)\n"

(* --- Sec. 2 table: 10 / 5 / 1 queries (E1) ------------------------------ *)

let sec2 () =
  print_header "Sec. 2 table: total and query-only time by plan (Query 1)";
  let db, p = prepare config_a S.Queries.query1_text in
  print_config db config_a;
  let all = sweep p in
  let fully = List.find (fun m -> m.mask = 0) all in
  let unified = List.find (fun m -> m.mask = 511) all in
  let five_stream = List.filter (fun m -> m.streams = 5) all in
  let best5 =
    List.fold_left
      (fun acc m -> if m.total_ms < acc.total_ms then m else acc)
      (List.hd five_stream) five_stream
  in
  Printf.printf "\n%-24s %12s %12s\n" "plan (No. of queries)" "Total(ms)" "Query(ms)";
  let row name (m : measurement) =
    Printf.printf "%-24s %12.1f %12.1f\n" name m.total_ms m.query_ms
  in
  row "10 (fully partitioned)" fully;
  row "5  (best 5-query plan)" best5;
  row "1  (unified)" unified;
  Printf.printf
    "\nPaper (100MB): 10 queries 1837s/584s, 5 queries 592s/244s, 1 query\n\
     2729s/1234s — the intermediate plan wins on both measures.\n";
  Printf.printf "Here: best-5 vs fully-partitioned total %.2fx, vs unified total %.2fx\n"
    (ratio fully.total_ms best5.total_ms)
    (ratio unified.total_ms best5.total_ms)

(* --- Figs. 13/14: exhaustive sweeps (E2, E3) ---------------------------- *)

let fig13_14 ~figure ~qname text dtd =
  print_header
    (Printf.sprintf "Figure %s: %s, Configuration A', 512 plans" figure qname);
  let db, p = prepare config_a text in
  print_config db config_a;
  (* sanity: the unified plan's document is DTD-valid *)
  let e = S.Middleware.execute p (S.Partition.unified p.S.Middleware.tree) in
  let doc = S.Middleware.document_of p e in
  Printf.printf "Output: %d XML elements, DTD-valid: %b\n"
    (Xmlkit.Xml.count_elements doc)
    (Xmlkit.Validate.is_valid dtd doc);

  let plain = sweep p in
  let reduced = sweep ~reduce:true p in
  print_figure ~caption:(Printf.sprintf "(a) Query-only time, no reduction [sim ms]")
    plain ~value:(fun m -> m.query_ms);
  print_figure ~caption:"(b) Query-only time, with view-tree reduction [sim ms]"
    reduced ~value:(fun m -> m.query_ms);
  print_figure ~caption:"(c) Total time, with view-tree reduction [sim ms]"
    reduced ~value:(fun m -> m.total_ms);

  (* headline ratios of the paper's Sec. 4 *)
  let q = fun (m : measurement) -> m.query_ms in
  let t = fun (m : measurement) -> m.total_ms in
  let find mask l = List.find (fun m -> m.mask = mask) l in
  let unified_ou = measure ~style:S.Sql_gen.Outer_union p 511 in
  let opt_plain = best_of plain ~value:q in
  let opt_red = best_of reduced ~value:q in
  let ten_plain = kth_best plain ~value:q 10 in
  let ten_red = kth_best reduced ~value:q 10 in
  Printf.printf "\nHeadline comparisons (query-only time unless noted):\n";
  Printf.printf
    "  non-reduced: unified outer-union %.2fx optimal, fully partitioned %.2fx optimal\n"
    (ratio unified_ou.query_ms opt_plain)
    (ratio (find 0 plain).query_ms opt_plain);
  Printf.printf "    (paper: 16-21%% and 24-41%% slower)\n";
  Printf.printf "  ten fastest reduced plans %.2fx faster than ten fastest non-reduced\n"
    (ratio ten_plain ten_red);
  Printf.printf "    (paper: 2.5x)\n";
  Printf.printf
    "  reduced optimal vs unified outer-union %.2fx, vs fully partitioned %.2fx\n"
    (ratio unified_ou.query_ms opt_red)
    (ratio (find 0 reduced).query_ms opt_red);
  Printf.printf "    (paper: optimal 2.6-4.3x faster)\n";
  let opt_red_total = best_of reduced ~value:t in
  Printf.printf
    "  total time: unified outer-union %.2fx optimal, fully partitioned %.2fx optimal\n"
    (ratio unified_ou.total_ms opt_red_total)
    (ratio (find 0 reduced).total_ms opt_red_total);
  Printf.printf "    (paper: 4-4.8x and 3-3.7x)\n"

let fig13 () = fig13_14 ~figure:"13" ~qname:"Query 1" S.Queries.query1_text S.Queries.dtd_query1
let fig14 () = fig13_14 ~figure:"14" ~qname:"Query 2" S.Queries.query2_text S.Queries.dtd_query2

(* --- Fig. 15: Configuration B, greedy plans (E4) ------------------------ *)

let fig15_one ~panel ~qname text =
  Printf.printf "\n(%s) %s\n" panel qname;
  let db, p = prepare config_b text in
  let oracle = R.Cost.oracle db in
  let result =
    S.Planner.gen_plan ~reduce:true db oracle p.S.Middleware.tree
      p.S.Middleware.labels S.Planner.default_params
  in
  let plans = S.Planner.plans_of p.S.Middleware.tree result in
  Printf.printf "genPlan: %s\n" (S.Planner.to_string p.S.Middleware.tree result);
  Printf.printf "%d generated plans (2^%d optional-edge subsets)\n"
    (List.length plans) (List.length result.S.Planner.optional);
  let ms =
    List.map
      (fun plan -> measure ~reduce:true p (S.Partition.to_mask plan))
      plans
  in
  print_figure ~caption:"generated plans [sim ms]" ms ~value:(fun m -> m.query_ms);
  print_figure ~caption:"generated plans, total time [sim ms]" ms
    ~value:(fun m -> m.total_ms);
  let unified_ou = measure ~style:S.Sql_gen.Outer_union p 511 in
  let fully = measure ~reduce:true p 0 in
  let opt_q = best_of ms ~value:(fun m -> m.query_ms) in
  let opt_t = best_of ms ~value:(fun m -> m.total_ms) in
  Printf.printf "baselines: unified outer-union query %.1f total %.1f;\n"
    unified_ou.query_ms unified_ou.total_ms;
  Printf.printf "           fully partitioned   query %.1f total %.1f\n"
    fully.query_ms fully.total_ms;
  Printf.printf
    "ratios: outer-union %.2fx / fully partitioned %.2fx slower than best\n"
    (ratio unified_ou.query_ms opt_q)
    (ratio fully.query_ms opt_q);
  Printf.printf "    (paper Q1: 5x / 2.4x, Q2: 4.7x / 2.6x; totals 4.6x / 3.1x)\n";
  Printf.printf "total-time ratios: outer-union %.2fx / fully partitioned %.2fx\n"
    (ratio unified_ou.total_ms opt_t)
    (ratio fully.total_ms opt_t)

let fig15 () =
  print_header "Figure 15: Configuration B', greedy plans, with reduction";
  let db = Tpch.Gen.generate (Tpch.Gen.config config_b.scale) in
  print_config db config_b;
  fig15_one ~panel:"a" ~qname:"Query 1" S.Queries.query1_text;
  fig15_one ~panel:"b" ~qname:"Query 2" S.Queries.query2_text

(* --- Fig. 18: plans selected by the greedy algorithm (E5) --------------- *)

let fig18 () =
  print_header "Figure 18: plans selected by the greedy algorithm";
  let db, _ = prepare config_a S.Queries.query1_text in
  List.iter
    (fun (qname, text) ->
      let p = S.Middleware.prepare_text db text in
      List.iter
        (fun reduce ->
          let oracle = R.Cost.oracle db in
          let r =
            S.Planner.gen_plan ~reduce db oracle p.S.Middleware.tree
              p.S.Middleware.labels S.Planner.default_params
          in
          Printf.printf "%s %s: %s\n" qname
            (if reduce then "(reduced)    " else "(non-reduced)")
            (S.Planner.to_string p.S.Middleware.tree r);
          Printf.printf "  -> family of %d plans\n"
            (1 lsl List.length r.S.Planner.optional))
        [ false; true ])
    [ ("Query 1", S.Queries.query1_text); ("Query 2", S.Queries.query2_text) ];
  Printf.printf
    "(paper: 32 plans for Config A, 16 for Q1 / 8 for Q2 at Config B)\n"

(* --- Sec. 5.1: greedy plan ranks within the exhaustive sweep ------------ *)

let ranks () =
  print_header "Sec. 5.1: rank of generated plans within all 512 (Config A')";
  List.iter
    (fun (qname, text) ->
      let db, p = prepare config_a text in
      List.iter
        (fun reduce ->
          let all = sweep ~reduce p in
          let sorted =
            List.sort
              (fun a b -> compare a.query_ms b.query_ms)
              (List.filter (fun m -> not m.timed_out) all)
          in
          let oracle = R.Cost.oracle db in
          let r =
            S.Planner.gen_plan ~reduce db oracle p.S.Middleware.tree
              p.S.Middleware.labels S.Planner.default_params
          in
          let masks =
            List.map S.Partition.to_mask (S.Planner.plans_of p.S.Middleware.tree r)
          in
          let rank_of mask =
            let rec go i = function
              | [] -> -1
              | m :: rest -> if m.mask = mask then i else go (i + 1) rest
            in
            go 1 sorted
          in
          let ranks = List.sort compare (List.map rank_of masks) in
          Printf.printf "%s %s: ranks %s\n" qname
            (if reduce then "(reduced)    " else "(non-reduced)")
            (String.concat "," (List.map string_of_int ranks)))
        [ false; true ])
    [ ("Query 1", S.Queries.query1_text); ("Query 2", S.Queries.query2_text) ];
  Printf.printf
    "(paper: generated plans = the 32 fastest; Q2 reduced = first 31 and 34th)\n"

(* --- Sec. 5.1: cost-estimate request counts (E6) ------------------------ *)

let requests () =
  print_header "Sec. 5.1: cost-estimate requests issued by genPlan";
  let db, _ = prepare config_a S.Queries.query1_text in
  List.iter
    (fun (qname, text) ->
      let p = S.Middleware.prepare_text db text in
      List.iter
        (fun reduce ->
          let oracle = R.Cost.oracle db in
          let r =
            S.Planner.gen_plan ~reduce db oracle p.S.Middleware.tree
              p.S.Middleware.labels S.Planner.default_params
          in
          Printf.printf
            "%s %s: %d requests, %d cache hits (worst case |E|^2 = 81)\n" qname
            (if reduce then "(reduced)    " else "(non-reduced)")
            r.S.Planner.requests r.S.Planner.cache_hits)
        [ false; true ])
    [ ("Query 1", S.Queries.query1_text); ("Query 2", S.Queries.query2_text) ];
  Printf.printf "(paper: 22 non-reduced, 25 reduced)\n"

(* --- ablation: the transfer model and sort-spill model ------------------ *)

let ablation () =
  print_header "Ablation: what makes the unified plan slow here";
  let _, p = prepare config_a S.Queries.query1_text in
  let profile_default = R.Executor.default_profile in
  let profile_no_spill = { profile_default with R.Executor.sort_buffer = max_int } in
  let run profile mask reduce =
    let plan = S.Partition.of_mask p.S.Middleware.tree mask in
    (S.Middleware.execute ~reduce ~profile p plan).S.Middleware.work
  in
  Printf.printf "%-28s %14s %14s\n" "plan" "work(default)" "work(no spill)";
  List.iter
    (fun (name, mask) ->
      Printf.printf "%-28s %14d %14d\n" name
        (run profile_default mask false)
        (run profile_no_spill mask false))
    [ ("unified (1 stream)", 511); ("fully partitioned (10)", 0) ];
  Printf.printf
    "Disabling the external-sort spill model shrinks the unified plan's\n\
     penalty — the effect the paper attributes to sort spills (Sec. 7).\n";
  (* Sec. 7's prediction: "assuming that the target database has
     plentiful memory ... the resulting outer-union plan is likely to be
     comparable to SilkRoute's generated optimal plans".  Sweep the sort
     buffer and watch the unified/optimal gap close. *)
  Printf.printf "\nSort-buffer sweep (reduced plans, Query 1):\n";
  Printf.printf "%12s %12s %12s %8s\n" "buffer" "unified" "best-3stream" "ratio";
  let best3_mask =
    (* cut the three *-labeled-ish edges: keep everything except
       S1-S1.4 and S1.4-S1.4.2 plus one supplier edge — find the best
       3-stream plan empirically at the default profile *)
    let best = ref (-1) and bw = ref max_int in
    List.iter
      (fun mask ->
        let plan = S.Partition.of_mask p.S.Middleware.tree mask in
        if S.Partition.stream_count plan = 3 then begin
          let w = (S.Middleware.execute ~reduce:true p plan).S.Middleware.work in
          if w < !bw then begin
            bw := w;
            best := mask
          end
        end)
      (S.Partition.all_masks p.S.Middleware.tree);
    !best
  in
  List.iter
    (fun buffer ->
      let profile = { R.Executor.default_profile with R.Executor.sort_buffer = buffer } in
      let unified = run profile 511 true in
      let best3 =
        let plan = S.Partition.of_mask p.S.Middleware.tree best3_mask in
        (S.Middleware.execute ~reduce:true ~profile p plan).S.Middleware.work
      in
      Printf.printf "%10dKB %12d %12d %8.2f\n" (buffer / 1024) unified best3
        (float_of_int unified /. float_of_int best3))
    [ 8 * 1024; 16 * 1024; 32 * 1024; 64 * 1024; 256 * 1024; 4 * 1024 * 1024 ];
  Printf.printf
    "With plentiful sort memory the unified plan narrows the gap (the\n\
     residue is NULL-padding width), as Sec. 7 predicts.\n"

(* --- beyond the paper: threshold transfer to a third query -------------- *)

let extra () =
  print_header
    "Extension: Query 3 (Sec. 5.1 future work) — do the fixed thresholds transfer?";
  let db, p = prepare config_a S.Queries.query3_text in
  print_config db config_a;
  Printf.printf
    "Query 3: customer -> (name, nation, order* -> (orderkey, item+ -> (part, qty)))
     The order->item edge is '+' (declared inclusion), enabling the
     guaranteed-branch inner-join optimization.
";
  let all = sweep ~reduce:true p in
  print_figure ~caption:"Query-only time, with reduction [sim ms]" all
    ~value:(fun m -> m.query_ms);
  let oracle = R.Cost.oracle db in
  let r =
    S.Planner.gen_plan ~reduce:true db oracle p.S.Middleware.tree
      p.S.Middleware.labels S.Planner.default_params
  in
  Printf.printf "genPlan (same default a,b,t1,t2): %s
"
    (S.Planner.to_string p.S.Middleware.tree r);
  let sorted =
    List.sort (fun a b -> compare a.query_ms b.query_ms)
      (List.filter (fun m -> not m.timed_out) all)
  in
  let masks =
    List.map S.Partition.to_mask (S.Planner.plans_of p.S.Middleware.tree r)
  in
  let rank_of mask =
    let rec go i = function
      | [] -> -1
      | m :: rest -> if m.mask = mask then i else go (i + 1) rest
    in
    go 1 sorted
  in
  Printf.printf "ranks of generated plans (of %d): %s
" (List.length all)
    (String.concat ","
       (List.map string_of_int (List.sort compare (List.map rank_of masks))));
  let unified_ou = measure ~style:S.Sql_gen.Outer_union p ((1 lsl 7) - 1) in
  let fully = measure ~reduce:true p 0 in
  let best = best_of all ~value:(fun m -> m.query_ms) in
  Printf.printf
    "unified outer-union %.2fx / fully partitioned %.2fx slower than optimal
"
    (ratio unified_ou.query_ms best)
    (ratio fully.query_ms best)

(* --- tentpole check: the rewrite layer may only lower the bill ---------- *)

(* Differential sweep of the Fig. 13 configuration: every plan of
   Query 1, both reduce modes, each generated stream executed through
   the plan-based path (lower → rewrite → physical) and through the seed
   AST interpreter.  Projection pruning and predicate pushdown must be
   wins or no-ops — identical relations for no more work — and the
   experiment exits non-zero on any violation so CI can gate on it. *)
let pruning () =
  print_header
    "Pruning: plan path vs seed interpreter (Fig. 13 sweep, Query 1)";
  let db, p = prepare config_a S.Queries.query1_text in
  print_config db config_a;
  let tree = p.S.Middleware.tree in
  let violations = ref 0 in
  List.iter
    (fun reduce ->
      let opts =
        {
          S.Sql_gen.style = S.Sql_gen.Outer_join;
          labels = (if reduce then Some p.S.Middleware.labels else None);
        }
      in
      let new_total = ref 0
      and legacy_total = ref 0
      and wins = ref 0
      and streams_n = ref 0 in
      List.iter
        (fun mask ->
          let plan = S.Partition.of_mask tree mask in
          List.iter
            (fun s ->
              let q = s.S.Sql_gen.query in
              let r_new, st_new = R.Executor.run_with_stats db q in
              let r_old, st_old = R.Executor.run_legacy_with_stats db q in
              incr streams_n;
              if r_new <> r_old then begin
                incr violations;
                Printf.printf "!! mask=%d reduce=%b: outputs differ\n" mask
                  reduce
              end;
              if st_new.R.Executor.work > st_old.R.Executor.work then begin
                incr violations;
                Printf.printf "!! mask=%d reduce=%b: new work %d > seed %d\n"
                  mask reduce st_new.R.Executor.work st_old.R.Executor.work
              end;
              if st_new.R.Executor.work < st_old.R.Executor.work then
                incr wins;
              new_total := !new_total + st_new.R.Executor.work;
              legacy_total := !legacy_total + st_old.R.Executor.work)
            (S.Sql_gen.streams db tree plan opts))
        (S.Partition.all_masks tree);
      Printf.printf
        "%s: %d streams; work %d (plan path) vs %d (seed) — %.1f%% saved; \
         strictly cheaper on %d streams\n"
        (if reduce then "reduced    " else "non-reduced")
        !streams_n !new_total !legacy_total
        (100.0 *. (1.0 -. (float_of_int !new_total /. float_of_int !legacy_total)))
        !wins)
    [ false; true ];
  if !violations > 0 then begin
    Printf.printf
      "\n%d VIOLATIONS — a rewrite raised the bill or changed an output\n"
      !violations;
    exit 1
  end
  else
    Printf.printf
      "\nEvery plan: identical output, work(plan path) <= work(seed).\n"

(* --- tentpole check: cost-oracle calibration ---------------------------- *)

(* The oracle prices the same physical plan the engine runs, so its
   per-operator estimates can be compared to the executor's meter
   readings node by node.  q-error = max(est/act, act/est) with both
   sides clamped to >= 1; 1.00 is a perfect estimate. *)
let calibration () =
  print_header
    "Calibration: cost-oracle estimates vs executor actuals, per operator";
  let db, _ = prepare config_a S.Queries.query1_text in
  print_config db config_a;
  let stats = R.Stats.analyze db in
  let qerr est act =
    let e = Float.max 1.0 est and a = Float.max 1.0 act in
    Float.max (e /. a) (a /. e)
  in
  (* per operator kind: node count, sum of log q-errors (rows, cost),
     worst q-errors *)
  let acc = Hashtbl.create 8 in
  let note op rq cq =
    let n, slr, mxr, slc, mxc =
      match Hashtbl.find_opt acc op with
      | Some x -> x
      | None ->
          let x = (ref 0, ref 0.0, ref 1.0, ref 0.0, ref 1.0) in
          Hashtbl.add acc op x;
          x
    in
    incr n;
    slr := !slr +. Float.log rq;
    if rq > !mxr then mxr := rq;
    slc := !slc +. Float.log cq;
    if cq > !mxc then mxc := cq
  in
  let streams_n = ref 0 in
  let sum_log_total = ref 0.0 and worst_total = ref 1.0 in
  List.iter
    (fun (_qname, text) ->
      let p = S.Middleware.prepare_text db text in
      let tree = p.S.Middleware.tree in
      List.iter
        (fun reduce ->
          let plans =
            let oracle = R.Cost.oracle_with_stats db stats in
            let r =
              S.Planner.gen_plan ~reduce db oracle tree p.S.Middleware.labels
                S.Planner.default_params
            in
            [
              S.Partition.unified tree;
              S.Partition.fully_partitioned tree;
              S.Planner.best_plan tree r;
            ]
          in
          List.iter
            (fun style ->
              let opts =
                {
                  S.Sql_gen.style;
                  labels =
                    (if reduce then Some p.S.Middleware.labels else None);
                }
              in
              List.iter
                (fun plan ->
                  List.iter
                    (fun s ->
                      let phys = R.Physical.plan_of db s.S.Sql_gen.query in
                      let est = R.Cost.annotate stats phys in
                      let _, st = R.Executor.run_plan_with_stats db phys in
                      incr streams_n;
                      let tq =
                        qerr est.R.Cost.eval_cost
                          (float_of_int st.R.Executor.work)
                      in
                      sum_log_total := !sum_log_total +. Float.log tq;
                      if tq > !worst_total then worst_total := tq;
                      R.Physical.iter
                        (fun n ->
                          note (R.Physical.op_name n)
                            (qerr n.R.Physical.est_rows
                               (float_of_int n.R.Physical.act_rows))
                            (qerr n.R.Physical.est_cost
                               (float_of_int n.R.Physical.act_cost)))
                        phys)
                    (S.Sql_gen.streams db tree plan opts))
                plans)
            [ S.Sql_gen.Outer_join; S.Sql_gen.Outer_union ])
        [ false; true ])
    [
      ("Query 1", S.Queries.query1_text);
      ("Query 2", S.Queries.query2_text);
      ("Query 3", S.Queries.query3_text);
    ];
  Printf.printf "\n%-12s %6s %11s %11s %11s %11s\n" "operator" "nodes"
    "rows q-geo" "rows q-max" "cost q-geo" "cost q-max";
  let keys = Hashtbl.fold (fun k _ l -> k :: l) acc [] |> List.sort compare in
  List.iter
    (fun k ->
      let n, slr, mxr, slc, mxc = Hashtbl.find acc k in
      Printf.printf "%-12s %6d %11.2f %11.2f %11.2f %11.2f\n" k !n
        (exp (!slr /. float_of_int !n))
        !mxr
        (exp (!slc /. float_of_int !n))
        !mxc)
    keys;
  Printf.printf
    "\n%d streams (q1/q2/q3 x unified/fully/greedy-best x both styles x both\n\
     reduce modes); whole-stream eval-cost q-error: geo-mean %.2f, worst %.2f\n"
    !streams_n
    (exp (!sum_log_total /. float_of_int !streams_n))
    !worst_total;
  Printf.printf
    "(Scans are exact by construction; joins/filters carry System-R\n\
     independence assumptions.  test/test_calibration.ml fails the suite\n\
     if these drift grossly.)\n"

(* --- beyond the paper: resilience under a faulty backend ---------------- *)

(* Total time vs fault rate for the unified plan of Query 1, run through
   the resilient backend.  The work budget is set between the largest
   single-node stream and the unified query (2x the former), so the
   unified plan always times out and degrades through the plan lattice,
   while the finer sub-queries it falls back to always fit.  All times
   are simulated: engine work (winning + wasted attempts) over
   [work_per_ms], plus modeled transfer, plus the (virtual) backoff
   slept by retries. *)
let resilience () =
  print_header "Resilience: total time vs fault rate (Query 1, unified plan)";
  let db, p = prepare config_a S.Queries.query1_text in
  print_config db config_a;
  let tree = p.S.Middleware.tree in
  let unified = S.Partition.unified tree in
  let baseline = S.Middleware.execute p unified in
  let baseline_xml = S.Middleware.xml_string_of p baseline in
  let fully = S.Middleware.execute p (S.Partition.fully_partitioned tree) in
  let max_node_work =
    List.fold_left
      (fun acc se -> max acc se.S.Middleware.se_stats.R.Executor.work)
      0 fully.S.Middleware.per_stream
  in
  let budget = 2 * max_node_work in
  assert (baseline.S.Middleware.work > budget);
  Printf.printf
    "budget %d work units/sub-query (unified needs %d -> must degrade)\n\n"
    budget baseline.S.Middleware.work;
  Printf.printf "%6s %8s %8s %8s %8s %9s %10s %11s %10s\n" "rate" "attempts"
    "retries" "faults" "degraded" "backoff" "wasted" "total[ms]" "identical";
  List.iter
    (fun rate ->
      let backend =
        R.Backend.create
          ~faults:(R.Backend.faults ~seed:14 rate)
          ~retry:{ R.Backend.default_retry with R.Backend.max_retries = 8 }
          ~budget db
      in
      let r = S.Middleware.execute_resilient ~backend p unified in
      let se = r.S.Middleware.r_streaming in
      let xml = S.Middleware.xml_string_of_streaming p se in
      let res = r.S.Middleware.r_resilience in
      let total =
        sim_query_ms (se.S.Middleware.s_work + res.S.Middleware.r_wasted_work)
        +. se.S.Middleware.s_transfer_ms +. res.S.Middleware.r_backoff_ms
      in
      Printf.printf "%6.2f %8d %8d %8d %8d %9.1f %10d %11.1f %10s\n" rate
        res.S.Middleware.r_attempts res.S.Middleware.r_retries
        res.S.Middleware.r_faults res.S.Middleware.r_degraded
        res.S.Middleware.r_backoff_ms res.S.Middleware.r_wasted_work total
        (if xml = baseline_xml then "yes" else "NO!"))
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5 ];
  Printf.printf
    "\nOutput stays byte-identical at every fault rate; the cost of a flaky\n\
     backend is retries (backoff + wasted work), never correctness.\n"

(* --- Scaling: sub-query fan-out over domains --------------------------- *)

(* Modeled makespan of a plan's streams over [workers] virtual workers:
   greedy least-loaded list scheduling of the per-stream work units in
   plan order.  Deterministic — the box this runs on may have a single
   core, so the speedup curve is computed from the work model (the same
   work units behind every sim-ms figure), while wall-clock is printed
   for reference only. *)
let makespan ~workers per_stream_work =
  let load = Array.make (max 1 workers) 0 in
  List.iter
    (fun w ->
      let best = ref 0 in
      Array.iteri (fun i l -> if l < load.(!best) then best := i) load;
      load.(!best) <- load.(!best) + w)
    per_stream_work;
  Array.fold_left max 0 load

let scaling () =
  print_header "Scaling: sub-query fan-out, Query 1, fully partitioned plan";
  let db, p = prepare config_a S.Queries.query1_text in
  print_config db config_a;
  let plan = S.Partition.fully_partitioned p.S.Middleware.tree in
  let seq = S.Middleware.execute p plan in
  let seq_xml = S.Middleware.xml_string_of p seq in
  let per_stream_work =
    List.map
      (fun se -> se.S.Middleware.se_stats.R.Executor.work)
      seq.S.Middleware.per_stream
  in
  Printf.printf
    "%d streams; per-stream work: %s\n\n"
    (List.length per_stream_work)
    (String.concat " " (List.map string_of_int per_stream_work));
  let base_span = makespan ~workers:1 per_stream_work in
  Printf.printf "%8s %12s %12s %10s %10s %10s\n" "domains" "makespan"
    "speedup" "work" "tuples" "identical";
  List.iter
    (fun d ->
      let e = S.Middleware.execute_parallel ~domains:d p plan in
      let xml = S.Middleware.xml_string_of p e in
      let identical =
        xml = seq_xml
        && e.S.Middleware.work = seq.S.Middleware.work
        && e.S.Middleware.tuples = seq.S.Middleware.tuples
        && e.S.Middleware.bytes = seq.S.Middleware.bytes
        && e.S.Middleware.transfer_ms = seq.S.Middleware.transfer_ms
      in
      let span = makespan ~workers:d per_stream_work in
      Printf.printf "%8d %12.1f %12.2f %10d %10d %10s\n" d
        (float_of_int span /. work_per_ms)
        (float_of_int base_span /. float_of_int span)
        e.S.Middleware.work e.S.Middleware.tuples
        (if identical then "yes" else "NO!")
      )
    [ 1; 2; 4; 8 ];
  Printf.printf
    "\nSpeedup is the modeled makespan ratio (greedy least-loaded list\n\
     scheduling of per-stream work over N workers) — deterministic and\n\
     machine-independent; output, work, tuples, bytes and transfer are\n\
     byte-exact at every domain count.\n"

(* --- tentpole check: vectorized batch execution ------------------------- *)

(* Differential sweep of the Fig. 13 configuration for the batch path:
   every plan of Query 1, both reduce modes, each generated stream
   executed tuple-at-a-time and then batched at sizes 1, 7 and 1024.
   The batched runs must produce the identical relation with the stats
   counters exactly equal — not merely no worse — at every size; the
   experiment exits non-zero on any violation so CI can gate on it.
   A second section times one plan per operator shape both ways and
   prints the per-operator speedup of the vectorized path. *)
let batching () =
  print_header
    "Batching: vectorized path vs tuple path (Fig. 13 sweep, Query 1)";
  let db, p = prepare config_a S.Queries.query1_text in
  print_config db config_a;
  let tree = p.S.Middleware.tree in
  let sizes = [ 1; 7; 1024 ] in
  let stats_sig (st : R.Executor.stats) =
    R.Executor.
      (st.scanned, st.probed, st.emitted, st.sorted, st.spill_passes, st.work)
  in
  let violations = ref 0 in
  List.iter
    (fun reduce ->
      let opts =
        {
          S.Sql_gen.style = S.Sql_gen.Outer_join;
          labels = (if reduce then Some p.S.Middleware.labels else None);
        }
      in
      let streams_n = ref 0 in
      List.iter
        (fun mask ->
          let plan = S.Partition.of_mask tree mask in
          List.iter
            (fun s ->
              let q = s.S.Sql_gen.query in
              let r_ref, st_ref = R.Executor.run_with_stats db q in
              incr streams_n;
              List.iter
                (fun size ->
                  let r, st =
                    R.Executor.run_with_stats ~batch_size:size db q
                  in
                  if r <> r_ref then begin
                    incr violations;
                    Printf.printf
                      "NO! mask=%d reduce=%b size=%d: outputs differ\n" mask
                      reduce size
                  end;
                  if stats_sig st <> stats_sig st_ref then begin
                    incr violations;
                    Printf.printf
                      "NO! mask=%d reduce=%b size=%d: stats diverge (work %d \
                       vs %d)\n"
                      mask reduce size st.R.Executor.work
                      st_ref.R.Executor.work
                  end)
                sizes)
            (S.Sql_gen.streams db tree plan opts))
        (S.Partition.all_masks tree);
      Printf.printf
        "%s: %d streams × sizes {1,7,1024}: identical output and exact \
         work/tuples/bytes parity  %s\n"
        (if reduce then "reduced    " else "non-reduced")
        !streams_n
        (if !violations = 0 then "yes" else "NO!"))
    [ false; true ];
  (* Per-operator wall-clock: one plan per physical operator shape, both
     interpretation strategies over the same plan.  Run on a larger
     database (TPC-H scale 40: 2000 suppliers) so per-row costs dominate
     timer granularity.  Wall times vary by machine; the asserted
     invariant above is what CI gates on. *)
  let tdb = Tpch.Gen.generate (Tpch.Gen.config 40.0) in
  let ops =
    [
      ("scan", "SELECT suppkey, name, nationkey FROM Supplier");
      ( "filter",
        "SELECT suppkey FROM Supplier WHERE suppkey < 5000 AND nationkey > 2"
      );
      ( "join",
        "SELECT Supplier.suppkey, Nation.name FROM Supplier, Nation WHERE \
         Supplier.nationkey = Nation.nationkey" );
      ("sort", "SELECT suppkey, name FROM Supplier ORDER BY name DESC, suppkey");
    ]
  in
  Printf.printf
    "\nPer-operator wall-clock (median-of-%d runs over the same plan):\n" 5;
  Printf.printf "%-8s %8s %14s %14s %8s\n" "operator" "rows" "tuple ns/row"
    "batch ns/row" "speedup";
  let reps = 20 in
  let time_runs f =
    let times =
      List.init 5 (fun _ ->
          let t0 = Sys.time () in
          for _ = 1 to reps do
            f ()
          done;
          (Sys.time () -. t0) /. float_of_int reps)
    in
    match List.sort compare times with _ :: _ :: m :: _ -> m | t :: _ -> t | [] -> 0.0
  in
  List.iter
    (fun (name, sql) ->
      let plan = R.Physical.plan_of tdb (R.Sql_parser.parse sql) in
      let rows = R.Relation.cardinality (R.Executor.run_plan tdb plan) in
      let t_tuple = time_runs (fun () -> ignore (R.Executor.run_plan tdb plan)) in
      let t_batch =
        time_runs (fun () ->
            ignore
              (R.Executor.run_plan ~batch_size:R.Executor.default_batch_size
                 tdb plan))
      in
      let per_row t = 1e9 *. t /. float_of_int (max 1 rows) in
      Printf.printf "%-8s %8d %14.1f %14.1f %7.2fx\n" name rows
        (per_row t_tuple) (per_row t_batch)
        (t_tuple /. (if t_batch > 0.0 then t_batch else epsilon_float)))
    ops;
  if !violations > 0 then begin
    Printf.printf
      "\n%d VIOLATIONS — the batched path changed an output or a counter\n"
      !violations;
    exit 1
  end
  else
    Printf.printf
      "\nEvery plan, every batch size: byte-identical output, exact \
       accounting parity.\n"

let all () =
  table1 ();
  sec2 ();
  fig13 ();
  fig14 ();
  fig15 ();
  fig18 ();
  ranks ();
  requests ();
  ablation ();
  extra ();
  pruning ();
  calibration ();
  resilience ();
  scaling ();
  batching ()
