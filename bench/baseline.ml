(* Committed performance baseline and regression gate.

   Every baseline experiment is a fixed point of the pipeline — a paper
   query under a named plan strategy — measured in *deterministic*
   quantities only: engine work units, rows, bytes, stream count, and
   the modeled transfer time.  No wall-clock, so the record reproduces
   bit-for-bit on any machine (generator seed and scale are pinned and
   recorded in the file's meta line).

   `bench --write-baseline` runs the matrix and writes one JSON object
   per line to BENCH_silkroute.json (diff-friendly: stable experiment
   order, integers stay integers); `bench --check-baseline` re-runs the
   matrix, prints a per-experiment delta table, and exits non-zero when
   any metric drifts outside tolerance (work/transfer ±5% by default,
   rows/streams/bytes exact).  tools/ci.sh runs the check, so a PR that
   silently inflates executor work or tagger transfer fails local CI
   even though tier-1 tests (correctness only) would pass. *)

module R = Relational
module S = Silkroute

let default_path = "BENCH_silkroute.json"
let version = 1
let scale = 1.0
let seed = 42
let work_tolerance = 0.05
let transfer_tolerance = 0.05

type record = {
  experiment : string;
  streams : int;
  work : int;
  rows : int;
  bytes : int;
  transfer_ms : float;
}

(* --- the measurement matrix -------------------------------------------- *)

let run_all () =
  let db = Tpch.Gen.generate (Tpch.Gen.config ~seed:(Int64.of_int seed) scale) in
  let queries =
    [
      ("q1", S.Queries.query1_text);
      ("q2", S.Queries.query2_text);
      ("q3", S.Queries.query3_text);
    ]
  in
  List.concat_map
    (fun (qname, text) ->
      let p = S.Middleware.prepare_text db text in
      let tree = p.S.Middleware.tree in
      let plans =
        [
          ("unified", S.Partition.unified tree);
          ("partitioned", S.Partition.fully_partitioned tree);
          ( "greedy",
            S.Middleware.partition_of p
              (S.Middleware.Greedy S.Planner.default_params) );
        ]
      in
      let materialized =
        List.concat_map
          (fun (pname, plan) ->
            List.map
              (fun reduce ->
                let e = S.Middleware.execute ~reduce p plan in
                {
                  experiment =
                    Printf.sprintf "%s:%s:%s" qname pname
                      (if reduce then "reduced" else "plain");
                  streams = List.length e.S.Middleware.streams;
                  work = e.S.Middleware.work;
                  rows = e.S.Middleware.tuples;
                  bytes = e.S.Middleware.bytes;
                  transfer_ms = e.S.Middleware.transfer_ms;
                })
              [ false; true ])
          plans
      in
      (* one streaming record per query: same greedy plan through the
         cursor path, consumed to exercise the heap-merge tagger too *)
      let streaming =
        let _, plan = List.nth plans 2 in
        let se = S.Middleware.execute_streaming ~reduce:true p plan in
        let r =
          {
            experiment = Printf.sprintf "%s:greedy:streaming" qname;
            streams = List.length se.S.Middleware.cursors;
            work = se.S.Middleware.s_work;
            rows = se.S.Middleware.s_tuples;
            bytes = se.S.Middleware.s_bytes;
            transfer_ms = se.S.Middleware.s_transfer_ms;
          }
        in
        ignore (S.Middleware.xml_string_of_streaming p se);
        [ r ]
      in
      (* one batched record per query: the greedy reduced point again
         through the vectorized path — its row must equal
         `qname:greedy:reduced` in every metric, so any accounting drift
         between the two interpreters shows up as a baseline failure *)
      let batched =
        let _, plan = List.nth plans 2 in
        let e =
          S.Middleware.execute ~reduce:true
            ~batch_size:R.Executor.default_batch_size p plan
        in
        [
          {
            experiment = Printf.sprintf "%s:greedy:batched" qname;
            streams = List.length e.S.Middleware.streams;
            work = e.S.Middleware.work;
            rows = e.S.Middleware.tuples;
            bytes = e.S.Middleware.bytes;
            transfer_ms = e.S.Middleware.transfer_ms;
          };
        ]
      in
      materialized @ streaming @ batched)
    queries

(* --- file format -------------------------------------------------------- *)

let meta_json =
  Obs.Json.Obj
    [
      ("type", Obs.Json.String "baseline");
      ("experiment", Obs.Json.String "_meta");
      ("version", Obs.Json.Int version);
      ("scale", Obs.Json.Float scale);
      ("seed", Obs.Json.Int seed);
      ("work_per_ms", Obs.Json.Float Bench_common.work_per_ms);
    ]

let json_of r =
  Obs.Json.Obj
    [
      ("type", Obs.Json.String "baseline");
      ("experiment", Obs.Json.String r.experiment);
      ("streams", Obs.Json.Int r.streams);
      ("work", Obs.Json.Int r.work);
      ("rows", Obs.Json.Int r.rows);
      ("bytes", Obs.Json.Int r.bytes);
      ("transfer_ms", Obs.Json.Float r.transfer_ms);
    ]

let record_of_json line_no j =
  let bad what =
    Printf.eprintf "baseline: line %d: %s\n" line_no what;
    exit 2
  in
  let str k =
    match Obs.Json.member k j with
    | Some (Obs.Json.String s) -> s
    | _ -> bad (Printf.sprintf "missing string %S" k)
  in
  let int k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Int n) -> n
    | _ -> bad (Printf.sprintf "missing int %S" k)
  in
  let flt k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Float x) -> x
    | Some (Obs.Json.Int n) -> float_of_int n
    | _ -> bad (Printf.sprintf "missing number %S" k)
  in
  if str "type" <> "baseline" then bad "not a baseline record";
  let experiment = str "experiment" in
  if experiment = "_meta" then None
  else
    Some
      {
        experiment;
        streams = int "streams";
        work = int "work";
        rows = int "rows";
        bytes = int "bytes";
        transfer_ms = flt "transfer_ms";
      }

let load path =
  let ic = open_in path in
  let records = ref [] in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then
         match record_of_json !line_no (Obs.Json.parse line) with
         | Some r -> records := r :: !records
         | None -> ()
         | exception Obs.Json.Parse_error msg ->
             Printf.eprintf "baseline: %s: line %d: %s\n" path !line_no msg;
             exit 2
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !records

let write path =
  let records = run_all () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string meta_json);
      output_char oc '\n';
      List.iter
        (fun r ->
          output_string oc (Obs.Json.to_string (json_of r));
          output_char oc '\n')
        records);
  Printf.printf "baseline: wrote %d experiment record(s) to %s\n"
    (List.length records) path

(* --- the gate ----------------------------------------------------------- *)

let rel_delta now base =
  if base = 0.0 then if now = 0.0 then 0.0 else infinity
  else (now -. base) /. base

(* Compare one experiment; returns the per-metric verdicts joined into a
   status cell, or "ok". *)
let compare_records (base : record) (now : record) =
  let problems = ref [] in
  let flag name = problems := name :: !problems in
  if now.streams <> base.streams then flag "streams";
  if now.rows <> base.rows then flag "rows";
  if now.bytes <> base.bytes then flag "bytes";
  let dw = rel_delta (float_of_int now.work) (float_of_int base.work) in
  if Float.abs dw > work_tolerance then flag "work";
  let dt = rel_delta now.transfer_ms base.transfer_ms in
  if Float.abs dt > transfer_tolerance then flag "transfer";
  (List.rev !problems, dw)

let check path =
  let base = load path in
  let now = run_all () in
  Printf.printf
    "BASELINE CHECK vs %s — tolerance: work/transfer ±%.0f%%, \
     rows/streams/bytes exact\n"
    path (100.0 *. work_tolerance);
  Printf.printf "%-28s %8s %12s %12s %8s %10s %8s  %s\n" "experiment"
    "streams" "work(base)" "work(now)" "Δwork%" "rows" "bytes" "status";
  let failures = ref 0 in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (b : record) ->
      Hashtbl.replace seen b.experiment ();
      match List.find_opt (fun (n : record) -> n.experiment = b.experiment) now with
      | None ->
          incr failures;
          Printf.printf "%-28s %8d %12d %12s %8s %10d %8d  %s\n" b.experiment
            b.streams b.work "-" "-" b.rows b.bytes "MISSING from this run"
      | Some n ->
          let problems, dw = compare_records b n in
          let status =
            if problems = [] then "ok"
            else "REGRESSION: " ^ String.concat "," problems
          in
          if problems <> [] then incr failures;
          let streams_cell =
            if n.streams = b.streams then string_of_int b.streams
            else Printf.sprintf "%d->%d" b.streams n.streams
          in
          Printf.printf "%-28s %8s %12d %12d %+7.1f%% %10d %8d  %s\n"
            b.experiment streams_cell b.work n.work (100.0 *. dw) n.rows
            n.bytes status)
    base;
  List.iter
    (fun (n : record) ->
      if not (Hashtbl.mem seen n.experiment) then begin
        incr failures;
        Printf.printf "%-28s %8d %12s %12d %8s %10d %8d  %s\n" n.experiment
          n.streams "-" n.work "-" n.rows n.bytes
          "NEW (not in baseline)"
      end)
    now;
  if !failures > 0 then begin
    Printf.printf
      "\nbaseline: %d experiment(s) drifted — if intentional, re-run \
       `bench --write-baseline` and commit %s\n"
      !failures path;
    false
  end
  else begin
    Printf.printf "\nbaseline: all %d experiment(s) within tolerance\n"
      (List.length base);
    true
  end
