(* Source-description files and CSV import/export. *)

open Relational

let desc_text =
  {|
# a bookstore
table Publisher {
  pubid int key
  name  string
  city  string null
}
table Book {
  bid   int key
  pubid int -> Publisher.pubid
  title string
  price float
  fk (bid, pubid) -> Shadow(bid, pubid)   # composite, for syntax coverage
}
table Shadow {
  bid   int key
  pubid int key
}
inclusion Publisher(pubid) <= Book(pubid)
|}

let test_parse_structure () =
  let d = Source_desc.parse desc_text in
  Alcotest.(check int) "three tables" 3 (List.length d.Source_desc.tables);
  Alcotest.(check int) "one inclusion" 1 (List.length d.Source_desc.inclusions);
  let book = List.find (fun (t : Schema.table) -> t.name = "Book") d.Source_desc.tables in
  Alcotest.(check int) "book columns" 4 (Schema.arity book);
  Alcotest.(check (list string)) "book key" [ "bid" ] book.Schema.key;
  Alcotest.(check int) "two FKs (single + composite)" 2
    (List.length book.Schema.foreign_keys);
  let pub = List.find (fun (t : Schema.table) -> t.name = "Publisher") d.Source_desc.tables in
  (match Schema.find_column pub "city" with
  | Some c -> Alcotest.(check bool) "city nullable" true c.Schema.nullable
  | None -> Alcotest.fail "city missing")

let test_round_trip () =
  let d = Source_desc.parse desc_text in
  let d2 = Source_desc.parse (Source_desc.to_string d) in
  Alcotest.(check string) "fixpoint" (Source_desc.to_string d) (Source_desc.to_string d2)

let test_to_database () =
  let db = Source_desc.load_database desc_text in
  Alcotest.(check (list string)) "tables" [ "Book"; "Publisher"; "Shadow" ]
    (Database.table_names db);
  Alcotest.(check int) "inclusion declared" 1 (List.length (Database.inclusions db))

let test_of_database_round_trip () =
  let db = Tpch.Gen.empty_database () in
  let d = Source_desc.of_database db in
  let db2 = Source_desc.to_database d in
  Alcotest.(check (list string)) "same tables" (Database.table_names db)
    (Database.table_names db2);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " arity")
        (Schema.arity (Database.schema db name))
        (Schema.arity (Database.schema db2 name)))
    (Database.table_names db)

let test_parse_errors () =
  let bad =
    [ "table X {"; "bogus line"; "table X {\n  a unknowntype\n}";
      "table X {\n  a int key\n}\ninclusion X(a) <= Y(b, c)" ]
  in
  List.iter
    (fun text ->
      Alcotest.(check bool) ("rejects: " ^ String.escaped text) true
        (try ignore (Source_desc.parse text); false
         with Source_desc.Syntax_error _ -> true))
    bad

(* --- CSV ------------------------------------------------------------- *)

let csv_db () =
  let db = Source_desc.load_database
      {|table T {
          id   int key
          name string
          note string null
          score float null
        }|}
  in
  db

let test_csv_parse_rows () =
  Alcotest.(check (list (list string))) "basic"
    [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv.parse_rows "a,b\nc,d\n");
  Alcotest.(check (list (list string))) "quotes and escapes"
    [ [ "a,b"; "say \"hi\"" ] ]
    (Csv.parse_rows "\"a,b\",\"say \"\"hi\"\"\"\n");
  Alcotest.(check (list (list string))) "crlf and embedded newline"
    [ [ "x"; "line1\nline2" ]; [ "y"; "z" ] ]
    (Csv.parse_rows "x,\"line1\nline2\"\r\ny,z\r\n")

let test_csv_load_typed () =
  let db = csv_db () in
  let n = Csv.load db "T" "id,name,note,score\n1,ann,,3.5\n2,bob,\"\",\n" in
  Alcotest.(check int) "two rows" 2 n;
  let rows = Database.raw_data db "T" in
  (* row 1: unquoted empty note -> NULL; score 3.5 *)
  Alcotest.(check bool) "null note" true (Value.is_null rows.(0).(2));
  Alcotest.(check bool) "score" true (Value.equal rows.(0).(3) (Value.Float 3.5));
  (* row 2: quoted empty note -> empty string; empty score -> NULL *)
  Alcotest.(check bool) "empty string note" true
    (Value.equal rows.(1).(2) (Value.String ""));
  Alcotest.(check bool) "null score" true (Value.is_null rows.(1).(3))

let test_csv_header_reorder_and_omit () =
  let db = csv_db () in
  let n = Csv.load db "T" "name,id\nann,1\nbob,2\n" in
  Alcotest.(check int) "two rows" 2 n;
  let rows = Database.raw_data db "T" in
  Alcotest.(check bool) "id placed" true (Value.equal rows.(0).(0) (Value.Int 1));
  Alcotest.(check bool) "omitted nullable is NULL" true (Value.is_null rows.(0).(2))

let test_csv_errors () =
  let db = csv_db () in
  Alcotest.(check bool) "bad int" true
    (try ignore (Csv.load db "T" "id,name\nxx,ann\n"); false
     with Csv.Csv_error _ -> true);
  Alcotest.(check bool) "unknown column" true
    (try ignore (Csv.load db "T" "id,bogus\n1,x\n"); false
     with Csv.Csv_error _ -> true);
  Alcotest.(check bool) "field count" true
    (try ignore (Csv.load db "T" "id,name\n1\n"); false
     with Csv.Csv_error _ -> true);
  Alcotest.(check bool) "missing NOT NULL" true
    (try ignore (Csv.load db "T" "id\n1\n"); false with Csv.Csv_error _ -> true)

let test_csv_error_diagnostics () =
  let db = csv_db () in
  (* a malformed cell names the source file, the row and the column *)
  let msg, row =
    try
      ignore
        (Csv.load ~source:"people.csv" db "T" "id,name\n1,ann\nxx,bob\n");
      ("", 0)
    with Csv.Csv_error (m, r) -> (m, r)
  in
  Alcotest.(check int) "1-based row (after header)" 3 row;
  let contains needle =
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg needle)
      true
      (let n = String.length needle and l = String.length msg in
       let rec go i = i + n <= l && (String.sub msg i n = needle || go (i + 1)) in
       go 0)
  in
  contains "people.csv";
  contains "row 3";
  contains "column id";
  contains "\"xx\"";
  (* without a source, diagnostics still carry row and column *)
  (try ignore (Csv.load db "T" "id,name\n9999999999999999999999,x\n")
   with Csv.Csv_error (m, r) ->
     Alcotest.(check int) "row" 2 r;
     Alcotest.(check bool) "names column" true
       (String.length m > 0
       && (let needle = "column id" in
           let n = String.length needle and l = String.length m in
           let rec go i =
             i + n <= l && (String.sub m i n = needle || go (i + 1))
           in
           go 0)))

let test_csv_strict_numeric () =
  (* int_of_string's literal extensions are not CSV data: hex/octal/
     binary prefixes and underscore separators must be rejected for
     TInt and TDate alike *)
  let db () =
    Source_desc.load_database
      {|table U {
          id int key
          d  date
        }|}
  in
  let rejects what text =
    Alcotest.(check bool) what true
      (try
         ignore (Csv.load (db ()) "U" text);
         false
       with Csv.Csv_error _ -> true)
  in
  rejects "hex int" "id,d\n0x1F,1\n";
  rejects "underscore int" "id,d\n1_000,1\n";
  rejects "octal int" "id,d\n0o17,1\n";
  rejects "binary int" "id,d\n0b101,1\n";
  rejects "hex date" "id,d\n1,0x1F\n";
  rejects "underscore date" "id,d\n1,1_000\n";
  rejects "bare sign" "id,d\n+,1\n";
  rejects "trailing junk" "id,d\n12a,1\n";
  (* plain decimals, signed included, still load *)
  let db = db () in
  Alcotest.(check int) "decimal forms load" 2
    (Csv.load db "U" "id,d\n-12,1\n+13,2\n");
  let rows = Database.raw_data db "U" in
  Alcotest.(check bool) "negative value" true
    (Value.equal rows.(0).(0) (Value.Int (-12)))

let test_csv_export_round_trip () =
  let db = csv_db () in
  ignore
    (Csv.load db "T"
       "id,name,note,score\n1,\"a,b\",,0.25\n2,\"quote \"\"q\"\"\",\"\",\n");
  let text = Csv.export db "T" in
  let db2 = csv_db () in
  ignore (Csv.load db2 "T" text);
  Alcotest.(check bool) "round trip" true
    (Relation.equal (Database.to_relation db "T") (Database.to_relation db2 "T"))

let test_csv_tpch_round_trip () =
  (* export/import a whole generated TPC-H database *)
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let db2 = Tpch.Gen.empty_database () in
  List.iter
    (fun name -> ignore (Csv.load db2 name (Csv.export db name)))
    (Database.table_names db);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " identical") true
        (Relation.equal (Database.to_relation db name) (Database.to_relation db2 name)))
    (Database.table_names db)

let suite =
  [
    Alcotest.test_case "source: parse structure" `Quick test_parse_structure;
    Alcotest.test_case "source: round trip" `Quick test_round_trip;
    Alcotest.test_case "source: to database" `Quick test_to_database;
    Alcotest.test_case "source: of_database round trip" `Quick test_of_database_round_trip;
    Alcotest.test_case "source: rejects malformed" `Quick test_parse_errors;
    Alcotest.test_case "csv: record parsing" `Quick test_csv_parse_rows;
    Alcotest.test_case "csv: typed load, NULL vs empty" `Quick test_csv_load_typed;
    Alcotest.test_case "csv: header reorder/omit" `Quick test_csv_header_reorder_and_omit;
    Alcotest.test_case "csv: error reporting" `Quick test_csv_errors;
    Alcotest.test_case "csv: error diagnostics name file/row/column" `Quick
      test_csv_error_diagnostics;
    Alcotest.test_case "csv: strict decimal ints and dates" `Quick
      test_csv_strict_numeric;
    Alcotest.test_case "csv: export round trip" `Quick test_csv_export_round_trip;
    Alcotest.test_case "csv: TPC-H round trip" `Quick test_csv_tpch_round_trip;
  ]
