(* Value: three-valued comparison, total order, SQL literals, wire sizes. *)

open Relational

let v = Alcotest.testable Value.pp Value.equal

let test_total_order_null_first () =
  Alcotest.(check bool) "null < int" true (Value.compare_total Value.Null (Value.Int 0) < 0);
  Alcotest.(check bool) "null < negative" true
    (Value.compare_total Value.Null (Value.Int min_int) < 0);
  Alcotest.(check bool) "null < string" true
    (Value.compare_total Value.Null (Value.String "") < 0);
  Alcotest.(check bool) "null = null" true (Value.compare_total Value.Null Value.Null = 0)

let test_total_order_numeric () =
  Alcotest.(check bool) "1 < 2" true (Value.compare_total (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "int/float cross" true
    (Value.compare_total (Value.Int 1) (Value.Float 1.5) < 0);
  Alcotest.(check bool) "float/int cross" true
    (Value.compare_total (Value.Float 2.5) (Value.Int 2) > 0);
  Alcotest.(check bool) "int = float equal" true
    (Value.compare_total (Value.Int 2) (Value.Float 2.0) = 0)

let test_total_order_strings_dates () =
  Alcotest.(check bool) "abc < abd" true
    (Value.compare_total (Value.String "abc") (Value.String "abd") < 0);
  Alcotest.(check bool) "dates by day" true
    (Value.compare_total (Value.Date 100) (Value.Date 200) < 0)

let test_compare3_null_unknown () =
  Alcotest.(check (option int)) "null vs int" None
    (Value.compare3 Value.Null (Value.Int 1));
  Alcotest.(check (option int)) "int vs null" None
    (Value.compare3 (Value.Int 1) Value.Null);
  Alcotest.(check (option int)) "null vs null" None
    (Value.compare3 Value.Null Value.Null)

let test_compare3_values () =
  Alcotest.(check (option int)) "1 vs 1" (Some 0)
    (Value.compare3 (Value.Int 1) (Value.Int 1));
  Alcotest.(check bool) "a < b" true
    (match Value.compare3 (Value.String "a") (Value.String "b") with
    | Some c -> c < 0
    | None -> false)

let test_equal_treats_null_reflexively () =
  (* equal is the total-order equality, used for grouping; SQL predicate
     semantics live in compare3 *)
  Alcotest.(check bool) "null = null under grouping" true
    (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "distinct ints" false
    (Value.equal (Value.Int 1) (Value.Int 2))

let test_hash_consistent_with_equal () =
  let pairs =
    [ (Value.Int 42, Value.Int 42); (Value.String "x", Value.String "x");
      (Value.Null, Value.Null); (Value.Bool true, Value.Bool true);
      (Value.Date 7, Value.Date 7) ]
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "equal implies same hash" true
        ((not (Value.equal a b)) || Value.hash a = Value.hash b))
    pairs

let test_to_sql_round_trip_string_quoting () =
  Alcotest.(check string) "simple" "'abc'" (Value.to_sql (Value.String "abc"));
  Alcotest.(check string) "embedded quote" "'it''s'" (Value.to_sql (Value.String "it's"));
  Alcotest.(check string) "null" "NULL" (Value.to_sql Value.Null);
  Alcotest.(check string) "bool" "TRUE" (Value.to_sql (Value.Bool true))

let test_wire_sizes () =
  Alcotest.(check bool) "null cheapest" true
    (Value.wire_size Value.Null < Value.wire_size (Value.Int 0));
  Alcotest.(check int) "string scales" (2 + 5) (Value.wire_size (Value.String "hello"));
  Alcotest.(check bool) "null not free" true (Value.wire_size Value.Null > 0)

let test_type_of () =
  Alcotest.(check bool) "null has no type" true (Value.type_of Value.Null = None);
  Alcotest.(check bool) "int typed" true (Value.type_of (Value.Int 1) = Some Value.TInt);
  Alcotest.(check string) "ty name" "VARCHAR" (Value.ty_name Value.TString)

let test_testable_sanity () =
  Alcotest.check v "same value" (Value.Int 3) (Value.Int 3)

let suite =
  [
    Alcotest.test_case "total order: NULL first" `Quick test_total_order_null_first;
    Alcotest.test_case "total order: numerics" `Quick test_total_order_numeric;
    Alcotest.test_case "total order: strings and dates" `Quick test_total_order_strings_dates;
    Alcotest.test_case "compare3: NULL is unknown" `Quick test_compare3_null_unknown;
    Alcotest.test_case "compare3: values" `Quick test_compare3_values;
    Alcotest.test_case "grouping equality" `Quick test_equal_treats_null_reflexively;
    Alcotest.test_case "hash consistent with equal" `Quick test_hash_consistent_with_equal;
    Alcotest.test_case "SQL literal quoting" `Quick test_to_sql_round_trip_string_quoting;
    Alcotest.test_case "wire sizes" `Quick test_wire_sizes;
    Alcotest.test_case "type_of / ty_name" `Quick test_type_of;
    Alcotest.test_case "testable" `Quick test_testable_sanity;
  ]

(* property tests *)
let gen_value =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun n -> Value.Int n) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
        map (fun b -> Value.Bool b) bool;
        map (fun s -> Value.String s) (string_size (int_bound 12));
        map (fun d -> Value.Date d) (int_bound 10000);
      ])

let arb_value = QCheck.make ~print:Value.to_string gen_value

let prop_total_order_antisym =
  QCheck.Test.make ~name:"compare_total antisymmetric" ~count:500
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      let c1 = Value.compare_total a b and c2 = Value.compare_total b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_total_order_trans =
  QCheck.Test.make ~name:"compare_total transitive" ~count:500
    (QCheck.triple arb_value arb_value arb_value) (fun (a, b, c) ->
      let sorted = List.sort Value.compare_total [ a; b; c ] in
      match sorted with
      | [ x; y; z ] ->
          Value.compare_total x y <= 0 && Value.compare_total y z <= 0
          && Value.compare_total x z <= 0
      | _ -> false)

let prop_compare3_agrees =
  QCheck.Test.make ~name:"compare3 agrees with total order on non-null" ~count:500
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      match Value.compare3 a b with
      | None -> Value.is_null a || Value.is_null b
      | Some c -> c = Value.compare_total a b)

let props = [ prop_total_order_antisym; prop_total_order_trans; prop_compare3_agrees ]
