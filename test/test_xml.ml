(* XML substrate: trees, serialization, parsing round trip, DTDs and
   validation. *)

open Xmlkit

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let doc1 () =
  Xml.document
    (Xml.element "root"
       [
         Xml.elem "a" [ Xml.text "hello" ];
         Xml.elem "b" [];
         Xml.elem "a" [ Xml.text "x < y & z" ];
       ])

let test_tree_accessors () =
  let d = doc1 () in
  Alcotest.(check int) "elements" 4 (Xml.count_elements d);
  Alcotest.(check int) "depth" 2 (Xml.depth d);
  Alcotest.(check int) "children named a" 2
    (List.length (Xml.children_named (Xml.root d) "a"));
  Alcotest.(check string) "text content" "hello"
    (Xml.text_content (List.hd (Xml.children_named (Xml.root d) "a")))

let test_equal () =
  Alcotest.(check bool) "same" true (Xml.equal (doc1 ()) (doc1 ()));
  let other = Xml.document (Xml.element "root" [ Xml.elem "a" [] ]) in
  Alcotest.(check bool) "different" false (Xml.equal (doc1 ()) other)

let test_fold () =
  let tags = Xml.fold_elements (fun acc e -> e.Xml.tag :: acc) [] (doc1 ()) in
  Alcotest.(check (list string)) "preorder" [ "a"; "b"; "a"; "root" ] tags

let test_serialize_escaping () =
  let s = Serialize.to_string (doc1 ()) in
  Alcotest.(check bool) "escaped" true (contains s "x &lt; y &amp; z")

let test_serialize_self_closing () =
  let s = Serialize.to_string (doc1 ()) in
  Alcotest.(check bool) "empty is self-closed" true (contains s "<b/>")

let test_escape () =
  Alcotest.(check string) "all five" "&lt;&gt;&amp;&apos;&quot;" (Serialize.escape "<>&'\"")

let test_byte_size () =
  let d = doc1 () in
  Alcotest.(check int) "matches string" (String.length (Serialize.to_string d))
    (Serialize.byte_size d)

let test_parse_round_trip () =
  let d = doc1 () in
  let d' = Parse.parse (Serialize.to_string d) in
  Alcotest.(check bool) "round trip" true (Xml.equal d d')

let test_parse_attributes () =
  let d = Parse.parse {|<r a="1" b="x &amp; y"><c/></r>|} in
  let root = Xml.root d in
  Alcotest.(check (list (pair string string))) "attrs" [ ("a", "1"); ("b", "x & y") ]
    root.Xml.attrs

let test_parse_pretty_round_trip () =
  (* the pretty printer inserts whitespace; structure must survive modulo
     whitespace-only text nodes *)
  let d = doc1 () in
  let d' = Parse.parse (Serialize.to_pretty_string d) in
  let rec strip (e : Xml.element) =
    Xml.element ~attrs:e.attrs e.tag
      (List.filter_map
         (function
           | Xml.Text s when String.trim s = "" -> None
           | Xml.Text s -> Some (Xml.Text (String.trim s))
           | Xml.Element c -> Some (Xml.Element (strip c)))
         e.children)
  in
  Alcotest.(check bool) "same modulo whitespace" true
    (Xml.equal_element (strip (Xml.root d)) (strip (Xml.root d')))

let test_parse_errors () =
  let bad = [ "<a>"; "<a></b>"; "text"; "<a>&bogus;</a>"; "<a/><b/>" ] in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try ignore (Parse.parse s); false with Parse.Parse_error _ -> true))
    bad

let test_parse_xml_declaration () =
  let d = Parse.parse "<?xml version=\"1.0\"?><r/>" in
  Alcotest.(check string) "root" "r" (Xml.root d).Xml.tag

(* --- DTDs ------------------------------------------------------------- *)

let dtd1 () =
  Dtd.create ~root:"root"
    [
      { Dtd.el_name = "root";
        el_content = Dtd.Children [ ("a", Dtd.Plus); ("b", Dtd.Opt) ] };
      { Dtd.el_name = "a"; el_content = Dtd.Pcdata };
      { Dtd.el_name = "b"; el_content = Dtd.Children [] };
    ]

let test_dtd_create_validates_refs () =
  Alcotest.(check bool) "undeclared child" true
    (try
       ignore
         (Dtd.create ~root:"r"
            [ { Dtd.el_name = "r"; el_content = Dtd.Children [ ("zzz", Dtd.One) ] } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "undeclared root" true
    (try
       ignore (Dtd.create ~root:"zzz" [ { Dtd.el_name = "r"; el_content = Dtd.Pcdata } ]);
       false
     with Invalid_argument _ -> true)

let test_multiplicities () =
  Alcotest.(check bool) "one" true (Dtd.admits Dtd.One 1);
  Alcotest.(check bool) "one not 0" false (Dtd.admits Dtd.One 0);
  Alcotest.(check bool) "opt 0" true (Dtd.admits Dtd.Opt 0);
  Alcotest.(check bool) "opt not 2" false (Dtd.admits Dtd.Opt 2);
  Alcotest.(check bool) "plus 3" true (Dtd.admits Dtd.Plus 3);
  Alcotest.(check bool) "plus not 0" false (Dtd.admits Dtd.Plus 0);
  Alcotest.(check bool) "star 0" true (Dtd.admits Dtd.Star 0);
  Alcotest.(check string) "to_string" "*" (Dtd.multiplicity_to_string Dtd.Star);
  Alcotest.(check bool) "of_string" true (Dtd.multiplicity_of_string "+" = Dtd.Plus)

let test_validate_ok () =
  let d = Xml.document (Xml.element "root" [ Xml.elem "a" [ Xml.text "t" ] ]) in
  Alcotest.(check bool) "valid" true (Validate.is_valid (dtd1 ()) d)

let test_validate_wrong_root () =
  let d = Xml.document (Xml.element "other" []) in
  Alcotest.(check bool) "invalid" false (Validate.is_valid (dtd1 ()) d)

let test_validate_multiplicity_violation () =
  let d = Xml.document (Xml.element "root" [ Xml.elem "b" [] ]) in
  (* missing the mandatory a+ *)
  Alcotest.(check bool) "invalid" false (Validate.is_valid (dtd1 ()) d);
  let errs = Validate.validate (dtd1 ()) d in
  Alcotest.(check bool) "reports path" true
    (List.exists (fun (e : Validate.error) -> e.Validate.path = "/root") errs)

let test_validate_unexpected_element () =
  let d =
    Xml.document
      (Xml.element "root" [ Xml.elem "a" [ Xml.text "x" ]; Xml.elem "a" [];
                            Xml.elem "b" []; Xml.elem "b" [] ])
  in
  Alcotest.(check bool) "b occurs twice with opt" false
    (Validate.is_valid (dtd1 ()) d)

let test_validate_pcdata_purity () =
  let d =
    Xml.document (Xml.element "root" [ Xml.elem "a" [ Xml.elem "b" [] ] ])
  in
  Alcotest.(check bool) "element inside PCDATA" false
    (Validate.is_valid (dtd1 ()) d)

let test_dtd_to_string () =
  let s = Dtd.to_string (dtd1 ()) in
  Alcotest.(check bool) "mentions ELEMENT" true
    (contains s "<!ELEMENT root (a+, b?)>")

let suite =
  [
    Alcotest.test_case "tree accessors" `Quick test_tree_accessors;
    Alcotest.test_case "equality" `Quick test_equal;
    Alcotest.test_case "preorder fold" `Quick test_fold;
    Alcotest.test_case "serialize: escaping" `Quick test_serialize_escaping;
    Alcotest.test_case "serialize: self closing" `Quick test_serialize_self_closing;
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "byte size" `Quick test_byte_size;
    Alcotest.test_case "parse round trip" `Quick test_parse_round_trip;
    Alcotest.test_case "parse attributes" `Quick test_parse_attributes;
    Alcotest.test_case "parse pretty output" `Quick test_parse_pretty_round_trip;
    Alcotest.test_case "parse rejects malformed" `Quick test_parse_errors;
    Alcotest.test_case "parse XML declaration" `Quick test_parse_xml_declaration;
    Alcotest.test_case "dtd: reference checking" `Quick test_dtd_create_validates_refs;
    Alcotest.test_case "dtd: multiplicities" `Quick test_multiplicities;
    Alcotest.test_case "validate: ok" `Quick test_validate_ok;
    Alcotest.test_case "validate: wrong root" `Quick test_validate_wrong_root;
    Alcotest.test_case "validate: multiplicity" `Quick test_validate_multiplicity_violation;
    Alcotest.test_case "validate: occurrence" `Quick test_validate_unexpected_element;
    Alcotest.test_case "validate: pcdata purity" `Quick test_validate_pcdata_purity;
    Alcotest.test_case "dtd: printing" `Quick test_dtd_to_string;
  ]

(* Property: serialize/parse round trip on random trees. *)
let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  let txt = string_size ~gen:(oneofl [ 'x'; '<'; '&'; '\''; '"'; '>' ]) (int_range 1 5) in
  let rec node depth =
    if depth = 0 then map Xml.text txt
    else
      frequency
        [
          (2, map Xml.text txt);
          (3,
           map2 (fun t children -> Xml.elem t children) tag
             (list_size (int_bound 3) (node (depth - 1))));
        ]
  in
  map
    (fun children -> Xml.document (Xml.element "root" children))
    (list_size (int_bound 4) (node 2))

let prop_serialize_parse_round_trip =
  QCheck.Test.make ~name:"serialize/parse round trip" ~count:200
    (QCheck.make ~print:Serialize.to_string gen_doc) (fun d ->
      (* adjacent text nodes merge on parse; normalize both sides *)
      let rec norm (e : Xml.element) =
        let merged =
          List.fold_left
            (fun acc n ->
              match (n, acc) with
              | Xml.Text s, Xml.Text s' :: rest -> Xml.Text (s' ^ s) :: rest
              | Xml.Text s, _ -> Xml.Text s :: acc
              | Xml.Element c, _ -> Xml.Element (norm c) :: acc)
            [] e.Xml.children
          |> List.rev
          |> List.filter (function Xml.Text "" -> false | _ -> true)
        in
        Xml.element ~attrs:e.Xml.attrs e.Xml.tag merged
      in
      let d' = Parse.parse (Serialize.to_string d) in
      Xml.equal_element (norm (Xml.root d)) (norm (Xml.root d')))

let props = [ prop_serialize_parse_round_trip ]
