(* RXL: parsing, well-formedness checking, printing round trip. *)

open Silkroute
module R = Relational

let db () = Tpch.Gen.empty_database ()

let test_parse_query1 () =
  let v = Queries.query1 () in
  Alcotest.(check string) "root tag" "suppliers" v.Rxl.root_tag;
  Alcotest.(check int) "one top query" 1 (List.length v.Rxl.queries)

let test_parse_binding_and_conditions () =
  let v =
    Rxl_parser.parse
      {|view x { from Supplier $s, Nation $n
                 where $s.nationkey = $n.nationkey, $s.suppkey >= 3
                 construct <e>$n.name</e> }|}
  in
  match v.Rxl.queries with
  | [ q ] ->
      Alcotest.(check int) "two bindings" 2 (List.length q.Rxl.from_);
      Alcotest.(check int) "two conditions" 2 (List.length q.Rxl.where_);
      (match q.Rxl.where_ with
      | [ _; c2 ] -> Alcotest.(check bool) "ge parsed" true (c2.Rxl.op = R.Expr.Ge)
      | _ -> Alcotest.fail "conditions")
  | _ -> Alcotest.fail "expected one query"

let test_parse_nested_blocks_and_skolem () =
  let v =
    Rxl_parser.parse
      {|view x { from Supplier $s construct
          <a skolem=F1>
            'hello'
            { from Nation $n where $s.nationkey = $n.nationkey
              construct <b>$n.name</b> }
          </a> }|}
  in
  match v.Rxl.queries with
  | [ { Rxl.construct = [ Rxl.Element e ]; _ } ] ->
      Alcotest.(check (option string)) "explicit skolem" (Some "F1") e.Rxl.skolem;
      Alcotest.(check int) "text + block" 2 (List.length e.Rxl.content)
  | _ -> Alcotest.fail "shape"

let test_parse_comments_and_literals () =
  let v =
    Rxl_parser.parse
      {|view x -- a comment
        { from Supplier $s construct <e>42</e> <f>3.5</f> <g>'it''s'</g> }|}
  in
  match v.Rxl.queries with
  | [ { Rxl.construct = cs; _ } ] -> Alcotest.(check int) "three elements" 3 (List.length cs)
  | _ -> Alcotest.fail "shape"

let test_parse_errors () =
  let bad =
    [ "view x"; "view x { }"; "view x { from construct <e>1</e> }";
      "view x { from T $t construct }"; "view x { from T $t construct <a>1</b> }";
      "view x { from T $t construct <a>1</a> } trailing" ]
  in
  List.iter
    (fun text ->
      Alcotest.(check bool) ("rejects: " ^ text) true
        (try ignore (Rxl_parser.parse text); false
         with Rxl_parser.Parse_error _ | Rxl_lexer.Lex_error _ -> true))
    bad

let test_print_parse_round_trip () =
  List.iter
    (fun text ->
      let v = Rxl_parser.parse text in
      let v' = Rxl_parser.parse (Rxl.to_string v) in
      Alcotest.(check string) "fixpoint" (Rxl.to_string v) (Rxl.to_string v'))
    [ Queries.query1_text; Queries.query2_text; Queries.fragment_text ]

let test_check_valid_views () =
  let db = db () in
  List.iter
    (fun v -> Rxl.check db v)
    [ Queries.query1 (); Queries.query2 (); Queries.fragment () ]

let test_check_unknown_table () =
  let v = Rxl_parser.parse "view x { from Bogus $b construct <e>$b.a</e> }" in
  Alcotest.(check bool) "rejected" true
    (try Rxl.check (db ()) v; false with Rxl.Ill_formed _ -> true)

let test_check_unknown_column () =
  let v = Rxl_parser.parse "view x { from Supplier $s construct <e>$s.bogus</e> }" in
  Alcotest.(check bool) "rejected" true
    (try Rxl.check (db ()) v; false with Rxl.Ill_formed _ -> true)

let test_check_unbound_variable () =
  let v = Rxl_parser.parse "view x { from Supplier $s construct <e>$t.name</e> }" in
  Alcotest.(check bool) "rejected" true
    (try Rxl.check (db ()) v; false with Rxl.Ill_formed _ -> true)

let test_check_shadowing () =
  let v =
    Rxl_parser.parse
      {|view x { from Supplier $s construct <a>
          { from Nation $s construct <b>$s.name</b> } </a> }|}
  in
  Alcotest.(check bool) "shadowing rejected" true
    (try Rxl.check (db ()) v; false with Rxl.Ill_formed _ -> true)

let test_check_bare_text_in_block () =
  let v =
    Rxl_parser.parse
      {|view x { from Supplier $s construct <a>
          { from Nation $n where $s.nationkey = $n.nationkey construct $n.name } </a> }|}
  in
  (* bare text produced by a block would lose its guard; must be rejected *)
  Alcotest.(check bool) "rejected" true
    (try Rxl.check (db ()) v; false with Rxl.Ill_formed _ -> true)

let test_parallel_top_queries () =
  let v =
    Rxl_parser.parse
      {|view both
        { from Supplier $s construct <supplier>$s.name</supplier> }
        { from Customer $c construct <customer>$c.name</customer> }|}
  in
  Rxl.check (db ()) v;
  Alcotest.(check int) "two parallel queries" 2 (List.length v.Rxl.queries)

let suite =
  [
    Alcotest.test_case "parse Query 1" `Quick test_parse_query1;
    Alcotest.test_case "parse bindings/conditions" `Quick test_parse_binding_and_conditions;
    Alcotest.test_case "parse nested blocks + skolem" `Quick test_parse_nested_blocks_and_skolem;
    Alcotest.test_case "parse comments and literals" `Quick test_parse_comments_and_literals;
    Alcotest.test_case "parse rejects malformed" `Quick test_parse_errors;
    Alcotest.test_case "print/parse round trip" `Quick test_print_parse_round_trip;
    Alcotest.test_case "check: paper views valid" `Quick test_check_valid_views;
    Alcotest.test_case "check: unknown table" `Quick test_check_unknown_table;
    Alcotest.test_case "check: unknown column" `Quick test_check_unknown_column;
    Alcotest.test_case "check: unbound variable" `Quick test_check_unbound_variable;
    Alcotest.test_case "check: shadowing" `Quick test_check_shadowing;
    Alcotest.test_case "check: bare text in block" `Quick test_check_bare_text_in_block;
    Alcotest.test_case "parallel top queries" `Quick test_parallel_top_queries;
  ]
