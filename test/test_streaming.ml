(* The streaming pipeline (cursor execution, spooling, heap k-way merge):
   differential tests against the materialized path and the naive
   materialization, work-unit parity, and the memory bound. *)

open Silkroute
module R = Relational

(* --- cursors ----------------------------------------------------------- *)

let cols = [| "a"; "b" |]

let rows =
  [
    [| R.Value.Int 1; R.Value.String "x" |];
    [| R.Value.Int 2; R.Value.Null |];
    [| R.Value.Int 3; R.Value.String "y&z" |];
  ]

let test_cursor_roundtrip () =
  let c = R.Cursor.of_list cols rows in
  Alcotest.(check int) "arity" 2 (R.Cursor.arity c);
  let back = R.Cursor.to_list c in
  Alcotest.(check bool) "same rows" true (List.for_all2 R.Tuple.equal rows back);
  Alcotest.(check bool) "exhausted" true (R.Cursor.next c = None);
  Alcotest.(check bool) "stays exhausted" true (R.Cursor.next c = None)

let test_cursor_spool_roundtrip () =
  let seen = ref [] in
  let c =
    R.Cursor.spool
      ~on_row:(fun t -> seen := t :: !seen)
      (R.Cursor.of_list cols rows)
  in
  Alcotest.(check int) "on_row saw every tuple" (List.length rows)
    (List.length !seen);
  Alcotest.(check bool) "on_row in order" true
    (List.for_all2 R.Tuple.equal rows (List.rev !seen));
  let back = R.Cursor.to_list c in
  Alcotest.(check bool) "spool preserves rows and order" true
    (List.for_all2 R.Tuple.equal rows back);
  Alcotest.(check bool) "exhausted" true (R.Cursor.next c = None)

let test_cursor_spool_empty () =
  let c = R.Cursor.spool (R.Cursor.empty cols) in
  Alcotest.(check bool) "empty" true (R.Cursor.next c = None)

let test_executor_cursor_matches_run () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.1) in
  let q =
    R.Sql_parser.parse
      "SELECT s.name AS n FROM Supplier AS s ORDER BY n"
  in
  let rel, st_mat = R.Executor.run_with_stats db q in
  let cur, st_cur = R.Executor.run_cursor_with_stats db q in
  Alcotest.(check bool) "same rows" true
    (R.Relation.equal rel (R.Cursor.to_relation cur));
  Alcotest.(check int) "same work" st_mat.R.Executor.work
    st_cur.R.Executor.work;
  Alcotest.(check int) "same emitted" st_mat.R.Executor.emitted
    st_cur.R.Executor.emitted

(* --- differential: streaming vs materialized vs naive ------------------- *)

let serialize = Xmlkit.Serialize.to_string

(* For one (plan, style, reduce) point: the streaming path must be
   byte-identical to the materialized path (buffer sinks) and to the
   naive materialization (document sinks), with equal work-unit counts
   and equal modeled accounting. *)
let check_point ?(check_naive = None) p mask style reduce =
  let plan = Partition.of_mask p.Middleware.tree mask in
  let label =
    Printf.sprintf "mask %d, %s, reduce=%b" mask
      (match style with Sql_gen.Outer_join -> "oj" | Sql_gen.Outer_union -> "ou")
      reduce
  in
  let e = Middleware.execute ~style ~reduce p plan in
  let se = Middleware.execute_streaming ~style ~reduce p plan in
  Alcotest.(check string)
    (label ^ ": byte-identical XML")
    (Middleware.xml_string_of p e)
    (Middleware.xml_string_of_streaming p se);
  Alcotest.(check int) (label ^ ": work units") e.Middleware.work
    se.Middleware.s_work;
  Alcotest.(check int) (label ^ ": tuples") e.Middleware.tuples
    se.Middleware.s_tuples;
  Alcotest.(check int) (label ^ ": bytes") e.Middleware.bytes
    se.Middleware.s_bytes;
  Alcotest.(check (float 0.0))
    (label ^ ": transfer model")
    e.Middleware.transfer_ms se.Middleware.s_transfer_ms;
  match check_naive with
  | None -> ()
  | Some truth ->
      (* cursors are single-use: run the streaming path again for the
         document-sink comparison *)
      let se2 = Middleware.execute_streaming ~style ~reduce p plan in
      Alcotest.(check string)
        (label ^ ": byte-identical to naive")
        truth
        (serialize (Middleware.document_of_streaming p se2))

let variants = [ Sql_gen.Outer_join; Sql_gen.Outer_union ]

(* Small views: the full 2^|E| × {style} × {reduce} cross-product, each
   point also checked byte-for-byte against the naive materialization. *)
let full_cross_product text db =
  let p = Middleware.prepare_text db text in
  let truth = serialize (Middleware.materialize_naive p) in
  List.iter
    (fun mask ->
      List.iter
        (fun style ->
          List.iter
            (fun reduce ->
              check_point ~check_naive:(Some truth) p mask style reduce)
            [ false; true ])
        variants)
    (Partition.all_masks p.Middleware.tree)

let test_full_cross_product_fragment () =
  full_cross_product Queries.fragment_text (Tpch.Gen.figure8_database ())

let test_full_cross_product_mixed_content () =
  full_cross_product
    {|view v { from Nation $n construct
        <nation>$n.name
          { from Region $r where $n.regionkey = $r.regionkey
            construct <region>$r.name</region> } </nation> }|}
    (Tpch.Gen.figure8_database ())

let test_full_cross_product_forest () =
  full_cross_product
    {|view directory
      { from Supplier $s construct <supplier>$s.name</supplier> }
      { from Nation $n construct <nation>$n.name</nation> }|}
    (Tpch.Gen.figure8_database ())

(* Q1/Q2: every one of the 2^|E| plans under the default variant, the
   full {style} × {reduce} cross-product on a stride-4 subsample. *)
let exhaustive_sweep text =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.08) in
  let p = Middleware.prepare_text db text in
  List.iter
    (fun mask ->
      if mask mod 4 = 0 then
        List.iter
          (fun style ->
            List.iter
              (fun reduce -> check_point p mask style reduce)
              [ false; true ])
          variants
      else check_point p mask Sql_gen.Outer_join false)
    (Partition.all_masks p.Middleware.tree)

let test_exhaustive_q1 () = exhaustive_sweep Queries.query1_text
let test_exhaustive_q2 () = exhaustive_sweep Queries.query2_text

(* --- streaming sinks ---------------------------------------------------- *)

let test_to_channel_matches_string () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.1) in
  let p = Middleware.prepare_text db Queries.query1_text in
  let plan = Partition.of_mask p.Middleware.tree 37 in
  let expected =
    Middleware.xml_string_of_streaming p (Middleware.execute_streaming p plan)
  in
  let path = Filename.temp_file "silkroute" ".xml" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Middleware.stream_to_channel p (Middleware.execute_streaming p plan) oc;
      close_out oc;
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Alcotest.(check string) "channel sink matches buffer sink" expected s)

let test_timeout_payload () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.3) in
  let p = Middleware.prepare_text db Queries.query1_text in
  let plan = Partition.fully_partitioned p.Middleware.tree in
  match Middleware.execute ~budget:50 p plan with
  | _ -> Alcotest.fail "tiny budget must time out"
  | exception Middleware.Plan_timeout info ->
      Alcotest.(check bool) "carries SQL" true
        (String.length info.Middleware.timeout_sql > 0);
      Alcotest.(check bool) "stream index in range" true
        (info.Middleware.timeout_stream >= 0
        && info.Middleware.timeout_stream < Partition.stream_count plan);
      Alcotest.(check bool) "names the fragment root" true
        (String.length info.Middleware.timeout_root > 0);
      Alcotest.(check bool) "elapsed non-negative" true
        (info.Middleware.timeout_elapsed_ms >= 0.0);
      (* the streaming path reports the same failing stream *)
      (match Middleware.execute_streaming ~budget:50 p plan with
      | _ -> Alcotest.fail "streaming path must time out too"
      | exception Middleware.Plan_timeout info' ->
          Alcotest.(check int) "same failing stream"
            info.Middleware.timeout_stream info'.Middleware.timeout_stream;
          Alcotest.(check string) "same root" info.Middleware.timeout_root
            info'.Middleware.timeout_root)

(* --- memory bound -------------------------------------------------------- *)

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

(* Sample live words through the sink while tagging; deltas are relative
   to a post-execution baseline.  The streaming path must tag without
   holding the result set; the materialized path necessarily retains
   every stream's relation. *)
let test_streaming_memory_bounded () =
  let scale = 0.3 in
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  let p = Middleware.prepare_text db Queries.query1_text in
  let plan = Partition.of_mask p.Middleware.tree 37 in
  let highwater run_tag =
    let base = live_words () in
    let hw = ref min_int and opens = ref 0 in
    let sample () =
      let d = live_words () - base in
      if d > !hw then hw := d
    in
    let sink =
      {
        Tagger.on_open =
          (fun _ ->
            incr opens;
            if !opens mod 200 = 0 then sample ());
        on_text = (fun _ -> ());
        on_close = (fun _ -> ());
      }
    in
    run_tag sink;
    sample ();
    !hw
  in
  let hw_streaming =
    let se = Middleware.execute_streaming p plan in
    highwater (fun sink ->
        Tagger.tag_cursors p.Middleware.tree se.Middleware.cursors sink)
  in
  let hw_materialized =
    let e = Middleware.execute p plan in
    (* keep the execution record alive across tagging, as callers do *)
    let hw =
      highwater (fun sink -> Tagger.tag p.Middleware.tree e.Middleware.streams sink)
    in
    ignore (Sys.opaque_identity e);
    hw
  in
  Alcotest.(check bool)
    (Printf.sprintf "streaming hw %d words well below materialized %d"
       hw_streaming hw_materialized)
    true
    (hw_streaming * 4 < hw_materialized || hw_streaming <= 4096)

let suite =
  [
    Alcotest.test_case "cursor roundtrip" `Quick test_cursor_roundtrip;
    Alcotest.test_case "cursor spool roundtrip" `Quick test_cursor_spool_roundtrip;
    Alcotest.test_case "cursor spool empty" `Quick test_cursor_spool_empty;
    Alcotest.test_case "executor cursor = run" `Quick test_executor_cursor_matches_run;
    Alcotest.test_case "full cross-product (fragment)" `Quick test_full_cross_product_fragment;
    Alcotest.test_case "full cross-product (mixed content)" `Quick test_full_cross_product_mixed_content;
    Alcotest.test_case "full cross-product (forest)" `Quick test_full_cross_product_forest;
    Alcotest.test_case "exhaustive plans streaming = materialized (Q1)" `Slow test_exhaustive_q1;
    Alcotest.test_case "exhaustive plans streaming = materialized (Q2)" `Slow test_exhaustive_q2;
    Alcotest.test_case "to_channel sink" `Quick test_to_channel_matches_string;
    Alcotest.test_case "timeout payload" `Quick test_timeout_payload;
    Alcotest.test_case "streaming memory bounded" `Quick test_streaming_memory_bounded;
  ]
