(* The query server: cache tiers, admission control, protocol framing,
   the workload driver, and the latent-bug regressions that rode along
   with this layer (tagger empty-SFI error, planner missing-edge error,
   monotonic clock watermark). *)

open Server
module R = Relational
module S = Silkroute

(* One small database for the whole suite — server tests need real
   executions, not big ones. *)
let db = lazy (Tpch.Gen.generate (Tpch.Gen.config 0.05))

let with_server ?config f =
  let t = Service.create ?config (Lazy.force db) in
  Fun.protect ~finally:(fun () -> Service.shutdown t) (fun () -> f t)

let xml_of = function
  | Protocol.Result { xml; _ } -> xml
  | r -> Alcotest.failf "expected a result, got %s" (Protocol.reply_name r)

let tiers_of = function
  | Protocol.Result { tiers; _ } -> tiers
  | r -> Alcotest.failf "expected a result, got %s" (Protocol.reply_name r)

(* --- LRU ---------------------------------------------------------------- *)

let test_lru_hit_miss_eviction () =
  let c = Lru.create ~name:"t" ~capacity:3 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c "a");
  (* a is now MRU; adding d evicts b (the LRU) *)
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find c "a");
  Alcotest.(check (list string)) "MRU order" [ "a"; "d"; "c" ] (Lru.keys_mru c);
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 2 s.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Lru.misses;
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "entries" 3 s.Lru.entries

let test_lru_weights () =
  let c = Lru.create ~name:"t" ~capacity:100 () in
  Lru.add ~weight:60 c "a" "a";
  Lru.add ~weight:30 c "b" "b";
  (* 60 + 30 + 40 > 100: a (LRU) must go *)
  Lru.add ~weight:40 c "c" "c";
  Alcotest.(check (option string)) "a evicted" None (Lru.find c "a");
  Alcotest.(check int) "weight" 70 (Lru.total_weight c);
  (* an entry heavier than the whole budget is not admitted and does
     not disturb the cache *)
  Lru.add ~weight:101 c "huge" "huge";
  Alcotest.(check (option string)) "huge dropped" None (Lru.find c "huge");
  Alcotest.(check int) "cache untouched" 2 (Lru.length c);
  (* replacing an entry updates the weight account *)
  Lru.add ~weight:10 c "b" "b2";
  Alcotest.(check int) "replace adjusts weight" 50 (Lru.total_weight c)

let test_lru_clear_and_disabled () =
  let c = Lru.create ~name:"t" ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check int) "flush counted" 1 (Lru.stats c).Lru.flushes;
  let off = Lru.create ~name:"off" ~capacity:0 () in
  Lru.add off "a" 1;
  Alcotest.(check (option int)) "disabled never stores" None (Lru.find off "a")

let test_lru_peek_counts_nothing () =
  let c = Lru.create ~name:"t" ~capacity:2 () in
  Lru.add c "a" 1;
  Alcotest.(check (option int)) "peek hit" (Some 1) (Lru.peek c "a");
  Alcotest.(check (option int)) "peek miss" None (Lru.peek c "b");
  let s = Lru.stats c in
  Alcotest.(check int) "no hits" 0 s.Lru.hits;
  Alcotest.(check int) "no misses" 0 s.Lru.misses

let test_lru_hit_ratio () =
  (* the exposition's gauge arithmetic, pinned *)
  Alcotest.(check (float 0.0)) "0/0 is 0" 0.0 (Lru.ratio_of ~hits:0 ~misses:0);
  Alcotest.(check (float 0.0)) "3/1 is .75" 0.75 (Lru.ratio_of ~hits:3 ~misses:1);
  Alcotest.(check (float 0.0)) "all misses" 0.0 (Lru.ratio_of ~hits:0 ~misses:7);
  Alcotest.(check (float 0.0)) "all hits" 1.0 (Lru.ratio_of ~hits:5 ~misses:0);
  let c = Lru.create ~name:"t" ~capacity:2 () in
  Lru.add c "a" 1;
  ignore (Lru.find c "a");
  ignore (Lru.find c "a");
  ignore (Lru.find c "b");
  Alcotest.(check (float 1e-9)) "live accessor" (2.0 /. 3.0) (Lru.hit_ratio c);
  let s = Lru.stats c in
  Alcotest.(check (float 1e-9)) "accessor agrees with stats"
    (Lru.ratio_of ~hits:s.Lru.hits ~misses:s.Lru.misses)
    (Lru.hit_ratio c)

(* --- admission decision ------------------------------------------------- *)

let admission =
  Alcotest.testable
    (fun ppf -> function
      | Service.Admit -> Format.fprintf ppf "Admit"
      | Service.Queue -> Format.fprintf ppf "Queue"
      | Service.Reject r -> Format.fprintf ppf "Reject %s" r)
    (fun a b ->
      match (a, b) with
      | Service.Admit, Service.Admit | Service.Queue, Service.Queue -> true
      | Service.Reject _, Service.Reject _ -> true
      | _ -> false)

let test_admission_decision () =
  let c = { Service.default_config with Service.admission_budget = 100; max_queue = 2 } in
  let check name want ~est ~inflight ~waiting =
    Alcotest.check admission name want
      (Service.admission_decision c ~est_cost:est ~in_flight:inflight
         ~waiting)
  in
  check "fits" Service.Admit ~est:40.0 ~inflight:50.0 ~waiting:0;
  check "exact fit" Service.Admit ~est:50.0 ~inflight:50.0 ~waiting:0;
  check "queue while occupied" Service.Queue ~est:60.0 ~inflight:50.0 ~waiting:0;
  check "oversized rejected" (Service.Reject "") ~est:101.0 ~inflight:0.0
    ~waiting:0;
  check "full queue rejected" (Service.Reject "") ~est:60.0 ~inflight:50.0
    ~waiting:2;
  let unlimited = { c with Service.admission_budget = 0 } in
  Alcotest.check admission "unlimited admits anything" Service.Admit
    (Service.admission_decision unlimited ~est_cost:1e12 ~in_flight:1e12
       ~waiting:1000)

let test_admission_oversized_end_to_end () =
  let config =
    { Service.default_config with Service.admission_budget = 1; max_queue = 0 }
  in
  with_server ~config (fun t ->
      match
        Service.query t ~view:S.Queries.fragment_text ~strategy:"unified"
          ~reduce:false
      with
      | Protocol.Rejected reason ->
          Alcotest.(check bool) "reason names the budget" true
            (String.length reason > 0)
      | r -> Alcotest.failf "expected rejection, got %s" (Protocol.reply_name r));
  (* the same query with no budget succeeds *)
  with_server (fun t ->
      match
        Service.query t ~view:S.Queries.fragment_text ~strategy:"unified"
          ~reduce:false
      with
      | Protocol.Result _ -> ()
      | r -> Alcotest.failf "expected a result, got %s" (Protocol.reply_name r))

(* --- protocol ----------------------------------------------------------- *)

let roundtrip write read v =
  let path = Filename.temp_file "silkroute_proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      write oc v;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match read ic with
          | Some v' -> v'
          | None -> Alcotest.fail "unexpected EOF"))

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Query { view = "view <a/>"; strategy = "edges:3"; reduce = true };
      Protocol.Query { view = String.make 10_000 'x'; strategy = "greedy"; reduce = false };
      Protocol.Invalidate { table = "Supplier"; factor = 4.5 };
      Protocol.Invalidate { table = ""; factor = 1.0 };
      Protocol.Stats;
      Protocol.Metrics;
      Protocol.Health;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Protocol.request_name r) true
        (roundtrip Protocol.write_request Protocol.read_request r = r))
    reqs;
  let replies =
    [
      Protocol.Result
        {
          xml = "<doc>\xc3\xa9 &amp; bytes</doc>";
          tiers =
            { Protocol.statement_hit = true; plan_hit = false; result_hit = true };
          work = 12345;
          est_cost = 678.25;
        };
      Protocol.Info "stats";
      Protocol.Rejected "too big";
      Protocol.Failed "boom";
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Protocol.reply_name r) true
        (roundtrip Protocol.write_reply Protocol.read_reply r = r))
    replies

let test_protocol_malformed () =
  let read_garbage bytes =
    let path = Filename.temp_file "silkroute_proto" ".bin" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc bytes;
        close_out oc;
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Protocol.read_request ic))
  in
  Alcotest.(check bool) "clean EOF is None" true (read_garbage "" = None);
  Alcotest.check_raises "absurd field count"
    (Protocol.Protocol_error "bad frame field count 1094795585") (fun () ->
      ignore (read_garbage "AAAAAAAA"));
  (* count says 2 fields but the stream ends after the first *)
  let truncated =
    let b = Buffer.create 16 in
    Buffer.add_string b "\x00\x00\x00\x02";
    Buffer.add_string b "\x00\x00\x00\x01Q";
    Buffer.contents b
  in
  Alcotest.check_raises "truncated frame"
    (Protocol.Protocol_error "truncated frame (missing field length)")
    (fun () -> ignore (read_garbage truncated));
  (* telemetry requests are bare tags: a frame smuggling extra fields
     after "M" (or "H") must be refused, not silently accepted *)
  let overloaded tag =
    let b = Buffer.create 16 in
    Buffer.add_string b "\x00\x00\x00\x02";
    Buffer.add_string b ("\x00\x00\x00\x01" ^ tag);
    Buffer.add_string b "\x00\x00\x00\x01x";
    Buffer.contents b
  in
  List.iter
    (fun tag ->
      Alcotest.check_raises
        ("oversized telemetry request " ^ tag)
        (Protocol.Protocol_error
           (Printf.sprintf "telemetry request %S takes no fields" tag))
        (fun () -> ignore (read_garbage (overloaded tag))))
    [ "M"; "H" ]

(* --- cache tiers through the server ------------------------------------- *)

let test_tier_progression () =
  with_server (fun t ->
      let q () =
        Service.query t ~view:S.Queries.fragment_text ~strategy:"unified"
          ~reduce:false
      in
      let first = tiers_of (q ()) in
      Alcotest.(check bool) "cold: no tier hits" false
        (first.Protocol.statement_hit || first.Protocol.plan_hit
        || first.Protocol.result_hit);
      let second = tiers_of (q ()) in
      Alcotest.(check bool) "warm: every tier hits" true
        (second.Protocol.statement_hit && second.Protocol.plan_hit
        && second.Protocol.result_hit);
      (* same view, different strategy: statement hits, plan misses *)
      let third =
        tiers_of
          (Service.query t ~view:S.Queries.fragment_text
             ~strategy:"partitioned" ~reduce:false)
      in
      Alcotest.(check bool) "statement survives strategy change" true
        third.Protocol.statement_hit;
      Alcotest.(check bool) "plan is per-strategy" false third.Protocol.plan_hit)

let test_byte_identity_all_plans () =
  (* every point of the fragment view's 2^|E| lattice, cached and
     uncached, against the direct pipeline *)
  let db = Lazy.force db in
  let p = S.Middleware.prepare_text db S.Queries.fragment_text in
  let reference =
    let e =
      S.Middleware.execute p (S.Middleware.partition_of p S.Middleware.Unified)
    in
    S.Middleware.xml_string_of p e
  in
  let masks = S.Partition.all_masks p.S.Middleware.tree in
  Alcotest.(check bool) "whole lattice" true (List.length masks >= 4);
  with_server (fun t ->
      List.iter
        (fun mask ->
          let strategy = "edges:" ^ string_of_int mask in
          let q () =
            xml_of (Service.query t ~view:S.Queries.fragment_text ~strategy ~reduce:false)
          in
          let uncached = q () in
          let cached = q () in
          Alcotest.(check string)
            (Printf.sprintf "mask %d uncached" mask)
            reference uncached;
          Alcotest.(check string)
            (Printf.sprintf "mask %d cached" mask)
            reference cached)
        masks;
      (* the named strategies resolve into the same lattice *)
      List.iter
        (fun strategy ->
          List.iter
            (fun reduce ->
              Alcotest.(check string)
                (strategy ^ if reduce then "+reduce" else "")
                reference
                (xml_of
                   (Service.query t ~view:S.Queries.fragment_text ~strategy
                      ~reduce)))
            [ false; true ])
        [ "unified"; "partitioned"; "greedy" ])

let test_epoch_invalidation () =
  with_server (fun t ->
      let q () =
        Service.query t ~view:S.Queries.fragment_text ~strategy:"greedy"
          ~reduce:false
      in
      let before = xml_of (q ()) in
      Alcotest.(check bool) "warm before invalidation" true
        (tiers_of (q ())).Protocol.result_hit;
      Alcotest.(check int) "epoch 0" 0 (Service.stats_epoch t);
      Service.invalidate ~skew:("Supplier", 8.0) t;
      Alcotest.(check int) "epoch bumped" 1 (Service.stats_epoch t);
      let _, plans, results = Service.tier_stats t in
      Alcotest.(check int) "plan tier flushed" 0 plans.Lru.entries;
      Alcotest.(check int) "result tier flushed" 0 results.Lru.entries;
      let after = q () in
      Alcotest.(check bool) "stale entry not served" false
        (tiers_of after).Protocol.result_hit;
      (* the catalog changed but the data did not: bytes still match *)
      Alcotest.(check string) "output unchanged" before (xml_of after);
      (* statement tier does not depend on statistics *)
      let stmts, _, _ = Service.tier_stats t in
      Alcotest.(check bool) "statement tier survives" true
        (stmts.Lru.entries > 0))

let test_bad_inputs_fail_cleanly () =
  with_server (fun t ->
      (match Service.query t ~view:"not rxl at all" ~strategy:"unified" ~reduce:false with
      | Protocol.Failed _ -> ()
      | r -> Alcotest.failf "expected failure, got %s" (Protocol.reply_name r));
      (match Service.query t ~view:S.Queries.fragment_text ~strategy:"nope" ~reduce:false with
      | Protocol.Failed msg ->
          Alcotest.(check bool) "names the strategy" true
            (String.length msg > 0)
      | r -> Alcotest.failf "expected failure, got %s" (Protocol.reply_name r));
      (* a failed query must not poison the server *)
      match Service.query t ~view:S.Queries.fragment_text ~strategy:"unified" ~reduce:false with
      | Protocol.Result _ -> ()
      | r -> Alcotest.failf "server poisoned: %s" (Protocol.reply_name r))

let test_shutdown_idempotent () =
  let t = Service.create (Lazy.force db) in
  Service.shutdown t;
  Service.shutdown t;
  match
    Service.query t ~view:S.Queries.fragment_text ~strategy:"unified"
      ~reduce:false
  with
  | Protocol.Failed _ -> ()
  | r -> Alcotest.failf "expected failure after shutdown, got %s"
           (Protocol.reply_name r)

(* --- telemetry ----------------------------------------------------------- *)

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec search i = i + n <= m && (String.sub msg i n = needle || search (i + 1)) in
  search 0

let test_telemetry_endpoints () =
  let slow_log = Filename.temp_file "silkroute_slow" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove slow_log) @@ fun () ->
  let config =
    {
      Service.default_config with
      (* any real query takes longer than a nanosecond: the slow path
         and its log fire on the very first request *)
      Service.slow_ms = 1e-6;
      slow_log = Some slow_log;
      slo = Some Obs.Slo.default_config;
    }
  in
  with_server ~config (fun t ->
      ignore
        (Service.query t ~view:S.Queries.fragment_text ~strategy:"unified"
           ~reduce:false);
      (match Service.handle t Protocol.Metrics with
      | Protocol.Info text ->
          let parsed = Obs.Expose.parse text in
          let get name =
            match Obs.Expose.find parsed name with
            | Some v -> v
            | None -> Alcotest.failf "exposition is missing %s" name
          in
          Alcotest.(check (float 0.0)) "one query served" 1.0
            (get "silkroute_server_queries_total");
          Alcotest.(check bool) "uptime advances" true
            (get "silkroute_uptime_seconds" >= 0.0);
          Alcotest.(check bool) "tier gauge present" true
            (Obs.Expose.find parsed
               "silkroute_cache_hit_ratio{tier=\"statement\"}"
            <> None);
          Alcotest.(check (float 0.0)) "slow query logged" 1.0
            (get "silkroute_server_slow_queries_total");
          Alcotest.(check (float 0.0)) "slow record accepted" 1.0
            (get "silkroute_slowlog_written_total");
          Alcotest.(check (float 0.0)) "no slow-log drops" 0.0
            (get "silkroute_slowlog_dropped_total");
          Alcotest.(check (float 0.0)) "slo saw the request" 1.0
            (get "silkroute_slo_samples");
          (* families carry their TYPE declarations *)
          Alcotest.(check (option string)) "counter family typed"
            (Some "counter")
            (List.assoc_opt "silkroute_server_queries_total"
               parsed.Obs.Expose.types)
      | r -> Alcotest.failf "expected Info, got %s" (Protocol.reply_name r));
      match Service.handle t Protocol.Health with
      | Protocol.Info line ->
          Alcotest.(check bool) "health says ok" true
            (contains line "status=ok");
          Alcotest.(check bool) "health counts requests" true
            (contains line "requests=")
      | r -> Alcotest.failf "expected Info, got %s" (Protocol.reply_name r))

let request_spans () =
  List.filter
    (fun (s : Obs.Span.t) -> s.Obs.Span.name = "server.request")
    (Obs.Span.spans ())

let test_sampled_out_still_answers () =
  (* head sampling gates spans only: a sampled-out request must return
     the same bytes and still count in the scheduler counters *)
  Obs.Control.with_enabled true (fun () ->
      Fun.protect ~finally:Obs.Span.reset (fun () ->
          Obs.Span.reset ();
          let reference =
            with_server (fun t ->
                xml_of
                  (Service.query t ~view:S.Queries.fragment_text
                     ~strategy:"unified" ~reduce:false))
          in
          Alcotest.(check bool) "traced control records a span" true
            (request_spans () <> []);
          Obs.Span.reset ();
          let config = { Service.default_config with Service.trace_sample = 0 } in
          with_server ~config (fun t ->
              let xml =
                xml_of
                  (Service.query t ~view:S.Queries.fragment_text
                     ~strategy:"unified" ~reduce:false)
              in
              Alcotest.(check string) "same bytes" reference xml;
              Alcotest.(check int) "zero request spans" 0
                (List.length (request_spans ()));
              Alcotest.(check int) "query still counted" 1
                (Service.counters t).Service.queries)))

(* --- workload driver ----------------------------------------------------- *)

let small_mix =
  {
    Workload.default_config with
    Workload.clients = 2;
    requests_per_client = 6;
    invalidate_every = 4;
  }

let test_workload_script_deterministic () =
  let views = Workload.standard_views ~verify:false (Lazy.force db) in
  let a = Workload.script ~views small_mix in
  let b = Workload.script ~views small_mix in
  Alcotest.(check bool) "same script" true (a = b);
  let c =
    Workload.script ~views { small_mix with Workload.seed = small_mix.Workload.seed + 1 }
  in
  Alcotest.(check bool) "seed changes the script" true (a <> c);
  (* client 0 request 4 is the scripted invalidation *)
  (match a.(0).(4) with
  | Protocol.Invalidate _ -> ()
  | _ -> Alcotest.fail "expected a scripted invalidation");
  Alcotest.(check int) "clients" 2 (Array.length a);
  Alcotest.(check int) "requests" 6 (Array.length a.(0))

let test_workload_direct_identity_and_warmth () =
  let views = Workload.standard_views (Lazy.force db) in
  with_server (fun t ->
      let first = Workload.run_direct t ~views small_mix in
      Alcotest.(check (list string)) "no mismatches" [] first.Workload.mismatches;
      Alcotest.(check int) "no failures" 0 first.Workload.failed;
      Alcotest.(check bool) "queries ran" true (first.Workload.results > 0);
      Alcotest.(check int) "scripted invalidation arrived" 1
        first.Workload.infos);
  (* warmth needs a mix without scripted invalidations: pass 2 then
     replays entirely from the result tier *)
  let mix = { small_mix with Workload.invalidate_every = 0 } in
  with_server (fun t ->
      let cold = Workload.run_direct t ~views mix in
      let warm = Workload.run_direct t ~views mix in
      Alcotest.(check (list string)) "cold identical" [] cold.Workload.mismatches;
      Alcotest.(check (list string)) "warm identical" [] warm.Workload.mismatches;
      Alcotest.(check bool) "cold executed work" true (cold.Workload.work > 0);
      Alcotest.(check int) "warm replays from the result tier"
        warm.Workload.results warm.Workload.result_hits;
      Alcotest.(check bool) "warm executes strictly less" true
        (warm.Workload.work < cold.Workload.work))

let test_workload_threaded_identity () =
  let views = Workload.standard_views (Lazy.force db) in
  let config = { Service.default_config with Service.domains = 2 } in
  with_server ~config (fun t ->
      let tally = Workload.run_direct ~threads:true t ~views small_mix in
      Alcotest.(check (list string)) "identical under threads" []
        tally.Workload.mismatches;
      Alcotest.(check int) "no failures" 0 tally.Workload.failed)

let test_workload_socket_roundtrip () =
  let views = Workload.standard_views (Lazy.force db) in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "silkroute_test_%d.sock" (Unix.getpid ()))
  in
  let t = Service.create (Lazy.force db) in
  let server_thread =
    Thread.create (fun () -> Service.serve_unix t ~socket) ()
  in
  let rec wait_for_socket n =
    if n = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists socket) then begin
      Thread.delay 0.05;
      wait_for_socket (n - 1)
    end
  in
  wait_for_socket 100;
  let tally = Workload.run_socket ~socket ~views small_mix in
  (match Workload.request ~socket Protocol.Stats with
  | Some (Protocol.Info report) ->
      Alcotest.(check bool) "stats report mentions the tiers" true
        (String.length report > 0)
  | _ -> Alcotest.fail "no stats reply");
  (match Workload.request ~socket Protocol.Shutdown with
  | Some (Protocol.Info _) -> ()
  | _ -> Alcotest.fail "no shutdown acknowledgement");
  Thread.join server_thread;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
  Alcotest.(check (list string)) "identical over the wire" []
    tally.Workload.mismatches;
  Alcotest.(check int) "no failures" 0 tally.Workload.failed;
  Alcotest.(check bool) "queries answered" true (tally.Workload.results > 0)

(* --- latent-bug regressions ---------------------------------------------- *)

let test_tagger_empty_sfi_error () =
  let db = Lazy.force db in
  let p = S.Middleware.prepare_text db S.Queries.fragment_text in
  let tree = p.S.Middleware.tree in
  let broken =
    {
      tree with
      S.View_tree.nodes =
        Array.map
          (fun (n : S.View_tree.node) ->
            if n.S.View_tree.id = 1 then { n with S.View_tree.sfi = [] } else n)
          tree.S.View_tree.nodes;
    }
  in
  let sink, _ = S.Tagger.document_sink () in
  match S.Tagger.tag broken [] sink with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        ("descriptive message: " ^ msg)
        true
        (contains msg "empty Skolem-function index" && contains msg "node 1")

let test_planner_missing_edge_error () =
  let db = Lazy.force db in
  let p = S.Middleware.prepare_text db S.Queries.fragment_text in
  let bogus =
    { S.Planner.mandatory = [ (97, 98) ]; optional = []; requests = 0; cache_hits = 0 }
  in
  (match S.Planner.plans_of p.S.Middleware.tree bogus with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) ("plans_of names the edge: " ^ msg) true
        (contains msg "97-98" && contains msg "not an edge"));
  match S.Planner.best_plan p.S.Middleware.tree bogus with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) ("best_plan names the edge: " ^ msg) true
        (contains msg "97-98" && contains msg "not an edge")

let test_clock_monotonic_watermark () =
  (* a backwards-stepping source must never make now_ns decrease *)
  let steps = ref [ 100L; 50L; 150L; 149L; 200L ] in
  Obs.Clock.set_source (fun () ->
      match !steps with
      | [] -> 300L
      | t :: rest ->
          steps := rest;
          t);
  Fun.protect ~finally:Obs.Clock.use_default (fun () ->
      let observed = List.init 5 (fun _ -> Obs.Clock.now_ns ()) in
      Alcotest.(check (list int64)) "clamped to the watermark"
        [ 100L; 100L; 150L; 150L; 200L ] observed);
  (* the default source is the monotonic clock: strictly non-decreasing *)
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  Alcotest.(check bool) "monotonic default" true (Int64.compare a b <= 0)

let test_clock_set_source_resets_watermark () =
  Obs.Clock.set_source (fun () -> 1_000_000L);
  Fun.protect ~finally:Obs.Clock.use_default (fun () ->
      Alcotest.(check int64) "high fake time" 1_000_000L (Obs.Clock.now_ns ()));
  (* after restoring the default, a fresh watermark must not pin time to
     the fake source's high-water mark *)
  Obs.Clock.set_source (fun () -> 5L);
  Fun.protect ~finally:Obs.Clock.use_default (fun () ->
      Alcotest.(check int64) "watermark reset on set_source" 5L
        (Obs.Clock.now_ns ()))

let suite =
  [
    Alcotest.test_case "lru: hit/miss/eviction" `Quick test_lru_hit_miss_eviction;
    Alcotest.test_case "lru: weights" `Quick test_lru_weights;
    Alcotest.test_case "lru: clear + disabled" `Quick test_lru_clear_and_disabled;
    Alcotest.test_case "lru: peek" `Quick test_lru_peek_counts_nothing;
    Alcotest.test_case "lru: hit ratio" `Quick test_lru_hit_ratio;
    Alcotest.test_case "admission: decision table" `Quick test_admission_decision;
    Alcotest.test_case "admission: oversized rejected" `Quick
      test_admission_oversized_end_to_end;
    Alcotest.test_case "protocol: roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol: malformed frames" `Quick test_protocol_malformed;
    Alcotest.test_case "tiers: cold then warm" `Quick test_tier_progression;
    Alcotest.test_case "byte identity: whole lattice, cached + uncached" `Quick
      test_byte_identity_all_plans;
    Alcotest.test_case "invalidation: stats epoch" `Quick test_epoch_invalidation;
    Alcotest.test_case "bad inputs fail cleanly" `Quick test_bad_inputs_fail_cleanly;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "telemetry: metrics + health endpoints" `Quick
      test_telemetry_endpoints;
    Alcotest.test_case "telemetry: sampled-out request still answers" `Quick
      test_sampled_out_still_answers;
    Alcotest.test_case "workload: deterministic script" `Quick
      test_workload_script_deterministic;
    Alcotest.test_case "workload: identity + warmth" `Quick
      test_workload_direct_identity_and_warmth;
    Alcotest.test_case "workload: threaded clients" `Quick
      test_workload_threaded_identity;
    Alcotest.test_case "workload: socket roundtrip" `Quick
      test_workload_socket_roundtrip;
    Alcotest.test_case "regression: tagger empty SFI" `Quick
      test_tagger_empty_sfi_error;
    Alcotest.test_case "regression: planner missing edge" `Quick
      test_planner_missing_edge_error;
    Alcotest.test_case "regression: clock watermark" `Quick
      test_clock_monotonic_watermark;
    Alcotest.test_case "regression: clock source reset" `Quick
      test_clock_set_source_resets_watermark;
  ]
