(* The greedy plan-generation algorithm (paper Sec. 5, Fig. 17). *)

open Silkroute
module R = Relational

let setup ?(scale = 0.5) text =
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  (db, Middleware.prepare_text db text)

let run ?reduce ?(params = Planner.default_params) db (p : Middleware.prepared) =
  let oracle = R.Cost.oracle db in
  Planner.gen_plan ?reduce db oracle p.Middleware.tree p.Middleware.labels params

let test_terminates_and_partitions_edges () =
  let db, p = setup Queries.query1_text in
  let r = run db p in
  let chosen = r.Planner.mandatory @ r.Planner.optional in
  (* chosen edges are distinct, real view-tree edges *)
  Alcotest.(check int) "no duplicates" (List.length chosen)
    (List.length (List.sort_uniq compare chosen));
  List.iter
    (fun e ->
      Alcotest.(check bool) "real edge" true
        (Array.exists (fun e' -> e' = e) p.Middleware.tree.View_tree.edges))
    chosen

let test_thresholds_zero_merges_only_beneficial () =
  let db, p = setup Queries.query1_text in
  let params = { Planner.a = 1.0; b = 1.0; t1 = 0.0; t2 = 0.0 } in
  let r = run ~params db p in
  Alcotest.(check (list (pair int int))) "nothing optional at t2=0" [] r.Planner.optional;
  Alcotest.(check bool) "some mandatory merges" true (r.Planner.mandatory <> [])

let test_thresholds_extreme () =
  let db, p = setup Queries.query1_text in
  (* impossible thresholds: nothing merges *)
  let none =
    run ~params:{ Planner.a = 1.0; b = 1.0; t1 = -1e18; t2 = -1e18 } db p
  in
  Alcotest.(check int) "no edges chosen" 0
    (List.length (none.Planner.mandatory @ none.Planner.optional));
  (* everything below t1: all nine edges merge *)
  let all = run ~params:{ Planner.a = 1.0; b = 1.0; t1 = 1e18; t2 = 1e18 } db p in
  Alcotest.(check int) "all mandatory" 9 (List.length all.Planner.mandatory)

let test_plan_family_size () =
  let db, p = setup Queries.query1_text in
  let r = run ~reduce:true db p in
  let plans = Planner.plans_of p.Middleware.tree r in
  Alcotest.(check int) "2^|optional| plans"
    (1 lsl List.length r.Planner.optional)
    (List.length plans);
  (* all plans contain the mandatory edges *)
  List.iter
    (fun plan ->
      List.iter
        (fun e ->
          Alcotest.(check bool) "mandatory kept" true
            (List.mem e (Partition.kept_edges plan)))
        r.Planner.mandatory)
    plans

let test_best_plan_is_family_maximum () =
  let db, p = setup Queries.query2_text in
  let r = run db p in
  let best = Planner.best_plan p.Middleware.tree r in
  Alcotest.(check int) "kept = mandatory + optional"
    (List.length (r.Planner.mandatory @ r.Planner.optional))
    (List.length (Partition.kept_edges best))

let test_request_counting_far_below_worst_case () =
  (* paper Sec. 5.1: far fewer oracle requests than |E|^2 = 81 *)
  let db, p = setup Queries.query1_text in
  let r = run db p in
  Alcotest.(check bool)
    (Printf.sprintf "%d requests < 81" r.Planner.requests)
    true
    (r.Planner.requests < 81 && r.Planner.requests > 0)

let test_generated_plan_beats_baselines () =
  (* the headline claim: the greedy plan is faster than both default
     strategies *)
  let db, p = setup ~scale:1.0 Queries.query1_text in
  let r = run ~reduce:true db p in
  let best = Planner.best_plan p.Middleware.tree r in
  let work plan reduce = (Middleware.execute ~reduce p plan).Middleware.work in
  let greedy = work best true in
  let unified_ou =
    (Middleware.execute ~style:Sql_gen.Outer_union p
       (Partition.unified p.Middleware.tree)).Middleware.work
  in
  let fully = work (Partition.fully_partitioned p.Middleware.tree) true in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %d < unified outer-union %d" greedy unified_ou)
    true (greedy < unified_ou);
  Alcotest.(check bool)
    (Printf.sprintf "greedy %d < fully partitioned %d" greedy fully)
    true (greedy < fully)

let test_greedy_strategy_through_middleware () =
  let _db, p = setup Queries.query2_text in
  let plan = Middleware.partition_of p (Middleware.Greedy Planner.default_params) in
  Alcotest.(check bool) "intermediate stream count" true
    (Partition.stream_count plan >= 1 && Partition.stream_count plan <= 10);
  (* and the result is still correct *)
  let truth = Middleware.materialize_naive p in
  let e = Middleware.execute ~reduce:true p plan in
  Alcotest.(check bool) "correct output" true
    (Xmlkit.Xml.equal (Middleware.document_of p e) truth)

let test_fragment_of_helper () =
  let db, p = setup Queries.query1_text in
  ignore db;
  let f = Planner.fragment_of p.Middleware.tree [ 0; 4; 5 ] in
  (* 0 = supplier, 4 = part, 5 = part/name *)
  Alcotest.(check int) "root" 0 f.Partition.root;
  Alcotest.(check int) "two internal edges" 2 (List.length f.Partition.internal_edges)

let test_requests_is_per_run_delta () =
  (* a reused oracle must not inflate later reports: the second run on
     the same oracle reports its own request count, not the cumulative
     counter (cache warmth may make it cheaper, never negative) *)
  let db, p = setup Queries.query1_text in
  let oracle = R.Cost.oracle db in
  let gen () =
    Planner.gen_plan db oracle p.Middleware.tree p.Middleware.labels
      Planner.default_params
  in
  let first = gen () in
  let second = gen () in
  Alcotest.(check bool) "first run issues requests" true
    (first.Planner.requests > 0);
  Alcotest.(check bool)
    (Printf.sprintf "second run reports a delta (%d <= %d), not a cumulative"
       second.Planner.requests first.Planner.requests)
    true
    (second.Planner.requests >= 0
    && second.Planner.requests <= first.Planner.requests);
  (* and a fresh oracle reproduces the first run's figure exactly *)
  let fresh =
    Planner.gen_plan db (R.Cost.oracle db) p.Middleware.tree
      p.Middleware.labels Planner.default_params
  in
  Alcotest.(check int) "fresh oracle matches first run" first.Planner.requests
    fresh.Planner.requests

let test_deterministic () =
  let db, p = setup Queries.query1_text in
  let a = run db p and b = run db p in
  Alcotest.(check bool) "same result" true
    (a.Planner.mandatory = b.Planner.mandatory && a.Planner.optional = b.Planner.optional)

let suite =
  [
    Alcotest.test_case "terminates, edges valid" `Quick test_terminates_and_partitions_edges;
    Alcotest.test_case "zero thresholds" `Quick test_thresholds_zero_merges_only_beneficial;
    Alcotest.test_case "extreme thresholds" `Quick test_thresholds_extreme;
    Alcotest.test_case "plan family = 2^optional" `Quick test_plan_family_size;
    Alcotest.test_case "best plan" `Quick test_best_plan_is_family_maximum;
    Alcotest.test_case "oracle requests below worst case" `Quick test_request_counting_far_below_worst_case;
    Alcotest.test_case "greedy beats default strategies" `Quick test_generated_plan_beats_baselines;
    Alcotest.test_case "greedy via middleware + correct" `Quick test_greedy_strategy_through_middleware;
    Alcotest.test_case "fragment_of helper" `Quick test_fragment_of_helper;
    Alcotest.test_case "requests is a per-run delta" `Quick
      test_requests_is_per_run_delta;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
