(* SQL generation (paper Sec. 3.4): structure of unified / partitioned /
   reduced queries, stream layouts, degenerate cases. *)

open Silkroute
module R = Relational

let setup ?(scale = 0.1) text =
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  (db, Middleware.prepare_text db text)

let streams_of db (p : Middleware.prepared) plan opts =
  Sql_gen.streams db p.Middleware.tree plan opts

let test_unified_fragment_structure () =
  (* the paper's Sec. 3.4 example: one left outer join, one outer union *)
  let db, p = setup Queries.fragment_text in
  let plan = Partition.unified p.Middleware.tree in
  match streams_of db p plan Sql_gen.default_options with
  | [ s ] ->
      Alcotest.(check int) "one outer join" 1 (R.Sql.count_outer_joins s.Sql_gen.query);
      Alcotest.(check int) "one union" 1 (R.Sql.count_unions s.Sql_gen.query)
  | _ -> Alcotest.fail "expected one stream"

let test_fully_partitioned_no_outer_constructs () =
  (* "a fully partitioned plan has no edges and requires none of these
     constructs" *)
  let db, p = setup Queries.query1_text in
  let plan = Partition.fully_partitioned p.Middleware.tree in
  List.iter
    (fun (s : Sql_gen.stream) ->
      Alcotest.(check int) "no outer join" 0 (R.Sql.count_outer_joins s.Sql_gen.query);
      Alcotest.(check int) "no union" 0 (R.Sql.count_unions s.Sql_gen.query))
    (streams_of db p plan Sql_gen.default_options)

let test_chain_plan_no_union () =
  (* "plans with no branches do not require the union operator": keep
     only the chain S1-S1.4-S1.4.2 *)
  let db, p = setup Queries.query1_text in
  let t = p.Middleware.tree in
  let keep =
    Array.map
      (fun (a, b) ->
        let sfi id = (View_tree.node t id).View_tree.sfi in
        (sfi a, sfi b) = ([ 1 ], [ 1; 4 ]) || (sfi a, sfi b) = ([ 1; 4 ], [ 1; 4; 2 ]))
      t.View_tree.edges
  in
  let plan = Partition.of_keep t keep in
  let big =
    List.find
      (fun (s : Sql_gen.stream) ->
        List.length s.Sql_gen.fragment.Partition.members = 3)
      (streams_of db p plan Sql_gen.default_options)
  in
  Alcotest.(check int) "two outer joins" 2 (R.Sql.count_outer_joins big.Sql_gen.query);
  Alcotest.(check int) "no union" 0 (R.Sql.count_unions big.Sql_gen.query)

let test_outer_union_style_no_outer_joins () =
  let db, p = setup Queries.query1_text in
  let plan = Partition.unified p.Middleware.tree in
  let opts = { Sql_gen.style = Sql_gen.Outer_union; labels = None } in
  match streams_of db p plan opts with
  | [ s ] ->
      Alcotest.(check int) "no outer joins" 0 (R.Sql.count_outer_joins s.Sql_gen.query);
      (* one UNION ALL per node beyond the first *)
      Alcotest.(check int) "nine unions" 9 (R.Sql.count_unions s.Sql_gen.query)
  | _ -> Alcotest.fail "expected one stream"

let test_reduction_removes_branches () =
  (* "the outer join … disappears when all children are labeled 1" *)
  let db, p = setup Queries.query1_text in
  let plan = Partition.unified p.Middleware.tree in
  let opts = { Sql_gen.style = Sql_gen.Outer_join; labels = Some p.Middleware.labels } in
  match streams_of db p plan opts with
  | [ s ] ->
      let plain =
        List.hd (streams_of db p plan Sql_gen.default_options)
      in
      Alcotest.(check bool) "fewer outer joins than non-reduced" true
        (R.Sql.count_outer_joins s.Sql_gen.query
         < R.Sql.count_outer_joins plain.Sql_gen.query);
      Alcotest.(check int) "three groups" 3 (List.length s.Sql_gen.groups)
  | _ -> Alcotest.fail "expected one stream"

let test_layout_levels_and_vars () =
  let db, p = setup Queries.query1_text in
  let plan = Partition.fully_partitioned p.Middleware.tree in
  let streams = streams_of db p plan Sql_gen.default_options in
  (* the deep nation-of-customer stream carries L1..L4 and its key vars *)
  let deep =
    List.find
      (fun (s : Sql_gen.stream) ->
        (View_tree.node p.Middleware.tree s.Sql_gen.fragment.Partition.root)
          .View_tree.sfi = [ 1; 4; 2; 3 ])
      streams
  in
  let levels =
    Array.to_list deep.Sql_gen.cols
    |> List.filter_map (function Sql_gen.Level_col j -> Some j | _ -> None)
  in
  Alcotest.(check (list int)) "levels 1..4" [ 1; 2; 3; 4 ] levels;
  let vars =
    Array.to_list deep.Sql_gen.cols
    |> List.filter_map (function Sql_gen.Var_col v -> Some v | _ -> None)
  in
  List.iter
    (fun v -> Alcotest.(check bool) ("has " ^ v) true (List.mem v vars))
    [ "s_suppkey"; "ps_partkey"; "l_orderkey"; "n3_name" ]

let test_order_by_covers_all_columns () =
  let db, p = setup Queries.query1_text in
  let plan = Partition.unified p.Middleware.tree in
  List.iter
    (fun (s : Sql_gen.stream) ->
      Alcotest.(check int) "order by arity matches output"
        (Array.length s.Sql_gen.cols)
        (List.length s.Sql_gen.query.R.Sql.order_by))
    (streams_of db p plan Sql_gen.default_options)

let test_generated_sql_round_trips () =
  let db, p = setup Queries.query2_text in
  List.iter
    (fun mask ->
      let plan = Partition.of_mask p.Middleware.tree mask in
      List.iter
        (fun (s : Sql_gen.stream) ->
          let text = R.Sql_print.to_string s.Sql_gen.query in
          let again = R.Sql_print.to_string (R.Sql_parser.parse text) in
          Alcotest.(check string) "sql text round trip" text again)
        (streams_of db p plan Sql_gen.default_options))
    [ 0; 17; 311; 511 ]

let test_correlation_on_shared_vars () =
  (* paper's example: ON (L2=1 AND nationkey) OR (L2=2 AND suppkey) *)
  let db, p = setup Queries.fragment_text in
  let plan = Partition.unified p.Middleware.tree in
  let s = List.hd (streams_of db p plan Sql_gen.default_options) in
  let text = R.Sql_print.to_string s.Sql_gen.query in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "nation correlation" true (contains "s_nationkey = q0.s_nationkey");
  Alcotest.(check bool) "part correlation" true (contains "s_suppkey = q0.s_suppkey");
  Alcotest.(check bool) "level guards" true (contains "q0.L2 = 1")

let test_var_flow_restriction_raises () =
  (* an artificial view where a join variable skips the middle block and
     is not functionally determined by what flows *)
  let db = R.Database.create () in
  R.Database.add_table db
    (R.Schema.table "A" ~key:[ "a" ]
       [ R.Schema.column "a" R.Value.TInt; R.Schema.column "x" R.Value.TInt ]);
  R.Database.add_table db
    (R.Schema.table "B" ~key:[ "b" ] [ R.Schema.column "b" R.Value.TInt ]);
  R.Database.add_table db
    (R.Schema.table "C" ~key:[ "c" ]
       [ R.Schema.column "c" R.Value.TInt; R.Schema.column "x" R.Value.TInt ]);
  let p =
    Middleware.prepare_text db
      {|view v { from A $a construct <a>
          { from B $b construct <b>
              { from C $c where $c.x = $a.x construct <c>$c.c</c> } </b> } </a> }|}
  in
  let plan = Partition.unified p.Middleware.tree in
  Alcotest.(check bool) "raises Unsupported" true
    (try
       ignore (Sql_gen.streams db p.Middleware.tree plan Sql_gen.default_options);
       false
     with Sql_gen.Unsupported _ -> true)

let test_fd_determined_skip_allowed () =
  (* the same shape is fine when the skipped variable is FD-determined by
     a flowing key (s_name determined by s_suppkey) — mask 24 of Query 1
     exercises exactly this *)
  let db, p = setup Queries.query1_text in
  let plan = Partition.of_mask p.Middleware.tree 24 in
  let streams = streams_of db p plan Sql_gen.default_options in
  Alcotest.(check bool) "generates" true (List.length streams > 0)

let suite =
  [
    Alcotest.test_case "unified structure (Sec. 3.4)" `Quick test_unified_fragment_structure;
    Alcotest.test_case "fully partitioned: plain SQL" `Quick test_fully_partitioned_no_outer_constructs;
    Alcotest.test_case "chain plan: no union" `Quick test_chain_plan_no_union;
    Alcotest.test_case "outer-union style" `Quick test_outer_union_style_no_outer_joins;
    Alcotest.test_case "reduction removes branches" `Quick test_reduction_removes_branches;
    Alcotest.test_case "stream layout" `Quick test_layout_levels_and_vars;
    Alcotest.test_case "ORDER BY covers columns" `Quick test_order_by_covers_all_columns;
    Alcotest.test_case "generated SQL round trips" `Quick test_generated_sql_round_trips;
    Alcotest.test_case "correlation predicates" `Quick test_correlation_on_shared_vars;
    Alcotest.test_case "var-flow restriction" `Quick test_var_flow_restriction_raises;
    Alcotest.test_case "FD-determined skip allowed" `Quick test_fd_determined_skip_allowed;
  ]
