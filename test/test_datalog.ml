(* Datalog substrate: rules, naive evaluation, FD closure, containment
   and the C2 chase. *)

open Datalog
module R = Relational

let i n = R.Value.Int n

(* Small schema — keys starred: Emp(id., name, dept), Dept(did., dname),
   Proj(pid., did). *)
let mkdb () =
  let db = R.Database.create () in
  R.Database.add_table db
    (R.Schema.table "Emp" ~key:[ "id" ]
       ~foreign_keys:
         [ { R.Schema.fk_cols = [ "dept" ]; ref_table = "Dept"; ref_cols = [ "did" ] } ]
       [ R.Schema.column "id" R.Value.TInt;
         R.Schema.column "name" R.Value.TString;
         R.Schema.column "dept" R.Value.TInt ]);
  R.Database.add_table db
    (R.Schema.table "Dept" ~key:[ "did" ]
       [ R.Schema.column "did" R.Value.TInt; R.Schema.column "dname" R.Value.TString ]);
  R.Database.add_table db
    (R.Schema.table "Proj" ~key:[ "pid" ]
       ~foreign_keys:
         [ { R.Schema.fk_cols = [ "did" ]; ref_table = "Dept"; ref_cols = [ "did" ] } ]
       [ R.Schema.column "pid" R.Value.TInt; R.Schema.column "did" R.Value.TInt ]);
  R.Database.load db "Emp"
    [ [| i 1; R.Value.String "ann"; i 10 |];
      [| i 2; R.Value.String "bob"; i 10 |];
      [| i 3; R.Value.String "cyd"; i 20 |] ];
  R.Database.load db "Dept"
    [ [| i 10; R.Value.String "eng" |]; [| i 20; R.Value.String "ops" |];
      [| i 30; R.Value.String "idle" |] ];
  R.Database.load db "Proj" [ [| i 100; i 10 |]; [| i 101; i 10 |] ];
  db

let schema_of db name = R.Database.schema db name

let v x = Rule.Var x
let w = Rule.Wild

let emp_dept_rule =
  Rule.make ~head_name:"Q" ~head_vars:[ "id"; "dname" ]
    [ Rule.atom "Emp" [ v "id"; w; v "d" ]; Rule.atom "Dept" [ v "d"; v "dname" ] ]

let test_rule_printing () =
  Alcotest.(check string) "render"
    "Q(id, dname) :- Emp(id, _, d), Dept(d, dname)"
    (Rule.to_string emp_dept_rule)

let test_rule_safety () =
  Alcotest.(check bool) "safe" true (Rule.is_safe emp_dept_rule);
  let unsafe = Rule.make ~head_name:"U" ~head_vars:[ "zzz" ] [ Rule.atom "Dept" [ v "d"; w ] ] in
  Alcotest.(check bool) "unsafe" false (Rule.is_safe unsafe)

let test_rule_rename () =
  let r = Rule.rename_var ~from_:"d" ~to_:"dept" emp_dept_rule in
  Alcotest.(check bool) "renamed everywhere" true
    (List.mem "dept" (Rule.body_vars r) && not (List.mem "d" (Rule.body_vars r)))

let test_eval_join () =
  let db = mkdb () in
  let r = Eval.run db emp_dept_rule in
  Alcotest.(check int) "three employees" 3 (R.Relation.cardinality r);
  Alcotest.(check bool) "ann in eng" true
    (List.exists
       (fun t -> R.Value.equal t.(0) (i 1) && R.Value.equal t.(1) (R.Value.String "eng"))
       (R.Relation.rows r))

let test_eval_set_semantics () =
  let db = mkdb () in
  (* projecting Emp onto dept yields distinct values *)
  let r =
    Eval.run db
      (Rule.make ~head_name:"D" ~head_vars:[ "d" ] [ Rule.atom "Emp" [ w; w; v "d" ] ])
  in
  Alcotest.(check int) "two departments" 2 (R.Relation.cardinality r)

let test_eval_constants_and_filters () =
  let db = mkdb () in
  let r =
    Eval.run db
      (Rule.make ~head_name:"F" ~head_vars:[ "id" ]
         ~filters:[ Rule.filter R.Expr.Ge (v "id") (Rule.Const (i 2)) ]
         [ Rule.atom "Emp" [ v "id"; w; Rule.Const (i 10) ] ])
  in
  Alcotest.(check int) "id>=2 in dept 10" 1 (R.Relation.cardinality r)

let test_eval_rejects_unsafe () =
  let db = mkdb () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval.run db (Rule.make ~head_name:"U" ~head_vars:[ "x" ]
                              [ Rule.atom "Dept" [ v "d"; w ] ]));
       false
     with Invalid_argument _ -> true)

let test_eval_rejects_bad_arity () =
  let db = mkdb () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval.run db (Rule.make ~head_name:"B" ~head_vars:[ "d" ]
                              [ Rule.atom "Dept" [ v "d" ] ]));
       false
     with Invalid_argument _ -> true)

let test_conjoin_bodies () =
  let extra =
    Rule.make ~head_name:"X" ~head_vars:[]
      [ Rule.atom "Dept" [ v "d"; v "dname" ]; Rule.atom "Proj" [ v "p"; v "d" ] ]
  in
  let merged = Rule.conjoin_bodies emp_dept_rule extra in
  Alcotest.(check int) "duplicate Dept atom dropped" 3 (List.length merged.Rule.atoms)

(* --- FD reasoning ------------------------------------------------------ *)

let test_fd_key_determines_atom () =
  let db = mkdb () in
  Alcotest.(check bool) "id -> dname" true
    (Fd.functionally_determines ~schema_of:(schema_of db) ~child:emp_dept_rule
       [ "id" ] [ "dname" ]);
  Alcotest.(check bool) "dname does not determine id" false
    (Fd.functionally_determines ~schema_of:(schema_of db) ~child:emp_dept_rule
       [ "dname" ] [ "id" ])

let test_fd_closure_transitive () =
  let fds = [ Fd.fd [ "a" ] [ "b" ]; Fd.fd [ "b" ] [ "c" ] ] in
  Alcotest.(check bool) "a -> c" true (Fd.implies fds [ "a" ] [ "c" ]);
  Alcotest.(check bool) "c does not -> a" false (Fd.implies fds [ "c" ] [ "a" ])

let test_fd_constant_binding () =
  let db = mkdb () in
  let r =
    Rule.make ~head_name:"C" ~head_vars:[ "id"; "d" ]
      ~filters:[ Rule.filter R.Expr.Eq (v "d") (Rule.Const (i 10)) ]
      [ Rule.atom "Emp" [ v "id"; w; v "d" ] ]
  in
  (* d is bound by a constant: determined by the empty set *)
  Alcotest.(check bool) "{} -> d" true
    (Fd.functionally_determines ~schema_of:(schema_of db) ~child:r [] [ "d" ])

let test_fd_equality_filter () =
  let db = mkdb () in
  let r =
    Rule.make ~head_name:"E" ~head_vars:[ "a"; "b" ]
      ~filters:[ Rule.filter R.Expr.Eq (v "a") (v "b") ]
      [ Rule.atom "Emp" [ v "a"; w; w ]; Rule.atom "Emp" [ v "b"; w; w ] ]
  in
  Alcotest.(check bool) "a -> b via equality" true
    (Fd.functionally_determines ~schema_of:(schema_of db) ~child:r [ "a" ] [ "b" ])

(* --- containment -------------------------------------------------------- *)

let test_containment_identical () =
  Alcotest.(check bool) "self contained" true
    (Contain.contained emp_dept_rule emp_dept_rule);
  Alcotest.(check bool) "self equivalent" true
    (Contain.equivalent emp_dept_rule emp_dept_rule)

let test_containment_extra_atom () =
  let narrower =
    Rule.make ~head_name:"Q" ~head_vars:[ "id"; "dname" ]
      [ Rule.atom "Emp" [ v "id"; w; v "d" ]; Rule.atom "Dept" [ v "d"; v "dname" ];
        Rule.atom "Proj" [ v "p"; v "d" ] ]
  in
  Alcotest.(check bool) "narrower ⊆ wider" true (Contain.contained narrower emp_dept_rule);
  Alcotest.(check bool) "wider ⊄ narrower" false (Contain.contained emp_dept_rule narrower);
  Alcotest.(check bool) "not equivalent" false (Contain.equivalent narrower emp_dept_rule)

let test_containment_renamed_equivalent () =
  let renamed = Rule.rename_var ~from_:"d" ~to_:"dd" emp_dept_rule in
  Alcotest.(check bool) "alpha-equivalent" true (Contain.equivalent renamed emp_dept_rule)

let test_containment_respects_constants () =
  let with_const =
    Rule.make ~head_name:"Q" ~head_vars:[ "id" ]
      [ Rule.atom "Emp" [ v "id"; w; Rule.Const (i 10) ] ]
  in
  let without =
    Rule.make ~head_name:"Q" ~head_vars:[ "id" ] [ Rule.atom "Emp" [ v "id"; w; w ] ]
  in
  Alcotest.(check bool) "const ⊆ free" true (Contain.contained with_const without);
  Alcotest.(check bool) "free ⊄ const" false (Contain.contained without with_const)

(* --- C2 chase ------------------------------------------------------------ *)

let test_always_extends_fk_chain () =
  let db = mkdb () in
  let parent =
    Rule.make ~head_name:"P" ~head_vars:[ "id" ] [ Rule.atom "Emp" [ v "id"; w; v "d" ] ]
  in
  let child =
    Rule.make ~head_name:"C" ~head_vars:[ "id"; "dname" ]
      [ Rule.atom "Emp" [ v "id"; w; v "d" ]; Rule.atom "Dept" [ v "d"; v "dname" ] ]
  in
  (* Emp.dept is a NOT NULL FK onto Dept's key: every employee extends *)
  Alcotest.(check bool) "chase succeeds" true
    (Contain.always_extends ~schema_of:(schema_of db)
       ~inclusions:(R.Database.inclusions db) ~parent ~child)

let test_always_extends_reverse_fails () =
  let db = mkdb () in
  let parent =
    Rule.make ~head_name:"P" ~head_vars:[ "d" ] [ Rule.atom "Dept" [ v "d"; w ] ]
  in
  let child =
    Rule.make ~head_name:"C" ~head_vars:[ "d"; "id" ]
      [ Rule.atom "Dept" [ v "d"; w ]; Rule.atom "Emp" [ v "id"; w; v "d" ] ]
  in
  (* departments may have no employees: no FK from Dept to Emp *)
  Alcotest.(check bool) "chase fails" false
    (Contain.always_extends ~schema_of:(schema_of db)
       ~inclusions:(R.Database.inclusions db) ~parent ~child)

let test_always_extends_with_declared_inclusion () =
  let db = mkdb () in
  R.Database.declare_inclusion db
    { R.Schema.inc_table = "Dept"; inc_cols = [ "did" ]; inc_ref_table = "Emp";
      inc_ref_cols = [ "dept" ] };
  let parent =
    Rule.make ~head_name:"P" ~head_vars:[ "d" ] [ Rule.atom "Dept" [ v "d"; w ] ]
  in
  let child =
    Rule.make ~head_name:"C" ~head_vars:[ "d"; "id" ]
      [ Rule.atom "Dept" [ v "d"; w ]; Rule.atom "Emp" [ v "id"; w; v "d" ] ]
  in
  Alcotest.(check bool) "declared total participation chases" true
    (Contain.always_extends ~schema_of:(schema_of db)
       ~inclusions:(R.Database.inclusions db) ~parent ~child)

let test_always_extends_equal_bodies () =
  let db = mkdb () in
  Alcotest.(check bool) "same body trivially extends" true
    (Contain.always_extends ~schema_of:(schema_of db) ~inclusions:[]
       ~parent:emp_dept_rule ~child:emp_dept_rule)

let test_always_extends_extra_filter_blocks () =
  let db = mkdb () in
  let child =
    { emp_dept_rule with
      Rule.filters = [ Rule.filter R.Expr.Gt (v "id") (Rule.Const (i 1)) ] }
  in
  Alcotest.(check bool) "extra filter cannot be guaranteed" false
    (Contain.always_extends ~schema_of:(schema_of db) ~inclusions:[]
       ~parent:emp_dept_rule ~child)

let test_always_extends_two_step_chain () =
  let db = mkdb () in
  (* Proj -> Dept via FK, then nothing further needed *)
  let parent =
    Rule.make ~head_name:"P" ~head_vars:[ "p" ] [ Rule.atom "Proj" [ v "p"; v "d" ] ]
  in
  let child =
    Rule.make ~head_name:"C" ~head_vars:[ "p"; "dname" ]
      [ Rule.atom "Proj" [ v "p"; v "d" ]; Rule.atom "Dept" [ v "d"; v "dname" ] ]
  in
  Alcotest.(check bool) "chases through FK" true
    (Contain.always_extends ~schema_of:(schema_of db) ~inclusions:[] ~parent ~child)

let test_always_extends_composite_fk () =
  (* composite-key FK: LineItem(orderkey,lno) -> PartSupp(partkey,suppkey) *)
  let db = R.Database.create () in
  R.Database.add_table db
    (R.Schema.table "PS" ~key:[ "pk"; "sk" ]
       [ R.Schema.column "pk" R.Value.TInt; R.Schema.column "sk" R.Value.TInt ]);
  R.Database.add_table db
    (R.Schema.table "LI" ~key:[ "li" ]
       ~foreign_keys:
         [ { R.Schema.fk_cols = [ "pk"; "sk" ]; ref_table = "PS";
             ref_cols = [ "pk"; "sk" ] } ]
       [ R.Schema.column "li" R.Value.TInt; R.Schema.column "pk" R.Value.TInt;
         R.Schema.column "sk" R.Value.TInt ]);
  let parent =
    Rule.make ~head_name:"P" ~head_vars:[ "li" ]
      [ Rule.atom "LI" [ v "li"; v "pk"; v "sk" ] ]
  in
  let child =
    Rule.make ~head_name:"C" ~head_vars:[ "li" ]
      [ Rule.atom "LI" [ v "li"; v "pk"; v "sk" ];
        Rule.atom "PS" [ v "pk"; v "sk" ] ]
  in
  Alcotest.(check bool) "composite chase" true
    (Contain.always_extends ~schema_of:(fun n -> R.Database.schema db n)
       ~inclusions:[] ~parent ~child);
  (* partial match (only pk shared) must NOT chase *)
  let child_bad =
    Rule.make ~head_name:"C" ~head_vars:[ "li" ]
      [ Rule.atom "LI" [ v "li"; v "pk"; v "sk" ];
        Rule.atom "PS" [ v "pk"; v "other" ] ]
  in
  Alcotest.(check bool) "partial key no chase" false
    (Contain.always_extends ~schema_of:(fun n -> R.Database.schema db n)
       ~inclusions:[] ~parent ~child:child_bad)

let suite =
  [
    Alcotest.test_case "rule printing" `Quick test_rule_printing;
    Alcotest.test_case "C2: composite FK" `Quick test_always_extends_composite_fk;
    Alcotest.test_case "rule safety" `Quick test_rule_safety;
    Alcotest.test_case "rule rename" `Quick test_rule_rename;
    Alcotest.test_case "eval: join" `Quick test_eval_join;
    Alcotest.test_case "eval: set semantics" `Quick test_eval_set_semantics;
    Alcotest.test_case "eval: constants and filters" `Quick test_eval_constants_and_filters;
    Alcotest.test_case "eval: rejects unsafe" `Quick test_eval_rejects_unsafe;
    Alcotest.test_case "eval: rejects bad arity" `Quick test_eval_rejects_bad_arity;
    Alcotest.test_case "conjoin bodies dedups" `Quick test_conjoin_bodies;
    Alcotest.test_case "fd: key determines atom" `Quick test_fd_key_determines_atom;
    Alcotest.test_case "fd: transitive closure" `Quick test_fd_closure_transitive;
    Alcotest.test_case "fd: constant binding" `Quick test_fd_constant_binding;
    Alcotest.test_case "fd: equality filter" `Quick test_fd_equality_filter;
    Alcotest.test_case "containment: identity" `Quick test_containment_identical;
    Alcotest.test_case "containment: extra atom" `Quick test_containment_extra_atom;
    Alcotest.test_case "containment: alpha equivalence" `Quick test_containment_renamed_equivalent;
    Alcotest.test_case "containment: constants" `Quick test_containment_respects_constants;
    Alcotest.test_case "C2: FK chase" `Quick test_always_extends_fk_chain;
    Alcotest.test_case "C2: reverse fails" `Quick test_always_extends_reverse_fails;
    Alcotest.test_case "C2: declared inclusion" `Quick test_always_extends_with_declared_inclusion;
    Alcotest.test_case "C2: equal bodies" `Quick test_always_extends_equal_bodies;
    Alcotest.test_case "C2: extra filter blocks" `Quick test_always_extends_extra_filter_blocks;
    Alcotest.test_case "C2: two-step chain" `Quick test_always_extends_two_step_chain;
  ]
