(* View trees: structure, Skolem indices, rules, delta decomposition,
   sort attributes, instance semantics (paper Sec. 3.1). *)

open Silkroute
module R = Relational
module D = Datalog

let tree_of text db = View_tree.of_view db (Rxl_parser.parse text)

let q1_tree db = tree_of Queries.query1_text db
let q2_tree db = tree_of Queries.query2_text db

let name_of t id = View_tree.skolem_name (View_tree.node t id).View_tree.sfi

let test_q1_shape () =
  let t = q1_tree (Tpch.Gen.empty_database ()) in
  Alcotest.(check int) "10 nodes" 10 (View_tree.node_count t);
  Alcotest.(check int) "9 edges" 9 (View_tree.edge_count t);
  Alcotest.(check (list int)) "one root" [ 0 ] (View_tree.roots t);
  (* Fig. 6: S1 has four children, S1.4 two, S1.4.2 three *)
  Alcotest.(check int) "S1 children" 4 (List.length (View_tree.children t 0));
  let part =
    Array.to_list t.View_tree.nodes
    |> List.find (fun n -> n.View_tree.sfi = [ 1; 4 ])
  in
  Alcotest.(check string) "S1.4 is part" "part" part.View_tree.tag;
  Alcotest.(check int) "part children" 2 (List.length (View_tree.children t part.View_tree.id))

let test_q2_shape () =
  let t = q2_tree (Tpch.Gen.empty_database ()) in
  Alcotest.(check int) "10 nodes" 10 (View_tree.node_count t);
  Alcotest.(check int) "9 edges" 9 (View_tree.edge_count t);
  (* Fig. 12: the two one-to-many blocks are parallel under S1 *)
  Alcotest.(check int) "S1 children" 5 (List.length (View_tree.children t 0))

let test_skolem_names () =
  let t = q1_tree (Tpch.Gen.empty_database ()) in
  let names = Array.to_list (Array.map (fun n -> View_tree.skolem_name n.View_tree.sfi) t.View_tree.nodes) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("has " ^ expected) true (List.mem expected names))
    [ "S1"; "S1.1"; "S1.2"; "S1.3"; "S1.4"; "S1.4.1"; "S1.4.2";
      "S1.4.2.1"; "S1.4.2.2"; "S1.4.2.3" ]

let test_rules_match_paper_fig4 () =
  (* the fragment query's tree is exactly Fig. 4 *)
  let db = Tpch.Gen.empty_database () in
  let t = tree_of Queries.fragment_text db in
  Alcotest.(check int) "3 nodes" 3 (View_tree.node_count t);
  let root = View_tree.node t 0 in
  Alcotest.(check string) "root rule"
    "S1(s_suppkey) :- Supplier(s_suppkey, _, _, s_nationkey)"
    (D.Rule.to_string root.View_tree.rule);
  let nation = View_tree.node t 1 in
  (* shared variable s_nationkey encodes the join, as in Fig. 4 *)
  Alcotest.(check string) "nation rule"
    "S1.1(s_suppkey, s_nationkey, n_name) :- Supplier(s_suppkey, _, _, s_nationkey), Nation(s_nationkey, n_name, _)"
    (D.Rule.to_string nation.View_tree.rule)

let test_key_vars_accumulate_scope () =
  let db = Tpch.Gen.empty_database () in
  let t = q1_tree db in
  let order =
    Array.to_list t.View_tree.nodes
    |> List.find (fun n -> n.View_tree.sfi = [ 1; 4; 2 ])
  in
  (* order's identity includes supplier, partsupp, part, lineitem, orders keys *)
  List.iter
    (fun v ->
      Alcotest.(check bool) ("key var " ^ v) true
        (List.mem v order.View_tree.key_vars))
    [ "s_suppkey"; "ps_partkey"; "l_orderkey"; "l_lno" ]

let test_delta_decomposition () =
  let db = Tpch.Gen.empty_database () in
  let t = q1_tree db in
  let by_sfi sfi =
    Array.to_list t.View_tree.nodes |> List.find (fun n -> n.View_tree.sfi = sfi)
  in
  (* the <name> leaf introduces no atoms *)
  Alcotest.(check int) "name delta empty" 0
    (List.length (by_sfi [ 1; 1 ]).View_tree.delta_atoms);
  (* nation introduces exactly the Nation atom *)
  Alcotest.(check int) "nation delta" 1
    (List.length (by_sfi [ 1; 2 ]).View_tree.delta_atoms);
  (* part introduces PartSupp and Part *)
  Alcotest.(check int) "part delta" 2
    (List.length (by_sfi [ 1; 4 ]).View_tree.delta_atoms)

let test_svi_assignment () =
  let db = Tpch.Gen.empty_database () in
  let t = q1_tree db in
  (* suppkey is introduced at the root: level 1, first variable *)
  Alcotest.(check (option (pair int int))) "suppkey (1,1)" (Some (1, 1))
    (View_tree.svi_of t "s_suppkey");
  (* every head variable has an SVI *)
  Array.iter
    (fun n ->
      List.iter
        (fun v ->
          Alcotest.(check bool) ("svi for " ^ v) true (View_tree.svi_of t v <> None))
        n.View_tree.rule.D.Rule.head_vars)
    t.View_tree.nodes;
  (* SVIs are unique *)
  let svis = List.map snd t.View_tree.svi in
  Alcotest.(check int) "unique" (List.length svis)
    (List.length (List.sort_uniq compare svis))

let test_contents () =
  let db = Tpch.Gen.empty_database () in
  let t = q1_tree db in
  let name =
    Array.to_list t.View_tree.nodes |> List.find (fun n -> n.View_tree.sfi = [ 1; 1 ])
  in
  (match name.View_tree.contents with
  | [ (_, View_tree.Content_var v) ] ->
      Alcotest.(check string) "content var" "s_name" v
  | _ -> Alcotest.fail "expected one content var");
  Alcotest.(check (list string)) "content_vars" [ "s_name" ] (View_tree.content_vars name)

let test_sort_attrs_structure () =
  let db = Tpch.Gen.empty_database () in
  let t = q1_tree db in
  let attrs = View_tree.sort_attrs t in
  (* starts with L1 then the level-1 key *)
  (match attrs with
  | View_tree.Level 1 :: View_tree.Variable "s_suppkey" :: _ -> ()
  | _ -> Alcotest.fail "expected L1, s_suppkey prefix");
  (* levels appear in order 1..4 *)
  let levels = List.filter_map (function View_tree.Level j -> Some j | _ -> None) attrs in
  Alcotest.(check (list int)) "levels" [ 1; 2; 3; 4 ] levels;
  (* content vars come after all levels *)
  let positions = List.mapi (fun i a -> (a, i)) attrs in
  let pos_of a = List.assoc a positions in
  Alcotest.(check bool) "content after last level" true
    (pos_of (View_tree.Variable "s_name") > pos_of (View_tree.Level 4))

let test_instances_ground_truth () =
  let db = Tpch.Gen.figure8_database () in
  let t = tree_of Queries.fragment_text db in
  Alcotest.(check int) "3 suppliers" 3
    (R.Relation.cardinality (View_tree.instances db t 0));
  Alcotest.(check int) "3 nations" 3
    (R.Relation.cardinality (View_tree.instances db t 1));
  Alcotest.(check int) "3 parts" 3
    (R.Relation.cardinality (View_tree.instances db t 2))

let test_explicit_skolem_respected () =
  let db = Tpch.Gen.empty_database () in
  let t =
    tree_of
      {|view x { from Supplier $s construct <e skolem=MyF>$s.name</e> }|}
      db
  in
  Alcotest.(check string) "head name" "MyF"
    (View_tree.node t 0).View_tree.rule.D.Rule.head_name

let test_same_table_twice_distinct_aliases () =
  let db = Tpch.Gen.empty_database () in
  let t = q1_tree db in
  (* Query 1 binds Nation three times ($n, $n2, $n3); aliases must differ *)
  let aliases =
    Array.to_list t.View_tree.nodes
    |> List.concat_map (fun n -> n.View_tree.scope)
    |> List.filter (fun (_, table) -> table = "Nation")
    |> List.map fst
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "three nation aliases" 3 (List.length aliases)

let test_edges_parent_before_child () =
  let db = Tpch.Gen.empty_database () in
  List.iter
    (fun t ->
      Array.iter
        (fun (p, c) ->
          Alcotest.(check bool)
            (Printf.sprintf "edge %s->%s ordered" (name_of t p) (name_of t c))
            true (p < c))
        t.View_tree.edges)
    [ q1_tree db; q2_tree db ]

let test_pp_smoke () =
  let db = Tpch.Gen.empty_database () in
  let s = View_tree.to_string (q1_tree db) in
  Alcotest.(check bool) "mentions supplier" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 8 <= String.length s && (String.sub s i 8 = "supplier" || contains (i + 1))
    in
    contains 0)

let suite =
  [
    Alcotest.test_case "Query 1 shape (Fig. 6)" `Quick test_q1_shape;
    Alcotest.test_case "Query 2 shape (Fig. 12)" `Quick test_q2_shape;
    Alcotest.test_case "Skolem names" `Quick test_skolem_names;
    Alcotest.test_case "rules match Fig. 4" `Quick test_rules_match_paper_fig4;
    Alcotest.test_case "key vars accumulate scope" `Quick test_key_vars_accumulate_scope;
    Alcotest.test_case "delta decomposition" `Quick test_delta_decomposition;
    Alcotest.test_case "SVI assignment" `Quick test_svi_assignment;
    Alcotest.test_case "contents" `Quick test_contents;
    Alcotest.test_case "sort attributes" `Quick test_sort_attrs_structure;
    Alcotest.test_case "instance ground truth" `Quick test_instances_ground_truth;
    Alcotest.test_case "explicit Skolem" `Quick test_explicit_skolem_respected;
    Alcotest.test_case "repeated table aliases" `Quick test_same_table_twice_distinct_aliases;
    Alcotest.test_case "edge ordering" `Quick test_edges_parent_before_child;
    Alcotest.test_case "pretty printing" `Quick test_pp_smoke;
  ]
