(* The telemetry layer added for the live server: exposition
   render/parse round trips, the rolling SLO tracker under a scripted
   clock, the bounded slow-log writer, trace-id propagation through the
   worker pool, and a multi-domain stress on the metrics registry. *)

open Server
module E = Obs.Expose

let db = lazy (Tpch.Gen.generate (Tpch.Gen.config 0.05))

let with_obs f =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Event.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.Event.reset ())
    (fun () -> Obs.Control.with_enabled true f)

(* --- exposition --------------------------------------------------------- *)

let test_expose_roundtrip () =
  let samples =
    [
      E.sample E.Counter "requests_total" 42.0;
      E.sample ~labels:[ ("tier", "plan"); ("op", "find") ] E.Counter
        "cache_hits_total" 7.0;
      E.sample E.Gauge "queue_depth" 3.5;
      E.sample ~labels:[ ("quantile", "0.5") ] E.Summary "request_ms" 1.25;
      E.sample ~labels:[ ("quantile", "0.99") ] E.Summary "request_ms" 9.0;
      E.sample E.Summary "request_ms_sum" 10.25;
      E.sample E.Summary "request_ms_count" 2.0;
    ]
  in
  let text = E.render samples in
  let parsed = E.parse text in
  (* every sample comes back, in order, under key_of's exact syntax *)
  Alcotest.(check int) "all samples parsed" (List.length samples)
    (List.length parsed.E.values);
  List.iter2
    (fun s (key, v) ->
      Alcotest.(check string) "key" (E.key_of s) key;
      Alcotest.(check (float 0.0)) ("value of " ^ key) s.E.s_value v)
    samples parsed.E.values;
  Alcotest.(check (option (float 0.0))) "labeled lookup" (Some 7.0)
    (E.find parsed "cache_hits_total{tier=\"plan\",op=\"find\"}");
  Alcotest.(check (option string)) "counter family" (Some "counter")
    (List.assoc_opt "requests_total" parsed.E.types);
  (* the summary's _sum/_count share one family with its quantiles *)
  Alcotest.(check (option string)) "summary family" (Some "summary")
    (List.assoc_opt "request_ms" parsed.E.types);
  Alcotest.(check (option string)) "no _sum family" None
    (List.assoc_opt "request_ms_sum" parsed.E.types)

let test_expose_sanitize_and_errors () =
  Alcotest.(check string) "dots fold" "server_request_ms"
    (E.sanitize "server.request.ms");
  Alcotest.(check string) "colons survive" "a:b_c" (E.sanitize "a:b c");
  (match E.parse "nonsense line here" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception E.Parse_error _ -> ());
  (match E.parse "# TYPE x sousaphone\nx 1\n" with
  | _ -> Alcotest.fail "expected Parse_error on unknown kind"
  | exception E.Parse_error _ -> ());
  match E.parse "x notanumber\n" with
  | _ -> Alcotest.fail "expected Parse_error on bad value"
  | exception E.Parse_error _ -> ()

let test_expose_of_metrics () =
  with_obs (fun () ->
      Obs.Metrics.incr ~by:3 "stress.counter";
      Obs.Metrics.set_gauge "stress.gauge" 2.5;
      Obs.Metrics.observe "stress.lat" 5.0;
      Obs.Metrics.observe "stress.lat" 15.0;
      let parsed = E.parse (E.render (E.of_metrics ())) in
      Alcotest.(check (option (float 0.0))) "counter" (Some 3.0)
        (E.find parsed "silkroute_stress_counter_total");
      Alcotest.(check (option (float 0.0))) "gauge" (Some 2.5)
        (E.find parsed "silkroute_stress_gauge");
      Alcotest.(check (option (float 0.0))) "summary count" (Some 2.0)
        (E.find parsed "silkroute_stress_lat_count");
      Alcotest.(check (option (float 0.0))) "summary sum" (Some 20.0)
        (E.find parsed "silkroute_stress_lat_sum");
      Alcotest.(check bool) "p99 sample present" true
        (E.find parsed "silkroute_stress_lat{quantile=\"0.99\"}" <> None))

(* --- SLO tracker --------------------------------------------------------- *)

let slo_config =
  {
    Obs.Slo.window_ms = 1_000.0;
    windows = 4;
    target_p99_ms = 100.0;
    max_error_rate = 0.10;
  }

let events_named name =
  List.filter (fun (e : Obs.Event.t) -> e.Obs.Event.name = name)
    (Obs.Event.events ())

let test_slo_burn_and_recover () =
  with_obs (fun () ->
      let t = Obs.Slo.create ~config:slo_config () in
      (* healthy traffic: well under the p99 target *)
      for i = 0 to 99 do
        Obs.Slo.record t ~now_ms:(float_of_int i) 10.0
      done;
      let s = Obs.Slo.snapshot t ~now_ms:99.0 in
      Alcotest.(check int) "samples" 100 s.Obs.Slo.samples;
      Alcotest.(check bool) "not breached" false s.Obs.Slo.breached;
      Alcotest.(check int) "no burn event" 0 (List.length (events_named "slo.burn"));
      (* sustained slowness pushes p99 past the target: exactly one
         edge-triggered burn event, however long the breach lasts *)
      for i = 100 to 299 do
        Obs.Slo.record t ~now_ms:(float_of_int i) 500.0
      done;
      let s = Obs.Slo.snapshot t ~now_ms:299.0 in
      Alcotest.(check bool) "breached" true s.Obs.Slo.breached;
      Alcotest.(check bool) "burn rate over 1" true (s.Obs.Slo.burn_rate > 1.0);
      Alcotest.(check int) "one burn event" 1 (List.length (events_named "slo.burn"));
      (* fast traffic again, far enough ahead that the slow windows have
         slid out of the ring: one recovery event *)
      for i = 0 to 199 do
        Obs.Slo.record t ~now_ms:(10_000.0 +. float_of_int i) 10.0
      done;
      let s = Obs.Slo.snapshot t ~now_ms:10_199.0 in
      Alcotest.(check bool) "recovered" false s.Obs.Slo.breached;
      Alcotest.(check int) "slow windows recycled" 200 s.Obs.Slo.samples;
      Alcotest.(check int) "one recovery event" 1
        (List.length (events_named "slo.recover")))

let test_slo_error_budget () =
  with_obs (fun () ->
      let t = Obs.Slo.create ~config:slo_config () in
      (* 20% errors against a 10% budget: the error burn alone breaches,
         even though every latency sample is fast *)
      for i = 0 to 79 do
        Obs.Slo.record t ~now_ms:(float_of_int i) 1.0
      done;
      for i = 80 to 99 do
        Obs.Slo.record t ~error:true ~now_ms:(float_of_int i) 0.0
      done;
      let s = Obs.Slo.snapshot t ~now_ms:99.0 in
      Alcotest.(check int) "errors" 20 s.Obs.Slo.errors;
      Alcotest.(check (float 1e-9)) "error rate" 0.20 s.Obs.Slo.error_rate;
      Alcotest.(check (float 1e-9)) "error burn" 2.0 s.Obs.Slo.error_burn;
      Alcotest.(check bool) "latency is fine" true
        (s.Obs.Slo.latency_burn < 1.0);
      Alcotest.(check bool) "breached on errors alone" true s.Obs.Slo.breached;
      Obs.Slo.reset t;
      let s = Obs.Slo.snapshot t ~now_ms:99.0 in
      Alcotest.(check int) "reset clears samples" 0 s.Obs.Slo.samples;
      Alcotest.(check bool) "reset clears breach" false s.Obs.Slo.breached)

let test_slo_window_slide () =
  with_obs (fun () ->
      let t = Obs.Slo.create ~config:slo_config () in
      (* one sample per window across the whole ring *)
      for w = 0 to 3 do
        Obs.Slo.record t ~now_ms:(float_of_int w *. 1_000.0) 10.0
      done;
      let s = Obs.Slo.snapshot t ~now_ms:3_000.0 in
      Alcotest.(check int) "whole ring live" 4 s.Obs.Slo.samples;
      Alcotest.(check int) "covered windows" 4 s.Obs.Slo.covered_windows;
      (* two windows later, the two oldest have slid out *)
      let s = Obs.Slo.snapshot t ~now_ms:5_000.0 in
      Alcotest.(check int) "oldest slid out" 2 s.Obs.Slo.samples)

(* --- slow-query log ------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "silkroute_slowlog" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_slowlog_writes_jsonl () =
  with_temp_file (fun path ->
      let log = Slowlog.create ~path () in
      for i = 0 to 9 do
        Alcotest.(check bool) "accepted" true
          (Slowlog.write log
             (Obs.Json.Obj
                [ ("seq", Obs.Json.Int i); ("ms", Obs.Json.Float 12.5) ]))
      done;
      Slowlog.close log;
      Alcotest.(check int) "written" 10 (Slowlog.written log);
      Alcotest.(check int) "nothing dropped" 0 (Slowlog.dropped log);
      let lines = read_lines path in
      Alcotest.(check int) "one line per record" 10 (List.length lines);
      (* close drained in order, and every line is valid JSON *)
      List.iteri
        (fun i line ->
          match Obs.Json.member "seq" (Obs.Json.parse line) with
          | Some (Obs.Json.Int seq) -> Alcotest.(check int) "in order" i seq
          | _ -> Alcotest.failf "bad record: %s" line)
        lines)

let test_slowlog_drops_when_closed () =
  with_temp_file (fun path ->
      let log = Slowlog.create ~capacity:1 ~path () in
      Slowlog.close log;
      Slowlog.close log;
      (* idempotent *)
      Alcotest.(check bool) "write after close refused" false
        (Slowlog.write log (Obs.Json.Obj []));
      Alcotest.(check int) "drop counted" 1 (Slowlog.dropped log);
      Alcotest.(check int) "nothing written" 0 (Slowlog.written log);
      Alcotest.(check (list string)) "file empty" [] (read_lines path);
      Alcotest.(check string) "path accessor" path (Slowlog.path log))

(* --- trace propagation through the pool ---------------------------------- *)

let test_trace_id_through_pool () =
  with_obs (fun () ->
      let config = { Service.default_config with Service.domains = 2 } in
      let t = Service.create ~config (Lazy.force db) in
      Fun.protect
        ~finally:(fun () -> Service.shutdown t)
        (fun () ->
          match
            Service.query t ~view:Silkroute.Queries.query1_text
              ~strategy:"partitioned" ~reduce:false
          with
          | Protocol.Result _ ->
              let spans = Obs.Span.spans () in
              Alcotest.(check bool) "spans recorded" true (spans <> []);
              let ids =
                List.filter_map
                  (fun s -> Obs.Span.find_attr s "trace_id")
                  spans
              in
              (* every span — including those recorded on pool worker
                 domains — carries the request's trace id *)
              Alcotest.(check int) "every span tagged"
                (List.length spans) (List.length ids);
              Alcotest.(check int) "exactly one trace id" 1
                (List.length (List.sort_uniq compare ids));
              Alcotest.(check bool) "sub-queries crossed the pool" true
                (List.exists
                   (fun (s : Obs.Span.t) -> s.Obs.Span.name = "execute.stream")
                   spans)
          | r -> Alcotest.failf "expected a result, got %s"
                   (Protocol.reply_name r)))

(* --- multi-domain registry stress ---------------------------------------- *)

let test_metrics_multi_domain_stress () =
  with_obs (fun () ->
      let domains = 4 and per_domain = 2_000 in
      let hist_ok = ref true in
      let stop = Atomic.make false in
      (* a reader hammering snapshots while writers race: a torn
         histogram would show n <> sum of bucket counts *)
      let reader =
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              List.iter
                (fun (_, s) ->
                  match s with
                  | Obs.Metrics.SHistogram h ->
                      let total =
                        Array.fold_left ( + ) 0 h.Obs.Metrics.counts
                      in
                      if total <> h.Obs.Metrics.n then hist_ok := false
                  | _ -> ())
                (Obs.Metrics.snapshot ())
            done)
          ()
      in
      let worker d =
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Obs.Metrics.incr "stress.counter";
              Obs.Metrics.observe "stress.lat"
                (float_of_int (((d * per_domain) + i) mod 97));
              if i mod 100 = 0 then Obs.Metrics.set_gauge "stress.gauge" (float_of_int i)
            done)
      in
      let ds = List.init domains worker in
      List.iter Domain.join ds;
      Atomic.set stop true;
      Thread.join reader;
      Alcotest.(check bool) "no torn histogram read" true !hist_ok;
      Alcotest.(check (option int)) "counter exact"
        (Some (domains * per_domain))
        (Obs.Metrics.counter_value "stress.counter");
      match Obs.Metrics.histogram_snapshot "stress.lat" with
      | None -> Alcotest.fail "histogram missing"
      | Some h ->
          Alcotest.(check int) "every observation landed"
            (domains * per_domain) h.Obs.Metrics.n;
          Alcotest.(check int) "buckets account for all"
            h.Obs.Metrics.n
            (Array.fold_left ( + ) 0 h.Obs.Metrics.counts))

(* --- workload measured latency ------------------------------------------- *)

let test_workload_measured_latency () =
  let views = Workload.standard_views (Lazy.force db) in
  let mix =
    {
      Workload.default_config with
      Workload.clients = 2;
      requests_per_client = 5;
      invalidate_every = 0;
    }
  in
  let t = Service.create (Lazy.force db) in
  Fun.protect
    ~finally:(fun () -> Service.shutdown t)
    (fun () ->
      let tally = Workload.run_direct t ~views mix in
      Alcotest.(check int) "one sample per query" tally.Workload.queries
        tally.Workload.lat_samples;
      Alcotest.(check bool) "percentiles ordered" true
        (tally.Workload.lat_p50_ms <= tally.Workload.lat_p90_ms
        && tally.Workload.lat_p90_ms <= tally.Workload.lat_p99_ms);
      Alcotest.(check bool) "positive latency" true
        (tally.Workload.lat_p50_ms > 0.0))

let suite =
  [
    Alcotest.test_case "expose: render/parse roundtrip" `Quick
      test_expose_roundtrip;
    Alcotest.test_case "expose: sanitize + parse errors" `Quick
      test_expose_sanitize_and_errors;
    Alcotest.test_case "expose: registry snapshot" `Quick test_expose_of_metrics;
    Alcotest.test_case "slo: burn + recover edges" `Quick
      test_slo_burn_and_recover;
    Alcotest.test_case "slo: error budget" `Quick test_slo_error_budget;
    Alcotest.test_case "slo: window slide" `Quick test_slo_window_slide;
    Alcotest.test_case "slowlog: ordered JSONL" `Quick test_slowlog_writes_jsonl;
    Alcotest.test_case "slowlog: drops after close" `Quick
      test_slowlog_drops_when_closed;
    Alcotest.test_case "trace id crosses the pool" `Quick
      test_trace_id_through_pool;
    Alcotest.test_case "metrics: multi-domain stress" `Quick
      test_metrics_multi_domain_stress;
    Alcotest.test_case "workload: measured percentiles" `Quick
      test_workload_measured_latency;
  ]
